/**
 * @file
 * Quickstart: the simulator's core loop in ~60 lines.
 *
 *  1. make a library of reference strands;
 *  2. transmit it through a noisy IDS channel at coverage 6;
 *  3. reconstruct every cluster with BMA and with Iterative;
 *  4. report per-strand / per-character accuracy.
 */

#include <iostream>

#include "analysis/accuracy.hh"
#include "base/table.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

int
main()
{
    Rng rng(2026);

    // 1. A library of 500 random references, 110 bases each, with
    //    DNA-storage-friendly constraints (balanced GC, bounded
    //    homopolymers).
    StrandFactory factory;
    auto references = factory.makeMany(500, 110, rng);

    // 2. A channel with 6% aggregate error, uniform across the
    //    strand, and fixed sequencing coverage 6.
    ErrorProfile profile = ErrorProfile::uniform(0.06, 110);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    ChannelSimulator simulator(channel);
    FixedCoverage coverage(6);
    Dataset clusters = simulator.simulate(references, coverage, rng);

    auto stats = clusters.stats();
    std::cout << "simulated " << stats.num_copies << " noisy copies ("
              << fmtPercent(stats.aggregate_error_rate)
              << "% aggregate error)\n\n";

    // 3 + 4. Reconstruct and score.
    TextTable table("reconstruction accuracy at coverage 6");
    table.setHeader({"algorithm", "per-strand %", "per-char %"});
    BmaLookahead bma;
    Iterative iterative;
    for (const Reconstructor *algo :
         {static_cast<const Reconstructor *>(&bma),
          static_cast<const Reconstructor *>(&iterative)}) {
        Rng eval_rng = rng.fork(42);
        AccuracyResult acc = evaluateAccuracy(clusters, *algo,
                                              eval_rng);
        table.addRow({algo->name(), fmtPercent(acc.perStrand()),
                      fmtPercent(acc.perChar())});
    }
    table.print(std::cout);
    return 0;
}
