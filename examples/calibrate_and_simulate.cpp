/**
 * @file
 * The paper's core workflow as a library consumer would run it:
 *
 *  1. take a clustered "wetlab" dataset (here: the synthetic
 *     Nanopore channel; in production: an evyat file from a real
 *     sequencing run, loaded with readEvyatFile);
 *  2. calibrate a full error profile from it — conditional
 *     probabilities, long deletions, spatial skew, second-order
 *     errors — with no manual parameter entry;
 *  3. instantiate the simulator ladder (naive -> conditional ->
 *     skew -> second-order) from that one profile;
 *  4. simulate datasets and compare their reconstruction accuracy
 *     and closed-form distance against the real data.
 */

#include <iostream>

#include "analysis/accuracy.hh"
#include "analysis/dataset_distance.hh"
#include "base/table.hh"
#include "core/channel_simulator.hh"
#include "core/ids_model.hh"
#include "core/profiler.hh"
#include "core/wetlab.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

int
main()
{
    Rng rng(7);

    // 1. The "real" dataset: 300 clusters of the synthetic Nanopore
    //    wetlab channel.
    WetlabConfig config;
    config.num_clusters = 300;
    NanoporeDatasetGenerator generator(config);
    Dataset real = generator.generate(rng);
    auto stats = real.stats();
    std::cout << "wetlab data: " << stats.num_copies
              << " noisy copies over " << stats.num_clusters
              << " clusters, aggregate error "
              << fmtPercent(stats.aggregate_error_rate) << "%\n\n";

    // 2. Calibrate.
    ErrorProfiler profiler;
    ErrorProfile profile = profiler.calibrate(real);
    std::cout << "calibrated profile:\n" << profile.str() << "\n\n";

    // 3 + 4. The ladder, evaluated at fixed coverage 5 on both
    //    metrics.
    Dataset shuffled = real;
    Rng shuffle_rng = rng.fork(1);
    shuffled.shuffleWithinClusters(shuffle_rng);
    Dataset real5 = shuffled.fixedCoverage(5, 10);

    std::vector<Strand> refs;
    for (const auto &c : real5)
        refs.push_back(c.reference);

    IdsChannelModel models[] = {
        IdsChannelModel::naive(profile),
        IdsChannelModel::conditional(profile),
        IdsChannelModel::skew(profile),
        IdsChannelModel::secondOrder(profile),
    };

    BmaLookahead bma;
    Iterative iterative;
    DatasetSignature real_sig = datasetSignature(real5);

    TextTable table("simulator ladder at coverage 5");
    table.setHeader({"data", "BMA strand%", "Iter strand%",
                     "distance to real"});
    {
        Rng r1 = rng.fork(2), r2 = rng.fork(3);
        table.addRow(
            {"real",
             fmtPercent(
                 evaluateAccuracy(real5, bma, r1).perStrand()),
             fmtPercent(
                 evaluateAccuracy(real5, iterative, r2).perStrand()),
             "-"});
    }
    for (const auto &model : models) {
        ChannelSimulator sim(model);
        FixedCoverage cov(5);
        Rng gen = rng.fork(4);
        Dataset simulated = sim.simulate(refs, cov, gen);
        Rng r1 = rng.fork(5), r2 = rng.fork(6);
        DatasetDistance dist =
            datasetDistance(real_sig, datasetSignature(simulated));
        table.addRow(
            {model.name(),
             fmtPercent(
                 evaluateAccuracy(simulated, bma, r1).perStrand()),
             fmtPercent(evaluateAccuracy(simulated, iterative, r2)
                            .perStrand()),
             fmtDouble(dist.mean(), 4)});
    }
    table.print(std::cout);
    std::cout << "each refinement step should move the simulated "
                 "rows toward the real row.\n";
    return 0;
}
