/**
 * @file
 * The composable multi-stage channel (the paper's section 4.2 calls
 * the aggregate single-pass model its key limitation and asks for a
 * "multi-stage, composable simulation process"):
 *
 *   synthesis -> storage decay -> PCR amplification -> read
 *   sampling -> sequencing
 *
 * This example stores the same library for 0, 100, and 500 years and
 * shows how decay eats physical redundancy — erasure clusters appear
 * and reconstruction accuracy falls — and how the sequencing
 * generation changes the picture at identical coverage.
 */

#include <iostream>

#include "analysis/accuracy.hh"
#include "base/table.hh"
#include "core/tech_profiles.hh"
#include "data/strand_factory.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

int
main()
{
    StrandFactory factory;
    Rng rng(1887);
    auto refs = factory.makeMany(120, 110, rng);

    Iterative algo;
    TextTable table("archival round trips through the staged "
                    "channel");
    table.setHeader({"sequencer", "years stored", "reads",
                     "erasure clusters", "per-strand %",
                     "per-char %"});

    for (auto gen : {SequencerGeneration::Illumina,
                     SequencerGeneration::Nanopore}) {
        for (double years : {0.0, 100.0, 500.0}) {
            StagedChannel channel = makeArchivalChannel(
                gen, 110, refs.size(), /*mean_coverage=*/8.0,
                years);
            Rng run_rng = rng.fork(
                static_cast<uint64_t>(years) + 7919 *
                    static_cast<uint64_t>(gen));
            Dataset data = channel.run(refs, run_rng);
            auto stats = data.stats(false);

            Rng eval = rng.fork(42);
            AccuracyResult acc = evaluateAccuracy(data, algo, eval);
            table.addRow({sequencerName(gen),
                          fmtDouble(years, 0),
                          std::to_string(stats.num_copies),
                          std::to_string(stats.num_erasures),
                          fmtPercent(acc.perStrand()),
                          fmtPercent(acc.perChar())});
        }
    }
    table.print(std::cout);
    std::cout << "decay does not change the sampled read count — it "
                 "shifts reads toward surviving (and truncated) "
                 "molecules, so some references lose all "
                 "representation (erasures) while others keep "
                 "degraded copies.\n";
    return 0;
}
