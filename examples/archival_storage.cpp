/**
 * @file
 * End-to-end archival storage (the paper's Fig. 1.1 pipeline): a
 * file is encoded into addressable strands with Reed-Solomon
 * logical redundancy, pushed through a realistic noisy channel at
 * several physical redundancies (coverages), reconstructed, and
 * decoded — reporting when retrieval succeeds and what the
 * redundancy machinery had to repair.
 */

#include <iostream>
#include <string>

#include "base/table.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "core/wetlab.hh"
#include "pipeline/archival_pipeline.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

int
main()
{
    // The payload: a short document.
    std::string text =
        "DNA data storage writes information into synthesized "
        "oligonucleotides and reads it back by sequencing. "
        "Because both directions are noisy, an archival system "
        "combines physical redundancy (multiple molecule copies "
        "per strand) with logical redundancy (error-correcting "
        "codes across strands). This file exists to be stored.";
    Bytes file(text.begin(), text.end());

    PipelineConfig config;
    config.payload_bytes = 18;
    config.redundancy = RedundancyScheme::ReedSolomon;
    config.rs_stripe_data = 16;
    config.rs_parity = 6;
    ArchivalPipeline pipeline(config);

    StoredObject object = pipeline.store(file);
    std::cout << "encoded " << file.size() << " bytes into "
              << object.strands.size() << " strands of length "
              << pipeline.strandLength() << " ("
              << object.num_data_frames << " data + "
              << object.num_total_frames - object.num_data_frames
              << " parity frames)\n\n";

    // A Nanopore-like channel calibrated at 4% aggregate error with
    // terminal skew.
    ErrorProfile channel_profile =
        NanoporeDatasetGenerator::groundTruthProfile(
            pipeline.strandLength(), 0.04);
    IdsChannelModel channel =
        IdsChannelModel::full(channel_profile, "nanopore-like");
    Iterative algo;

    TextTable table("retrieval vs physical redundancy (coverage)");
    table.setHeader({"coverage", "success", "erasures",
                     "crc-rejects", "frames-recovered",
                     "payload intact"});
    for (size_t coverage : {1, 2, 4, 6, 10}) {
        FixedCoverage cov(coverage);
        Rng rng(1000 + coverage);
        RetrievedObject result =
            pipeline.roundTrip(file, channel, cov, algo, rng);
        table.addRow(
            {std::to_string(coverage),
             result.success ? "yes" : "NO",
             std::to_string(result.stats.erasure_clusters),
             std::to_string(result.stats.crc_failures +
                            result.stats.undecodable_strands),
             std::to_string(result.stats.frames_recovered),
             result.data == file ? "yes" : "NO"});
    }
    table.print(std::cout);

    std::cout << "higher coverage buys cleaner reconstructions; the "
                 "RS stripes absorb what reconstruction gets "
                 "wrong.\n";
    return 0;
}
