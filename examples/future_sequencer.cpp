/**
 * @file
 * Sensitivity study for future sequencing technologies
 * (section 1.2's motivation: higher-throughput sequencers tend to
 * have higher error rates, and archival data written today must
 * still be readable by them).
 *
 * For a sweep of hypothetical error rates and spatial shapes, this
 * example finds the minimum coverage at which the Iterative
 * algorithm achieves 99% per-character accuracy — the coverage
 * budget a system designer would have to provision.
 */

#include <iostream>

#include "analysis/accuracy.hh"
#include "base/table.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

namespace
{

/** Minimum coverage reaching @p target per-char accuracy, or 0. */
size_t
requiredCoverage(const IdsChannelModel &model,
                 const std::vector<Strand> &refs, double target,
                 size_t max_coverage)
{
    ChannelSimulator sim(model);
    Iterative algo;
    for (size_t n = 1; n <= max_coverage; ++n) {
        FixedCoverage cov(n);
        Rng rng(2000 + n);
        Dataset data = sim.simulate(refs, cov, rng);
        Rng eval(3000 + n);
        if (evaluateAccuracy(data, algo, eval).perChar() >= target)
            return n;
    }
    return 0;
}

} // anonymous namespace

int
main()
{
    StrandFactory factory;
    Rng rng(2026);
    auto refs = factory.makeMany(120, 110, rng);

    const double target = 0.99;
    const size_t max_coverage = 24;

    TextTable table("coverage needed for 99% per-char accuracy "
                    "(Iterative)");
    table.setHeader({"error rate", "uniform", "terminal skew",
                     "V-shaped"});
    for (double rate : {0.02, 0.05, 0.08, 0.12, 0.16}) {
        ErrorProfile uniform = ErrorProfile::uniform(rate, 110);
        ErrorProfile terminal = uniform.withSpatial(
            PositionProfile::terminalSkew(110, 4.0, 8.0));
        ErrorProfile vshape =
            uniform.withSpatial(PositionProfile::vShaped(110));

        auto cell = [&](const IdsChannelModel &model) {
            size_t n = requiredCoverage(model, refs, target,
                                        max_coverage);
            return n == 0 ? std::string(">24") : std::to_string(n);
        };
        table.addRow({fmtPercent(rate, 0) + "%",
                      cell(IdsChannelModel::naive(uniform)),
                      cell(IdsChannelModel::skew(terminal)),
                      cell(IdsChannelModel::skew(vshape))});
    }
    table.print(std::cout);

    std::cout << "skewed error distributions cost extra coverage at "
                 "the same aggregate rate — the spatial shape, not "
                 "just the error rate, sets the provisioning "
                 "budget.\n";
    return 0;
}
