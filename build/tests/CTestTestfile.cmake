# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_align[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_reconstruct[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_tech_profiles[1]_include.cmake")
include("/root/repo/build/tests/test_profile_io[1]_include.cmake")
