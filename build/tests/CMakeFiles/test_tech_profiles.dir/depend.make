# Empty dependencies file for test_tech_profiles.
# This may be replaced when dependencies are built.
