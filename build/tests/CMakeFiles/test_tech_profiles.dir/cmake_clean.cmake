file(REMOVE_RECURSE
  "CMakeFiles/test_tech_profiles.dir/test_tech_profiles.cc.o"
  "CMakeFiles/test_tech_profiles.dir/test_tech_profiles.cc.o.d"
  "test_tech_profiles"
  "test_tech_profiles.pdb"
  "test_tech_profiles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
