# Empty compiler generated dependencies file for fig_3_10.
# This may be replaced when dependencies are built.
