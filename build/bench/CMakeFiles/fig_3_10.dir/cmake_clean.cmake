file(REMOVE_RECURSE
  "CMakeFiles/fig_3_10.dir/bench_common.cc.o"
  "CMakeFiles/fig_3_10.dir/bench_common.cc.o.d"
  "CMakeFiles/fig_3_10.dir/fig_3_10.cc.o"
  "CMakeFiles/fig_3_10.dir/fig_3_10.cc.o.d"
  "fig_3_10"
  "fig_3_10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_3_10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
