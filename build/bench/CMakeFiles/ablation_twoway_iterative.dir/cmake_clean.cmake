file(REMOVE_RECURSE
  "CMakeFiles/ablation_twoway_iterative.dir/ablation_twoway_iterative.cc.o"
  "CMakeFiles/ablation_twoway_iterative.dir/ablation_twoway_iterative.cc.o.d"
  "CMakeFiles/ablation_twoway_iterative.dir/bench_common.cc.o"
  "CMakeFiles/ablation_twoway_iterative.dir/bench_common.cc.o.d"
  "ablation_twoway_iterative"
  "ablation_twoway_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_twoway_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
