# Empty compiler generated dependencies file for ablation_twoway_iterative.
# This may be replaced when dependencies are built.
