# Empty dependencies file for fig_3_5.
# This may be replaced when dependencies are built.
