# Empty compiler generated dependencies file for perf_align.
# This may be replaced when dependencies are built.
