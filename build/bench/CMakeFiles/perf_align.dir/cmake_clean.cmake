file(REMOVE_RECURSE
  "CMakeFiles/perf_align.dir/perf_align.cc.o"
  "CMakeFiles/perf_align.dir/perf_align.cc.o.d"
  "perf_align"
  "perf_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
