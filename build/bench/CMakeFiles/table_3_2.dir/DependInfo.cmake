
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cc" "bench/CMakeFiles/table_3_2.dir/bench_common.cc.o" "gcc" "bench/CMakeFiles/table_3_2.dir/bench_common.cc.o.d"
  "/root/repo/bench/table_3_2.cc" "bench/CMakeFiles/table_3_2.dir/table_3_2.cc.o" "gcc" "bench/CMakeFiles/table_3_2.dir/table_3_2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/dnasim_base.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dnasim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/dnasim_align.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dnasim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dnasim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dnasim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/dnasim_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/dnasim_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dnasim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/dnasim_cli.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
