file(REMOVE_RECURSE
  "CMakeFiles/fig_3_3.dir/bench_common.cc.o"
  "CMakeFiles/fig_3_3.dir/bench_common.cc.o.d"
  "CMakeFiles/fig_3_3.dir/fig_3_3.cc.o"
  "CMakeFiles/fig_3_3.dir/fig_3_3.cc.o.d"
  "fig_3_3"
  "fig_3_3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_3_3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
