# Empty dependencies file for fig_3_3.
# This may be replaced when dependencies are built.
