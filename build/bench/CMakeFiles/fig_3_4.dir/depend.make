# Empty dependencies file for fig_3_4.
# This may be replaced when dependencies are built.
