file(REMOVE_RECURSE
  "CMakeFiles/fig_3_8.dir/bench_common.cc.o"
  "CMakeFiles/fig_3_8.dir/bench_common.cc.o.d"
  "CMakeFiles/fig_3_8.dir/fig_3_8.cc.o"
  "CMakeFiles/fig_3_8.dir/fig_3_8.cc.o.d"
  "fig_3_8"
  "fig_3_8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_3_8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
