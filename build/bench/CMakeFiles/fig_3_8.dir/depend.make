# Empty dependencies file for fig_3_8.
# This may be replaced when dependencies are built.
