# Empty dependencies file for fig_3_9.
# This may be replaced when dependencies are built.
