# Empty dependencies file for perf_channel.
# This may be replaced when dependencies are built.
