file(REMOVE_RECURSE
  "CMakeFiles/perf_channel.dir/perf_channel.cc.o"
  "CMakeFiles/perf_channel.dir/perf_channel.cc.o.d"
  "perf_channel"
  "perf_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
