file(REMOVE_RECURSE
  "CMakeFiles/fig_c_overall.dir/bench_common.cc.o"
  "CMakeFiles/fig_c_overall.dir/bench_common.cc.o.d"
  "CMakeFiles/fig_c_overall.dir/fig_c_overall.cc.o"
  "CMakeFiles/fig_c_overall.dir/fig_c_overall.cc.o.d"
  "fig_c_overall"
  "fig_c_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_c_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
