# Empty compiler generated dependencies file for fig_c_overall.
# This may be replaced when dependencies are built.
