file(REMOVE_RECURSE
  "CMakeFiles/fig_3_2.dir/bench_common.cc.o"
  "CMakeFiles/fig_3_2.dir/bench_common.cc.o.d"
  "CMakeFiles/fig_3_2.dir/fig_3_2.cc.o"
  "CMakeFiles/fig_3_2.dir/fig_3_2.cc.o.d"
  "fig_3_2"
  "fig_3_2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_3_2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
