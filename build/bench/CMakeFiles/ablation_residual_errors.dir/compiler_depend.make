# Empty compiler generated dependencies file for ablation_residual_errors.
# This may be replaced when dependencies are built.
