file(REMOVE_RECURSE
  "CMakeFiles/ablation_residual_errors.dir/ablation_residual_errors.cc.o"
  "CMakeFiles/ablation_residual_errors.dir/ablation_residual_errors.cc.o.d"
  "CMakeFiles/ablation_residual_errors.dir/bench_common.cc.o"
  "CMakeFiles/ablation_residual_errors.dir/bench_common.cc.o.d"
  "ablation_residual_errors"
  "ablation_residual_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_residual_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
