file(REMOVE_RECURSE
  "CMakeFiles/perf_reconstruct.dir/perf_reconstruct.cc.o"
  "CMakeFiles/perf_reconstruct.dir/perf_reconstruct.cc.o.d"
  "perf_reconstruct"
  "perf_reconstruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
