# Empty dependencies file for perf_reconstruct.
# This may be replaced when dependencies are built.
