file(REMOVE_RECURSE
  "CMakeFiles/table_2_2.dir/bench_common.cc.o"
  "CMakeFiles/table_2_2.dir/bench_common.cc.o.d"
  "CMakeFiles/table_2_2.dir/table_2_2.cc.o"
  "CMakeFiles/table_2_2.dir/table_2_2.cc.o.d"
  "table_2_2"
  "table_2_2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_2_2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
