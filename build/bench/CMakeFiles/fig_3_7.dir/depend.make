# Empty dependencies file for fig_3_7.
# This may be replaced when dependencies are built.
