file(REMOVE_RECURSE
  "CMakeFiles/fig_3_7.dir/bench_common.cc.o"
  "CMakeFiles/fig_3_7.dir/bench_common.cc.o.d"
  "CMakeFiles/fig_3_7.dir/fig_3_7.cc.o"
  "CMakeFiles/fig_3_7.dir/fig_3_7.cc.o.d"
  "fig_3_7"
  "fig_3_7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_3_7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
