# Empty dependencies file for dnasim_pipeline.
# This may be replaced when dependencies are built.
