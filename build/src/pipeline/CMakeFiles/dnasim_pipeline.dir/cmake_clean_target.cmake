file(REMOVE_RECURSE
  "libdnasim_pipeline.a"
)
