file(REMOVE_RECURSE
  "CMakeFiles/dnasim_pipeline.dir/archival_pipeline.cc.o"
  "CMakeFiles/dnasim_pipeline.dir/archival_pipeline.cc.o.d"
  "libdnasim_pipeline.a"
  "libdnasim_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnasim_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
