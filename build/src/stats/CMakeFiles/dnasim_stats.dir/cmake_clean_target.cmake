file(REMOVE_RECURSE
  "libdnasim_stats.a"
)
