file(REMOVE_RECURSE
  "CMakeFiles/dnasim_stats.dir/distributions.cc.o"
  "CMakeFiles/dnasim_stats.dir/distributions.cc.o.d"
  "CMakeFiles/dnasim_stats.dir/histogram.cc.o"
  "CMakeFiles/dnasim_stats.dir/histogram.cc.o.d"
  "CMakeFiles/dnasim_stats.dir/position_profile.cc.o"
  "CMakeFiles/dnasim_stats.dir/position_profile.cc.o.d"
  "CMakeFiles/dnasim_stats.dir/summary.cc.o"
  "CMakeFiles/dnasim_stats.dir/summary.cc.o.d"
  "libdnasim_stats.a"
  "libdnasim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnasim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
