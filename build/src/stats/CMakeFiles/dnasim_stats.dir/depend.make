# Empty dependencies file for dnasim_stats.
# This may be replaced when dependencies are built.
