# Empty compiler generated dependencies file for dnasim_align.
# This may be replaced when dependencies are built.
