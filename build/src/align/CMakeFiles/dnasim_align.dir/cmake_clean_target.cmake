file(REMOVE_RECURSE
  "libdnasim_align.a"
)
