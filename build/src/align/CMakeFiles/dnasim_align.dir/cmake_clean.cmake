file(REMOVE_RECURSE
  "CMakeFiles/dnasim_align.dir/edit_distance.cc.o"
  "CMakeFiles/dnasim_align.dir/edit_distance.cc.o.d"
  "CMakeFiles/dnasim_align.dir/gestalt.cc.o"
  "CMakeFiles/dnasim_align.dir/gestalt.cc.o.d"
  "CMakeFiles/dnasim_align.dir/hamming.cc.o"
  "CMakeFiles/dnasim_align.dir/hamming.cc.o.d"
  "libdnasim_align.a"
  "libdnasim_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnasim_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
