
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/edit_distance.cc" "src/align/CMakeFiles/dnasim_align.dir/edit_distance.cc.o" "gcc" "src/align/CMakeFiles/dnasim_align.dir/edit_distance.cc.o.d"
  "/root/repo/src/align/gestalt.cc" "src/align/CMakeFiles/dnasim_align.dir/gestalt.cc.o" "gcc" "src/align/CMakeFiles/dnasim_align.dir/gestalt.cc.o.d"
  "/root/repo/src/align/hamming.cc" "src/align/CMakeFiles/dnasim_align.dir/hamming.cc.o" "gcc" "src/align/CMakeFiles/dnasim_align.dir/hamming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/dnasim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
