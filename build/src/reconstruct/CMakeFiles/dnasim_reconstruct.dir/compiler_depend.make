# Empty compiler generated dependencies file for dnasim_reconstruct.
# This may be replaced when dependencies are built.
