file(REMOVE_RECURSE
  "libdnasim_reconstruct.a"
)
