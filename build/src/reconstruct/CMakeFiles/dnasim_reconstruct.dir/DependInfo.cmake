
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reconstruct/bma.cc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/bma.cc.o" "gcc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/bma.cc.o.d"
  "/root/repo/src/reconstruct/consensus.cc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/consensus.cc.o" "gcc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/consensus.cc.o.d"
  "/root/repo/src/reconstruct/divider_bma.cc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/divider_bma.cc.o" "gcc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/divider_bma.cc.o.d"
  "/root/repo/src/reconstruct/iterative.cc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/iterative.cc.o" "gcc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/iterative.cc.o.d"
  "/root/repo/src/reconstruct/majority.cc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/majority.cc.o" "gcc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/majority.cc.o.d"
  "/root/repo/src/reconstruct/twoway_iterative.cc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/twoway_iterative.cc.o" "gcc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/twoway_iterative.cc.o.d"
  "/root/repo/src/reconstruct/weighted_iterative.cc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/weighted_iterative.cc.o" "gcc" "src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/weighted_iterative.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/dnasim_base.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/dnasim_align.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
