file(REMOVE_RECURSE
  "CMakeFiles/dnasim_reconstruct.dir/bma.cc.o"
  "CMakeFiles/dnasim_reconstruct.dir/bma.cc.o.d"
  "CMakeFiles/dnasim_reconstruct.dir/consensus.cc.o"
  "CMakeFiles/dnasim_reconstruct.dir/consensus.cc.o.d"
  "CMakeFiles/dnasim_reconstruct.dir/divider_bma.cc.o"
  "CMakeFiles/dnasim_reconstruct.dir/divider_bma.cc.o.d"
  "CMakeFiles/dnasim_reconstruct.dir/iterative.cc.o"
  "CMakeFiles/dnasim_reconstruct.dir/iterative.cc.o.d"
  "CMakeFiles/dnasim_reconstruct.dir/majority.cc.o"
  "CMakeFiles/dnasim_reconstruct.dir/majority.cc.o.d"
  "CMakeFiles/dnasim_reconstruct.dir/twoway_iterative.cc.o"
  "CMakeFiles/dnasim_reconstruct.dir/twoway_iterative.cc.o.d"
  "CMakeFiles/dnasim_reconstruct.dir/weighted_iterative.cc.o"
  "CMakeFiles/dnasim_reconstruct.dir/weighted_iterative.cc.o.d"
  "libdnasim_reconstruct.a"
  "libdnasim_reconstruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnasim_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
