# Empty dependencies file for dnasim_codec.
# This may be replaced when dependencies are built.
