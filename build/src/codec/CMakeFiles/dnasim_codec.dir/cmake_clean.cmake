file(REMOVE_RECURSE
  "CMakeFiles/dnasim_codec.dir/dna_codec.cc.o"
  "CMakeFiles/dnasim_codec.dir/dna_codec.cc.o.d"
  "CMakeFiles/dnasim_codec.dir/framing.cc.o"
  "CMakeFiles/dnasim_codec.dir/framing.cc.o.d"
  "CMakeFiles/dnasim_codec.dir/gf256.cc.o"
  "CMakeFiles/dnasim_codec.dir/gf256.cc.o.d"
  "CMakeFiles/dnasim_codec.dir/reed_solomon.cc.o"
  "CMakeFiles/dnasim_codec.dir/reed_solomon.cc.o.d"
  "CMakeFiles/dnasim_codec.dir/xor_redundancy.cc.o"
  "CMakeFiles/dnasim_codec.dir/xor_redundancy.cc.o.d"
  "libdnasim_codec.a"
  "libdnasim_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnasim_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
