file(REMOVE_RECURSE
  "libdnasim_codec.a"
)
