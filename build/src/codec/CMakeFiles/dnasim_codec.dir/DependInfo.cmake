
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/dna_codec.cc" "src/codec/CMakeFiles/dnasim_codec.dir/dna_codec.cc.o" "gcc" "src/codec/CMakeFiles/dnasim_codec.dir/dna_codec.cc.o.d"
  "/root/repo/src/codec/framing.cc" "src/codec/CMakeFiles/dnasim_codec.dir/framing.cc.o" "gcc" "src/codec/CMakeFiles/dnasim_codec.dir/framing.cc.o.d"
  "/root/repo/src/codec/gf256.cc" "src/codec/CMakeFiles/dnasim_codec.dir/gf256.cc.o" "gcc" "src/codec/CMakeFiles/dnasim_codec.dir/gf256.cc.o.d"
  "/root/repo/src/codec/reed_solomon.cc" "src/codec/CMakeFiles/dnasim_codec.dir/reed_solomon.cc.o" "gcc" "src/codec/CMakeFiles/dnasim_codec.dir/reed_solomon.cc.o.d"
  "/root/repo/src/codec/xor_redundancy.cc" "src/codec/CMakeFiles/dnasim_codec.dir/xor_redundancy.cc.o" "gcc" "src/codec/CMakeFiles/dnasim_codec.dir/xor_redundancy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/dnasim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
