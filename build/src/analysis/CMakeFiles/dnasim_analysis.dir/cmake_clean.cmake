file(REMOVE_RECURSE
  "CMakeFiles/dnasim_analysis.dir/accuracy.cc.o"
  "CMakeFiles/dnasim_analysis.dir/accuracy.cc.o.d"
  "CMakeFiles/dnasim_analysis.dir/clustered_accuracy.cc.o"
  "CMakeFiles/dnasim_analysis.dir/clustered_accuracy.cc.o.d"
  "CMakeFiles/dnasim_analysis.dir/dataset_distance.cc.o"
  "CMakeFiles/dnasim_analysis.dir/dataset_distance.cc.o.d"
  "CMakeFiles/dnasim_analysis.dir/error_positions.cc.o"
  "CMakeFiles/dnasim_analysis.dir/error_positions.cc.o.d"
  "CMakeFiles/dnasim_analysis.dir/residual.cc.o"
  "CMakeFiles/dnasim_analysis.dir/residual.cc.o.d"
  "CMakeFiles/dnasim_analysis.dir/second_order.cc.o"
  "CMakeFiles/dnasim_analysis.dir/second_order.cc.o.d"
  "libdnasim_analysis.a"
  "libdnasim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnasim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
