
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/accuracy.cc" "src/analysis/CMakeFiles/dnasim_analysis.dir/accuracy.cc.o" "gcc" "src/analysis/CMakeFiles/dnasim_analysis.dir/accuracy.cc.o.d"
  "/root/repo/src/analysis/clustered_accuracy.cc" "src/analysis/CMakeFiles/dnasim_analysis.dir/clustered_accuracy.cc.o" "gcc" "src/analysis/CMakeFiles/dnasim_analysis.dir/clustered_accuracy.cc.o.d"
  "/root/repo/src/analysis/dataset_distance.cc" "src/analysis/CMakeFiles/dnasim_analysis.dir/dataset_distance.cc.o" "gcc" "src/analysis/CMakeFiles/dnasim_analysis.dir/dataset_distance.cc.o.d"
  "/root/repo/src/analysis/error_positions.cc" "src/analysis/CMakeFiles/dnasim_analysis.dir/error_positions.cc.o" "gcc" "src/analysis/CMakeFiles/dnasim_analysis.dir/error_positions.cc.o.d"
  "/root/repo/src/analysis/residual.cc" "src/analysis/CMakeFiles/dnasim_analysis.dir/residual.cc.o" "gcc" "src/analysis/CMakeFiles/dnasim_analysis.dir/residual.cc.o.d"
  "/root/repo/src/analysis/second_order.cc" "src/analysis/CMakeFiles/dnasim_analysis.dir/second_order.cc.o" "gcc" "src/analysis/CMakeFiles/dnasim_analysis.dir/second_order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/dnasim_base.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dnasim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dnasim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/dnasim_align.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dnasim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dnasim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reconstruct/CMakeFiles/dnasim_reconstruct.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
