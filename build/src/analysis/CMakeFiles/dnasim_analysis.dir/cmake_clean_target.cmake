file(REMOVE_RECURSE
  "libdnasim_analysis.a"
)
