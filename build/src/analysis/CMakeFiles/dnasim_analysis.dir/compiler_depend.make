# Empty compiler generated dependencies file for dnasim_analysis.
# This may be replaced when dependencies are built.
