# Empty dependencies file for dnasim.
# This may be replaced when dependencies are built.
