file(REMOVE_RECURSE
  "CMakeFiles/dnasim.dir/dnasim_main.cc.o"
  "CMakeFiles/dnasim.dir/dnasim_main.cc.o.d"
  "dnasim"
  "dnasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
