file(REMOVE_RECURSE
  "libdnasim_cli.a"
)
