file(REMOVE_RECURSE
  "CMakeFiles/dnasim_cli.dir/args.cc.o"
  "CMakeFiles/dnasim_cli.dir/args.cc.o.d"
  "CMakeFiles/dnasim_cli.dir/commands.cc.o"
  "CMakeFiles/dnasim_cli.dir/commands.cc.o.d"
  "libdnasim_cli.a"
  "libdnasim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnasim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
