# Empty dependencies file for dnasim_cli.
# This may be replaced when dependencies are built.
