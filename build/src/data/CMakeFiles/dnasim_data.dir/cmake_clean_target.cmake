file(REMOVE_RECURSE
  "libdnasim_data.a"
)
