file(REMOVE_RECURSE
  "CMakeFiles/dnasim_data.dir/dataset.cc.o"
  "CMakeFiles/dnasim_data.dir/dataset.cc.o.d"
  "CMakeFiles/dnasim_data.dir/io.cc.o"
  "CMakeFiles/dnasim_data.dir/io.cc.o.d"
  "CMakeFiles/dnasim_data.dir/strand_factory.cc.o"
  "CMakeFiles/dnasim_data.dir/strand_factory.cc.o.d"
  "libdnasim_data.a"
  "libdnasim_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnasim_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
