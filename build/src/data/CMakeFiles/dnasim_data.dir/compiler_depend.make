# Empty compiler generated dependencies file for dnasim_data.
# This may be replaced when dependencies are built.
