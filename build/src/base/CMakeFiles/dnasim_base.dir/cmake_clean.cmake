file(REMOVE_RECURSE
  "CMakeFiles/dnasim_base.dir/dna.cc.o"
  "CMakeFiles/dnasim_base.dir/dna.cc.o.d"
  "CMakeFiles/dnasim_base.dir/logging.cc.o"
  "CMakeFiles/dnasim_base.dir/logging.cc.o.d"
  "CMakeFiles/dnasim_base.dir/table.cc.o"
  "CMakeFiles/dnasim_base.dir/table.cc.o.d"
  "libdnasim_base.a"
  "libdnasim_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnasim_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
