file(REMOVE_RECURSE
  "libdnasim_base.a"
)
