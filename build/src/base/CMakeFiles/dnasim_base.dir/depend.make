# Empty dependencies file for dnasim_base.
# This may be replaced when dependencies are built.
