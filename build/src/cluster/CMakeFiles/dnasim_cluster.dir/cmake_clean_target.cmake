file(REMOVE_RECURSE
  "libdnasim_cluster.a"
)
