file(REMOVE_RECURSE
  "CMakeFiles/dnasim_cluster.dir/greedy_cluster.cc.o"
  "CMakeFiles/dnasim_cluster.dir/greedy_cluster.cc.o.d"
  "libdnasim_cluster.a"
  "libdnasim_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnasim_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
