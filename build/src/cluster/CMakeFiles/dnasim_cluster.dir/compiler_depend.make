# Empty compiler generated dependencies file for dnasim_cluster.
# This may be replaced when dependencies are built.
