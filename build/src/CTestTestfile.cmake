# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("stats")
subdirs("align")
subdirs("core")
subdirs("reconstruct")
subdirs("data")
subdirs("cluster")
subdirs("codec")
subdirs("pipeline")
subdirs("analysis")
subdirs("cli")
