
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/channel_simulator.cc" "src/core/CMakeFiles/dnasim_core.dir/channel_simulator.cc.o" "gcc" "src/core/CMakeFiles/dnasim_core.dir/channel_simulator.cc.o.d"
  "/root/repo/src/core/coverage.cc" "src/core/CMakeFiles/dnasim_core.dir/coverage.cc.o" "gcc" "src/core/CMakeFiles/dnasim_core.dir/coverage.cc.o.d"
  "/root/repo/src/core/dnasimulator_model.cc" "src/core/CMakeFiles/dnasim_core.dir/dnasimulator_model.cc.o" "gcc" "src/core/CMakeFiles/dnasim_core.dir/dnasimulator_model.cc.o.d"
  "/root/repo/src/core/error_profile.cc" "src/core/CMakeFiles/dnasim_core.dir/error_profile.cc.o" "gcc" "src/core/CMakeFiles/dnasim_core.dir/error_profile.cc.o.d"
  "/root/repo/src/core/ids_model.cc" "src/core/CMakeFiles/dnasim_core.dir/ids_model.cc.o" "gcc" "src/core/CMakeFiles/dnasim_core.dir/ids_model.cc.o.d"
  "/root/repo/src/core/profile_io.cc" "src/core/CMakeFiles/dnasim_core.dir/profile_io.cc.o" "gcc" "src/core/CMakeFiles/dnasim_core.dir/profile_io.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/dnasim_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/dnasim_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/stages.cc" "src/core/CMakeFiles/dnasim_core.dir/stages.cc.o" "gcc" "src/core/CMakeFiles/dnasim_core.dir/stages.cc.o.d"
  "/root/repo/src/core/tech_profiles.cc" "src/core/CMakeFiles/dnasim_core.dir/tech_profiles.cc.o" "gcc" "src/core/CMakeFiles/dnasim_core.dir/tech_profiles.cc.o.d"
  "/root/repo/src/core/wetlab.cc" "src/core/CMakeFiles/dnasim_core.dir/wetlab.cc.o" "gcc" "src/core/CMakeFiles/dnasim_core.dir/wetlab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/dnasim_base.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dnasim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/dnasim_align.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dnasim_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
