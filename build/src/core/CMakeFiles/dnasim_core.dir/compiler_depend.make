# Empty compiler generated dependencies file for dnasim_core.
# This may be replaced when dependencies are built.
