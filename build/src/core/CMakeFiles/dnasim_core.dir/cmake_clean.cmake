file(REMOVE_RECURSE
  "CMakeFiles/dnasim_core.dir/channel_simulator.cc.o"
  "CMakeFiles/dnasim_core.dir/channel_simulator.cc.o.d"
  "CMakeFiles/dnasim_core.dir/coverage.cc.o"
  "CMakeFiles/dnasim_core.dir/coverage.cc.o.d"
  "CMakeFiles/dnasim_core.dir/dnasimulator_model.cc.o"
  "CMakeFiles/dnasim_core.dir/dnasimulator_model.cc.o.d"
  "CMakeFiles/dnasim_core.dir/error_profile.cc.o"
  "CMakeFiles/dnasim_core.dir/error_profile.cc.o.d"
  "CMakeFiles/dnasim_core.dir/ids_model.cc.o"
  "CMakeFiles/dnasim_core.dir/ids_model.cc.o.d"
  "CMakeFiles/dnasim_core.dir/profile_io.cc.o"
  "CMakeFiles/dnasim_core.dir/profile_io.cc.o.d"
  "CMakeFiles/dnasim_core.dir/profiler.cc.o"
  "CMakeFiles/dnasim_core.dir/profiler.cc.o.d"
  "CMakeFiles/dnasim_core.dir/stages.cc.o"
  "CMakeFiles/dnasim_core.dir/stages.cc.o.d"
  "CMakeFiles/dnasim_core.dir/tech_profiles.cc.o"
  "CMakeFiles/dnasim_core.dir/tech_profiles.cc.o.d"
  "CMakeFiles/dnasim_core.dir/wetlab.cc.o"
  "CMakeFiles/dnasim_core.dir/wetlab.cc.o.d"
  "libdnasim_core.a"
  "libdnasim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnasim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
