file(REMOVE_RECURSE
  "libdnasim_core.a"
)
