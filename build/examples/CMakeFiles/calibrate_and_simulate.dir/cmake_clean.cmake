file(REMOVE_RECURSE
  "CMakeFiles/calibrate_and_simulate.dir/calibrate_and_simulate.cpp.o"
  "CMakeFiles/calibrate_and_simulate.dir/calibrate_and_simulate.cpp.o.d"
  "calibrate_and_simulate"
  "calibrate_and_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_and_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
