# Empty compiler generated dependencies file for calibrate_and_simulate.
# This may be replaced when dependencies are built.
