file(REMOVE_RECURSE
  "CMakeFiles/future_sequencer.dir/future_sequencer.cpp.o"
  "CMakeFiles/future_sequencer.dir/future_sequencer.cpp.o.d"
  "future_sequencer"
  "future_sequencer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_sequencer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
