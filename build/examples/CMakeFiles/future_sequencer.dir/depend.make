# Empty dependencies file for future_sequencer.
# This may be replaced when dependencies are built.
