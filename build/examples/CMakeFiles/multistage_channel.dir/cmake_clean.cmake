file(REMOVE_RECURSE
  "CMakeFiles/multistage_channel.dir/multistage_channel.cpp.o"
  "CMakeFiles/multistage_channel.dir/multistage_channel.cpp.o.d"
  "multistage_channel"
  "multistage_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistage_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
