# Empty dependencies file for multistage_channel.
# This may be replaced when dependencies are built.
