file(REMOVE_RECURSE
  "CMakeFiles/archival_storage.dir/archival_storage.cpp.o"
  "CMakeFiles/archival_storage.dir/archival_storage.cpp.o.d"
  "archival_storage"
  "archival_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archival_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
