# Empty dependencies file for archival_storage.
# This may be replaced when dependencies are built.
