/**
 * @file
 * Fig. 3.3 — accuracy of Iterative reconstruction on the real
 * (wetlab) data at coverages N = 1..10, following the paper's
 * protocol: clusters with fewer than 10 copies are discarded, the
 * rest are shuffled once and truncated to their first N copies, so
 * coverage N+1 differs from N only by the extra copy.
 *
 * Expected shape: both per-strand and per-character accuracy climb
 * steeply through N = 4..6 and stabilize beyond N = 7 (this is why
 * the paper picks N = 5 and 6 as its reference coverages).
 */

#include <iostream>

#include "bench_common.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Fig 3.3: Iterative accuracy vs coverage "
                 "N = 1..10 ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv, 500);

    Iterative iterative;
    TextTable table("Iterative accuracy by coverage");
    table.setHeader({"N", "clusters", "per-strand %", "per-char %"});
    double prev_strand = 0.0;
    std::vector<double> strand_acc;
    for (size_t n = 1; n <= 10; ++n) {
        Dataset data = realAtCoverage(env, n);
        Rng rng = env.rng(0x330 + n);
        AccuracyResult acc = evaluateAccuracy(data, iterative, rng);
        table.addRow({std::to_string(n),
                      std::to_string(acc.num_clusters),
                      fmtPercent(acc.perStrand()),
                      fmtPercent(acc.perChar())});
        strand_acc.push_back(acc.perStrand());
        prev_strand = acc.perStrand();
        (void)prev_strand;
    }
    table.print(std::cout);

    double rise_4_to_7 = strand_acc[6] - strand_acc[3];
    double rise_7_to_10 = strand_acc[9] - strand_acc[6];
    std::cout << "per-strand rise N=4->7: "
              << fmtDouble(rise_4_to_7 * 100.0)
              << "pp; N=7->10: " << fmtDouble(rise_7_to_10 * 100.0)
              << "pp (paper: steep through 4-6, stable beyond 7)\n";
    return 0;
}
