/**
 * @file
 * Extension ablation — homopolymer-context errors (section 1.2
 * lists homopolymer vulnerability among the known sequencing
 * effects that aggregate models such as DNASimulator ignore).
 *
 * The wetlab channel errs ~2x more often inside homopolymer runs.
 * This harness (a) verifies the profiler recovers that multiplier
 * from data, and (b) measures whether adding the context feature on
 * top of the paper's full ladder moves the simulated data closer to
 * real — in reconstruction accuracy and in closed-form distance.
 */

#include <iostream>

#include "analysis/dataset_distance.hh"
#include "bench_common.hh"
#include "core/ids_model.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Ablation (extension): homopolymer-context "
                 "errors ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv, 500);

    std::cout << "calibrated homopolymer multiplier: "
              << fmtDouble(env.profile.homopolymer_mult)
              << " (wetlab ground truth: 2.0)\n\n";

    IdsChannelModel second =
        IdsChannelModel::secondOrder(env.profile);
    IdsChannelModel contextual =
        IdsChannelModel::contextual(env.profile);

    Dataset real5 = realAtCoverage(env, 5);
    DatasetSignature real_sig = datasetSignature(env.wetlab);

    BmaLookahead bma;
    Iterative iterative;

    TextTable table("second-order vs contextual model at N = 5");
    table.setHeader({"data", "BMA strand%", "Iter strand%",
                     "distance to real"});
    {
        Rng r1 = env.rng(0xcc1), r2 = env.rng(0xcc2);
        table.addRow(
            {"real",
             fmtPercent(evaluateAccuracy(real5, bma, r1).perStrand()),
             fmtPercent(
                 evaluateAccuracy(real5, iterative, r2).perStrand()),
             "-"});
    }
    for (const IdsChannelModel *model : {&second, &contextual}) {
        Dataset data = modelDataset(env, *model, 5, 0xcc3);
        Rng full_rng = env.rng(0xcc4);
        Dataset full = ChannelSimulator(*model).simulateLike(
            env.wetlab, full_rng);
        Rng r1 = env.rng(0xcc5), r2 = env.rng(0xcc6);
        DatasetDistance dist =
            datasetDistance(real_sig, datasetSignature(full));
        table.addRow(
            {model->name(),
             fmtPercent(evaluateAccuracy(data, bma, r1).perStrand()),
             fmtPercent(
                 evaluateAccuracy(data, iterative, r2).perStrand()),
             fmtDouble(dist.mean(), 4)});
    }
    table.print(std::cout);

    std::cout << "shape check: the contextual row should sit at or "
                 "below the second-order row (closer to real), and "
                 "the calibrated multiplier should land near 2.\n";
    return 0;
}
