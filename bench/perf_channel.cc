/**
 * @file
 * Microbenchmarks of the channel: transmission throughput per model
 * variant, wetlab generation, and profile calibration.
 */

#include <benchmark/benchmark.h>

#include "bench_report.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/dnasimulator_model.hh"
#include "core/ids_model.hh"
#include "core/profiler.hh"
#include "core/wetlab.hh"
#include "data/strand_factory.hh"

using namespace dnasim;

namespace
{

ErrorProfile
calibratedProfile()
{
    WetlabConfig config;
    config.num_clusters = 50;
    NanoporeDatasetGenerator generator(config);
    Rng rng = benchRng(0x9e4);
    Dataset data = generator.generate(rng);
    ErrorProfiler profiler;
    return profiler.calibrate(data);
}

const ErrorProfile &
profile()
{
    static const ErrorProfile p = calibratedProfile();
    return p;
}

void
transmitLoop(benchmark::State &state, const ErrorModel &model)
{
    Rng rng = benchRng(0x77);
    StrandFactory factory;
    Strand ref = factory.make(110, rng);
    size_t bases = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.transmit(ref, rng));
        bases += ref.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(bases));
}

void
BM_TransmitNaive(benchmark::State &state)
{
    IdsChannelModel model = IdsChannelModel::naive(profile());
    transmitLoop(state, model);
}

void
BM_TransmitConditional(benchmark::State &state)
{
    IdsChannelModel model = IdsChannelModel::conditional(profile());
    transmitLoop(state, model);
}

void
BM_TransmitSecondOrder(benchmark::State &state)
{
    IdsChannelModel model = IdsChannelModel::secondOrder(profile());
    transmitLoop(state, model);
}

void
BM_TransmitDnaSimulator(benchmark::State &state)
{
    DnaSimulatorModel model =
        DnaSimulatorModel::fromProfile(profile());
    transmitLoop(state, model);
}

void
BM_SimulateCluster(benchmark::State &state)
{
    IdsChannelModel model = IdsChannelModel::secondOrder(profile());
    ChannelSimulator sim(model);
    Rng rng = benchRng(0x78);
    StrandFactory factory;
    Strand ref = factory.make(110, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.simulateCluster(
            ref, static_cast<size_t>(state.range(0)), rng));
    }
}

/**
 * Dataset-scale simulation: many clusters through simulate(), the
 * loop parallelized by --threads. This is the thread-scaling probe —
 * compare BENCH_perf_channel.json rows across --threads values.
 */
void
BM_SimulateDataset(benchmark::State &state)
{
    IdsChannelModel model = IdsChannelModel::secondOrder(profile());
    ChannelSimulator sim(model);
    Rng rng = benchRng(0x79);
    StrandFactory factory;
    std::vector<Strand> refs;
    const auto clusters = static_cast<size_t>(state.range(0));
    refs.reserve(clusters);
    for (size_t i = 0; i < clusters; ++i)
        refs.push_back(factory.make(110, rng));
    FixedCoverage coverage(10);
    size_t strands = 0;
    for (auto _ : state) {
        Rng r = benchRng(0x7a);
        benchmark::DoNotOptimize(sim.simulate(refs, coverage, r));
        strands += clusters * 10;
    }
    state.SetItemsProcessed(static_cast<int64_t>(strands));
}

void
BM_Calibrate(benchmark::State &state)
{
    WetlabConfig config;
    config.num_clusters = static_cast<size_t>(state.range(0));
    NanoporeDatasetGenerator generator(config);
    Rng rng = benchRng(0x9e5);
    Dataset data = generator.generate(rng);
    ErrorProfiler profiler;
    for (auto _ : state)
        benchmark::DoNotOptimize(profiler.calibrate(data));
}

} // anonymous namespace

BENCHMARK(BM_TransmitNaive);
BENCHMARK(BM_TransmitConditional);
BENCHMARK(BM_TransmitSecondOrder);
BENCHMARK(BM_TransmitDnaSimulator);
BENCHMARK(BM_SimulateCluster)->Arg(5)->Arg(27);
BENCHMARK(BM_SimulateDataset)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Calibrate)->Arg(20)->Unit(benchmark::kMillisecond);
