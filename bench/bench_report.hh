/**
 * @file
 * The machine-readable bench report funnel: every perf, table, fig
 * and ablation binary records its configuration, derived metrics and
 * benchmark rows here, and a BENCH_<name>.json document
 * (schema "dnasim.bench.v1", documented in EXPERIMENTS.md) is
 * written on process exit. The report embeds wall time, throughput
 * derived from the channel counters, peak RSS, the git revision and
 * a full dnasim.stats.v1 snapshot.
 */

#ifndef DNASIM_BENCH_BENCH_REPORT_HH
#define DNASIM_BENCH_BENCH_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.hh"

namespace dnasim
{

/** One google-benchmark (or hand-timed) measurement row. */
struct BenchRow
{
    std::string name;
    double real_time_ns = 0.0;
    double cpu_time_ns = 0.0;
    uint64_t iterations = 0;
    /// RSS high-water mark attributed to this row (bytes; 0 when
    /// unavailable). perf_main resets the kernel's VmHWM counter
    /// between rows, so each value bounds that row's own footprint —
    /// the statistic tools/benchdiff gates memory regressions on.
    uint64_t rss_high_water_bytes = 0;
};

/** Process-wide collector behind the BENCH_<name>.json funnel. */
class BenchReport
{
  public:
    static BenchReport &global();

    /**
     * Start collecting: names the report, fixes the master seed and
     * registers the exit-time writer. Safe to call once; later calls
     * only update the seed.
     */
    void init(const std::string &name, uint64_t seed);

    /** True once init() has run. */
    bool initialized() const { return initialized_; }

    uint64_t seed() const { return seed_; }

    /** Echo one configuration key (stringified) into the report. */
    void setConfig(const std::string &key, const std::string &value);
    void setConfig(const std::string &key, uint64_t value);
    void setConfig(const std::string &key, double value);

    /** Record a named scalar result (accuracy, gap, ...). */
    void addMetric(const std::string &name, double value);

    /** Record one benchmark measurement row. */
    void addRow(BenchRow row);

    /**
     * Write BENCH_<name>.json into the current directory (or
     * $DNASIM_BENCH_REPORT_DIR). Runs automatically at exit; call
     * explicitly to flush early. Returns the path written, empty on
     * failure or when init() never ran.
     */
    std::string write();

  private:
    BenchReport() = default;

    bool initialized_ = false;
    bool written_ = false;
    std::string name_;
    uint64_t seed_ = 0xbe9c;
    uint64_t start_ns_ = 0;
    std::vector<std::pair<std::string, std::string>> config_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<BenchRow> rows_;
};

/**
 * Deterministic Rng stream for bench code: master seed (from --seed
 * via BenchReport::init, default 0xbe9c) forked by @p salt.
 */
Rng benchRng(uint64_t salt);

/**
 * Peak resident set size in bytes: VmHWM from /proc/self/status,
 * falling back to getrusage(RUSAGE_SELF) where /proc is unavailable
 * (containers, macOS); 0 when neither source exists. A non-null
 * @p source receives which one answered ("proc_status", "getrusage"
 * or "none") — reports echo it as "rss_source" so cross-platform
 * numbers aren't compared blindly.
 */
uint64_t peakRssBytes(std::string *source = nullptr);

/**
 * Reset the kernel's peak-RSS counter (VmHWM) by writing "5" to
 * /proc/self/clear_refs, so the next peakRssBytes() reads the high
 * water of only the work since this call. Returns false where the
 * interface doesn't exist or the write is refused (non-Linux,
 * restricted containers) — peaks then stay monotonic and per-row
 * attribution degrades to "peak so far", never to a wrong number.
 */
bool clearPeakRss();

/** Short git revision of the source tree, "unknown" on failure. */
std::string gitRevision();

} // namespace dnasim

#endif // DNASIM_BENCH_BENCH_REPORT_HH
