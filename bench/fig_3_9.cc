/**
 * @file
 * Fig. 3.9 — pre-reconstruction spatial error distributions of the
 * A-shaped and V-shaped datasets at aggregate p = 0.15.
 *
 * The A-shaped curve is the paper's triangular distribution with
 * a = 0, b = 0.30 and mean 0.15 (peak mid-strand); the V-shaped
 * curve is its inversion. This harness verifies that the generated
 * data actually carries those spatial shapes before reconstruction.
 */

#include <iostream>

#include "analysis/error_positions.hh"
#include "bench_common.hh"
#include "core/ids_model.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Fig 3.9: pre-reconstruction spatial "
                 "distributions at p = 0.15 ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv);
    const size_t len = env.wetlab_config.strand_length;

    struct Shape
    {
        const char *label;
        PositionProfile profile;
        ProfileShape expected;
    };
    const std::vector<Shape> shapes = {
        {"A-shaped", PositionProfile::aShaped(len),
         ProfileShape::AShape},
        {"V-shaped", PositionProfile::vShaped(len),
         ProfileShape::VShape},
    };

    for (const auto &shape : shapes) {
        ErrorProfile profile =
            ErrorProfile::uniform(0.15, len).withSpatial(
                shape.profile);
        IdsChannelModel model = IdsChannelModel::skew(profile);
        Dataset data = modelDataset(env, model, 5, 0x390);

        Histogram gestalt = gestaltProfilePre(data);
        printProfile(gestalt, len,
                     std::string(shape.label) +
                         " data: gestalt-aligned error positions");
        auto measured = classifyShape(gestalt, len);
        std::cout << "  measured shape: "
                  << profileShapeName(measured) << " (expected "
                  << profileShapeName(shape.expected) << ")\n";
        auto stats = data.stats();
        std::cout << "  aggregate error rate: "
                  << fmtPercent(stats.aggregate_error_rate)
                  << "% (target 15%)\n\n";
    }
    return 0;
}
