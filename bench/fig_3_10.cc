/**
 * @file
 * Fig. 3.10 + section 3.4.2 — BMA on A-shaped vs V-shaped spatial
 * error distributions at p = 0.15, N = 5.
 *
 * Expected shape (paper): BMA is *more* accurate on the A-shaped
 * data — its two-way execution propagates errors to the middle
 * anyway, and the accurate terminal regions anchor both passes; the
 * residual profiles stay symmetric. On V-shaped data the terminal
 * regions are noisy, both passes start badly, accuracy drops, and
 * the residual profiles lose their symmetry.
 */

#include <iostream>

#include "analysis/error_positions.hh"
#include "bench_common.hh"
#include "core/ids_model.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Fig 3.10: BMA on A-shaped vs V-shaped data "
                 "(p = 0.15, N = 5) ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv);
    const size_t len = env.wetlab_config.strand_length;

    BmaLookahead bma;
    Iterative iterative;

    struct Row
    {
        const char *label;
        PositionProfile spatial;
    };
    const std::vector<Row> rows = {
        {"A-shaped", PositionProfile::aShaped(len)},
        {"V-shaped", PositionProfile::vShaped(len)},
    };

    TextTable table("accuracy % at p = 0.15, N = 5");
    table.setHeader({"distribution", "BMA strand", "BMA char",
                     "Iter strand", "Iter char"});
    std::vector<double> bma_strand, bma_char;
    for (const auto &row : rows) {
        ErrorProfile profile =
            ErrorProfile::uniform(0.15, len).withSpatial(row.spatial);
        IdsChannelModel model = IdsChannelModel::skew(profile);
        Dataset data = modelDataset(env, model, 5, 0x3a0);

        Rng r1 = env.rng(0x3a1), r2 = env.rng(0x3a2);
        AccuracyResult a_bma = evaluateAccuracy(data, bma, r1);
        AccuracyResult a_iter = evaluateAccuracy(data, iterative, r2);
        bma_strand.push_back(a_bma.perStrand());
        bma_char.push_back(a_bma.perChar());
        table.addRow({row.label, fmtPercent(a_bma.perStrand()),
                      fmtPercent(a_bma.perChar()),
                      fmtPercent(a_iter.perStrand()),
                      fmtPercent(a_iter.perChar())});

        Rng r3 = env.rng(0x3a3);
        auto estimates = reconstructAll(data, bma, r3);
        Histogram hamming = hammingProfilePost(data, estimates);
        printProfile(hamming, len,
                     std::string(row.label) +
                         ": post-BMA Hamming errors");
        auto thirds = bucketProfile(hamming, len, 3);
        std::cout << "  first/middle/last third: "
                  << fmtPercent(thirds[0].share) << "% / "
                  << fmtPercent(thirds[1].share) << "% / "
                  << fmtPercent(thirds[2].share) << "%\n\n";
    }
    table.print(std::cout);
    std::cout << "shape check: BMA should be more accurate on "
                 "A-shaped than V-shaped data (paper: terminal "
                 "errors break both BMA passes)\n"
              << "measured per-char: A " << fmtPercent(bma_char[0])
              << "% vs V " << fmtPercent(bma_char[1])
              << "%; per-strand: A " << fmtPercent(bma_strand[0])
              << "% vs V " << fmtPercent(bma_strand[1]) << "%\n";
    return 0;
}
