/**
 * @file
 * Section 4.3 ablation — the paper's proposed improvements to the
 * Iterative algorithm, implemented and measured:
 *
 *  1. two-way execution (like BMA): reconstruct forward and on the
 *     reversed cluster, keep the first half of each;
 *  2. similarity-weighted voting: copies that align well with the
 *     partial reconstruction get more weight.
 *
 * Expected shape: on end-skewed data (the real wetlab channel and
 * the skew-simulated data) two-way execution repairs the Iterative
 * algorithm's end-of-strand weakness and improves accuracy;
 * weighting helps most when clusters contain junk copies (aliens,
 * bursts).
 */

#include <iostream>

#include "analysis/error_positions.hh"
#include "bench_common.hh"
#include "core/ids_model.hh"
#include "reconstruct/iterative.hh"
#include "reconstruct/twoway_iterative.hh"
#include "reconstruct/weighted_iterative.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Ablation (section 4.3): two-way and weighted "
                 "Iterative ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv, 500);
    const size_t len = env.wetlab_config.strand_length;

    IdsChannelModel skew = IdsChannelModel::skew(env.profile);

    struct DataRow
    {
        std::string label;
        Dataset data;
    };
    ErrorProfile uniform_profile = ErrorProfile::uniform(0.12, len);
    IdsChannelModel uniform_model =
        IdsChannelModel::naive(uniform_profile);

    std::vector<DataRow> datasets;
    datasets.push_back({"real N=5", realAtCoverage(env, 5)});
    datasets.push_back({"real N=6", realAtCoverage(env, 6)});
    datasets.push_back({"skew-sim N=5",
                        modelDataset(env, skew, 5, 0xab1)});
    datasets.push_back({"uniform p=0.12 N=5",
                        modelDataset(env, uniform_model, 5, 0xab4)});

    Iterative oneway;
    TwoWayIterative twoway;
    WeightedIterative weighted;

    TextTable table("Iterative variants: per-strand % / per-char %");
    table.setHeader({"data", "one-way", "two-way", "weighted"});
    for (const auto &row : datasets) {
        std::vector<std::string> cells = {row.label};
        for (const Reconstructor *algo :
             {static_cast<const Reconstructor *>(&oneway),
              static_cast<const Reconstructor *>(&twoway),
              static_cast<const Reconstructor *>(&weighted)}) {
            Rng rng = env.rng(0xab2);
            AccuracyResult acc =
                evaluateAccuracy(row.data, *algo, rng);
            cells.push_back(fmtPercent(acc.perStrand()) + " / " +
                            fmtPercent(acc.perChar()));
        }
        table.addRow(cells);
    }
    table.print(std::cout);

    // Does two-way execution symmetrize the residual profile?
    Dataset &real5 = datasets[0].data;
    for (const Reconstructor *algo :
         {static_cast<const Reconstructor *>(&oneway),
          static_cast<const Reconstructor *>(&twoway)}) {
        Rng rng = env.rng(0xab3);
        auto estimates = reconstructAll(real5, *algo, rng);
        auto thirds = bucketProfile(
            hammingProfilePost(real5, estimates), len, 3);
        std::cout << algo->name() << " residual thirds: "
                  << fmtPercent(thirds[0].share) << "% / "
                  << fmtPercent(thirds[1].share) << "% / "
                  << fmtPercent(thirds[2].share) << "%\n";
    }
    std::cout
        << "measured outcome: two-way execution repairs the *head* "
           "of the strand (first-third residuals drop) and improves "
           "per-char accuracy on drift-dominated uniform data, but "
           "on the real channel the strand ends are physically "
           "truncated in ~1/3 of copies, so the backward pass "
           "anchors on corrupted starts and underperforms — the "
           "paper's section 4.3 hypothesis presumes the asymmetry "
           "is pure alignment drift. Weighted voting gives a "
           "consistent small win by down-weighting alien/burst "
           "copies.\n";
    return 0;
}
