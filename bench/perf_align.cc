/**
 * @file
 * Microbenchmarks of the alignment substrate: Levenshtein distance,
 * edit-operation backtraces, gestalt matching, Hamming profiling.
 */

#include <algorithm>
#include <string_view>

#include <benchmark/benchmark.h>

#include "bench_report.hh"
#include "align/edit_distance.hh"
#include "align/gestalt.hh"
#include "align/hamming.hh"
#include "base/packed.hh"
#include "base/rng.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"

using namespace dnasim;

namespace
{

struct Fixture
{
    Strand ref;
    Strand copy;

    explicit Fixture(size_t len, double error_rate)
    {
        Rng rng = benchRng(0xbe5e);
        StrandFactory factory;
        ref = factory.make(len, rng);
        ErrorProfile profile = ErrorProfile::uniform(error_rate, len);
        IdsChannelModel model = IdsChannelModel::naive(profile);
        copy = model.transmit(ref, rng);
    }
};

void
BM_Levenshtein(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(levenshtein(f.ref, f.copy));
}

void
BM_LevenshteinBitParallel(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            levenshteinBitParallel(f.ref, f.copy));
}

/**
 * The pre-Myers scalar path: adaptive banded DP, band widened until
 * the distance is certified — head-to-head baseline for the
 * bit-parallel kernel at the same inputs.
 */
size_t
scalarAdaptiveBanded(std::string_view a, std::string_view b)
{
    const size_t n = a.size(), m = b.size();
    size_t diff = n > m ? n - m : m - n;
    size_t band = std::max<size_t>(8, diff + 4);
    const size_t limit = std::max(n, m);
    for (;;) {
        size_t d = levenshteinBanded(a, b, band);
        if (d <= band || band >= limit)
            return d;
        band = std::min(limit, band * 2);
    }
}

void
BM_LevenshteinScalarBanded(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            scalarAdaptiveBanded(f.ref, f.copy));
}

void
BM_EditOps(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    Rng rng = benchRng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(editOps(f.ref, f.copy, &rng));
}

void
BM_GestaltScore(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(gestaltScore(f.ref, f.copy));
}

void
BM_GestaltErrorPositions(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            gestaltErrorPositions(f.ref, f.copy));
}

void
BM_HammingErrorPositions(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            hammingErrorPositions(f.ref, f.copy));
}

void
BM_HammingChars(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(hammingDistance(f.ref, f.copy));
}

void
BM_HammingPacked(benchmark::State &state)
{
    // Pack once, compare many times — the shape of a cluster loop
    // that holds packed representatives.
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    PackedStrand a(f.ref);
    PackedStrand b(f.copy);
    for (auto _ : state)
        benchmark::DoNotOptimize(hammingDistance(a, b));
}

void
BM_MyersPatternReuse(benchmark::State &state)
{
    // One pattern queried against many texts (the clusterReads
    // shape) vs. rebuilding the match tables per call, which is what
    // levenshtein() does.
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    MyersPattern pattern{std::string_view(f.ref)};
    for (auto _ : state)
        benchmark::DoNotOptimize(pattern.distance(f.copy));
}

void
BM_MyersPatternBounded(benchmark::State &state)
{
    // Thresholded query with an unrelated text: the early-abandon
    // path that dominates cluster probing of non-members.
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    Rng rng = benchRng(0x0ff);
    StrandFactory factory;
    Strand other = factory.make(f.ref.size(), rng);
    MyersPattern pattern{std::string_view(f.ref)};
    const size_t limit = f.ref.size() / 8;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            pattern.distanceBounded(other, limit));
}

} // anonymous namespace

BENCHMARK(BM_Levenshtein)->Arg(110)->Arg(220);
BENCHMARK(BM_LevenshteinBitParallel)->Arg(64)->Arg(150)->Arg(1000);
BENCHMARK(BM_LevenshteinScalarBanded)->Arg(64)->Arg(150)->Arg(1000);
BENCHMARK(BM_EditOps)->Arg(110)->Arg(220);
BENCHMARK(BM_GestaltScore)->Arg(110)->Arg(220);
BENCHMARK(BM_GestaltErrorPositions)->Arg(110);
BENCHMARK(BM_HammingErrorPositions)->Arg(110);
BENCHMARK(BM_HammingChars)->Arg(110)->Arg(1000);
BENCHMARK(BM_HammingPacked)->Arg(110)->Arg(1000);
BENCHMARK(BM_MyersPatternReuse)->Arg(110)->Arg(150);
BENCHMARK(BM_MyersPatternBounded)->Arg(110)->Arg(150);
