/**
 * @file
 * Microbenchmarks of the alignment substrate: Levenshtein distance,
 * edit-operation backtraces, gestalt matching, Hamming profiling.
 */

#include <algorithm>
#include <string_view>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_report.hh"
#include "align/edit_distance.hh"
#include "align/edit_script.hh"
#include "align/gestalt.hh"
#include "align/hamming.hh"
#include "align/myers_batch.hh"
#include "base/packed.hh"
#include "base/rng.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"

using namespace dnasim;

namespace
{

struct Fixture
{
    Strand ref;
    Strand copy;

    explicit Fixture(size_t len, double error_rate)
    {
        Rng rng = benchRng(0xbe5e);
        StrandFactory factory;
        ref = factory.make(len, rng);
        ErrorProfile profile = ErrorProfile::uniform(error_rate, len);
        IdsChannelModel model = IdsChannelModel::naive(profile);
        copy = model.transmit(ref, rng);
    }
};

void
BM_Levenshtein(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(levenshtein(f.ref, f.copy));
}

void
BM_LevenshteinBitParallel(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            levenshteinBitParallel(f.ref, f.copy));
}

/**
 * The pre-Myers scalar path: adaptive banded DP, band widened until
 * the distance is certified — head-to-head baseline for the
 * bit-parallel kernel at the same inputs.
 */
size_t
scalarAdaptiveBanded(std::string_view a, std::string_view b)
{
    const size_t n = a.size(), m = b.size();
    size_t diff = n > m ? n - m : m - n;
    size_t band = std::max<size_t>(8, diff + 4);
    const size_t limit = std::max(n, m);
    for (;;) {
        size_t d = levenshteinBanded(a, b, band);
        if (d <= band || band >= limit)
            return d;
        band = std::min(limit, band * 2);
    }
}

void
BM_LevenshteinScalarBanded(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            scalarAdaptiveBanded(f.ref, f.copy));
}

/**
 * Edit-script recovery across the engine's whole operating envelope:
 * strand length x error rate x tie-break mode. rng_mode 0 is the
 * deterministic consensus shape (Tier A bit-vectors), rng_mode 1 the
 * profiler's random tie-break shape (Tier B banded). Each row also
 * records its per-script cell-equivalent count (from
 * align.editops.cells) as an `editops.cells/...` report metric, so
 * ledger diffs see work-done changes even when time is noisy.
 */
void
BM_EditOps(benchmark::State &state)
{
    const auto len = static_cast<size_t>(state.range(0));
    const auto err_pct = static_cast<int>(state.range(1));
    const bool use_rng = state.range(2) != 0;
    Fixture f(len, static_cast<double>(err_pct) / 100.0);
    Rng rng = benchRng(7);
    std::vector<EditOp> ops;
    auto &cells = align_detail::EditOpsStats::get().cells;
    const uint64_t cells_before = cells.value();
    for (auto _ : state) {
        editOpsInto(f.ref, f.copy, use_rng ? &rng : nullptr, ops);
        benchmark::DoNotOptimize(ops.data());
    }
    if (state.iterations() > 0) {
        BenchReport::global().addMetric(
            "editops.cells/" + std::to_string(len) + "/" +
                std::to_string(err_pct) +
                (use_rng ? "/rng" : "/det"),
            static_cast<double>(cells.value() - cells_before) /
                static_cast<double>(state.iterations()));
    }
}

/**
 * The pinned flat-DP twin of BM_EditOps at the same inputs — the
 * in-place denominator for the engine speedup ratio.
 */
void
BM_EditOpsReference(benchmark::State &state)
{
    const auto len = static_cast<size_t>(state.range(0));
    const auto err_pct = static_cast<int>(state.range(1));
    const bool use_rng = state.range(2) != 0;
    Fixture f(len, static_cast<double>(err_pct) / 100.0);
    Rng rng = benchRng(7);
    std::vector<EditOp> ops;
    for (auto _ : state) {
        align_detail::editOpsReference(
            f.ref, f.copy, use_rng ? &rng : nullptr, ops);
        benchmark::DoNotOptimize(ops.data());
    }
}

void
editOpsArgs(benchmark::internal::Benchmark *b)
{
    for (int64_t rng_mode : {0, 1})
        for (int64_t len : {100, 150, 300})
            for (int64_t err_pct : {1, 3, 10})
                b->Args({len, err_pct, rng_mode});
}

void
BM_GestaltScore(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(gestaltScore(f.ref, f.copy));
}

void
BM_GestaltErrorPositions(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            gestaltErrorPositions(f.ref, f.copy));
}

void
BM_HammingErrorPositions(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            hammingErrorPositions(f.ref, f.copy));
}

void
BM_HammingChars(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(hammingDistance(f.ref, f.copy));
}

void
BM_HammingPacked(benchmark::State &state)
{
    // Pack once, compare many times — the shape of a cluster loop
    // that holds packed representatives.
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    PackedStrand a(f.ref);
    PackedStrand b(f.copy);
    for (auto _ : state)
        benchmark::DoNotOptimize(hammingDistance(a, b));
}

void
BM_MyersPatternReuse(benchmark::State &state)
{
    // One pattern queried against many texts (the clusterReads
    // shape) vs. rebuilding the match tables per call, which is what
    // levenshtein() does.
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    MyersPattern pattern{std::string_view(f.ref)};
    for (auto _ : state)
        benchmark::DoNotOptimize(pattern.distance(f.copy));
}

void
BM_MyersPatternBounded(benchmark::State &state)
{
    // Thresholded query with an unrelated text: the early-abandon
    // path that dominates cluster probing of non-members.
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    Rng rng = benchRng(0x0ff);
    StrandFactory factory;
    Strand other = factory.make(f.ref.size(), rng);
    MyersPattern pattern{std::string_view(f.ref)};
    const size_t limit = f.ref.size() / 8;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            pattern.distanceBounded(other, limit));
}

/**
 * One pattern verified against N candidate texts — the clusterReads
 * probe shape the batch kernel was built for.  accept=1 holds noisy
 * copies of the pattern (every lane runs to the end of its text, the
 * full-cost case); accept=0 holds unrelated strands under a tight
 * limit (the early-abandon case that dominates probing non-members).
 */
struct BatchFixture
{
    Strand ref;
    std::vector<Strand> store;
    std::vector<std::string_view> texts;
    MyersPattern pattern;
    size_t limit = 0;

    BatchFixture(size_t len, size_t n, bool accept)
    {
        Rng rng = benchRng(accept ? 0xacce97 : 0x4e9ec7);
        StrandFactory factory;
        ref = factory.make(len, rng);
        pattern.assign(ref);
        store.reserve(n);
        if (accept) {
            ErrorProfile profile = ErrorProfile::uniform(0.06, len);
            IdsChannelModel model = IdsChannelModel::naive(profile);
            for (size_t i = 0; i < n; ++i)
                store.push_back(model.transmit(ref, rng));
            limit = len / 2;
        } else {
            for (size_t i = 0; i < n; ++i)
                store.push_back(factory.make(len, rng));
            limit = len / 8;
        }
        texts.reserve(n);
        for (const auto &s : store)
            texts.emplace_back(s);
    }
};

void
BM_MyersBatchVerify(benchmark::State &state)
{
    BatchFixture f(static_cast<size_t>(state.range(0)),
                   static_cast<size_t>(state.range(1)),
                   state.range(2) != 0);
    std::vector<size_t> out(f.texts.size());
    for (auto _ : state) {
        myersBatchDistanceBounded(f.pattern, f.texts, f.limit, out);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(1));
}

void
BM_MyersScalarVerify(benchmark::State &state)
{
    // The scalar twin of BM_MyersBatchVerify: one distanceBounded
    // call per text, same inputs, for the batch speedup ratio.
    BatchFixture f(static_cast<size_t>(state.range(0)),
                   static_cast<size_t>(state.range(1)),
                   state.range(2) != 0);
    std::vector<size_t> out(f.texts.size());
    for (auto _ : state) {
        for (size_t i = 0; i < f.texts.size(); ++i)
            out[i] = f.pattern.distanceBounded(f.texts[i], f.limit);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(1));
}

void
batchVerifyArgs(benchmark::internal::Benchmark *b)
{
    for (int64_t accept : {0, 1})
        for (int64_t len : {100, 150, 300})
            for (int64_t n : {4, 8, 64, 256})
                b->Args({len, n, accept});
}

} // anonymous namespace

BENCHMARK(BM_Levenshtein)->Arg(110)->Arg(220);
BENCHMARK(BM_LevenshteinBitParallel)->Arg(64)->Arg(150)->Arg(1000);
BENCHMARK(BM_LevenshteinScalarBanded)->Arg(64)->Arg(150)->Arg(1000);
BENCHMARK(BM_EditOps)->Apply(editOpsArgs);
BENCHMARK(BM_EditOpsReference)->Apply(editOpsArgs);
BENCHMARK(BM_GestaltScore)->Arg(110)->Arg(220);
BENCHMARK(BM_GestaltErrorPositions)->Arg(110);
BENCHMARK(BM_HammingErrorPositions)->Arg(110);
BENCHMARK(BM_HammingChars)->Arg(110)->Arg(1000);
BENCHMARK(BM_HammingPacked)->Arg(110)->Arg(1000);
BENCHMARK(BM_MyersPatternReuse)->Arg(110)->Arg(150);
BENCHMARK(BM_MyersPatternBounded)->Arg(110)->Arg(150);
BENCHMARK(BM_MyersBatchVerify)->Apply(batchVerifyArgs);
BENCHMARK(BM_MyersScalarVerify)->Apply(batchVerifyArgs);
