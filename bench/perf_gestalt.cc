/**
 * @file
 * Microbenchmarks of the gestalt (Ratcliff-Obershelp) kernels on
 * paper-scale read pairs: 110-mers (the payload length used across
 * chapter 3) and 150-mers (Illumina read length). The dominant cost
 * is the recursive longest-common-substring search, so these rows
 * track the bit-parallel LCS kernel plus the scalar fallback that
 * non-ACGT content drops to.
 */

#include <string>
#include <string_view>

#include <benchmark/benchmark.h>

#include "bench_report.hh"
#include "align/gestalt.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"

using namespace dnasim;

namespace
{

struct Fixture
{
    Strand ref;
    Strand copy;

    explicit Fixture(size_t len, double error_rate)
    {
        Rng rng = benchRng(0x6e5f);
        StrandFactory factory;
        ref = factory.make(len, rng);
        ErrorProfile profile = ErrorProfile::uniform(error_rate, len);
        IdsChannelModel model = IdsChannelModel::naive(profile);
        copy = model.transmit(ref, rng);
    }
};

void
BM_MatchingBlocks(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(matchingBlocks(f.ref, f.copy));
}

void
BM_GestaltScore(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(gestaltScore(f.ref, f.copy));
}

void
BM_GestaltErrorPositions(benchmark::State &state)
{
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            gestaltErrorPositions(f.ref, f.copy));
}

void
BM_GestaltScoreHighNoise(benchmark::State &state)
{
    // Heavier noise fragments the match structure, deepening the
    // recursion — the worst case for per-subrange overhead.
    Fixture f(static_cast<size_t>(state.range(0)), 0.20);
    for (auto _ : state)
        benchmark::DoNotOptimize(gestaltScore(f.ref, f.copy));
}

void
BM_GestaltScoreScalarFallback(benchmark::State &state)
{
    // One non-ACGT character anywhere forces the scalar DP; this row
    // is the head-to-head baseline for the bit-parallel kernel.
    Fixture f(static_cast<size_t>(state.range(0)), 0.06);
    Strand copy = f.copy;
    if (!copy.empty())
        copy[copy.size() / 2] = 'N';
    for (auto _ : state)
        benchmark::DoNotOptimize(gestaltScore(f.ref, copy));
}

} // anonymous namespace

BENCHMARK(BM_MatchingBlocks)->Arg(110)->Arg(150);
BENCHMARK(BM_GestaltScore)->Arg(110)->Arg(150);
BENCHMARK(BM_GestaltErrorPositions)->Arg(110)->Arg(150);
BENCHMARK(BM_GestaltScoreHighNoise)->Arg(110);
BENCHMARK(BM_GestaltScoreScalarFallback)->Arg(110);
