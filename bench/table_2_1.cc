/**
 * @file
 * Table 2.1 — per-strand accuracy of BMA, DivBMA, and Iterative on
 * real (wetlab) data vs. the naive simulator and DNASimulator, at
 * custom (per-cluster-matched) coverage and at fixed coverage 26.
 *
 * Paper values:
 *   Real Nanopore   custom  BMA 77.88  DivBMA 2.73  Iterative 83.16
 *   Naive Simulator custom  BMA 93.77  DivBMA 3.33  Iterative 100
 *   DNASimulator    custom  BMA 95.91  DivBMA 0.38  Iterative 99.1
 *   DNASimulator    26      BMA 94.12  DivBMA 0.07  Iterative 100
 *
 * Expected shape: simulated data reconstructs notably *better* than
 * real data for BMA and Iterative, and DivBMA collapses everywhere.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/dnasimulator_model.hh"
#include "core/ids_model.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/divider_bma.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

namespace
{

struct Row
{
    std::string label;
    const Dataset *data;
    double paper_bma;
    double paper_div;
    double paper_iter;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Table 2.1: per-strand accuracy of TR "
                 "algorithms, real vs simulated ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv);

    // Simulated datasets. "Custom coverage" reuses the wetlab
    // dataset's per-cluster coverages (and references), exactly as
    // the paper's protocol prescribes.
    IdsChannelModel naive = IdsChannelModel::naive(env.profile);
    DnaSimulatorModel dnasim_model =
        DnaSimulatorModel::fromProfile(env.profile);

    Rng naive_rng = env.rng(0x201);
    Dataset naive_custom =
        ChannelSimulator(naive).simulateLike(env.wetlab, naive_rng);

    Rng ds_rng = env.rng(0x202);
    Dataset ds_custom = ChannelSimulator(dnasim_model)
                            .simulateLike(env.wetlab, ds_rng);

    std::vector<Strand> references;
    references.reserve(env.wetlab.size());
    for (const auto &c : env.wetlab)
        references.push_back(c.reference);
    FixedCoverage fixed26(26);
    Rng ds26_rng = env.rng(0x203);
    Dataset ds_fixed26 = ChannelSimulator(dnasim_model)
                             .simulate(references, fixed26, ds26_rng);

    const std::vector<Row> rows = {
        {"Real (wetlab)     custom", &env.wetlab, 77.88, 2.73, 83.16},
        {"Naive Simulator   custom", &naive_custom, 93.77, 3.33,
         100.0},
        {"DNASimulator      custom", &ds_custom, 95.91, 0.38, 99.1},
        {"DNASimulator      26", &ds_fixed26, 94.12, 0.07, 100.0},
    };

    BmaLookahead bma;
    DividerBma div_bma;
    Iterative iterative;

    TextTable table("per-strand accuracy % (measured, paper in "
                    "parentheses)");
    table.setHeader({"data/coverage", "BMA", "DivBMA", "Iterative"});
    for (const auto &row : rows) {
        Rng r1 = env.rng(0x301), r2 = env.rng(0x302),
            r3 = env.rng(0x303);
        double a_bma =
            evaluateAccuracy(*row.data, bma, r1).perStrand();
        double a_div =
            evaluateAccuracy(*row.data, div_bma, r2).perStrand();
        double a_iter =
            evaluateAccuracy(*row.data, iterative, r3).perStrand();
        table.addRow({row.label,
                      paperVsMeasured(row.paper_bma, a_bma),
                      paperVsMeasured(row.paper_div, a_div),
                      paperVsMeasured(row.paper_iter, a_iter)});
    }
    table.print(std::cout);

    std::cout << "shape checks: simulated data should beat real data "
                 "for BMA and Iterative;\nDivBMA per-strand accuracy "
                 "should collapse (single digits) on all rows.\n";
    return 0;
}
