/**
 * @file
 * Appendix C.4-C.8 — the overall post-reconstruction comparison:
 * positional residual profiles (condensed to thirds) for every
 * dataset of the progressive ladder (real, naive, +cond+del, +skew,
 * +second-order) under both Iterative and BMA at N = 5.
 *
 * Expected shape (paper): as the model refines, the simulated
 * datasets' residual profiles approach the real data's — end-heavy
 * for Iterative, mid-heavy for BMA.
 */

#include <iostream>

#include "analysis/error_positions.hh"
#include "bench_common.hh"
#include "core/ids_model.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Appendix C.4-C.8: overall post-reconstruction "
                 "profiles at N = 5 ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv, 500);
    const size_t len = env.wetlab_config.strand_length;

    IdsChannelModel naive = IdsChannelModel::naive(env.profile);
    IdsChannelModel conditional =
        IdsChannelModel::conditional(env.profile);
    IdsChannelModel skew = IdsChannelModel::skew(env.profile);
    IdsChannelModel second =
        IdsChannelModel::secondOrder(env.profile);

    struct Row
    {
        std::string label;
        Dataset data;
    };
    std::vector<Row> rows;
    rows.push_back({"Real (wetlab)", realAtCoverage(env, 5)});
    rows.push_back({"Naive", modelDataset(env, naive, 5, 0xc01)});
    rows.push_back(
        {"+Cond+LD", modelDataset(env, conditional, 5, 0xc02)});
    rows.push_back({"+Skew", modelDataset(env, skew, 5, 0xc03)});
    rows.push_back({"+2nd-order", modelDataset(env, second, 5, 0xc04)});

    BmaLookahead bma;
    Iterative iterative;

    for (const Reconstructor *algo :
         {static_cast<const Reconstructor *>(&iterative),
          static_cast<const Reconstructor *>(&bma)}) {
        TextTable table(std::string(algo->name()) +
                        ": residual error share by strand third "
                        "(Hamming / gestalt)");
        table.setHeader({"data", "first%", "middle%", "last%",
                         "g.first%", "g.middle%", "g.last%"});
        for (const auto &row : rows) {
            Rng rng = env.rng(0xc10);
            auto estimates = reconstructAll(row.data, *algo, rng);
            auto h = bucketProfile(
                hammingProfilePost(row.data, estimates), len, 3);
            auto g = bucketProfile(
                gestaltProfilePost(row.data, estimates), len, 3);
            table.addRow({row.label, fmtPercent(h[0].share),
                          fmtPercent(h[1].share),
                          fmtPercent(h[2].share),
                          fmtPercent(g[0].share),
                          fmtPercent(g[1].share),
                          fmtPercent(g[2].share)});
        }
        table.print(std::cout);
    }
    std::cout << "shape check: the +Skew and +2nd-order rows should "
                 "resemble the real row more than the naive row "
                 "does.\n";
    return 0;
}
