/**
 * @file
 * Microbenchmarks of the trace-reconstruction algorithms at
 * realistic cluster sizes.
 */

#include <benchmark/benchmark.h>

#include "analysis/accuracy.hh"
#include "bench_report.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/divider_bma.hh"
#include "reconstruct/iterative.hh"
#include "reconstruct/majority.hh"
#include "reconstruct/twoway_iterative.hh"

using namespace dnasim;

namespace
{

std::vector<Strand>
makeCluster(size_t coverage, double error_rate, Rng &rng)
{
    StrandFactory factory;
    Strand ref = factory.make(110, rng);
    ErrorProfile profile = ErrorProfile::uniform(error_rate, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    std::vector<Strand> copies;
    copies.reserve(coverage);
    for (size_t i = 0; i < coverage; ++i)
        copies.push_back(model.transmit(ref, rng));
    return copies;
}

void
reconstructLoop(benchmark::State &state, const Reconstructor &algo)
{
    Rng rng = benchRng(0x4ec);
    auto copies = makeCluster(static_cast<size_t>(state.range(0)),
                              0.06, rng);
    for (auto _ : state) {
        Rng r = benchRng(42);
        benchmark::DoNotOptimize(algo.reconstruct(copies, 110, r));
    }
}

void
BM_Majority(benchmark::State &state)
{
    MajorityVote algo;
    reconstructLoop(state, algo);
}

void
BM_Bma(benchmark::State &state)
{
    BmaLookahead algo;
    reconstructLoop(state, algo);
}

void
BM_DividerBma(benchmark::State &state)
{
    DividerBma algo;
    reconstructLoop(state, algo);
}

void
BM_Iterative(benchmark::State &state)
{
    Iterative algo;
    reconstructLoop(state, algo);
}

void
BM_TwoWayIterative(benchmark::State &state)
{
    TwoWayIterative algo;
    reconstructLoop(state, algo);
}

/**
 * Dataset-scale reconstruction: reconstructAll() over many clusters,
 * parallelized by --threads — the thread-scaling probe for
 * BENCH_perf_reconstruct.json.
 */
void
BM_ReconstructAll(benchmark::State &state)
{
    Rng rng = benchRng(0x4ed);
    StrandFactory factory;
    const auto clusters = static_cast<size_t>(state.range(0));
    std::vector<Strand> refs;
    refs.reserve(clusters);
    for (size_t i = 0; i < clusters; ++i)
        refs.push_back(factory.make(110, rng));
    ErrorProfile profile = ErrorProfile::uniform(0.06, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    ChannelSimulator sim(model);
    FixedCoverage coverage(10);
    Dataset data = sim.simulate(refs, coverage, rng);
    BmaLookahead algo;
    size_t done = 0;
    for (auto _ : state) {
        Rng r = benchRng(0x4ee);
        benchmark::DoNotOptimize(reconstructAll(data, algo, r));
        done += clusters;
    }
    state.SetItemsProcessed(static_cast<int64_t>(done));
}

} // anonymous namespace

BENCHMARK(BM_Majority)->Arg(5)->Arg(27);
BENCHMARK(BM_Bma)->Arg(5)->Arg(27);
BENCHMARK(BM_DividerBma)->Arg(5)->Arg(27);
BENCHMARK(BM_Iterative)->Arg(5)->Arg(27)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TwoWayIterative)->Arg(5)->Arg(27)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ReconstructAll)->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
