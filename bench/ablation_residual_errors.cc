/**
 * @file
 * Section 3.4.1 ablation — residual-error composition after
 * reconstruction: what fraction of the remaining errors are
 * deletions, substitutions, insertions, per algorithm and dataset.
 *
 * Expected shape (paper): the most common errors after Iterative
 * reconstruction are deletions (~90% of the total).
 */

#include <iostream>

#include "analysis/residual.hh"
#include "bench_common.hh"
#include "core/ids_model.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/iterative.hh"
#include "reconstruct/majority.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Ablation (section 3.4.1): residual error "
                 "composition ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv, 500);
    const size_t len = env.wetlab_config.strand_length;

    ErrorProfile uniform = ErrorProfile::uniform(0.15, len);
    IdsChannelModel uniform_model = IdsChannelModel::naive(uniform);

    struct DataRow
    {
        std::string label;
        Dataset data;
    };
    std::vector<DataRow> datasets;
    datasets.push_back({"real N=5", realAtCoverage(env, 5)});
    datasets.push_back({"uniform p=0.15 N=5",
                        modelDataset(env, uniform_model, 5, 0xae1)});

    BmaLookahead bma;
    Iterative iterative;
    IterativeOptions raw_options;
    raw_options.enforce_length = false;
    Iterative iterative_raw(raw_options);
    MajorityVote majority;

    TextTable table("residual error mix: del% / sub% / ins%");
    table.setHeader({"data", "Iterative", "Iterative-raw", "BMA",
                     "Majority"});
    for (const auto &row : datasets) {
        std::vector<std::string> cells = {row.label};
        for (const Reconstructor *algo :
             {static_cast<const Reconstructor *>(&iterative),
              static_cast<const Reconstructor *>(&iterative_raw),
              static_cast<const Reconstructor *>(&bma),
              static_cast<const Reconstructor *>(&majority)}) {
            Rng rng = env.rng(0xae2);
            auto estimates = reconstructAll(row.data, *algo, rng);
            ResidualErrorStats stats =
                residualErrors(row.data, estimates);
            cells.push_back(fmtPercent(stats.delShare()) + " / " +
                            fmtPercent(stats.subShare()) + " / " +
                            fmtPercent(stats.insShare()));
        }
        table.addRow(cells);
    }
    table.print(std::cout);
    std::cout << "shape check: deletions should dominate the "
                 "Iterative-raw residuals (paper: ~90% — the "
                 "original algorithm emits variable-length "
                 "estimates; length enforcement balances del/ins "
                 "counts by construction).\n";
    return 0;
}
