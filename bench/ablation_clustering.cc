/**
 * @file
 * Section 3.1 ablation — perfect (pseudo-) clustering vs imperfect
 * clustering: the paper evaluates on pseudo-clustered data to avoid
 * "introduction of errors of a characteristic distribution due to
 * the nature of the clustering algorithm"; this harness measures
 * how large that clustering-induced accuracy loss actually is.
 */

#include <iostream>

#include "analysis/clustered_accuracy.hh"
#include "bench_common.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Ablation (section 3.1): pseudo-clustering vs "
                 "imperfect clustering ===\n\n";
    // A smaller default: re-clustering pools every read.
    BenchEnv env = makeBenchEnv(argc, argv, 120);

    Iterative iterative;

    // Perfect clustering: the simulator's own grouping.
    Rng r1 = env.rng(0xe1);
    AccuracyResult perfect =
        evaluateAccuracy(env.wetlab, iterative, r1);

    // Imperfect clustering: pool, shuffle, re-cluster, reconstruct —
    // once per candidate-generation backend.
    ClusterOptions options;
    options.distance_threshold = 20;
    options.index = ClusterIndexKind::Greedy;
    Rng r2 = env.rng(0xe2);
    ClusteredAccuracy greedy = evaluateWithClustering(
        env.wetlab, options, iterative, r2);

    options.index = ClusterIndexKind::Sketch;
    Rng r3 = env.rng(0xe2);
    ClusteredAccuracy sketch = evaluateWithClustering(
        env.wetlab, options, iterative, r3);

    TextTable table("Iterative per-strand accuracy, full coverage");
    table.setHeader({"clustering", "clusters", "per-strand %"});
    table.addRow({"perfect (pseudo)",
                  std::to_string(perfect.num_clusters),
                  fmtPercent(perfect.perStrand())});
    table.addRow({"greedy re-clustering",
                  std::to_string(greedy.num_clusters),
                  fmtPercent(greedy.perStrand())});
    table.addRow({"sketch re-clustering",
                  std::to_string(sketch.num_clusters),
                  fmtPercent(sketch.perStrand())});
    table.print(std::cout);

    std::cout << "shape check: imperfect clustering should cost "
                 "some per-strand accuracy (split/merged clusters) "
                 "but stay in the same regime — justifying the "
                 "paper's choice to factor clustering out of the "
                 "simulator evaluation.\n";
    return 0;
}
