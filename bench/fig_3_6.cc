/**
 * @file
 * Fig. 3.6 — second-order error census of the real (wetlab) dataset
 * before reconstruction: the most common specific errors (deletion /
 * substitution / insertion of particular bases), their share of all
 * errors, and the spatial skew of each.
 *
 * Expected shape (paper): the 10 most common second-order errors are
 * all single-base events and together cover ~56% of all errors; the
 * common ones carry a spatial skew with significantly more errors at
 * one of the terminal positions.
 */

#include <iostream>

#include "analysis/second_order.hh"
#include "bench_common.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Fig 3.6: second-order errors in the wetlab "
                 "dataset ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv);
    const size_t len = env.wetlab_config.strand_length;

    SecondOrderCensus census = secondOrderCensus(env.wetlab);

    // Terminal concentration per error: share of the first two and
    // last two strand positions vs the uniform expectation
    // (4 / len).
    auto terminal_share = [&](const Histogram &positions) {
        uint64_t total = positions.total();
        if (total == 0)
            return 0.0;
        uint64_t terminal = positions.count(0) + positions.count(1) +
                            positions.count(len - 2) +
                            positions.count(len - 1);
        return static_cast<double>(terminal) /
               static_cast<double>(total);
    };
    const double uniform_terminal =
        4.0 / static_cast<double>(len);

    TextTable table("top second-order errors (pre-reconstruction)");
    table.setHeader({"error", "count", "share%", "terminal%",
                     "terminal-vs-uniform"});
    size_t skewed = 0;
    for (size_t i = 0; i < std::min<size_t>(10, census.entries.size());
         ++i) {
        const auto &e = census.entries[i];
        double ts = terminal_share(e.positions);
        double factor = ts / uniform_terminal;
        if (factor > 2.0)
            ++skewed;
        table.addRow({e.key.str(), std::to_string(e.count),
                      fmtPercent(e.share), fmtPercent(ts),
                      fmtDouble(factor) + "x"});
    }
    table.print(std::cout);

    std::cout << "top-10 cover " << fmtPercent(census.topShare(10))
              << "% of all errors (paper: 56%)\n";
    std::cout << skewed << "/10 top errors have terminal positions "
              << "at >2x their uniform share (paper: common errors "
                 "skew to a terminal position)\n";
    return 0;
}
