/**
 * @file
 * Section 3.1 ablation — the alternative (closed-form) evaluation
 * criteria: error-statistics chi-square distance, positional
 * chi-square distance, copy-length distance, and gestalt-score
 * distance between the real data and each simulator of the ladder.
 *
 * Expected shape: the distances rank the simulators the same way
 * the reconstruction-accuracy metric does — each refinement step
 * moves the simulated data closer to the real data, with the
 * positional distance collapsing once spatial skew is modelled.
 */

#include <iostream>

#include "analysis/dataset_distance.hh"
#include "bench_common.hh"
#include "core/dnasimulator_model.hh"
#include "core/ids_model.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Ablation (section 3.1): closed-form "
                 "simulator-vs-real distances ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv, 500);

    DatasetSignature real_sig = datasetSignature(env.wetlab);

    IdsChannelModel naive = IdsChannelModel::naive(env.profile);
    IdsChannelModel conditional =
        IdsChannelModel::conditional(env.profile);
    IdsChannelModel skew = IdsChannelModel::skew(env.profile);
    IdsChannelModel second =
        IdsChannelModel::secondOrder(env.profile);
    DnaSimulatorModel dnasim_model =
        DnaSimulatorModel::fromProfile(env.profile);

    struct Row
    {
        std::string label;
        const ErrorModel *model;
    };
    const std::vector<Row> rows = {
        {"DNASimulator", &dnasim_model},
        {"Naive", &naive},
        {"+Cond+LD", &conditional},
        {"+Skew", &skew},
        {"+2nd-order", &second},
    };

    TextTable table("chi-square distance to the real dataset "
                    "(smaller is better)");
    table.setHeader({"model", "types", "positions", "lengths",
                     "gestalt", "per-copy", "mean"});
    std::vector<double> means;
    for (const auto &row : rows) {
        Rng rng = env.rng(0xd1);
        ChannelSimulator sim(*row.model);
        Dataset simulated = sim.simulateLike(env.wetlab, rng);
        DatasetDistance d =
            datasetDistance(real_sig, datasetSignature(simulated));
        means.push_back(d.mean());
        table.addRow({row.label, fmtDouble(d.error_types, 4),
                      fmtDouble(d.positions, 4),
                      fmtDouble(d.lengths, 4),
                      fmtDouble(d.gestalt_scores, 4),
                      fmtDouble(d.errors_per_copy, 4),
                      fmtDouble(d.mean(), 4)});
    }
    table.print(std::cout);

    std::cout << "shape check: the mean distance should shrink down "
                 "the ladder (refined models are closer to real "
                 "data); measured naive "
              << fmtDouble(means[1], 4) << " -> second-order "
              << fmtDouble(means.back(), 4) << "\n";
    return 0;
}
