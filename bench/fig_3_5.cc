/**
 * @file
 * Fig. 3.5 (and appendix C.2) — post-reconstruction positional
 * error profiles of *simulated data with spatial skew* at N = 5
 * (and 6), for the Iterative and BMA algorithms.
 *
 * Expected shapes (paper):
 *  - Iterative: end-heavy residuals (gestalt) and linear Hamming
 *    growth, mirroring the real data;
 *  - BMA: the Hamming curve is *no longer symmetric* — both halves
 *    trend linearly but the latter half sits on a higher baseline,
 *    because of the large number of injected errors toward the end
 *    of the strand (section 3.3.2).
 */

#include <iostream>

#include "analysis/error_positions.hh"
#include "bench_common.hh"
#include "core/ids_model.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Fig 3.5 / C.2: post-reconstruction analysis of "
                 "skew-simulated data at N = 5, 6 ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv, 500);
    const size_t len = env.wetlab_config.strand_length;

    IdsChannelModel skew = IdsChannelModel::skew(env.profile);
    BmaLookahead bma;
    Iterative iterative;

    for (size_t n : {size_t(5), size_t(6)}) {
        Dataset data = modelDataset(env, skew, n, 0x350 + n);
        for (const Reconstructor *algo :
             {static_cast<const Reconstructor *>(&iterative),
              static_cast<const Reconstructor *>(&bma)}) {
            Rng rng = env.rng(0x355 + n);
            auto estimates = reconstructAll(data, *algo, rng);
            Histogram hamming = hammingProfilePost(data, estimates);
            Histogram gestalt = gestaltProfilePost(data, estimates);

            printProfile(hamming, len,
                         "N=" + std::to_string(n) + " " +
                             algo->name() +
                             " Hamming errors (skew data)");
            auto thirds = bucketProfile(hamming, len, 3);
            std::cout << "  first/last third share: "
                      << fmtPercent(thirds.front().share) << "% / "
                      << fmtPercent(thirds.back().share)
                      << "% (paper: latter half has the greater "
                         "baseline)\n\n";

            printProfile(gestalt, len,
                         "N=" + std::to_string(n) + " " +
                             algo->name() +
                             " gestalt-aligned errors (skew data)");
            std::cout << "\n";
        }
    }
    return 0;
}
