/**
 * @file
 * Shared main() for the perf_* microbenchmarks: google-benchmark's
 * usual driver plus a reporter that funnels every measurement into
 * the BENCH_<name>.json report, plus flags consumed before
 * benchmark::Initialize:
 *   --seed S        master RNG seed, recorded in the report
 *   --threads N     worker threads, recorded in the report
 *   --simd T        batch alignment kernel tier override
 *                   (auto/scalar/avx2/avx512), recorded in the
 *                   report so baselines pin the tier they measured
 *   --quick         CI perf-gate mode: short repetitions
 *                   (--benchmark_min_time=0.05s) so a full perf_*
 *                   binary finishes in seconds; noise is handled by
 *                   the ledger diff over repeats, not by long runs
 *   --profile       enable tracing + RSS sampling; the phase profile
 *                   is printed to stderr and embedded in the report
 *   --trace-out F   write a Chrome trace JSON (flushed at exit)
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "align/simd_dispatch.hh"
#include "bench_report.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"
#include "par/thread_pool.hh"

namespace
{

class ReportingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        // High water since the previous report batch: ReportRuns
        // fires after each benchmark family finishes, so this bounds
        // the footprint of the rows reported here. Where VmHWM can't
        // be reset the value decays to "peak so far" (monotonic);
        // rss_source in the report header says which.
        const uint64_t rss_high_water = dnasim::peakRssBytes();
        for (const auto &run : reports) {
            if (run.error_occurred ||
                run.run_type == Run::RT_Aggregate)
                continue;
            dnasim::BenchRow row;
            row.name = run.benchmark_name();
            row.iterations = static_cast<uint64_t>(run.iterations);
            const double iters =
                run.iterations > 0
                    ? static_cast<double>(run.iterations)
                    : 1.0;
            row.real_time_ns = run.real_accumulated_time / iters * 1e9;
            row.cpu_time_ns = run.cpu_accumulated_time / iters * 1e9;
            row.rss_high_water_bytes = rss_high_water;
            dnasim::BenchReport::global().addRow(std::move(row));
        }
        dnasim::clearPeakRss();
        ConsoleReporter::ReportRuns(reports);
    }
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    uint64_t seed = 0xbe9c;
    uint64_t threads = 0;
    std::string simd = "auto";
    bool quick = false;
    bool profile = false;
    std::string trace_out;
    std::vector<char *> keep;
    // Owns strings injected into argv (benchmark::Initialize keeps
    // pointers into them).
    static std::vector<std::string> injected;
    keep.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--seed=", 0) == 0) {
            seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
            continue;
        }
        if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
            continue;
        }
        if (arg.rfind("--threads=", 0) == 0) {
            threads = std::strtoull(arg.c_str() + 10, nullptr, 0);
            continue;
        }
        if (arg == "--threads" && i + 1 < argc) {
            threads = std::strtoull(argv[++i], nullptr, 0);
            continue;
        }
        if (arg.rfind("--simd=", 0) == 0) {
            simd = arg.substr(7);
            continue;
        }
        if (arg == "--simd" && i + 1 < argc) {
            simd = argv[++i];
            continue;
        }
        if (arg == "--quick") {
            quick = true;
            continue;
        }
        if (arg == "--profile") {
            profile = true;
            continue;
        }
        if (arg.rfind("--trace-out=", 0) == 0) {
            trace_out = arg.substr(12);
            continue;
        }
        if (arg == "--trace-out" && i + 1 < argc) {
            trace_out = argv[++i];
            continue;
        }
        keep.push_back(argv[i]);
    }
    if (quick) {
        // google-benchmark 1.7 takes plain seconds here; later
        // releases also accept the "0.05s" suffix form.
        injected.push_back("--benchmark_min_time=0.05");
        keep.push_back(injected.back().data());
    }
    int kept_argc = static_cast<int>(keep.size());

    dnasim::par::setThreads(static_cast<size_t>(threads));
    if (!dnasim::applySimdOverride(simd)) {
        std::cerr << "--simd must be auto, scalar, avx2 or avx512, "
                     "got '"
                  << simd << "'\n";
        return 1;
    }

    std::string name = argv[0];
    auto slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);

    dnasim::BenchReport::global().init(name, seed);
    dnasim::BenchReport::global().setConfig("seed", seed);
    dnasim::BenchReport::global().setConfig(
        "threads", static_cast<uint64_t>(dnasim::par::numThreads()));
    dnasim::BenchReport::global().setConfig(
        "simd",
        std::string(dnasim::simdTierName(dnasim::activeSimdTier())));
    dnasim::BenchReport::global().setConfig(
        "quick", static_cast<uint64_t>(quick ? 1 : 0));

    if (profile || !trace_out.empty()) {
        dnasim::obs::Trace::global().enable();
        if (!trace_out.empty())
            dnasim::obs::Trace::global().setExitFlushPath(trace_out);
    }
    if (profile)
        dnasim::obs::RssSampler::global().start();

    benchmark::Initialize(&kept_argc, keep.data());
    if (benchmark::ReportUnrecognizedArguments(kept_argc, keep.data()))
        return 1;
    ReportingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (profile) {
        dnasim::obs::RssSampler::global().stop();
        std::cerr << dnasim::obs::profileToText(
            dnasim::obs::buildProfile(dnasim::obs::Trace::global()));
    }
    // BenchReport::write() runs at exit and flushes the trace too;
    // nothing further to do here.
    return 0;
}
