/**
 * @file
 * Shared main() for the perf_* microbenchmarks: google-benchmark's
 * usual driver plus a reporter that funnels every measurement into
 * the BENCH_<name>.json report, plus --seed and --threads flags
 * (consumed before benchmark::Initialize) so runs are reproducible
 * and both the seed and the worker-thread count are recorded in the
 * report.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_report.hh"
#include "par/thread_pool.hh"

namespace
{

class ReportingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const auto &run : reports) {
            if (run.error_occurred ||
                run.run_type == Run::RT_Aggregate)
                continue;
            dnasim::BenchRow row;
            row.name = run.benchmark_name();
            row.iterations = static_cast<uint64_t>(run.iterations);
            const double iters =
                run.iterations > 0
                    ? static_cast<double>(run.iterations)
                    : 1.0;
            row.real_time_ns = run.real_accumulated_time / iters * 1e9;
            row.cpu_time_ns = run.cpu_accumulated_time / iters * 1e9;
            dnasim::BenchReport::global().addRow(std::move(row));
        }
        ConsoleReporter::ReportRuns(reports);
    }
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    uint64_t seed = 0xbe9c;
    uint64_t threads = 0;
    std::vector<char *> keep;
    keep.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--seed=", 0) == 0) {
            seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
            continue;
        }
        if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
            continue;
        }
        if (arg.rfind("--threads=", 0) == 0) {
            threads = std::strtoull(arg.c_str() + 10, nullptr, 0);
            continue;
        }
        if (arg == "--threads" && i + 1 < argc) {
            threads = std::strtoull(argv[++i], nullptr, 0);
            continue;
        }
        keep.push_back(argv[i]);
    }
    int kept_argc = static_cast<int>(keep.size());

    dnasim::par::setThreads(static_cast<size_t>(threads));

    std::string name = argv[0];
    auto slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);

    dnasim::BenchReport::global().init(name, seed);
    dnasim::BenchReport::global().setConfig("seed", seed);
    dnasim::BenchReport::global().setConfig(
        "threads", static_cast<uint64_t>(dnasim::par::numThreads()));

    benchmark::Initialize(&kept_argc, keep.data());
    if (benchmark::ReportUnrecognizedArguments(kept_argc, keep.data()))
        return 1;
    ReportingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return 0;
}
