#include "bench_common.hh"

#include <cstdlib>
#include <iostream>

#include "align/simd_dispatch.hh"
#include "base/logging.hh"
#include "bench_report.hh"
#include "core/ids_model.hh"
#include "par/thread_pool.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/iterative.hh"

namespace dnasim
{

namespace
{

std::string
harnessName(const char *argv0)
{
    std::string name = argv0 ? argv0 : "bench";
    auto slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    return name;
}

} // anonymous namespace

BenchEnv
makeBenchEnv(int argc, char **argv, size_t default_clusters)
{
    Args args(argc - 1, argv + 1);

    BenchEnv env;
    if (const char *from_env = std::getenv("DNASIM_BENCH_CLUSTERS"))
        default_clusters =
            static_cast<size_t>(std::strtoull(from_env, nullptr, 10));
    env.clusters = static_cast<size_t>(
        args.getInt("clusters",
                    static_cast<int64_t>(default_clusters)));
    env.seed = args.getSeed("seed", 0xbe9c);
    par::setThreads(static_cast<size_t>(args.getInt("threads", 0)));
    const std::string simd = args.get("simd", "auto");
    if (!applySimdOverride(simd.empty() ? "auto" : simd)) {
        DNASIM_FATAL("--simd must be auto, scalar, avx2 or avx512, "
                     "got '", simd, "'");
    }

    auto &report = BenchReport::global();
    report.init(harnessName(argc > 0 ? argv[0] : nullptr), env.seed);
    report.setConfig("clusters", static_cast<uint64_t>(env.clusters));
    report.setConfig("seed", env.seed);
    report.setConfig("threads",
                     static_cast<uint64_t>(par::numThreads()));
    report.setConfig("simd",
                     std::string(simdTierName(activeSimdTier())));

    env.wetlab_config.num_clusters = env.clusters;
    NanoporeDatasetGenerator generator(env.wetlab_config);
    Rng gen_rng = env.rng(0x3e7);
    env.wetlab = generator.generate(gen_rng);

    ErrorProfiler profiler;
    env.profile = profiler.calibrate(env.wetlab);

    auto stats = env.wetlab.stats();
    report.addMetric("wetlab_mean_coverage", stats.mean_coverage);
    report.addMetric("wetlab_aggregate_error_rate",
                     stats.aggregate_error_rate);
    std::cout << "# wetlab dataset: " << stats.num_clusters
              << " clusters, " << stats.num_copies
              << " copies, mean coverage "
              << fmtDouble(stats.mean_coverage)
              << ", aggregate error "
              << fmtPercent(stats.aggregate_error_rate)
              << "% (paper: 10000 clusters, 269709 copies, "
              << "coverage 26.97, error 5.9%)\n\n";
    return env;
}

std::string
paperVsMeasured(double paper_percent, double measured_ratio)
{
    return fmtPercent(measured_ratio) + " (paper " +
           fmtDouble(paper_percent) + ")";
}

Dataset
realAtCoverage(const BenchEnv &env, size_t n)
{
    Dataset shuffled = env.wetlab;
    Rng rng = env.rng(0x5b0f);
    shuffled.shuffleWithinClusters(rng);
    return shuffled.fixedCoverage(n, /*min_coverage=*/10);
}

std::vector<Strand>
wetlabReferences(const BenchEnv &env)
{
    std::vector<Strand> refs;
    refs.reserve(env.wetlab.size());
    for (const auto &c : env.wetlab)
        refs.push_back(c.reference);
    return refs;
}

Dataset
modelDataset(const BenchEnv &env, const ErrorModel &model, size_t n,
             uint64_t salt)
{
    ChannelSimulator sim(model);
    FixedCoverage coverage(n);
    Rng rng = env.rng(salt);
    return sim.simulate(wetlabReferences(env), coverage, rng);
}

int
runProgressiveTable(int argc, char **argv, size_t coverage,
                    const std::vector<ProgressiveRow> &rows)
{
    std::cout << "=== Table 3." << (coverage == 5 ? 1 : 2)
              << ": progressive model refinement at N = " << coverage
              << " ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv, 500);

    // The real data at the fixed coverage, then one simulated
    // dataset per model of the paper's ladder, all calibrated from
    // the real data.
    IdsChannelModel naive = IdsChannelModel::naive(env.profile);
    IdsChannelModel conditional =
        IdsChannelModel::conditional(env.profile);
    IdsChannelModel skew = IdsChannelModel::skew(env.profile);
    IdsChannelModel second = IdsChannelModel::secondOrder(env.profile);

    std::vector<Dataset> datasets;
    datasets.push_back(realAtCoverage(env, coverage));
    datasets.push_back(modelDataset(env, naive, coverage, 0x401));
    datasets.push_back(modelDataset(env, conditional, coverage,
                                    0x402));
    datasets.push_back(modelDataset(env, skew, coverage, 0x403));
    datasets.push_back(modelDataset(env, second, coverage, 0x404));
    DNASIM_ASSERT(rows.size() == datasets.size(),
                  "row/dataset mismatch");

    BmaLookahead bma;
    Iterative iterative;

    TextTable table("accuracy % (measured, paper in parentheses)");
    table.setHeader({"data", "BMA strand", "BMA char", "Iter strand",
                     "Iter char"});
    std::vector<double> bma_strand, iter_strand, bma_char, iter_char;
    for (size_t i = 0; i < datasets.size(); ++i) {
        Rng r1 = env.rng(0x501 + i), r2 = env.rng(0x601 + i);
        AccuracyResult a_bma =
            evaluateAccuracy(datasets[i], bma, r1);
        AccuracyResult a_iter =
            evaluateAccuracy(datasets[i], iterative, r2);
        bma_strand.push_back(a_bma.perStrand());
        bma_char.push_back(a_bma.perChar());
        iter_strand.push_back(a_iter.perStrand());
        iter_char.push_back(a_iter.perChar());
        auto &report = BenchReport::global();
        report.addMetric(rows[i].label + ".bma_strand",
                         a_bma.perStrand());
        report.addMetric(rows[i].label + ".bma_char", a_bma.perChar());
        report.addMetric(rows[i].label + ".iter_strand",
                         a_iter.perStrand());
        report.addMetric(rows[i].label + ".iter_char",
                         a_iter.perChar());
        table.addRow({rows[i].label,
                      paperVsMeasured(rows[i].paper_bma_strand,
                                      a_bma.perStrand()),
                      paperVsMeasured(rows[i].paper_bma_char,
                                      a_bma.perChar()),
                      paperVsMeasured(rows[i].paper_iter_strand,
                                      a_iter.perStrand()),
                      paperVsMeasured(rows[i].paper_iter_char,
                                      a_iter.perChar())});
    }
    table.print(std::cout);

    // The abstract's headline: the refined simulator's BMA gap to
    // real data vs the naive/DNASimulator-style gap.
    double full_gap =
        (bma_strand.back() - bma_strand.front()) * 100.0;
    double naive_gap = (bma_strand[1] - bma_strand.front()) * 100.0;
    BenchReport::global().setConfig("coverage",
                                    static_cast<uint64_t>(coverage));
    BenchReport::global().addMetric("bma_strand_gap_naive_pp",
                                    naive_gap);
    BenchReport::global().addMetric("bma_strand_gap_refined_pp",
                                    full_gap);
    std::cout << "BMA per-strand gap to real data: naive "
              << fmtDouble(naive_gap) << "pp vs refined "
              << fmtDouble(full_gap)
              << "pp (paper: 38pp vs 15pp)\n";
    double char_full_gap = (bma_char.back() - bma_char.front()) * 100.0;
    double char_naive_gap = (bma_char[1] - bma_char.front()) * 100.0;
    std::cout << "BMA per-char gap to real data: naive "
              << fmtDouble(char_naive_gap) << "pp vs refined "
              << fmtDouble(char_full_gap)
              << "pp (paper: 6pp vs 1pp)\n";
    std::cout << "shape checks: BMA accuracy should fall toward the "
                 "real row as the model refines;\nIterative should "
                 "over-correct once spatial skew is added (drop to "
                 "or below the real row).\n";
    return 0;
}

void
printProfile(const Histogram &profile, size_t positions,
             const std::string &title, size_t buckets)
{
    TextTable table(title);
    table.setHeader({"positions", "errors", "share%"});
    for (const auto &b : bucketProfile(profile, positions, buckets)) {
        table.addRow({std::to_string(b.lo) + "-" +
                          std::to_string(b.hi - 1),
                      std::to_string(b.errors), fmtPercent(b.share)});
    }
    table.print(std::cout);
}

} // namespace dnasim
