/**
 * @file
 * Fig. 3.2 — pre-reconstruction noise analysis of the real (wetlab)
 * dataset: positional Hamming errors (a) and gestalt-aligned errors
 * (b) of every noisy copy against its reference.
 *
 * Expected shapes (paper):
 *  (a) Hamming: linear growth up to position 110 (an early error
 *      corrupts all later positions), then a sharp drop (few copies
 *      are longer than the design length);
 *  (b) gestalt-aligned: most errors at the terminal positions, with
 *      the end of the strand carrying about twice the errors of the
 *      beginning.
 */

#include <iostream>

#include "analysis/error_positions.hh"
#include "bench_common.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Fig 3.2: pre-reconstruction noise in the "
                 "wetlab dataset ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv);
    const size_t len = env.wetlab_config.strand_length;

    Histogram hamming = hammingProfilePre(env.wetlab);
    printProfile(hamming, len + 10,
                 "(a) Hamming error positions over all copies", 12);
    std::cout << "  shape over 0.." << len - 1 << ": "
              << profileShapeName(classifyShape(hamming, len))
              << " (paper: rising/linear up to the design length)\n"
              << "  beyond-design-length errors: "
              << hamming.total() -
                     [&] {
                         uint64_t in_range = 0;
                         for (size_t p = 0; p < len; ++p)
                             in_range += hamming.count(p);
                         return in_range;
                     }()
              << " (paper: small tail past position 110)\n\n";

    Histogram gestalt = gestaltProfilePre(env.wetlab);
    printProfile(gestalt, len,
                 "(b) gestalt-aligned error positions", 12);

    // Terminal concentration: first two positions, last position.
    uint64_t head = gestalt.count(0) + gestalt.count(1);
    uint64_t tail = gestalt.count(len - 1) + gestalt.count(len - 2);
    double interior = 0.0;
    for (size_t p = 2; p + 2 < len; ++p)
        interior += static_cast<double>(gestalt.count(p));
    interior /= static_cast<double>(len - 4);
    std::cout << "  head (pos 0-1) errors: " << head
              << ", tail (last 2) errors: " << tail
              << ", interior mean/position: "
              << fmtDouble(interior) << "\n"
              << "  tail/head ratio: "
              << fmtDouble(static_cast<double>(tail) /
                           std::max<uint64_t>(head, 1))
              << " (paper: end has ~2x the beginning)\n";
    return 0;
}
