/**
 * @file
 * Microbenchmarks of the observability layer itself: the cost of a
 * counter increment and a histogram/timer record on the hot path,
 * and the per-tick cost of a full telemetry snapshot cycle (registry
 * merge + rates + OpenMetrics/JSONL rendering). These rows back the
 * "sampler overhead" budget in EXPERIMENTS.md: a snapshot cycle in
 * the tens of microseconds at a 500 ms period is noise next to any
 * real workload.
 */

#include <benchmark/benchmark.h>

#include "bench_report.hh"
#include "core/ids_model.hh"
#include "core/lineage_log.hh"
#include "data/strand_factory.hh"
#include "obs/hdr_histogram.hh"
#include "obs/openmetrics.hh"
#include "obs/snapshot.hh"
#include "obs/stats.hh"
#include "obs/telemetry.hh"

using namespace dnasim;

namespace
{

void
BM_CounterInc(benchmark::State &state)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("bench.counter");
    for (auto _ : state)
        c.inc();
    benchmark::DoNotOptimize(c.value());
    state.SetItemsProcessed(state.iterations());
}

void
BM_HistogramRecord(benchmark::State &state)
{
    obs::HdrHistogram h;
    uint64_t v = 1;
    for (auto _ : state) {
        h.record(v);
        v = v * 3 / 2 + 1;
        if (v > (1ull << 34))
            v = 1;
    }
    benchmark::DoNotOptimize(h.count());
    state.SetItemsProcessed(state.iterations());
}

void
BM_TimerRecord(benchmark::State &state)
{
    obs::Registry reg;
    obs::Timer &t = reg.timer("bench.timer");
    uint64_t ns = 100;
    for (auto _ : state) {
        t.record(ns);
        ns = ns * 3 / 2 + 1;
        if (ns > 60'000'000'000ull)
            ns = 100;
    }
    benchmark::DoNotOptimize(t.count());
    state.SetItemsProcessed(state.iterations());
}

void
BM_DistributionRecord(benchmark::State &state)
{
    obs::Registry reg;
    obs::Distribution &d = reg.distribution("bench.dist");
    uint64_t v = 1;
    for (auto _ : state) {
        d.record(v);
        v = (v * 7 + 3) & 0xffff;
    }
    benchmark::DoNotOptimize(d.count());
    state.SetItemsProcessed(state.iterations());
}

/** A registry shaped like a real run: counters, timers, dists. */
void
populate(obs::Registry &reg, size_t counters)
{
    for (size_t i = 0; i < counters; ++i) {
        obs::Counter &c = reg.counter(
            "bench.counter." + std::to_string(i));
        c.add(i * 1000 + 1);
    }
    for (size_t i = 0; i < 4; ++i) {
        obs::Timer &t =
            reg.timer("bench.timer." + std::to_string(i));
        for (uint64_t ns = 1000; ns < 50'000'000; ns *= 3)
            t.record(ns);
    }
    obs::Distribution &d = reg.distribution("bench.sizes");
    for (uint64_t v = 1; v <= 200; ++v)
        d.record(v);
}

void
BM_SnapshotCycle(benchmark::State &state)
{
    // One full sampler tick minus the sinks: merge the registry,
    // diff against the previous snapshot into rates.
    obs::Registry reg;
    populate(reg, static_cast<size_t>(state.range(0)));
    obs::Snapshot prev = reg.snapshot();
    for (auto _ : state) {
        obs::Snapshot cur = reg.snapshot();
        auto rates = obs::computeRates(prev, cur, 500'000'000);
        benchmark::DoNotOptimize(rates.data());
        prev = std::move(cur);
    }
}

void
BM_OpenMetricsRender(benchmark::State &state)
{
    obs::Registry reg;
    populate(reg, static_cast<size_t>(state.range(0)));
    obs::Snapshot snap = reg.snapshot();
    for (auto _ : state) {
        std::string doc = obs::snapshotToOpenMetrics(snap);
        benchmark::DoNotOptimize(doc.data());
    }
}

void
BM_TelemetryLineRender(benchmark::State &state)
{
    obs::Registry reg;
    populate(reg, static_cast<size_t>(state.range(0)));
    obs::IntervalSample sample;
    sample.seq = 1;
    sample.interval_ns = 500'000'000;
    sample.snap = reg.snapshot();
    sample.rates = obs::computeRates(obs::Snapshot(), sample.snap,
                                     sample.interval_ns);
    for (auto _ : state) {
        std::string line = obs::telemetrySampleLine(sample);
        benchmark::DoNotOptimize(line.data());
    }
}

/**
 * Channel transmit with lineage recording off (arg 0) and on
 * (arg 1). The delta between the two rows is the whole cost of the
 * ground-truth error log: one branch plus a push_back per injected
 * event, amortized over the full per-base transmit loop.
 */
void
BM_LineageRecord(benchmark::State &state)
{
    const bool record = state.range(0) != 0;
    StrandFactory factory;
    Rng make(1);
    const Strand ref = factory.make(120, make);
    ErrorProfile profile = ErrorProfile::uniform(0.08, 120);
    IdsChannelModel model = IdsChannelModel::secondOrder(profile);
    Rng rng(42);
    std::vector<LineageEvent> events;
    LineageRecorder rec(&events);
    size_t bases = 0;
    for (auto _ : state) {
        events.clear();
        Strand read = record ? model.transmit(ref, rng, rec)
                             : model.transmit(ref, rng);
        bases += read.size();
        benchmark::DoNotOptimize(read.data());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(static_cast<int64_t>(bases));
}

} // anonymous namespace

BENCHMARK(BM_CounterInc);
BENCHMARK(BM_HistogramRecord);
BENCHMARK(BM_TimerRecord);
BENCHMARK(BM_DistributionRecord);
BENCHMARK(BM_SnapshotCycle)->Arg(16)->Arg(64);
BENCHMARK(BM_OpenMetricsRender)->Arg(64);
BENCHMARK(BM_TelemetryLineRender)->Arg(64);
BENCHMARK(BM_LineageRecord)->Arg(0)->Arg(1);
