#include "bench_report.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "base/logging.hh"
#include "obs/json.hh"
#include "obs/profile.hh"
#include "obs/provenance.hh"
#include "obs/report.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "par/thread_pool.hh"

namespace dnasim
{

namespace
{

std::mutex report_mutex;

uint64_t
monotonicNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
writeAtExit()
{
    BenchReport::global().write();
}

} // anonymous namespace

BenchReport &
BenchReport::global()
{
    // Leaked so instrument references and the atexit hook never
    // outlive it.
    static BenchReport *g = new BenchReport();
    return *g;
}

void
BenchReport::init(const std::string &name, uint64_t seed)
{
    std::lock_guard<std::mutex> lock(report_mutex);
    seed_ = seed;
    if (initialized_)
        return;
    initialized_ = true;
    name_ = name;
    start_ns_ = monotonicNs();
    std::atexit(writeAtExit);
}

void
BenchReport::setConfig(const std::string &key, const std::string &value)
{
    std::lock_guard<std::mutex> lock(report_mutex);
    for (auto &kv : config_) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    config_.emplace_back(key, value);
}

void
BenchReport::setConfig(const std::string &key, uint64_t value)
{
    setConfig(key, std::to_string(value));
}

void
BenchReport::setConfig(const std::string &key, double value)
{
    std::ostringstream os;
    os << value;
    setConfig(key, os.str());
}

void
BenchReport::addMetric(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(report_mutex);
    metrics_.emplace_back(name, value);
}

void
BenchReport::addRow(BenchRow row)
{
    std::lock_guard<std::mutex> lock(report_mutex);
    rows_.push_back(std::move(row));
}

std::string
BenchReport::write()
{
    std::lock_guard<std::mutex> lock(report_mutex);
    if (!initialized_ || written_)
        return "";
    written_ = true;

    const double wall_s =
        static_cast<double>(monotonicNs() - start_ns_) * 1e-9;

    std::string dir = ".";
    if (const char *d = std::getenv("DNASIM_BENCH_REPORT_DIR"))
        dir = d;
    const std::string path = dir + "/BENCH_" + name_ + ".json";

    obs::Snapshot snap = obs::Registry::global().snapshot();
    const uint64_t strands = snap.counter("channel.strands");
    const uint64_t bases = snap.counter("channel.bases_out");

    std::ofstream os(path);
    if (!os) {
        warn("bench report: cannot write ", path);
        // The report is lost, but an enabled trace can still land on
        // disk (no-op unless --trace-out configured an exit path).
        obs::Trace::global().flushExitFile();
        return "";
    }

    obs::JsonWriter w(os);
    w.beginObject();
    w.value("schema", "dnasim.bench.v1");
    w.value("name", name_);
    w.value("git_rev", gitRevision());
    // Shared provenance header (git_rev above stays for the
    // ledger's existing ingestion key).
    obs::writeProvenance(w);
    w.value("seed", seed_);
    w.value("wall_time_s", wall_s);
    std::string rss_source;
    w.value("peak_rss_bytes", peakRssBytes(&rss_source));
    w.value("rss_source", rss_source);

    w.beginObject("throughput");
    w.value("strands_simulated", strands);
    w.value("bases_emitted", bases);
    w.value("strands_per_s",
            wall_s > 0.0 ? static_cast<double>(strands) / wall_s : 0.0);
    w.value("bases_per_s",
            wall_s > 0.0 ? static_cast<double>(bases) / wall_s : 0.0);
    w.endObject();

    // Parallel-execution summary: configured worker-thread count,
    // aggregate busy time across workers, and the fraction of the
    // theoretical thread-seconds (wall x threads) actually spent in
    // parallel-loop bodies. See DESIGN.md "Deterministic
    // parallelism".
    const size_t threads = par::numThreads();
    const uint64_t busy_ns = snap.counter("par.busy_ns");
    w.beginObject("parallel");
    w.value("threads", static_cast<uint64_t>(threads));
    w.value("regions", snap.counter("par.regions"));
    w.value("serial_regions", snap.counter("par.serial_regions"));
    w.value("steals", snap.counter("par.steals"));
    w.value("busy_ns", busy_ns);
    w.value("cpu_ns", snap.counter("par.cpu_ns"));
    w.value("utilization",
            wall_s > 0.0 && threads > 0
                ? static_cast<double>(busy_ns) * 1e-9 /
                      (wall_s * static_cast<double>(threads))
                : 0.0);
    w.endObject();

    w.beginObject("config");
    for (const auto &[key, value] : config_)
        w.value(key, value);
    w.endObject();

    w.beginObject("metrics");
    for (const auto &[key, value] : metrics_)
        w.value(key, value);
    w.endObject();

    w.beginArray("benchmarks");
    for (const auto &row : rows_) {
        w.beginObject();
        w.value("name", row.name);
        w.value("real_time_ns", row.real_time_ns);
        w.value("cpu_time_ns", row.cpu_time_ns);
        w.value("iterations", row.iterations);
        if (row.rss_high_water_bytes > 0)
            w.value("rss_high_water_bytes", row.rss_high_water_bytes);
        w.endObject();
    }
    w.endArray();

    // Phase profile, when the run traced (--profile in perf_main).
    obs::Profile profile = obs::buildProfile(obs::Trace::global());
    if (!profile.empty())
        w.rawValue("profile", obs::profileToJson(profile));

    w.rawValue("stats", obs::statsToJson(snap));
    w.endObject();
    os << "\n";
    os.close();

    // This writer runs from atexit, which an early std::exit also
    // reaches; flush any pending trace here so both files survive.
    obs::Trace::global().flushExitFile();

    std::cerr << "# bench report: wrote " << path << "\n";
    return path;
}

Rng
benchRng(uint64_t salt)
{
    return Rng(BenchReport::global().seed()).fork(salt);
}

uint64_t
peakRssBytes(std::string *source)
{
    if (source)
        *source = "none";
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            unsigned long long kb = 0;
            std::sscanf(line.c_str(), "VmHWM: %llu", &kb);
            if (source)
                *source = "proc_status";
            return static_cast<uint64_t>(kb) * 1024;
        }
    }
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
        if (source)
            *source = "getrusage";
        // ru_maxrss is KiB on Linux, bytes on macOS.
#if defined(__APPLE__)
        return static_cast<uint64_t>(usage.ru_maxrss);
#else
        return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
#endif
    }
#endif
    return 0;
}

bool
clearPeakRss()
{
    std::ofstream clear("/proc/self/clear_refs");
    if (!clear)
        return false;
    // "5" resets the peak-RSS (VmHWM) accounting for this process.
    clear << "5";
    clear.flush();
    return clear.good();
}

std::string
gitRevision()
{
    // The resolution moved to obs/provenance so every artifact
    // writer shares one implementation; this forwarder keeps the
    // bench harness API stable.
    return obs::gitRevision();
}

} // namespace dnasim
