/**
 * @file
 * Fig. 3.8 — post-BMA gestalt-aligned residual profiles of uniform
 * p = 0.15 data at coverages N = 5, 6 and 10.
 *
 * Expected shape (paper): as coverage grows, residual misalignment
 * sources concentrate toward the *middle* of the strand — the extra
 * copies fix the terminal regions first, while two-way execution
 * keeps pushing unresolved drift to the mid-strand junction.
 */

#include <iostream>

#include "analysis/error_positions.hh"
#include "bench_common.hh"
#include "core/ids_model.hh"
#include "reconstruct/bma.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Fig 3.8: post-BMA gestalt residuals of p=0.15 "
                 "data at N = 5, 6, 10 ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv, 500);
    const size_t len = env.wetlab_config.strand_length;

    ErrorProfile profile = ErrorProfile::uniform(0.15, len);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    BmaLookahead bma;

    for (size_t n : {size_t(5), size_t(6), size_t(10)}) {
        Dataset data = modelDataset(env, model, n, 0x380 + n);
        Rng rng = env.rng(0x385 + n);
        auto estimates = reconstructAll(data, bma, rng);
        Histogram gestalt = gestaltProfilePost(data, estimates);
        printProfile(gestalt, len,
                     "N=" + std::to_string(n) +
                         " BMA gestalt-aligned errors");
        auto thirds = bucketProfile(gestalt, len, 3);
        std::cout << "  middle-third share: "
                  << fmtPercent(thirds[1].share)
                  << "% (paper: grows with coverage — residuals "
                     "skew to the middle)\n\n";
    }
    return 0;
}
