/**
 * @file
 * Table 2.2 — per-strand and per-character accuracy of BMA and
 * Iterative at fixed coverages 5 and 6: real (wetlab) data vs
 * DNASimulator.
 *
 * Paper values:
 *   Nanopore      5  BMA 29.04 / 87.74   Iterative 66.70 / 90.32
 *   DNASimulator  5  BMA 68.21 / 93.45   Iterative 90.60 / 99.31
 *   Nanopore      6  BMA 36.88 / 89.26   Iterative 78.88 / 94.48
 *   DNASimulator  6  BMA 81.09 / 95.55   Iterative 98.04 / 99.87
 *
 * Expected shape: even after controlling for coverage, simulated
 * data stays substantially easier to reconstruct than real data —
 * static error profiling is not adequate (section 2.2.2).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/dnasimulator_model.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Table 2.2: fixed-coverage comparison, real vs "
                 "DNASimulator ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv, 500);

    DnaSimulatorModel ds = DnaSimulatorModel::fromProfile(env.profile);

    struct Row
    {
        std::string label;
        Dataset data;
        double p_bma_strand, p_bma_char, p_iter_strand, p_iter_char;
    };
    std::vector<Row> rows;
    rows.push_back({"Real (wetlab)  5", realAtCoverage(env, 5), 29.04,
                    87.74, 66.70, 90.32});
    rows.push_back({"DNASimulator   5", modelDataset(env, ds, 5, 0x15),
                    68.21, 93.45, 90.60, 99.31});
    rows.push_back({"Real (wetlab)  6", realAtCoverage(env, 6), 36.88,
                    89.26, 78.88, 94.48});
    rows.push_back({"DNASimulator   6", modelDataset(env, ds, 6, 0x16),
                    81.09, 95.55, 98.04, 99.87});

    BmaLookahead bma;
    Iterative iterative;

    TextTable table("accuracy % (measured, paper in parentheses)");
    table.setHeader({"data/coverage", "BMA strand", "BMA char",
                     "Iter strand", "Iter char"});
    for (auto &row : rows) {
        Rng r1 = env.rng(0x701), r2 = env.rng(0x702);
        AccuracyResult a_bma = evaluateAccuracy(row.data, bma, r1);
        AccuracyResult a_iter =
            evaluateAccuracy(row.data, iterative, r2);
        table.addRow({row.label,
                      paperVsMeasured(row.p_bma_strand,
                                      a_bma.perStrand()),
                      paperVsMeasured(row.p_bma_char, a_bma.perChar()),
                      paperVsMeasured(row.p_iter_strand,
                                      a_iter.perStrand()),
                      paperVsMeasured(row.p_iter_char,
                                      a_iter.perChar())});
    }
    table.print(std::cout);

    std::cout << "shape checks: DNASimulator rows should beat the "
                 "real rows on every metric;\nIterative should beat "
                 "BMA per-strand at these low coverages.\n";
    return 0;
}
