/**
 * @file
 * Table 3.1 — progressive model refinement at N = 5: the naive
 * simulator, + conditional probabilities and long deletions
 * (section 3.3.1), + spatial skew (section 3.3.2), + second-order
 * errors (section 3.3.3), each compared with the real data under
 * BMA and Iterative reconstruction.
 */

#include "bench_common.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    const std::vector<ProgressiveRow> rows = {
        {"Real (wetlab)", 29.04, 87.74, 66.70, 90.32},
        {"Naive Simulator", 68.21, 93.45, 90.60, 99.31},
        {"+ Cond. Prob + Del", 59.65, 91.39, 92.20, 99.35},
        {"+ Spatial Skew", 47.86, 89.49, 35.36, 82.15},
        {"+ 2nd-order Errors", 44.78, 88.67, 33.87, 77.39},
    };
    return runProgressiveTable(argc, argv, 5, rows);
}
