/**
 * @file
 * Fig. 3.7 + section 3.4.1 — the uniform-distribution sensitivity
 * sweep: datasets simulated with a uniform spatial distribution at
 * error rates p = 0.03, 0.06, 0.09, 0.12, 0.15 and coverages
 * n = 5, 6, 10, reconstructed with BMA and Iterative; plus the
 * post-reconstruction positional profiles at p = 0.15, N = 5.
 *
 * Expected shapes (paper):
 *  - for uniform input error, BMA residuals are symmetric
 *    (A-shaped); Iterative residuals are linear toward the end;
 *  - ~90% of Iterative's residual errors are deletions;
 *  - accuracy falls with p and rises with n.
 */

#include <iostream>

#include "analysis/error_positions.hh"
#include "analysis/residual.hh"
#include "bench_common.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

namespace
{

Dataset
uniformDataset(const BenchEnv &env, double p, size_t n, uint64_t salt)
{
    ErrorProfile profile = ErrorProfile::uniform(
        p, env.wetlab_config.strand_length);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    return modelDataset(env, model, n, salt);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Fig 3.7 / section 3.4.1: uniform spatial "
                 "distribution sweep ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv, 500);
    const size_t len = env.wetlab_config.strand_length;

    BmaLookahead bma;
    Iterative iterative;

    // Accuracy sweep.
    TextTable sweep("accuracy %, uniform spatial distribution");
    sweep.setHeader({"p", "N", "BMA strand", "BMA char", "Iter strand",
                     "Iter char"});
    for (double p : {0.03, 0.06, 0.09, 0.12, 0.15}) {
        for (size_t n : {size_t(5), size_t(6), size_t(10)}) {
            Dataset data = uniformDataset(
                env, p, n,
                0x3700 + static_cast<uint64_t>(p * 100) * 16 + n);
            Rng r1 = env.rng(0x371), r2 = env.rng(0x372);
            AccuracyResult a_bma = evaluateAccuracy(data, bma, r1);
            AccuracyResult a_iter =
                evaluateAccuracy(data, iterative, r2);
            sweep.addRow({fmtDouble(p), std::to_string(n),
                          fmtPercent(a_bma.perStrand()),
                          fmtPercent(a_bma.perChar()),
                          fmtPercent(a_iter.perStrand()),
                          fmtPercent(a_iter.perChar())});
        }
    }
    sweep.print(std::cout);

    // Post-reconstruction profiles at p = 0.15, N = 5 (the figure).
    Dataset hard = uniformDataset(env, 0.15, 5, 0x3715);
    for (const Reconstructor *algo :
         {static_cast<const Reconstructor *>(&iterative),
          static_cast<const Reconstructor *>(&bma)}) {
        Rng rng = env.rng(0x373);
        auto estimates = reconstructAll(hard, *algo, rng);
        Histogram hamming = hammingProfilePost(hard, estimates);
        Histogram gestalt = gestaltProfilePost(hard, estimates);
        printProfile(hamming, len,
                     std::string(algo->name()) +
                         " Hamming errors (p=0.15, N=5)");
        std::cout << "  shape: "
                  << profileShapeName(classifyShape(hamming, len))
                  << (algo->name() == "BMA"
                          ? " (paper: symmetric A-shape)"
                          : " (paper: linear toward the end)")
                  << "\n\n";
        printProfile(gestalt, len,
                     std::string(algo->name()) +
                         " gestalt-aligned errors (p=0.15, N=5)");

        ResidualErrorStats residual = residualErrors(hard, estimates);
        std::cout << "  residual error mix: del "
                  << fmtPercent(residual.delShare()) << "%, sub "
                  << fmtPercent(residual.subShare()) << "%, ins "
                  << fmtPercent(residual.insShare()) << "%"
                  << (algo->name() == "Iterative"
                          ? " (paper: ~90% deletions for Iterative)"
                          : "")
                  << "\n\n";
    }
    return 0;
}
