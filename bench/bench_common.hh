/**
 * @file
 * Shared setup for the experiment harnesses: one synthetic wetlab
 * dataset (the paper's Nanopore data stand-in), its calibrated
 * error profile, and row-printing helpers that show the paper's
 * reported value next to the measured one.
 *
 * Every harness accepts:
 *   --clusters N   dataset size (default kDefaultClusters; the paper
 *                  used 10,000 — smaller keeps the suite fast, and
 *                  shapes are stable well below that)
 *   --seed S       master seed
 * or the environment variable DNASIM_BENCH_CLUSTERS.
 */

#ifndef DNASIM_BENCH_BENCH_COMMON_HH
#define DNASIM_BENCH_BENCH_COMMON_HH

#include <string>

#include "analysis/accuracy.hh"
#include "analysis/error_positions.hh"
#include "base/table.hh"
#include "cli/args.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/error_model.hh"
#include "core/error_profile.hh"
#include "core/profiler.hh"
#include "core/wetlab.hh"
#include "data/dataset.hh"

namespace dnasim
{

/** Default cluster count for harness runs. */
inline constexpr size_t kDefaultClusters = 800;

/** Shared harness environment. */
struct BenchEnv
{
    size_t clusters = kDefaultClusters;
    uint64_t seed = 0xbe9c;
    WetlabConfig wetlab_config;
    Dataset wetlab;       ///< the "real" dataset
    ErrorProfile profile; ///< calibrated from the wetlab dataset

    /** Fresh Rng stream salted by @p salt. */
    Rng
    rng(uint64_t salt) const
    {
        return Rng(seed).fork(salt);
    }
};

/**
 * Parse the harness command line, generate the wetlab dataset and
 * calibrate its profile. Prints a one-line description to stdout.
 */
BenchEnv makeBenchEnv(int argc, char **argv,
                      size_t default_clusters = kDefaultClusters);

/**
 * "paper X / measured Y" cell content, used so every harness prints
 * reproduction targets inline.
 */
std::string paperVsMeasured(double paper_percent,
                            double measured_ratio);

/**
 * The paper's fixed-coverage protocol (section 3.2): shuffle copies
 * within each cluster (deterministically, so the prefix at coverage
 * n is contained in the prefix at n+1), drop clusters with fewer
 * than 10 copies, and keep the first @p n copies of the rest.
 */
Dataset realAtCoverage(const BenchEnv &env, size_t n);

/** The wetlab references (one per cluster, in order). */
std::vector<Strand> wetlabReferences(const BenchEnv &env);

/**
 * Simulate a dataset with @p model at fixed coverage @p n over the
 * wetlab references. @p salt decorrelates datasets of different
 * models.
 */
Dataset modelDataset(const BenchEnv &env, const ErrorModel &model,
                     size_t n, uint64_t salt);

/**
 * The paper's progressive simulator ladder (Tables 3.1/3.2):
 * expected per-strand/per-char percentages for one coverage.
 */
struct ProgressiveRow
{
    std::string label;
    double paper_bma_strand;
    double paper_bma_char;
    double paper_iter_strand;
    double paper_iter_char;
};

/** Shared driver for Table 3.1 (n = 5) and Table 3.2 (n = 6). */
int runProgressiveTable(int argc, char **argv, size_t coverage,
                        const std::vector<ProgressiveRow> &rows);

/** Print a positional profile as a bucketed table. */
void printProfile(const Histogram &profile, size_t positions,
                  const std::string &title, size_t buckets = 11);

} // namespace dnasim

#endif // DNASIM_BENCH_BENCH_COMMON_HH
