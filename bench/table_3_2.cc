/**
 * @file
 * Table 3.2 — progressive model refinement at N = 6 (same ladder as
 * Table 3.1 at the second reference coverage).
 */

#include "bench_common.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    const std::vector<ProgressiveRow> rows = {
        {"Real (wetlab)", 36.88, 89.26, 78.88, 94.48},
        {"Naive Simulator", 81.09, 95.55, 98.04, 99.87},
        {"+ Cond. Prob + Del", 73.04, 93.13, 98.10, 99.88},
        {"+ Spatial Skew", 63.44, 92.72, 71.57, 94.36},
        {"+ 2nd-order Errors", 58.19, 91.50, 69.41, 91.34},
    };
    return runProgressiveTable(argc, argv, 6, rows);
}
