/**
 * @file
 * Fig. 3.4 (and appendix C.1) — post-reconstruction positional
 * error profiles of the real (wetlab) data at N = 5 and N = 6:
 * Hamming and gestalt-aligned curves for the Iterative and BMA
 * algorithms.
 *
 * Expected shapes (paper):
 *  - Iterative / Hamming: linear growth toward the strand end
 *    (one-directional execution propagates errors forward);
 *  - Iterative / gestalt: errors concentrated at terminal positions,
 *    more at the end;
 *  - BMA / Hamming: symmetric A-shape peaking mid-strand (two-way
 *    execution propagates both halves' drift to the middle);
 *  - BMA / gestalt: sources of misalignment at the middle.
 */

#include <iostream>

#include "analysis/error_positions.hh"
#include "bench_common.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/iterative.hh"

using namespace dnasim;

int
main(int argc, char **argv)
{
    std::cout << "=== Fig 3.4 / C.1: post-reconstruction analysis of "
                 "real data at N = 5, 6 ===\n\n";
    BenchEnv env = makeBenchEnv(argc, argv);
    const size_t len = env.wetlab_config.strand_length;

    BmaLookahead bma;
    Iterative iterative;

    for (size_t n : {size_t(5), size_t(6)}) {
        Dataset data = realAtCoverage(env, n);
        for (const Reconstructor *algo :
             {static_cast<const Reconstructor *>(&iterative),
              static_cast<const Reconstructor *>(&bma)}) {
            Rng rng = env.rng(0x340 + n);
            auto estimates = reconstructAll(data, *algo, rng);
            Histogram hamming = hammingProfilePost(data, estimates);
            Histogram gestalt = gestaltProfilePost(data, estimates);

            printProfile(hamming, len,
                         "N=" + std::to_string(n) + " " +
                             algo->name() + " Hamming errors");
            std::cout << "  shape: "
                      << profileShapeName(classifyShape(hamming, len))
                      << " (paper: " +
                             std::string(algo->name() == "BMA"
                                             ? "A-shape, peak "
                                               "mid-strand"
                                             : "rising / linear "
                                               "toward the end")
                      << ")\n\n";

            printProfile(gestalt, len,
                         "N=" + std::to_string(n) + " " +
                             algo->name() + " gestalt-aligned errors");
            std::cout << "  shape: "
                      << profileShapeName(classifyShape(gestalt, len))
                      << " (paper: " +
                             std::string(algo->name() == "BMA"
                                             ? "mid-strand sources"
                                             : "terminal sources, "
                                               "end-heavy")
                      << ")\n\n";
        }
    }
    return 0;
}
