/**
 * @file
 * Microbenchmarks of greedy read clustering: shuffled read pools at
 * realistic sizes, exercising the anchor-bucket probing (transparent
 * string_view lookup) and the parallel candidate-distance probes.
 * Results funnel into BENCH_perf_cluster.json; compare rows across
 * --threads values for the scaling curve.
 */

#include <vector>

#include <benchmark/benchmark.h>

#include "bench_report.hh"
#include "cluster/greedy_cluster.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"

using namespace dnasim;

namespace
{

/**
 * A shuffled pool of noisy reads from @p clusters references at
 * @p coverage copies each — the simulator's perfectly clustered
 * output flattened into the unordered pool a real pipeline sees.
 */
std::vector<Strand>
makePool(size_t clusters, size_t coverage, uint64_t salt)
{
    Rng rng = benchRng(salt);
    StrandFactory factory;
    std::vector<Strand> refs;
    refs.reserve(clusters);
    for (size_t i = 0; i < clusters; ++i)
        refs.push_back(factory.make(110, rng));

    ErrorProfile profile = ErrorProfile::uniform(0.06, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    ChannelSimulator sim(model);
    FixedCoverage cov(coverage);
    Dataset data = sim.simulate(refs, cov, rng);

    std::vector<Strand> pool;
    pool.reserve(clusters * coverage);
    for (const auto &cluster : data)
        for (const auto &copy : cluster.copies)
            pool.push_back(copy);
    // Interleave so consecutive reads come from different clusters —
    // the anchor buckets, not input order, have to do the work.
    std::vector<Strand> shuffled(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
        size_t j = (i % coverage) * clusters + i / coverage;
        shuffled[j] = std::move(pool[i]);
    }
    return shuffled;
}

void
BM_ClusterReads(benchmark::State &state)
{
    const auto clusters = static_cast<size_t>(state.range(0));
    std::vector<Strand> pool = makePool(clusters, 8, 0xc1);
    ClusterOptions options;
    size_t reads = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(clusterReads(pool, options));
        reads += pool.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(reads));
}

void
BM_ClusterReadsWideProbe(benchmark::State &state)
{
    // Stress the candidate-probe loop: longer probe lists cross the
    // parallel-for threshold so the distance computations fan out.
    const auto clusters = static_cast<size_t>(state.range(0));
    std::vector<Strand> pool = makePool(clusters, 8, 0xc2);
    ClusterOptions options;
    options.max_probes = 64;
    options.anchor_length = 20;
    size_t reads = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(clusterReads(pool, options));
        reads += pool.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(reads));
}

} // anonymous namespace

BENCHMARK(BM_ClusterReads)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ClusterReadsWideProbe)->Arg(200)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
