/**
 * @file
 * Microbenchmarks of read clustering: shuffled read pools at
 * realistic sizes, exercising the anchor-bucket probing (transparent
 * string_view lookup) and the parallel candidate-distance probes,
 * plus large-N scaling rows pitting the greedy recency scan against
 * the MinHash sketch index (10k/50k/200k reads, purity recorded).
 * Results funnel into BENCH_perf_cluster.json; compare rows across
 * --threads values for the scaling curve.
 */

#include <vector>

#include <benchmark/benchmark.h>

#include "bench_report.hh"
#include "cluster/greedy_cluster.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"

using namespace dnasim;

namespace
{

/**
 * A shuffled pool of noisy reads from @p clusters references at
 * @p coverage copies each — the simulator's perfectly clustered
 * output flattened into the unordered pool a real pipeline sees.
 * When @p origins is non-null it receives the true origin of each
 * pooled read (for purity scoring).
 */
std::vector<Strand>
makePool(size_t clusters, size_t coverage, uint64_t salt,
         std::vector<size_t> *origins = nullptr,
         double error_rate = 0.06)
{
    Rng rng = benchRng(salt);
    StrandFactory factory;
    std::vector<Strand> refs;
    refs.reserve(clusters);
    for (size_t i = 0; i < clusters; ++i)
        refs.push_back(factory.make(110, rng));

    ErrorProfile profile = ErrorProfile::uniform(error_rate, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    ChannelSimulator sim(model);
    FixedCoverage cov(coverage);
    Dataset data = sim.simulate(refs, cov, rng);

    std::vector<Strand> pool;
    pool.reserve(clusters * coverage);
    for (const auto &cluster : data)
        for (const auto &copy : cluster.copies)
            pool.push_back(copy);
    // Interleave so consecutive reads come from different clusters —
    // the anchor buckets, not input order, have to do the work.
    std::vector<Strand> shuffled(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
        size_t j = (i % coverage) * clusters + i / coverage;
        shuffled[j] = std::move(pool[i]);
    }
    if (origins) {
        origins->resize(shuffled.size());
        for (size_t i = 0; i < shuffled.size(); ++i) {
            size_t j = (i % coverage) * clusters + i / coverage;
            (*origins)[j] = i / coverage;
        }
    }
    return shuffled;
}

void
BM_ClusterReads(benchmark::State &state)
{
    const auto clusters = static_cast<size_t>(state.range(0));
    std::vector<Strand> pool = makePool(clusters, 8, 0xc1);
    ClusterOptions options;
    size_t reads = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(clusterReads(pool, options));
        reads += pool.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(reads));
}

void
BM_ClusterReadsWideProbe(benchmark::State &state)
{
    // Stress the candidate-probe loop: longer probe lists cross the
    // parallel-for threshold so the distance computations fan out.
    const auto clusters = static_cast<size_t>(state.range(0));
    std::vector<Strand> pool = makePool(clusters, 8, 0xc2);
    ClusterOptions options;
    options.max_probes = 64;
    options.anchor_length = 20;
    size_t reads = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(clusterReads(pool, options));
        reads += pool.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(reads));
}

/**
 * Large-N scaling of the two candidate-generation backends on the
 * same pools and the same options. The pools use a 3% error rate so
 * the default distance gate actually accepts same-origin reads, and
 * the probe budget is sized for large-N recall (max_probes=256: at
 * 25k clusters the default window of 24 covers 0.1% of the pool and
 * the recency tier finds essentially nothing). That budget is where
 * the asymmetry lives: greedy *spends* it — anchor-missing reads burn
 * the whole window on blind probes, so cost grows as reads x probes —
 * while the sketch tier proposes a handful of targeted band
 * collisions per read and never comes near the cap. The purity of
 * each clustering is recorded as a metric so the speedup rows double
 * as the quality-parity evidence (EXPERIMENTS.md scaling table).
 */
void
BM_ClusterScaling(benchmark::State &state, ClusterIndexKind kind)
{
    const auto clusters = static_cast<size_t>(state.range(0));
    std::vector<size_t> origins;
    std::vector<Strand> pool =
        makePool(clusters, 8, 0xc3, &origins, 0.03);
    ClusterOptions options;
    options.index = kind;
    options.max_probes = 256;
    size_t reads = 0;
    double purity = 0.0;
    double found = 0.0;
    for (auto _ : state) {
        std::vector<ReadCluster> result = clusterReads(pool, options);
        benchmark::DoNotOptimize(result);
        reads += pool.size();
        state.PauseTiming();
        purity = scoreClustering(result, origins).purity();
        found = static_cast<double>(result.size());
        state.ResumeTiming();
    }
    state.SetItemsProcessed(static_cast<int64_t>(reads));
    state.counters["purity"] = purity;
    state.counters["clusters"] = found;
    const std::string tag = std::string("_") +
                            clusterIndexName(kind) + "_" +
                            std::to_string(pool.size());
    BenchReport::global().addMetric("purity" + tag, purity);
    BenchReport::global().addMetric("clusters" + tag, found);
}

} // anonymous namespace

BENCHMARK(BM_ClusterReads)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ClusterReadsWideProbe)->Arg(200)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
// 1250/6250/25000 references at coverage 8 = 10k/50k/200k reads.
BENCHMARK_CAPTURE(BM_ClusterScaling, greedy,
                  ClusterIndexKind::Greedy)
    ->Arg(1250)->Arg(6250)->Arg(25000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_ClusterScaling, sketch,
                  ClusterIndexKind::Sketch)
    ->Arg(1250)->Arg(6250)->Arg(25000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
