/**
 * @file
 * Microbenchmarks of read clustering: shuffled read pools at
 * realistic sizes, exercising the anchor-bucket probing (transparent
 * string_view lookup) and the parallel candidate-distance probes,
 * plus large-N scaling rows pitting the greedy recency scan against
 * the MinHash sketch index (10k/50k/200k reads, purity recorded).
 * Results funnel into BENCH_perf_cluster.json; compare rows across
 * --threads values for the scaling curve.
 */

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <vector>

#include <benchmark/benchmark.h>

#include "base/strand_pool.hh"
#include "bench_report.hh"
#include "cluster/greedy_cluster.hh"
#include "cluster/shard_cluster.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"

using namespace dnasim;

namespace
{

/**
 * A shuffled pool of noisy reads from @p clusters references at
 * @p coverage copies each — the simulator's perfectly clustered
 * output flattened into the unordered pool a real pipeline sees.
 * When @p origins is non-null it receives the true origin of each
 * pooled read (for purity scoring).
 */
std::vector<Strand>
makePool(size_t clusters, size_t coverage, uint64_t salt,
         std::vector<size_t> *origins = nullptr,
         double error_rate = 0.06)
{
    Rng rng = benchRng(salt);
    StrandFactory factory;
    std::vector<Strand> refs;
    refs.reserve(clusters);
    for (size_t i = 0; i < clusters; ++i)
        refs.push_back(factory.make(110, rng));

    ErrorProfile profile = ErrorProfile::uniform(error_rate, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    ChannelSimulator sim(model);
    FixedCoverage cov(coverage);
    Dataset data = sim.simulate(refs, cov, rng);

    std::vector<Strand> pool;
    pool.reserve(clusters * coverage);
    for (const auto &cluster : data)
        for (const auto &copy : cluster.copies)
            pool.push_back(copy);
    // Interleave so consecutive reads come from different clusters —
    // the anchor buckets, not input order, have to do the work.
    std::vector<Strand> shuffled(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
        size_t j = (i % coverage) * clusters + i / coverage;
        shuffled[j] = std::move(pool[i]);
    }
    if (origins) {
        origins->resize(shuffled.size());
        for (size_t i = 0; i < shuffled.size(); ++i) {
            size_t j = (i % coverage) * clusters + i / coverage;
            (*origins)[j] = i / coverage;
        }
    }
    return shuffled;
}

void
BM_ClusterReads(benchmark::State &state)
{
    const auto clusters = static_cast<size_t>(state.range(0));
    std::vector<Strand> pool = makePool(clusters, 8, 0xc1);
    ClusterOptions options;
    size_t reads = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(clusterReads(pool, options));
        reads += pool.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(reads));
}

void
BM_ClusterReadsWideProbe(benchmark::State &state)
{
    // Stress the candidate-probe loop: longer probe lists cross the
    // parallel-for threshold so the distance computations fan out.
    const auto clusters = static_cast<size_t>(state.range(0));
    std::vector<Strand> pool = makePool(clusters, 8, 0xc2);
    ClusterOptions options;
    options.max_probes = 64;
    options.anchor_length = 20;
    size_t reads = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(clusterReads(pool, options));
        reads += pool.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(reads));
}

/**
 * Large-N scaling of the two candidate-generation backends on the
 * same pools and the same options. The pools use a 3% error rate so
 * the default distance gate actually accepts same-origin reads, and
 * the probe budget is sized for large-N recall (max_probes=256: at
 * 25k clusters the default window of 24 covers 0.1% of the pool and
 * the recency tier finds essentially nothing). That budget is where
 * the asymmetry lives: greedy *spends* it — anchor-missing reads burn
 * the whole window on blind probes, so cost grows as reads x probes —
 * while the sketch tier proposes a handful of targeted band
 * collisions per read and never comes near the cap. The purity of
 * each clustering is recorded as a metric so the speedup rows double
 * as the quality-parity evidence (EXPERIMENTS.md scaling table).
 */
void
BM_ClusterScaling(benchmark::State &state, ClusterIndexKind kind)
{
    const auto clusters = static_cast<size_t>(state.range(0));
    std::vector<size_t> origins;
    std::vector<Strand> pool =
        makePool(clusters, 8, 0xc3, &origins, 0.03);
    ClusterOptions options;
    options.index = kind;
    options.max_probes = 256;
    size_t reads = 0;
    double purity = 0.0;
    double found = 0.0;
    for (auto _ : state) {
        std::vector<ReadCluster> result = clusterReads(pool, options);
        benchmark::DoNotOptimize(result);
        reads += pool.size();
        state.PauseTiming();
        purity = scoreClustering(result, origins).purity();
        found = static_cast<double>(result.size());
        state.ResumeTiming();
    }
    state.SetItemsProcessed(static_cast<int64_t>(reads));
    state.counters["purity"] = purity;
    state.counters["clusters"] = found;
    const std::string tag = std::string("_") +
                            clusterIndexName(kind) + "_" +
                            std::to_string(pool.size());
    BenchReport::global().addMetric("purity" + tag, purity);
    BenchReport::global().addMetric("clusters" + tag, found);
}

/**
 * The out-of-core path end to end minus simulation: reads live in an
 * mmap-backed pool file (built once per row through simulateToPool,
 * exactly what `dnasim simulate --checkpoint-dir` ships, so read
 * order is cluster order) and the sharded sketch index clusters
 * through the StrandPoolView. range(0) is the reference count at
 * coverage 8, range(1) the shard count. Rows carry
 * rss_high_water_bytes in the report (perf_main resets VmHWM per
 * row), which is the statistic the benchdiff memory gate consumes;
 * the 1M/10M-read rows only register when DNASIM_BENCH_SCALE is set
 * so default runs stay quick.
 */
void
BM_ClusterScalingPool(benchmark::State &state)
{
    const auto clusters = static_cast<size_t>(state.range(0));
    const auto shards = static_cast<size_t>(state.range(1));

    Rng rng = benchRng(0xc5);
    StrandFactory factory;
    std::vector<Strand> refs;
    refs.reserve(clusters);
    for (size_t i = 0; i < clusters; ++i)
        refs.push_back(factory.make(110, rng));
    ErrorProfile profile = ErrorProfile::uniform(0.03, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    ChannelSimulator sim(model);
    FixedCoverage cov(8);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("dnasim_perf_pool_" + std::to_string(clusters) +
          ".dnapool"))
            .string();
    std::ostringstream origin_bytes;
    {
        PackedStrandPoolBuilder builder;
        std::string error;
        if (!builder.open(path, &error)) {
            state.SkipWithError(error.c_str());
            return;
        }
        sim.simulateToPool(StrandPoolView(refs), cov, rng, builder,
                           &origin_bytes);
        if (!builder.finish(&error)) {
            state.SkipWithError(error.c_str());
            return;
        }
    }
    const std::string bytes = origin_bytes.str();
    std::vector<size_t> origins(bytes.size() / 4);
    for (size_t i = 0; i < origins.size(); ++i) {
        const auto *p =
            reinterpret_cast<const unsigned char *>(bytes.data()) +
            i * 4;
        origins[i] = static_cast<size_t>(p[0]) |
                     static_cast<size_t>(p[1]) << 8 |
                     static_cast<size_t>(p[2]) << 16 |
                     static_cast<size_t>(p[3]) << 24;
    }

    PackedStrandPool pool;
    std::string error;
    if (!pool.open(path, &error)) {
        state.SkipWithError(error.c_str());
        return;
    }
    StrandPoolView view(pool);

    ClusterOptions options;
    options.index = ClusterIndexKind::Sketch;
    options.max_probes = 256;
    size_t reads = 0;
    double purity = 0.0;
    double found = 0.0;
    for (auto _ : state) {
        std::vector<ReadCluster> result =
            clusterReadsSharded(view, options, shards);
        benchmark::DoNotOptimize(result);
        reads += view.size();
        state.PauseTiming();
        purity = scoreClustering(result, origins).purity();
        found = static_cast<double>(result.size());
        state.ResumeTiming();
    }
    state.SetItemsProcessed(static_cast<int64_t>(reads));
    state.counters["purity"] = purity;
    state.counters["clusters"] = found;
    state.counters["shards"] = static_cast<double>(shards);
    const size_t pool_reads = view.size();
    pool.close();
    std::filesystem::remove(path);
    const std::string tag =
        "_pool_" + std::to_string(pool_reads) + "_s" +
        std::to_string(shards);
    BenchReport::global().addMetric("purity" + tag, purity);
    BenchReport::global().addMetric("clusters" + tag, found);
}

/** True when DNASIM_BENCH_SCALE asks for the 1M/10M-read rows. */
bool
benchScaleEnabled()
{
    const char *e = std::getenv("DNASIM_BENCH_SCALE");
    return e != nullptr && *e != '\0' &&
           std::string(e) != "0";
}

const bool scaling_pool_registered = [] {
    auto *bench = benchmark::RegisterBenchmark(
        "BM_ClusterScalingPool", BM_ClusterScalingPool);
    // 1250/6250/25000 references at coverage 8 = 10k/50k/200k reads,
    // mirroring the in-RAM BM_ClusterScaling rows for the parity
    // comparison in EXPERIMENTS.md.
    bench->Args({1250, 4})->Args({6250, 4})->Args({25000, 4});
    if (benchScaleEnabled()) {
        // 1M and 10M reads; only on request — the 10M row simulates
        // ~1.1G bases into the pool file before the timed section.
        bench->Args({125000, 8})->Args({1250000, 16});
    }
    bench->Unit(benchmark::kMillisecond)->UseRealTime();
    return true;
}();

} // anonymous namespace

BENCHMARK(BM_ClusterReads)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ClusterReadsWideProbe)->Arg(200)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
// 1250/6250/25000 references at coverage 8 = 10k/50k/200k reads.
BENCHMARK_CAPTURE(BM_ClusterScaling, greedy,
                  ClusterIndexKind::Greedy)
    ->Arg(1250)->Arg(6250)->Arg(25000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_ClusterScaling, sketch,
                  ClusterIndexKind::Sketch)
    ->Arg(1250)->Arg(6250)->Arg(25000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
