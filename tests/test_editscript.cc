/**
 * @file
 * Equivalence suite for the two-tier edit-script engine
 * (align/edit_script.hh): both tiers are pinned byte-for-byte to the
 * reference flat DP — identical scripts in deterministic mode,
 * identical scripts AND identical Rng consumption in random
 * tie-break mode — plus the edge cases the tiers special-case
 * (empty strands, word-boundary lengths, band escapes, non-ACGT
 * fallbacks, engine selection).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "align/edit_distance.hh"
#include "align/edit_script.hh"
#include "base/rng.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"

namespace dnasim
{
namespace
{

using align_detail::editOpsBandedWithBand;
using align_detail::editOpsBitVector;
using align_detail::editOpsReference;
using align_detail::EditOpsStats;

/** Reference script via the pinned flat DP. */
std::vector<EditOp>
refScript(std::string_view ref, std::string_view copy, Rng *rng)
{
    std::vector<EditOp> out;
    editOpsReference(ref, copy, rng, out);
    return out;
}

/** Engine script through the public dispatch. */
std::vector<EditOp>
engineScript(std::string_view ref, std::string_view copy, Rng *rng)
{
    std::vector<EditOp> out;
    editOpsInto(ref, copy, rng, out);
    return out;
}

struct ScriptCase
{
    size_t len;
    double error_rate;
};

class EditScriptEquivalence
    : public ::testing::TestWithParam<ScriptCase>
{};

/**
 * Deterministic mode: the bit-vector tier must reproduce the flat
 * DP's diagonal > delete > insert backtrace exactly, op for op.
 */
TEST_P(EditScriptEquivalence, DeterministicScriptsIdentical)
{
    auto [len, rate] = GetParam();
    StrandFactory factory;
    Rng rng(101 + len);
    ErrorProfile profile = ErrorProfile::uniform(rate, len);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (int trial = 0; trial < 25; ++trial) {
        Strand ref = factory.make(len, rng);
        Strand copy = channel.transmit(ref, rng);
        EXPECT_EQ(engineScript(ref, copy, nullptr),
                  refScript(ref, copy, nullptr))
            << ref << " vs " << copy;
    }
}

/**
 * Random tie-break mode: given the same Rng stream the banded tier
 * must produce the identical script AND leave the engine in the
 * identical state (same candidate sets at every backtrace step means
 * the same draws in the same order).
 */
TEST_P(EditScriptEquivalence, TieBreakScriptsAndDrawsIdentical)
{
    auto [len, rate] = GetParam();
    StrandFactory factory;
    Rng rng(211 + len);
    ErrorProfile profile = ErrorProfile::uniform(rate, len);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (int trial = 0; trial < 25; ++trial) {
        Strand ref = factory.make(len, rng);
        Strand copy = channel.transmit(ref, rng);
        const uint64_t seed = 7'000 + trial;
        Rng ref_rng(seed), new_rng(seed);
        EXPECT_EQ(engineScript(ref, copy, &new_rng),
                  refScript(ref, copy, &ref_rng))
            << ref << " vs " << copy;
        EXPECT_TRUE(ref_rng.engine() == new_rng.engine())
            << "Rng consumption diverged for " << ref << " vs "
            << copy;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EditScriptEquivalence,
    ::testing::Values(ScriptCase{10, 0.30}, ScriptCase{63, 0.03},
                      ScriptCase{64, 0.03}, ScriptCase{65, 0.03},
                      ScriptCase{100, 0.01}, ScriptCase{100, 0.10},
                      ScriptCase{150, 0.03}, ScriptCase{300, 0.10},
                      ScriptCase{300, 0.01}));

TEST(EditScript, EmptyStrands)
{
    // Both orders of emptiness, both modes; no Rng draw may happen
    // (scripts with an empty side are forced).
    const std::pair<std::string, std::string> cases[] = {
        {"", ""}, {"ACGT", ""}, {"", "ACGT"}};
    for (const auto &[ref, copy] : cases) {
        EXPECT_EQ(engineScript(ref, copy, nullptr),
                  refScript(ref, copy, nullptr));
        Rng a(5), b(5);
        EXPECT_EQ(engineScript(ref, copy, &a),
                  refScript(ref, copy, &b));
        EXPECT_TRUE(a.engine() == b.engine());
    }
}

TEST(EditScript, EqualStrands)
{
    const std::string s(137, 'G');
    auto ops = engineScript(s, s, nullptr);
    EXPECT_EQ(ops, refScript(s, s, nullptr));
    EXPECT_EQ(ops.size(), s.size());
    EXPECT_EQ(numErrors(ops), 0u);
}

TEST(EditScript, AllMismatch)
{
    // Every position substituted: distance == length, the widest
    // band the profiler path can see relative to strand length.
    const std::string ref(90, 'A');
    const std::string copy(90, 'C');
    EXPECT_EQ(engineScript(ref, copy, nullptr),
              refScript(ref, copy, nullptr));
    Rng a(9), b(9);
    EXPECT_EQ(engineScript(ref, copy, &a), refScript(ref, copy, &b));
    EXPECT_TRUE(a.engine() == b.engine());
}

TEST(EditScript, LongHomopolymerRuns)
{
    // Homopolymer indels maximize tie-heavy backtraces: every slide
    // of the run is minimal, so candidate sets are fat and any
    // candidate-order or draw-count drift shows up immediately.
    const std::string ref =
        "ACG" + std::string(40, 'T') + "CGA" + std::string(30, 'A') +
        "GTC";
    std::string copy = ref;
    copy.erase(10, 3);   // shrink the T run
    copy.insert(50, "AAAA"); // grow the A run
    EXPECT_EQ(engineScript(ref, copy, nullptr),
              refScript(ref, copy, nullptr));
    for (uint64_t seed = 0; seed < 20; ++seed) {
        Rng a(seed), b(seed);
        EXPECT_EQ(engineScript(ref, copy, &a),
                  refScript(ref, copy, &b));
        EXPECT_TRUE(a.engine() == b.engine());
    }
}

TEST(EditScript, RoundTripsThroughApply)
{
    StrandFactory factory;
    Rng rng(77);
    ErrorProfile profile = ErrorProfile::uniform(0.08, 120);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (int trial = 0; trial < 30; ++trial) {
        Strand ref = factory.make(120, rng);
        Strand copy = channel.transmit(ref, rng);
        auto det = engineScript(ref, copy, nullptr);
        EXPECT_EQ(applyEditOps(ref, det), copy);
        EXPECT_EQ(numErrors(det), levenshtein(ref, copy));
        auto rnd = engineScript(ref, copy, &rng);
        EXPECT_EQ(applyEditOps(ref, rnd), copy);
        EXPECT_EQ(numErrors(rnd), levenshtein(ref, copy));
    }
}

TEST(EditScript, BitVectorTierDirect)
{
    // Drive Tier A below the dispatch to pin the pattern-reuse
    // entry point: one pattern, many copies.
    StrandFactory factory;
    Rng rng(55);
    ErrorProfile profile = ErrorProfile::uniform(0.05, 150);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    Strand ref = factory.make(150, rng);
    MyersPattern pattern(ref);
    std::vector<EditOp> out;
    for (int trial = 0; trial < 20; ++trial) {
        Strand copy = channel.transmit(ref, rng);
        editOpsBitVector(pattern, ref, copy, out);
        EXPECT_EQ(out, refScript(ref, copy, nullptr));
    }
}

TEST(EditScript, BandEscapeLeavesRngUntouchedAndRetrySucceeds)
{
    // Distance here is 4 (one 4-base deletion); a band of 1 cannot
    // contain the optimal path, so the fill must escape WITHOUT
    // consuming any Rng draws — the retry then replays the same
    // stream and must match the reference exactly.
    const std::string ref = "ACGTACGTACGTACGTACGT";
    std::string copy = ref;
    copy.erase(8, 4);
    ASSERT_EQ(levenshtein(ref, copy), 4u);

    Rng rng(31);
    Rng untouched(31);
    std::vector<EditOp> out;
    EXPECT_FALSE(editOpsBandedWithBand(ref, copy, 1, rng, out));
    EXPECT_TRUE(rng.engine() == untouched.engine())
        << "band escape consumed Rng draws";

    Rng ref_rng(31);
    ASSERT_TRUE(editOpsBandedWithBand(ref, copy, 4, rng, out));
    EXPECT_EQ(out, refScript(ref, copy, &ref_rng));
    EXPECT_TRUE(rng.engine() == ref_rng.engine());
}

TEST(EditScript, BandWiderThanDistanceStillExact)
{
    // Over-wide bands must not change candidate sets: run the same
    // pair at every band from the exact distance up to full width.
    const std::string ref = "TTGACCAGTACGTTGACAGTTACGAT";
    std::string copy = ref;
    copy[3] = 'T';
    copy.erase(11, 1);
    copy.insert(17, "G");
    const size_t d = levenshtein(ref, copy);
    for (size_t band = d; band <= ref.size(); ++band) {
        Rng a(99), b(99);
        std::vector<EditOp> out;
        ASSERT_TRUE(editOpsBandedWithBand(ref, copy, band, a, out))
            << "band " << band;
        EXPECT_EQ(out, refScript(ref, copy, &b)) << "band " << band;
        EXPECT_TRUE(a.engine() == b.engine()) << "band " << band;
    }
}

TEST(EditScript, NonAcgtFallsBackToReference)
{
    // 'N's in either strand must not break equivalence: the engine
    // routes non-ACGT references to the flat DP and lets Tier A
    // handle non-ACGT copies via all-zero Peq rows.
    const std::string ref = "ACGTNNACGTACGT";
    const std::string copy = "ACGTNACGTACGGT";
    EXPECT_EQ(engineScript(ref, copy, nullptr),
              refScript(ref, copy, nullptr));
    Rng a(3), b(3);
    EXPECT_EQ(engineScript(ref, copy, &a), refScript(ref, copy, &b));
    EXPECT_TRUE(a.engine() == b.engine());

    const std::string clean_ref = "ACGTACGTACGTAC";
    EXPECT_EQ(engineScript(clean_ref, copy, nullptr),
              refScript(clean_ref, copy, nullptr));
}

TEST(EditScript, EngineSelection)
{
    EXPECT_EQ(parseEditOpsEngine("auto"), EditOpsEngine::Auto);
    EXPECT_EQ(parseEditOpsEngine("reference"),
              EditOpsEngine::Reference);
    EXPECT_EQ(parseEditOpsEngine("bogus"), std::nullopt);
    EXPECT_EQ(parseEditOpsEngine(""), std::nullopt);

    // Forcing the reference engine must route dispatch to the flat
    // DP (visible through the fallback counter) and produce the
    // same script.
    const std::string ref = "ACGTTGCAACGTTGCA";
    const std::string copy = "ACGTGCAACGTTGGCA";
    auto auto_script = engineScript(ref, copy, nullptr);

    setEditOpsEngineOverride(EditOpsEngine::Reference);
    const uint64_t fallback_before =
        EditOpsStats::get().fallback.value();
    auto forced = engineScript(ref, copy, nullptr);
    const uint64_t fallback_after =
        EditOpsStats::get().fallback.value();
    setEditOpsEngineOverride(std::nullopt);

    EXPECT_EQ(forced, auto_script);
    EXPECT_GT(fallback_after, fallback_before);
}

TEST(EditScript, StatsCountTierUsage)
{
    auto &st = EditOpsStats::get();
    const std::string ref = "ACGTACGTACGTACGTACGTACGTACGT";
    std::string copy = ref;
    copy[5] = 'A';

    const uint64_t bitvec_before = st.bitvec.value();
    (void)engineScript(ref, copy, nullptr);
    EXPECT_GT(st.bitvec.value(), bitvec_before);

    const uint64_t banded_before = st.banded.value();
    const uint64_t cells_before = st.cells.value();
    Rng rng(13);
    (void)engineScript(ref, copy, &rng);
    EXPECT_GT(st.banded.value(), banded_before);
    EXPECT_GT(st.cells.value(), cells_before);
}

} // anonymous namespace
} // namespace dnasim
