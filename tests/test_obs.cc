/**
 * @file
 * Tests of the observability layer: instrument semantics, the
 * thread-sharded counter merge, snapshot/JSON export, tracing, and
 * the pluggable logging sink.
 */

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "obs/json.hh"
#include "obs/report.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace dnasim
{
namespace
{

TEST(ObsCounter, StartsAtZeroAndAccumulates)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("events", "test events");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(c.name(), "events");
    EXPECT_EQ(c.desc(), "test events");
}

TEST(ObsCounter, LookupReturnsSameInstrument)
{
    obs::Registry reg;
    obs::Counter &a = reg.counter("dup");
    obs::Counter &b = reg.counter("dup");
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.value(), 1u);
}

TEST(ObsCounter, ThreadShardsMergeExactly)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("parallel");
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 20000;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();
    // Every increment must survive both the live-shard merge and the
    // retired-shard accumulation of exited threads.
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    EXPECT_EQ(reg.snapshot().counter("parallel"),
              kThreads * kPerThread);
}

TEST(ObsCounter, ManyCountersAcrossChunkBoundary)
{
    // More instruments than one shard chunk holds, so growth paths
    // run; late counters must not corrupt early slots.
    obs::Registry reg;
    std::vector<obs::Counter *> counters;
    for (int i = 0; i < 200; ++i)
        counters.push_back(
            &reg.counter("c" + std::to_string(i)));
    for (int i = 0; i < 200; ++i)
        counters[i]->add(static_cast<uint64_t>(i));
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(counters[i]->value(), static_cast<uint64_t>(i));
}

TEST(ObsGauge, MovesBothWays)
{
    obs::Registry reg;
    obs::Gauge &g = reg.gauge("level");
    g.set(10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
}

TEST(ObsTimer, RecordsIntervals)
{
    obs::Registry reg;
    obs::Timer &t = reg.timer("t");
    t.record(100);
    t.record(300);
    EXPECT_EQ(t.count(), 2u);
    EXPECT_EQ(t.totalNs(), 400u);
    EXPECT_EQ(t.maxNs(), 300u);
}

TEST(ObsTimer, ScopedTimerRecordsOnce)
{
    obs::Registry reg;
    obs::Timer &t = reg.timer("scoped");
    {
        obs::ScopedTimer s(t);
        s.stop();
        s.stop(); // idempotent
    }
    {
        obs::ScopedTimer s(t); // records at destruction
    }
    EXPECT_EQ(t.count(), 2u);
}

TEST(ObsDistribution, SummaryStatistics)
{
    obs::Registry reg;
    obs::Distribution &d = reg.distribution("sizes");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.percentile(0.5), 0u);
    for (uint64_t v = 1; v <= 100; ++v)
        d.record(v);
    EXPECT_EQ(d.count(), 100u);
    EXPECT_DOUBLE_EQ(d.sum(), 5050.0);
    EXPECT_EQ(d.min(), 1u);
    EXPECT_EQ(d.max(), 100u);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
    EXPECT_EQ(d.percentile(0.5), 50u);
    EXPECT_EQ(d.percentile(0.99), 99u);
}

TEST(ObsRegistry, KindCollisionPanics)
{
    obs::Registry reg;
    reg.counter("name");
    EXPECT_THROW(reg.timer("name"), FatalError);
}

TEST(ObsRegistry, ResetZeroesEverything)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("c");
    obs::Timer &t = reg.timer("t");
    obs::Distribution &d = reg.distribution("d");
    c.add(5);
    t.record(9);
    d.record(3);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(t.count(), 0u);
    EXPECT_EQ(t.totalNs(), 0u);
    EXPECT_EQ(d.count(), 0u);
    c.inc();
    EXPECT_EQ(c.value(), 1u);
}

TEST(ObsSnapshot, SortedAndComplete)
{
    obs::Registry reg;
    reg.counter("z.last").add(1);
    reg.counter("a.first").add(2);
    reg.gauge("g").set(-4);
    reg.timer("t").record(7);
    reg.distribution("d").record(11);

    obs::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].name, "a.first");
    EXPECT_EQ(snap.counters[1].name, "z.last");
    EXPECT_EQ(snap.counter("z.last"), 1u);
    EXPECT_EQ(snap.counter("missing"), 0u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].value, -4);
    ASSERT_EQ(snap.timers.size(), 1u);
    EXPECT_EQ(snap.timers[0].total_ns, 7u);
    ASSERT_EQ(snap.distributions.size(), 1u);
    EXPECT_EQ(snap.distributions[0].max, 11u);
}

TEST(ObsJson, WriterEscapesAndNests)
{
    std::ostringstream os;
    obs::JsonWriter w(os, 0);
    w.beginObject();
    w.value("s", "a\"b\\c\n");
    w.beginArray("xs");
    w.value("", uint64_t{1});
    w.value("", int64_t{-2});
    w.endArray();
    w.value("f", 1.5);
    w.value("b", true);
    w.endObject();
    EXPECT_EQ(os.str(), "{\"s\":\"a\\\"b\\\\c\\n\",\"xs\":[1,-2],"
                        "\"f\":1.5,\"b\":true}");
}

TEST(ObsJson, ParserDecodesEscapedUnicode)
{
    obs::JsonValue v;
    // 1-, 2- and 3-byte UTF-8 targets plus a surrogate-free BMP char.
    ASSERT_TRUE(obs::parseJson(
        "\"\\u0041\\u00e9\\u20ac\"", v, nullptr));
    EXPECT_EQ(v.asString(), "A\xc3\xa9\xe2\x82\xac");
    // Uppercase hex digits are equally valid.
    ASSERT_TRUE(obs::parseJson("\"\\u00E9\"", v, nullptr));
    EXPECT_EQ(v.asString(), "\xc3\xa9");
    // Truncated and non-hex escapes are malformed.
    std::string error;
    EXPECT_FALSE(obs::parseJson("\"\\u00\"", v, &error));
    EXPECT_FALSE(obs::parseJson("\"\\u00zz\"", v, &error));
}

TEST(ObsJson, ParserBoundsNestingDepth)
{
    // Moderately nested arrays parse; pathological nesting is
    // rejected instead of recursing toward a stack overflow.
    auto nested = [](size_t depth) {
        return std::string(depth, '[') + "1" +
               std::string(depth, ']');
    };
    obs::JsonValue v;
    EXPECT_TRUE(obs::parseJson(nested(32), v, nullptr));
    std::string error;
    EXPECT_FALSE(obs::parseJson(nested(100), v, &error));
    EXPECT_NE(error.find("nesting too deep"), std::string::npos);
}

TEST(ObsJson, ParserRejectsTrailingGarbage)
{
    obs::JsonValue v;
    std::string error;
    EXPECT_FALSE(obs::parseJson("{\"a\":1} x", v, &error));
    EXPECT_FALSE(obs::parseJson("[1,2]]", v, &error));
    EXPECT_FALSE(obs::parseJson("1 2", v, &error));
    // Trailing whitespace is fine.
    EXPECT_TRUE(obs::parseJson("{\"a\": 1}  \n", v, nullptr));
}

TEST(ObsJson, ParserRejectsNonJsonNumbers)
{
    // strtod accepts all of these; the JSON grammar does not.
    obs::JsonValue v;
    for (const char *bad :
         {"NaN", "nan", "Infinity", "-Infinity", "inf", "-inf",
          "0x10", "0123", "+1", ".5", "1.", "1e", "1e+", "-"}) {
        std::string error;
        EXPECT_FALSE(obs::parseJson(bad, v, &error))
            << "accepted non-JSON number: " << bad;
    }
    ASSERT_TRUE(obs::parseJson("-0.5e+2", v, nullptr));
    EXPECT_DOUBLE_EQ(v.asDouble(), -50.0);
    ASSERT_TRUE(obs::parseJson("0", v, nullptr));
    EXPECT_DOUBLE_EQ(v.asDouble(), 0.0);
    ASSERT_TRUE(obs::parseJson("1E3", v, nullptr));
    EXPECT_DOUBLE_EQ(v.asDouble(), 1000.0);
}

TEST(ObsReport, JsonRoundTripsSchemaAndValues)
{
    obs::Registry reg;
    reg.counter("channel.strands", "strands").add(123);
    reg.timer("channel.time").record(456);
    reg.distribution("sizes").record(5);
    obs::Snapshot snap = reg.snapshot();

    std::string json = obs::statsToJson(
        snap, {{"warn", "low coverage"}});
    EXPECT_NE(json.find("\"schema\": \"dnasim.stats.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"channel.strands\": 123"),
              std::string::npos);
    EXPECT_NE(json.find("\"total_ns\": 456"), std::string::npos);
    EXPECT_NE(json.find("low coverage"), std::string::npos);

    std::string text = obs::statsToText(snap);
    EXPECT_NE(text.find("channel.strands"), std::string::npos);
    EXPECT_NE(text.find("123"), std::string::npos);
}

TEST(ObsTrace, DisabledModeHasNoSideEffects)
{
    obs::Trace &trace = obs::Trace::global();
    trace.disable();
    trace.clear();
    {
        obs::ScopedTrace span("noop", "test");
    }
    trace.recordInstant("noop", "test");
    EXPECT_EQ(trace.numEvents(), 0u);
    EXPECT_EQ(trace.nowNs(), 0u);
}

TEST(ObsTrace, RecordsSpansWhenEnabled)
{
    obs::Trace &trace = obs::Trace::global();
    trace.enable();
    {
        obs::ScopedTrace outer("outer", "test");
        obs::ScopedTrace inner("inner", "test",
                               "{\"k\": 1}");
    }
    trace.recordInstant("mark", "test");
    EXPECT_EQ(trace.numEvents(), 3u);

    std::ostringstream os;
    trace.writeJson(os);
    std::string json = os.str();
    trace.disable();
    trace.clear();

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("{\"k\": 1}"), std::string::npos);
}

TEST(ObsTrace, DisableMidSpanDropsTheSpan)
{
    obs::Trace &trace = obs::Trace::global();
    trace.enable();
    {
        obs::ScopedTrace span("dropped", "test");
        trace.disable();
    }
    EXPECT_EQ(trace.numEvents(), 0u);
    trace.clear();
}

TEST(ObsLogging, SinkReceivesWarnAndInform)
{
    std::vector<std::pair<LogLevel, std::string>> seen;
    LogSink old = setLogSink(
        [&seen](LogLevel level, const std::string &message) {
            seen.emplace_back(level, message);
        });
    inform("hello ", 42);
    warn("trouble");
    setLogSink(std::move(old));

    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].first, LogLevel::Info);
    EXPECT_EQ(seen[0].second, "hello 42");
    EXPECT_EQ(seen[1].first, LogLevel::Warn);
    EXPECT_EQ(seen[1].second, "trouble");
}

TEST(ObsLogging, WarnOnceDedupsAcrossThreads)
{
    std::vector<std::string> seen;
    std::mutex seen_mutex;
    LogSink old = setLogSink(
        [&](LogLevel, const std::string &message) {
            std::lock_guard<std::mutex> lock(seen_mutex);
            seen.push_back(message);
        });
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 100; ++i)
                warn_once("dedup me");
        });
    }
    for (auto &t : threads)
        t.join();
    setLogSink(std::move(old));
    EXPECT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], "dedup me");
}

} // anonymous namespace
} // namespace dnasim
