/**
 * @file
 * Tests of the deterministic parallel execution layer: coverage and
 * ordering guarantees of parallelFor/parallelTransform, exception
 * propagation, nested-region safety, and the end-to-end determinism
 * contract — simulate, reconstruct and clusterReads must produce
 * byte-identical output at every thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "analysis/accuracy.hh"
#include "base/rng.hh"
#include "cluster/greedy_cluster.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "core/profiler.hh"
#include "core/wetlab.hh"
#include "data/strand_factory.hh"
#include "obs/stats.hh"
#include "par/thread_pool.hh"
#include "reconstruct/bma.hh"

namespace dnasim
{
namespace
{

/** Restore the default thread count when a test scope exits. */
struct ThreadGuard
{
    explicit ThreadGuard(size_t n) { par::setThreads(n); }
    ~ThreadGuard() { par::setThreads(0); }
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        ThreadGuard guard(threads);
        for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                         size_t{1000}}) {
            std::vector<std::atomic<int>> hits(n);
            for (auto &h : hits)
                h.store(0);
            par::parallelFor(0, n,
                             [&](size_t i) { hits[i].fetch_add(1); });
            for (size_t i = 0; i < n; ++i)
                EXPECT_EQ(hits[i].load(), 1)
                    << "index " << i << " at " << threads
                    << " threads, n = " << n;
        }
    }
}

TEST(ParallelFor, RespectsBeginOffsetAndGrain)
{
    ThreadGuard guard(4);
    for (size_t grain : {size_t{1}, size_t{3}, size_t{64},
                         size_t{10000}}) {
        std::vector<std::atomic<int>> hits(500);
        for (auto &h : hits)
            h.store(0);
        par::parallelFor(
            100, 500, [&](size_t i) { hits[i].fetch_add(1); }, grain);
        for (size_t i = 0; i < 500; ++i)
            EXPECT_EQ(hits[i].load(), i < 100 ? 0 : 1)
                << "index " << i << " at grain " << grain;
    }
}

TEST(ParallelTransform, PreservesOrder)
{
    auto square = [](size_t i) { return i * i; };
    std::vector<size_t> serial;
    {
        ThreadGuard guard(1);
        serial = par::parallelTransform(777, square);
    }
    ASSERT_EQ(serial.size(), 777u);
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], i * i);
    for (size_t threads : {size_t{2}, size_t{8}}) {
        ThreadGuard guard(threads);
        EXPECT_EQ(par::parallelTransform(777, square), serial)
            << threads << " threads";
    }
}

TEST(ParallelFor, NestedRegionsDegradeToSerial)
{
    ThreadGuard guard(4);
    std::atomic<size_t> total{0};
    par::parallelFor(0, 16, [&](size_t) {
        EXPECT_TRUE(par::inParallelRegion());
        // The inner loop must run inline on this thread — no
        // deadlock, every index covered.
        par::parallelFor(0, 8,
                         [&](size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 16u * 8u);
    EXPECT_FALSE(par::inParallelRegion());
}

TEST(ParallelFor, PropagatesFirstException)
{
    for (size_t threads : {size_t{1}, size_t{4}}) {
        ThreadGuard guard(threads);
        EXPECT_THROW(
            par::parallelFor(0, 200,
                             [&](size_t i) {
                                 if (i == 117)
                                     throw std::runtime_error("boom");
                             }),
            std::runtime_error)
            << threads << " threads";
        // The pool must stay usable after a failed region.
        std::atomic<size_t> total{0};
        par::parallelFor(0, 100,
                         [&](size_t) { total.fetch_add(1); });
        EXPECT_EQ(total.load(), 100u);
    }
}

TEST(ParallelFor, RecordsObservability)
{
    ThreadGuard guard(3);
    EXPECT_EQ(par::numThreads(), 3u);
    obs::Snapshot before = obs::Registry::global().snapshot();
    par::parallelFor(0, 1000, [](size_t) {});
    obs::Snapshot after = obs::Registry::global().snapshot();
    EXPECT_EQ(after.counter("par.regions"),
              before.counter("par.regions") + 1);
    EXPECT_EQ(after.counter("par.items"),
              before.counter("par.items") + 1000);
}

TEST(ForkClusterStreams, PureFunctionOfSeedAndIndex)
{
    // Stream i must not depend on how many streams are forked or on
    // any draws interleaved between forks — the determinism contract.
    Rng a(1234);
    Rng b(1234);
    auto few = forkClusterStreams(a, 3);
    auto many = forkClusterStreams(b, 100);
    for (size_t i = 0; i < few.size(); ++i) {
        Rng x = few[i], y = many[i];
        for (int k = 0; k < 16; ++k)
            EXPECT_EQ(x.index(1 << 30), y.index(1 << 30))
                << "stream " << i;
    }
}

/** A small calibrated channel for the end-to-end determinism tests. */
struct E2eFixture
{
    std::vector<Strand> refs;
    ErrorProfile profile = ErrorProfile::uniform(0.06, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);

    E2eFixture()
    {
        Rng rng(99);
        StrandFactory factory;
        for (size_t i = 0; i < 60; ++i)
            refs.push_back(factory.make(110, rng));
    }

    Dataset
    simulate() const
    {
        ChannelSimulator sim(model);
        FixedCoverage coverage(8);
        Rng rng(0x5eed);
        return sim.simulate(refs, coverage, rng);
    }
};

std::string
flatten(const Dataset &data)
{
    std::string s;
    for (const auto &c : data) {
        s += c.reference;
        s += '|';
        for (const auto &copy : c.copies) {
            s += copy;
            s += ';';
        }
        s += '\n';
    }
    return s;
}

TEST(Determinism, SimulateIsByteIdenticalAcrossThreadCounts)
{
    E2eFixture fx;
    std::string serial;
    {
        ThreadGuard guard(1);
        serial = flatten(fx.simulate());
    }
    for (size_t threads : {size_t{2}, size_t{8}}) {
        ThreadGuard guard(threads);
        EXPECT_EQ(flatten(fx.simulate()), serial)
            << threads << " threads";
    }
}

TEST(Determinism, ReconstructAllIsByteIdenticalAcrossThreadCounts)
{
    E2eFixture fx;
    Dataset data;
    {
        ThreadGuard guard(1);
        data = fx.simulate();
    }
    BmaLookahead algo;
    auto run = [&] {
        Rng rng(0x4ec0);
        return reconstructAll(data, algo, rng);
    };
    std::vector<Strand> serial;
    {
        ThreadGuard guard(1);
        serial = run();
    }
    for (size_t threads : {size_t{2}, size_t{8}}) {
        ThreadGuard guard(threads);
        EXPECT_EQ(run(), serial) << threads << " threads";
    }
}

TEST(Determinism, CalibrateIsIdenticalAcrossThreadCounts)
{
    E2eFixture fx;
    Dataset data;
    {
        ThreadGuard guard(1);
        data = fx.simulate();
    }
    ErrorProfiler profiler;
    std::string serial;
    {
        ThreadGuard guard(1);
        serial = profiler.calibrate(data).str();
    }
    for (size_t threads : {size_t{2}, size_t{8}}) {
        ThreadGuard guard(threads);
        EXPECT_EQ(profiler.calibrate(data).str(), serial)
            << threads << " threads";
    }
}

TEST(Determinism, ClusterReadsIsIdenticalAcrossThreadCounts)
{
    E2eFixture fx;
    std::vector<Strand> pool;
    {
        ThreadGuard guard(1);
        pool = fx.simulate().pooledReads();
    }
    // Both candidate-generation backends must be byte-identical at
    // every thread count: same clusters, same member order.
    for (ClusterIndexKind kind :
         {ClusterIndexKind::Greedy, ClusterIndexKind::Sketch}) {
        ClusterOptions options;
        options.index = kind;
        options.max_probes = 32;
        options.parallel_probe_min = 8; // exercise parallel probing
        auto run = [&] {
            std::string s;
            for (const auto &c : clusterReads(pool, options)) {
                s += c.representative;
                s += ':';
                for (size_t m : c.members) {
                    s += std::to_string(m);
                    s += ',';
                }
                s += '\n';
            }
            return s;
        };
        std::string serial;
        {
            ThreadGuard guard(1);
            serial = run();
        }
        for (size_t threads : {size_t{2}, size_t{8}}) {
            ThreadGuard guard(threads);
            EXPECT_EQ(run(), serial)
                << clusterIndexName(kind) << " at " << threads
                << " threads";
        }
    }
}

} // namespace
} // namespace dnasim
