/**
 * @file
 * Tests for the 2-bit packed strand core and the kernels specialized
 * on it: PackedStrand round-trips and validation, word-wise Hamming,
 * MyersPattern reuse, thresholded distances, and packed consensus
 * voting. The load-bearing property throughout is *bit-identical
 * equivalence* with the character paths — the packed kernels are an
 * optimization, never a semantic change.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "align/edit_distance.hh"
#include "align/hamming.hh"
#include "base/packed.hh"
#include "base/rng.hh"
#include "data/strand_factory.hh"
#include "reconstruct/consensus.hh"

namespace dnasim
{
namespace
{

/// Boundary lengths around the 32-bases-per-word packing: empty,
/// single base, word-straddling 63/64/65, and multi-word 4096+.
const std::vector<size_t> kBoundaryLengths = {0,  1,  31,  32,  33,
                                              63, 64, 65,  127, 128,
                                              4096, 4133};

std::string
randomStrand(size_t len, Rng &rng)
{
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(kBaseChars[rng.index(kNumBases)]);
    return s;
}

/** Mutate ~rate of positions to a random other base. */
std::string
mutate(std::string s, double rate, Rng &rng)
{
    for (char &c : s) {
        if (rng.uniform() < rate)
            c = kBaseChars[rng.index(kNumBases)];
    }
    return s;
}

TEST(PackedStrand, RoundTripBoundaryLengths)
{
    Rng rng(0x9a11);
    for (size_t len : kBoundaryLengths) {
        const std::string s = randomStrand(len, rng);
        PackedStrand p(s);
        EXPECT_EQ(p.size(), len);
        EXPECT_EQ(p.toStrand(), s) << "len " << len;
        for (size_t i = 0; i < len; ++i) {
            EXPECT_EQ(p.charAt(i), s[i]) << "len " << len << " pos "
                                         << i;
        }
    }
}

TEST(PackedStrand, TailBitsAreZero)
{
    // Canonical zero tail is what makes word equality and XOR
    // kernels valid without masking.
    PackedStrand p(std::string(65, 'T')); // T = code 3, all-ones pairs
    ASSERT_EQ(p.words().size(), 3u);
    EXPECT_EQ(p.word(2), uint64_t{3}); // one base, 62 zero tail bits
}

TEST(PackedStrand, EqualityAndReuse)
{
    PackedStrand a(std::string_view("ACGTACGT"));
    PackedStrand b(std::string_view("ACGTACGT"));
    PackedStrand c(std::string_view("ACGTACGA"));
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);

    // packFrom reuses storage and must fully replace prior content,
    // including the canonical tail.
    Rng rng(3);
    PackedStrand r(randomStrand(4096, rng));
    r.packFrom("ACGT");
    EXPECT_EQ(r.size(), 4u);
    EXPECT_EQ(r.toStrand(), "ACGT");
    EXPECT_TRUE(r == PackedStrand(std::string_view("ACGT")));
}

TEST(PackedStrand, RejectsNonAcgt)
{
    EXPECT_FALSE(PackedStrand::tryPack("ACGN").has_value());
    EXPECT_FALSE(PackedStrand::tryPack("acgt").has_value());
    EXPECT_FALSE(PackedStrand::tryPack(std::string_view("AC\0T", 4))
                     .has_value());
    EXPECT_TRUE(PackedStrand::tryPack("").has_value());
    EXPECT_TRUE(PackedStrand::tryPack("ACGT").has_value());
}

TEST(PackedHamming, MatchesCharKernelRandomized)
{
    Rng rng(0x7a33);
    for (size_t la : kBoundaryLengths) {
        for (int trial = 0; trial < 3; ++trial) {
            // Unequal lengths exercise the length-difference term
            // and the masked tail of the common prefix.
            const size_t lb =
                trial == 0 ? la
                           : (la > 2 ? la - 1 - rng.index(2) : la + 7);
            const std::string a = randomStrand(la, rng);
            std::string b = mutate(randomStrand(lb, rng), 0.0, rng);
            // Make b a noisy copy of a's prefix so distances are
            // non-trivial (pure random pairs differ everywhere).
            for (size_t i = 0; i < std::min(la, lb); ++i)
                b[i] = rng.uniform() < 0.8 ? a[i] : b[i];

            // Reference: the naive per-character definition.
            size_t expected =
                std::max(la, lb) - std::min(la, lb);
            for (size_t i = 0; i < std::min(la, lb); ++i)
                expected += a[i] != b[i] ? 1 : 0;

            EXPECT_EQ(hammingDistance(a, b), expected);
            EXPECT_EQ(hammingDistance(PackedStrand(a),
                                      PackedStrand(b)),
                      expected)
                << "la " << la << " lb " << lb;
        }
    }
}

TEST(MyersPattern, MatchesLevenshteinAcrossLengths)
{
    Rng rng(0xabcd);
    for (size_t len : kBoundaryLengths) {
        const std::string pat = randomStrand(len, rng);
        MyersPattern pattern{std::string_view(pat)};
        EXPECT_EQ(pattern.size(), len);
        EXPECT_TRUE(pattern.packed());
        // Reuse the same pattern across several texts — the cached
        // Peq tables must not carry state between queries.
        for (int trial = 0; trial < 4; ++trial) {
            std::string txt = mutate(pat, 0.1, rng);
            if (trial == 2 && !txt.empty())
                txt.erase(txt.begin());
            if (trial == 3)
                txt.push_back('C');
            EXPECT_EQ(pattern.distance(txt), levenshtein(pat, txt))
                << "len " << len << " trial " << trial;
        }
        EXPECT_EQ(pattern.distance(""), len);
    }
}

TEST(MyersPattern, PackedConstructionMatchesCharConstruction)
{
    Rng rng(0x5eed);
    for (size_t len : kBoundaryLengths) {
        const std::string pat = randomStrand(len, rng);
        MyersPattern from_chars{std::string_view(pat)};
        MyersPattern from_words{PackedStrand(pat)};
        for (int trial = 0; trial < 3; ++trial) {
            const std::string txt = mutate(pat, 0.15, rng);
            EXPECT_EQ(from_words.distance(txt),
                      from_chars.distance(txt))
                << "len " << len;
        }
    }
}

TEST(MyersPattern, BoundedIsExactWithinLimitAndConsistentAbove)
{
    Rng rng(0xf00d);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t len = 1 + rng.index(150);
        const std::string pat = randomStrand(len, rng);
        const std::string txt = mutate(randomStrand(len, rng),
                                       0.5, rng);
        const size_t exact = levenshtein(pat, txt);
        MyersPattern pattern{std::string_view(pat)};
        for (size_t limit : {size_t{0}, size_t{3}, exact,
                             exact + 5}) {
            const size_t got = pattern.distanceBounded(txt, limit);
            if (exact <= limit) {
                EXPECT_EQ(got, exact) << "limit " << limit;
            } else {
                // Above the limit only the accept/reject decision is
                // contractual.
                EXPECT_GT(got, limit) << "exact " << exact;
            }
        }
    }
}

TEST(MyersPattern, NonAcgtPatternFallsBack)
{
    MyersPattern pattern{std::string_view("ACGNACGT")};
    EXPECT_FALSE(pattern.packed());
    EXPECT_EQ(pattern.distance("ACGNACGT"), 0u);
    EXPECT_EQ(pattern.distance("ACGTACGT"), 1u);
    // Non-ACGT *text* stays on the fast path: those characters
    // simply match nothing in an ACGT pattern.
    MyersPattern acgt{std::string_view("ACGT")};
    EXPECT_TRUE(acgt.packed());
    EXPECT_EQ(acgt.distance("ANGT"), 1u);
    EXPECT_EQ(acgt.distance("NNNN"), 4u);
}

TEST(PackedConsensus, MatchesCharVotingRandomized)
{
    // The unweighted (packed) path must consume the Rng exactly like
    // the weighted character path with unit weights: same winners,
    // same tie-breaks, same draws.
    Rng rng(0x51de);
    for (size_t design_len :
         {size_t{0}, size_t{1}, size_t{63}, size_t{64}, size_t{65},
          size_t{110}}) {
        for (size_t copies_n : {size_t{0}, size_t{1}, size_t{2},
                                size_t{5}, size_t{9}}) {
            const std::string ref = randomStrand(design_len, rng);
            std::vector<Strand> copies;
            for (size_t k = 0; k < copies_n; ++k) {
                Strand c = mutate(ref, 0.2, rng);
                // Length diversity: some copies short, some long.
                if (k % 3 == 1 && c.size() > 4)
                    c.resize(c.size() - 3);
                if (k % 3 == 2)
                    c += randomStrand(4, rng);
                copies.push_back(std::move(c));
            }
            const std::vector<double> unit(copies.size(), 1.0);
            Rng packed_rng(1000 + design_len);
            Rng char_rng(1000 + design_len);
            Strand via_packed = positionalPlurality(
                copies, design_len, packed_rng, {});
            Strand via_chars = positionalPlurality(
                copies, design_len, char_rng, unit);
            EXPECT_EQ(via_packed, via_chars)
                << "design_len " << design_len << " copies "
                << copies_n;
            // Identical residual Rng state proves identical
            // consumption, not just identical output.
            EXPECT_EQ(packed_rng.uniform(), char_rng.uniform());
        }
    }
}

TEST(PackedConsensus, EmptyColumnsFillWithA)
{
    std::vector<Strand> copies = {"AC", "AC"};
    std::vector<Strand> none;
    Rng rng(5);
    EXPECT_EQ(positionalPlurality(copies, 5, rng, {}), "ACAAA");
    EXPECT_EQ(positionalPlurality(none, 3, rng, {}), "AAA");
}

/** Character-path reference: the 2-bit code of s[i..i+k). */
uint64_t
kmerCodeFromChars(std::string_view s, size_t i, size_t k)
{
    uint64_t code = 0;
    for (size_t j = 0; j < k; ++j) {
        uint64_t b = 0;
        switch (s[i + j]) {
        case 'A': b = 0; break;
        case 'C': b = 1; break;
        case 'G': b = 2; break;
        case 'T': b = 3; break;
        }
        code |= b << (2 * j);
    }
    return code;
}

TEST(ForEachPackedKmer, MatchesCharacterPath)
{
    StrandFactory factory;
    Rng rng(77);
    // Lengths straddling the word boundary and k spanning the full
    // legal range, including k == word width.
    for (size_t len : {size_t{10}, size_t{31}, size_t{32}, size_t{33},
                       size_t{64}, size_t{65}, size_t{110}}) {
        Strand s = factory.make(len, rng);
        PackedStrand packed(s);
        for (size_t k : {size_t{1}, size_t{5}, size_t{10}, size_t{31},
                         size_t{32}}) {
            std::vector<uint64_t> codes;
            forEachPackedKmer(packed.words(), len, k,
                              [&](uint64_t c) { codes.push_back(c); });
            if (len < k) {
                EXPECT_TRUE(codes.empty()) << len << " " << k;
                continue;
            }
            ASSERT_EQ(codes.size(), len - k + 1)
                << "len " << len << " k " << k;
            for (size_t i = 0; i < codes.size(); ++i)
                EXPECT_EQ(codes[i], kmerCodeFromChars(s, i, k))
                    << "len " << len << " k " << k << " pos " << i;
        }
    }
}

TEST(ForEachPackedKmer, DegenerateKYieldsNothing)
{
    PackedStrand packed(Strand(40, 'G'));
    size_t calls = 0;
    auto count = [&](uint64_t) { ++calls; };
    forEachPackedKmer(packed.words(), 40, 0, count);
    forEachPackedKmer(packed.words(), 40,
                      PackedStrand::kBasesPerWord + 1, count);
    forEachPackedKmer(packed.words(), 0, 5, count);
    EXPECT_EQ(calls, 0u);
}

TEST(ForEachPackedKmer, WholeReadAsSingleKmer)
{
    // len == k == 32: exactly one code, equal to the packed word.
    StrandFactory factory;
    Rng rng(78);
    Strand s = factory.make(32, rng);
    PackedStrand packed(s);
    std::vector<uint64_t> codes;
    forEachPackedKmer(packed.words(), 32, 32,
                      [&](uint64_t c) { codes.push_back(c); });
    ASSERT_EQ(codes.size(), 1u);
    EXPECT_EQ(codes[0], packed.words()[0]);
}

} // anonymous namespace
} // namespace dnasim
