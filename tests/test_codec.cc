/**
 * @file
 * Unit and property tests for the codec library: GF(256)
 * arithmetic, Reed-Solomon coding, the DNA codecs, framing with
 * CRC-8, and XOR-group redundancy.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.hh"
#include "codec/dna_codec.hh"
#include "codec/framing.hh"
#include "codec/gf256.hh"
#include "codec/reed_solomon.hh"
#include "codec/xor_redundancy.hh"

namespace dnasim
{
namespace
{

Bytes
randomBytes(size_t n, Rng &rng)
{
    Bytes out(n);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.uniformInt(0, 255));
    return out;
}

TEST(Gf256, MultiplicationAxioms)
{
    Rng rng(130);
    for (int trial = 0; trial < 200; ++trial) {
        uint8_t a = static_cast<uint8_t>(rng.uniformInt(0, 255));
        uint8_t b = static_cast<uint8_t>(rng.uniformInt(0, 255));
        uint8_t c = static_cast<uint8_t>(rng.uniformInt(0, 255));
        // commutativity and associativity
        EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
        EXPECT_EQ(gf256::mul(gf256::mul(a, b), c),
                  gf256::mul(a, gf256::mul(b, c)));
        // identity and zero
        EXPECT_EQ(gf256::mul(a, 1), a);
        EXPECT_EQ(gf256::mul(a, 0), 0);
        // distributivity over XOR (field addition)
        EXPECT_EQ(gf256::mul(a, b ^ c),
                  gf256::mul(a, b) ^ gf256::mul(a, c));
    }
}

TEST(Gf256, InverseAndDivision)
{
    for (int a = 1; a < 256; ++a) {
        uint8_t inv = gf256::inv(static_cast<uint8_t>(a));
        EXPECT_EQ(gf256::mul(static_cast<uint8_t>(a), inv), 1)
            << "a=" << a;
        EXPECT_EQ(gf256::div(static_cast<uint8_t>(a),
                             static_cast<uint8_t>(a)),
                  1);
    }
    EXPECT_EQ(gf256::div(0, 7), 0);
}

TEST(Gf256, PowAndLog)
{
    EXPECT_EQ(gf256::alphaPow(0), 1);
    EXPECT_EQ(gf256::alphaPow(1), 2);
    EXPECT_EQ(gf256::alphaPow(255), 1); // order of the group
    for (int e = 0; e < 255; ++e) {
        uint8_t x = gf256::alphaPow(e);
        EXPECT_EQ(gf256::alphaLog(x), e);
    }
    EXPECT_EQ(gf256::pow(2, -1), gf256::inv(2));
}

TEST(Gf256, PolyEval)
{
    // p(x) = x^2 + 1 evaluated at alpha: alpha^2 ^ 1.
    std::vector<uint8_t> p = {1, 0, 1};
    EXPECT_EQ(gf256::polyEval(p, 2),
              static_cast<uint8_t>(gf256::mul(2, 2) ^ 1));
    EXPECT_EQ(gf256::polyEval({}, 5), 0);
}

TEST(Gf256, PolyMulDegrees)
{
    std::vector<uint8_t> a = {1, 2};    // x + 2
    std::vector<uint8_t> b = {1, 0, 3}; // x^2 + 3
    auto c = gf256::polyMul(a, b);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(c[0], 1); // leading coefficient
}

TEST(ReedSolomon, EncodeAppendsParity)
{
    ReedSolomon rs(8);
    Bytes data = {1, 2, 3, 4, 5};
    auto codeword = rs.encode(data);
    ASSERT_EQ(codeword.size(), 13u);
    EXPECT_TRUE(std::equal(data.begin(), data.end(),
                           codeword.begin()));
    EXPECT_TRUE(rs.isValid(codeword));
}

TEST(ReedSolomon, CleanDecode)
{
    ReedSolomon rs(6);
    Rng rng(131);
    Bytes data = randomBytes(40, rng);
    auto decoded = rs.decode(rs.encode(data));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, CorrectsErrorsUpToHalfParity)
{
    ReedSolomon rs(8); // corrects up to 4 errors
    Rng rng(132);
    for (int trial = 0; trial < 20; ++trial) {
        Bytes data = randomBytes(30, rng);
        auto codeword = rs.encode(data);
        for (int e = 0; e < 4; ++e) {
            size_t pos = rng.index(codeword.size());
            codeword[pos] ^= static_cast<uint8_t>(
                rng.uniformInt(1, 255));
        }
        auto decoded = rs.decode(codeword);
        ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
        EXPECT_EQ(*decoded, data);
    }
}

TEST(ReedSolomon, CorrectsErasuresUpToParity)
{
    ReedSolomon rs(8); // corrects up to 8 erasures
    Rng rng(133);
    for (int trial = 0; trial < 20; ++trial) {
        Bytes data = randomBytes(30, rng);
        auto codeword = rs.encode(data);
        std::vector<size_t> erasures;
        while (erasures.size() < 8) {
            size_t pos = rng.index(codeword.size());
            if (std::find(erasures.begin(), erasures.end(), pos) ==
                erasures.end()) {
                erasures.push_back(pos);
            }
        }
        for (size_t pos : erasures)
            codeword[pos] = 0; // erased symbols read as zero
        auto decoded = rs.decode(codeword, erasures);
        ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
        EXPECT_EQ(*decoded, data);
    }
}

TEST(ReedSolomon, CorrectsMixedErrataWithinBudget)
{
    ReedSolomon rs(8); // 2e + s <= 8
    Rng rng(134);
    for (int trial = 0; trial < 20; ++trial) {
        Bytes data = randomBytes(25, rng);
        auto codeword = rs.encode(data);
        // 2 errors + 4 erasures: 2*2 + 4 = 8, exactly the budget.
        std::vector<size_t> positions;
        while (positions.size() < 6) {
            size_t pos = rng.index(codeword.size());
            if (std::find(positions.begin(), positions.end(), pos) ==
                positions.end()) {
                positions.push_back(pos);
            }
        }
        std::vector<size_t> erasures(positions.begin(),
                                     positions.begin() + 4);
        for (size_t pos : erasures)
            codeword[pos] = 0;
        for (size_t k = 4; k < 6; ++k)
            codeword[positions[k]] ^= 0x5a;
        auto decoded = rs.decode(codeword, erasures);
        ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
        EXPECT_EQ(*decoded, data);
    }
}

TEST(ReedSolomon, FailsBeyondBudget)
{
    ReedSolomon rs(4); // corrects up to 2 errors
    Rng rng(135);
    Bytes data = randomBytes(20, rng);
    size_t failures = 0;
    for (int trial = 0; trial < 30; ++trial) {
        auto codeword = rs.encode(data);
        // 5 errors: beyond any RS(n, k) with 4 parity symbols.
        std::vector<size_t> positions;
        while (positions.size() < 5) {
            size_t pos = rng.index(codeword.size());
            if (std::find(positions.begin(), positions.end(), pos) ==
                positions.end()) {
                positions.push_back(pos);
            }
        }
        for (size_t pos : positions)
            codeword[pos] ^= static_cast<uint8_t>(
                rng.uniformInt(1, 255));
        auto decoded = rs.decode(codeword, {});
        // Either detection (nullopt) or, rarely, miscorrection to a
        // different codeword — but never a silent wrong "success"
        // that still equals the data.
        if (!decoded.has_value())
            ++failures;
        else
            EXPECT_NE(*decoded, data);
    }
    EXPECT_GT(failures, 20u);
}

TEST(ReedSolomon, RejectsOversizedErasureList)
{
    ReedSolomon rs(4);
    Bytes data = {1, 2, 3};
    auto codeword = rs.encode(data);
    std::vector<size_t> erasures = {0, 1, 2, 3, 4};
    EXPECT_FALSE(rs.decode(codeword, erasures).has_value());
}

class ReedSolomonParity : public ::testing::TestWithParam<size_t>
{};

TEST_P(ReedSolomonParity, FullErasureBudget)
{
    size_t parity = GetParam();
    ReedSolomon rs(parity);
    Rng rng(136 + parity);
    Bytes data = randomBytes(20, rng);
    auto codeword = rs.encode(data);
    // Distinct erasure positions spread over the codeword.
    std::vector<size_t> all_positions(codeword.size());
    for (size_t i = 0; i < all_positions.size(); ++i)
        all_positions[i] = i;
    rng.shuffle(all_positions);
    std::vector<size_t> erasures(all_positions.begin(),
                                 all_positions.begin() +
                                     static_cast<ptrdiff_t>(parity));
    for (size_t pos : erasures)
        codeword[pos] = 0xff;
    auto decoded = rs.decode(codeword, erasures);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
}

INSTANTIATE_TEST_SUITE_P(ParitySweep, ReedSolomonParity,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(TrivialCodec, RoundTrip)
{
    TrivialCodec codec;
    Rng rng(137);
    for (size_t n : {size_t(0), size_t(1), size_t(5), size_t(21)}) {
        Bytes data = randomBytes(n, rng);
        Strand strand = codec.encode(data);
        EXPECT_EQ(strand.size(), codec.encodedLength(n));
        auto decoded = codec.decode(strand, n);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, data);
    }
}

TEST(TrivialCodec, DensityIsFourBasesPerByte)
{
    TrivialCodec codec;
    EXPECT_EQ(codec.encodedLength(10), 40u);
}

TEST(TrivialCodec, TooShortStrandFails)
{
    TrivialCodec codec;
    EXPECT_FALSE(codec.decode("ACG", 1).has_value());
}

TEST(RotatingCodecTest, RoundTrip)
{
    RotatingCodec codec;
    Rng rng(138);
    for (size_t n : {size_t(0), size_t(1), size_t(5), size_t(13),
                     size_t(40)}) {
        Bytes data = randomBytes(n, rng);
        Strand strand = codec.encode(data);
        EXPECT_EQ(strand.size(), codec.encodedLength(n));
        auto decoded = codec.decode(strand, n);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, data);
    }
}

TEST(RotatingCodecTest, NoHomopolymers)
{
    RotatingCodec codec;
    Rng rng(139);
    for (int trial = 0; trial < 20; ++trial) {
        Bytes data = randomBytes(25, rng);
        Strand strand = codec.encode(data);
        EXPECT_LE(maxHomopolymerRun(strand), 1u);
    }
    // Worst case: all-zero and all-ones payloads.
    EXPECT_LE(maxHomopolymerRun(codec.encode(Bytes(20, 0x00))), 1u);
    EXPECT_LE(maxHomopolymerRun(codec.encode(Bytes(20, 0xff))), 1u);
}

TEST(RotatingCodecTest, DetectsRepeatedBaseCorruption)
{
    RotatingCodec codec;
    Bytes data = {1, 2, 3, 4, 5};
    Strand strand = codec.encode(data);
    // Force a homopolymer, which is invalid for the rotating code.
    strand[3] = strand[2];
    EXPECT_FALSE(codec.decode(strand, data.size()).has_value());
}

TEST(Crc8, DetectsSingleByteCorruption)
{
    Rng rng(140);
    for (int trial = 0; trial < 50; ++trial) {
        Bytes data = randomBytes(16, rng);
        uint8_t crc = crc8(data);
        size_t pos = rng.index(data.size());
        data[pos] ^= static_cast<uint8_t>(rng.uniformInt(1, 255));
        EXPECT_NE(crc8(data), crc);
    }
}

TEST(FrameCodecTest, SplitPadsAndIndexes)
{
    FrameCodec codec(4);
    Bytes data = {1, 2, 3, 4, 5, 6};
    auto frames = codec.split(data);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].index, 0u);
    EXPECT_EQ(frames[1].index, 1u);
    EXPECT_EQ(frames[1].payload, (Bytes{5, 6, 0, 0}));
}

TEST(FrameCodecTest, PackUnpackRoundTrip)
{
    FrameCodec codec(6, 2);
    Frame f;
    f.index = 0x1234;
    f.payload = {9, 8, 7, 6, 5, 4};
    Bytes raw = codec.pack(f);
    EXPECT_EQ(raw.size(), codec.frameBytes());
    auto parsed = codec.unpack(raw);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->index, 0x1234u);
    EXPECT_EQ(parsed->payload, f.payload);
}

TEST(FrameCodecTest, UnpackRejectsCorruption)
{
    FrameCodec codec(6);
    Frame f;
    f.index = 3;
    f.payload = {1, 2, 3, 4, 5, 6};
    Bytes raw = codec.pack(f);
    raw[4] ^= 0x40;
    EXPECT_FALSE(codec.unpack(raw).has_value());
    Bytes wrong_size(raw.begin(), raw.end() - 1);
    EXPECT_FALSE(codec.unpack(wrong_size).has_value());
}

TEST(FrameCodecTest, ReassembleReportsMissing)
{
    FrameCodec codec(2);
    std::vector<Frame> frames = {{2, {5, 6}}, {0, {1, 2}}};
    std::vector<uint32_t> missing;
    Bytes stream = codec.reassemble(frames, 3, &missing);
    EXPECT_EQ(stream, (Bytes{1, 2, 0, 0, 5, 6}));
    EXPECT_EQ(missing, (std::vector<uint32_t>{1}));
}

TEST(FrameCodecTest, SplitEmptyMakesOneFrame)
{
    FrameCodec codec(8);
    auto frames = codec.split({});
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].payload, Bytes(8, 0));
}

TEST(XorRedundancyTest, EncodeAddsParityPerGroup)
{
    XorRedundancy xr(2);
    std::vector<Bytes> blocks = {{1, 1}, {2, 2}, {3, 3}};
    auto encoded = xr.encode(blocks);
    // groups: [b0, b1, p01], [b2, p2]
    ASSERT_EQ(encoded.size(), 5u);
    EXPECT_EQ(encoded[2], (Bytes{3, 3})); // 1^2, 1^2
    EXPECT_EQ(encoded[4], (Bytes{3, 3}));
    EXPECT_EQ(xr.encodedCount(3), 5u);
}

TEST(XorRedundancyTest, RecoversSingleLossPerGroup)
{
    XorRedundancy xr(3);
    Rng rng(141);
    std::vector<Bytes> blocks;
    for (int i = 0; i < 7; ++i)
        blocks.push_back(randomBytes(10, rng));
    auto encoded = xr.encode(blocks);

    // Drop one block in each group.
    std::vector<std::optional<Bytes>> received;
    for (const auto &b : encoded)
        received.emplace_back(b);
    received[1].reset(); // group 1 data block
    received[5].reset(); // group 2 data block

    auto decoded = xr.decode(received);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, blocks);
}

TEST(XorRedundancyTest, FailsOnDoubleLoss)
{
    XorRedundancy xr(3);
    std::vector<Bytes> blocks = {{1}, {2}, {3}};
    auto encoded = xr.encode(blocks);
    std::vector<std::optional<Bytes>> received;
    for (const auto &b : encoded)
        received.emplace_back(b);
    received[0].reset();
    received[1].reset();
    EXPECT_FALSE(xr.decode(received).has_value());
}

TEST(XorRedundancyTest, LostParityIsHarmless)
{
    XorRedundancy xr(2);
    std::vector<Bytes> blocks = {{1}, {2}};
    auto encoded = xr.encode(blocks);
    std::vector<std::optional<Bytes>> received;
    for (const auto &b : encoded)
        received.emplace_back(b);
    received[2].reset(); // the parity block
    auto decoded = xr.decode(received);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, blocks);
}

} // namespace
} // namespace dnasim
