/**
 * @file
 * Unit tests for the data library: dataset containers and the
 * fixed-coverage protocol, the strand factory, and evyat-format I/O.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "base/logging.hh"
#include "data/dataset.hh"
#include "data/io.hh"
#include "data/strand_factory.hh"

namespace dnasim
{
namespace
{

Dataset
sampleDataset()
{
    Dataset data;
    Cluster a;
    a.reference = "ACGTACGTAC";
    a.copies = {"ACGTACGTAC", "ACGTAGGTAC", "ACGTACGTA"};
    data.add(a);
    Cluster b;
    b.reference = "TTTTGGGGCC";
    b.copies = {"TTTTGGGGCC"};
    data.add(b);
    Cluster erasure;
    erasure.reference = "GGGGCCCCAA";
    data.add(erasure);
    return data;
}

TEST(Dataset, BasicShape)
{
    Dataset data = sampleDataset();
    EXPECT_EQ(data.size(), 3u);
    EXPECT_EQ(data.totalCopies(), 4u);
    EXPECT_TRUE(data[2].isErasure());
    EXPECT_EQ(data.coverages(), (std::vector<size_t>{3, 1, 0}));
}

TEST(Dataset, StatsBasics)
{
    Dataset data = sampleDataset();
    auto stats = data.stats();
    EXPECT_EQ(stats.num_clusters, 3u);
    EXPECT_EQ(stats.num_copies, 4u);
    EXPECT_EQ(stats.num_erasures, 1u);
    EXPECT_EQ(stats.min_coverage, 0u);
    EXPECT_EQ(stats.max_coverage, 3u);
    EXPECT_NEAR(stats.mean_coverage, 4.0 / 3.0, 1e-12);
    EXPECT_GT(stats.aggregate_error_rate, 0.0);
}

TEST(Dataset, StatsWithoutErrorRate)
{
    Dataset data = sampleDataset();
    auto stats = data.stats(false);
    EXPECT_DOUBLE_EQ(stats.aggregate_error_rate, 0.0);
    EXPECT_EQ(stats.num_copies, 4u);
}

TEST(Dataset, FixedCoverageDropsSmallClusters)
{
    Dataset data = sampleDataset();
    Dataset at2 = data.fixedCoverage(2);
    ASSERT_EQ(at2.size(), 1u);
    EXPECT_EQ(at2[0].coverage(), 2u);
    EXPECT_EQ(at2[0].copies[0], data[0].copies[0]);
    EXPECT_EQ(at2[0].copies[1], data[0].copies[1]);
}

TEST(Dataset, FixedCoverageMinFilter)
{
    Dataset data = sampleDataset();
    // Coverage 1 but require at least 3 copies.
    Dataset filtered = data.fixedCoverage(1, 3);
    ASSERT_EQ(filtered.size(), 1u);
    EXPECT_EQ(filtered[0].coverage(), 1u);
    EXPECT_EQ(filtered[0].reference, "ACGTACGTAC");
}

TEST(Dataset, FixedCoveragePrefixProperty)
{
    // The paper's protocol: coverage n's copies are a prefix of
    // coverage n+1's.
    Dataset data = sampleDataset();
    Dataset at1 = data.fixedCoverage(1, 3);
    Dataset at2 = data.fixedCoverage(2, 3);
    ASSERT_EQ(at1.size(), at2.size());
    for (size_t i = 0; i < at1.size(); ++i)
        EXPECT_EQ(at2[i].copies[0], at1[i].copies[0]);
}

TEST(Dataset, ShuffleWithinClustersDeterministic)
{
    Dataset a = sampleDataset();
    Dataset b = sampleDataset();
    Rng r1(5), r2(5);
    a.shuffleWithinClusters(r1);
    b.shuffleWithinClusters(r2);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].copies, b[i].copies);
}

TEST(Dataset, ShuffleKeepsMultiset)
{
    Dataset data = sampleDataset();
    auto before = data[0].copies;
    Rng rng(6);
    data.shuffleWithinClusters(rng);
    auto after = data[0].copies;
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    EXPECT_EQ(before, after);
}

TEST(Dataset, PooledReads)
{
    Dataset data = sampleDataset();
    auto pool = data.pooledReads();
    EXPECT_EQ(pool.size(), 4u);
    EXPECT_EQ(pool[0], data[0].copies[0]);
    EXPECT_EQ(pool[3], data[1].copies[0]);
}

TEST(StrandFactory, RespectsConstraints)
{
    StrandConstraints constraints;
    constraints.min_gc = 0.40;
    constraints.max_gc = 0.60;
    constraints.max_homopolymer = 3;
    StrandFactory factory(constraints);
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        Strand s = factory.make(110, rng);
        EXPECT_EQ(s.size(), 110u);
        EXPECT_TRUE(isValidStrand(s));
        EXPECT_GE(gcRatio(s), 0.40);
        EXPECT_LE(gcRatio(s), 0.60);
        EXPECT_LE(maxHomopolymerRun(s), 3u);
    }
}

TEST(StrandFactory, DisabledConstraints)
{
    StrandConstraints loose;
    loose.min_gc = 1.0;
    loose.max_gc = 0.0; // disabled
    loose.max_homopolymer = 0; // disabled
    StrandFactory factory(loose);
    Rng rng(8);
    Strand s = factory.make(200, rng);
    EXPECT_EQ(s.size(), 200u);
}

TEST(StrandFactory, MakeManyCountAndVariety)
{
    StrandFactory factory;
    Rng rng(9);
    auto strands = factory.makeMany(20, 60, rng);
    ASSERT_EQ(strands.size(), 20u);
    std::set<Strand> unique(strands.begin(), strands.end());
    EXPECT_EQ(unique.size(), 20u);
}

TEST(StrandFactory, Deterministic)
{
    StrandFactory factory;
    Rng a(10), b(10);
    EXPECT_EQ(factory.make(110, a), factory.make(110, b));
}

TEST(StrandFactory, SatisfiesAgreesWithMake)
{
    StrandFactory factory;
    Rng rng(11);
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(factory.satisfies(factory.make(80, rng)));
    EXPECT_FALSE(factory.satisfies(Strand(80, 'A')));
}

TEST(EvyatIo, RoundTrip)
{
    Dataset data = sampleDataset();
    std::ostringstream out;
    writeEvyat(data, out);
    std::istringstream in(out.str());
    Dataset parsed = readEvyat(in);
    ASSERT_EQ(parsed.size(), data.size());
    for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(parsed[i].reference, data[i].reference);
        EXPECT_EQ(parsed[i].copies, data[i].copies);
    }
}

TEST(EvyatIo, ErasureClustersSurvive)
{
    Dataset data = sampleDataset();
    std::ostringstream out;
    writeEvyat(data, out);
    std::istringstream in(out.str());
    Dataset parsed = readEvyat(in);
    EXPECT_TRUE(parsed[2].isErasure());
}

TEST(EvyatIo, EmptyStream)
{
    std::istringstream in("");
    Dataset parsed = readEvyat(in);
    EXPECT_TRUE(parsed.empty());
}

TEST(EvyatIo, ToleratesCrlf)
{
    std::string text = "ACGT\r\n*****\r\nACGA\r\n\r\n\r\n";
    std::istringstream in(text);
    Dataset parsed = readEvyat(in);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].reference, "ACGT");
    ASSERT_EQ(parsed[0].coverage(), 1u);
    EXPECT_EQ(parsed[0].copies[0], "ACGA");
}

TEST(EvyatIo, RejectsInvalidReference)
{
    std::istringstream in("ACGX\n*****\nACGT\n\n");
    EXPECT_THROW(readEvyat(in), FatalError);
}

TEST(EvyatIo, RejectsMissingSeparator)
{
    std::istringstream in("ACGT\nACGA\n\n");
    EXPECT_THROW(readEvyat(in), FatalError);
}

TEST(EvyatIo, RejectsInvalidCopy)
{
    std::istringstream in("ACGT\n*****\nAC-T\n\n");
    EXPECT_THROW(readEvyat(in), FatalError);
}

TEST(EvyatIo, RejectsTruncatedFile)
{
    std::istringstream in("ACGT\n");
    EXPECT_THROW(readEvyat(in), FatalError);
}

TEST(EvyatIo, FileRoundTrip)
{
    Dataset data = sampleDataset();
    std::string path = ::testing::TempDir() + "/dnasim_io_test.evyat";
    writeEvyatFile(data, path);
    Dataset parsed = readEvyatFile(path);
    EXPECT_EQ(parsed.size(), data.size());
    EXPECT_EQ(parsed[0].copies, data[0].copies);
}

TEST(EvyatIo, MissingFileIsFatal)
{
    EXPECT_THROW(readEvyatFile("/nonexistent/nope.evyat"),
                 FatalError);
}

} // namespace
} // namespace dnasim
