/**
 * @file
 * Tests for the ground-truth error-lineage subsystem: observational
 * recording in the channel (core/lineage_log.hh), per-read
 * assignment provenance in the clusterer, the consensus vote
 * profile, the failure-attribution engine, and the
 * dnasim.lineage.v1 JSONL stream — plus the JSON string-escaping
 * round-trips the stream depends on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/accuracy.hh"
#include "analysis/lineage.hh"
#include "cluster/greedy_cluster.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"
#include "obs/events.hh"
#include "obs/json.hh"
#include "obs/telemetry.hh"
#include "reconstruct/consensus.hh"
#include "reconstruct/iterative.hh"

namespace dnasim
{
namespace
{

/**
 * Re-derive the read a transmit produced from its recorded lineage
 * events alone. Events arrive in left-to-right reference order and
 * never overlap, so a single cursor walk suffices; an insertion's
 * ref_pos is the reference index *before which* the extra base
 * appears.
 */
Strand
replayEvents(const Strand &ref,
             std::span<const LineageEvent> events)
{
    Strand out;
    size_t cursor = 0;
    for (const LineageEvent &e : events) {
        while (cursor < e.ref_pos)
            out.push_back(ref[cursor++]);
        switch (e.type) {
          case LineageErrorType::Substitution:
            out.push_back(e.obs_base);
            ++cursor;
            break;
          case LineageErrorType::Insertion:
            out.push_back(e.obs_base);
            break;
          case LineageErrorType::Deletion:
            ++cursor;
            break;
          case LineageErrorType::LongDeletion:
            cursor += e.run_length;
            break;
        }
    }
    while (cursor < ref.size())
        out.push_back(ref[cursor++]);
    return out;
}

/** Append one read's events to a cluster arena. */
void
appendRead(ClusterLineage &arena,
           std::vector<LineageEvent> events)
{
    for (const LineageEvent &e : events)
        arena.events.push_back(e);
    arena.read_event_end.push_back(
        static_cast<uint32_t>(arena.events.size()));
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/dnasim_lineage_" + name;
}

// ---------------------------------------------------------------
// Channel recording
// ---------------------------------------------------------------

TEST(LineageRecording, TransmitByteIdenticalWithRecorder)
{
    StrandFactory factory;
    Rng make(11);
    const auto refs = factory.makeMany(20, 120, make);
    ErrorProfile profile = ErrorProfile::uniform(0.08, 120);

    const IdsChannelModel models[] = {
        IdsChannelModel::naive(profile),
        IdsChannelModel::secondOrder(profile),
    };
    for (const auto &model : models) {
        for (const Strand &ref : refs) {
            Rng a(987), b(987);
            std::vector<LineageEvent> events;
            LineageRecorder rec(&events);
            const Strand plain = model.transmit(ref, a);
            const Strand recorded = model.transmit(ref, b, rec);
            EXPECT_EQ(plain, recorded)
                << "recording must never alter the channel";
        }
    }
}

TEST(LineageRecording, NullRecorderIsDisabled)
{
    LineageRecorder null_rec;
    EXPECT_FALSE(null_rec.enabled());
    // Hooks on a disabled recorder are harmless no-ops.
    null_rec.substitution(3, 'A', 'C');
    null_rec.insertion(1, 'G');
    null_rec.deletion(0, 'T');
    null_rec.longDeletion(2, 4, 'A');

    std::vector<LineageEvent> events;
    LineageRecorder rec(&events);
    EXPECT_TRUE(rec.enabled());
    rec.substitution(3, 'A', 'C');
    rec.longDeletion(2, 4, 'A');
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type, LineageErrorType::Substitution);
    EXPECT_EQ(events[0].refEnd(), 4u);
    EXPECT_EQ(events[1].type, LineageErrorType::LongDeletion);
    EXPECT_EQ(events[1].run_length, 4u);
    EXPECT_EQ(events[1].refEnd(), 6u);
}

TEST(LineageRecording, EventsReplayToTheRead)
{
    StrandFactory factory;
    Rng make(23);
    const auto refs = factory.makeMany(10, 150, make);
    // High rates + second-order features exercise every event kind,
    // including long deletions.
    ErrorProfile profile = ErrorProfile::uniform(0.12, 150);
    IdsChannelModel model = IdsChannelModel::secondOrder(profile);

    Rng rng(4242);
    size_t total_events = 0;
    for (const Strand &ref : refs) {
        for (int k = 0; k < 20; ++k) {
            std::vector<LineageEvent> events;
            LineageRecorder rec(&events);
            const Strand read = model.transmit(ref, rng, rec);
            total_events += events.size();
            EXPECT_EQ(replayEvents(ref, events), read)
                << "recorded events must reproduce the read";
        }
    }
    // The profile is noisy enough that a silent run means the
    // recorder hooks were never reached.
    EXPECT_GT(total_events, 100u);
}

TEST(LineageRecording, SimulatorFillsTheLogAndStaysByteIdentical)
{
    StrandFactory factory;
    Rng make(31);
    const auto refs = factory.makeMany(8, 100, make);
    ErrorProfile profile = ErrorProfile::uniform(0.06, 100);
    IdsChannelModel model = IdsChannelModel::conditional(profile);
    ChannelSimulator sim(model);
    FixedCoverage coverage(5);

    Rng a(777), b(777);
    const Dataset plain = sim.simulate(refs, coverage, a);
    LineageLog log;
    const Dataset logged = sim.simulate(refs, coverage, b, &log);

    ASSERT_EQ(plain.size(), logged.size());
    for (size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].reference, logged[i].reference);
        EXPECT_EQ(plain[i].copies, logged[i].copies);
    }

    ASSERT_EQ(log.numClusters(), refs.size());
    for (size_t i = 0; i < log.numClusters(); ++i) {
        ASSERT_EQ(log.cluster(i).numReads(), logged[i].copies.size());
        for (size_t k = 0; k < logged[i].copies.size(); ++k) {
            EXPECT_EQ(replayEvents(refs[i], log.readEvents(i, k)),
                      logged[i].copies[k]);
        }
    }
    EXPECT_EQ(log.counts().total(), log.totalEvents());
    EXPECT_GT(log.totalEvents(), 0u);
}

// ---------------------------------------------------------------
// Cluster assignment provenance
// ---------------------------------------------------------------

TEST(AssignmentProvenance, CapturingNeverChangesTheClustering)
{
    StrandFactory factory;
    Rng rng(5);
    const auto refs = factory.makeMany(12, 110, rng);
    ErrorProfile profile = ErrorProfile::uniform(0.04, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    std::vector<Strand> pool;
    for (const Strand &ref : refs)
        for (int k = 0; k < 6; ++k)
            pool.push_back(model.transmit(ref, rng));

    const auto without = clusterReads(pool);
    std::vector<ReadAssignment> assignments;
    const auto with = clusterReads(pool, {}, &assignments);

    ASSERT_EQ(without.size(), with.size());
    for (size_t i = 0; i < with.size(); ++i)
        EXPECT_EQ(without[i].members, with[i].members);

    ASSERT_EQ(assignments.size(), pool.size());
    std::vector<size_t> per_cluster(with.size(), 0);
    for (size_t r = 0; r < assignments.size(); ++r) {
        const ReadAssignment &a = assignments[r];
        ASSERT_LT(a.cluster, with.size());
        ++per_cluster[a.cluster];
        if (a.tier == AssignmentTier::Fresh) {
            EXPECT_EQ(a.verified_distance, 0u);
            // The fresh read is its cluster's first member.
            EXPECT_EQ(with[a.cluster].members.front(), r);
        }
    }
    // The provenance partition is exactly the cluster partition.
    for (size_t i = 0; i < with.size(); ++i)
        EXPECT_EQ(per_cluster[i], with[i].members.size());
}

// ---------------------------------------------------------------
// Consensus vote profile
// ---------------------------------------------------------------

TEST(VoteProfile, CountsVotesPerPosition)
{
    const Strand estimate = "ACGT";
    const std::vector<Strand> copies = {"ACGT", "ACGT", "ACGA",
                                        "ACG"};
    std::vector<std::string> per_copy;
    const auto profile =
        consensusVoteProfile(estimate, copies, &per_copy);

    ASSERT_EQ(profile.size(), estimate.size());
    // Position 0: unanimous A.
    EXPECT_EQ(profile[0].votes('A'), 4u);
    EXPECT_EQ(profile[0].totalBaseVotes(), 4u);
    EXPECT_EQ(profile[0].margin(), 4u);
    // Position 3: two T, one substitution to A, one deletion.
    EXPECT_EQ(profile[3].votes('T'), 2u);
    EXPECT_EQ(profile[3].votes('A'), 1u);
    EXPECT_EQ(profile[3].deletion_votes, 1u);

    ASSERT_EQ(per_copy.size(), copies.size());
    EXPECT_EQ(per_copy[0], "ACGT");
    EXPECT_EQ(per_copy[2], "ACGA");
    EXPECT_EQ(per_copy[3], std::string("ACG-"));
}

// ---------------------------------------------------------------
// Attribution engine
// ---------------------------------------------------------------

/** Pseudo-clustered truth with one cluster. */
Dataset
oneCluster(Strand ref, std::vector<Strand> copies)
{
    Dataset data;
    data.add({std::move(ref), std::move(copies)});
    return data;
}

TEST(Attribution, ExactReconstructionHasNoFailures)
{
    const Strand ref = "ACGTACGTACGTACGTACGT";
    Dataset truth = oneCluster(ref, {ref, ref, ref});
    std::vector<Strand> estimates = {ref};

    LineageInputs in;
    in.truth = &truth;
    in.estimates = &estimates;
    const LineageReport report = attributeLineage(in);
    EXPECT_EQ(report.num_units, 1u);
    EXPECT_EQ(report.exact_units, 1u);
    EXPECT_EQ(report.failed_units, 0u);
    EXPECT_TRUE(report.failures.empty());
    EXPECT_EQ(report.residualTotal(), 0u);
}

TEST(Attribution, AlgorithmicWhenCopiesOutvoteTheEstimate)
{
    const Strand ref = "ACGTACGTACGTACGTACGT";
    Strand wrong = ref;
    wrong[5] = 'A'; // copies' plurality at 5 is the truth ('C')
    Dataset truth = oneCluster(ref, {ref, ref, ref});
    std::vector<Strand> estimates = {wrong};

    LineageInputs in;
    in.truth = &truth;
    in.estimates = &estimates;
    const LineageReport report = attributeLineage(in);
    ASSERT_EQ(report.failures.size(), 1u);
    const FailureRecord &f = report.failures[0];
    EXPECT_EQ(f.ref_pos, 5u);
    EXPECT_EQ(f.expected, 'C');
    EXPECT_EQ(f.got, 'A');
    EXPECT_EQ(f.cause, FailureCause::Algorithmic);
    EXPECT_EQ(f.correct_votes, 3u);
    EXPECT_EQ(f.wrong_votes, 0u);
    EXPECT_EQ(report.cause_counts[static_cast<size_t>(
                  FailureCause::Algorithmic)],
              1u);
    EXPECT_EQ(report.residual_substitutions, 1u);
}

TEST(Attribution, ChannelNoiseWhenInjectedErrorsCarryTheVote)
{
    const Strand ref(20, 'A');
    Strand noisy = ref;
    noisy[5] = 'C';
    Dataset truth = oneCluster(ref, {noisy, noisy, noisy});
    std::vector<Strand> estimates = {noisy};

    LineageLog log;
    log.beginRun(1);
    for (int k = 0; k < 3; ++k) {
        appendRead(log.cluster(0),
                   {{5, 1, LineageErrorType::Substitution, 'A',
                     'C'}});
    }

    LineageInputs in;
    in.truth = &truth;
    in.lineage = &log;
    in.estimates = &estimates;
    const LineageReport report = attributeLineage(in);
    ASSERT_EQ(report.failures.size(), 1u);
    const FailureRecord &f = report.failures[0];
    EXPECT_EQ(f.cause, FailureCause::ChannelNoise);
    EXPECT_EQ(f.wrong_votes, 3u);
    EXPECT_EQ(f.injected_votes, 3u);
    EXPECT_EQ(f.clean_votes, 0u);
    EXPECT_EQ(f.foreign_votes, 0u);
    EXPECT_EQ(report.injected.substitutions, 3u);
}

TEST(Attribution, TieBreakWhenTheWinnerTiedTheTruth)
{
    const Strand ref(20, 'A');
    Strand noisy = ref;
    noisy[5] = 'C';
    Dataset truth = oneCluster(ref, {ref, noisy});
    std::vector<Strand> estimates = {noisy};

    LineageLog log;
    log.beginRun(1);
    appendRead(log.cluster(0), {});
    appendRead(log.cluster(0),
               {{5, 1, LineageErrorType::Substitution, 'A', 'C'}});

    LineageInputs in;
    in.truth = &truth;
    in.lineage = &log;
    in.estimates = &estimates;
    const LineageReport report = attributeLineage(in);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].cause, FailureCause::TieBreak);
    EXPECT_EQ(report.failures[0].correct_votes, 1u);
    EXPECT_EQ(report.failures[0].wrong_votes, 1u);
}

TEST(Attribution, CoverageGapWhenNoCopyVotes)
{
    const Strand ref = "ACGTACGT";
    Strand wrong = ref;
    wrong[2] = 'A';
    Dataset truth = oneCluster(ref, {});
    std::vector<Strand> estimates = {wrong};

    LineageInputs in;
    in.truth = &truth;
    in.estimates = &estimates;
    const LineageReport report = attributeLineage(in);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].cause, FailureCause::CoverageGap);
}

TEST(Attribution, AlignmentArtifactWhenCleanAlignmentsShiftVotes)
{
    // A homopolymer deletion the channel injected at reference
    // position 3 gets charged to position 1 by the deterministic
    // leftmost edit script — the wrong votes at position 1 come
    // from reads whose injected events do not touch it.
    const Strand ref = "CAAAT";
    const Strand dropped = "CAAT"; // ref minus one run 'A'
    Dataset truth = oneCluster(ref, {dropped, dropped, ref});
    std::vector<Strand> estimates = {dropped};

    LineageLog log;
    log.beginRun(1);
    appendRead(log.cluster(0),
               {{3, 1, LineageErrorType::Deletion, 'A', '\0'}});
    appendRead(log.cluster(0),
               {{3, 1, LineageErrorType::Deletion, 'A', '\0'}});
    appendRead(log.cluster(0), {});

    LineageInputs in;
    in.truth = &truth;
    in.lineage = &log;
    in.estimates = &estimates;
    const LineageReport report = attributeLineage(in);
    ASSERT_EQ(report.failures.size(), 1u);
    const FailureRecord &f = report.failures[0];
    EXPECT_EQ(f.got, '\0');
    EXPECT_EQ(f.expected, 'A');
    EXPECT_EQ(f.cause, FailureCause::AlignmentArtifact);
    EXPECT_EQ(f.clean_votes, 2u);
    EXPECT_EQ(f.injected_votes, 0u);
    EXPECT_EQ(report.residual_deletions, 1u);
}

TEST(Attribution, ContaminationWhenForeignReadsCarryTheVote)
{
    // One recovered cluster holding 3 reads of reference 0 and 4
    // foreign reads (from references 1 and 2) that all carry a 'C'
    // at position 5; the foreign plurality flips the consensus.
    const Strand ref0(20, 'A');
    Strand ref_c = ref0;
    ref_c[5] = 'C';

    Dataset truth;
    truth.add({ref0, {}});
    truth.add({ref_c, {}});
    truth.add({ref_c, {}});

    std::vector<Strand> pool = {ref0, ref0, ref0, ref_c,
                                ref_c, ref_c, ref_c};
    std::vector<ReadIdentity> identity = {
        {0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {2, 0}, {2, 1}};
    std::vector<ReadCluster> clusters(1);
    clusters[0].members = {0, 1, 2, 3, 4, 5, 6};
    clusters[0].representative = ref0;
    std::vector<Strand> estimates = {ref_c};

    LineageInputs in;
    in.truth = &truth;
    in.estimates = &estimates;
    in.clusters = &clusters;
    in.pool = &pool;
    in.identity = &identity;
    const LineageReport report = attributeLineage(in);

    EXPECT_TRUE(report.reclustered);
    ASSERT_EQ(report.failures.size(), 1u);
    const FailureRecord &f = report.failures[0];
    EXPECT_EQ(f.origin, 0u); // majority origin of the unit
    EXPECT_EQ(f.cause, FailureCause::Contamination);
    EXPECT_EQ(f.foreign_votes, 4u);
    EXPECT_EQ(f.correct_votes, 3u);
    EXPECT_EQ(f.wrong_votes, 4u);
    // Clustering forensics: the 4 foreign reads are misclustered.
    EXPECT_EQ(report.misclustered.size(), 4u);
    EXPECT_NEAR(report.purity, 1.0 - 4.0 / 7.0, 1e-12);
}

TEST(Attribution, InjectedStatsComeFromTheLog)
{
    const Strand ref(20, 'A');
    Dataset truth = oneCluster(ref, {ref});

    LineageLog log;
    log.beginRun(1);
    appendRead(log.cluster(0),
               {{2, 1, LineageErrorType::Substitution, 'A', 'C'},
                {5, 1, LineageErrorType::Insertion, '\0', 'G'},
                {7, 1, LineageErrorType::Deletion, 'A', '\0'},
                {9, 3, LineageErrorType::LongDeletion, 'A', '\0'}});

    LineageInputs in;
    in.truth = &truth;
    in.lineage = &log;
    const LineageReport report = attributeLineage(in);
    EXPECT_TRUE(report.has_lineage);
    EXPECT_FALSE(report.has_estimates);
    EXPECT_EQ(report.injected.substitutions, 1u);
    EXPECT_EQ(report.injected.insertions, 1u);
    EXPECT_EQ(report.injected.deletions, 1u);
    EXPECT_EQ(report.injected.long_deletions, 1u);
    EXPECT_EQ(report.injected.total(), 4u);
    EXPECT_EQ(
        report.injected_confusion[baseIndex('A')][baseIndex('C')],
        1u);
    EXPECT_EQ(report.residualTotal(), 0u);
}

// ---------------------------------------------------------------
// JSON escaping round-trips
// ---------------------------------------------------------------

TEST(JsonEscaping, RoundTripsThroughTheParser)
{
    const std::string cases[] = {
        "plain",
        "with \"quotes\" inside",
        "back\\slash and forward/slash",
        std::string("ctrl \x01\x02 bytes"),
        "newline\nreturn\rtab\t end",
        "µDNA → storage", // UTF-8 passes through
        "",
    };
    for (const std::string &s : cases) {
        const std::string doc =
            "{\"k\":\"" + obs::jsonEscape(s) + "\"}";
        obs::JsonValue parsed;
        std::string error;
        ASSERT_TRUE(obs::parseJson(doc, parsed, &error))
            << doc << ": " << error;
        const obs::JsonValue *k = parsed.find("k");
        ASSERT_NE(k, nullptr);
        EXPECT_EQ(k->asString(), s);
    }
}

TEST(JsonEscaping, TelemetryEventLineSurvivesHostileStrings)
{
    obs::Event event;
    event.seq = 7;
    event.kind = "warning";
    event.name = "bad \"path\"\n\twith control \x01 bytes";
    event.fields = {{"detail", "a\\b \"c\""}};

    const std::string line = obs::telemetryEventLine(event);
    obs::JsonValue parsed;
    std::string error;
    ASSERT_TRUE(obs::parseJson(line, parsed, &error)) << error;
    EXPECT_EQ(parsed.find("schema")->asString(),
              "dnasim.telemetry.v1");
    EXPECT_EQ(parsed.find("event")->asString(), event.kind);
    EXPECT_EQ(parsed.find("name")->asString(), event.name);
    const obs::JsonValue *fields = parsed.find("fields");
    ASSERT_NE(fields, nullptr);
    EXPECT_EQ(fields->find("detail")->asString(), "a\\b \"c\"");
}

// ---------------------------------------------------------------
// dnasim.lineage.v1 stream
// ---------------------------------------------------------------

TEST(LineageJsonl, StreamParsesBackLineByLine)
{
    StrandFactory factory;
    Rng make(77);
    const auto refs = factory.makeMany(6, 100, make);
    ErrorProfile profile = ErrorProfile::uniform(0.08, 100);
    IdsChannelModel model = IdsChannelModel::secondOrder(profile);
    ChannelSimulator sim(model);
    FixedCoverage coverage(5);

    Rng rng(2024);
    LineageLog log;
    const Dataset truth = sim.simulate(refs, coverage, rng, &log);
    Iterative algo;
    const std::vector<Strand> estimates =
        reconstructAll(truth, algo, rng);

    LineageInputs in;
    in.truth = &truth;
    in.lineage = &log;
    in.estimates = &estimates;
    const LineageReport report = attributeLineage(in);

    const std::string path = tempPath("stream.jsonl");
    std::string error;
    ASSERT_TRUE(writeLineageJsonl(path, in, report, &error))
        << error;

    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    size_t meta = 0, reads = 0, failures = 0, summaries = 0;
    std::string line;
    while (std::getline(is, line)) {
        obs::JsonValue doc;
        ASSERT_TRUE(obs::parseJson(line, doc, &error))
            << line << ": " << error;
        ASSERT_NE(doc.find("schema"), nullptr);
        EXPECT_EQ(doc.find("schema")->asString(),
                  "dnasim.lineage.v1");
        const std::string kind = doc.find("kind")->asString();
        if (kind == "meta") {
            ++meta;
            const obs::JsonValue *prov = doc.find("provenance");
            ASSERT_NE(prov, nullptr);
            EXPECT_NE(prov->find("git_rev"), nullptr);
            EXPECT_NE(prov->find("compiler"), nullptr);
            EXPECT_NE(prov->find("simd_tier"), nullptr);
            EXPECT_NE(prov->find("threads"), nullptr);
        } else if (kind == "read") {
            ++reads;
            EXPECT_NE(doc.find("events"), nullptr);
        } else if (kind == "failure") {
            ++failures;
            const std::string cause =
                doc.find("cause")->asString();
            EXPECT_NE(cause, "unknown");
            EXPECT_FALSE(cause.empty());
        } else if (kind == "summary") {
            ++summaries;
            EXPECT_EQ(doc.find("injected")
                          ->find("total")
                          ->asUint(),
                      report.injected.total());
        } else {
            FAIL() << "unexpected line kind: " << kind;
        }
    }
    EXPECT_EQ(meta, 1u);
    EXPECT_EQ(reads, truth.totalCopies());
    EXPECT_EQ(failures, report.failures.size());
    EXPECT_EQ(summaries, 1u);

    uint64_t cause_sum = 0;
    for (uint64_t c : report.cause_counts)
        cause_sum += c;
    EXPECT_EQ(cause_sum, report.failures.size());

    std::remove(path.c_str());
}

TEST(LineageJsonl, ReportsWriteFailures)
{
    // The parent "directory" is a plain file, so the write fails
    // and the error string names the path.
    const std::string blocker = tempPath("blocker");
    {
        std::ofstream os(blocker);
        os << "not a directory\n";
    }
    Dataset truth = oneCluster("ACGT", {"ACGT"});
    LineageInputs in;
    in.truth = &truth;
    const LineageReport report = attributeLineage(in);
    std::string error;
    EXPECT_FALSE(writeLineageJsonl(blocker + "/x/y.jsonl", in,
                                   report, &error));
    EXPECT_FALSE(error.empty());
    std::remove(blocker.c_str());
}

} // anonymous namespace
} // namespace dnasim
