/**
 * @file
 * Integration tests for the archival pipeline: encode -> channel ->
 * reconstruct -> decode, with each redundancy scheme, under clean
 * and noisy channels, with erasures.
 */

#include <gtest/gtest.h>

#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "pipeline/archival_pipeline.hh"
#include "reconstruct/iterative.hh"
#include "reconstruct/majority.hh"

namespace dnasim
{
namespace
{

Bytes
loremBytes(size_t n)
{
    const std::string text =
        "in dna we trust: archival storage for the long now. ";
    Bytes out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(static_cast<uint8_t>(text[i % text.size()]));
    return out;
}

TEST(Pipeline, StoreShapesLibrary)
{
    PipelineConfig config;
    config.payload_bytes = 16;
    config.redundancy = RedundancyScheme::ReedSolomon;
    config.rs_stripe_data = 8;
    config.rs_parity = 4;
    ArchivalPipeline pipeline(config);

    Bytes file = loremBytes(200);
    StoredObject object = pipeline.store(file);
    EXPECT_EQ(object.file_size, 200u);
    EXPECT_EQ(object.num_data_frames, 13u); // ceil(200/16)
    // Two stripes of 8 -> 2 * 4 parity frames.
    EXPECT_EQ(object.num_total_frames, 13u + 8u);
    EXPECT_EQ(object.strands.size(), object.num_total_frames);
    for (const auto &strand : object.strands) {
        EXPECT_EQ(strand.size(), pipeline.strandLength());
        EXPECT_TRUE(isValidStrand(strand));
        EXPECT_LE(maxHomopolymerRun(strand), 1u); // rotating codec
    }
}

TEST(Pipeline, CleanChannelRoundTrip)
{
    PipelineConfig config;
    ArchivalPipeline pipeline(config);
    Bytes file = loremBytes(300);

    ErrorProfile noiseless = ErrorProfile::uniform(0.0, 110);
    IdsChannelModel model = IdsChannelModel::naive(noiseless);
    FixedCoverage coverage(3);
    MajorityVote algo;
    Rng rng(160);
    RetrievedObject result =
        pipeline.roundTrip(file, model, coverage, algo, rng);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.data, file);
    EXPECT_EQ(result.stats.crc_failures, 0u);
}

TEST(Pipeline, NoisyChannelRoundTrip)
{
    PipelineConfig config;
    config.rs_stripe_data = 16;
    config.rs_parity = 8;
    ArchivalPipeline pipeline(config);
    Bytes file = loremBytes(400);

    ErrorProfile noisy = ErrorProfile::uniform(0.03, 110);
    IdsChannelModel model = IdsChannelModel::naive(noisy);
    FixedCoverage coverage(8);
    Iterative algo;
    Rng rng(161);
    RetrievedObject result =
        pipeline.roundTrip(file, model, coverage, algo, rng);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.data, file);
}

TEST(Pipeline, ReedSolomonRecoversErasures)
{
    PipelineConfig config;
    config.payload_bytes = 12;
    config.rs_stripe_data = 10;
    config.rs_parity = 4;
    ArchivalPipeline pipeline(config);
    Bytes file = loremBytes(240); // 20 data frames, 2 stripes

    StoredObject object = pipeline.store(file);
    // Build a clustered dataset by hand: every strand gets clean
    // copies, but a few clusters are erased entirely.
    Dataset clusters;
    for (size_t i = 0; i < object.strands.size(); ++i) {
        Cluster c;
        c.reference = object.strands[i];
        if (i != 3 && i != 11) // two erasures, different stripes
            c.copies.assign(3, object.strands[i]);
        clusters.add(std::move(c));
    }
    MajorityVote algo;
    Rng rng(162);
    RetrievedObject result =
        pipeline.retrieve(clusters, algo, object, rng);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.data, file);
    EXPECT_EQ(result.stats.erasure_clusters, 2u);
    EXPECT_EQ(result.stats.frames_recovered, 2u);
}

TEST(Pipeline, ReedSolomonFailsBeyondBudget)
{
    PipelineConfig config;
    config.payload_bytes = 12;
    config.rs_stripe_data = 10;
    config.rs_parity = 2;
    ArchivalPipeline pipeline(config);
    Bytes file = loremBytes(120); // 10 data frames, one stripe

    StoredObject object = pipeline.store(file);
    Dataset clusters;
    for (size_t i = 0; i < object.strands.size(); ++i) {
        Cluster c;
        c.reference = object.strands[i];
        if (i > 3) // erase 4 frames: beyond 2 parity
            c.copies.assign(2, object.strands[i]);
        clusters.add(std::move(c));
    }
    MajorityVote algo;
    Rng rng(163);
    RetrievedObject result =
        pipeline.retrieve(clusters, algo, object, rng);
    EXPECT_FALSE(result.success);
    EXPECT_EQ(result.stats.stripes_failed, 1u);
}

TEST(Pipeline, XorSchemeRecoversSingleLossPerGroup)
{
    PipelineConfig config;
    config.payload_bytes = 10;
    config.redundancy = RedundancyScheme::XorGroups;
    config.xor_group = 4;
    ArchivalPipeline pipeline(config);
    Bytes file = loremBytes(120); // 12 data frames, 3 groups

    StoredObject object = pipeline.store(file);
    EXPECT_EQ(object.num_total_frames, 12u + 3u);
    Dataset clusters;
    for (size_t i = 0; i < object.strands.size(); ++i) {
        Cluster c;
        c.reference = object.strands[i];
        if (i != 1 && i != 6 && i != 9) // one loss in each group
            c.copies.assign(2, object.strands[i]);
        clusters.add(std::move(c));
    }
    MajorityVote algo;
    Rng rng(164);
    RetrievedObject result =
        pipeline.retrieve(clusters, algo, object, rng);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.data, file);
    EXPECT_EQ(result.stats.frames_recovered, 3u);
}

TEST(Pipeline, NoRedundancyCannotRecover)
{
    PipelineConfig config;
    config.redundancy = RedundancyScheme::None;
    ArchivalPipeline pipeline(config);
    Bytes file = loremBytes(100);

    StoredObject object = pipeline.store(file);
    EXPECT_EQ(object.num_total_frames, object.num_data_frames);
    Dataset clusters;
    for (size_t i = 0; i < object.strands.size(); ++i) {
        Cluster c;
        c.reference = object.strands[i];
        if (i != 0)
            c.copies.assign(2, object.strands[i]);
        clusters.add(std::move(c));
    }
    MajorityVote algo;
    Rng rng(165);
    RetrievedObject result =
        pipeline.retrieve(clusters, algo, object, rng);
    EXPECT_FALSE(result.success);
}

TEST(Pipeline, TrivialCodecVariant)
{
    PipelineConfig config;
    config.rotating_codec = false;
    ArchivalPipeline pipeline(config);
    Bytes file = loremBytes(150);

    ErrorProfile noiseless = ErrorProfile::uniform(0.0, 110);
    IdsChannelModel model = IdsChannelModel::naive(noiseless);
    FixedCoverage coverage(1);
    MajorityVote algo;
    Rng rng(166);
    RetrievedObject result =
        pipeline.roundTrip(file, model, coverage, algo, rng);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.data, file);
}

TEST(Pipeline, EmptyFileRoundTrip)
{
    ArchivalPipeline pipeline;
    Bytes file;
    ErrorProfile noiseless = ErrorProfile::uniform(0.0, 110);
    IdsChannelModel model = IdsChannelModel::naive(noiseless);
    FixedCoverage coverage(2);
    MajorityVote algo;
    Rng rng(167);
    RetrievedObject result =
        pipeline.roundTrip(file, model, coverage, algo, rng);
    EXPECT_TRUE(result.success);
    EXPECT_TRUE(result.data.empty());
}

struct PipelineCase
{
    RedundancyScheme scheme;
    size_t coverage;
    double error_rate;
    bool expect_success;
};

class PipelineSweep : public ::testing::TestWithParam<PipelineCase>
{};

TEST_P(PipelineSweep, RoundTripMatrix)
{
    auto [scheme, coverage_n, error_rate, expect_success] =
        GetParam();
    PipelineConfig config;
    config.redundancy = scheme;
    config.rs_stripe_data = 16;
    config.rs_parity = 6;
    config.xor_group = 5;
    ArchivalPipeline pipeline(config);
    Bytes file = loremBytes(350);

    ErrorProfile profile =
        ErrorProfile::uniform(error_rate, pipeline.strandLength());
    IdsChannelModel model = IdsChannelModel::naive(profile);
    FixedCoverage coverage(coverage_n);
    Iterative algo;
    Rng rng(900 + coverage_n);
    RetrievedObject result =
        pipeline.roundTrip(file, model, coverage, algo, rng);
    EXPECT_EQ(result.success, expect_success)
        << "scheme=" << static_cast<int>(scheme)
        << " coverage=" << coverage_n << " rate=" << error_rate;
    if (expect_success) {
        EXPECT_EQ(result.data, file);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PipelineSweep,
    ::testing::Values(
        // Clean channel: every scheme succeeds at minimal coverage.
        PipelineCase{RedundancyScheme::None, 1, 0.0, true},
        PipelineCase{RedundancyScheme::XorGroups, 1, 0.0, true},
        PipelineCase{RedundancyScheme::ReedSolomon, 1, 0.0, true},
        // Moderate noise, decent coverage: RS and XOR succeed.
        PipelineCase{RedundancyScheme::ReedSolomon, 8, 0.03, true},
        PipelineCase{RedundancyScheme::XorGroups, 8, 0.02, true},
        // Heavy noise at coverage 1: reconstruction of nearly every
        // strand is wrong and no scheme can absorb that.
        PipelineCase{RedundancyScheme::ReedSolomon, 1, 0.08,
                     false}));

TEST(Pipeline, CorruptedStrandCountsAsCrcFailure)
{
    PipelineConfig config;
    config.payload_bytes = 12;
    config.rs_stripe_data = 10;
    config.rs_parity = 4;
    ArchivalPipeline pipeline(config);
    Bytes file = loremBytes(120);

    StoredObject object = pipeline.store(file);
    Dataset clusters;
    for (size_t i = 0; i < object.strands.size(); ++i) {
        Cluster c;
        c.reference = object.strands[i];
        Strand copy = object.strands[i];
        if (i == 2) {
            // Corrupt one base in every copy -> reconstruction is
            // wrong -> CRC (or the rotating codec) rejects it.
            copy[10] = copy[10] == 'A' ? 'C' : 'A';
            copy[11] = copy[11] == 'G' ? 'T' : 'G';
        }
        c.copies.assign(3, copy);
        clusters.add(std::move(c));
    }
    MajorityVote algo;
    Rng rng(168);
    RetrievedObject result =
        pipeline.retrieve(clusters, algo, object, rng);
    EXPECT_TRUE(result.success); // RS rebuilt the rejected frame
    EXPECT_EQ(result.data, file);
    EXPECT_EQ(result.stats.crc_failures +
                  result.stats.undecodable_strands,
              1u);
    EXPECT_EQ(result.stats.frames_recovered, 1u);
}

} // namespace
} // namespace dnasim
