/**
 * @file
 * Unit tests for the base library: DNA alphabet utilities, the RNG,
 * logging, and table formatting.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/dna.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/table.hh"

namespace dnasim
{
namespace
{

TEST(Dna, BaseCharRoundTrip)
{
    for (Base b : kAllBases)
        EXPECT_EQ(charToBase(baseToChar(b)), b);
    for (char c : kBaseChars)
        EXPECT_EQ(baseToChar(charToBase(c)), c);
}

TEST(Dna, BaseIndexIsDense)
{
    std::set<size_t> seen;
    for (char c : kBaseChars)
        seen.insert(baseIndex(c));
    EXPECT_EQ(seen.size(), kNumBases);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), kNumBases - 1);
}

TEST(Dna, IsBaseChar)
{
    EXPECT_TRUE(isBaseChar('A'));
    EXPECT_TRUE(isBaseChar('C'));
    EXPECT_TRUE(isBaseChar('G'));
    EXPECT_TRUE(isBaseChar('T'));
    EXPECT_FALSE(isBaseChar('a'));
    EXPECT_FALSE(isBaseChar('N'));
    EXPECT_FALSE(isBaseChar('\0'));
    EXPECT_FALSE(isBaseChar(' '));
}

TEST(Dna, ComplementIsInvolution)
{
    for (Base b : kAllBases)
        EXPECT_EQ(complement(complement(b)), b);
    EXPECT_EQ(complementChar('A'), 'T');
    EXPECT_EQ(complementChar('G'), 'C');
}

TEST(Dna, IsValidStrand)
{
    EXPECT_TRUE(isValidStrand(""));
    EXPECT_TRUE(isValidStrand("ACGT"));
    EXPECT_TRUE(isValidStrand("AAAA"));
    EXPECT_FALSE(isValidStrand("ACGX"));
    EXPECT_FALSE(isValidStrand("acgt"));
}

TEST(Dna, ReverseStrand)
{
    EXPECT_EQ(reverseStrand("ACGT"), "TGCA");
    EXPECT_EQ(reverseStrand(""), "");
    EXPECT_EQ(reverseStrand("A"), "A");
}

TEST(Dna, ReverseComplement)
{
    EXPECT_EQ(reverseComplement("ACGT"), "ACGT"); // palindrome
    EXPECT_EQ(reverseComplement("AAA"), "TTT");
    EXPECT_EQ(reverseComplement("GATTACA"), "TGTAATC");
}

TEST(Dna, GcRatio)
{
    EXPECT_DOUBLE_EQ(gcRatio(""), 0.0);
    EXPECT_DOUBLE_EQ(gcRatio("AT"), 0.0);
    EXPECT_DOUBLE_EQ(gcRatio("GC"), 1.0);
    EXPECT_DOUBLE_EQ(gcRatio("ACGT"), 0.5);
    EXPECT_DOUBLE_EQ(gcRatio("AAAG"), 0.25);
}

TEST(Dna, MaxHomopolymerRun)
{
    EXPECT_EQ(maxHomopolymerRun(""), 0u);
    EXPECT_EQ(maxHomopolymerRun("A"), 1u);
    EXPECT_EQ(maxHomopolymerRun("ACGT"), 1u);
    EXPECT_EQ(maxHomopolymerRun("AACCC"), 3u);
    EXPECT_EQ(maxHomopolymerRun("TTTTT"), 5u);
    EXPECT_EQ(maxHomopolymerRun("ATTTA"), 3u);
}

TEST(Dna, HomopolymerRunMask)
{
    auto mask = homopolymerRunMask("AAATCCGGG", 3);
    std::vector<bool> expected = {true,  true,  true,  false, false,
                                  false, false, true,  true};
    // positions 0-2 (AAA) and 6-8 (GGG)... note GG at 5-6? The
    // string is A A A T C C G G G: GGG spans 6-8.
    expected = {true, true, true, false, false, false,
                true, true, true};
    EXPECT_EQ(mask, expected);
}

TEST(Dna, HomopolymerRunMaskThreshold)
{
    // Runs shorter than min_run are not flagged.
    auto mask = homopolymerRunMask("AATTCC", 3);
    for (bool b : mask)
        EXPECT_FALSE(b);
    auto mask2 = homopolymerRunMask("AATTCC", 2);
    for (bool b : mask2)
        EXPECT_TRUE(b);
}

TEST(Dna, HomopolymerRunMaskEmpty)
{
    EXPECT_TRUE(homopolymerRunMask("", 3).empty());
}

TEST(Dna, BaseCounts)
{
    auto counts = baseCounts("AACGTT");
    EXPECT_EQ(counts[baseIndex('A')], 2u);
    EXPECT_EQ(counts[baseIndex('C')], 1u);
    EXPECT_EQ(counts[baseIndex('G')], 1u);
    EXPECT_EQ(counts[baseIndex('T')], 2u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform() == b.uniform())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsIndependentOfParentUse)
{
    Rng a(7);
    Rng child1 = a.fork(3);
    a.uniform();
    a.uniform();
    Rng b(7);
    Rng child2 = b.fork(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(child1.uniform(), child2.uniform());
}

TEST(Rng, ForkSaltsDecorrelate)
{
    Rng a(7);
    Rng c1 = a.fork(1);
    Rng c2 = a.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (c1.uniform() == c2.uniform())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(12);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-1.0));
        EXPECT_TRUE(rng.bernoulli(2.0));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng rng(14);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    double rate = static_cast<double>(hits) / n;
    EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(15);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    std::array<int, 3> counts{};
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.discrete(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, NegativeBinomialMean)
{
    Rng rng(16);
    // mean m = r(1-p)/p; with r = 2, p = 2 / (2 + 27) mean is 27.
    double r = 2.0, mean = 27.0;
    double p = r / (r + mean);
    double acc = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        acc += static_cast<double>(rng.negativeBinomial(r, p));
    EXPECT_NEAR(acc / n, mean, 1.5);
}

TEST(Rng, PoissonMean)
{
    Rng rng(17);
    double acc = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        acc += static_cast<double>(rng.poisson(4.0));
    EXPECT_NEAR(acc / n, 4.0, 0.2);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(18);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(DNASIM_FATAL("user error: ", 42), FatalError);
}

TEST(Logging, FatalMessageContent)
{
    try {
        DNASIM_FATAL("bad value ", 7);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad value 7");
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    DNASIM_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(Table, AlignedOutput)
{
    TextTable t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string s = t.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, CsvEscaping)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"x,y", "plain"});
    std::string csv = t.csv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
}

TEST(Table, FmtHelpers)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.5), "50.00");
    EXPECT_EQ(fmtPercent(0.123456, 1), "12.3");
}

} // namespace
} // namespace dnasim
