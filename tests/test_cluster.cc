/**
 * @file
 * Tests for the read-clustering substrate: greedy edit-distance
 * clustering of an unordered read pool and purity scoring.
 */

#include <gtest/gtest.h>

#include "cluster/greedy_cluster.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"

namespace dnasim
{
namespace
{

/** A shuffled pool of noisy reads with ground-truth origins. */
struct Pool
{
    std::vector<Strand> reads;
    std::vector<size_t> origins;
    std::vector<Strand> references;
};

Pool
makePool(size_t num_refs, size_t copies_per_ref, double error_rate,
         uint64_t seed)
{
    Pool pool;
    StrandFactory factory;
    Rng rng(seed);
    pool.references = factory.makeMany(num_refs, 110, rng);
    ErrorProfile profile = ErrorProfile::uniform(error_rate, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    for (size_t i = 0; i < num_refs; ++i) {
        for (size_t k = 0; k < copies_per_ref; ++k) {
            pool.reads.push_back(
                model.transmit(pool.references[i], rng));
            pool.origins.push_back(i);
        }
    }
    // Shuffle reads and origins together.
    std::vector<size_t> order(pool.reads.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);
    Pool shuffled;
    shuffled.references = pool.references;
    for (size_t idx : order) {
        shuffled.reads.push_back(pool.reads[idx]);
        shuffled.origins.push_back(pool.origins[idx]);
    }
    return shuffled;
}

TEST(GreedyCluster, EmptyPool)
{
    auto clusters = clusterReads({});
    EXPECT_TRUE(clusters.empty());
}

TEST(GreedyCluster, IdenticalReadsOneCluster)
{
    std::vector<Strand> reads(5, Strand(60, 'A') + Strand(50, 'C'));
    auto clusters = clusterReads(reads);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0].members.size(), 5u);
}

TEST(GreedyCluster, SeparatesDistantReads)
{
    StrandFactory factory;
    Rng rng(150);
    std::vector<Strand> reads;
    for (int i = 0; i < 4; ++i) {
        Strand ref = factory.make(110, rng);
        reads.push_back(ref);
        reads.push_back(ref);
    }
    auto clusters = clusterReads(reads);
    EXPECT_EQ(clusters.size(), 4u);
}

TEST(GreedyCluster, HighPurityOnLowErrorPool)
{
    Pool pool = makePool(20, 8, 0.03, 151);
    auto clusters = clusterReads(pool.reads);
    auto purity = scoreClustering(clusters, pool.origins);
    EXPECT_EQ(purity.num_reads, pool.reads.size());
    EXPECT_GT(purity.purity(), 0.95);
    // Cluster count near the true reference count (some splits are
    // tolerable, merges are not).
    EXPECT_GE(clusters.size(), 20u);
    EXPECT_LE(clusters.size(), 40u);
}

TEST(GreedyCluster, DegradesGracefullyAtHighError)
{
    Pool pool = makePool(10, 6, 0.12, 152);
    auto clusters = clusterReads(pool.reads);
    auto purity = scoreClustering(clusters, pool.origins);
    // Purity stays decent (splits hurt coverage, not purity).
    EXPECT_GT(purity.purity(), 0.80);
}

TEST(GreedyCluster, ThresholdControlsMerging)
{
    Pool pool = makePool(10, 5, 0.04, 153);
    ClusterOptions tight;
    tight.distance_threshold = 2;
    auto many = clusterReads(pool.reads, tight);
    ClusterOptions loose;
    loose.distance_threshold = 25;
    auto few = clusterReads(pool.reads, loose);
    EXPECT_GT(many.size(), few.size());
}

TEST(GreedyCluster, EveryReadAssignedExactlyOnce)
{
    Pool pool = makePool(8, 7, 0.06, 154);
    auto clusters = clusterReads(pool.reads);
    std::vector<int> seen(pool.reads.size(), 0);
    for (const auto &cluster : clusters)
        for (size_t member : cluster.members)
            ++seen[member];
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "read " << i;
}

/** Flatten a clustering for exact-equality comparison. */
std::string
flatten(const std::vector<ReadCluster> &clusters)
{
    std::string s;
    for (const auto &c : clusters) {
        s += c.representative;
        s += ':';
        for (size_t m : c.members) {
            s += std::to_string(m);
            s += ',';
        }
        s += '\n';
    }
    return s;
}

TEST(SketchCluster, EmptyPoolBothBackends)
{
    for (ClusterIndexKind kind :
         {ClusterIndexKind::Greedy, ClusterIndexKind::Sketch}) {
        ClusterOptions options;
        options.index = kind;
        EXPECT_TRUE(clusterReads({}, options).empty())
            << clusterIndexName(kind);
    }
}

TEST(SketchCluster, ReadsShorterThanAnchorAndKmer)
{
    // Reads shorter than both the anchor prefix and the sketch k-mer
    // have no signature (cluster.sketch.empty_signatures path) and
    // must still cluster by the exact distance gate.
    std::vector<Strand> reads = {"ACGT", "ACGT", "TTTT", "ACGT",
                                 "TTTT"};
    for (ClusterIndexKind kind :
         {ClusterIndexKind::Greedy, ClusterIndexKind::Sketch}) {
        ClusterOptions options;
        options.index = kind;
        options.distance_threshold = 0;
        auto clusters = clusterReads(reads, options);
        ASSERT_EQ(clusters.size(), 2u) << clusterIndexName(kind);
        EXPECT_EQ(clusters[0].members.size(), 3u);
        EXPECT_EQ(clusters[1].members.size(), 2u);
    }
}

TEST(SketchCluster, MaxProbesZeroOpensOneClusterPerRead)
{
    Pool pool = makePool(6, 4, 0.03, 155);
    for (ClusterIndexKind kind :
         {ClusterIndexKind::Greedy, ClusterIndexKind::Sketch}) {
        ClusterOptions options;
        options.index = kind;
        options.max_probes = 0;
        // Long anchor so the anchor tier also proposes nothing.
        options.anchor_length = 1000;
        auto clusters = clusterReads(pool.reads, options);
        EXPECT_EQ(clusters.size(), pool.reads.size())
            << clusterIndexName(kind);
    }
}

TEST(SketchCluster, FindsClustersOutsideRecencyWindow)
{
    // A pool wide enough that a read's true cluster is always older
    // than a 2-probe recency window, with anchors disabled by
    // corrupting prefix survival odds via a long anchor: the greedy
    // fallback splits, the sketch tier still finds the old cluster.
    Pool pool = makePool(40, 6, 0.03, 156);
    ClusterOptions options;
    options.max_probes = 2;
    options.anchor_length = 40;
    options.index = ClusterIndexKind::Greedy;
    auto greedy = clusterReads(pool.reads, options);
    options.index = ClusterIndexKind::Sketch;
    auto sketch = clusterReads(pool.reads, options);
    EXPECT_LT(sketch.size(), greedy.size());
    // Recall must not cost purity: candidates stay distance-gated.
    EXPECT_GT(scoreClustering(sketch, pool.origins).purity(), 0.95);
}

TEST(SketchCluster, PurityWithinHalfPercentOfGreedy)
{
    // The acceptance bar of the sketch index: quality parity (purity
    // within 0.5%) with the greedy scan on a seed-config pool.
    Pool pool = makePool(50, 8, 0.06, 157);
    ClusterOptions options;
    options.index = ClusterIndexKind::Greedy;
    double greedy =
        scoreClustering(clusterReads(pool.reads, options),
                        pool.origins)
            .purity();
    options.index = ClusterIndexKind::Sketch;
    double sketch =
        scoreClustering(clusterReads(pool.reads, options),
                        pool.origins)
            .purity();
    EXPECT_NEAR(sketch, greedy, 0.005);
}

TEST(SketchCluster, SketchOptionsChangeTheTradeoff)
{
    // Fewer bands -> fewer candidate proposals -> at least as many
    // clusters (recall can only drop); still deterministic.
    Pool pool = makePool(30, 6, 0.04, 158);
    ClusterOptions wide;
    wide.index = ClusterIndexKind::Sketch;
    wide.anchor_length = 40;
    wide.max_probes = 4;
    ClusterOptions narrow = wide;
    narrow.sketch.num_bands = 2;
    auto with_wide = clusterReads(pool.reads, wide);
    auto with_narrow = clusterReads(pool.reads, narrow);
    EXPECT_GE(with_narrow.size(), with_wide.size());
    EXPECT_EQ(flatten(clusterReads(pool.reads, narrow)),
              flatten(with_narrow));
}

TEST(ParseClusterIndex, RoundTripsAndRejects)
{
    EXPECT_EQ(parseClusterIndex("greedy"), ClusterIndexKind::Greedy);
    EXPECT_EQ(parseClusterIndex("sketch"), ClusterIndexKind::Sketch);
    EXPECT_FALSE(parseClusterIndex("minhash").has_value());
    EXPECT_FALSE(parseClusterIndex("").has_value());
    EXPECT_STREQ(clusterIndexName(ClusterIndexKind::Greedy),
                 "greedy");
    EXPECT_STREQ(clusterIndexName(ClusterIndexKind::Sketch),
                 "sketch");
}

TEST(EpochSeen, StampsAreScopedToTheEpoch)
{
    EpochSeen seen;
    seen.begin(4);
    EXPECT_FALSE(seen.test(2));
    seen.set(2);
    EXPECT_TRUE(seen.test(2));
    EXPECT_TRUE(seen.testAndSet(2));
    EXPECT_FALSE(seen.testAndSet(3));
    EXPECT_TRUE(seen.test(3));
    seen.begin(4); // new epoch invalidates every mark
    EXPECT_FALSE(seen.test(2));
    EXPECT_FALSE(seen.test(3));
    seen.begin(8); // growing the domain keeps O(1) semantics
    EXPECT_FALSE(seen.test(7));
    seen.set(7);
    EXPECT_TRUE(seen.test(7));
}

TEST(ScoreClustering, PerfectClusteringIsPure)
{
    std::vector<ReadCluster> clusters(2);
    clusters[0].members = {0, 1};
    clusters[1].members = {2, 3};
    std::vector<size_t> origins = {7, 7, 9, 9};
    auto purity = scoreClustering(clusters, origins);
    EXPECT_DOUBLE_EQ(purity.purity(), 1.0);
}

TEST(ScoreClustering, MixedClusterPenalized)
{
    std::vector<ReadCluster> clusters(1);
    clusters[0].members = {0, 1, 2};
    std::vector<size_t> origins = {1, 1, 2};
    auto purity = scoreClustering(clusters, origins);
    EXPECT_NEAR(purity.purity(), 2.0 / 3.0, 1e-12);
}

TEST(ScoreClustering, EmptyClustering)
{
    auto purity = scoreClustering({}, {});
    EXPECT_EQ(purity.num_reads, 0u);
    EXPECT_DOUBLE_EQ(purity.purity(), 0.0);
}

} // namespace
} // namespace dnasim
