/**
 * @file
 * Tests for the read-clustering substrate: greedy edit-distance
 * clustering of an unordered read pool and purity scoring.
 */

#include <gtest/gtest.h>

#include "cluster/greedy_cluster.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"

namespace dnasim
{
namespace
{

/** A shuffled pool of noisy reads with ground-truth origins. */
struct Pool
{
    std::vector<Strand> reads;
    std::vector<size_t> origins;
    std::vector<Strand> references;
};

Pool
makePool(size_t num_refs, size_t copies_per_ref, double error_rate,
         uint64_t seed)
{
    Pool pool;
    StrandFactory factory;
    Rng rng(seed);
    pool.references = factory.makeMany(num_refs, 110, rng);
    ErrorProfile profile = ErrorProfile::uniform(error_rate, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    for (size_t i = 0; i < num_refs; ++i) {
        for (size_t k = 0; k < copies_per_ref; ++k) {
            pool.reads.push_back(
                model.transmit(pool.references[i], rng));
            pool.origins.push_back(i);
        }
    }
    // Shuffle reads and origins together.
    std::vector<size_t> order(pool.reads.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);
    Pool shuffled;
    shuffled.references = pool.references;
    for (size_t idx : order) {
        shuffled.reads.push_back(pool.reads[idx]);
        shuffled.origins.push_back(pool.origins[idx]);
    }
    return shuffled;
}

TEST(GreedyCluster, EmptyPool)
{
    auto clusters = clusterReads({});
    EXPECT_TRUE(clusters.empty());
}

TEST(GreedyCluster, IdenticalReadsOneCluster)
{
    std::vector<Strand> reads(5, Strand(60, 'A') + Strand(50, 'C'));
    auto clusters = clusterReads(reads);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0].members.size(), 5u);
}

TEST(GreedyCluster, SeparatesDistantReads)
{
    StrandFactory factory;
    Rng rng(150);
    std::vector<Strand> reads;
    for (int i = 0; i < 4; ++i) {
        Strand ref = factory.make(110, rng);
        reads.push_back(ref);
        reads.push_back(ref);
    }
    auto clusters = clusterReads(reads);
    EXPECT_EQ(clusters.size(), 4u);
}

TEST(GreedyCluster, HighPurityOnLowErrorPool)
{
    Pool pool = makePool(20, 8, 0.03, 151);
    auto clusters = clusterReads(pool.reads);
    auto purity = scoreClustering(clusters, pool.origins);
    EXPECT_EQ(purity.num_reads, pool.reads.size());
    EXPECT_GT(purity.purity(), 0.95);
    // Cluster count near the true reference count (some splits are
    // tolerable, merges are not).
    EXPECT_GE(clusters.size(), 20u);
    EXPECT_LE(clusters.size(), 40u);
}

TEST(GreedyCluster, DegradesGracefullyAtHighError)
{
    Pool pool = makePool(10, 6, 0.12, 152);
    auto clusters = clusterReads(pool.reads);
    auto purity = scoreClustering(clusters, pool.origins);
    // Purity stays decent (splits hurt coverage, not purity).
    EXPECT_GT(purity.purity(), 0.80);
}

TEST(GreedyCluster, ThresholdControlsMerging)
{
    Pool pool = makePool(10, 5, 0.04, 153);
    ClusterOptions tight;
    tight.distance_threshold = 2;
    auto many = clusterReads(pool.reads, tight);
    ClusterOptions loose;
    loose.distance_threshold = 25;
    auto few = clusterReads(pool.reads, loose);
    EXPECT_GT(many.size(), few.size());
}

TEST(GreedyCluster, EveryReadAssignedExactlyOnce)
{
    Pool pool = makePool(8, 7, 0.06, 154);
    auto clusters = clusterReads(pool.reads);
    std::vector<int> seen(pool.reads.size(), 0);
    for (const auto &cluster : clusters)
        for (size_t member : cluster.members)
            ++seen[member];
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "read " << i;
}

TEST(ScoreClustering, PerfectClusteringIsPure)
{
    std::vector<ReadCluster> clusters(2);
    clusters[0].members = {0, 1};
    clusters[1].members = {2, 3};
    std::vector<size_t> origins = {7, 7, 9, 9};
    auto purity = scoreClustering(clusters, origins);
    EXPECT_DOUBLE_EQ(purity.purity(), 1.0);
}

TEST(ScoreClustering, MixedClusterPenalized)
{
    std::vector<ReadCluster> clusters(1);
    clusters[0].members = {0, 1, 2};
    std::vector<size_t> origins = {1, 1, 2};
    auto purity = scoreClustering(clusters, origins);
    EXPECT_NEAR(purity.purity(), 2.0 / 3.0, 1e-12);
}

TEST(ScoreClustering, EmptyClustering)
{
    auto purity = scoreClustering({}, {});
    EXPECT_EQ(purity.num_reads, 0u);
    EXPECT_DOUBLE_EQ(purity.purity(), 0.0);
}

} // namespace
} // namespace dnasim
