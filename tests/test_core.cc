/**
 * @file
 * Unit and statistical tests for the core library: error profiles,
 * the IDS channel engine and its feature ladder, the DNASimulator
 * port, coverage models, the channel simulator, the data-driven
 * profiler, the composable stage pipeline, and the wetlab channel.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "align/edit_distance.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/dnasimulator_model.hh"
#include "core/error_profile.hh"
#include "core/ids_model.hh"
#include "core/profiler.hh"
#include "core/stages.hh"
#include "core/wetlab.hh"
#include "data/strand_factory.hh"

namespace dnasim
{
namespace
{

/** Mean per-base error rate of @p model measured over transmissions. */
double
measuredErrorRate(const ErrorModel &model, size_t len, int copies,
                  uint64_t seed)
{
    StrandFactory factory;
    Rng rng(seed);
    Strand ref = factory.make(len, rng);
    size_t total_errors = 0;
    for (int i = 0; i < copies; ++i) {
        Strand copy = model.transmit(ref, rng);
        total_errors += levenshtein(ref, copy);
    }
    return static_cast<double>(total_errors) /
           (static_cast<double>(len) * copies);
}

TEST(ErrorProfile, UniformSplitsRates)
{
    ErrorProfile p = ErrorProfile::uniform(0.09, 110);
    EXPECT_NEAR(p.p_sub, 0.03, 1e-12);
    EXPECT_NEAR(p.p_ins, 0.03, 1e-12);
    EXPECT_NEAR(p.p_del, 0.03, 1e-12);
    EXPECT_NEAR(p.totalRate(), 0.09, 1e-12);
    for (size_t b = 0; b < kNumBases; ++b) {
        EXPECT_NEAR(p.p_sub_given[b], 0.03, 1e-12);
        EXPECT_DOUBLE_EQ(p.confusion[b][b], 0.0);
    }
}

TEST(ErrorProfile, UniformCustomFractions)
{
    ErrorProfile p = ErrorProfile::uniform(0.10, 110, 1.0, 0.0, 0.0);
    EXPECT_NEAR(p.p_sub, 0.10, 1e-12);
    EXPECT_DOUBLE_EQ(p.p_ins, 0.0);
    EXPECT_DOUBLE_EQ(p.p_del, 0.0);
}

TEST(ErrorProfile, MeanLongDeletionLength)
{
    ErrorProfile p;
    EXPECT_DOUBLE_EQ(p.meanLongDeletionLength(), 0.0);
    // The paper's calibrated ratios give a mean near 2.17.
    p.long_del_len_weights = {84.0, 13.0, 1.8, 0.2, 0.02};
    EXPECT_NEAR(p.meanLongDeletionLength(), 2.17, 0.03);
}

TEST(ErrorProfile, WithSpatialReplacesProfile)
{
    ErrorProfile p = ErrorProfile::uniform(0.05, 110);
    ErrorProfile q = p.withSpatial(PositionProfile::aShaped(110));
    EXPECT_TRUE(p.spatial.isUniform());
    EXPECT_FALSE(q.spatial.isUniform());
    EXPECT_DOUBLE_EQ(q.totalRate(), p.totalRate());
}

TEST(IdsModel, ZeroRateIsIdentity)
{
    ErrorProfile p = ErrorProfile::uniform(0.0, 110);
    IdsChannelModel model = IdsChannelModel::naive(p);
    StrandFactory factory;
    Rng rng(40);
    for (int i = 0; i < 10; ++i) {
        Strand ref = factory.make(110, rng);
        EXPECT_EQ(model.transmit(ref, rng), ref);
    }
}

TEST(IdsModel, NamesFollowFeatures)
{
    ErrorProfile p = ErrorProfile::uniform(0.05, 110);
    EXPECT_EQ(IdsChannelModel::naive(p).name(), "naive");
    EXPECT_EQ(IdsChannelModel::conditional(p).name(), "conditional");
    EXPECT_EQ(IdsChannelModel::skew(p).name(), "skew");
    EXPECT_EQ(IdsChannelModel::secondOrder(p).name(),
              "second-order");
}

TEST(IdsModel, AggregateRateIsRespected)
{
    for (double rate : {0.03, 0.06, 0.12}) {
        ErrorProfile p = ErrorProfile::uniform(rate, 110);
        IdsChannelModel model = IdsChannelModel::naive(p);
        double measured = measuredErrorRate(model, 110, 400, 41);
        EXPECT_NEAR(measured, rate, rate * 0.15) << "rate " << rate;
    }
}

TEST(IdsModel, DeterministicGivenSeed)
{
    ErrorProfile p = ErrorProfile::uniform(0.1, 110);
    IdsChannelModel model = IdsChannelModel::naive(p);
    StrandFactory factory;
    Rng setup(42);
    Strand ref = factory.make(110, setup);
    Rng a(7), b(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(model.transmit(ref, a), model.transmit(ref, b));
}

TEST(IdsModel, ConfusionMatrixRespected)
{
    // All substitutions of A go to G.
    ErrorProfile p = ErrorProfile::uniform(0.3, 100, 1.0, 0.0, 0.0);
    for (size_t r = 0; r < kNumBases; ++r)
        p.confusion[baseIndex('A')][r] = 0.0;
    p.confusion[baseIndex('A')][baseIndex('G')] = 1.0;
    IdsChannelModel model = IdsChannelModel::conditional(p);

    Strand ref(100, 'A');
    Rng rng(43);
    for (int i = 0; i < 20; ++i) {
        Strand copy = model.transmit(ref, rng);
        for (char c : copy)
            EXPECT_TRUE(c == 'A' || c == 'G') << c;
    }
}

TEST(IdsModel, ConditionalPerBaseRates)
{
    // Base A never errs; base T errs heavily.
    ErrorProfile p = ErrorProfile::uniform(0.0, 100);
    p.p_sub_given[baseIndex('T')] = 0.4;
    for (size_t r = 0; r < kNumBases; ++r)
        p.confusion[baseIndex('T')][r] =
            (kBaseChars[r] == 'C') ? 1.0 : 0.0;
    IdsChannelModel model = IdsChannelModel::conditional(p);

    Strand ref = "ATATATATATATATATATAT";
    Rng rng(44);
    size_t a_errors = 0, t_errors = 0, trials = 500;
    for (size_t i = 0; i < trials; ++i) {
        Strand copy = model.transmit(ref, rng);
        ASSERT_EQ(copy.size(), ref.size());
        for (size_t k = 0; k < ref.size(); ++k) {
            if (copy[k] == ref[k])
                continue;
            if (ref[k] == 'A')
                ++a_errors;
            else
                ++t_errors;
        }
    }
    EXPECT_EQ(a_errors, 0u);
    double t_rate = static_cast<double>(t_errors) /
                    (10.0 * static_cast<double>(trials));
    EXPECT_NEAR(t_rate, 0.4, 0.05);
}

TEST(IdsModel, LongDeletionsProduceRuns)
{
    ErrorProfile p = ErrorProfile::uniform(0.0, 200);
    p.p_long_del = 0.02;
    p.long_del_len_weights = {1.0}; // all runs length 2
    IdsChannelModel model = IdsChannelModel::conditional(p);

    StrandFactory factory;
    Rng rng(45);
    Strand ref = factory.make(200, rng);
    size_t deleted = 0;
    const int trials = 300;
    for (int i = 0; i < trials; ++i) {
        Strand copy = model.transmit(ref, rng);
        // Only deletions can occur (sub/ins rates are zero), and a
        // run of length 2 removes two bases except when it starts at
        // the final position.
        EXPECT_LE(copy.size(), ref.size());
        deleted += ref.size() - copy.size();
    }
    double start_rate = static_cast<double>(deleted) / 2.0 /
                        (200.0 * trials);
    EXPECT_NEAR(start_rate, 0.02, 0.005);
}

TEST(IdsModel, SpatialSkewMovesErrors)
{
    ErrorProfile p = ErrorProfile::uniform(0.2, 110, 1.0, 0.0, 0.0);
    p.spatial = PositionProfile::vShaped(110);
    IdsChannelModel model = IdsChannelModel::skew(p);

    StrandFactory factory;
    Rng rng(46);
    Strand ref = factory.make(110, rng);
    size_t edge_errors = 0, mid_errors = 0;
    for (int i = 0; i < 400; ++i) {
        Strand copy = model.transmit(ref, rng);
        ASSERT_EQ(copy.size(), ref.size()); // sub-only profile
        for (size_t k = 0; k < 20; ++k) {
            if (copy[k] != ref[k])
                ++edge_errors;
            if (copy[k + 45] != ref[k + 45])
                ++mid_errors;
        }
    }
    EXPECT_GT(edge_errors, 3 * mid_errors);
}

TEST(IdsModel, SkewPreservesAggregateRate)
{
    ErrorProfile uniform = ErrorProfile::uniform(0.08, 110);
    ErrorProfile skewed =
        uniform.withSpatial(PositionProfile::aShaped(110));
    double flat =
        measuredErrorRate(IdsChannelModel::naive(uniform), 110, 400,
                          47);
    double shaped =
        measuredErrorRate(IdsChannelModel::skew(skewed), 110, 400,
                          48);
    EXPECT_NEAR(flat, shaped, 0.012);
}

TEST(IdsModel, SecondOrderComponentSkew)
{
    // One second-order error: deletion of A concentrated at the last
    // position; everything else error-free.
    ErrorProfile p = ErrorProfile::uniform(0.0, 50);
    p.p_del_given[baseIndex('A')] = 0.2;
    SecondOrderSpec spec;
    spec.key = {EditOpType::Delete, 'A', '\0'};
    spec.rate = 0.2;
    spec.spatial = PositionProfile::terminalSkew(50, 1.0, 40.0, 0);
    p.second_order.push_back(spec);
    IdsChannelModel model = IdsChannelModel::secondOrder(p);

    Strand ref(50, 'A');
    Rng rng(49);
    size_t last_missing = 0, total_missing = 0;
    for (int i = 0; i < 500; ++i) {
        Strand copy = model.transmit(ref, rng);
        total_missing += ref.size() - copy.size();
    }
    // The rate concentrates at the tail; aggregate deletion mass is
    // conserved (mean multiplier 1), so roughly 0.2 * 50 * trials
    // / 50 deletions per strand on average.
    EXPECT_GT(total_missing, 0u);
    (void)last_missing;
}

TEST(IdsModel, RatesAtExposesEffectiveRates)
{
    ErrorProfile p = ErrorProfile::uniform(0.09, 110);
    p.spatial = PositionProfile::terminalSkew(110, 4.0, 8.0);
    IdsChannelModel skew = IdsChannelModel::skew(p);
    auto head = skew.ratesAt('A', 0, 110);
    auto mid = skew.ratesAt('A', 55, 110);
    auto tail = skew.ratesAt('A', 109, 110);
    EXPECT_GT(head.total(), mid.total());
    EXPECT_GT(tail.total(), head.total());

    IdsChannelModel naive = IdsChannelModel::naive(p);
    auto n_head = naive.ratesAt('A', 0, 110);
    auto n_mid = naive.ratesAt('A', 55, 110);
    EXPECT_DOUBLE_EQ(n_head.total(), n_mid.total());
}

TEST(IdsModel, TransmitScaledScalesErrors)
{
    ErrorProfile p = ErrorProfile::uniform(0.05, 110);
    IdsChannelModel model = IdsChannelModel::naive(p);
    StrandFactory factory;
    Rng rng(50);
    Strand ref = factory.make(110, rng);
    size_t base_err = 0, scaled_err = 0;
    for (int i = 0; i < 300; ++i) {
        base_err += levenshtein(ref, model.transmit(ref, rng));
        scaled_err +=
            levenshtein(ref, model.transmitScaled(ref, 3.0, rng));
    }
    EXPECT_NEAR(static_cast<double>(scaled_err) /
                    static_cast<double>(base_err),
                3.0, 0.5);
}

TEST(IdsModel, TransmitScaledZeroIsIdentity)
{
    ErrorProfile p = ErrorProfile::uniform(0.2, 110);
    IdsChannelModel model = IdsChannelModel::naive(p);
    StrandFactory factory;
    Rng rng(51);
    Strand ref = factory.make(110, rng);
    EXPECT_EQ(model.transmitScaled(ref, 0.0, rng), ref);
}

TEST(IdsModel, ExtremeScaleIsClamped)
{
    ErrorProfile p = ErrorProfile::uniform(0.3, 110);
    IdsChannelModel model = IdsChannelModel::naive(p);
    StrandFactory factory;
    Rng rng(52);
    Strand ref = factory.make(110, rng);
    // Even with an absurd multiplier the model must terminate and
    // produce some output.
    Strand copy = model.transmitScaled(ref, 1000.0, rng);
    EXPECT_LE(copy.size(), 2 * ref.size() + 2);
}

TEST(IdsModel, HomopolymerContextConcentratesErrors)
{
    // Sub-only uniform channel with a 4x run multiplier: errors
    // should land in the run far more often than outside, while the
    // aggregate rate is preserved by normalization.
    ErrorProfile p = ErrorProfile::uniform(0.12, 40, 1.0, 0.0, 0.0);
    p.homopolymer_mult = 4.0;
    IdsChannelModel with_ctx = IdsChannelModel::contextual(p);
    IdsChannelModel without_ctx = IdsChannelModel::secondOrder(p);

    // 20 run positions (AAAA x5), 20 non-run positions.
    Strand ref;
    for (int i = 0; i < 5; ++i)
        ref += "AAAACGTC";
    ASSERT_EQ(ref.size(), 40u);
    auto mask = homopolymerRunMask(ref, 3);

    Rng rng(400);
    size_t in = 0, out = 0, total_ctx = 0, total_plain = 0;
    for (int t = 0; t < 600; ++t) {
        Strand copy = with_ctx.transmit(ref, rng);
        ASSERT_EQ(copy.size(), ref.size());
        for (size_t i = 0; i < ref.size(); ++i) {
            if (copy[i] == ref[i])
                continue;
            ++total_ctx;
            (mask[i] ? in : out) += 1;
        }
        Strand plain = without_ctx.transmit(ref, rng);
        for (size_t i = 0; i < ref.size(); ++i)
            total_plain += plain[i] != ref[i] ? 1 : 0;
    }
    // 4x multiplier over equal position counts -> ~4x the errors.
    EXPECT_GT(static_cast<double>(in),
              2.5 * static_cast<double>(out));
    // Aggregate preserved within sampling noise.
    EXPECT_NEAR(static_cast<double>(total_ctx),
                static_cast<double>(total_plain),
                0.15 * static_cast<double>(total_plain));
}

TEST(IdsModel, ContextualName)
{
    ErrorProfile p = ErrorProfile::uniform(0.05, 110);
    EXPECT_EQ(IdsChannelModel::contextual(p).name(), "contextual");
}

TEST(Profiler, RecoversHomopolymerMultiplier)
{
    ErrorProfile truth = ErrorProfile::uniform(0.08, 110, 1.0, 0.0,
                                               0.0);
    truth.homopolymer_mult = 3.0;
    IdsChannelModel model = IdsChannelModel::contextual(truth);
    ChannelSimulator sim(model);
    StrandFactory factory;
    Rng rng(401);
    auto refs = factory.makeMany(60, 110, rng);
    FixedCoverage cov(20);
    Dataset data = sim.simulate(refs, cov, rng);

    ErrorProfiler profiler;
    ErrorProfile fitted = profiler.calibrate(data);
    EXPECT_GT(fitted.homopolymer_mult, 1.8);
    EXPECT_LT(fitted.homopolymer_mult, 4.0);
}

TEST(Profiler, UniformChannelHasUnitMultiplier)
{
    ErrorProfile truth = ErrorProfile::uniform(0.08, 110);
    IdsChannelModel model = IdsChannelModel::naive(truth);
    ChannelSimulator sim(model);
    StrandFactory factory;
    Rng rng(402);
    auto refs = factory.makeMany(60, 110, rng);
    FixedCoverage cov(15);
    Dataset data = sim.simulate(refs, cov, rng);

    ErrorProfiler profiler;
    ErrorProfile fitted = profiler.calibrate(data);
    EXPECT_NEAR(fitted.homopolymer_mult, 1.0, 0.25);
}

TEST(DnaSimulator, AlgorithmOneSemantics)
{
    // Substitutions draw uniformly from all four bases, so about a
    // quarter of substitution events are silent.
    std::array<DnaSimulatorEntry, kNumBases> dict{};
    for (auto &e : dict)
        e.p_sub = 1.0;
    DnaSimulatorModel model(dict, "test");
    Strand ref(400, 'A');
    Rng rng(53);
    Strand copy = model.transmit(ref, rng);
    ASSERT_EQ(copy.size(), ref.size());
    size_t silent = 0;
    for (char c : copy)
        silent += (c == 'A') ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(silent) / 400.0, 0.25, 0.08);
}

TEST(DnaSimulator, PresetsHaveSaneMagnitudes)
{
    auto illumina = DnaSimulatorModel::preset(
        SynthesisTech::Twist, SequencingTech::Illumina);
    auto nanopore = DnaSimulatorModel::preset(
        SynthesisTech::Twist, SequencingTech::Nanopore);
    double low = measuredErrorRate(illumina, 110, 400, 54);
    double high = measuredErrorRate(nanopore, 110, 400, 55);
    EXPECT_LT(low, 0.01);
    EXPECT_GT(high, 0.04);
    EXPECT_LT(high, 0.10);
}

TEST(DnaSimulator, FromProfileMatchesAggregateRate)
{
    ErrorProfile p = ErrorProfile::uniform(0.06, 110);
    auto model = DnaSimulatorModel::fromProfile(p);
    double measured = measuredErrorRate(model, 110, 500, 56);
    // Algorithm 1 wastes 1/4 of substitution events (silent), so
    // the effective rate is slightly below the profile's.
    EXPECT_NEAR(measured, 0.055, 0.01);
}

TEST(Coverage, FixedAlwaysSame)
{
    FixedCoverage cov(7);
    Rng rng(57);
    for (size_t i = 0; i < 20; ++i)
        EXPECT_EQ(cov.sample(i, rng), 7u);
    EXPECT_EQ(cov.name(), "fixed(7)");
}

TEST(Coverage, CustomPerCluster)
{
    CustomCoverage cov({3, 0, 9});
    Rng rng(58);
    EXPECT_EQ(cov.sample(0, rng), 3u);
    EXPECT_EQ(cov.sample(1, rng), 0u);
    EXPECT_EQ(cov.sample(2, rng), 9u);
}

TEST(Coverage, NegativeBinomialMeanAndCap)
{
    NegativeBinomialCoverage cov(26.97, 2.2, 164, 0.0);
    Rng rng(59);
    double acc = 0.0;
    size_t max_seen = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        size_t c = cov.sample(0, rng);
        EXPECT_LE(c, 164u);
        max_seen = std::max(max_seen, c);
        acc += static_cast<double>(c);
    }
    EXPECT_NEAR(acc / n, 26.97, 1.5);
    EXPECT_GT(max_seen, 60u); // heavy tail
}

TEST(Coverage, ErasureProbability)
{
    NegativeBinomialCoverage cov(27.0, 2.2, 0, 0.5);
    Rng rng(60);
    int zeros = 0;
    for (int i = 0; i < 2000; ++i)
        zeros += cov.sample(0, rng) == 0 ? 1 : 0;
    EXPECT_NEAR(zeros / 2000.0, 0.5, 0.05);
}

TEST(ChannelSimulator, ShapeMatchesCoverage)
{
    ErrorProfile p = ErrorProfile::uniform(0.05, 50);
    IdsChannelModel model = IdsChannelModel::naive(p);
    ChannelSimulator sim(model);
    StrandFactory factory;
    Rng rng(61);
    auto refs = factory.makeMany(10, 50, rng);
    FixedCoverage cov(4);
    Dataset data = sim.simulate(refs, cov, rng);
    ASSERT_EQ(data.size(), 10u);
    for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(data[i].reference, refs[i]);
        EXPECT_EQ(data[i].coverage(), 4u);
    }
}

TEST(ChannelSimulator, PerClusterDeterminism)
{
    // Cluster i's data depends only on (seed, i), not on how many
    // clusters are generated.
    ErrorProfile p = ErrorProfile::uniform(0.08, 60);
    IdsChannelModel model = IdsChannelModel::naive(p);
    ChannelSimulator sim(model);
    StrandFactory factory;
    Rng setup(62);
    auto refs = factory.makeMany(6, 60, setup);
    FixedCoverage cov(3);

    Rng rng_a(99);
    Dataset all = sim.simulate(refs, cov, rng_a);
    std::vector<Strand> first_three(refs.begin(), refs.begin() + 3);
    Rng rng_b(99);
    Dataset some = sim.simulate(first_three, cov, rng_b);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(all[i].copies, some[i].copies);
}

TEST(ChannelSimulator, SimulateLikeCopiesShape)
{
    ErrorProfile p = ErrorProfile::uniform(0.05, 40);
    IdsChannelModel model = IdsChannelModel::naive(p);
    ChannelSimulator sim(model);

    Dataset shape;
    StrandFactory factory;
    Rng rng(63);
    for (size_t n : {size_t(0), size_t(2), size_t(5)}) {
        Cluster c;
        c.reference = factory.make(40, rng);
        c.copies.assign(n, c.reference);
        shape.add(std::move(c));
    }
    Dataset sim_data = sim.simulateLike(shape, rng);
    ASSERT_EQ(sim_data.size(), 3u);
    EXPECT_EQ(sim_data[0].coverage(), 0u);
    EXPECT_EQ(sim_data[1].coverage(), 2u);
    EXPECT_EQ(sim_data[2].coverage(), 5u);
    EXPECT_EQ(sim_data[2].reference, shape[2].reference);
}

TEST(Profiler, RecoversAggregateRates)
{
    ErrorProfile truth = ErrorProfile::uniform(0.06, 110, 0.5, 0.2,
                                               0.3);
    IdsChannelModel model = IdsChannelModel::naive(truth);
    ChannelSimulator sim(model);
    StrandFactory factory;
    Rng rng(64);
    auto refs = factory.makeMany(60, 110, rng);
    FixedCoverage cov(20);
    Dataset data = sim.simulate(refs, cov, rng);

    ErrorProfiler profiler;
    ErrorProfile fitted = profiler.calibrate(data);
    EXPECT_NEAR(fitted.p_sub, truth.p_sub, 0.006);
    EXPECT_NEAR(fitted.p_ins, truth.p_ins, 0.006);
    EXPECT_NEAR(fitted.p_del, truth.p_del, 0.006);
    EXPECT_EQ(fitted.design_length, 110u);
}

TEST(Profiler, RecoversConfusionBias)
{
    // Channel that substitutes A mostly with G.
    ErrorProfile truth = ErrorProfile::uniform(0.08, 110, 1.0, 0.0,
                                               0.0);
    for (size_t r = 0; r < kNumBases; ++r)
        truth.confusion[baseIndex('A')][r] = 0.0;
    truth.confusion[baseIndex('A')][baseIndex('G')] = 0.9;
    truth.confusion[baseIndex('A')][baseIndex('C')] = 0.1;
    IdsChannelModel model = IdsChannelModel::conditional(truth);
    ChannelSimulator sim(model);
    StrandFactory factory;
    Rng rng(65);
    auto refs = factory.makeMany(50, 110, rng);
    FixedCoverage cov(20);
    Dataset data = sim.simulate(refs, cov, rng);

    ErrorProfiler profiler;
    ErrorProfile fitted = profiler.calibrate(data);
    EXPECT_GT(fitted.confusion[baseIndex('A')][baseIndex('G')], 0.7);
    EXPECT_LT(fitted.confusion[baseIndex('A')][baseIndex('T')], 0.1);
}

TEST(Profiler, RecoversLongDeletions)
{
    ErrorProfile truth = ErrorProfile::uniform(0.0, 110);
    truth.p_long_del = 0.004;
    truth.long_del_len_weights = {84.0, 13.0, 1.8, 0.2, 0.02};
    IdsChannelModel model = IdsChannelModel::conditional(truth);
    ChannelSimulator sim(model);
    StrandFactory factory;
    Rng rng(66);
    auto refs = factory.makeMany(80, 110, rng);
    FixedCoverage cov(25);
    Dataset data = sim.simulate(refs, cov, rng);

    ErrorProfiler profiler;
    ErrorProfile fitted = profiler.calibrate(data);
    EXPECT_NEAR(fitted.p_long_del, 0.004, 0.0015);
    EXPECT_NEAR(fitted.meanLongDeletionLength(),
                truth.meanLongDeletionLength(), 0.2);
}

TEST(Profiler, RecoversSpatialShape)
{
    ErrorProfile truth = ErrorProfile::uniform(0.10, 110)
                             .withSpatial(
                                 PositionProfile::vShaped(110));
    IdsChannelModel model = IdsChannelModel::skew(truth);
    ChannelSimulator sim(model);
    StrandFactory factory;
    Rng rng(67);
    auto refs = factory.makeMany(60, 110, rng);
    FixedCoverage cov(20);
    Dataset data = sim.simulate(refs, cov, rng);

    ProfilerOptions options;
    options.spatial_from_gestalt = false;
    ErrorProfiler profiler(options);
    ErrorProfile fitted = profiler.calibrate(data);
    double edge = fitted.spatial.multiplier(2, 110);
    double mid = fitted.spatial.multiplier(55, 110);
    EXPECT_GT(edge, 1.6 * mid);
}

TEST(Profiler, TopSecondOrderErrorsFound)
{
    // Deletion of A dominates all other error types.
    ErrorProfile truth = ErrorProfile::uniform(0.01, 110);
    truth.p_del_given[baseIndex('A')] = 0.08;
    IdsChannelModel model = IdsChannelModel::conditional(truth);
    ChannelSimulator sim(model);
    StrandFactory factory;
    Rng rng(68);
    auto refs = factory.makeMany(50, 110, rng);
    FixedCoverage cov(20);
    Dataset data = sim.simulate(refs, cov, rng);

    ProfilerOptions options;
    options.top_second_order = 5;
    ErrorProfiler profiler(options);
    ErrorProfile fitted = profiler.calibrate(data);
    ASSERT_FALSE(fitted.second_order.empty());
    EXPECT_LE(fitted.second_order.size(), 5u);
    EXPECT_EQ(fitted.second_order[0].key.type, EditOpType::Delete);
    EXPECT_EQ(fitted.second_order[0].key.base, 'A');
    EXPECT_GT(fitted.second_order[0].rate, 0.04);
}

TEST(Profiler, OutlierCopiesExcluded)
{
    // A cluster with clean copies plus one alien: calibrated rates
    // should stay near zero because the alien is filtered out.
    StrandFactory factory;
    Rng rng(69);
    Cluster cluster;
    cluster.reference = factory.make(110, rng);
    for (int i = 0; i < 10; ++i)
        cluster.copies.push_back(cluster.reference);
    cluster.copies.push_back(factory.make(110, rng)); // alien
    Dataset data;
    data.add(cluster);

    ErrorProfiler profiler;
    ErrorProfile fitted = profiler.calibrate(data);
    EXPECT_LT(fitted.totalRate(), 0.01);

    ProfilerOptions keep_all;
    keep_all.max_copy_error_frac = 0.0;
    ErrorProfiler unfiltered(keep_all);
    ErrorProfile raw = unfiltered.calibrate(data);
    EXPECT_GT(raw.totalRate(), 0.02);
}

TEST(Profiler, FatalOnEmptyDataset)
{
    Dataset empty;
    ErrorProfiler profiler;
    EXPECT_THROW(profiler.calibrate(empty), FatalError);
}

TEST(Profiler, RoundTripThroughSimulator)
{
    // Calibrate a profile, simulate with it, recalibrate: the two
    // profiles should agree on the aggregate rates.
    WetlabConfig config;
    config.num_clusters = 60;
    NanoporeDatasetGenerator generator(config);
    Rng rng(70);
    Dataset real = generator.generate(rng);

    ErrorProfiler profiler;
    ErrorProfile first = profiler.calibrate(real);

    IdsChannelModel model = IdsChannelModel::secondOrder(first);
    ChannelSimulator sim(model);
    Rng rng2(71);
    Dataset simulated = sim.simulateLike(real, rng2);
    ErrorProfile second = profiler.calibrate(simulated);

    EXPECT_NEAR(second.totalRate(), first.totalRate(),
                first.totalRate() * 0.15);
}

class CalibrationRateSweep : public ::testing::TestWithParam<double>
{};

TEST_P(CalibrationRateSweep, RecoversTotalRate)
{
    const double rate = GetParam();
    ErrorProfile truth = ErrorProfile::uniform(rate, 110);
    IdsChannelModel model = IdsChannelModel::naive(truth);
    ChannelSimulator sim(model);
    StrandFactory factory;
    Rng rng(500 + static_cast<uint64_t>(rate * 1000));
    auto refs = factory.makeMany(40, 110, rng);
    FixedCoverage cov(15);
    Dataset data = sim.simulate(refs, cov, rng);

    ErrorProfiler profiler;
    ErrorProfile fitted = profiler.calibrate(data);
    EXPECT_NEAR(fitted.totalRate(), rate,
                std::max(0.004, rate * 0.12))
        << "rate " << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, CalibrationRateSweep,
                         ::testing::Values(0.01, 0.03, 0.06, 0.09,
                                           0.12, 0.15));

TEST(Stages, SynthesisExpandsPool)
{
    SynthesisStage stage(0.01, 5);
    std::vector<Molecule> pool = {{Strand(60, 'A'), 0},
                                  {Strand(60, 'C'), 1}};
    Rng rng(72);
    stage.apply(pool, rng);
    EXPECT_EQ(pool.size(), 10u);
    for (const auto &mol : pool)
        EXPECT_LE(mol.origin, 1u);
}

TEST(Stages, DecayKillsExpectedFraction)
{
    // One half-life: ~50% survival.
    DecayStage stage(100.0, 100.0, 0.0);
    std::vector<Molecule> pool(2000, Molecule{Strand(30, 'G'), 0});
    Rng rng(73);
    stage.apply(pool, rng);
    EXPECT_NEAR(static_cast<double>(pool.size()) / 2000.0, 0.5,
                0.05);
}

TEST(Stages, DecayBreaksTruncate)
{
    DecayStage stage(0.0, 100.0, 1.0); // everyone breaks, all survive
    std::vector<Molecule> pool(50, Molecule{Strand(40, 'T'), 0});
    Rng rng(74);
    stage.apply(pool, rng);
    ASSERT_EQ(pool.size(), 50u);
    for (const auto &mol : pool) {
        EXPECT_LT(mol.seq.size(), 40u);
        EXPECT_GE(mol.seq.size(), 20u); // longer fragment kept
    }
}

TEST(Stages, PcrAmplifies)
{
    PcrStage stage(4, 0.9, 0.0, 0.0);
    // Start from enough molecules that the stochastic growth
    // concentrates: four cycles at 90% efficiency give a factor of
    // about 1.9^4 ~ 13.
    std::vector<Molecule> pool(50, Molecule{Strand(30, 'A'), 0});
    Rng rng(75);
    stage.apply(pool, rng);
    EXPECT_GT(pool.size(), 400u);
    EXPECT_LT(pool.size(), 950u);
}

TEST(Stages, PcrRespectsPoolCap)
{
    PcrStage stage(10, 1.0, 0.0, 0.0, /*max_pool=*/64);
    std::vector<Molecule> pool = {{Strand(30, 'A'), 0}};
    Rng rng(76);
    stage.apply(pool, rng);
    EXPECT_LE(pool.size(), 64u);
}

TEST(Stages, SamplingDrawsExactCount)
{
    SamplingStage stage(37);
    std::vector<Molecule> pool(10, Molecule{Strand(30, 'C'), 0});
    Rng rng(77);
    stage.apply(pool, rng);
    EXPECT_EQ(pool.size(), 37u);
}

TEST(Stages, StagedChannelGroupsByOrigin)
{
    StagedChannel channel;
    channel.add(std::make_unique<SynthesisStage>(0.005, 6))
        .add(std::make_unique<PcrStage>(2, 0.8, 0.3, 0.0005))
        .add(std::make_unique<SamplingStage>(200))
        .add(std::make_unique<SequencingStage>(
            ErrorProfile::uniform(0.03, 60)));
    EXPECT_EQ(channel.numStages(), 4u);

    StrandFactory factory;
    Rng rng(78);
    auto refs = factory.makeMany(8, 60, rng);
    Dataset data = channel.run(refs, rng);
    ASSERT_EQ(data.size(), 8u);
    EXPECT_EQ(data.totalCopies(), 200u);
    // Copies resemble their own reference far more than others.
    for (size_t i = 0; i < data.size(); ++i) {
        for (const auto &copy : data[i].copies) {
            EXPECT_LT(levenshtein(data[i].reference, copy), 20u);
        }
    }
}

TEST(Wetlab, DatasetShapeMatchesConfig)
{
    WetlabConfig config;
    config.num_clusters = 150;
    NanoporeDatasetGenerator generator(config);
    Rng rng(79);
    Dataset data = generator.generate(rng);
    auto stats = data.stats();
    EXPECT_EQ(stats.num_clusters, 150u);
    EXPECT_NEAR(stats.mean_coverage, 26.97, 5.0);
    EXPECT_LE(stats.max_coverage, 164u);
    // Aggregate error includes junk copies (aliens, truncations) on
    // top of the 5.9% structural rate.
    EXPECT_GT(stats.aggregate_error_rate, 0.05);
    EXPECT_LT(stats.aggregate_error_rate, 0.12);
}

TEST(Wetlab, Deterministic)
{
    WetlabConfig config;
    config.num_clusters = 20;
    NanoporeDatasetGenerator generator(config);
    Rng a(80), b(80);
    Dataset d1 = generator.generate(a);
    Dataset d2 = generator.generate(b);
    ASSERT_EQ(d1.size(), d2.size());
    for (size_t i = 0; i < d1.size(); ++i) {
        EXPECT_EQ(d1[i].reference, d2[i].reference);
        EXPECT_EQ(d1[i].copies, d2[i].copies);
    }
}

TEST(Wetlab, GroundTruthProfileIsConsistent)
{
    ErrorProfile p =
        NanoporeDatasetGenerator::groundTruthProfile(110, 0.059);
    EXPECT_NEAR(p.totalRate(), 0.059, 1e-9);
    EXPECT_FALSE(p.spatial.isUniform());
    EXPECT_FALSE(p.second_order.empty());
    // Confusion rows sum to 1.
    for (size_t b = 0; b < kNumBases; ++b) {
        double row = 0.0;
        for (size_t r = 0; r < kNumBases; ++r)
            row += p.confusion[b][r];
        EXPECT_NEAR(row, 1.0, 1e-9);
        EXPECT_DOUBLE_EQ(p.confusion[b][b], 0.0);
    }
    // Residual rates stay non-negative for every second-order entry.
    for (const auto &so : p.second_order) {
        if (so.key.type == EditOpType::Delete) {
            EXPECT_LE(so.rate,
                      p.p_del_given[baseIndex(so.key.base)] + 1e-12);
        }
        if (so.key.type == EditOpType::Substitute) {
            EXPECT_LE(so.rate,
                      p.p_sub_given[baseIndex(so.key.base)] + 1e-12);
        }
    }
}

TEST(Wetlab, EndHeavierThanStart)
{
    WetlabConfig config;
    config.num_clusters = 120;
    NanoporeDatasetGenerator generator(config);
    Rng rng(81);
    Dataset data = generator.generate(rng);

    // Count gestalt-aligned errors at head vs tail (the paper's
    // Fig 3.2b: end ~2x the beginning).
    size_t head = 0, tail = 0;
    Rng ops_rng(82);
    for (const auto &cluster : data) {
        for (const auto &copy : cluster.copies) {
            for (const auto &op :
                 editOps(cluster.reference, copy, &ops_rng)) {
                if (op.type == EditOpType::Equal)
                    continue;
                size_t pos = std::min(op.ref_pos,
                                      cluster.reference.size() - 1);
                if (pos <= 1)
                    ++head;
                if (pos >= cluster.reference.size() - 2)
                    ++tail;
            }
        }
    }
    EXPECT_GT(static_cast<double>(tail),
              1.3 * static_cast<double>(head));
}

} // namespace
} // namespace dnasim
