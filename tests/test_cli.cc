/**
 * @file
 * Tests for the command-line layer: flag parsing and the dnasim
 * subcommands run end-to-end against temporary files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "base/logging.hh"
#include "cli/args.hh"
#include "cli/commands.hh"
#include "data/io.hh"

namespace dnasim
{
namespace
{

Args
makeArgs(std::vector<std::string> tokens)
{
    std::vector<const char *> argv;
    argv.reserve(tokens.size());
    for (const auto &t : tokens)
        argv.push_back(t.c_str());
    return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, Positionals)
{
    Args args = makeArgs({"reconstruct", "file.evyat"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "reconstruct");
    EXPECT_EQ(args.positional()[1], "file.evyat");
}

TEST(Args, SpaceSeparatedOption)
{
    Args args = makeArgs({"--algo", "bma", "--coverage", "5"});
    EXPECT_TRUE(args.has("algo"));
    EXPECT_EQ(args.get("algo"), "bma");
    EXPECT_EQ(args.getInt("coverage", 0), 5);
}

TEST(Args, EqualsFormOption)
{
    Args args = makeArgs({"--rate=0.06", "--name=x"});
    EXPECT_DOUBLE_EQ(args.getDouble("rate", 0.0), 0.06);
    EXPECT_EQ(args.get("name"), "x");
}

TEST(Args, ValuelessFlagBeforeAnotherFlag)
{
    Args args = makeArgs({"--verbose", "--out", "f.txt"});
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_EQ(args.get("verbose"), "");
    EXPECT_EQ(args.get("out"), "f.txt");
}

TEST(Args, DefaultsWhenAbsent)
{
    Args args = makeArgs({});
    EXPECT_FALSE(args.has("x"));
    EXPECT_EQ(args.get("x", "fallback"), "fallback");
    EXPECT_EQ(args.getInt("x", 42), 42);
    EXPECT_DOUBLE_EQ(args.getDouble("x", 2.5), 2.5);
    EXPECT_EQ(args.getSeed("x", 7u), 7u);
}

TEST(Args, SeedAcceptsHex)
{
    Args args = makeArgs({"--seed", "0xff"});
    EXPECT_EQ(args.getSeed("seed", 0), 255u);
}

TEST(Args, MalformedNumberIsFatal)
{
    Args args = makeArgs({"--coverage", "five"});
    EXPECT_THROW(args.getInt("coverage", 0), FatalError);
    Args args2 = makeArgs({"--rate", "fast"});
    EXPECT_THROW(args2.getDouble("rate", 0.0), FatalError);
}

TEST(Args, BareDoubleDashIsFatal)
{
    EXPECT_THROW(makeArgs({"--"}), FatalError);
}

class CliCommands : public ::testing::Test
{
  protected:
    std::string
    tmpPath(const std::string &name)
    {
        return ::testing::TempDir() + "/dnasim_cli_" + name;
    }

    void
    TearDown() override
    {
        for (const auto &path : cleanup_)
            std::remove(path.c_str());
    }

    std::vector<std::string> cleanup_;
};

TEST_F(CliCommands, GenerateCalibrateReconstructFlow)
{
    std::string dataset = tmpPath("flow.evyat");
    cleanup_.push_back(dataset);

    Args gen = makeArgs({"generate", "--clusters", "30", "--out",
                         dataset, "--seed", "11"});
    EXPECT_EQ(cmdGenerate(gen), 0);

    Dataset parsed = readEvyatFile(dataset);
    EXPECT_EQ(parsed.size(), 30u);

    Args cal = makeArgs({"calibrate", dataset});
    EXPECT_EQ(cmdCalibrate(cal), 0);

    Args rec = makeArgs({"reconstruct", dataset, "--algo",
                         "iterative", "--coverage", "5"});
    EXPECT_EQ(cmdReconstruct(rec), 0);

    Args ana = makeArgs({"analyze", dataset});
    EXPECT_EQ(cmdAnalyze(ana), 0);
}

TEST_F(CliCommands, SimulateProducesDataset)
{
    std::string dataset = tmpPath("sim_in.evyat");
    std::string simulated = tmpPath("sim_out.evyat");
    cleanup_.push_back(dataset);
    cleanup_.push_back(simulated);

    Args gen = makeArgs({"generate", "--clusters", "25", "--out",
                         dataset, "--seed", "12"});
    ASSERT_EQ(cmdGenerate(gen), 0);

    Args sim = makeArgs({"simulate", dataset, "--model", "skew",
                         "--out", simulated});
    EXPECT_EQ(cmdSimulate(sim), 0);

    Dataset in = readEvyatFile(dataset);
    Dataset out = readEvyatFile(simulated);
    ASSERT_EQ(out.size(), in.size());
    for (size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(out[i].reference, in[i].reference);
        EXPECT_EQ(out[i].coverage(), in[i].coverage());
    }
}

TEST_F(CliCommands, SimulateBareProfileFlagIsNotAProfileFile)
{
    // Bare --profile (the global phase-profiler flag) parses with an
    // empty value; simulate must treat it as "no calibrated profile
    // given" rather than trying to open '' as a profile file.
    std::string dataset = tmpPath("prof_in.evyat");
    std::string simulated = tmpPath("prof_out.evyat");
    cleanup_.push_back(dataset);
    cleanup_.push_back(simulated);

    Args gen = makeArgs({"generate", "--clusters", "10", "--out",
                         dataset, "--seed", "3"});
    ASSERT_EQ(cmdGenerate(gen), 0);

    Args sim = makeArgs({"simulate", dataset, "--profile", "--out",
                         simulated});
    EXPECT_EQ(cmdSimulate(sim), 0);
    EXPECT_EQ(readEvyatFile(simulated).size(), 10u);
}

TEST_F(CliCommands, SimulateReusesCalibratedErrorProfile)
{
    std::string dataset = tmpPath("reuse_in.evyat");
    std::string profile = tmpPath("reuse_profile.txt");
    std::string simulated = tmpPath("reuse_out.evyat");
    cleanup_.push_back(dataset);
    cleanup_.push_back(profile);
    cleanup_.push_back(simulated);

    Args gen = makeArgs({"generate", "--clusters", "15", "--out",
                         dataset, "--seed", "4"});
    ASSERT_EQ(cmdGenerate(gen), 0);
    Args cal = makeArgs({"calibrate", dataset, "--out", profile});
    ASSERT_EQ(cmdCalibrate(cal), 0);

    Args sim = makeArgs({"simulate", dataset, "--error-profile",
                         profile, "--out", simulated});
    EXPECT_EQ(cmdSimulate(sim), 0);
    EXPECT_EQ(readEvyatFile(simulated).size(), 15u);

    // Legacy valued spelling keeps working.
    Args legacy = makeArgs({"simulate", dataset, "--profile", profile,
                            "--out", simulated});
    EXPECT_EQ(cmdSimulate(legacy), 0);
}

TEST_F(CliCommands, ReconstructUnknownAlgoIsFatal)
{
    std::string dataset = tmpPath("bad_algo.evyat");
    cleanup_.push_back(dataset);
    Args gen = makeArgs({"generate", "--clusters", "5", "--out",
                         dataset});
    ASSERT_EQ(cmdGenerate(gen), 0);
    Args rec = makeArgs({"reconstruct", dataset, "--algo", "magic"});
    EXPECT_THROW(cmdReconstruct(rec), FatalError);
}

TEST_F(CliCommands, SimulateUnknownModelIsFatal)
{
    std::string dataset = tmpPath("bad_model.evyat");
    cleanup_.push_back(dataset);
    Args gen = makeArgs({"generate", "--clusters", "5", "--out",
                         dataset});
    ASSERT_EQ(cmdGenerate(gen), 0);
    Args sim = makeArgs({"simulate", dataset, "--model", "magic"});
    EXPECT_THROW(cmdSimulate(sim), FatalError);
}

TEST_F(CliCommands, RoundtripStoresAndRetrieves)
{
    std::string payload = tmpPath("payload.bin");
    cleanup_.push_back(payload);
    {
        std::ofstream out(payload, std::ios::binary);
        out << "the quick brown fox stores itself in dna";
    }
    Args rt = makeArgs({"roundtrip", payload, "--coverage", "6",
                        "--error-rate", "0.03"});
    EXPECT_EQ(cmdRoundtrip(rt), 0);
}

TEST_F(CliCommands, RoundtripMissingFileIsFatal)
{
    Args rt = makeArgs({"roundtrip", "/nonexistent/file.bin"});
    EXPECT_THROW(cmdRoundtrip(rt), FatalError);
}

TEST_F(CliCommands, MissingPositionalIsFatal)
{
    EXPECT_THROW(cmdCalibrate(makeArgs({"calibrate"})), FatalError);
    EXPECT_THROW(cmdReconstruct(makeArgs({"reconstruct"})),
                 FatalError);
    EXPECT_THROW(cmdAnalyze(makeArgs({"analyze"})), FatalError);
    EXPECT_THROW(cmdSimulate(makeArgs({"simulate"})), FatalError);
}

} // namespace
} // namespace dnasim
