/**
 * @file
 * Tests of the streaming telemetry subsystem: HDR histogram bucket
 * math and percentile accuracy, interval rate computation, the
 * OpenMetrics and dnasim.telemetry.v1 sink formats, progress scopes,
 * output-path preparation, and the sampler lifecycle.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/events.hh"
#include "obs/hdr_histogram.hh"
#include "obs/json.hh"
#include "obs/openmetrics.hh"
#include "obs/outfile.hh"
#include "obs/progress.hh"
#include "obs/snapshot.hh"
#include "obs/stats.hh"
#include "obs/telemetry.hh"

namespace dnasim
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory under the test temp dir. */
fs::path
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

TEST(HdrHistogram, ExactBelowSixtyFour)
{
    // Values below kSubBuckets land in unit-width buckets, so the
    // recorded value round-trips exactly.
    for (uint64_t v = 0; v < 64; ++v) {
        uint32_t i = obs::HdrHistogram::bucketIndex(v);
        EXPECT_EQ(obs::HdrHistogram::bucketLowerBound(i), v);
    }
}

TEST(HdrHistogram, BucketBoundsAreMonotonicAndTight)
{
    // Every bucket's lower bound maps back to the same bucket, and
    // the relative bucket width stays within 1/64 (~1.6%).
    uint32_t prev_index = 0;
    for (uint64_t v = 1; v < (1ull << 40); v = v * 3 / 2 + 1) {
        uint32_t i = obs::HdrHistogram::bucketIndex(v);
        uint64_t lo = obs::HdrHistogram::bucketLowerBound(i);
        EXPECT_LE(lo, v);
        EXPECT_EQ(obs::HdrHistogram::bucketIndex(lo), i);
        EXPECT_GE(i, prev_index);
        prev_index = i;
        if (v >= 64) {
            double rel = static_cast<double>(v - lo) /
                         static_cast<double>(v);
            EXPECT_LT(rel, 1.0 / 32.0) << "value " << v;
        }
    }
}

TEST(HdrHistogram, PercentilesWithinOneBucket)
{
    obs::HdrHistogram h;
    constexpr uint64_t kN = 100000;
    for (uint64_t v = 1; v <= kN; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), kN);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), kN);
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        double exact = q * static_cast<double>(kN);
        auto got = static_cast<double>(h.percentile(q));
        // The acceptance bar: within one log bucket (<= ~3%).
        EXPECT_NEAR(got, exact, exact * 0.03) << "q=" << q;
    }
    EXPECT_EQ(h.percentile(0.0), 1u);
    EXPECT_EQ(h.percentile(1.0), kN);
}

TEST(HdrHistogram, MergeMatchesCombinedRecording)
{
    obs::HdrHistogram a, b, combined;
    for (uint64_t v = 1; v <= 1000; ++v) {
        (v % 2 ? a : b).record(v * 17);
        combined.record(v * 17);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_EQ(a.percentile(q), combined.percentile(q));
}

TEST(HdrHistogram, WeightedRecordAndClear)
{
    obs::HdrHistogram h;
    h.record(10, 5);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 50.0);
    EXPECT_EQ(h.percentile(0.5), 10u);
    h.clear();
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
}

TEST(ObsTimer, SnapshotCarriesHdrPercentiles)
{
    obs::Registry reg;
    obs::Timer &t = reg.timer("op.time");
    for (uint64_t ns = 1; ns <= 1000; ++ns)
        t.record(ns * 1000);
    EXPECT_NEAR(static_cast<double>(t.percentileNs(0.5)), 500e3,
                500e3 * 0.03);
    obs::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.timers.size(), 1u);
    EXPECT_NEAR(static_cast<double>(snap.timers[0].p50_ns), 500e3,
                500e3 * 0.03);
    EXPECT_NEAR(static_cast<double>(snap.timers[0].p90_ns), 900e3,
                900e3 * 0.03);
    EXPECT_NEAR(static_cast<double>(snap.timers[0].p99_ns), 990e3,
                990e3 * 0.03);
    EXPECT_NEAR(static_cast<double>(snap.timers[0].p999_ns), 999e3,
                999e3 * 0.03);
}

TEST(TelemetryRates, DeltasRatesAndNewCounters)
{
    obs::Registry reg;
    obs::Counter &a = reg.counter("a");
    a.add(100);
    obs::Snapshot prev = reg.snapshot();
    a.add(50);
    reg.counter("b").add(7); // registered after the previous sample
    obs::Snapshot cur = reg.snapshot();

    auto rates = obs::computeRates(prev, cur, 500'000'000);
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_EQ(rates[0].name, "a");
    EXPECT_EQ(rates[0].value, 150u);
    EXPECT_EQ(rates[0].delta, 50u);
    EXPECT_DOUBLE_EQ(rates[0].per_sec, 100.0);
    EXPECT_EQ(rates[1].name, "b");
    EXPECT_EQ(rates[1].delta, 7u);

    // A reset between samples clamps to zero instead of wrapping.
    reg.reset();
    obs::Snapshot after_reset = reg.snapshot();
    auto clamped = obs::computeRates(cur, after_reset, 1'000'000'000);
    for (const auto &r : clamped)
        EXPECT_EQ(r.delta, 0u);
}

TEST(OpenMetrics, NamesAndEscapes)
{
    EXPECT_EQ(obs::openMetricsName("channel.errors.sub"),
              "dnasim_channel_errors_sub");
    EXPECT_EQ(obs::openMetricsName("a-b c"), "dnasim_a_b_c");
    EXPECT_EQ(obs::openMetricsEscape("a\"b\\c\nd"),
              "a\\\"b\\\\c\\nd");
}

TEST(OpenMetrics, RendersCompleteExposition)
{
    obs::Registry reg;
    reg.counter("channel.clusters", "clusters simulated").add(42);
    reg.gauge("pool.level").set(-3);
    reg.timer("cli.simulate.time").record(1'500'000);
    reg.distribution("channel.cluster_size").record(25);

    std::vector<obs::ProgressState> progress;
    progress.push_back(obs::ProgressState{"simulate", 10, 40, 0});

    std::string doc = obs::snapshotToOpenMetrics(
        reg.snapshot(), progress, 1ull << 20);

    EXPECT_NE(doc.find("# TYPE dnasim_channel_clusters counter\n"),
              std::string::npos);
    EXPECT_NE(doc.find("dnasim_channel_clusters_total 42\n"),
              std::string::npos);
    EXPECT_NE(doc.find("dnasim_pool_level -3\n"), std::string::npos);
    EXPECT_NE(
        doc.find("# TYPE dnasim_cli_simulate_time_seconds summary"),
        std::string::npos);
    EXPECT_NE(doc.find("dnasim_cli_simulate_time_seconds{quantile="
                       "\"0.5\"} "),
              std::string::npos);
    EXPECT_NE(doc.find("dnasim_cli_simulate_time_seconds_count 1\n"),
              std::string::npos);
    EXPECT_NE(doc.find("dnasim_channel_cluster_size{quantile=\"0.99"
                       "\"} 25\n"),
              std::string::npos);
    EXPECT_NE(doc.find("dnasim_progress_items_done{phase=\"simulate"
                       "\"} 10\n"),
              std::string::npos);
    EXPECT_NE(doc.find("dnasim_process_resident_memory_bytes "),
              std::string::npos);
    // The mandatory OpenMetrics terminator, exactly at the end.
    ASSERT_GE(doc.size(), 6u);
    EXPECT_EQ(doc.substr(doc.size() - 6), "# EOF\n");
    // No unescaped metric family may appear after EOF or twice.
    EXPECT_EQ(doc.find("# EOF\n"), doc.size() - 6);
}

TEST(Telemetry, SampleAndEventLinesAreValidJson)
{
    obs::Registry reg;
    reg.counter("c.reads").add(5);
    reg.timer("c.time").record(1000);

    obs::IntervalSample sample;
    sample.seq = 3;
    sample.mono_ns = 2'000'000'000;
    sample.interval_ns = 500'000'000;
    sample.final_sample = true;
    sample.snap = reg.snapshot();
    sample.rates = obs::computeRates(obs::Snapshot(), sample.snap,
                                     sample.interval_ns);
    sample.rss_bytes = 123456;
    sample.progress.push_back(
        obs::ProgressState{"cluster", 7, 10, 0});

    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(
        obs::parseJson(obs::telemetrySampleLine(sample), doc, &error))
        << error;
    EXPECT_EQ(doc.find("schema")->asString(), "dnasim.telemetry.v1");
    EXPECT_EQ(doc.find("kind")->asString(), "sample");
    EXPECT_EQ(doc.find("seq")->asUint(), 3u);
    EXPECT_TRUE(doc.find("final")->asBool());
    ASSERT_TRUE(doc.find("counters")->isArray());
    const auto &counters = doc.find("counters")->array();
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters[0].find("name")->asString(), "c.reads");
    EXPECT_EQ(counters[0].find("delta")->asUint(), 5u);
    EXPECT_DOUBLE_EQ(counters[0].find("per_sec")->asDouble(), 10.0);
    const auto &progress = doc.find("progress")->array();
    ASSERT_EQ(progress.size(), 1u);
    EXPECT_EQ(progress[0].find("phase")->asString(), "cluster");

    obs::Event event;
    event.seq = 9;
    event.ts_ns = 42;
    event.kind = "phase_begin";
    event.name = "simulate";
    event.fields.emplace_back("total", "100");
    ASSERT_TRUE(
        obs::parseJson(obs::telemetryEventLine(event), doc, &error))
        << error;
    EXPECT_EQ(doc.find("kind")->asString(), "event");
    EXPECT_EQ(doc.find("event")->asString(), "phase_begin");
    EXPECT_EQ(doc.find("fields")->find("total")->asString(), "100");
}

TEST(Progress, ScopeRegistersAdvancesAndJournals)
{
    obs::EventJournal::global().clear();
    EXPECT_TRUE(obs::progressSnapshot().empty());
    {
        obs::ProgressScope scope("simulate", 100);
        scope.advance(30);
        scope.advance();
        auto states = obs::progressSnapshot();
        ASSERT_EQ(states.size(), 1u);
        EXPECT_EQ(states[0].name, "simulate");
        EXPECT_EQ(states[0].done, 31u);
        EXPECT_EQ(states[0].total, 100u);

        std::string line =
            obs::renderProgressLine(states, states[0].start_ns,
                                    2ull << 20);
        EXPECT_NE(line.find("simulate"), std::string::npos);
        EXPECT_NE(line.find("31"), std::string::npos);
    }
    EXPECT_TRUE(obs::progressSnapshot().empty());

    auto events = obs::EventJournal::global().eventsSince(0);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, "phase_begin");
    EXPECT_EQ(events[0].name, "simulate");
    EXPECT_EQ(events[1].kind, "phase_end");
    // Sequence numbers are strictly increasing and drain-once.
    EXPECT_LT(events[0].seq, events[1].seq);
    EXPECT_TRUE(obs::EventJournal::global()
                    .eventsSince(events[1].seq)
                    .empty());
}

TEST(Outfile, CreatesMissingParentsAndDiagnosesBadPaths)
{
    fs::path dir = scratchDir("outfile_test");
    fs::path nested = dir / "a" / "b" / "stats.json";

    std::string error;
    EXPECT_TRUE(obs::prepareOutputPath(nested.string(), &error))
        << error;
    EXPECT_TRUE(fs::is_directory(dir / "a" / "b"));

    // A plain file where a parent directory is needed is diagnosed
    // with the offending path, not silently accepted.
    fs::path blocker = dir / "file";
    std::ofstream(blocker.string()) << "x";
    fs::path through = blocker / "sub" / "out.json";
    EXPECT_FALSE(obs::prepareOutputPath(through.string(), &error));
    EXPECT_NE(error.find(blocker.string()), std::string::npos);
}

TEST(Outfile, AtomicWritePublishesContentWithoutTmpResidue)
{
    fs::path dir = scratchDir("atomic_test");
    fs::path target = dir / "sub" / "metrics.prom";

    std::string error;
    ASSERT_TRUE(
        obs::writeFileAtomic(target.string(), "hello # EOF\n",
                             &error))
        << error;
    std::ifstream in(target.string());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "hello # EOF\n");
    // The temporary sibling must not survive the rename.
    size_t entries = 0;
    for ([[maybe_unused]] const auto &e :
         fs::directory_iterator(dir / "sub"))
        ++entries;
    EXPECT_EQ(entries, 1u);

    // Overwrite goes through the same path.
    ASSERT_TRUE(
        obs::writeFileAtomic(target.string(), "v2\n", &error));
    std::ifstream in2(target.string());
    std::string content2((std::istreambuf_iterator<char>(in2)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(content2, "v2\n");
}

/** Sink capturing every sample for assertions. */
class CaptureSink : public obs::TelemetrySink
{
  public:
    void
    onSample(const obs::IntervalSample &sample) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        samples_.push_back(sample);
    }

    void
    close() override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }

    std::vector<obs::IntervalSample>
    samples() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return samples_;
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<obs::IntervalSample> samples_;
    bool closed_ = false;
};

TEST(TelemetrySampler, SamplesRatesAndEventsEndToEnd)
{
    obs::EventJournal::global().clear();
    obs::Registry reg;
    obs::Counter &work = reg.counter("work.items");

    obs::TelemetrySampler sampler;
    auto sink = std::make_shared<CaptureSink>();
    sampler.addSink(sink);
    // Long period: the ticks in this test come from sampleNow(), so
    // timing jitter cannot make it flaky.
    sampler.start(/*period_ms=*/60'000, &reg);
    EXPECT_TRUE(sampler.running());

    work.add(10);
    obs::emitEvent("warning", "low coverage");
    sampler.sampleNow();
    work.add(5);
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    EXPECT_TRUE(sink->closed());

    auto samples = sink->samples();
    // One explicit tick plus the final one taken by stop().
    ASSERT_GE(samples.size(), 2u);
    EXPECT_GE(sampler.samplesTaken(), 2u);
    const auto &first = samples.front();
    EXPECT_EQ(first.seq, 1u);
    EXPECT_EQ(first.snap.counter("work.items"), 10u);
    ASSERT_EQ(first.rates.size(), 1u);
    EXPECT_EQ(first.rates[0].delta, 10u);
    ASSERT_EQ(first.events.size(), 1u);
    EXPECT_EQ(first.events[0].kind, "warning");

    const auto &last = samples.back();
    EXPECT_TRUE(last.final_sample);
    EXPECT_EQ(last.snap.counter("work.items"), 15u);
    // The warning was drained by the first sample; it must not be
    // delivered twice.
    for (size_t i = 1; i < samples.size(); ++i)
        EXPECT_TRUE(samples[i].events.empty());
}

TEST(TelemetrySampler, JsonlSinkWritesParseableStream)
{
    obs::EventJournal::global().clear();
    fs::path dir = scratchDir("jsonl_test");
    fs::path out = dir / "nested" / "telemetry.jsonl";

    obs::Registry reg;
    reg.counter("items").add(3);

    obs::TelemetrySampler sampler;
    auto sink =
        std::make_shared<obs::JsonlTelemetrySink>(out.string());
    sampler.addSink(sink);
    sampler.start(/*period_ms=*/60'000, &reg);
    obs::emitEvent("phase_begin", "demo");
    sampler.sampleNow();
    sampler.stop();
    EXPECT_TRUE(sink->ok());

    std::ifstream in(out.string());
    ASSERT_TRUE(in.is_open());
    std::string line;
    size_t lines = 0, samples = 0, events = 0;
    while (std::getline(in, line)) {
        ++lines;
        obs::JsonValue doc;
        std::string error;
        ASSERT_TRUE(obs::parseJson(line, doc, &error))
            << "line " << lines << ": " << error;
        EXPECT_EQ(doc.find("schema")->asString(),
                  "dnasim.telemetry.v1");
        const std::string &kind = doc.find("kind")->asString();
        if (kind == "sample")
            ++samples;
        else if (kind == "event")
            ++events;
    }
    EXPECT_GE(samples, 2u); // explicit tick + final
    EXPECT_GE(events, 1u);
}

TEST(TelemetrySampler, OpenMetricsSinkKeepsFileComplete)
{
    fs::path dir = scratchDir("om_test");
    fs::path out = dir / "metrics.prom";

    obs::Registry reg;
    reg.counter("done").add(1);

    obs::TelemetrySampler sampler;
    auto sink =
        std::make_shared<obs::OpenMetricsSink>(out.string());
    sampler.addSink(sink);
    sampler.start(/*period_ms=*/60'000, &reg);
    sampler.sampleNow();
    sampler.stop();
    EXPECT_TRUE(sink->ok());

    std::ifstream in(out.string());
    ASSERT_TRUE(in.is_open());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("dnasim_done_total 1\n"),
              std::string::npos);
    EXPECT_EQ(content.substr(content.size() - 6), "# EOF\n");
}

} // anonymous namespace
} // namespace dnasim
