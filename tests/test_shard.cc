/**
 * @file
 * Tests for sharded out-of-core clustering: byte-determinism across
 * shard counts and thread counts on well-separated data, exact
 * single-shard equivalence with clusterReads, pool/vector backing
 * parity, and assignment remapping.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "cluster/shard_cluster.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"
#include "par/thread_pool.hh"

namespace dnasim
{
namespace
{

namespace fs = std::filesystem;

struct Pool
{
    std::vector<Strand> reads;
    std::vector<size_t> origins;
};

/**
 * A shuffled noisy pool. The shard-count byte-identity contract
 * holds on *well-separated* data — clusters the channel keeps within
 * the distance threshold — so the determinism tests pin a low error
 * rate (0.5%: intra-cluster read pairs stay within ~10 edits) and a
 * generous threshold (30: far above intra distances, far below the
 * ~40+ edits between unrelated 110-base strands). At realistic error
 * rates outlier reads sit within threshold of a shard-local
 * representative but not the global one, and shard counts diverge —
 * the contract is pinned, not universal (see shard_cluster.hh).
 */
Pool
makePool(size_t num_refs, size_t coverage, double error_rate,
         uint64_t seed)
{
    Pool pool;
    StrandFactory factory;
    Rng rng(seed);
    std::vector<Strand> refs = factory.makeMany(num_refs, 110, rng);
    ErrorProfile profile = ErrorProfile::uniform(error_rate, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    for (size_t i = 0; i < num_refs; ++i) {
        for (size_t k = 0; k < coverage; ++k) {
            pool.reads.push_back(model.transmit(refs[i], rng));
            pool.origins.push_back(i);
        }
    }
    std::vector<size_t> order(pool.reads.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);
    Pool shuffled;
    for (size_t idx : order) {
        shuffled.reads.push_back(pool.reads[idx]);
        shuffled.origins.push_back(pool.origins[idx]);
    }
    return shuffled;
}

/** The well-separated config the determinism contract is pinned to. */
ClusterOptions
separatedOptions()
{
    ClusterOptions options;
    options.distance_threshold = 30;
    return options;
}

std::string
serialize(const std::vector<ReadCluster> &clusters)
{
    std::string out;
    for (const auto &c : clusters) {
        out += c.representative;
        for (size_t m : c.members)
            out += " " + std::to_string(m);
        out += "\n";
    }
    return out;
}

TEST(ShardCluster, SingleShardMatchesClusterReads)
{
    Pool pool = makePool(30, 6, 0.04, 0x51);
    ClusterOptions options;
    StrandPoolView view(pool.reads);
    auto sharded = clusterReadsSharded(view, options, 1);
    auto direct = clusterReads(pool.reads, options);
    EXPECT_EQ(serialize(sharded), serialize(direct));
}

TEST(ShardCluster, ByteIdenticalAcrossShardAndThreadCounts)
{
    Pool pool = makePool(60, 10, 0.005, 0x52);
    const ClusterOptions options = separatedOptions();
    StrandPoolView view(pool.reads);

    const size_t saved_threads = par::numThreads();
    std::string reference;
    for (size_t threads : {size_t(1), size_t(4)}) {
        par::setThreads(threads);
        for (size_t shards : {size_t(1), size_t(2), size_t(3),
                              size_t(8)}) {
            auto clusters =
                clusterReadsSharded(view, options, shards);
            const std::string text = serialize(clusters);
            if (reference.empty())
                reference = text;
            EXPECT_EQ(text, reference)
                << "shards=" << shards << " threads=" << threads;
        }
    }
    par::setThreads(saved_threads);
}

TEST(ShardCluster, PoolBackingMatchesVectorBacking)
{
    Pool pool = makePool(40, 8, 0.005, 0x53);
    const ClusterOptions options = separatedOptions();

    const std::string path =
        ::testing::TempDir() + "/dnasim_shard_parity.dnapool";
    {
        PackedStrandPoolBuilder builder;
        ASSERT_TRUE(builder.open(path));
        for (const auto &r : pool.reads)
            ASSERT_TRUE(builder.append(r));
        ASSERT_TRUE(builder.finish());
    }
    PackedStrandPool packed;
    ASSERT_TRUE(packed.open(path));

    auto from_vec = clusterReadsSharded(StrandPoolView(pool.reads),
                                        options, 4);
    auto from_pool =
        clusterReadsSharded(StrandPoolView(packed), options, 4);
    EXPECT_EQ(serialize(from_vec), serialize(from_pool));

    // Purity parity with the in-RAM single-shard path on the same
    // input order.
    auto in_ram = clusterReads(pool.reads, options);
    EXPECT_DOUBLE_EQ(
        scoreClustering(from_pool, pool.origins).purity(),
        scoreClustering(in_ram, pool.origins).purity());
    fs::remove(path);
}

TEST(ShardCluster, WellSeparatedPoolRecoversPerfectPurity)
{
    Pool pool = makePool(50, 10, 0.005, 0x54);
    auto clusters = clusterReadsSharded(StrandPoolView(pool.reads),
                                        separatedOptions(), 4);
    ClusterPurity purity = scoreClustering(clusters, pool.origins);
    EXPECT_EQ(purity.num_reads, pool.reads.size());
    EXPECT_DOUBLE_EQ(purity.purity(), 1.0);
    EXPECT_EQ(clusters.size(), 50u);
}

TEST(ShardCluster, AssignmentsCoverEveryReadAndMatchMembership)
{
    Pool pool = makePool(25, 6, 0.005, 0x55);
    std::vector<ReadAssignment> assignments;
    auto clusters = clusterReadsSharded(StrandPoolView(pool.reads),
                                        separatedOptions(), 3,
                                        &assignments);
    ASSERT_EQ(assignments.size(), pool.reads.size());
    for (size_t r = 0; r < assignments.size(); ++r) {
        const uint32_t c = assignments[r].cluster;
        ASSERT_LT(c, clusters.size());
        const auto &members = clusters[c].members;
        EXPECT_NE(std::find(members.begin(), members.end(), r),
                  members.end())
            << "read " << r << " not in assigned cluster " << c;
    }
}

TEST(ShardCluster, MoreShardsThanReadsClamps)
{
    Pool pool = makePool(3, 2, 0.005, 0x56);
    auto clusters = clusterReadsSharded(StrandPoolView(pool.reads),
                                        separatedOptions(), 100);
    size_t members = 0;
    for (const auto &c : clusters)
        members += c.members.size();
    EXPECT_EQ(members, pool.reads.size());
}

TEST(ShardCluster, EmptyViewYieldsNoClusters)
{
    std::vector<Strand> none;
    StrandPoolView view(none);
    EXPECT_TRUE(clusterReadsSharded(view, {}, 4).empty());
}

} // anonymous namespace
} // namespace dnasim
