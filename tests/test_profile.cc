/**
 * @file
 * Tests of the hierarchical phase profiler (obs/profile.hh): nesting
 * recovery from span intervals, the sum-of-exclusive invariant,
 * same-name merging, multi-thread separation, RSS attribution and
 * the text/JSON renderers.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"

namespace dnasim
{
namespace
{

obs::TraceSpan
span(const char *name, uint64_t ts_ns, uint64_t dur_ns,
     uint32_t tid = 1, uint64_t cpu_ns = 0)
{
    obs::TraceSpan s;
    s.name = name;
    s.cat = "test";
    s.ts_ns = ts_ns;
    s.dur_ns = dur_ns;
    s.tid = tid;
    s.cpu_ns = cpu_ns;
    return s;
}

/** Sum of exclusive time over the whole tree. */
uint64_t
sumExclusive(const obs::ProfileNode &node)
{
    uint64_t sum = node.excl_ns;
    for (const auto &child : node.children)
        sum += sumExclusive(child);
    return sum;
}

TEST(Profile, EmptySpansGiveEmptyProfile)
{
    obs::Profile p = obs::buildProfile(std::vector<obs::TraceSpan>{});
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.root.incl_ns, 0u);
    // The renderers still work on an empty profile.
    EXPECT_FALSE(obs::profileToText(p).empty());
    EXPECT_FALSE(obs::profileToJson(p).empty());
}

TEST(Profile, RecoversNestingFromIntervals)
{
    // reconstruct [0,1000) contains align [100,400) and align
    // [500,800); align contains dp [150,250).
    std::vector<obs::TraceSpan> spans = {
        span("reconstruct", 0, 1000),
        span("align", 100, 300),
        span("dp", 150, 100),
        span("align", 500, 300),
    };
    obs::Profile p = obs::buildProfile(spans);
    ASSERT_EQ(p.root.children.size(), 1u);
    const obs::ProfileNode &rec = p.root.children[0];
    EXPECT_EQ(rec.name, "reconstruct");
    EXPECT_EQ(rec.count, 1u);
    EXPECT_EQ(rec.incl_ns, 1000u);
    // Both align instances merge into one node under reconstruct.
    ASSERT_EQ(rec.children.size(), 1u);
    const obs::ProfileNode &align = rec.children[0];
    EXPECT_EQ(align.name, "align");
    EXPECT_EQ(align.count, 2u);
    EXPECT_EQ(align.incl_ns, 600u);
    EXPECT_EQ(align.excl_ns, 500u); // 600 - dp's 100
    ASSERT_EQ(align.children.size(), 1u);
    EXPECT_EQ(align.children[0].name, "dp");
    EXPECT_EQ(rec.excl_ns, 400u); // 1000 - 600
}

TEST(Profile, ExclusiveSumsToRootInclusive)
{
    std::vector<obs::TraceSpan> spans = {
        span("a", 0, 1000),    span("b", 10, 300),
        span("c", 20, 100),    span("b", 400, 200),
        span("d", 1100, 500),  span("e", 1150, 350),
    };
    obs::Profile p = obs::buildProfile(spans);
    // With perfectly nested intervals the exclusive times partition
    // the root's inclusive time exactly; clamping can only lose
    // time, never invent it.
    EXPECT_EQ(p.root.incl_ns, 1500u);
    EXPECT_LE(sumExclusive(p.root), p.root.incl_ns);
    EXPECT_EQ(sumExclusive(p.root), p.root.incl_ns);
}

TEST(Profile, ClampsJitteredChildren)
{
    // A child whose interval slightly overruns its parent (clock
    // jitter across cores) must not produce underflowed exclusive
    // time.
    std::vector<obs::TraceSpan> spans = {
        span("parent", 0, 100),
        span("child", 10, 100), // ends at 110 > parent's 100
    };
    obs::Profile p = obs::buildProfile(spans);
    const obs::ProfileNode &parent = p.root.children[0];
    EXPECT_EQ(parent.excl_ns, 0u);
    EXPECT_LE(sumExclusive(p.root), p.root.incl_ns);
}

TEST(Profile, ThreadsNestIndependently)
{
    // Identical timestamps on different threads must not nest into
    // each other: two top-level phases, root sums both.
    std::vector<obs::TraceSpan> spans = {
        span("worker", 0, 1000, 1),
        span("worker", 0, 1000, 2),
    };
    obs::Profile p = obs::buildProfile(spans);
    ASSERT_EQ(p.root.children.size(), 1u);
    EXPECT_EQ(p.root.children[0].count, 2u);
    EXPECT_EQ(p.root.incl_ns, 2000u);
    EXPECT_EQ(p.root.count, 2u);
}

TEST(Profile, CpuTimeAggregates)
{
    std::vector<obs::TraceSpan> spans = {
        span("a", 0, 1000, 1, 900),
        span("b", 100, 500, 1, 450),
    };
    obs::Profile p = obs::buildProfile(spans);
    EXPECT_EQ(p.root.cpu_ns, 900u); // top-level only
    EXPECT_EQ(p.root.children[0].cpu_ns, 900u);
    EXPECT_EQ(p.root.children[0].children[0].cpu_ns, 450u);
}

TEST(Profile, HotspotsRankByExclusiveTime)
{
    std::vector<obs::TraceSpan> spans = {
        span("outer", 0, 1000),
        span("inner", 100, 800), // excl 800, outer excl 200
    };
    obs::Profile p = obs::buildProfile(spans);
    ASSERT_GE(p.hotspots.size(), 2u);
    EXPECT_EQ(p.hotspots[0].path, "outer/inner");
    EXPECT_EQ(p.hotspots[0].excl_ns, 800u);
    EXPECT_EQ(p.hotspots[1].path, "outer");
    EXPECT_EQ(p.hotspots[1].excl_ns, 200u);

    // top_n bounds the ranking.
    obs::Profile top1 = obs::buildProfile(spans, {}, 1);
    EXPECT_EQ(top1.hotspots.size(), 1u);
}

TEST(Profile, AttributesRssSamplesToActivePhases)
{
    std::vector<obs::TraceSpan> spans = {
        span("load", 0, 1000),
        span("solve", 1000, 1000),
    };
    std::vector<obs::RssSample> samples = {
        {500, 100 << 20},  // during load
        {1500, 300 << 20}, // during solve
    };
    obs::Profile p = obs::buildProfile(spans, samples);
    EXPECT_EQ(p.rss_samples, 2u);
    EXPECT_EQ(p.root.rss_hwm_bytes, 300u << 20);
    ASSERT_EQ(p.root.children.size(), 2u);
    // Children sort by inclusive time (equal here); find by name.
    for (const auto &child : p.root.children) {
        if (child.name == "load")
            EXPECT_EQ(child.rss_hwm_bytes, 100u << 20);
        else
            EXPECT_EQ(child.rss_hwm_bytes, 300u << 20);
    }
}

TEST(Profile, TextAndJsonRenderersAgree)
{
    std::vector<obs::TraceSpan> spans = {
        span("phase_a", 0, 2000),
        span("phase_b", 100, 700),
    };
    obs::Profile p = obs::buildProfile(spans);

    std::string text = obs::profileToText(p);
    EXPECT_NE(text.find("phase_a"), std::string::npos);
    EXPECT_NE(text.find("phase_b"), std::string::npos);
    EXPECT_NE(text.find("hotspots"), std::string::npos);

    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::parseJson(obs::profileToJson(p), doc, &error))
        << error;
    EXPECT_EQ(doc.find("total_ns")->asUint(), 2000u);
    const obs::JsonValue *tree = doc.find("tree");
    ASSERT_NE(tree, nullptr);
    EXPECT_EQ(tree->find("name")->asString(), "total");
    ASSERT_EQ(tree->find("children")->array().size(), 1u);
    EXPECT_EQ(tree->find("children")->array()[0]
                  .find("name")->asString(),
              "phase_a");
}

TEST(Profile, BuildsFromLiveTrace)
{
    obs::Trace &trace = obs::Trace::global();
    trace.enable();
    {
        obs::ScopedTrace outer("outer_phase", "test");
        obs::ScopedTrace inner("inner_phase", "test");
    }
    obs::Profile p = obs::buildProfile(trace);
    trace.disable();
    trace.clear();
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.root.children[0].name, "outer_phase");
    // The spans ran for real: exclusive time stays within the root.
    EXPECT_LE(sumExclusive(p.root), p.root.incl_ns);
}

} // namespace
} // namespace dnasim
