/**
 * @file
 * Unit, behavioural, and property tests for the reconstruction
 * library: consensus helpers, Majority, BMA Look-Ahead, Divider BMA,
 * Iterative, and the two-way / weighted extensions.
 */

#include <gtest/gtest.h>

#include "align/edit_distance.hh"
#include "analysis/accuracy.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/consensus.hh"
#include "reconstruct/divider_bma.hh"
#include "reconstruct/iterative.hh"
#include "reconstruct/majority.hh"
#include "reconstruct/twoway_iterative.hh"
#include "reconstruct/weighted_iterative.hh"

namespace dnasim
{
namespace
{

std::vector<const Reconstructor *>
allAlgorithms()
{
    static MajorityVote majority;
    static BmaLookahead bma;
    static BmaLookahead bma_oneway{BmaOptions{false}};
    static DividerBma divider;
    static Iterative iterative;
    static TwoWayIterative twoway;
    static WeightedIterative weighted;
    return {&majority, &bma, &bma_oneway, &divider, &iterative,
            &twoway, &weighted};
}

/** A noisy cluster of @p coverage copies at @p error_rate. */
std::vector<Strand>
noisyCluster(const Strand &ref, size_t coverage, double error_rate,
             Rng &rng)
{
    ErrorProfile profile =
        ErrorProfile::uniform(error_rate, ref.size());
    IdsChannelModel model = IdsChannelModel::naive(profile);
    std::vector<Strand> copies;
    copies.reserve(coverage);
    for (size_t i = 0; i < coverage; ++i)
        copies.push_back(model.transmit(ref, rng));
    return copies;
}

TEST(Consensus, BaseVoteWinner)
{
    Rng rng(90);
    BaseVote vote;
    EXPECT_TRUE(vote.empty());
    vote.add('G');
    vote.add('G');
    vote.add('T');
    EXPECT_EQ(vote.winner(rng), 'G');
    vote.clear();
    EXPECT_TRUE(vote.empty());
}

TEST(Consensus, BaseVoteWeighted)
{
    Rng rng(91);
    BaseVote vote;
    vote.add('A', 1.0);
    vote.add('C', 2.5);
    EXPECT_EQ(vote.winner(rng), 'C');
}

TEST(Consensus, PluralityCharEmpty)
{
    Rng rng(92);
    EXPECT_EQ(pluralityChar({}, rng), 'A');
}

TEST(Consensus, PositionalPluralityBasics)
{
    Rng rng(93);
    std::vector<Strand> copies = {"ACGT", "ACGT", "AGGT"};
    EXPECT_EQ(positionalPlurality(copies, 4, rng), "ACGT");
}

TEST(Consensus, PositionalPluralityShortCopiesAbstain)
{
    Rng rng(94);
    std::vector<Strand> copies = {"AC", "ACGT"};
    Strand out = positionalPlurality(copies, 4, rng);
    EXPECT_EQ(out.substr(2), "GT"); // only the long copy votes
}

TEST(Consensus, PositionalPluralityWeights)
{
    Rng rng(95);
    std::vector<Strand> copies = {"AAAA", "CCCC"};
    std::vector<double> weights = {0.1, 5.0};
    EXPECT_EQ(positionalPlurality(copies, 4, rng, weights), "CCCC");
}

TEST(Consensus, AlignedConsensusKeepsTruth)
{
    // The true reference is a fixpoint given noisy copies.
    StrandFactory factory;
    Rng rng(96);
    for (int trial = 0; trial < 20; ++trial) {
        Strand ref = factory.make(80, rng);
        auto copies = noisyCluster(ref, 8, 0.06, rng);
        Strand refined = alignedConsensus(ref, copies, rng);
        EXPECT_EQ(refined, ref) << "trial " << trial;
    }
}

TEST(Consensus, AlignedConsensusFixesSubstitution)
{
    StrandFactory factory;
    Rng rng(97);
    Strand ref = factory.make(60, rng);
    std::vector<Strand> copies(5, ref);
    Strand corrupted = ref;
    corrupted[30] = corrupted[30] == 'A' ? 'C' : 'A';
    EXPECT_EQ(alignedConsensus(corrupted, copies, rng), ref);
}

TEST(Consensus, AlignedConsensusFixesIndels)
{
    StrandFactory factory;
    Rng rng(98);
    Strand ref = factory.make(60, rng);
    std::vector<Strand> copies(5, ref);

    Strand missing = ref;
    missing.erase(20, 1);
    EXPECT_EQ(alignedConsensus(missing, copies, rng), ref);

    Strand extra = ref;
    extra.insert(extra.begin() + 40, 'G');
    EXPECT_EQ(alignedConsensus(extra, copies, rng), ref);
}

TEST(Consensus, EnforceDesignLengthRepairsDrift)
{
    StrandFactory factory;
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        Strand ref = factory.make(70, rng);
        auto copies = noisyCluster(ref, 7, 0.05, rng);

        Strand broken = ref;
        broken.erase(35, 1); // one char short
        Strand fixed =
            enforceDesignLength(broken, copies, ref.size(), rng);
        EXPECT_EQ(fixed.size(), ref.size());
        EXPECT_LE(levenshtein(fixed, ref), 1u);
    }
}

TEST(Consensus, EnforceDesignLengthNoOpWhenCorrect)
{
    StrandFactory factory;
    Rng rng(100);
    Strand ref = factory.make(50, rng);
    std::vector<Strand> copies(4, ref);
    EXPECT_EQ(enforceDesignLength(ref, copies, 50, rng), ref);
}

TEST(Consensus, TotalEditDistance)
{
    std::vector<Strand> copies = {"ACGT", "ACG", "ACGTT"};
    EXPECT_EQ(totalEditDistance("ACGT", copies), 2u);
}

TEST(AllReconstructors, EmptyClusterIsErasure)
{
    Rng rng(101);
    for (const auto *algo : allAlgorithms())
        EXPECT_TRUE(algo->reconstruct({}, 110, rng).empty())
            << algo->name();
}

TEST(AllReconstructors, PerfectCopiesReconstructExactly)
{
    StrandFactory factory;
    Rng rng(102);
    Strand ref = factory.make(110, rng);
    std::vector<Strand> copies(5, ref);
    for (const auto *algo : allAlgorithms())
        EXPECT_EQ(algo->reconstruct(copies, 110, rng), ref)
            << algo->name();
}

TEST(AllReconstructors, OutputHasDesignLength)
{
    StrandFactory factory;
    Rng rng(103);
    Strand ref = factory.make(110, rng);
    auto copies = noisyCluster(ref, 6, 0.10, rng);
    for (const auto *algo : allAlgorithms()) {
        if (algo->name() == "Iterative-raw")
            continue; // deliberately variable-length
        EXPECT_EQ(algo->reconstruct(copies, 110, rng).size(), 110u)
            << algo->name();
    }
}

TEST(AllReconstructors, SubstitutionOnlyErrorsAreEasy)
{
    // With substitution-only noise and decent coverage, every
    // aligner-based algorithm should reconstruct exactly.
    StrandFactory factory;
    Rng rng(104);
    Strand ref = factory.make(110, rng);
    ErrorProfile profile =
        ErrorProfile::uniform(0.10, 110, 1.0, 0.0, 0.0);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    std::vector<Strand> copies;
    for (int i = 0; i < 9; ++i)
        copies.push_back(model.transmit(ref, rng));
    for (const auto *algo : allAlgorithms())
        EXPECT_EQ(algo->reconstruct(copies, 110, rng), ref)
            << algo->name();
}

TEST(Bma, ForwardPassAnchorsAtStart)
{
    // A copy set with heavy errors at the end: the forward pass
    // still reconstructs the head correctly.
    StrandFactory factory;
    Rng rng(105);
    Strand ref = factory.make(100, rng);
    std::vector<Strand> copies;
    for (int i = 0; i < 5; ++i) {
        Strand c = ref;
        c.resize(70 + rng.index(10)); // truncated tails
        copies.push_back(c);
    }
    Strand estimate = BmaLookahead::forwardPass(copies, 100, rng);
    EXPECT_EQ(estimate.substr(0, 60), ref.substr(0, 60));
}

TEST(Bma, TwoWayBeatsOneWayOnUniformNoise)
{
    StrandFactory factory;
    Rng rng(106);
    BmaLookahead twoway;
    BmaLookahead oneway{BmaOptions{false}};
    size_t two_correct = 0, one_correct = 0;
    for (int trial = 0; trial < 60; ++trial) {
        Strand ref = factory.make(110, rng);
        auto copies = noisyCluster(ref, 6, 0.08, rng);
        Rng r1(trial), r2(trial);
        two_correct +=
            twoway.reconstruct(copies, 110, r1) == ref ? 1 : 0;
        one_correct +=
            oneway.reconstruct(copies, 110, r2) == ref ? 1 : 0;
    }
    EXPECT_GE(two_correct, one_correct);
}

TEST(Bma, WindowOptionIsRespected)
{
    // A wider look-ahead window disambiguates indels better on
    // indel-heavy clusters; window 1 is the classic check.
    StrandFactory factory;
    Rng rng(130);
    ErrorProfile profile =
        ErrorProfile::uniform(0.08, 110, 0.2, 0.4, 0.4);
    IdsChannelModel model = IdsChannelModel::naive(profile);

    BmaLookahead narrow{BmaOptions{true, 1}};
    BmaLookahead wide{BmaOptions{true, 3}};
    size_t narrow_chars = 0, wide_chars = 0;
    for (int trial = 0; trial < 50; ++trial) {
        Strand ref = factory.make(110, rng);
        std::vector<Strand> copies;
        for (int i = 0; i < 6; ++i)
            copies.push_back(model.transmit(ref, rng));
        Rng r1(trial), r2(trial);
        Strand a = narrow.reconstruct(copies, 110, r1);
        Strand b = wide.reconstruct(copies, 110, r2);
        for (size_t i = 0; i < 110; ++i) {
            narrow_chars += a[i] == ref[i] ? 1 : 0;
            wide_chars += b[i] == ref[i] ? 1 : 0;
        }
    }
    EXPECT_GE(wide_chars, narrow_chars);
}

TEST(Bma, NameReflectsMode)
{
    EXPECT_EQ(BmaLookahead().name(), "BMA");
    EXPECT_EQ(BmaLookahead(BmaOptions{false}).name(), "BMA-oneway");
}

TEST(DividerBmaTest, ExactOnCleanEqualLengthCopies)
{
    StrandFactory factory;
    Rng rng(107);
    Strand ref = factory.make(110, rng);
    // A couple of substitution-corrupted copies of exact length.
    std::vector<Strand> copies(5, ref);
    copies[0][10] = copies[0][10] == 'A' ? 'C' : 'A';
    copies[1][90] = copies[1][90] == 'G' ? 'T' : 'G';
    EXPECT_EQ(DividerBma().reconstruct(copies, 110, rng), ref);
}

TEST(DividerBmaTest, DegradesOnIndelHeavyClusters)
{
    // The collapse from Table 2.1: with indel-heavy copies the
    // divider heuristic falls well behind Iterative.
    StrandFactory factory;
    Rng rng(108);
    DividerBma divider;
    Iterative iterative;
    size_t div_correct = 0, iter_correct = 0;
    for (int trial = 0; trial < 40; ++trial) {
        Strand ref = factory.make(110, rng);
        auto copies = noisyCluster(ref, 10, 0.06, rng);
        Rng r1(trial), r2(trial);
        div_correct +=
            divider.reconstruct(copies, 110, r1) == ref ? 1 : 0;
        iter_correct +=
            iterative.reconstruct(copies, 110, r2) == ref ? 1 : 0;
    }
    EXPECT_LT(div_correct + 10, iter_correct);
}

TEST(IterativeTest, SingleCopyReturnsCopyDerivedEstimate)
{
    StrandFactory factory;
    Rng rng(109);
    Strand ref = factory.make(110, rng);
    std::vector<Strand> copies = {ref};
    EXPECT_EQ(Iterative().reconstruct(copies, 110, rng), ref);
}

TEST(IterativeTest, RawVariantMayBeShort)
{
    // Deletion-only noise: the raw variant's consensus tends to lose
    // characters, the enforced variant never does.
    StrandFactory factory;
    Rng rng(110);
    ErrorProfile profile =
        ErrorProfile::uniform(0.12, 110, 0.0, 0.0, 1.0);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    IterativeOptions raw_options;
    raw_options.enforce_length = false;
    Iterative raw(raw_options);
    Iterative enforced;

    size_t raw_short = 0;
    for (int trial = 0; trial < 30; ++trial) {
        Strand ref = factory.make(110, rng);
        std::vector<Strand> copies;
        for (int i = 0; i < 4; ++i)
            copies.push_back(model.transmit(ref, rng));
        Rng r1(trial), r2(trial);
        Strand raw_est = raw.reconstruct(copies, 110, r1);
        raw_short += raw_est.size() < 110 ? 1 : 0;
        EXPECT_EQ(enforced.reconstruct(copies, 110, r2).size(),
                  110u);
    }
    EXPECT_GT(raw_short, 0u);
}

TEST(IterativeTest, BeatsMajorityOnIndelNoise)
{
    StrandFactory factory;
    Rng rng(111);
    Iterative iterative;
    MajorityVote majority;
    size_t iter_correct = 0, maj_correct = 0;
    for (int trial = 0; trial < 40; ++trial) {
        Strand ref = factory.make(110, rng);
        auto copies = noisyCluster(ref, 6, 0.06, rng);
        Rng r1(trial), r2(trial);
        iter_correct +=
            iterative.reconstruct(copies, 110, r1) == ref ? 1 : 0;
        maj_correct +=
            majority.reconstruct(copies, 110, r2) == ref ? 1 : 0;
    }
    EXPECT_GT(iter_correct, maj_correct + 10);
}

TEST(IterativeTest, NamesReflectMode)
{
    EXPECT_EQ(Iterative().name(), "Iterative");
    IterativeOptions raw;
    raw.enforce_length = false;
    EXPECT_EQ(Iterative(raw).name(), "Iterative-raw");
}

TEST(TwoWayIterativeTest, MatchesOneWayOnCleanData)
{
    StrandFactory factory;
    Rng rng(112);
    Strand ref = factory.make(110, rng);
    std::vector<Strand> copies(5, ref);
    EXPECT_EQ(TwoWayIterative().reconstruct(copies, 110, rng), ref);
}

TEST(WeightedIterativeTest, DownweightsAlienCopies)
{
    // Clusters polluted with alien copies: weighting should never be
    // worse, and usually better, than unweighted voting.
    StrandFactory factory;
    Rng rng(113);
    Iterative plain;
    WeightedIterative weighted;
    size_t plain_correct = 0, weighted_correct = 0;
    for (int trial = 0; trial < 40; ++trial) {
        Strand ref = factory.make(110, rng);
        auto copies = noisyCluster(ref, 5, 0.05, rng);
        // Two aliens from another reference.
        Strand alien = factory.make(110, rng);
        copies.push_back(alien);
        copies.push_back(alien);
        Rng r1(trial), r2(trial);
        plain_correct +=
            plain.reconstruct(copies, 110, r1) == ref ? 1 : 0;
        weighted_correct +=
            weighted.reconstruct(copies, 110, r2) == ref ? 1 : 0;
    }
    EXPECT_GE(weighted_correct + 3, plain_correct);
    EXPECT_GT(weighted_correct, 20u);
}

struct ReconstructCase
{
    double error_rate;
    size_t coverage;
    double min_per_char; ///< expected per-char accuracy floor
};

class ReconstructionQuality
    : public ::testing::TestWithParam<ReconstructCase>
{};

TEST_P(ReconstructionQuality, IterativePerCharFloor)
{
    auto [rate, coverage, floor] = GetParam();
    StrandFactory factory;
    Rng rng(114);
    ErrorProfile profile = ErrorProfile::uniform(rate, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    ChannelSimulator sim(model);
    auto refs = factory.makeMany(40, 110, rng);
    FixedCoverage cov(coverage);
    Dataset data = sim.simulate(refs, cov, rng);

    Iterative iterative;
    Rng eval(115);
    AccuracyResult acc = evaluateAccuracy(data, iterative, eval);
    EXPECT_GT(acc.perChar(), floor)
        << "rate " << rate << " coverage " << coverage;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReconstructionQuality,
    ::testing::Values(ReconstructCase{0.03, 5, 0.97},
                      ReconstructCase{0.06, 5, 0.93},
                      ReconstructCase{0.06, 10, 0.97},
                      ReconstructCase{0.10, 10, 0.93},
                      ReconstructCase{0.15, 10, 0.85}));

TEST(ReconstructionOrdering, MoreCoverageNeverMuchWorse)
{
    // Per-char accuracy at coverage 10 should beat coverage 3 for
    // the same channel (Fig 3.3's monotone region).
    StrandFactory factory;
    Rng rng(116);
    ErrorProfile profile = ErrorProfile::uniform(0.08, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    ChannelSimulator sim(model);
    auto refs = factory.makeMany(40, 110, rng);

    Iterative iterative;
    double acc3, acc10;
    {
        FixedCoverage cov(3);
        Rng r(117);
        Dataset data = sim.simulate(refs, cov, r);
        Rng eval(118);
        acc3 = evaluateAccuracy(data, iterative, eval).perChar();
    }
    {
        FixedCoverage cov(10);
        Rng r(119);
        Dataset data = sim.simulate(refs, cov, r);
        Rng eval(120);
        acc10 = evaluateAccuracy(data, iterative, eval).perChar();
    }
    EXPECT_GT(acc10, acc3);
}

} // namespace
} // namespace dnasim
