/**
 * @file
 * Tests for the analysis library: accuracy scoring, positional
 * Hamming/gestalt profiles, profile bucketing and shape
 * classification, residual-error attribution, and the second-order
 * census.
 */

#include <gtest/gtest.h>

#include "analysis/accuracy.hh"
#include "analysis/clustered_accuracy.hh"
#include "analysis/dataset_distance.hh"
#include "analysis/error_positions.hh"
#include "analysis/residual.hh"
#include "analysis/second_order.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"
#include "reconstruct/iterative.hh"
#include "reconstruct/majority.hh"

namespace dnasim
{
namespace
{

Dataset
tinyDataset()
{
    Dataset data;
    Cluster a;
    a.reference = "ACGTACGTAC";
    a.copies = {"ACGTACGTAC", "ACGTACGTAC", "AGGTACGTAC"};
    data.add(a);
    Cluster b;
    b.reference = "TTTTCCCCGG";
    b.copies = {"TTTTCCCCGG", "TTTTCCCCGG"};
    data.add(b);
    return data;
}

TEST(Accuracy, PerfectEstimates)
{
    Dataset data = tinyDataset();
    std::vector<Strand> estimates = {data[0].reference,
                                     data[1].reference};
    AccuracyResult result = scoreReconstructions(data, estimates);
    EXPECT_EQ(result.num_clusters, 2u);
    EXPECT_EQ(result.num_perfect, 2u);
    EXPECT_DOUBLE_EQ(result.perStrand(), 1.0);
    EXPECT_DOUBLE_EQ(result.perChar(), 1.0);
}

TEST(Accuracy, PartialCredit)
{
    Dataset data = tinyDataset();
    Strand wrong = data[0].reference;
    wrong[0] = wrong[0] == 'A' ? 'C' : 'A';
    std::vector<Strand> estimates = {wrong, data[1].reference};
    AccuracyResult result = scoreReconstructions(data, estimates);
    EXPECT_EQ(result.num_perfect, 1u);
    EXPECT_DOUBLE_EQ(result.perStrand(), 0.5);
    EXPECT_DOUBLE_EQ(result.perChar(), 19.0 / 20.0);
}

TEST(Accuracy, ShortEstimatesLoseTailCredit)
{
    Dataset data = tinyDataset();
    std::vector<Strand> estimates = {
        data[0].reference.substr(0, 5), data[1].reference};
    AccuracyResult result = scoreReconstructions(data, estimates);
    EXPECT_DOUBLE_EQ(result.perChar(), 15.0 / 20.0);
}

TEST(Accuracy, EmptyEstimateScoresZeroChars)
{
    Dataset data = tinyDataset();
    std::vector<Strand> estimates = {Strand(), data[1].reference};
    AccuracyResult result = scoreReconstructions(data, estimates);
    EXPECT_DOUBLE_EQ(result.perChar(), 0.5);
}

TEST(Accuracy, ReconstructAllDeterministic)
{
    Dataset data = tinyDataset();
    MajorityVote algo;
    Rng a(200), b(200);
    EXPECT_EQ(reconstructAll(data, algo, a),
              reconstructAll(data, algo, b));
}

TEST(Accuracy, EvaluateMatchesScoreOfReconstructAll)
{
    Dataset data = tinyDataset();
    MajorityVote algo;
    Rng a(201), b(201);
    auto estimates = reconstructAll(data, algo, a);
    AccuracyResult direct = evaluateAccuracy(data, algo, b);
    AccuracyResult indirect = scoreReconstructions(data, estimates);
    EXPECT_EQ(direct.num_perfect, indirect.num_perfect);
    EXPECT_EQ(direct.num_chars_correct, indirect.num_chars_correct);
}

TEST(ErrorPositions, PreHammingCountsEveryMismatch)
{
    Dataset data;
    Cluster c;
    c.reference = "AGTC";
    c.copies = {"ATC"}; // the paper's example
    data.add(c);
    Histogram h = hammingProfilePre(data);
    EXPECT_EQ(h.count(0), 0u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(ErrorPositions, PreGestaltCountsSources)
{
    Dataset data;
    Cluster c;
    c.reference = "AGTC";
    c.copies = {"ATC"};
    data.add(c);
    Histogram h = gestaltProfilePre(data);
    EXPECT_EQ(h.total(), 1u);
    EXPECT_EQ(h.count(1), 1u); // the deleted G
}

TEST(ErrorPositions, PostProfilesSkipErasures)
{
    Dataset data = tinyDataset();
    std::vector<Strand> estimates = {Strand(), data[1].reference};
    EXPECT_EQ(hammingProfilePost(data, estimates).total(), 0u);
    EXPECT_EQ(gestaltProfilePost(data, estimates).total(), 0u);
}

TEST(ErrorPositions, BucketProfilePartitions)
{
    Histogram h;
    for (size_t pos = 0; pos < 100; ++pos)
        h.add(pos, pos < 50 ? 1 : 3);
    auto buckets = bucketProfile(h, 100, 4);
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0].lo, 0u);
    EXPECT_EQ(buckets[3].hi, 100u);
    uint64_t total = 0;
    double share = 0.0;
    for (const auto &b : buckets) {
        total += b.errors;
        share += b.share;
    }
    EXPECT_EQ(total, h.total());
    EXPECT_NEAR(share, 1.0, 1e-12);
    EXPECT_GT(buckets[3].errors, buckets[0].errors);
}

TEST(ErrorPositions, ShapeClassification)
{
    auto make = [](std::initializer_list<uint64_t> thirds) {
        Histogram h;
        size_t pos = 0;
        for (uint64_t mass : thirds) {
            for (size_t k = 0; k < 10; ++k)
                h.add(pos++, mass);
        }
        return h;
    };
    EXPECT_EQ(classifyShape(make({5, 5, 5}), 30), ProfileShape::Flat);
    EXPECT_EQ(classifyShape(make({1, 5, 10}), 30),
              ProfileShape::Rising);
    EXPECT_EQ(classifyShape(make({10, 5, 1}), 30),
              ProfileShape::Falling);
    EXPECT_EQ(classifyShape(make({1, 10, 1}), 30),
              ProfileShape::AShape);
    EXPECT_EQ(classifyShape(make({10, 1, 10}), 30),
              ProfileShape::VShape);
}

TEST(ErrorPositions, ShapeNames)
{
    EXPECT_STREQ(profileShapeName(ProfileShape::Flat), "flat");
    EXPECT_STREQ(profileShapeName(ProfileShape::AShape), "A-shape");
    EXPECT_STREQ(profileShapeName(ProfileShape::VShape), "V-shape");
}

TEST(Residual, CountsByType)
{
    Dataset data;
    Cluster c;
    c.reference = "AACCGGTTAA";
    data.add(c);
    // estimate: one substitution + one deletion.
    std::vector<Strand> estimates = {"ATCCGGTTA"};
    ResidualErrorStats stats = residualErrors(data, estimates);
    EXPECT_EQ(stats.substitutions, 1u);
    EXPECT_EQ(stats.deletions, 1u);
    EXPECT_EQ(stats.insertions, 0u);
    EXPECT_DOUBLE_EQ(stats.delShare(), 0.5);
    EXPECT_DOUBLE_EQ(stats.total(), 2u);
}

TEST(Residual, SkipsErasures)
{
    Dataset data = tinyDataset();
    std::vector<Strand> estimates = {Strand(), data[1].reference};
    ResidualErrorStats stats = residualErrors(data, estimates);
    EXPECT_EQ(stats.total(), 0u);
}

TEST(SecondOrderCensusTest, CountsSpecificErrors)
{
    Dataset data;
    Cluster c;
    c.reference = "ACGTACGTACGTAC";
    // One copy with G->T substitutions at both G positions... use a
    // single well-defined error per copy instead:
    c.copies = {"ACTTACGTACGTAC",  // sub G->T at position 2
                "ACTTACGTACGTAC",  // same again
                "ACGTACGTACGTA"};  // deletion of final C
    data.add(c);
    SecondOrderCensus census = secondOrderCensus(data);
    EXPECT_EQ(census.total_errors, 3u);
    ASSERT_FALSE(census.entries.empty());
    EXPECT_EQ(census.entries[0].key.type, EditOpType::Substitute);
    EXPECT_EQ(census.entries[0].key.base, 'G');
    EXPECT_EQ(census.entries[0].key.repl, 'T');
    EXPECT_EQ(census.entries[0].count, 2u);
    EXPECT_NEAR(census.entries[0].share, 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(census.topShare(10), 1.0, 1e-12);
}

TEST(SecondOrderCensusTest, LongDeletionsAreDistinct)
{
    Dataset data;
    Cluster c;
    c.reference = "ACGTACGTAC";
    c.copies = {"ACACGTAC"}; // deletes GT (positions 2-3), one run
    data.add(c);
    SecondOrderCensus census = secondOrderCensus(data);
    EXPECT_EQ(census.total_errors, 1u);
    EXPECT_EQ(census.entries[0].key.repl, '+'); // long-run marker
}

TEST(SecondOrderCensusTest, EmptyDataset)
{
    SecondOrderCensus census = secondOrderCensus(Dataset{});
    EXPECT_EQ(census.total_errors, 0u);
    EXPECT_TRUE(census.entries.empty());
    EXPECT_DOUBLE_EQ(census.topShare(10), 0.0);
}

TEST(ClusteredAccuracy, PerfectReadsFullRecovery)
{
    // Clean, well-separated clusters: re-clustering recovers every
    // reference exactly.
    StrandFactory factory;
    Rng rng(220);
    Dataset data;
    for (int i = 0; i < 10; ++i) {
        Cluster c;
        c.reference = factory.make(110, rng);
        c.copies.assign(5, c.reference);
        data.add(std::move(c));
    }
    MajorityVote majority;
    ClusterOptions options;
    Rng eval(221);
    ClusteredAccuracy result =
        evaluateWithClustering(data, options, majority, eval);
    EXPECT_EQ(result.num_references, 10u);
    EXPECT_EQ(result.num_clusters, 10u);
    EXPECT_EQ(result.recovered_exact, 10u);
    EXPECT_DOUBLE_EQ(result.perStrand(), 1.0);
}

TEST(ClusteredAccuracy, EmptyDataset)
{
    MajorityVote majority;
    Rng rng(222);
    ClusteredAccuracy result = evaluateWithClustering(
        Dataset{}, ClusterOptions{}, majority, rng);
    EXPECT_EQ(result.num_references, 0u);
    EXPECT_DOUBLE_EQ(result.perStrand(), 0.0);
}

TEST(ClusteredAccuracy, NoisyReadsStillMostlyRecovered)
{
    StrandFactory factory;
    Rng rng(223);
    ErrorProfile profile = ErrorProfile::uniform(0.04, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);
    ChannelSimulator sim(model);
    auto refs = factory.makeMany(15, 110, rng);
    FixedCoverage cov(8);
    Dataset data = sim.simulate(refs, cov, rng);

    Iterative iterative;
    ClusterOptions options;
    options.distance_threshold = 18;
    Rng eval(224);
    ClusteredAccuracy result =
        evaluateWithClustering(data, options, iterative, eval);
    EXPECT_GT(result.perStrand(), 0.6);
}

Dataset
simulatedDataset(const ErrorProfile &profile, bool use_skew,
                 uint64_t seed)
{
    StrandFactory factory;
    Rng rng(seed);
    auto refs = factory.makeMany(25, 110, rng);
    IdsChannelModel model = use_skew
                                ? IdsChannelModel::skew(profile)
                                : IdsChannelModel::naive(profile);
    ChannelSimulator sim(model);
    FixedCoverage cov(8);
    return sim.simulate(refs, cov, rng);
}

TEST(DatasetDistanceTest, SelfDistanceIsSmall)
{
    ErrorProfile p = ErrorProfile::uniform(0.06, 110);
    Dataset a = simulatedDataset(p, false, 210);
    Dataset b = simulatedDataset(p, false, 211);
    DatasetDistance d = datasetDistance(a, b);
    EXPECT_LT(d.mean(), 0.08);
    EXPECT_LT(d.positions, 0.05);
}

TEST(DatasetDistanceTest, DetectsRateMismatch)
{
    Dataset low =
        simulatedDataset(ErrorProfile::uniform(0.03, 110), false,
                         212);
    Dataset high =
        simulatedDataset(ErrorProfile::uniform(0.12, 110), false,
                         213);
    DatasetDistance near = datasetDistance(low, low);
    DatasetDistance far = datasetDistance(low, high);
    EXPECT_GT(far.errors_per_copy, near.errors_per_copy + 0.05);
    EXPECT_GT(far.mean(), near.mean());
}

TEST(DatasetDistanceTest, DetectsSpatialMismatch)
{
    ErrorProfile uniform = ErrorProfile::uniform(0.08, 110);
    ErrorProfile skewed = uniform.withSpatial(
        PositionProfile::terminalSkew(110, 6.0, 12.0));
    Dataset flat = simulatedDataset(uniform, false, 214);
    Dataset skew_a = simulatedDataset(skewed, true, 215);
    Dataset skew_b = simulatedDataset(skewed, true, 216);

    double same_shape = datasetDistance(skew_a, skew_b).positions;
    double diff_shape = datasetDistance(flat, skew_a).positions;
    EXPECT_GT(diff_shape, 3.0 * same_shape);
}

TEST(DatasetDistanceTest, SignatureCountsCopies)
{
    ErrorProfile p = ErrorProfile::uniform(0.05, 110);
    Dataset data = simulatedDataset(p, false, 217);
    DatasetSignature sig = datasetSignature(data);
    EXPECT_EQ(sig.copies, data.totalCopies());
    EXPECT_EQ(sig.lengths.total(), data.totalCopies());
    EXPECT_EQ(sig.gestalt_scores.total(), data.totalCopies());
}

TEST(DatasetDistanceTest, StrReportsComponents)
{
    ErrorProfile p = ErrorProfile::uniform(0.05, 110);
    Dataset data = simulatedDataset(p, false, 218);
    DatasetDistance d = datasetDistance(data, data);
    std::string s = d.str();
    EXPECT_NE(s.find("types="), std::string::npos);
    EXPECT_NE(s.find("mean="), std::string::npos);
}

} // namespace
} // namespace dnasim
