/**
 * @file
 * Tests for stage checkpoints (dnasim.checkpoint.v1): manifest
 * round-trip, the manifest-written-last commit contract, and the
 * little-endian u32 sidecar files.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "pipeline/checkpoint.hh"

namespace dnasim
{
namespace
{

namespace fs = std::filesystem;

std::string
tempDir(const std::string &name)
{
    const std::string dir =
        ::testing::TempDir() + "/dnasim_ckpt_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

TEST(Checkpoint, ManifestRoundTrips)
{
    CheckpointDir ckpt(tempDir("roundtrip"));
    EXPECT_FALSE(ckpt.hasManifest());

    CheckpointManifest manifest;
    manifest.stage = "cluster";
    manifest.seed = 0x51a70;
    manifest.num_refs = 300;
    manifest.num_reads = 8254;
    manifest.num_clusters = 4315;
    manifest.config = {{"index", "sketch"}, {"shards", "4"}};
    std::string error;
    ASSERT_TRUE(ckpt.writeManifest(manifest, &error)) << error;
    EXPECT_TRUE(ckpt.hasManifest());

    CheckpointManifest back;
    ASSERT_TRUE(ckpt.readManifest(back, &error)) << error;
    EXPECT_EQ(back.stage, "cluster");
    EXPECT_EQ(back.seed, 0x51a70u);
    EXPECT_EQ(back.num_refs, 300u);
    EXPECT_EQ(back.num_reads, 8254u);
    EXPECT_EQ(back.num_clusters, 4315u);
    EXPECT_EQ(back.config, manifest.config);
    fs::remove_all(ckpt.dir());
}

TEST(Checkpoint, MissingManifestReadFails)
{
    CheckpointDir ckpt(tempDir("missing"));
    CheckpointManifest manifest;
    std::string error;
    EXPECT_FALSE(ckpt.readManifest(manifest, &error));
    EXPECT_FALSE(error.empty());
    fs::remove_all(ckpt.dir());
}

TEST(Checkpoint, MalformedManifestReadFails)
{
    CheckpointDir ckpt(tempDir("malformed"));
    {
        std::ofstream os(ckpt.manifestPath());
        os << "{\"schema\": \"something.else.v1\"}\n";
    }
    CheckpointManifest manifest;
    std::string error;
    EXPECT_FALSE(ckpt.readManifest(manifest, &error));
    EXPECT_FALSE(error.empty());
    fs::remove_all(ckpt.dir());
}

TEST(Checkpoint, ManifestWriteIsAtomic)
{
    CheckpointDir ckpt(tempDir("atomic"));
    CheckpointManifest manifest;
    manifest.stage = "simulate";
    ASSERT_TRUE(ckpt.writeManifest(manifest));
    // No temp debris next to the committed file.
    size_t entries = 0;
    for (const auto &e : fs::directory_iterator(ckpt.dir())) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
    fs::remove_all(ckpt.dir());
}

TEST(Checkpoint, PathLayoutIsStable)
{
    CheckpointDir ckpt("ck");
    EXPECT_EQ(ckpt.refsPath(), "ck/refs.dnapool");
    EXPECT_EQ(ckpt.readsPath(), "ck/reads.dnapool");
    EXPECT_EQ(ckpt.originsPath(), "ck/origins.u32");
    EXPECT_EQ(ckpt.assignmentsPath(), "ck/assignments.u32");
    EXPECT_EQ(ckpt.representativesPath(),
              "ck/representatives.dnapool");
    EXPECT_EQ(ckpt.manifestPath(), "ck/manifest.json");
}

TEST(U32File, RoundTripsLittleEndian)
{
    const std::string path =
        ::testing::TempDir() + "/dnasim_ckpt_u32.bin";
    const std::vector<uint32_t> values = {0, 1, 0x01020304,
                                          0xffffffffu};
    std::string error;
    ASSERT_TRUE(writeU32File(path, values, &error)) << error;

    // On-disk bytes are little-endian regardless of host order.
    std::ifstream is(path, std::ios::binary);
    std::vector<unsigned char> bytes(16);
    is.read(reinterpret_cast<char *>(bytes.data()), 16);
    ASSERT_TRUE(is.good());
    EXPECT_EQ(bytes[8], 0x04);
    EXPECT_EQ(bytes[9], 0x03);
    EXPECT_EQ(bytes[10], 0x02);
    EXPECT_EQ(bytes[11], 0x01);

    std::vector<uint32_t> back;
    ASSERT_TRUE(readU32File(path, back, &error)) << error;
    EXPECT_EQ(back, values);
    fs::remove(path);
}

TEST(U32File, EmptyVectorRoundTrips)
{
    const std::string path =
        ::testing::TempDir() + "/dnasim_ckpt_u32_empty.bin";
    std::vector<uint32_t> back = {7};
    ASSERT_TRUE(writeU32File(path, {}));
    ASSERT_TRUE(readU32File(path, back));
    EXPECT_TRUE(back.empty());
    fs::remove(path);
}

TEST(U32File, MissingFileReadFails)
{
    std::vector<uint32_t> out;
    std::string error;
    EXPECT_FALSE(readU32File(::testing::TempDir() +
                                 "/dnasim_ckpt_nope.bin",
                             out, &error));
    EXPECT_FALSE(error.empty());
}

} // anonymous namespace
} // namespace dnasim
