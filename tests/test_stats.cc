/**
 * @file
 * Unit tests for the stats library: histograms, summaries,
 * chi-square distance, distributions, and positional profiles.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "stats/distributions.hh"
#include "stats/histogram.hh"
#include "stats/position_profile.hh"
#include "stats/summary.hh"

namespace dnasim
{
namespace
{

TEST(Histogram, StartsEmpty)
{
    Histogram h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.numBins(), 0u);
    EXPECT_EQ(h.count(5), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(5), 0.0);
}

TEST(Histogram, AddGrowsBins)
{
    Histogram h;
    h.add(3);
    h.add(3, 2);
    h.add(0);
    EXPECT_EQ(h.numBins(), 4u);
    EXPECT_EQ(h.count(3), 3u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, FractionAndNormalized)
{
    Histogram h;
    h.add(0, 1);
    h.add(1, 3);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.75);
    auto norm = h.normalized();
    ASSERT_EQ(norm.size(), 2u);
    EXPECT_DOUBLE_EQ(norm[0] + norm[1], 1.0);
}

TEST(Histogram, MeanBin)
{
    Histogram h;
    h.add(2, 2);
    h.add(4, 2);
    EXPECT_DOUBLE_EQ(h.meanBin(), 3.0);
}

TEST(Histogram, Merge)
{
    Histogram a, b;
    a.add(1, 2);
    b.add(1, 3);
    b.add(5, 1);
    a.merge(b);
    EXPECT_EQ(a.count(1), 5u);
    EXPECT_EQ(a.count(5), 1u);
}

TEST(Histogram, ClearKeepsBins)
{
    Histogram h;
    h.add(7);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.numBins(), 8u);
}

TEST(ChiSquare, IdenticalIsZero)
{
    Histogram a, b;
    for (size_t i = 0; i < 5; ++i) {
        a.add(i, i + 1);
        b.add(i, 2 * (i + 1)); // same shape, double mass
    }
    EXPECT_NEAR(chiSquareDistance(a, b), 0.0, 1e-12);
}

TEST(ChiSquare, DisjointIsOne)
{
    Histogram a, b;
    a.add(0, 10);
    b.add(1, 10);
    EXPECT_NEAR(chiSquareDistance(a, b), 1.0, 1e-12);
}

TEST(ChiSquare, Bounded)
{
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        Histogram a, b;
        for (size_t i = 0; i < 10; ++i) {
            a.add(i, static_cast<uint64_t>(rng.uniformInt(0, 20)));
            b.add(i, static_cast<uint64_t>(rng.uniformInt(0, 20)));
        }
        if (a.total() == 0 || b.total() == 0)
            continue;
        double d = chiSquareDistance(a, b);
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 1.0 + 1e-12);
    }
}

TEST(ChiSquare, SymmetricInArguments)
{
    Histogram a, b;
    a.add(0, 3);
    a.add(2, 7);
    b.add(1, 5);
    b.add(2, 5);
    EXPECT_DOUBLE_EQ(chiSquareDistance(a, b),
                     chiSquareDistance(b, a));
}

TEST(Summary, EmptyIsZeros)
{
    Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summary, BasicStatistics)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    Summary s = summarize(xs);
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.median, 2.5);
    EXPECT_NEAR(s.variance, 1.25, 1e-12);
}

TEST(Summary, QuantileInterpolation)
{
    std::vector<double> xs = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Summary, QuantileUnsortedInput)
{
    std::vector<double> xs = {5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Triangular, PdfIntegratesToOne)
{
    TriangularDist dist(0.0, 0.15, 0.30);
    double acc = 0.0;
    const int steps = 10000;
    for (int i = 0; i < steps; ++i) {
        double x = 0.30 * (i + 0.5) / steps;
        acc += dist.pdf(x) * 0.30 / steps;
    }
    EXPECT_NEAR(acc, 1.0, 1e-3);
}

TEST(Triangular, CdfMonotone)
{
    TriangularDist dist(0.0, 0.1, 0.30);
    double prev = -1.0;
    for (int i = 0; i <= 30; ++i) {
        double c = dist.cdf(0.01 * i);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(dist.cdf(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(1.0), 1.0);
}

TEST(Triangular, SampleMeanMatchesTheory)
{
    // The paper's A-shaped source: a = 0, b = 0.30, mean 0.15.
    TriangularDist dist(0.0, 0.15, 0.30);
    EXPECT_DOUBLE_EQ(dist.mean(), 0.15);
    Rng rng(9);
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = dist.sample(rng);
        EXPECT_GE(x, 0.0);
        EXPECT_LE(x, 0.30);
        acc += x;
    }
    EXPECT_NEAR(acc / n, 0.15, 0.002);
}

TEST(CumulativeSampler, RespectsWeights)
{
    CumulativeSampler sampler({1.0, 0.0, 2.0, 1.0});
    EXPECT_TRUE(sampler.valid());
    EXPECT_DOUBLE_EQ(sampler.probability(0), 0.25);
    EXPECT_DOUBLE_EQ(sampler.probability(1), 0.0);
    EXPECT_DOUBLE_EQ(sampler.probability(2), 0.5);

    Rng rng(10);
    std::array<int, 4> counts{};
    for (int i = 0; i < 8000; ++i)
        ++counts[sampler.sample(rng)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[2] / 8000.0, 0.5, 0.03);
}

TEST(CumulativeSampler, DefaultInvalid)
{
    CumulativeSampler sampler;
    EXPECT_FALSE(sampler.valid());
}

TEST(PositionProfile, DefaultIsUniform)
{
    PositionProfile p;
    EXPECT_TRUE(p.isUniform());
    EXPECT_DOUBLE_EQ(p.multiplier(0, 110), 1.0);
    EXPECT_DOUBLE_EQ(p.multiplier(109, 110), 1.0);
}

TEST(PositionProfile, UniformFactoryMeanOne)
{
    auto p = PositionProfile::uniform(50);
    for (size_t i = 0; i < 50; ++i)
        EXPECT_DOUBLE_EQ(p.multiplier(i, 50), 1.0);
}

TEST(PositionProfile, MeanMultiplierIsOne)
{
    for (auto p : {PositionProfile::terminalSkew(110, 4.0, 8.0),
                   PositionProfile::aShaped(110),
                   PositionProfile::vShaped(110)}) {
        double sum = 0.0;
        for (size_t i = 0; i < 110; ++i)
            sum += p.multiplier(i, 110);
        EXPECT_NEAR(sum / 110.0, 1.0, 1e-9) << p.str();
    }
}

TEST(PositionProfile, TerminalSkewShape)
{
    auto p = PositionProfile::terminalSkew(110, 4.0, 8.0, 2);
    double head = p.multiplier(0, 110);
    double interior = p.multiplier(55, 110);
    double tail = p.multiplier(109, 110);
    EXPECT_GT(head, interior);
    EXPECT_GT(tail, head); // end heavier than beginning
    EXPECT_NEAR(head / interior, 4.0, 1e-9);
    EXPECT_NEAR(tail / interior, 8.0, 1e-9);
}

TEST(PositionProfile, AShapePeaksMiddle)
{
    auto p = PositionProfile::aShaped(111);
    EXPECT_GT(p.multiplier(55, 111), p.multiplier(0, 111));
    EXPECT_GT(p.multiplier(55, 111), p.multiplier(110, 111));
    EXPECT_NEAR(p.multiplier(55, 111), 2.0, 0.05);
}

TEST(PositionProfile, VShapePeaksEnds)
{
    auto p = PositionProfile::vShaped(111);
    EXPECT_LT(p.multiplier(55, 111), p.multiplier(0, 111));
    EXPECT_LT(p.multiplier(55, 111), p.multiplier(110, 111));
}

TEST(PositionProfile, VIsInversionOfA)
{
    auto a = PositionProfile::aShaped(101);
    auto v = PositionProfile::vShaped(101);
    // A + V is approximately flat (both are |2u-1| based).
    for (size_t i = 0; i < 101; ++i) {
        double sum = a.multiplier(i, 101) + v.multiplier(i, 101);
        EXPECT_NEAR(sum, 2.0, 0.05);
    }
}

TEST(PositionProfile, FromHistogramMatchesShape)
{
    Histogram h;
    h.add(0, 100);
    h.add(1, 50);
    h.add(2, 50);
    h.add(3, 50);
    auto p = PositionProfile::fromHistogram(h, 4);
    EXPECT_NEAR(p.multiplier(0, 4) / p.multiplier(1, 4), 2.0, 1e-9);
}

TEST(PositionProfile, FromHistogramEmptyIsUniform)
{
    Histogram h;
    auto p = PositionProfile::fromHistogram(h, 10);
    EXPECT_TRUE(p.isUniform());
}

TEST(PositionProfile, FromHistogramFloor)
{
    Histogram h;
    h.add(0, 100); // all other positions empty
    auto p = PositionProfile::fromHistogram(h, 10, 0.1);
    // Floored positions still carry mass.
    EXPECT_GT(p.multiplier(5, 10), 0.0);
}

TEST(PositionProfile, ResampledPreservesShape)
{
    auto p = PositionProfile::terminalSkew(110, 4.0, 8.0);
    auto q = p.resampled(55);
    EXPECT_EQ(q.length(), 55u);
    EXPECT_GT(q.multiplier(54, 55), q.multiplier(27, 55));
    double sum = 0.0;
    for (size_t i = 0; i < 55; ++i)
        sum += q.multiplier(i, 55);
    EXPECT_NEAR(sum / 55.0, 1.0, 1e-9);
}

TEST(PositionProfile, MultiplierInterpolatesOtherLengths)
{
    auto p = PositionProfile::aShaped(110);
    // Relative position is preserved: mid of a length-20 strand maps
    // near the profile's peak.
    EXPECT_NEAR(p.multiplier(10, 21), 2.0, 0.1);
    EXPECT_LT(p.multiplier(0, 21), 0.5);
}

TEST(PositionProfile, ReversedMirrors)
{
    auto p = PositionProfile::terminalSkew(100, 3.0, 9.0);
    auto r = p.reversed();
    EXPECT_DOUBLE_EQ(p.multiplier(0, 100), r.multiplier(99, 100));
    EXPECT_DOUBLE_EQ(p.multiplier(99, 100), r.multiplier(0, 100));
}

TEST(PositionProfile, OutOfRangePositionClamps)
{
    auto p = PositionProfile::terminalSkew(100, 1.0, 5.0);
    // Positions at or beyond the length use the final multiplier.
    EXPECT_DOUBLE_EQ(p.multiplier(150, 100), p.multiplier(99, 100));
}

class PositionProfileLengths
    : public ::testing::TestWithParam<size_t>
{};

TEST_P(PositionProfileLengths, AllFactoriesNormalized)
{
    size_t len = GetParam();
    for (auto p : {PositionProfile::uniform(len),
                   PositionProfile::terminalSkew(len, 2.0, 5.0),
                   PositionProfile::aShaped(len),
                   PositionProfile::vShaped(len)}) {
        double sum = 0.0;
        for (size_t i = 0; i < len; ++i) {
            double m = p.multiplier(i, len);
            EXPECT_GE(m, 0.0);
            sum += m;
        }
        EXPECT_NEAR(sum / static_cast<double>(len), 1.0, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PositionProfileLengths,
                         ::testing::Values(1, 2, 3, 10, 110, 331));

} // namespace
} // namespace dnasim
