/**
 * @file
 * Tests of the bench trajectory ledger (obs/history.hh): the
 * dnasim.bench.v1 parser, the JSONL ledger round-trip and dedup, and
 * the noise-aware diff comparator's edge cases — missing-benchmark
 * pairs, zero-variance baselines, single-repeat runs and NaN-guarded
 * throughput fields.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/history.hh"
#include "obs/json.hh"

namespace dnasim
{
namespace
{

/** Minimal dnasim.bench.v1 document with one row. */
std::string
reportJson(const std::string &name, double real_ns,
           const std::string &extra_top = "")
{
    return "{\"schema\":\"dnasim.bench.v1\",\"name\":\"" + name +
           "\",\"git_rev\":\"abc1234\",\"seed\":42,"
           "\"wall_time_s\":1.5,\"peak_rss_bytes\":1048576," +
           extra_top +
           "\"config\":{\"clusters\":\"100\",\"threads\":\"2\"},"
           "\"benchmarks\":[{\"name\":\"BM_Main\",\"real_time_ns\":" +
           std::to_string(real_ns) +
           ",\"cpu_time_ns\":100.0,\"iterations\":1000}]}";
}

obs::BenchRun
makeRun(const std::string &name, std::vector<double> row_ns,
        double wall_s = 1.0)
{
    obs::BenchRun run;
    run.name = name;
    run.git_rev = "abc1234";
    run.seed = 42;
    run.threads = 2;
    run.wall_time_s = wall_s;
    run.config = {{"clusters", "100"}, {"threads", "2"}};
    int i = 0;
    for (double ns : row_ns) {
        obs::BenchRunRow row;
        row.name = "BM_Row" + std::to_string(i++);
        row.real_time_ns = ns;
        row.iterations = 100;
        run.rows.push_back(row);
    }
    return run;
}

/** One run whose single row "BM_Main" took @p ns. */
obs::BenchRun
mainRowRun(const std::string &name, double ns, uint64_t seed = 42)
{
    obs::BenchRun run;
    run.name = name;
    run.git_rev = "abc1234";
    run.seed = seed;
    run.threads = 1;
    obs::BenchRunRow row;
    row.name = "BM_Main";
    row.real_time_ns = ns;
    run.rows.push_back(row);
    return run;
}

class TempFile
{
  public:
    explicit TempFile(const std::string &suffix)
        : path_(::testing::TempDir() + "dnasim_history_" +
                std::to_string(counter_++) + suffix)
    {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    static int counter_;
    std::string path_;
};

int TempFile::counter_ = 0;

TEST(History, ParsesBenchReport)
{
    obs::BenchRun run;
    std::string error;
    ASSERT_TRUE(
        obs::parseBenchReport(reportJson("perf_channel", 1234.5),
                              run, &error))
        << error;
    EXPECT_EQ(run.name, "perf_channel");
    EXPECT_EQ(run.git_rev, "abc1234");
    EXPECT_EQ(run.seed, 42u);
    EXPECT_EQ(run.threads, 2u); // from config.threads
    EXPECT_DOUBLE_EQ(run.wall_time_s, 1.5);
    EXPECT_EQ(run.peak_rss_bytes, 1048576u);
    ASSERT_EQ(run.rows.size(), 1u);
    EXPECT_EQ(run.rows[0].name, "BM_Main");
    EXPECT_DOUBLE_EQ(run.rows[0].real_time_ns, 1234.5);
    EXPECT_EQ(run.rows[0].iterations, 1000u);
}

TEST(History, RejectsWrongSchemaAndGarbage)
{
    obs::BenchRun run;
    EXPECT_FALSE(obs::parseBenchReport("{\"schema\":\"other\"}", run));
    EXPECT_FALSE(obs::parseBenchReport("not json", run));
    EXPECT_FALSE(obs::parseBenchReport("[1,2]", run));
    // A valid schema but no name is unusable for keying.
    EXPECT_FALSE(obs::parseBenchReport(
        "{\"schema\":\"dnasim.bench.v1\"}", run));
}

TEST(History, NanGuardedThroughputFields)
{
    // null throughput values (the writer's representation of NaN)
    // must not poison the run.
    obs::BenchRun run;
    ASSERT_TRUE(obs::parseBenchReport(
        reportJson("perf_channel", 10.0,
                   "\"throughput\":{\"strands_per_s\":null,"
                   "\"bases_per_s\":12.5},"),
        run));
    EXPECT_DOUBLE_EQ(run.strands_per_s, 0.0);
    EXPECT_DOUBLE_EQ(run.bases_per_s, 12.5);
}

TEST(History, ConfigHashIgnoresThreadsAndOrder)
{
    obs::BenchRun a = makeRun("perf_channel", {10.0});
    obs::BenchRun b = a;
    b.config = {{"threads", "8"}, {"clusters", "100"}};
    b.threads = 8;
    // Same config modulo threads/order: same hash, different key.
    EXPECT_EQ(a.configHash(), b.configHash());
    EXPECT_NE(a.key(), b.key());

    obs::BenchRun c = a;
    c.config.emplace_back("coverage", "20");
    EXPECT_NE(a.configHash(), c.configHash());
}

TEST(History, SchemaRoundTrip)
{
    obs::BenchRun run = makeRun("perf_align", {1.5, 2.5}, 3.25);
    run.peak_rss_bytes = 7654321;
    run.rss_source = "proc_status";
    run.strands_per_s = 1e6;
    run.bases_per_s = 1.1e8;

    obs::BenchRun back;
    std::string error;
    ASSERT_TRUE(obs::parseBenchReport(obs::benchRunToJsonLine(run),
                                      back, &error))
        << error;
    EXPECT_EQ(back.name, run.name);
    EXPECT_EQ(back.git_rev, run.git_rev);
    EXPECT_EQ(back.seed, run.seed);
    EXPECT_EQ(back.threads, run.threads);
    EXPECT_DOUBLE_EQ(back.wall_time_s, run.wall_time_s);
    EXPECT_EQ(back.peak_rss_bytes, run.peak_rss_bytes);
    EXPECT_EQ(back.rss_source, run.rss_source);
    EXPECT_DOUBLE_EQ(back.strands_per_s, run.strands_per_s);
    EXPECT_DOUBLE_EQ(back.bases_per_s, run.bases_per_s);
    EXPECT_EQ(back.key(), run.key());
    ASSERT_EQ(back.rows.size(), run.rows.size());
    for (size_t i = 0; i < run.rows.size(); ++i) {
        EXPECT_EQ(back.rows[i].name, run.rows[i].name);
        EXPECT_DOUBLE_EQ(back.rows[i].real_time_ns,
                         run.rows[i].real_time_ns);
    }
}

TEST(History, RoundTripKeepsThreadsFromParallelBlock)
{
    // threads can come from the "parallel" section rather than the
    // config; the ledger line must still round-trip it.
    obs::BenchRun run;
    std::string error;
    ASSERT_TRUE(obs::parseBenchReport(
        "{\"schema\":\"dnasim.bench.v1\",\"name\":\"perf_x\","
        "\"parallel\":{\"threads\":4},\"benchmarks\":[]}",
        run, &error))
        << error;
    EXPECT_EQ(run.threads, 4u);
    obs::BenchRun back;
    ASSERT_TRUE(obs::parseBenchReport(obs::benchRunToJsonLine(run),
                                      back, &error))
        << error;
    EXPECT_EQ(back.threads, 4u);
}

TEST(History, LedgerAppendsAndDeduplicates)
{
    TempFile ledger(".jsonl");
    obs::BenchRun run = makeRun("perf_channel", {10.0});

    bool appended = false;
    std::string error;
    ASSERT_TRUE(obs::appendToLedger(ledger.path(), run, &appended,
                                    &error))
        << error;
    EXPECT_TRUE(appended);

    // The identical run (same key, wall time, seed) is a duplicate.
    ASSERT_TRUE(obs::appendToLedger(ledger.path(), run, &appended));
    EXPECT_FALSE(appended);

    // A repeat of the same configuration (different wall time) is a
    // new sample under the same key.
    obs::BenchRun repeat = makeRun("perf_channel", {11.0}, 2.0);
    ASSERT_TRUE(obs::appendToLedger(ledger.path(), repeat,
                                    &appended));
    EXPECT_TRUE(appended);

    auto runs = obs::readLedger(ledger.path());
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].key(), runs[1].key());
    EXPECT_FALSE(obs::ledgerSummary(runs).empty());
}

TEST(History, ReadLedgerSkipsBadLines)
{
    TempFile ledger(".jsonl");
    {
        std::ofstream os(ledger.path());
        os << obs::benchRunToJsonLine(makeRun("perf_a", {1.0}))
           << "\n"
           << "this line is not json\n"
           << obs::benchRunToJsonLine(makeRun("perf_b", {2.0}))
           << "\n";
    }
    std::vector<std::string> errors;
    auto runs = obs::readLedger(ledger.path(), &errors);
    EXPECT_EQ(runs.size(), 2u);
    EXPECT_EQ(errors.size(), 1u);
}

TEST(HistoryDiff, FlagsRegressionBeyondThreshold)
{
    std::vector<obs::BenchRun> a, b;
    for (double ns : {100.0, 101.0, 99.0})
        a.push_back(mainRowRun("perf_channel", ns));
    for (double ns : {120.0, 121.0, 119.0})
        b.push_back(mainRowRun("perf_channel", ns));

    obs::DiffReport report = obs::diffBenchRuns(a, b, {});
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_EQ(report.rows[0].verdict, obs::Verdict::kSlower);
    EXPECT_NEAR(report.rows[0].rel_delta, 0.20, 0.01);
    EXPECT_EQ(report.regressions(), 1u);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(obs::diffToText(report, {}).find("REGRESSED"),
              std::string::npos);
}

TEST(HistoryDiff, WithinNoiseStaysOk)
{
    // 2% swing with a 5% threshold: inside the floor.
    std::vector<obs::BenchRun> a = {mainRowRun("perf_channel", 100.0),
                                    mainRowRun("perf_channel", 102.0)};
    std::vector<obs::BenchRun> b = {mainRowRun("perf_channel", 103.0),
                                    mainRowRun("perf_channel", 101.0)};
    obs::DiffReport report = obs::diffBenchRuns(a, b, {});
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_EQ(report.rows[0].verdict, obs::Verdict::kOk);
    EXPECT_TRUE(report.ok());
}

TEST(HistoryDiff, NoisyBaselineRaisesTheBar)
{
    // 10% mean delta, but the baseline swings +-20%: the pooled
    // stddev must absorb it.
    std::vector<obs::BenchRun> a, b;
    for (double ns : {80.0, 100.0, 120.0})
        a.push_back(mainRowRun("perf_channel", ns));
    for (double ns : {90.0, 110.0, 130.0})
        b.push_back(mainRowRun("perf_channel", ns));
    obs::DiffReport report = obs::diffBenchRuns(a, b, {});
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_GT(report.rows[0].noise_rel, 0.10);
    EXPECT_EQ(report.rows[0].verdict, obs::Verdict::kOk);
}

TEST(HistoryDiff, ZeroVarianceBaselineUsesThresholdFloor)
{
    // Identical repeats on both sides: pooled stddev is 0, so the
    // fixed threshold is the only floor; a 6% slowdown trips it and
    // a 4% one does not.
    std::vector<obs::BenchRun> a = {mainRowRun("perf_channel", 100.0),
                                    mainRowRun("perf_channel", 100.0)};
    std::vector<obs::BenchRun> slow = {
        mainRowRun("perf_channel", 106.0),
        mainRowRun("perf_channel", 106.0)};
    std::vector<obs::BenchRun> near = {
        mainRowRun("perf_channel", 104.0),
        mainRowRun("perf_channel", 104.0)};

    EXPECT_EQ(obs::diffBenchRuns(a, slow, {}).rows[0].verdict,
              obs::Verdict::kSlower);
    EXPECT_EQ(obs::diffBenchRuns(a, near, {}).rows[0].verdict,
              obs::Verdict::kOk);
}

TEST(HistoryDiff, SingleRepeatRunsCompare)
{
    // n=1 on both sides: no variance evidence, threshold-only.
    std::vector<obs::BenchRun> a = {mainRowRun("perf_channel", 100.0)};
    std::vector<obs::BenchRun> b = {mainRowRun("perf_channel", 111.0)};
    obs::DiffReport report = obs::diffBenchRuns(a, b, {});
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_EQ(report.rows[0].a.n, 1u);
    EXPECT_DOUBLE_EQ(report.rows[0].a.stddev_ns, 0.0);
    EXPECT_EQ(report.rows[0].verdict, obs::Verdict::kSlower);
}

TEST(HistoryDiff, ImprovementIsNotARegression)
{
    std::vector<obs::BenchRun> a = {mainRowRun("perf_channel", 100.0)};
    std::vector<obs::BenchRun> b = {mainRowRun("perf_channel", 80.0)};
    obs::DiffReport report = obs::diffBenchRuns(a, b, {});
    EXPECT_EQ(report.rows[0].verdict, obs::Verdict::kFaster);
    EXPECT_EQ(report.improvements(), 1u);
    EXPECT_TRUE(report.ok());
}

TEST(HistoryDiff, MissingBenchmarkPairsAreAdvisory)
{
    std::vector<obs::BenchRun> a = {mainRowRun("perf_old", 100.0)};
    std::vector<obs::BenchRun> b = {mainRowRun("perf_new", 100.0)};
    obs::DiffReport report = obs::diffBenchRuns(a, b, {});
    ASSERT_EQ(report.rows.size(), 2u);
    EXPECT_EQ(report.rows[1].verdict, obs::Verdict::kOnlyInA);
    EXPECT_EQ(report.rows[0].verdict, obs::Verdict::kOnlyInB);
    // Rows unique to one side never fail the gate by themselves.
    EXPECT_TRUE(report.ok());
}

TEST(HistoryDiff, NonFiniteSamplesAreDropped)
{
    // A NaN-ish (serialized null -> 0) or negative sample must not
    // enter the statistics; all-dropped rows become unmatched.
    std::vector<obs::BenchRun> a = {mainRowRun("perf_channel", 0.0)};
    std::vector<obs::BenchRun> b = {mainRowRun("perf_channel", 100.0)};
    obs::DiffReport report = obs::diffBenchRuns(a, b, {});
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_EQ(report.rows[0].verdict, obs::Verdict::kOnlyInB);
}

TEST(HistoryDiff, JsonReportParses)
{
    std::vector<obs::BenchRun> a = {mainRowRun("perf_channel", 100.0)};
    std::vector<obs::BenchRun> b = {mainRowRun("perf_channel", 120.0)};
    obs::DiffOptions options;
    obs::DiffReport report = obs::diffBenchRuns(a, b, options);

    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::parseJson(obs::diffToJson(report, options), doc,
                               &error))
        << error;
    EXPECT_EQ(doc.find("schema")->asString(), "dnasim.benchdiff.v1");
    EXPECT_EQ(doc.find("regressions")->asUint(), 1u);
    EXPECT_FALSE(doc.find("ok")->asBool(true));
    ASSERT_EQ(doc.find("rows")->array().size(), 1u);
    EXPECT_EQ(doc.find("rows")->array()[0].find("verdict")->asString(),
              "REGRESSED");
}

TEST(HistoryDiff, LoadBenchInputFromDirectory)
{
    namespace fs = std::filesystem;
    // Repeats live in subdirectories (r1/, r2/), as the CI gate lays
    // them out; the recursive scan must fold both into samples.
    const std::string dir =
        ::testing::TempDir() + "dnasim_history_dir";
    fs::create_directories(dir + "/r1");
    fs::create_directories(dir + "/r2");
    {
        std::ofstream(dir + "/r1/BENCH_perf_channel.json")
            << reportJson("perf_channel", 100.0);
        std::ofstream(dir + "/r2/BENCH_perf_channel.json")
            << reportJson("perf_channel", 102.0);
        std::ofstream(dir + "/r2/NOT_A_BENCH.json") << "{}";
        std::ofstream(dir + "/r2/BENCH_broken.json") << "not json";
    }
    std::vector<std::string> errors;
    auto runs = obs::loadBenchInput(dir, &errors);
    EXPECT_EQ(runs.size(), 2u);
    EXPECT_EQ(errors.size(), 1u); // BENCH_broken.json
    fs::remove_all(dir);
}

} // namespace
} // namespace dnasim
