/**
 * @file
 * Tests for the technology presets (Table 1.1 profiles) and the
 * archival staged-channel factory.
 */

#include <gtest/gtest.h>

#include "align/edit_distance.hh"
#include "analysis/accuracy.hh"
#include "core/channel_simulator.hh"
#include "core/ids_model.hh"
#include "core/tech_profiles.hh"
#include "data/strand_factory.hh"
#include "reconstruct/iterative.hh"

namespace dnasim
{
namespace
{

TEST(TechProfiles, Names)
{
    EXPECT_STREQ(sequencerName(SequencerGeneration::Sanger),
                 "sanger");
    EXPECT_STREQ(sequencerName(SequencerGeneration::Illumina),
                 "illumina");
    EXPECT_STREQ(sequencerName(SequencerGeneration::Nanopore),
                 "nanopore");
}

TEST(TechProfiles, ErrorRatesOrderedByGeneration)
{
    // Table 1.1's trend: newer generations trade accuracy for
    // throughput.
    double sanger = sequencerErrorRate(SequencerGeneration::Sanger);
    double illumina =
        sequencerErrorRate(SequencerGeneration::Illumina);
    double nanopore =
        sequencerErrorRate(SequencerGeneration::Nanopore);
    EXPECT_LT(sanger, illumina);
    EXPECT_LT(illumina, nanopore);
    EXPECT_LT(sanger, 1e-4);
    EXPECT_GT(nanopore, 0.03);
}

TEST(TechProfiles, ProfileRatesMatchNominal)
{
    for (auto gen : {SequencerGeneration::Sanger,
                     SequencerGeneration::Illumina,
                     SequencerGeneration::Nanopore}) {
        ErrorProfile p = sequencerProfile(gen, 110);
        EXPECT_NEAR(p.totalRate(), sequencerErrorRate(gen),
                    sequencerErrorRate(gen) * 0.05)
            << sequencerName(gen);
        EXPECT_EQ(p.design_length, 110u);
    }
}

TEST(TechProfiles, NanoporeIsStructured)
{
    ErrorProfile p =
        sequencerProfile(SequencerGeneration::Nanopore, 110);
    EXPECT_FALSE(p.spatial.isUniform());
    EXPECT_FALSE(p.second_order.empty());
    EXPECT_GT(p.p_long_del, 0.0);
}

TEST(TechProfiles, IlluminaEndSkew)
{
    ErrorProfile p =
        sequencerProfile(SequencerGeneration::Illumina, 110);
    EXPECT_GT(p.spatial.multiplier(109, 110),
              p.spatial.multiplier(55, 110));
}

TEST(TechProfiles, MeasuredRatesTrackNominal)
{
    StrandFactory factory;
    Rng rng(300);
    Strand ref = factory.make(110, rng);
    for (auto gen : {SequencerGeneration::Illumina,
                     SequencerGeneration::Nanopore}) {
        IdsChannelModel model =
            IdsChannelModel::full(sequencerProfile(gen, 110));
        size_t errors = 0;
        const int copies = 400;
        for (int i = 0; i < copies; ++i)
            errors += levenshtein(ref, model.transmit(ref, rng));
        double rate = static_cast<double>(errors) / (110.0 * copies);
        EXPECT_NEAR(rate, sequencerErrorRate(gen),
                    sequencerErrorRate(gen) * 0.35)
            << sequencerName(gen);
    }
}

TEST(ArchivalChannel, ProducesUsableClusters)
{
    StrandFactory factory;
    Rng rng(301);
    auto refs = factory.makeMany(12, 110, rng);
    StagedChannel channel = makeArchivalChannel(
        SequencerGeneration::Illumina, 110, refs.size(),
        /*mean_coverage=*/10.0);
    Dataset data = channel.run(refs, rng);
    ASSERT_EQ(data.size(), refs.size());
    EXPECT_EQ(data.totalCopies(), 120u);

    Iterative algo;
    Rng eval(302);
    AccuracyResult acc = evaluateAccuracy(data, algo, eval);
    EXPECT_GT(acc.perChar(), 0.97);
}

TEST(ArchivalChannel, DecayCostsCoverage)
{
    StrandFactory factory;
    Rng rng(303);
    auto refs = factory.makeMany(12, 110, rng);

    StagedChannel fresh = makeArchivalChannel(
        SequencerGeneration::Illumina, 110, refs.size(), 8.0,
        /*storage_years=*/0.0);
    StagedChannel aged = makeArchivalChannel(
        SequencerGeneration::Illumina, 110, refs.size(), 8.0,
        /*storage_years=*/400.0);

    Rng r1(304), r2(304);
    Dataset fresh_data = fresh.run(refs, r1);
    Dataset aged_data = aged.run(refs, r2);
    // Same sampled read count, but the aged pool contains truncated
    // molecules, so the mean copy length drops.
    EXPECT_LT(aged_data.stats(false).mean_copy_length,
              fresh_data.stats(false).mean_copy_length);
}

TEST(ArchivalChannel, StageListIsComplete)
{
    StagedChannel channel = makeArchivalChannel(
        SequencerGeneration::Nanopore, 110, 10, 5.0,
        /*storage_years=*/100.0);
    auto names = channel.stageNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "synthesis");
    EXPECT_EQ(names[1], "decay");
    EXPECT_EQ(names[2], "pcr");
    EXPECT_EQ(names[3], "sampling");
    EXPECT_EQ(names[4], "sequencing");
}

} // namespace
} // namespace dnasim
