/**
 * @file
 * Unit and property tests for the alignment library: Levenshtein
 * distance, edit-operation backtraces (Appendix B), gestalt pattern
 * matching, and Hamming comparison.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "align/edit_distance.hh"
#include "align/gestalt.hh"
#include "align/hamming.hh"
#include "base/rng.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"

namespace dnasim
{
namespace
{

TEST(Levenshtein, Basics)
{
    EXPECT_EQ(levenshtein("", ""), 0u);
    EXPECT_EQ(levenshtein("ACGT", "ACGT"), 0u);
    EXPECT_EQ(levenshtein("ACGT", ""), 4u);
    EXPECT_EQ(levenshtein("", "ACGT"), 4u);
    EXPECT_EQ(levenshtein("ACGT", "AGGT"), 1u); // sub
    EXPECT_EQ(levenshtein("ACGT", "ACT"), 1u);  // del
    EXPECT_EQ(levenshtein("ACGT", "ACGTT"), 1u); // ins
}

TEST(Levenshtein, PaperExample)
{
    // r = AGCG, c = AGG: one deletion suffices.
    EXPECT_EQ(levenshtein("AGCG", "AGG"), 1u);
}

TEST(Levenshtein, MetricProperties)
{
    StrandFactory factory;
    Rng rng(21);
    for (int trial = 0; trial < 30; ++trial) {
        Strand a = factory.make(20 + rng.index(30), rng);
        Strand b = factory.make(20 + rng.index(30), rng);
        Strand c = factory.make(20 + rng.index(30), rng);
        // symmetry
        EXPECT_EQ(levenshtein(a, b), levenshtein(b, a));
        // identity
        EXPECT_EQ(levenshtein(a, a), 0u);
        // triangle inequality
        EXPECT_LE(levenshtein(a, c),
                  levenshtein(a, b) + levenshtein(b, c));
        // length-difference lower bound, max-length upper bound
        size_t diff = a.size() > b.size() ? a.size() - b.size()
                                          : b.size() - a.size();
        EXPECT_GE(levenshtein(a, b), diff);
        EXPECT_LE(levenshtein(a, b), std::max(a.size(), b.size()));
    }
}

TEST(Levenshtein, BandedFastPathMatchesFullMatrix)
{
    // The banded implementation must agree with the textbook DP on
    // arbitrary pairs, including very dissimilar ones where the
    // band has to widen all the way out.
    auto full = [](std::string_view a, std::string_view b) {
        std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
        for (size_t j = 0; j <= b.size(); ++j)
            prev[j] = j;
        for (size_t i = 1; i <= a.size(); ++i) {
            cur[0] = i;
            for (size_t j = 1; j <= b.size(); ++j) {
                size_t diag =
                    prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
                cur[j] = std::min(
                    {diag, prev[j] + 1, cur[j - 1] + 1});
            }
            std::swap(prev, cur);
        }
        return prev[b.size()];
    };

    StrandFactory factory;
    Rng rng(33);
    for (int trial = 0; trial < 40; ++trial) {
        size_t la = 1 + rng.index(120);
        size_t lb = 1 + rng.index(120);
        Strand a = factory.make(la, rng);
        Strand b = factory.make(lb, rng);
        EXPECT_EQ(levenshtein(a, b), full(a, b))
            << a << " vs " << b;
    }
    // Similar pairs (the intended fast path).
    ErrorProfile profile = ErrorProfile::uniform(0.08, 100);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (int trial = 0; trial < 40; ++trial) {
        Strand a = factory.make(100, rng);
        Strand b = channel.transmit(a, rng);
        EXPECT_EQ(levenshtein(a, b), full(a, b));
    }
}

namespace
{

/** Textbook full-matrix DP — ground truth for the fast kernels. */
size_t
fullMatrixDp(std::string_view a, std::string_view b)
{
    std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (size_t j = 1; j <= b.size(); ++j) {
            size_t diag = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({diag, prev[j] + 1, cur[j - 1] + 1});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

} // anonymous namespace

TEST(LevenshteinBanded, BandZeroIsDiagonalOnly)
{
    // Band 0 admits only the main diagonal: exact for equal-length
    // substitution-only pairs, an overestimate otherwise.
    EXPECT_EQ(levenshteinBanded("ACGT", "ACGT", 0), 0u);
    EXPECT_EQ(levenshteinBanded("ACGT", "AGGT", 0), 1u);
    EXPECT_EQ(levenshteinBanded("AAAA", "TTTT", 0), 4u);
    // An indel forces the path off the diagonal; the result may be
    // an overestimate but must stay >= the true distance and > band.
    size_t d = levenshteinBanded("ACGT", "ACG", 0);
    EXPECT_GE(d, 1u);
    EXPECT_GT(d, 0u);
}

TEST(LevenshteinBanded, EmptyStrings)
{
    EXPECT_EQ(levenshteinBanded("", "", 0), 0u);
    EXPECT_EQ(levenshteinBanded("", "", 10), 0u);
    // One side empty: the true distance is the other's length, which
    // lies outside a narrow band — certified only once band >= len.
    EXPECT_EQ(levenshteinBanded("", "ACGT", 4), 4u);
    EXPECT_EQ(levenshteinBanded("ACGT", "", 4), 4u);
    EXPECT_GE(levenshteinBanded("", "ACGT", 2), 4u);
    EXPECT_GE(levenshteinBanded("ACGT", "", 2), 4u);
}

TEST(LevenshteinBanded, OverestimateNeverUnderestimates)
{
    // The banded result is exact when <= band; otherwise it may
    // overestimate but must never undercut the true distance (the
    // widening loop in levenshtein() relies on exactly this).
    StrandFactory factory;
    Rng rng(41);
    for (int trial = 0; trial < 40; ++trial) {
        Strand a = factory.make(10 + rng.index(60), rng);
        Strand b = factory.make(10 + rng.index(60), rng);
        size_t truth = fullMatrixDp(a, b);
        for (size_t band : {size_t{0}, size_t{2}, size_t{5},
                            size_t{12}, size_t{200}}) {
            size_t d = levenshteinBanded(a, b, band);
            EXPECT_GE(d, truth) << "band " << band;
            if (d <= band || truth <= band) {
                EXPECT_EQ(d, truth) << "band " << band;
            }
        }
    }
}

TEST(LevenshteinBitParallel, MatchesFullDpAtWordBoundaries)
{
    // The Myers kernel switches from one 64-bit word to the blocked
    // variant at pattern length 65; lengths straddling every word
    // boundary must agree with the textbook DP. Strands are drawn
    // base-by-base (StrandFactory's GC constraints cannot be met at
    // tiny lengths).
    Rng rng(42);
    auto make = [&](size_t len) {
        Strand s;
        for (size_t i = 0; i < len; ++i)
            s.push_back("ACGT"[rng.index(4)]);
        return s;
    };
    ErrorProfile profile = ErrorProfile::uniform(0.08, 200);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (size_t len : {size_t{1}, size_t{2}, size_t{63}, size_t{64},
                       size_t{65}, size_t{127}, size_t{128},
                       size_t{129}, size_t{150}, size_t{200}}) {
        for (int trial = 0; trial < 10; ++trial) {
            Strand a = make(len);
            Strand b = channel.transmit(a, rng);
            EXPECT_EQ(levenshteinBitParallel(a, b),
                      fullMatrixDp(a, b))
                << "similar pair, len " << len;
            Strand c = make(1 + rng.index(2 * len));
            EXPECT_EQ(levenshteinBitParallel(a, c),
                      fullMatrixDp(a, c))
                << "dissimilar pair, len " << len;
        }
    }
}

TEST(LevenshteinBitParallel, EmptyAndDegenerate)
{
    EXPECT_EQ(levenshteinBitParallel("", ""), 0u);
    EXPECT_EQ(levenshteinBitParallel("", "ACGT"), 4u);
    EXPECT_EQ(levenshteinBitParallel("ACGT", ""), 4u);
    EXPECT_EQ(levenshteinBitParallel("A", "A"), 0u);
    EXPECT_EQ(levenshteinBitParallel("A", "T"), 1u);
}

TEST(LevenshteinBitParallel, ArbitraryBytes)
{
    // The peq tables index by unsigned char; the kernel must handle
    // the full byte range, not just ACGT.
    Rng rng(43);
    for (int trial = 0; trial < 30; ++trial) {
        std::string a, b;
        size_t la = 1 + rng.index(130), lb = 1 + rng.index(130);
        for (size_t i = 0; i < la; ++i)
            a.push_back(static_cast<char>(rng.index(256)));
        for (size_t i = 0; i < lb; ++i)
            b.push_back(static_cast<char>(rng.index(256)));
        EXPECT_EQ(levenshteinBitParallel(a, b), fullMatrixDp(a, b));
    }
}

TEST(EditOps, EqualStringsAllEqualOps)
{
    auto ops = editOps("ACGT", "ACGT");
    ASSERT_EQ(ops.size(), 4u);
    for (const auto &op : ops)
        EXPECT_EQ(op.type, EditOpType::Equal);
    EXPECT_EQ(numErrors(ops), 0u);
}

TEST(EditOps, CountsMatchLevenshtein)
{
    StrandFactory factory;
    Rng rng(22);
    ErrorProfile profile = ErrorProfile::uniform(0.15, 40);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (int trial = 0; trial < 50; ++trial) {
        Strand ref = factory.make(40, rng);
        Strand copy = channel.transmit(ref, rng);
        auto ops = editOps(ref, copy, &rng);
        EXPECT_EQ(numErrors(ops), levenshtein(ref, copy));
    }
}

TEST(EditOps, ApplyReproducesCopy)
{
    StrandFactory factory;
    Rng rng(23);
    ErrorProfile profile = ErrorProfile::uniform(0.2, 60);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (int trial = 0; trial < 50; ++trial) {
        Strand ref = factory.make(60, rng);
        Strand copy = channel.transmit(ref, rng);
        // Both deterministic and randomized backtraces must
        // reproduce the copy exactly.
        EXPECT_EQ(applyEditOps(ref, editOps(ref, copy)), copy);
        EXPECT_EQ(applyEditOps(ref, editOps(ref, copy, &rng)), copy);
    }
}

TEST(EditOps, CoversEveryReferencePositionOnce)
{
    StrandFactory factory;
    Rng rng(24);
    ErrorProfile profile = ErrorProfile::uniform(0.2, 50);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (int trial = 0; trial < 30; ++trial) {
        Strand ref = factory.make(50, rng);
        Strand copy = channel.transmit(ref, rng);
        auto ops = editOps(ref, copy, &rng);
        size_t consumed = 0;
        for (const auto &op : ops) {
            if (op.type == EditOpType::Insert)
                continue;
            EXPECT_EQ(op.ref_pos, consumed);
            EXPECT_EQ(op.ref_base, ref[consumed]);
            ++consumed;
        }
        EXPECT_EQ(consumed, ref.size());
    }
}

TEST(EditOps, DeterministicPrefersDeletionForPaperExample)
{
    // Appendix B's worked example: AGCG -> AGG should be explained
    // as the deletion of C.
    auto ops = editOps("AGCG", "AGG");
    std::vector<EditOp> errors;
    for (const auto &op : ops)
        if (op.type != EditOpType::Equal)
            errors.push_back(op);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].type, EditOpType::Delete);
    EXPECT_EQ(errors[0].ref_base, 'C');
    EXPECT_EQ(errors[0].ref_pos, 2u);
}

TEST(EditOps, RandomTieBreakingStaysMinimal)
{
    Rng rng(25);
    // Ambiguous case: many minimum-cost scripts exist.
    Strand ref = "AAAATTTT";
    Strand copy = "AAATTT";
    for (int trial = 0; trial < 20; ++trial) {
        auto ops = editOps(ref, copy, &rng);
        EXPECT_EQ(numErrors(ops), levenshtein(ref, copy));
        EXPECT_EQ(applyEditOps(ref, ops), copy);
    }
}

TEST(EditOps, RandomTieBreakingExploresAlternatives)
{
    Rng rng(26);
    // A deletion inside a homopolymer can be attributed to any of
    // the run's positions; the randomized backtrace should not
    // always pick the same one.
    std::set<size_t> positions;
    for (int trial = 0; trial < 100; ++trial) {
        auto ops = editOps("AAAA", "AAA", &rng);
        for (const auto &op : ops)
            if (op.type == EditOpType::Delete)
                positions.insert(op.ref_pos);
    }
    EXPECT_GT(positions.size(), 1u);
}

TEST(EditOps, InsertPositionSemantics)
{
    // Insertion before position 2 of the reference.
    auto ops = editOps("AACC", "AATCC");
    Strand rebuilt = applyEditOps("AACC", ops);
    EXPECT_EQ(rebuilt, "AATCC");
    size_t inserts = 0;
    for (const auto &op : ops) {
        if (op.type == EditOpType::Insert) {
            ++inserts;
            EXPECT_EQ(op.copy_base, 'T');
        }
    }
    EXPECT_EQ(inserts, 1u);
}

TEST(EditOps, EmptyInputs)
{
    auto del_all = editOps("ACG", "");
    EXPECT_EQ(numErrors(del_all), 3u);
    for (const auto &op : del_all)
        EXPECT_EQ(op.type, EditOpType::Delete);

    auto ins_all = editOps("", "ACG");
    EXPECT_EQ(numErrors(ins_all), 3u);
    for (const auto &op : ins_all)
        EXPECT_EQ(op.type, EditOpType::Insert);

    EXPECT_TRUE(editOps("", "").empty());
}

TEST(DeletionRuns, FindsMaximalRuns)
{
    // ref = ACGTACGT, copy missing GTA (positions 2-4).
    auto ops = editOps("ACGTACGT", "ACCGT");
    auto runs = deletionRuns(ops);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].length, 3u);
}

TEST(DeletionRuns, SeparatesDisjointRuns)
{
    // Two isolated single deletions.
    auto ops = editOps("ACGTAA", "CGTA");
    auto runs = deletionRuns(ops);
    size_t total = 0;
    for (const auto &r : runs)
        total += r.length;
    EXPECT_EQ(total, 2u);
}

TEST(EditOpTypeName, AllNamed)
{
    EXPECT_STREQ(editOpTypeName(EditOpType::Equal), "equal");
    EXPECT_STREQ(editOpTypeName(EditOpType::Substitute), "sub");
    EXPECT_STREQ(editOpTypeName(EditOpType::Delete), "del");
    EXPECT_STREQ(editOpTypeName(EditOpType::Insert), "ins");
}

TEST(Gestalt, PaperWikiExample)
{
    // Fig 3.1: WIKIMEDIA vs WIKIMANIA — matched blocks WIKIM?, IA...
    // Km = |WIKIM| + |IA| + |A between? | — difflib yields ratio
    // 2*7/18.
    double score = gestaltScore("WIKIMEDIA", "WIKIMANIA");
    EXPECT_NEAR(score, 2.0 * 7.0 / 18.0, 1e-9);
}

TEST(Gestalt, ScoreBounds)
{
    EXPECT_DOUBLE_EQ(gestaltScore("", ""), 1.0);
    EXPECT_DOUBLE_EQ(gestaltScore("ACGT", "ACGT"), 1.0);
    EXPECT_DOUBLE_EQ(gestaltScore("AAAA", "TTTT"), 0.0);
    double s = gestaltScore("ACGT", "AGT");
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
}

TEST(Gestalt, MatchingBlocksTerminatedBySentinel)
{
    auto blocks = matchingBlocks("ACGT", "ACGT");
    ASSERT_GE(blocks.size(), 2u);
    EXPECT_EQ(blocks.front().len, 4u);
    EXPECT_EQ(blocks.back().len, 0u);
    EXPECT_EQ(blocks.back().a_pos, 4u);
    EXPECT_EQ(blocks.back().b_pos, 4u);
}

TEST(Gestalt, BlocksAreConsistent)
{
    StrandFactory factory;
    Rng rng(27);
    ErrorProfile profile = ErrorProfile::uniform(0.15, 50);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (int trial = 0; trial < 30; ++trial) {
        Strand a = factory.make(50, rng);
        Strand b = channel.transmit(a, rng);
        size_t prev_a = 0, prev_b = 0;
        for (const auto &blk : matchingBlocks(a, b)) {
            EXPECT_GE(blk.a_pos, prev_a);
            EXPECT_GE(blk.b_pos, prev_b);
            // Block content actually matches.
            for (size_t k = 0; k < blk.len; ++k)
                EXPECT_EQ(a[blk.a_pos + k], b[blk.b_pos + k]);
            prev_a = blk.a_pos + blk.len;
            prev_b = blk.b_pos + blk.len;
        }
    }
}

TEST(Gestalt, GapClassification)
{
    // sub in the middle
    auto gaps = alignedGaps("AACCGGTT", "AACTGGTT");
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0].type, GapType::Substitution);

    // deletion
    gaps = alignedGaps("AACCGGTT", "AACGGTT");
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0].type, GapType::Deletion);

    // insertion
    gaps = alignedGaps("AACGGTT", "AACCGGTT");
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0].type, GapType::Insertion);
}

TEST(Gestalt, PaperErrorPositionExample)
{
    // r = AGTC, c = ATC: Hamming marks c1, c2, c3; gestalt marks
    // only the deletion of G at position 1.
    auto positions = gestaltErrorPositions("AGTC", "ATC");
    ASSERT_EQ(positions.size(), 1u);
    EXPECT_EQ(positions[0], 1u);
}

TEST(Gestalt, ErrorPositionsEmptyForExactCopy)
{
    EXPECT_TRUE(gestaltErrorPositions("ACGTACGT", "ACGTACGT").empty());
}

TEST(Gestalt, ErrorPositionsWithinReference)
{
    StrandFactory factory;
    Rng rng(28);
    ErrorProfile profile = ErrorProfile::uniform(0.2, 40);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (int trial = 0; trial < 30; ++trial) {
        Strand ref = factory.make(40, rng);
        Strand copy = channel.transmit(ref, rng);
        for (size_t pos : gestaltErrorPositions(ref, copy))
            EXPECT_LT(pos, ref.size());
    }
}

TEST(Gestalt, FewerAlignedThanHammingErrors)
{
    // The paper: "The magnitude of gestalt-aligned errors is thus
    // always lower than that of Hamming errors" (for indel-shifted
    // copies).
    StrandFactory factory;
    Rng rng(29);
    ErrorProfile profile =
        ErrorProfile::uniform(0.10, 60, 0.0, 0.0, 1.0); // del-only
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (int trial = 0; trial < 20; ++trial) {
        Strand ref = factory.make(60, rng);
        Strand copy = channel.transmit(ref, rng);
        if (copy == ref)
            continue;
        EXPECT_LE(gestaltErrorPositions(ref, copy).size(),
                  hammingErrorPositions(ref, copy).size());
    }
}

TEST(Hamming, PaperExample)
{
    // r = AGTC, c = ATC: errors at copy positions 1 and 2 (c too
    // short for position 3).
    auto positions = hammingErrorPositions("AGTC", "ATC");
    EXPECT_EQ(positions, (std::vector<size_t>{1, 2}));
}

TEST(Hamming, DistanceCountsLengthDifference)
{
    EXPECT_EQ(hammingDistance("ACGT", "ACGT"), 0u);
    EXPECT_EQ(hammingDistance("ACGT", "ACG"), 1u);
    EXPECT_EQ(hammingDistance("ACGT", "TGCA"), 4u);
    EXPECT_EQ(hammingDistance("", "ACG"), 3u);
}

TEST(Hamming, LongerCopyMarksTrailingPositions)
{
    auto positions = hammingErrorPositions("AC", "ACGT");
    EXPECT_EQ(positions, (std::vector<size_t>{2, 3}));
}

struct AlignCase
{
    size_t len;
    double error_rate;
};

class EditOpsProperty : public ::testing::TestWithParam<AlignCase>
{};

TEST_P(EditOpsProperty, RoundTripAndMinimality)
{
    auto [len, rate] = GetParam();
    StrandFactory factory;
    Rng rng(31 + len);
    ErrorProfile profile = ErrorProfile::uniform(rate, len);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (int trial = 0; trial < 20; ++trial) {
        Strand ref = factory.make(len, rng);
        Strand copy = channel.transmit(ref, rng);
        auto ops = editOps(ref, copy, &rng);
        EXPECT_EQ(applyEditOps(ref, ops), copy);
        EXPECT_EQ(numErrors(ops), levenshtein(ref, copy));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EditOpsProperty,
    ::testing::Values(AlignCase{10, 0.05}, AlignCase{10, 0.30},
                      AlignCase{50, 0.05}, AlignCase{50, 0.30},
                      AlignCase{110, 0.06}, AlignCase{110, 0.15},
                      AlignCase{200, 0.10}));

namespace
{

/**
 * Reference scalar longest-match: the original character DP,
 * earliest occurrence on ties — ground truth for the bit-parallel
 * gestalt kernel, including its tie-breaking.
 */
MatchBlock
referenceLongestMatch(std::string_view a, std::string_view b,
                      size_t a_lo, size_t a_hi, size_t b_lo,
                      size_t b_hi)
{
    MatchBlock best{a_lo, b_lo, 0};
    std::vector<size_t> prev(b_hi - b_lo + 1, 0),
        cur(b_hi - b_lo + 1, 0);
    for (size_t i = a_lo; i < a_hi; ++i) {
        for (size_t j = b_lo; j < b_hi; ++j) {
            size_t jj = j - b_lo + 1;
            if (a[i] == b[j]) {
                cur[jj] = prev[jj - 1] + 1;
                if (cur[jj] > best.len) {
                    best.len = cur[jj];
                    best.a_pos = i + 1 - cur[jj];
                    best.b_pos = j + 1 - cur[jj];
                }
            } else {
                cur[jj] = 0;
            }
        }
        std::swap(prev, cur);
        std::fill(cur.begin(), cur.end(), 0);
    }
    return best;
}

void
referenceMatchingBlocks(std::string_view a, std::string_view b,
                        size_t a_lo, size_t a_hi, size_t b_lo,
                        size_t b_hi, std::vector<MatchBlock> &out)
{
    MatchBlock m =
        referenceLongestMatch(a, b, a_lo, a_hi, b_lo, b_hi);
    if (m.len == 0)
        return;
    referenceMatchingBlocks(a, b, a_lo, m.a_pos, b_lo, m.b_pos, out);
    out.push_back(m);
    referenceMatchingBlocks(a, b, m.a_pos + m.len, a_hi,
                            m.b_pos + m.len, b_hi, out);
}

std::vector<MatchBlock>
referenceBlocks(std::string_view a, std::string_view b)
{
    std::vector<MatchBlock> blocks;
    referenceMatchingBlocks(a, b, 0, a.size(), 0, b.size(), blocks);
    blocks.push_back({a.size(), b.size(), 0});
    return blocks;
}

} // anonymous namespace

TEST(GestaltBitParallel, MatchesReferenceOnNoisyPairs)
{
    // The bit-parallel kernel must reproduce the scalar DP exactly —
    // same blocks, same tie-breaks — because gestalt-aligned error
    // curves depend on which of several equal-length matches wins.
    StrandFactory factory;
    Rng rng(0x6e57);
    ErrorProfile profile = ErrorProfile::uniform(0.08, 150);
    IdsChannelModel channel = IdsChannelModel::naive(profile);
    for (int trial = 0; trial < 40; ++trial) {
        size_t len = 1 + rng.index(150);
        Strand a = factory.make(len, rng);
        Strand b = channel.transmit(a, rng);
        EXPECT_EQ(matchingBlocks(a, b), referenceBlocks(a, b))
            << "trial " << trial;
    }
}

TEST(GestaltBitParallel, MatchesReferenceOnTieHeavyStrands)
{
    // Low-entropy strands (long runs, short alphabet periods) are
    // where multiple longest matches tie and traversal order shows.
    std::vector<std::pair<std::string, std::string>> pairs = {
        {"AAAAAA", "AAAA"},
        {"ACACACAC", "CACACA"},
        {"AAAATTTT", "TTTTAAAA"},
        {"ACGTACGTACGT", "ACGTACGT"},
        {"GGGG", "CCCC"},
        {"", "ACGT"},
        {"ACGT", ""},
        {"A", "A"},
    };
    for (const auto &[a, b] : pairs) {
        EXPECT_EQ(matchingBlocks(a, b), referenceBlocks(a, b))
            << a << " vs " << b;
    }
    // Word-boundary widths (63/64/65 columns) for the match masks.
    Rng rng(0x71e5);
    StrandFactory factory;
    for (size_t len : {size_t{63}, size_t{64}, size_t{65},
                       size_t{129}}) {
        Strand a = factory.make(len, rng);
        Strand b = factory.make(len, rng);
        EXPECT_EQ(matchingBlocks(a, b), referenceBlocks(a, b));
    }
}

TEST(GestaltBitParallel, NonAcgtContentUsesScalarFallback)
{
    // N calls must still match each other (the 4-row masks cannot
    // express that, so the whole pair drops to the scalar DP).
    EXPECT_EQ(matchingBlocks("ANNA", "ANNA"),
              referenceBlocks("ANNA", "ANNA"));
    EXPECT_EQ(gestaltScore("ANNA", "ANNA"), 1.0);
    EXPECT_EQ(matchingBlocks("ACGN", "NACG"),
              referenceBlocks("ACGN", "NACG"));
}

} // namespace
} // namespace dnasim
