/**
 * @file
 * Round-trip and robustness tests for ErrorProfile serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.hh"
#include "core/ids_model.hh"
#include "core/profile_io.hh"
#include "core/profiler.hh"
#include "core/wetlab.hh"

namespace dnasim
{
namespace
{

ErrorProfile
richProfile()
{
    // A calibrated profile from a small wetlab run: exercises every
    // field, including spatial and second-order tables.
    WetlabConfig config;
    config.num_clusters = 40;
    NanoporeDatasetGenerator generator(config);
    Rng rng(0x10f);
    Dataset data = generator.generate(rng);
    ErrorProfiler profiler;
    return profiler.calibrate(data);
}

void
expectProfilesClose(const ErrorProfile &a, const ErrorProfile &b)
{
    EXPECT_EQ(a.design_length, b.design_length);
    EXPECT_NEAR(a.p_sub, b.p_sub, 1e-9);
    EXPECT_NEAR(a.p_ins, b.p_ins, 1e-9);
    EXPECT_NEAR(a.p_del, b.p_del, 1e-9);
    EXPECT_NEAR(a.p_long_del, b.p_long_del, 1e-9);
    EXPECT_NEAR(a.homopolymer_mult, b.homopolymer_mult, 1e-9);
    for (size_t i = 0; i < kNumBases; ++i) {
        EXPECT_NEAR(a.p_sub_given[i], b.p_sub_given[i], 1e-9);
        EXPECT_NEAR(a.p_ins_given[i], b.p_ins_given[i], 1e-9);
        EXPECT_NEAR(a.p_del_given[i], b.p_del_given[i], 1e-9);
        EXPECT_NEAR(a.insert_base[i], b.insert_base[i], 1e-9);
        for (size_t r = 0; r < kNumBases; ++r)
            EXPECT_NEAR(a.confusion[i][r], b.confusion[i][r], 1e-9);
    }
    ASSERT_EQ(a.long_del_len_weights.size(),
              b.long_del_len_weights.size());
    ASSERT_EQ(a.spatial.length(), b.spatial.length());
    for (size_t i = 0; i < a.spatial.length(); ++i) {
        EXPECT_NEAR(a.spatial.multiplier(i, a.spatial.length()),
                    b.spatial.multiplier(i, b.spatial.length()),
                    1e-4);
    }
    ASSERT_EQ(a.second_order.size(), b.second_order.size());
    for (size_t i = 0; i < a.second_order.size(); ++i) {
        EXPECT_EQ(a.second_order[i].key, b.second_order[i].key);
        EXPECT_NEAR(a.second_order[i].rate, b.second_order[i].rate,
                    1e-9);
        EXPECT_EQ(a.second_order[i].count, b.second_order[i].count);
    }
}

TEST(ProfileIo, RoundTripRichProfile)
{
    ErrorProfile original = richProfile();
    std::ostringstream out;
    writeProfile(original, out);
    std::istringstream in(out.str());
    ErrorProfile parsed = readProfile(in);
    expectProfilesClose(original, parsed);
}

TEST(ProfileIo, RoundTripMinimalProfile)
{
    ErrorProfile original = ErrorProfile::uniform(0.06, 110);
    std::ostringstream out;
    writeProfile(original, out);
    std::istringstream in(out.str());
    ErrorProfile parsed = readProfile(in);
    expectProfilesClose(original, parsed);
    EXPECT_TRUE(parsed.spatial.isUniform());
    EXPECT_TRUE(parsed.second_order.empty());
}

TEST(ProfileIo, ParsedProfileDrivesSimulator)
{
    // A profile restored from text must behave identically in the
    // channel: compare transmissions under the same seed.
    ErrorProfile original = richProfile();
    std::ostringstream out;
    writeProfile(original, out);
    std::istringstream in(out.str());
    ErrorProfile parsed = readProfile(in);

    IdsChannelModel m1 = IdsChannelModel::secondOrder(original);
    IdsChannelModel m2 = IdsChannelModel::secondOrder(parsed);
    Strand ref(110, 'A');
    for (size_t i = 0; i < ref.size(); ++i)
        ref[i] = kBaseChars[i % kNumBases];
    // Rates are nearly identical, so a statistical comparison is
    // enough (exact equality would require bit-identical doubles).
    Rng r1(5), r2(5);
    size_t d1 = 0, d2 = 0;
    for (int t = 0; t < 200; ++t) {
        d1 += m1.transmit(ref, r1).size();
        d2 += m2.transmit(ref, r2).size();
    }
    EXPECT_NEAR(static_cast<double>(d1), static_cast<double>(d2),
                0.01 * static_cast<double>(d1));
}

TEST(ProfileIo, FileRoundTrip)
{
    ErrorProfile original = ErrorProfile::uniform(0.05, 80);
    std::string path =
        ::testing::TempDir() + "/dnasim_profile_test.txt";
    writeProfileFile(original, path);
    ErrorProfile parsed = readProfileFile(path);
    expectProfilesClose(original, parsed);
    std::remove(path.c_str());
}

TEST(ProfileIo, RejectsGarbage)
{
    std::istringstream not_a_profile("hello world\n");
    EXPECT_THROW(readProfile(not_a_profile), FatalError);

    std::istringstream empty("");
    EXPECT_THROW(readProfile(empty), FatalError);
}

TEST(ProfileIo, RejectsWrongVersion)
{
    std::istringstream in("dnasim-profile 99\nend\n");
    EXPECT_THROW(readProfile(in), FatalError);
}

TEST(ProfileIo, RejectsTruncated)
{
    ErrorProfile original = ErrorProfile::uniform(0.05, 80);
    std::ostringstream out;
    writeProfile(original, out);
    std::string text = out.str();
    // Drop the 'end' terminator.
    text.resize(text.rfind("end"));
    std::istringstream in(text);
    EXPECT_THROW(readProfile(in), FatalError);
}

TEST(ProfileIo, RejectsUnknownKey)
{
    std::istringstream in(
        "dnasim-profile 1\nflux_capacitor 88\nend\n");
    EXPECT_THROW(readProfile(in), FatalError);
}

TEST(ProfileIo, IgnoresCommentsAndBlanks)
{
    ErrorProfile original = ErrorProfile::uniform(0.05, 80);
    std::ostringstream out;
    writeProfile(original, out);
    std::string text = "# a comment\n\n" + out.str();
    std::istringstream in(text);
    ErrorProfile parsed = readProfile(in);
    expectProfilesClose(original, parsed);
}

} // namespace
} // namespace dnasim
