/**
 * @file
 * Tests of the batched Myers kernels and their runtime SIMD
 * dispatcher: batch-vs-scalar bit-equality on every tier this CPU
 * supports (forced via the override), edge shapes (ragged lengths,
 * word boundaries, limit = 0, empty texts, non-ACGT fallback),
 * steady-state allocation freedom, and cluster/reconstruct
 * byte-determinism across tiers and thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "align/edit_distance.hh"
#include "analysis/accuracy.hh"
#include "align/myers_batch.hh"
#include "align/simd_dispatch.hh"
#include "base/rng.hh"
#include "cluster/greedy_cluster.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"
#include "data/strand_factory.hh"
#include "obs/stats.hh"
#include "par/thread_pool.hh"
#include "reconstruct/bma.hh"

namespace dnasim
{
namespace
{

/** Restore the default thread count when a test scope exits. */
struct ThreadGuard
{
    explicit ThreadGuard(size_t n) { par::setThreads(n); }
    ~ThreadGuard() { par::setThreads(0); }
};

/** Force a SIMD tier for a scope, restoring auto selection after. */
struct TierGuard
{
    explicit TierGuard(SimdTier tier) { setSimdTierOverride(tier); }
    ~TierGuard() { setSimdTierOverride(std::nullopt); }
};

/**
 * Uniform random ACGT strand of exact length @p len — unlike
 * StrandFactory, no GC/homopolymer constraints, so degenerate
 * lengths (0, 1, 2) are fine.
 */
std::string
randomStrand(size_t len, Rng &rng)
{
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s += "ACGT"[rng.index(4)];
    return s;
}

/** Every tier the machine running the tests can execute. */
std::vector<SimdTier>
supportedTiers()
{
    std::vector<SimdTier> tiers{SimdTier::Scalar};
    const int widest = static_cast<int>(detectedSimdTier());
    if (widest >= static_cast<int>(SimdTier::Avx2))
        tiers.push_back(SimdTier::Avx2);
    if (widest >= static_cast<int>(SimdTier::Avx512))
        tiers.push_back(SimdTier::Avx512);
    return tiers;
}

/** Batch results must equal per-text scalar results bit-for-bit. */
void
expectBatchMatchesScalar(const MyersPattern &pattern,
                         const std::vector<std::string> &texts,
                         size_t limit, const char *what)
{
    std::vector<std::string_view> views(texts.begin(), texts.end());
    std::vector<size_t> got(views.size(), ~size_t{0});
    myersBatchDistanceBounded(pattern, views, limit, got);
    for (size_t i = 0; i < views.size(); ++i) {
        EXPECT_EQ(got[i], pattern.distanceBounded(views[i], limit))
            << what << ": tier "
            << simdTierName(activeSimdTier()) << ", text " << i
            << " of " << views.size() << ", limit " << limit;
    }
}

TEST(SimdDispatch, ParseAndNames)
{
    EXPECT_EQ(parseSimdTier("scalar"), SimdTier::Scalar);
    EXPECT_EQ(parseSimdTier("avx2"), SimdTier::Avx2);
    EXPECT_EQ(parseSimdTier("avx512"), SimdTier::Avx512);
    EXPECT_EQ(parseSimdTier("auto"), std::nullopt);
    EXPECT_EQ(parseSimdTier("sse9"), std::nullopt);
    for (SimdTier t :
         {SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512})
        EXPECT_EQ(parseSimdTier(simdTierName(t)), t);
}

TEST(SimdDispatch, OverrideAndClamp)
{
    {
        TierGuard guard(SimdTier::Scalar);
        EXPECT_EQ(activeSimdTier(), SimdTier::Scalar);
    }
    {
        // Above-hardware requests clamp to the detected tier.
        TierGuard guard(SimdTier::Avx512);
        EXPECT_EQ(activeSimdTier(),
                  std::min(static_cast<int>(SimdTier::Avx512),
                           static_cast<int>(detectedSimdTier())) ==
                          static_cast<int>(SimdTier::Avx512)
                      ? SimdTier::Avx512
                      : detectedSimdTier());
    }
    EXPECT_FALSE(applySimdOverride("sse9"));
    EXPECT_TRUE(applySimdOverride("scalar"));
    EXPECT_EQ(activeSimdTier(), SimdTier::Scalar);
    EXPECT_TRUE(applySimdOverride("auto"));
    EXPECT_EQ(activeSimdTier(), detectedSimdTier());
}

TEST(MyersBatch, MatchesScalarRandomized)
{
    Rng rng(0x51'3d);
    // Pattern lengths straddle the 64-base word boundary and cover
    // one-, two- and multi-block columns.
    const size_t pattern_lens[] = {1,  5,  33,  63,  64, 65,
                                   100, 127, 128, 129, 300};
    for (SimdTier tier : supportedTiers()) {
        TierGuard guard(tier);
        for (size_t m : pattern_lens) {
            const Strand pat = randomStrand(m, rng);
            const MyersPattern pattern(pat);
            // Ragged texts: similar, dissimilar, shorter, longer.
            std::vector<std::string> texts;
            for (size_t i = 0; i < 13; ++i) {
                if (i % 3 == 0) {
                    texts.push_back(
                        randomStrand(rng.index(2 * m + 8), rng));
                } else {
                    std::string t = pat;
                    const size_t edits = rng.index(m / 2 + 2);
                    for (size_t e = 0; e < edits && !t.empty(); ++e) {
                        const size_t pos = rng.index(t.size());
                        switch (rng.index(3)) {
                          case 0:
                            t[pos] = "ACGT"[rng.index(4)];
                            break;
                          case 1:
                            t.erase(pos, 1);
                            break;
                          default:
                            t.insert(pos, 1, "ACGT"[rng.index(4)]);
                            break;
                        }
                    }
                    texts.push_back(std::move(t));
                }
            }
            for (size_t limit :
                 {size_t{0}, size_t{2}, m / 8 + 1, m,
                  std::numeric_limits<size_t>::max()}) {
                expectBatchMatchesScalar(pattern, texts, limit,
                                         "randomized");
            }
        }
    }
}

TEST(MyersBatch, EdgeShapes)
{
    for (SimdTier tier : supportedTiers()) {
        TierGuard guard(tier);
        const MyersPattern pattern{std::string_view{"ACGTACGTAC"}};

        // Empty batch: no output written, no crash.
        myersBatchDistanceBounded(pattern, {}, 3, {});

        // Empty texts mixed into a batch.
        expectBatchMatchesScalar(
            pattern, {"", "ACGTACGTAC", "", "TTTT", "ACGT"}, 3,
            "empty texts");

        // limit = 0: only exact matches accepted.
        expectBatchMatchesScalar(
            pattern,
            {"ACGTACGTAC", "ACGTACGTAT", "ACGTACGTAC", "A", "",
             "ACGTACGTACA"},
            0, "limit 0");

        // Single text (scalar-served tail) and partial groups.
        expectBatchMatchesScalar(pattern, {"ACGTACGAAC"}, 2,
                                 "single text");
        expectBatchMatchesScalar(
            pattern, {"ACGTA", "ACGTACGTACGT", "CCCCCCCCCC"}, 4,
            "partial group");

        // Non-ACGT characters in texts gather the zero match row.
        expectBatchMatchesScalar(
            pattern,
            {"ACGTNNGTAC", "NNNNNNNNNN", "ACGTACGTAC", "acgtacgtac"},
            8, "non-ACGT texts");

        // Non-ACGT pattern: the whole batch takes the generic
        // fallback, still bit-equal per text.
        const MyersPattern fallback{std::string_view{"ACGTNCGTAC"}};
        EXPECT_FALSE(fallback.packed());
        expectBatchMatchesScalar(
            fallback, {"ACGTACGTAC", "ACGTNCGTAC", "", "TTTT"}, 4,
            "fallback pattern");

        // Empty pattern: distance is the text length.
        const MyersPattern empty{std::string_view{""}};
        expectBatchMatchesScalar(empty, {"", "ACGT", "A"}, 2,
                                 "empty pattern");

        // Length gaps beyond the limit resolve via the certified
        // lower bound without running the column.
        expectBatchMatchesScalar(
            pattern,
            {"AC", "ACGTACGTACACGTACGTAC", "ACGTACGTAC", "ACG"}, 1,
            "length-gap prechecks");
    }
}

TEST(MyersBatch, TotalDistanceMatchesScalarSum)
{
    Rng rng(0xabcd);
    for (SimdTier tier : supportedTiers()) {
        TierGuard guard(tier);
        for (size_t m : {size_t{40}, size_t{150}}) {
            const Strand pat = randomStrand(m, rng);
            const MyersPattern pattern(pat);
            std::vector<std::string> texts;
            for (size_t i = 0; i < 11; ++i)
                texts.push_back(
                    randomStrand(1 + rng.index(2 * m), rng));
            std::vector<std::string_view> views(texts.begin(),
                                                texts.end());
            size_t expected = 0;
            for (const auto &t : texts)
                expected += pattern.distance(t);
            EXPECT_EQ(myersBatchTotalDistance(pattern, views),
                      expected)
                << "tier " << simdTierName(tier) << ", m = " << m;
        }
    }
}

TEST(MyersBatch, SteadyStateIsAllocationFree)
{
    Rng rng(7);
    const Strand pat = randomStrand(150, rng);
    const MyersPattern pattern(pat);
    std::vector<std::string> texts;
    for (size_t i = 0; i < 32; ++i)
        texts.push_back(randomStrand(140 + rng.index(20), rng));
    std::vector<std::string_view> views(texts.begin(), texts.end());
    std::vector<size_t> out(views.size());

    auto &allocs = obs::Registry::global().counter("align.batch.allocs");
    // Warm-up grows every thread-local buffer to the working size;
    // after that the batch path must not touch the allocator.
    myersBatchDistanceBounded(pattern, views, 12, out);
    myersBatchTotalDistance(pattern, views);
    const uint64_t before = allocs.value();
    for (int round = 0; round < 10; ++round) {
        myersBatchDistanceBounded(pattern, views, 12, out);
        myersBatchTotalDistance(pattern, views);
    }
    EXPECT_EQ(allocs.value(), before)
        << "batch scratch reallocated in steady state";
}

/** A small calibrated channel for the cross-tier determinism test. */
struct E2eFixture
{
    std::vector<Strand> refs;
    ErrorProfile profile = ErrorProfile::uniform(0.06, 110);
    IdsChannelModel model = IdsChannelModel::naive(profile);

    E2eFixture()
    {
        Rng rng(99);
        StrandFactory factory;
        for (size_t i = 0; i < 48; ++i)
            refs.push_back(factory.make(110, rng));
    }

    Dataset
    simulate() const
    {
        ChannelSimulator sim(model);
        FixedCoverage coverage(8);
        Rng rng(0x5eed);
        return sim.simulate(refs, coverage, rng);
    }
};

TEST(SimdDeterminism, ClusterAndReconstructAcrossTiersAndThreads)
{
    E2eFixture fx;
    Dataset data;
    std::vector<Strand> pool;
    {
        ThreadGuard guard(1);
        data = fx.simulate();
        pool = data.pooledReads();
    }

    auto cluster_run = [&] {
        ClusterOptions options;
        options.max_probes = 32;
        options.parallel_probe_min = 8;
        std::string s;
        for (const auto &c : clusterReads(pool, options)) {
            s += c.representative;
            s += ':';
            for (size_t m : c.members) {
                s += std::to_string(m);
                s += ',';
            }
            s += '\n';
        }
        return s;
    };
    auto reconstruct_run = [&] {
        BmaLookahead algo;
        Rng rng(0x4ec0);
        std::string s;
        for (const auto &strand : reconstructAll(data, algo, rng)) {
            s += strand;
            s += '\n';
        }
        return s;
    };

    std::string cluster_ref;
    std::string reconstruct_ref;
    {
        ThreadGuard threads(1);
        TierGuard tier(SimdTier::Scalar);
        cluster_ref = cluster_run();
        reconstruct_ref = reconstruct_run();
    }
    for (SimdTier tier : supportedTiers()) {
        for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
            ThreadGuard tguard(threads);
            TierGuard sguard(tier);
            EXPECT_EQ(cluster_run(), cluster_ref)
                << "cluster: tier " << simdTierName(tier) << " at "
                << threads << " threads";
            EXPECT_EQ(reconstruct_run(), reconstruct_ref)
                << "reconstruct: tier " << simdTierName(tier)
                << " at " << threads << " threads";
        }
    }
}

} // namespace
} // namespace dnasim
