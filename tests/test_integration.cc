/**
 * @file
 * Cross-module integration tests: the paper's full experimental loop
 * (wetlab data -> calibration -> simulation -> reconstruction ->
 * accuracy comparison) and the imperfect-clustering path, at small
 * scale so they stay fast.
 */

#include <gtest/gtest.h>

#include "analysis/accuracy.hh"
#include "analysis/error_positions.hh"
#include "cluster/greedy_cluster.hh"
#include "core/channel_simulator.hh"
#include "core/ids_model.hh"
#include "core/profiler.hh"
#include "core/wetlab.hh"
#include "data/io.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/iterative.hh"

#include <sstream>

namespace dnasim
{
namespace
{

struct Lab
{
    Dataset wetlab;
    ErrorProfile profile;
};

const Lab &
lab()
{
    static const Lab instance = [] {
        Lab l;
        WetlabConfig config;
        config.num_clusters = 120;
        NanoporeDatasetGenerator generator(config);
        Rng rng(0x17e9);
        l.wetlab = generator.generate(rng);
        ErrorProfiler profiler;
        l.profile = profiler.calibrate(l.wetlab);
        return l;
    }();
    return instance;
}

Dataset
fixedCoverageProtocol(const Dataset &data, size_t n, uint64_t seed)
{
    Dataset shuffled = data;
    Rng rng(seed);
    shuffled.shuffleWithinClusters(rng);
    return shuffled.fixedCoverage(n, 10);
}

TEST(Integration, CalibratedRateTracksWetlabStructuralRate)
{
    // The profiler filters junk reads, so the calibrated rate lands
    // near the structural 5.9% even though the dataset's raw
    // aggregate (with aliens and truncations) is higher.
    EXPECT_GT(lab().profile.totalRate(), 0.04);
    EXPECT_LT(lab().profile.totalRate(), 0.09);
}

TEST(Integration, CalibratedSpatialIsEndHeavy)
{
    const auto &spatial = lab().profile.spatial;
    double head = spatial.multiplier(0, 110);
    double mid = spatial.multiplier(55, 110);
    double tail = spatial.multiplier(109, 110);
    EXPECT_GT(head, mid);
    EXPECT_GT(tail, mid);
    EXPECT_GT(tail, head); // end ~2x the beginning
}

TEST(Integration, SimulatedDataEasierThanReal)
{
    // The core finding of Tables 2.2/3.1: at fixed low coverage,
    // naive-simulated data reconstructs better than the real data.
    Dataset real5 = fixedCoverageProtocol(lab().wetlab, 5, 0x51);

    IdsChannelModel naive = IdsChannelModel::naive(lab().profile);
    ChannelSimulator sim(naive);
    std::vector<Strand> refs;
    for (const auto &c : real5)
        refs.push_back(c.reference);
    FixedCoverage cov(5);
    Rng sim_rng(0x52);
    Dataset naive5 = sim.simulate(refs, cov, sim_rng);

    Iterative iterative;
    Rng r1(0x53), r2(0x54);
    double real_acc =
        evaluateAccuracy(real5, iterative, r1).perChar();
    double sim_acc =
        evaluateAccuracy(naive5, iterative, r2).perChar();
    EXPECT_GT(sim_acc, real_acc);
}

TEST(Integration, SkewModelHurtsMoreThanNaive)
{
    // Adding spatial skew makes simulated data harder (Table 3.1's
    // BMA column falls toward the real row).
    std::vector<Strand> refs;
    for (const auto &c : lab().wetlab)
        refs.push_back(c.reference);
    FixedCoverage cov(5);

    IdsChannelModel naive = IdsChannelModel::naive(lab().profile);
    IdsChannelModel skew = IdsChannelModel::skew(lab().profile);
    Rng g1(0x61), g2(0x62);
    Dataset naive5 =
        ChannelSimulator(naive).simulate(refs, cov, g1);
    Dataset skew5 = ChannelSimulator(skew).simulate(refs, cov, g2);

    BmaLookahead bma;
    Rng r1(0x63), r2(0x64);
    double naive_acc = evaluateAccuracy(naive5, bma, r1).perChar();
    double skew_acc = evaluateAccuracy(skew5, bma, r2).perChar();
    EXPECT_GT(naive_acc, skew_acc);
}

TEST(Integration, IterativeResidualsEndHeavyOnRealData)
{
    // Fig 3.4: the Iterative algorithm's residual Hamming errors
    // grow toward the strand end.
    Dataset real5 = fixedCoverageProtocol(lab().wetlab, 5, 0x71);
    Iterative iterative;
    Rng rng(0x72);
    auto estimates = reconstructAll(real5, iterative, rng);
    auto thirds = bucketProfile(
        hammingProfilePost(real5, estimates), 110, 3);
    EXPECT_GT(thirds[2].errors, thirds[0].errors);
}

TEST(Integration, BmaResidualsMidHeavyOnUniformData)
{
    // Fig 3.7: on uniform noise, two-way BMA pushes residual errors
    // to the middle of the strand.
    std::vector<Strand> refs;
    for (const auto &c : lab().wetlab)
        refs.push_back(c.reference);
    ErrorProfile uniform = ErrorProfile::uniform(0.12, 110);
    IdsChannelModel model = IdsChannelModel::naive(uniform);
    FixedCoverage cov(5);
    Rng g(0x81);
    Dataset data = ChannelSimulator(model).simulate(refs, cov, g);

    BmaLookahead bma;
    Rng rng(0x82);
    auto estimates = reconstructAll(data, bma, rng);
    auto thirds = bucketProfile(
        hammingProfilePost(data, estimates), 110, 3);
    EXPECT_GT(thirds[1].errors, thirds[0].errors);
    EXPECT_GT(thirds[1].errors, thirds[2].errors);
}

TEST(Integration, EvyatRoundTripPreservesAccuracy)
{
    Dataset real5 = fixedCoverageProtocol(lab().wetlab, 5, 0x91);
    std::ostringstream out;
    writeEvyat(real5, out);
    std::istringstream in(out.str());
    Dataset parsed = readEvyat(in);

    Iterative iterative;
    Rng r1(0x92), r2(0x92);
    AccuracyResult direct = evaluateAccuracy(real5, iterative, r1);
    AccuracyResult via_io = evaluateAccuracy(parsed, iterative, r2);
    EXPECT_EQ(direct.num_perfect, via_io.num_perfect);
    EXPECT_EQ(direct.num_chars_correct, via_io.num_chars_correct);
}

TEST(Integration, ImperfectClusteringPath)
{
    // Pool the reads, recluster them, and verify the clusters are
    // usable for reconstruction: section 3.1's imperfect-clustering
    // evaluation mode.
    WetlabConfig config;
    config.num_clusters = 25;
    config.mean_coverage = 8.0;
    NanoporeDatasetGenerator generator(config);
    Rng rng(0xa1);
    Dataset data = generator.generate(rng);

    auto pool = data.pooledReads();
    std::vector<size_t> origins;
    for (size_t i = 0; i < data.size(); ++i)
        for (size_t k = 0; k < data[i].coverage(); ++k)
            origins.push_back(i);

    ClusterOptions options;
    options.distance_threshold = 20;
    auto clusters = clusterReads(pool, options);
    auto purity = scoreClustering(clusters, origins);
    EXPECT_GT(purity.purity(), 0.80);
}

TEST(Integration, HigherCoverageNeverHurtsMuch)
{
    // Fig 3.3's monotone region on the real data.
    Iterative iterative;
    Dataset at3 = fixedCoverageProtocol(lab().wetlab, 3, 0xb1);
    Dataset at8 = fixedCoverageProtocol(lab().wetlab, 8, 0xb1);
    Rng r1(0xb2), r2(0xb3);
    double acc3 = evaluateAccuracy(at3, iterative, r1).perChar();
    double acc8 = evaluateAccuracy(at8, iterative, r2).perChar();
    EXPECT_GT(acc8, acc3 - 0.01);
}

} // namespace
} // namespace dnasim
