/**
 * @file
 * Tests for the mmap-backed strand pool: the dnapool v1 builder /
 * reader pair, corrupted-file rejection, the StrandPoolView facade
 * over both backings, and the bounded-memory text ingester with its
 * format sniffer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "base/strand_pool.hh"
#include "data/dataset.hh"
#include "data/io.hh"
#include "data/strand_factory.hh"

namespace dnasim
{
namespace
{

namespace fs = std::filesystem;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/dnasim_pool_" + name;
}

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream os(path);
    os << text;
}

/** Build a pool file from @p strands, asserting success. */
std::string
buildPool(const std::string &name,
          const std::vector<Strand> &strands)
{
    const std::string path = tempPath(name);
    PackedStrandPoolBuilder builder;
    std::string error;
    EXPECT_TRUE(builder.open(path, &error)) << error;
    for (const auto &s : strands)
        EXPECT_TRUE(builder.append(s)) << s;
    EXPECT_TRUE(builder.finish(&error)) << error;
    return path;
}

TEST(PackedStrandPool, RoundTripIsByteIdentical)
{
    // Lengths straddling every packing edge case: empty, sub-word,
    // exactly one word (32 bases), word + 1, multi-word.
    std::vector<Strand> strands = {
        "", "A", "ACGT", Strand(31, 'C'), Strand(32, 'G'),
        Strand(33, 'T'), Strand(64, 'A') + Strand(10, 'C'),
    };
    StrandFactory factory;
    Rng rng(0x9001);
    for (size_t i = 0; i < 20; ++i)
        strands.push_back(factory.make(90 + i, rng));

    const std::string path = buildPool("roundtrip.dnapool", strands);
    PackedStrandPool pool;
    std::string error;
    ASSERT_TRUE(pool.open(path, &error)) << error;
    ASSERT_EQ(pool.size(), strands.size());
    uint64_t bases = 0;
    Strand scratch;
    for (size_t i = 0; i < strands.size(); ++i) {
        EXPECT_EQ(pool.length(i), strands[i].size());
        EXPECT_EQ(pool.strand(i), strands[i]);
        pool.unpackInto(i, scratch);
        EXPECT_EQ(scratch, strands[i]);
        bases += strands[i].size();
    }
    EXPECT_EQ(pool.totalBases(), bases);
    fs::remove(path);
}

TEST(PackedStrandPool, EmptyPoolRoundTrips)
{
    const std::string path = buildPool("empty.dnapool", {});
    PackedStrandPool pool;
    std::string error;
    ASSERT_TRUE(pool.open(path, &error)) << error;
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_TRUE(pool.empty());
    EXPECT_EQ(pool.totalBases(), 0u);
    fs::remove(path);
}

TEST(PackedStrandPool, BuilderRejectsNonAcgt)
{
    PackedStrandPoolBuilder builder;
    const std::string path = tempPath("reject.dnapool");
    ASSERT_TRUE(builder.open(path));
    EXPECT_TRUE(builder.append("ACGT"));
    EXPECT_FALSE(builder.append("ACGN"));
    EXPECT_FALSE(builder.append("acgt"));
    EXPECT_EQ(builder.count(), 1u);
    ASSERT_TRUE(builder.finish());
    PackedStrandPool pool;
    ASSERT_TRUE(pool.open(path));
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.strand(0), "ACGT");
    fs::remove(path);
}

TEST(PackedStrandPool, TruncatedFileFailsOpenCleanly)
{
    std::vector<Strand> strands(50, Strand(110, 'A'));
    const std::string path = buildPool("truncated.dnapool", strands);
    const auto full = fs::file_size(path);
    // Cut the file mid-arena: the header still promises the full
    // index + arena, so open must fail before touching a strand.
    fs::resize_file(path, full / 2);
    PackedStrandPool pool;
    std::string error;
    EXPECT_FALSE(pool.open(path, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(pool.isOpen());

    // Cutting into the header itself must fail too.
    fs::resize_file(path, 10);
    EXPECT_FALSE(pool.open(path, &error));
    fs::remove(path);
}

TEST(PackedStrandPool, WrongMagicFailsOpen)
{
    const std::string path =
        buildPool("magic.dnapool", {Strand("ACGT")});
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.put('X');
    }
    PackedStrandPool pool;
    std::string error;
    EXPECT_FALSE(pool.open(path, &error));
    EXPECT_FALSE(error.empty());
    fs::remove(path);
}

TEST(PackedStrandPool, MissingFileFailsOpen)
{
    PackedStrandPool pool;
    std::string error;
    EXPECT_FALSE(pool.open(tempPath("does_not_exist.dnapool"),
                           &error));
    EXPECT_FALSE(error.empty());
}

TEST(StrandPoolView, PoolAndVectorBackingsAgree)
{
    StrandFactory factory;
    Rng rng(0x9002);
    std::vector<Strand> strands = factory.makeMany(40, 110, rng);
    const std::string path = buildPool("view.dnapool", strands);
    PackedStrandPool pool;
    ASSERT_TRUE(pool.open(path));

    StrandPoolView vec_view(strands);
    StrandPoolView pool_view(pool);
    ASSERT_EQ(vec_view.size(), pool_view.size());
    EXPECT_FALSE(vec_view.poolBacked());
    EXPECT_TRUE(pool_view.poolBacked());

    Strand scratch, out_a, out_b;
    std::vector<uint64_t> pack_scratch;
    for (size_t i = 0; i < strands.size(); ++i) {
        EXPECT_EQ(vec_view.length(i), pool_view.length(i));
        EXPECT_EQ(vec_view.chars(i, scratch),
                  std::string_view(strands[i]));
        EXPECT_EQ(pool_view.chars(i, scratch),
                  std::string_view(strands[i]));
        vec_view.materialize(i, out_a);
        pool_view.materialize(i, out_b);
        EXPECT_EQ(out_a, out_b);

        std::span<const uint64_t> words_a, words_b;
        size_t len_a = 0, len_b = 0;
        ASSERT_TRUE(vec_view.packed(i, pack_scratch, words_a, len_a));
        ASSERT_TRUE(pool_view.packed(i, pack_scratch, words_b,
                                     len_b));
        ASSERT_EQ(len_a, len_b);
        ASSERT_EQ(words_a.size(), words_b.size());
        for (size_t w = 0; w < words_a.size(); ++w)
            EXPECT_EQ(words_a[w], words_b[w]);
    }
    fs::remove(path);
}

TEST(StrandPoolView, TruncateLimitsSize)
{
    std::vector<Strand> strands(10, Strand("ACGT"));
    StrandPoolView view(strands);
    EXPECT_EQ(view.size(), 10u);
    view.truncate(3);
    EXPECT_EQ(view.size(), 3u);
    view.truncate(100); // beyond the backing: no-op cap
    EXPECT_EQ(view.size(), 10u);
    view.truncate(0); // 0 = unlimited
    EXPECT_EQ(view.size(), 10u);
}

TEST(IngestToPool, LinesSkipsBlankAndNonAcgt)
{
    const std::string input = tempPath("lines.txt");
    writeText(input, "ACGTACGT\n\nACGTNNNN\nTTTT\n\n");
    const std::string out = tempPath("lines.dnapool");
    IngestOptions options;
    IngestResult result;
    std::string error;
    ASSERT_TRUE(
        ingestToPool(input, out, options, result, &error))
        << error;
    EXPECT_EQ(result.reads, 2u);
    EXPECT_EQ(result.skipped, 1u);
    PackedStrandPool pool;
    ASSERT_TRUE(pool.open(out));
    ASSERT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.strand(0), "ACGTACGT");
    EXPECT_EQ(pool.strand(1), "TTTT");
    fs::remove(input);
    fs::remove(out);
}

TEST(IngestToPool, FastaConcatenatesRecordLines)
{
    const std::string input = tempPath("reads.fasta");
    writeText(input, ">r1 desc\nACGT\nACGT\n>r2\nTTTT\n");
    const std::string out = tempPath("fasta.dnapool");
    IngestOptions options; // Auto must sniff Fasta
    IngestResult result;
    std::string error;
    ASSERT_TRUE(
        ingestToPool(input, out, options, result, &error))
        << error;
    EXPECT_EQ(result.reads, 2u);
    PackedStrandPool pool;
    ASSERT_TRUE(pool.open(out));
    EXPECT_EQ(pool.strand(0), "ACGTACGT");
    EXPECT_EQ(pool.strand(1), "TTTT");
    fs::remove(input);
    fs::remove(out);
}

TEST(IngestToPool, EvyatWithOriginsAndMaxReads)
{
    Dataset data;
    data.add({Strand(40, 'A'),
              {Strand(40, 'A'), Strand(40, 'A')}});
    data.add({Strand(40, 'C'), {Strand(40, 'C')}});
    data.add({Strand(40, 'G'),
              {Strand(40, 'G'), Strand(40, 'G')}});
    const std::string input = tempPath("clusters.evyat");
    writeEvyatFile(data, input);

    const std::string out = tempPath("evyat.dnapool");
    const std::string origins_path = tempPath("evyat.origins.u32");
    IngestOptions options;
    options.origins_path = origins_path;
    IngestResult result;
    std::string error;
    ASSERT_TRUE(
        ingestToPool(input, out, options, result, &error))
        << error;
    EXPECT_EQ(result.reads, 5u);
    EXPECT_EQ(result.clusters, 3u);

    std::ifstream org(origins_path, std::ios::binary);
    ASSERT_TRUE(org.good());
    std::vector<uint32_t> origins(5);
    org.read(reinterpret_cast<char *>(origins.data()),
             static_cast<std::streamsize>(5 * sizeof(uint32_t)));
    ASSERT_TRUE(org.good());
    EXPECT_EQ(origins, (std::vector<uint32_t>{0, 0, 1, 2, 2}));

    // max_reads stops mid-dataset.
    IngestOptions capped;
    capped.max_reads = 3;
    ASSERT_TRUE(
        ingestToPool(input, out, capped, result, &error))
        << error;
    EXPECT_EQ(result.reads, 3u);
    PackedStrandPool pool;
    ASSERT_TRUE(pool.open(out));
    EXPECT_EQ(pool.size(), 3u);
    fs::remove(input);
    fs::remove(out);
    fs::remove(origins_path);
}

TEST(IngestToPool, SniffRecognizesAllFormats)
{
    const std::string fasta = tempPath("sniff.fasta");
    writeText(fasta, ">r\nACGT\n");
    const std::string lines = tempPath("sniff.txt");
    writeText(lines, "ACGT\nTTTT\n");
    const std::string evyat = tempPath("sniff.evyat");
    Dataset data;
    data.add({Strand("ACGT"), {Strand("ACGT")}});
    writeEvyatFile(data, evyat);

    EXPECT_EQ(sniffIngestFormat(fasta), IngestFormat::Fasta);
    EXPECT_EQ(sniffIngestFormat(lines), IngestFormat::Lines);
    EXPECT_EQ(sniffIngestFormat(evyat), IngestFormat::Evyat);
    EXPECT_STREQ(ingestFormatName(IngestFormat::Fasta), "fasta");
    EXPECT_STREQ(ingestFormatName(IngestFormat::Evyat), "evyat");
    fs::remove(fasta);
    fs::remove(lines);
    fs::remove(evyat);
}

TEST(IngestToPool, MissingInputFails)
{
    IngestOptions options;
    IngestResult result;
    std::string error;
    EXPECT_FALSE(ingestToPool(tempPath("nope.txt"),
                              tempPath("nope.dnapool"), options,
                              result, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(fs::exists(tempPath("nope.dnapool")));
}

} // anonymous namespace
} // namespace dnasim
