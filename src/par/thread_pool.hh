/**
 * @file
 * Deterministic parallel execution for the simulator.
 *
 * The pipeline's hot loops (channel transmission, profiling,
 * clustering probes, per-cluster reconstruction) are all
 * embarrassingly parallel over an index range, but determinism is a
 * hard requirement: a run at --threads 8 must be byte-identical to
 * the serial run. The layer therefore separates *what* is computed
 * per index (pure function of the index plus pre-forked per-index
 * RNG streams) from *where* it runs:
 *
 *  - ThreadPool: a lazily started, process-wide pool of worker
 *    threads executing work-stealing index ranges. Each participant
 *    owns a contiguous shard of [begin, end); when its shard drains
 *    it steals the upper half of a victim's remaining range, so load
 *    imbalance (clusters of wildly different coverage) is absorbed
 *    without any scheduling decision ever affecting *results* —
 *    every index is processed exactly once and outputs land in
 *    per-index slots.
 *
 *  - parallelFor / parallelTransform: order-preserving helpers over
 *    [begin, end). With 1 configured thread (or tiny ranges, or when
 *    called from inside a worker) they degrade to the plain serial
 *    loop, so `--threads 1` exercises the exact serial code path.
 *
 * Thread count is a process-wide setting (setThreads), surfaced as
 * the CLI/bench `--threads` flag, defaulting to the DNASIM_THREADS
 * environment variable or std::thread::hardware_concurrency().
 * Utilization is recorded in the obs registry: gauge `par.threads`,
 * counters `par.regions` / `par.items` / `par.steals` /
 * `par.busy_ns`, and distribution `par.worker.busy_us` (per-worker
 * busy time per region — the balance evidence).
 */

#ifndef DNASIM_PAR_THREAD_POOL_HH
#define DNASIM_PAR_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace dnasim
{
namespace par
{

/** DNASIM_THREADS env var, else hardware_concurrency(), at least 1. */
size_t defaultThreads();

/**
 * Set the process-wide thread count (0 restores the default). Takes
 * effect on the next parallel region; call at quiescence, not from
 * inside one.
 */
void setThreads(size_t n);

/** The configured process-wide thread count (>= 1). */
size_t numThreads();

/** True while the calling thread is executing inside a region. */
bool inParallelRegion();

/** The work-stealing pool behind parallelFor. */
class ThreadPool
{
  public:
    /** The lazily created process-wide pool (never destroyed). */
    static ThreadPool &global();

    explicit ThreadPool(size_t threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker threads owned by the pool (participants - 1). */
    size_t numWorkers() const { return workers_.size(); }

    /**
     * Join the current workers and spawn @p workers new ones. Must
     * not be called while a region is in flight.
     */
    void resize(size_t workers);

    /**
     * Run @p body over chunks of [begin, end) on up to
     * @p max_participants threads (the caller participates). @p body
     * receives half-open sub-ranges [lo, hi); every index is covered
     * exactly once. Chunks are at most @p grain indices. Exceptions
     * from @p body cancel remaining work and the first one is
     * rethrown on the calling thread.
     */
    void forRange(size_t begin, size_t end, size_t grain,
                  size_t max_participants,
                  const std::function<void(size_t, size_t)> &body);

  private:
    struct Task;

    void workerLoop();
    void runTask(Task &task, size_t self);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::function<void()>> queue_;
    bool stop_ = false;
};

namespace detail
{
/** Serial fallback shared by the helpers below. */
template <typename Fn>
void
serialFor(size_t begin, size_t end, Fn &&fn)
{
    for (size_t i = begin; i < end; ++i)
        fn(i);
}
} // namespace detail

/**
 * Apply @p fn to every index of [begin, end), in parallel when more
 * than one thread is configured. @p grain is the maximum chunk size
 * handed to one worker at a time (1 = finest balancing; raise it for
 * cheap per-index work). Deterministic: results must only depend on
 * the index, never on execution order.
 */
template <typename Fn>
void
parallelFor(size_t begin, size_t end, Fn &&fn, size_t grain = 1)
{
    if (end <= begin)
        return;
    const size_t n = end - begin;
    const size_t threads = numThreads();
    if (threads <= 1 || n <= grain || inParallelRegion()) {
        detail::serialFor(begin, end, fn);
        return;
    }
    ThreadPool::global().forRange(
        begin, end, grain, threads, [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i)
                fn(i);
        });
}

/**
 * Order-preserving map: out[i] = fn(i) for i in [0, n). The result
 * type must be default-constructible and movable.
 */
template <typename Fn>
auto
parallelTransform(size_t n, Fn &&fn, size_t grain = 1)
    -> std::vector<decltype(fn(size_t{}))>
{
    std::vector<decltype(fn(size_t{}))> out(n);
    parallelFor(
        0, n, [&](size_t i) { out[i] = fn(i); }, grain);
    return out;
}

} // namespace par
} // namespace dnasim

#endif // DNASIM_PAR_THREAD_POOL_HH
