#include "par/thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "base/logging.hh"
#include "obs/provenance.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace dnasim
{
namespace par
{

namespace
{

/** Cached obs instruments for the pool (global registry, stable). */
struct ParStats
{
    obs::Gauge &threads;
    obs::Counter &regions;
    obs::Counter &serial_regions;
    obs::Counter &items;
    obs::Counter &steals;
    obs::Counter &busy_ns;
    obs::Counter &cpu_ns;
    obs::Timer &region_time;
    obs::Distribution &worker_busy_us;

    static ParStats &
    get()
    {
        auto &reg = obs::Registry::global();
        static ParStats ps{
            reg.gauge("par.threads", "configured worker thread count"),
            reg.counter("par.regions", "parallel regions executed"),
            reg.counter("par.serial_regions",
                        "regions degraded to the serial path"),
            reg.counter("par.items", "indices processed in parallel "
                                     "regions"),
            reg.counter("par.steals", "work-stealing range transfers"),
            reg.counter("par.busy_ns", "nanoseconds of worker busy "
                                       "time across all regions"),
            reg.counter("par.cpu_ns",
                        "thread CPU nanoseconds inside parallel "
                        "loop bodies (busy minus involuntary waits)"),
            reg.timer("par.region_time",
                      "wall time of parallel regions"),
            reg.distribution("par.worker.busy_us",
                             "per-participant busy microseconds per "
                             "region (load-balance evidence)"),
        };
        return ps;
    }
};

std::atomic<size_t> configured_threads{0}; // 0 = not yet resolved

/** The global pool once created, so setThreads can resize it. */
std::atomic<ThreadPool *> global_pool{nullptr};

thread_local bool in_region = false;

/** Pack a half-open [lo, hi) range into one atomic word. */
constexpr uint64_t
pack(uint32_t lo, uint32_t hi)
{
    return (static_cast<uint64_t>(hi) << 32) | lo;
}

constexpr uint32_t
rangeLo(uint64_t r)
{
    return static_cast<uint32_t>(r);
}

constexpr uint32_t
rangeHi(uint64_t r)
{
    return static_cast<uint32_t>(r >> 32);
}

/** Pop up to @p grain indices from the front of @p range. */
bool
popChunk(std::atomic<uint64_t> &range, uint32_t grain, uint32_t &lo,
         uint32_t &hi)
{
    uint64_t r = range.load(std::memory_order_relaxed);
    for (;;) {
        uint32_t l = rangeLo(r), h = rangeHi(r);
        if (l >= h)
            return false;
        uint32_t take = std::min(grain, h - l);
        if (range.compare_exchange_weak(r, pack(l + take, h),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
            lo = l;
            hi = l + take;
            return true;
        }
    }
}

/**
 * Steal the upper half of @p range, leaving the lower half (and any
 * single remaining index) to its owner.
 */
bool
stealHalf(std::atomic<uint64_t> &range, uint32_t &lo, uint32_t &hi)
{
    uint64_t r = range.load(std::memory_order_relaxed);
    for (;;) {
        uint32_t l = rangeLo(r), h = rangeHi(r);
        uint32_t mid = l + (h > l ? (h - l + 1) / 2 : 0);
        if (mid >= h)
            return false;
        if (range.compare_exchange_weak(r, pack(l, mid),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
            lo = mid;
            hi = h;
            return true;
        }
    }
}

} // anonymous namespace

size_t
defaultThreads()
{
    if (const char *env = std::getenv("DNASIM_THREADS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && v > 0)
            return static_cast<size_t>(v);
        warn("ignoring invalid DNASIM_THREADS='", env, "'");
    }
    size_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
setThreads(size_t n)
{
    if (n == 0)
        n = defaultThreads();
    configured_threads.store(n, std::memory_order_relaxed);
    ParStats::get().threads.set(static_cast<int64_t>(n));
    obs::setProvenanceThreads(n);
    // A pool that already exists was sized for the previous setting;
    // re-fit it (callers only change the count at quiescence).
    if (ThreadPool *pool = global_pool.load(std::memory_order_acquire))
        pool->resize(n - 1);
}

size_t
numThreads()
{
    size_t n = configured_threads.load(std::memory_order_relaxed);
    if (n == 0) {
        n = defaultThreads();
        // Benign race: every loser computes the same value.
        configured_threads.store(n, std::memory_order_relaxed);
        ParStats::get().threads.set(static_cast<int64_t>(n));
        obs::setProvenanceThreads(n);
    }
    return n;
}

bool
inParallelRegion()
{
    return in_region;
}

/** One parallel region: shards, completion state, error funnel. */
struct ThreadPool::Task
{
    /** A participant's index range, padded against false sharing. */
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> range{0};
    };

    std::vector<Shard> shards;
    std::atomic<size_t> remaining{0};
    std::atomic<bool> cancelled{false};
    size_t offset = 0;
    uint32_t grain = 1;
    const std::function<void(size_t, size_t)> *body = nullptr;

    // First exception thrown by the body (rethrown on the caller).
    std::mutex error_mutex;
    std::exception_ptr error;

    // Completion of the pool jobs spawned for this region, so the
    // caller can safely destroy the task.
    std::mutex done_mutex;
    std::condition_variable done_cv;
    size_t jobs_finished = 0;
    size_t jobs_spawned = 0;
};

ThreadPool &
ThreadPool::global()
{
    // Leaked: worker threads must never outlive the pool object, and
    // static destruction order against atexit report writers is
    // otherwise fragile.
    static ThreadPool *pool = [] {
        auto *p = new ThreadPool(numThreads() - 1);
        global_pool.store(p, std::memory_order_release);
        return p;
    }();
    return *pool;
}

ThreadPool::ThreadPool(size_t threads)
{
    resize(threads);
}

ThreadPool::~ThreadPool()
{
    resize(0);
}

void
ThreadPool::resize(size_t workers)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : workers_)
        t.join();
    workers_.clear();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = false;
        DNASIM_ASSERT(queue_.empty(),
                      "thread pool resized with queued work");
    }
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            job = std::move(queue_.back());
            queue_.pop_back();
        }
        job();
    }
}

void
ThreadPool::runTask(Task &task, size_t self)
{
    ParStats &ps = ParStats::get();
    const bool was_in_region = in_region;
    in_region = true;
    uint64_t busy_ns = 0;
    uint64_t cpu_ns = 0;
    uint64_t processed = 0;

    auto process = [&](uint32_t lo, uint32_t hi) {
        if (!task.cancelled.load(std::memory_order_relaxed)) {
            auto start = std::chrono::steady_clock::now();
            const uint64_t start_cpu = obs::threadCpuNs();
            try {
                (*task.body)(task.offset + lo, task.offset + hi);
            } catch (...) {
                task.cancelled.store(true,
                                     std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(task.error_mutex);
                if (!task.error)
                    task.error = std::current_exception();
            }
            busy_ns += static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count());
            cpu_ns += obs::threadCpuNs() - start_cpu;
        }
        processed += hi - lo;
        // release: pairs with the caller's acquire load so chunk
        // side effects are visible once remaining reaches zero.
        task.remaining.fetch_sub(hi - lo,
                                 std::memory_order_acq_rel);
    };

    uint32_t lo, hi;
    for (;;) {
        if (popChunk(task.shards[self].range, task.grain, lo, hi)) {
            process(lo, hi);
            continue;
        }
        bool stole = false;
        for (size_t k = 1; k < task.shards.size() && !stole; ++k) {
            size_t victim = (self + k) % task.shards.size();
            if (stealHalf(task.shards[victim].range, lo, hi)) {
                // Our shard is drained, so a plain store cannot
                // discard live indices; thieves only CAS on
                // non-empty ranges.
                task.shards[self].range.store(
                    pack(lo, hi), std::memory_order_release);
                ps.steals.inc();
                stole = true;
            }
        }
        if (stole)
            continue;
        if (task.remaining.load(std::memory_order_acquire) == 0)
            break;
        // Tail of the region: chunks are in flight elsewhere.
        std::this_thread::yield();
    }

    in_region = was_in_region;
    ps.busy_ns.add(busy_ns);
    ps.cpu_ns.add(cpu_ns);
    ps.items.add(processed);
    ps.worker_busy_us.record(busy_ns / 1000);
}

void
ThreadPool::forRange(size_t begin, size_t end, size_t grain,
                     size_t max_participants,
                     const std::function<void(size_t, size_t)> &body)
{
    DNASIM_ASSERT(end >= begin, "bad parallel range");
    const size_t n = end - begin;
    if (n == 0)
        return;
    DNASIM_ASSERT(n < (uint64_t{1} << 32),
                  "parallel range too large: ", n);

    ParStats &ps = ParStats::get();
    size_t participants =
        std::min({max_participants, numWorkers() + 1, n});
    if (participants <= 1 || in_region) {
        ps.serial_regions.inc();
        body(begin, end);
        return;
    }

    ps.regions.inc();
    obs::ScopedTimer region_timer(ps.region_time);

    Task task;
    task.offset = begin;
    task.grain = static_cast<uint32_t>(
        std::max<size_t>(1, std::min<size_t>(grain, UINT32_MAX)));
    task.body = &body;
    task.remaining.store(n, std::memory_order_relaxed);
    task.shards = std::vector<Task::Shard>(participants);
    // Even initial partition; stealing rebalances from there.
    for (size_t w = 0; w < participants; ++w) {
        uint32_t lo = static_cast<uint32_t>(n * w / participants);
        uint32_t hi =
            static_cast<uint32_t>(n * (w + 1) / participants);
        task.shards[w].range.store(pack(lo, hi),
                                   std::memory_order_relaxed);
    }

    task.jobs_spawned = participants - 1;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t w = 1; w < participants; ++w) {
            queue_.emplace_back([&task, w, this] {
                runTask(task, w);
                std::lock_guard<std::mutex> done_lock(
                    task.done_mutex);
                ++task.jobs_finished;
                task.done_cv.notify_all();
            });
        }
    }
    cv_.notify_all();

    runTask(task, 0);

    {
        std::unique_lock<std::mutex> lock(task.done_mutex);
        task.done_cv.wait(lock, [&task] {
            return task.jobs_finished == task.jobs_spawned;
        });
    }
    if (task.error)
        std::rethrow_exception(task.error);
}

} // namespace par
} // namespace dnasim
