/**
 * @file
 * XOR-group logical redundancy (Bornholt et al. [4]): every group of
 * g data blocks gains one parity block equal to their byte-wise XOR,
 * so any single missing block per group can be regenerated. Cheaper
 * but weaker than Reed-Solomon — exactly the trade-off the archival
 * pipeline lets callers choose between.
 */

#ifndef DNASIM_CODEC_XOR_REDUNDANCY_HH
#define DNASIM_CODEC_XOR_REDUNDANCY_HH

#include <optional>
#include <vector>

#include "codec/dna_codec.hh"

namespace dnasim
{

/** XOR-parity redundancy over fixed-size byte blocks. */
class XorRedundancy
{
  public:
    /** @param group_size number of data blocks per parity block. */
    explicit XorRedundancy(size_t group_size);

    size_t groupSize() const { return group_size_; }

    /** Number of blocks after encoding @p num_data blocks. */
    size_t encodedCount(size_t num_data) const;

    /**
     * Append parity blocks: after every @p group_size data blocks
     * (the last group may be short) one parity block is inserted.
     * All blocks must share one size.
     */
    std::vector<Bytes> encode(const std::vector<Bytes> &blocks) const;

    /**
     * Recover the data blocks from a (possibly incomplete) encoded
     * sequence.
     *
     * @param blocks  encoded blocks where a missing block is
     *                std::nullopt
     * @return the data blocks, or std::nullopt if some group lost
     *         two or more blocks
     */
    std::optional<std::vector<Bytes>>
    decode(const std::vector<std::optional<Bytes>> &blocks) const;

  private:
    size_t group_size_;
};

} // namespace dnasim

#endif // DNASIM_CODEC_XOR_REDUNDANCY_HH
