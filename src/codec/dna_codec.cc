#include "codec/dna_codec.hh"

#include <algorithm>

#include "base/logging.hh"

namespace dnasim
{

Strand
TrivialCodec::encode(const Bytes &data) const
{
    Strand out;
    out.reserve(data.size() * 4);
    for (uint8_t byte : data) {
        for (int shift = 6; shift >= 0; shift -= 2)
            out.push_back(kBaseChars[(byte >> shift) & 0x3]);
    }
    return out;
}

std::optional<Bytes>
TrivialCodec::decode(const Strand &strand, size_t expected_len) const
{
    if (strand.size() < expected_len * 4)
        return std::nullopt;
    Bytes out;
    out.reserve(expected_len);
    for (size_t i = 0; i < expected_len; ++i) {
        uint8_t byte = 0;
        for (size_t j = 0; j < 4; ++j) {
            byte = static_cast<uint8_t>(
                (byte << 2) |
                static_cast<uint8_t>(baseIndex(strand[i * 4 + j])));
        }
        out.push_back(byte);
    }
    return out;
}

size_t
TrivialCodec::encodedLength(size_t num_bytes) const
{
    return num_bytes * 4;
}

namespace
{

/** The three bases different from @p prev, in a fixed order. */
std::array<char, 3>
rotationAlphabet(char prev)
{
    std::array<char, 3> out{};
    size_t k = 0;
    for (char c : kBaseChars)
        if (c != prev)
            out[k++] = c;
    return out;
}

/** 40-bit block value from up to 5 bytes (zero-padded). */
uint64_t
packBlock(const Bytes &data, size_t offset)
{
    uint64_t value = 0;
    for (size_t i = 0; i < RotatingCodec::kBlockBytes; ++i) {
        value <<= 8;
        if (offset + i < data.size())
            value |= data[offset + i];
    }
    return value;
}

} // anonymous namespace

Strand
RotatingCodec::encode(const Bytes &data) const
{
    Strand out;
    out.reserve(encodedLength(data.size()));
    char prev = 'A'; // virtual predecessor; not emitted
    for (size_t offset = 0; offset < std::max<size_t>(data.size(), 1);
         offset += kBlockBytes) {
        uint64_t value = packBlock(data, offset);
        // Base-3 digits, most significant first.
        std::array<uint8_t, kBlockTrits> trits{};
        for (size_t i = kBlockTrits; i-- > 0;) {
            trits[i] = static_cast<uint8_t>(value % 3);
            value /= 3;
        }
        for (uint8_t trit : trits) {
            char c = rotationAlphabet(prev)[trit];
            out.push_back(c);
            prev = c;
        }
        if (data.empty())
            break;
    }
    return out;
}

std::optional<Bytes>
RotatingCodec::decode(const Strand &strand, size_t expected_len) const
{
    const size_t num_blocks =
        (std::max<size_t>(expected_len, 1) + kBlockBytes - 1) /
        kBlockBytes;
    if (strand.size() < num_blocks * kBlockTrits)
        return std::nullopt;

    Bytes out;
    out.reserve(num_blocks * kBlockBytes);
    char prev = 'A';
    size_t pos = 0;
    for (size_t blk = 0; blk < num_blocks; ++blk) {
        uint64_t value = 0;
        for (size_t i = 0; i < kBlockTrits; ++i) {
            char c = strand[pos++];
            auto alphabet = rotationAlphabet(prev);
            auto it = std::find(alphabet.begin(), alphabet.end(), c);
            if (it == alphabet.end()) {
                // A repeated base cannot occur in a valid rotating
                // encoding; the strand is corrupted beyond local
                // repair.
                return std::nullopt;
            }
            value = value * 3 +
                    static_cast<uint64_t>(it - alphabet.begin());
            prev = c;
        }
        for (size_t i = kBlockBytes; i-- > 0;)
            out.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
    out.resize(expected_len);
    return out;
}

size_t
RotatingCodec::encodedLength(size_t num_bytes) const
{
    const size_t blocks =
        (std::max<size_t>(num_bytes, 1) + kBlockBytes - 1) /
        kBlockBytes;
    return blocks * kBlockTrits;
}

} // namespace dnasim
