/**
 * @file
 * Systematic Reed-Solomon code over GF(256) with error-and-erasure
 * decoding (Berlekamp-Massey + Chien search + Forney).
 *
 * In the archival pipeline the code runs *across* strands: byte i of
 * every strand in a stripe forms one RS codeword, so a lost strand
 * is an erasure and a mis-reconstructed strand contributes errors
 * (section 1.1.3).
 */

#ifndef DNASIM_CODEC_REED_SOLOMON_HH
#define DNASIM_CODEC_REED_SOLOMON_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace dnasim
{

/** RS(n, k) over GF(256): n total symbols, k data symbols. */
class ReedSolomon
{
  public:
    /**
     * @param num_parity number of parity symbols (n - k); corrects
     *        e errors and s erasures while 2e + s <= num_parity.
     */
    explicit ReedSolomon(size_t num_parity);

    size_t numParity() const { return parity_; }

    /** Append @p numParity() parity symbols to @p data. */
    std::vector<uint8_t> encode(const std::vector<uint8_t> &data) const;

    /**
     * Decode a received codeword in place.
     *
     * @param codeword  data + parity symbols, possibly corrupted
     * @param erasures  known-bad positions (0-based into codeword)
     * @return the corrected data symbols, or std::nullopt if the
     *         error pattern exceeds the code's capability
     */
    std::optional<std::vector<uint8_t>>
    decode(std::vector<uint8_t> codeword,
           const std::vector<size_t> &erasures = {}) const;

    /** True iff @p codeword has all-zero syndromes. */
    bool isValid(const std::vector<uint8_t> &codeword) const;

  private:
    std::vector<uint8_t> syndromes(
        const std::vector<uint8_t> &codeword) const;

    size_t parity_;
    std::vector<uint8_t> generator_; ///< generator polynomial
};

} // namespace dnasim

#endif // DNASIM_CODEC_REED_SOLOMON_HH
