#include "codec/reed_solomon.hh"

#include <algorithm>

#include "base/logging.hh"
#include "codec/gf256.hh"

namespace dnasim
{

using namespace gf256;

namespace
{

std::vector<uint8_t>
polyScale(const std::vector<uint8_t> &p, uint8_t x)
{
    std::vector<uint8_t> out(p.size());
    for (size_t i = 0; i < p.size(); ++i)
        out[i] = mul(p[i], x);
    return out;
}

std::vector<uint8_t>
polyAdd(const std::vector<uint8_t> &a, const std::vector<uint8_t> &b)
{
    std::vector<uint8_t> out(std::max(a.size(), b.size()), 0);
    for (size_t i = 0; i < a.size(); ++i)
        out[i + out.size() - a.size()] ^= a[i];
    for (size_t i = 0; i < b.size(); ++i)
        out[i + out.size() - b.size()] ^= b[i];
    return out;
}

} // anonymous namespace

ReedSolomon::ReedSolomon(size_t num_parity)
    : parity_(num_parity)
{
    DNASIM_ASSERT(parity_ > 0 && parity_ < 255,
                  "bad parity count ", parity_);
    // generator = prod_{i=0}^{parity-1} (x - alpha^i)
    generator_ = {1};
    for (size_t i = 0; i < parity_; ++i)
        generator_ = polyMul(generator_, {1, alphaPow(static_cast<int>(i))});
}

std::vector<uint8_t>
ReedSolomon::encode(const std::vector<uint8_t> &data) const
{
    DNASIM_ASSERT(data.size() + parity_ <= 255,
                  "RS codeword longer than 255 symbols: ",
                  data.size() + parity_);
    // Systematic encoding: remainder of data * x^parity mod g(x).
    std::vector<uint8_t> padded = data;
    padded.resize(data.size() + parity_, 0);

    std::vector<uint8_t> rem = padded;
    for (size_t i = 0; i < data.size(); ++i) {
        uint8_t coef = rem[i];
        if (coef == 0)
            continue;
        for (size_t j = 1; j < generator_.size(); ++j)
            rem[i + j] ^= mul(generator_[j], coef);
    }
    std::vector<uint8_t> out = data;
    out.insert(out.end(), rem.end() - static_cast<ptrdiff_t>(parity_),
               rem.end());
    return out;
}

std::vector<uint8_t>
ReedSolomon::syndromes(const std::vector<uint8_t> &codeword) const
{
    std::vector<uint8_t> synd(parity_);
    for (size_t i = 0; i < parity_; ++i)
        synd[i] = polyEval(codeword, alphaPow(static_cast<int>(i)));
    return synd;
}

bool
ReedSolomon::isValid(const std::vector<uint8_t> &codeword) const
{
    auto synd = syndromes(codeword);
    return std::all_of(synd.begin(), synd.end(),
                       [](uint8_t s) { return s == 0; });
}

std::optional<std::vector<uint8_t>>
ReedSolomon::decode(std::vector<uint8_t> codeword,
                    const std::vector<size_t> &erasures) const
{
    const size_t n = codeword.size();
    if (n <= parity_ || n > 255)
        return std::nullopt;
    if (erasures.size() > parity_)
        return std::nullopt;
    for (size_t pos : erasures)
        if (pos >= n)
            return std::nullopt;

    auto synd = syndromes(codeword);
    bool clean = std::all_of(synd.begin(), synd.end(),
                             [](uint8_t s) { return s == 0; });
    if (clean) {
        codeword.resize(n - parity_);
        return codeword;
    }

    // Forney syndromes: cancel the known erasures out of the
    // syndromes so Berlekamp-Massey sees only the unknown errors.
    std::vector<uint8_t> fsynd = synd;
    for (size_t e = 0; e < erasures.size(); ++e) {
        uint8_t x = alphaPow(static_cast<int>(n - 1 - erasures[e]));
        for (size_t j = 0; j + 1 < fsynd.size(); ++j)
            fsynd[j] = static_cast<uint8_t>(mul(fsynd[j], x) ^
                                            fsynd[j + 1]);
    }

    // Berlekamp-Massey on the Forney syndromes.
    std::vector<uint8_t> err_loc = {1};
    std::vector<uint8_t> old_loc = {1};
    const size_t bm_rounds = parity_ - erasures.size();
    for (size_t i = 0; i < bm_rounds; ++i) {
        uint8_t delta = fsynd[i];
        for (size_t j = 1; j < err_loc.size(); ++j) {
            delta ^= mul(err_loc[err_loc.size() - 1 - j],
                         fsynd[i - j]);
        }
        old_loc.push_back(0);
        if (delta != 0) {
            if (old_loc.size() > err_loc.size()) {
                auto new_loc = polyScale(old_loc, delta);
                old_loc = polyScale(err_loc, inv(delta));
                err_loc = new_loc;
            }
            err_loc = polyAdd(err_loc, polyScale(old_loc, delta));
        }
    }
    while (!err_loc.empty() && err_loc.front() == 0)
        err_loc.erase(err_loc.begin());
    const size_t num_errors = err_loc.size() - 1;
    if (num_errors * 2 + erasures.size() > parity_)
        return std::nullopt;

    // Chien search: roots of the (reversed) locator give error
    // positions.
    std::vector<size_t> err_pos;
    std::vector<uint8_t> reversed_loc(err_loc.rbegin(),
                                      err_loc.rend());
    for (size_t i = 0; i < n; ++i) {
        if (polyEval(reversed_loc,
                     alphaPow(static_cast<int>(i))) == 0) {
            err_pos.push_back(n - 1 - i);
        }
    }
    if (err_pos.size() != num_errors)
        return std::nullopt;

    // Errata = errors + erasures; correct with Forney's algorithm.
    std::vector<size_t> errata = erasures;
    errata.insert(errata.end(), err_pos.begin(), err_pos.end());

    // Errata locator built from coefficient positions.
    std::vector<uint8_t> errata_loc = {1};
    std::vector<int> coef_pos;
    coef_pos.reserve(errata.size());
    for (size_t pos : errata) {
        int cp = static_cast<int>(n - 1 - pos);
        coef_pos.push_back(cp);
        // (alpha^cp * x + 1)
        errata_loc = polyMul(errata_loc, {alphaPow(cp), 1});
    }

    // Errata evaluator: synd (reversed, with a trailing zero — the
    // x factor that pairs with Forney's Xi multiplication below)
    // times errata_loc, mod x^(t+1), kept highest-degree-first.
    std::vector<uint8_t> synd_rev(synd.rbegin(), synd.rend());
    synd_rev.push_back(0);
    std::vector<uint8_t> product = polyMul(synd_rev, errata_loc);
    size_t keep = errata.size() + 1; // t + 1 low-order coefficients
    std::vector<uint8_t> err_eval;
    if (product.size() >= keep) {
        err_eval.assign(product.end() - static_cast<ptrdiff_t>(keep),
                        product.end());
    } else {
        err_eval = product;
    }

    // Forney: magnitude at each errata location.
    std::vector<uint8_t> big_x;
    big_x.reserve(coef_pos.size());
    for (int cp : coef_pos)
        big_x.push_back(alphaPow(cp - 255));

    for (size_t i = 0; i < big_x.size(); ++i) {
        uint8_t xi = big_x[i];
        uint8_t xi_inv = inv(xi);
        uint8_t loc_prime = 1;
        for (size_t j = 0; j < big_x.size(); ++j) {
            if (j == i)
                continue;
            loc_prime = mul(loc_prime,
                            static_cast<uint8_t>(1 ^
                                                 mul(xi_inv,
                                                     big_x[j])));
        }
        if (loc_prime == 0)
            return std::nullopt; // degenerate locator
        uint8_t y = polyEval(err_eval, xi_inv);
        y = mul(xi, y);
        uint8_t magnitude = gf256::div(y, loc_prime);
        codeword[errata[i]] ^= magnitude;
    }

    if (!isValid(codeword))
        return std::nullopt;
    codeword.resize(n - parity_);
    return codeword;
}

} // namespace dnasim
