/**
 * @file
 * Strand framing: how a file's payload blocks become addressable
 * strands.
 *
 * DNA storage is unordered, so every strand must carry its own
 * index (section 1.1). A frame is [index | payload | crc8]; the
 * CRC detects corrupted reconstructions so the decoder can treat
 * them as erasures rather than silently accepting bad data.
 */

#ifndef DNASIM_CODEC_FRAMING_HH
#define DNASIM_CODEC_FRAMING_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "codec/dna_codec.hh"

namespace dnasim
{

/** CRC-8 (poly 0x07) of a byte span. */
uint8_t crc8(const Bytes &data);

/** One addressable payload block. */
struct Frame
{
    uint32_t index = 0;
    Bytes payload;
};

/** Frame packing/unpacking configuration. */
class FrameCodec
{
  public:
    /**
     * @param payload_bytes  payload size per frame
     * @param index_bytes    width of the index field (1-4)
     */
    FrameCodec(size_t payload_bytes, size_t index_bytes = 2);

    size_t payloadBytes() const { return payload_bytes_; }
    size_t indexBytes() const { return index_bytes_; }

    /** Total serialized frame size: index + payload + crc. */
    size_t
    frameBytes() const
    {
        return index_bytes_ + payload_bytes_ + 1;
    }

    /** Split @p data into zero-padded frames with running indices. */
    std::vector<Frame> split(const Bytes &data) const;

    /** Serialize a frame: [index | payload | crc8]. */
    Bytes pack(const Frame &frame) const;

    /**
     * Parse a serialized frame, validating length and CRC.
     * Returns std::nullopt on any mismatch.
     */
    std::optional<Frame> unpack(const Bytes &raw) const;

    /**
     * Reassemble the payload stream from parsed frames.
     *
     * @param frames      parsed frames in any order
     * @param num_frames  the expected frame count
     * @param missing     out-param: indices never seen
     * @return the concatenated payloads (missing frames zero-filled)
     */
    Bytes reassemble(const std::vector<Frame> &frames,
                     size_t num_frames,
                     std::vector<uint32_t> *missing = nullptr) const;

  private:
    size_t payload_bytes_;
    size_t index_bytes_;
};

} // namespace dnasim

#endif // DNASIM_CODEC_FRAMING_HH
