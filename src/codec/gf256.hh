/**
 * @file
 * Arithmetic over GF(2^8) with the AES/QR polynomial 0x11d,
 * table-driven. Substrate for the Reed-Solomon code used by the
 * archival pipeline's logical redundancy (section 1.1.3; Grass et
 * al. [12] used RS codes for DNA storage).
 */

#ifndef DNASIM_CODEC_GF256_HH
#define DNASIM_CODEC_GF256_HH

#include <cstdint>
#include <vector>

namespace dnasim
{

/** Table-driven GF(256) arithmetic. */
namespace gf256
{

/** Multiply two field elements. */
uint8_t mul(uint8_t a, uint8_t b);

/** Divide @p a by @p b; asserts b != 0. */
uint8_t div(uint8_t a, uint8_t b);

/** Multiplicative inverse; asserts a != 0. */
uint8_t inv(uint8_t a);

/** @p base raised to @p power (power may be any integer). */
uint8_t pow(uint8_t base, int power);

/** The generator alpha (= 2) raised to @p power. */
uint8_t alphaPow(int power);

/** Discrete log base alpha; asserts a != 0. */
int alphaLog(uint8_t a);

/** Evaluate polynomial @p poly (highest degree first) at @p x. */
uint8_t polyEval(const std::vector<uint8_t> &poly, uint8_t x);

/** Multiply two polynomials (highest degree first). */
std::vector<uint8_t> polyMul(const std::vector<uint8_t> &a,
                             const std::vector<uint8_t> &b);

} // namespace gf256

} // namespace dnasim

#endif // DNASIM_CODEC_GF256_HH
