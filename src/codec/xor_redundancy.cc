#include "codec/xor_redundancy.hh"

#include "base/logging.hh"

namespace dnasim
{

XorRedundancy::XorRedundancy(size_t group_size)
    : group_size_(group_size)
{
    DNASIM_ASSERT(group_size_ > 0, "zero XOR group size");
}

size_t
XorRedundancy::encodedCount(size_t num_data) const
{
    size_t groups = (num_data + group_size_ - 1) / group_size_;
    return num_data + groups;
}

std::vector<Bytes>
XorRedundancy::encode(const std::vector<Bytes> &blocks) const
{
    std::vector<Bytes> out;
    out.reserve(encodedCount(blocks.size()));
    size_t in_group = 0;
    Bytes parity;
    for (const auto &block : blocks) {
        DNASIM_ASSERT(parity.empty() || in_group == 0 ||
                          block.size() == parity.size(),
                      "XOR blocks must share one size");
        if (in_group == 0)
            parity.assign(block.size(), 0);
        for (size_t i = 0; i < block.size(); ++i)
            parity[i] ^= block[i];
        out.push_back(block);
        if (++in_group == group_size_) {
            out.push_back(parity);
            in_group = 0;
        }
    }
    if (in_group > 0)
        out.push_back(parity);
    return out;
}

std::optional<std::vector<Bytes>>
XorRedundancy::decode(
    const std::vector<std::optional<Bytes>> &blocks) const
{
    std::vector<Bytes> data;
    size_t pos = 0;
    while (pos < blocks.size()) {
        size_t group_data =
            std::min(group_size_, blocks.size() - pos - 1);
        size_t group_total = group_data + 1; // + parity

        // Count missing blocks and find the block size.
        size_t missing = 0;
        size_t missing_idx = 0;
        size_t block_size = 0;
        for (size_t i = 0; i < group_total; ++i) {
            const auto &b = blocks[pos + i];
            if (!b.has_value()) {
                ++missing;
                missing_idx = i;
            } else {
                block_size = b->size();
            }
        }
        if (missing > 1)
            return std::nullopt;

        if (missing == 1) {
            Bytes rebuilt(block_size, 0);
            for (size_t i = 0; i < group_total; ++i) {
                if (i == missing_idx)
                    continue;
                const Bytes &b = *blocks[pos + i];
                if (b.size() != block_size)
                    return std::nullopt;
                for (size_t k = 0; k < block_size; ++k)
                    rebuilt[k] ^= b[k];
            }
            for (size_t i = 0; i < group_data; ++i) {
                data.push_back(i == missing_idx ? rebuilt
                                                : *blocks[pos + i]);
            }
        } else {
            for (size_t i = 0; i < group_data; ++i)
                data.push_back(*blocks[pos + i]);
        }
        pos += group_total;
    }
    return data;
}

} // namespace dnasim
