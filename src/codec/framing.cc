#include "codec/framing.hh"

#include <algorithm>

#include "base/logging.hh"

namespace dnasim
{

uint8_t
crc8(const Bytes &data)
{
    uint8_t crc = 0;
    for (uint8_t byte : data) {
        crc ^= byte;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 0x80)
                crc = static_cast<uint8_t>((crc << 1) ^ 0x07);
            else
                crc = static_cast<uint8_t>(crc << 1);
        }
    }
    return crc;
}

FrameCodec::FrameCodec(size_t payload_bytes, size_t index_bytes)
    : payload_bytes_(payload_bytes), index_bytes_(index_bytes)
{
    DNASIM_ASSERT(payload_bytes_ > 0, "zero payload size");
    DNASIM_ASSERT(index_bytes_ >= 1 && index_bytes_ <= 4,
                  "index width must be 1-4 bytes");
}

std::vector<Frame>
FrameCodec::split(const Bytes &data) const
{
    std::vector<Frame> frames;
    const size_t count =
        data.empty() ? 1
                     : (data.size() + payload_bytes_ - 1) /
                           payload_bytes_;
    const uint64_t max_index = (1ULL << (8 * index_bytes_)) - 1;
    DNASIM_ASSERT(count - 1 <= max_index,
                  "file needs ", count, " frames but index width ",
                  index_bytes_, " only addresses ", max_index + 1);
    frames.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        Frame f;
        f.index = static_cast<uint32_t>(i);
        size_t lo = i * payload_bytes_;
        size_t hi = std::min(data.size(), lo + payload_bytes_);
        f.payload.assign(data.begin() + static_cast<ptrdiff_t>(lo),
                         data.begin() + static_cast<ptrdiff_t>(hi));
        f.payload.resize(payload_bytes_, 0);
        frames.push_back(std::move(f));
    }
    return frames;
}

Bytes
FrameCodec::pack(const Frame &frame) const
{
    DNASIM_ASSERT(frame.payload.size() == payload_bytes_,
                  "payload size mismatch");
    Bytes out;
    out.reserve(frameBytes());
    for (size_t i = index_bytes_; i-- > 0;)
        out.push_back(
            static_cast<uint8_t>((frame.index >> (8 * i)) & 0xff));
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
    out.push_back(crc8(out));
    return out;
}

std::optional<Frame>
FrameCodec::unpack(const Bytes &raw) const
{
    if (raw.size() != frameBytes())
        return std::nullopt;
    Bytes body(raw.begin(), raw.end() - 1);
    if (crc8(body) != raw.back())
        return std::nullopt;
    Frame f;
    for (size_t i = 0; i < index_bytes_; ++i)
        f.index = (f.index << 8) | raw[i];
    f.payload.assign(raw.begin() + static_cast<ptrdiff_t>(index_bytes_),
                     raw.end() - 1);
    return f;
}

Bytes
FrameCodec::reassemble(const std::vector<Frame> &frames,
                       size_t num_frames,
                       std::vector<uint32_t> *missing) const
{
    Bytes out(num_frames * payload_bytes_, 0);
    std::vector<bool> seen(num_frames, false);
    for (const auto &f : frames) {
        if (f.index >= num_frames || seen[f.index])
            continue;
        seen[f.index] = true;
        std::copy(f.payload.begin(), f.payload.end(),
                  out.begin() +
                      static_cast<ptrdiff_t>(f.index * payload_bytes_));
    }
    if (missing) {
        missing->clear();
        for (size_t i = 0; i < num_frames; ++i)
            if (!seen[i])
                missing->push_back(static_cast<uint32_t>(i));
    }
    return out;
}

} // namespace dnasim
