/**
 * @file
 * Binary <-> DNA codecs (section 1.1's encode/decode step).
 *
 * Two codecs are provided:
 *
 *  - TrivialCodec: 2 bits per base (A=00, C=01, G=10, T=11), the
 *    theoretical-maximum density of [13]; makes no effort to avoid
 *    homopolymers.
 *  - RotatingCodec: a Goldman-style rotating code [11] that encodes
 *    base-3 digits, always choosing among the three bases different
 *    from the previous one — the output contains no homopolymer runs
 *    at all, at a density of log2(3) ~ 1.58 bits per base.
 */

#ifndef DNASIM_CODEC_DNA_CODEC_HH
#define DNASIM_CODEC_DNA_CODEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/dna.hh"

namespace dnasim
{

using Bytes = std::vector<uint8_t>;

/** Binary <-> DNA transformation. */
class DnaCodec
{
  public:
    virtual ~DnaCodec() = default;

    /** Encode bytes into a strand. */
    virtual Strand encode(const Bytes &data) const = 0;

    /**
     * Decode a strand back into bytes.
     *
     * @param strand       the (possibly corrupted) strand
     * @param expected_len the original payload size in bytes
     * @return the payload, or std::nullopt if the strand cannot
     *         possibly decode (e.g. too short)
     */
    virtual std::optional<Bytes> decode(const Strand &strand,
                                        size_t expected_len) const = 0;

    /** Strand length produced for a payload of @p num_bytes. */
    virtual size_t encodedLength(size_t num_bytes) const = 0;

    virtual std::string name() const = 0;
};

/** 2 bits per base. */
class TrivialCodec : public DnaCodec
{
  public:
    Strand encode(const Bytes &data) const override;
    std::optional<Bytes> decode(const Strand &strand,
                                size_t expected_len) const override;
    size_t encodedLength(size_t num_bytes) const override;
    std::string name() const override { return "trivial"; }
};

/**
 * Homopolymer-free rotating code. Bytes are processed in blocks of
 * 5 (40 bits), each block becoming 26 base-3 digits (3^26 > 2^40);
 * each digit selects one of the three bases differing from the
 * previous output base.
 */
class RotatingCodec : public DnaCodec
{
  public:
    Strand encode(const Bytes &data) const override;
    std::optional<Bytes> decode(const Strand &strand,
                                size_t expected_len) const override;
    size_t encodedLength(size_t num_bytes) const override;
    std::string name() const override { return "rotating"; }

    /// Bytes per block and trits per block (3^26 > 2^40).
    static constexpr size_t kBlockBytes = 5;
    static constexpr size_t kBlockTrits = 26;
};

} // namespace dnasim

#endif // DNASIM_CODEC_DNA_CODEC_HH
