#include "codec/gf256.hh"

#include <array>

#include "base/logging.hh"

namespace dnasim
{
namespace gf256
{

namespace
{

struct Tables
{
    std::array<uint8_t, 512> exp{};
    std::array<int, 256> log{};

    Tables()
    {
        uint16_t x = 1;
        for (int i = 0; i < 255; ++i) {
            exp[i] = static_cast<uint8_t>(x);
            log[x] = i;
            x <<= 1;
            if (x & 0x100)
                x ^= 0x11d;
        }
        for (int i = 255; i < 512; ++i)
            exp[i] = exp[i - 255];
        log[0] = -1;
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

} // anonymous namespace

uint8_t
mul(uint8_t a, uint8_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const auto &t = tables();
    return t.exp[t.log[a] + t.log[b]];
}

uint8_t
div(uint8_t a, uint8_t b)
{
    DNASIM_ASSERT(b != 0, "GF(256) division by zero");
    if (a == 0)
        return 0;
    const auto &t = tables();
    return t.exp[(t.log[a] - t.log[b] + 255) % 255];
}

uint8_t
inv(uint8_t a)
{
    DNASIM_ASSERT(a != 0, "GF(256) inverse of zero");
    const auto &t = tables();
    return t.exp[255 - t.log[a]];
}

uint8_t
pow(uint8_t base, int power)
{
    if (base == 0)
        return power == 0 ? 1 : 0;
    const auto &t = tables();
    int e = (t.log[base] * power) % 255;
    if (e < 0)
        e += 255;
    return t.exp[e];
}

uint8_t
alphaPow(int power)
{
    const auto &t = tables();
    int e = power % 255;
    if (e < 0)
        e += 255;
    return t.exp[e];
}

int
alphaLog(uint8_t a)
{
    DNASIM_ASSERT(a != 0, "GF(256) log of zero");
    return tables().log[a];
}

uint8_t
polyEval(const std::vector<uint8_t> &poly, uint8_t x)
{
    uint8_t acc = 0;
    for (uint8_t coeff : poly)
        acc = static_cast<uint8_t>(mul(acc, x) ^ coeff);
    return acc;
}

std::vector<uint8_t>
polyMul(const std::vector<uint8_t> &a, const std::vector<uint8_t> &b)
{
    if (a.empty() || b.empty())
        return {};
    std::vector<uint8_t> out(a.size() + b.size() - 1, 0);
    for (size_t i = 0; i < a.size(); ++i)
        for (size_t j = 0; j < b.size(); ++j)
            out[i + j] ^= mul(a[i], b[j]);
    return out;
}

} // namespace gf256
} // namespace dnasim
