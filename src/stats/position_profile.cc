#include "stats/position_profile.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"

namespace dnasim
{

PositionProfile::PositionProfile(std::vector<double> multipliers)
    : multipliers_(std::move(multipliers))
{
    for (double m : multipliers_)
        DNASIM_ASSERT(m >= 0.0, "negative position multiplier");
    normalize();
}

void
PositionProfile::normalize()
{
    if (multipliers_.empty())
        return;
    double sum = 0.0;
    for (double m : multipliers_)
        sum += m;
    DNASIM_ASSERT(sum > 0.0, "position profile with zero total mass");
    double scale = static_cast<double>(multipliers_.size()) / sum;
    for (double &m : multipliers_)
        m *= scale;
}

PositionProfile
PositionProfile::uniform(size_t len)
{
    DNASIM_ASSERT(len > 0, "uniform profile of zero length");
    return PositionProfile(std::vector<double>(len, 1.0));
}

PositionProfile
PositionProfile::terminalSkew(size_t len, double head_mult,
                              double tail_mult, size_t n_head)
{
    DNASIM_ASSERT(len > 0, "terminalSkew profile of zero length");
    DNASIM_ASSERT(head_mult >= 0.0 && tail_mult >= 0.0,
                  "negative skew multiplier");
    std::vector<double> m(len, 1.0);
    for (size_t i = 0; i < std::min(n_head, len); ++i)
        m[i] = head_mult;
    m[len - 1] = tail_mult;
    return PositionProfile(std::move(m));
}

PositionProfile
PositionProfile::aShaped(size_t len)
{
    DNASIM_ASSERT(len > 0, "aShaped profile of zero length");
    std::vector<double> m(len);
    for (size_t i = 0; i < len; ++i) {
        double u = len == 1 ? 0.5
                            : static_cast<double>(i) /
                                  static_cast<double>(len - 1);
        m[i] = 1.0 - std::abs(2.0 * u - 1.0);
    }
    // Avoid exactly-zero endpoints so every position can still err.
    for (double &x : m)
        x = std::max(x, 1e-3);
    return PositionProfile(std::move(m));
}

PositionProfile
PositionProfile::vShaped(size_t len)
{
    DNASIM_ASSERT(len > 0, "vShaped profile of zero length");
    std::vector<double> m(len);
    for (size_t i = 0; i < len; ++i) {
        double u = len == 1 ? 0.5
                            : static_cast<double>(i) /
                                  static_cast<double>(len - 1);
        m[i] = std::abs(2.0 * u - 1.0);
    }
    for (double &x : m)
        x = std::max(x, 1e-3);
    return PositionProfile(std::move(m));
}

PositionProfile
PositionProfile::fromHistogram(const Histogram &errors, size_t len,
                               double floor)
{
    DNASIM_ASSERT(len > 0, "fromHistogram profile of zero length");
    DNASIM_ASSERT(floor >= 0.0, "negative smoothing floor");
    std::vector<double> m(len, 0.0);
    for (size_t i = 0; i < len; ++i) {
        size_t bin = std::min(i, errors.numBins() > 0
                                     ? errors.numBins() - 1
                                     : size_t(0));
        m[i] = static_cast<double>(errors.count(bin));
    }
    double sum = 0.0;
    for (double x : m)
        sum += x;
    if (sum <= 0.0)
        return PositionProfile(); // no mass: behave as uniform

    // Apply the floor relative to the mean mass.
    double mean = sum / static_cast<double>(len);
    for (double &x : m)
        x = std::max(x, floor * mean);
    return PositionProfile(std::move(m));
}

double
PositionProfile::multiplier(size_t pos, size_t len) const
{
    if (multipliers_.empty() || len == 0)
        return 1.0;
    if (len == multipliers_.size()) {
        size_t p = std::min(pos, multipliers_.size() - 1);
        return multipliers_[p];
    }
    // Rescale by relative position.
    double u = len == 1 ? 0.5
                        : static_cast<double>(std::min(pos, len - 1)) /
                              static_cast<double>(len - 1);
    double x = u * static_cast<double>(multipliers_.size() - 1);
    size_t lo = static_cast<size_t>(x);
    size_t hi = std::min(lo + 1, multipliers_.size() - 1);
    double frac = x - static_cast<double>(lo);
    return multipliers_[lo] * (1.0 - frac) + multipliers_[hi] * frac;
}

PositionProfile
PositionProfile::resampled(size_t len) const
{
    DNASIM_ASSERT(len > 0, "resample to zero length");
    if (multipliers_.empty())
        return PositionProfile();
    std::vector<double> m(len);
    for (size_t i = 0; i < len; ++i)
        m[i] = multiplier(i, len);
    return PositionProfile(std::move(m));
}

PositionProfile
PositionProfile::reversed() const
{
    if (multipliers_.empty())
        return PositionProfile();
    std::vector<double> m(multipliers_.rbegin(), multipliers_.rend());
    return PositionProfile(std::move(m));
}

std::string
PositionProfile::str() const
{
    if (multipliers_.empty())
        return "uniform";
    std::ostringstream os;
    os << "profile[len=" << multipliers_.size() << " head=("
       << multipliers_.front();
    if (multipliers_.size() > 1)
        os << "," << multipliers_[1];
    os << ") mid=" << multipliers_[multipliers_.size() / 2]
       << " tail=" << multipliers_.back() << "]";
    return os.str();
}

} // namespace dnasim
