#include "stats/histogram.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace dnasim
{

void
Histogram::add(size_t bin, uint64_t weight)
{
    if (bin >= counts_.size())
        counts_.resize(bin + 1, 0);
    counts_[bin] += weight;
}

uint64_t
Histogram::count(size_t bin) const
{
    return bin < counts_.size() ? counts_[bin] : 0;
}

uint64_t
Histogram::total() const
{
    uint64_t sum = 0;
    for (uint64_t c : counts_)
        sum += c;
    return sum;
}

double
Histogram::fraction(size_t bin) const
{
    uint64_t t = total();
    if (t == 0)
        return 0.0;
    return static_cast<double>(count(bin)) / static_cast<double>(t);
}

std::vector<double>
Histogram::normalized() const
{
    uint64_t t = total();
    std::vector<double> out(counts_.size(), 0.0);
    if (t == 0)
        return out;
    for (size_t i = 0; i < counts_.size(); ++i)
        out[i] = static_cast<double>(counts_[i]) / static_cast<double>(t);
    return out;
}

double
Histogram::meanBin() const
{
    uint64_t t = total();
    if (t == 0)
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i)
        acc += static_cast<double>(i) * static_cast<double>(counts_[i]);
    return acc / static_cast<double>(t);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.counts_.size() > counts_.size())
        counts_.resize(other.counts_.size(), 0);
    for (size_t i = 0; i < other.counts_.size(); ++i)
        counts_[i] += other.counts_[i];
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
}

std::string
Histogram::str() const
{
    std::ostringstream os;
    bool first = true;
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        if (!first)
            os << " ";
        os << i << ":" << counts_[i];
        first = false;
    }
    return os.str();
}

double
chiSquareDistance(const Histogram &a, const Histogram &b)
{
    return chiSquareDistance(a.normalized(), b.normalized());
}

double
chiSquareDistance(const std::vector<double> &p, const std::vector<double> &q)
{
    size_t n = std::max(p.size(), q.size());
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double pi = i < p.size() ? p[i] : 0.0;
        double qi = i < q.size() ? q[i] : 0.0;
        double denom = pi + qi;
        if (denom <= 0.0)
            continue;
        double d = pi - qi;
        acc += d * d / denom;
    }
    return 0.5 * acc;
}

} // namespace dnasim
