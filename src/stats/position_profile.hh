/**
 * @file
 * Spatial (positional) error distributions within a strand.
 *
 * The paper's central insight is that the spatial distribution of
 * errors is a key determinant of trace-reconstruction accuracy
 * (section 3.3.2). A PositionProfile captures that distribution as a
 * vector of per-position rate *multipliers*, normalized to mean 1 so
 * that applying a profile never changes a model's aggregate error
 * rate, only where within the strand the errors land.
 */

#ifndef DNASIM_STATS_POSITION_PROFILE_HH
#define DNASIM_STATS_POSITION_PROFILE_HH

#include <string>
#include <vector>

#include "stats/histogram.hh"

namespace dnasim
{

/**
 * Per-position error-rate multipliers over a strand of fixed design
 * length, normalized to mean 1.
 */
class PositionProfile
{
  public:
    /** An empty profile behaves as uniform for any length. */
    PositionProfile() = default;

    /** Uniform profile (all multipliers 1) of length @p len. */
    static PositionProfile uniform(size_t len);

    /**
     * Terminal-skew profile of the kind observed in the Nanopore
     * dataset (Fig. 3.2b): positions 0 .. @p n_head - 1 carry
     * @p head_mult times, and the final position @p tail_mult times,
     * the interior rate, before renormalization to mean 1.
     */
    static PositionProfile terminalSkew(size_t len, double head_mult,
                                        double tail_mult,
                                        size_t n_head = 2);

    /**
     * A-shaped profile (triangular, peak mid-strand): multiplier
     * 2 * (1 - |2u - 1|) at relative position u, mean 1. This is the
     * normalized form of the paper's triangular distribution with
     * a = 0, b = 0.30, mean 0.15 (section 3.4.2).
     */
    static PositionProfile aShaped(size_t len);

    /** V-shaped profile: the inversion of aShaped, 2 * |2u - 1|. */
    static PositionProfile vShaped(size_t len);

    /**
     * Calibrated profile from a positional error histogram: the
     * multiplier of each position is proportional to its observed
     * error mass. Positions past the histogram's bins get multiplier
     * equal to the last bin's. A smoothing floor keeps all
     * multipliers >= @p floor to avoid degenerate zero-rate
     * positions when calibrating from sparse data.
     */
    static PositionProfile fromHistogram(const Histogram &errors,
                                         size_t len, double floor = 0.0);

    /** True if no explicit multipliers are set (uniform behaviour). */
    bool isUniform() const { return multipliers_.empty(); }

    /** Design length this profile was built for (0 if uniform). */
    size_t length() const { return multipliers_.size(); }

    /**
     * Multiplier for position @p pos in a strand of length @p len.
     *
     * If @p len differs from the design length the profile is
     * rescaled by linear interpolation over relative position, so the
     * same shape applies to any strand length.
     */
    double multiplier(size_t pos, size_t len) const;

    /** The raw multiplier vector (empty for uniform). */
    const std::vector<double> &multipliers() const { return multipliers_; }

    /**
     * Profile with the same shape resampled to length @p len
     * (linear interpolation, then renormalized to mean 1).
     */
    PositionProfile resampled(size_t len) const;

    /** Reversed profile (shape mirrored end-for-end). */
    PositionProfile reversed() const;

    /** Short description for reports. */
    std::string str() const;

  private:
    explicit PositionProfile(std::vector<double> multipliers);

    /** Scale so the mean multiplier is exactly 1. */
    void normalize();

    std::vector<double> multipliers_;
};

} // namespace dnasim

#endif // DNASIM_STATS_POSITION_PROFILE_HH
