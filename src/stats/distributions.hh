/**
 * @file
 * Samplers beyond what base/rng.hh provides directly: triangular
 * distributions (the paper's A-shaped spatial curve) and reusable
 * cumulative samplers over discrete weights.
 */

#ifndef DNASIM_STATS_DISTRIBUTIONS_HH
#define DNASIM_STATS_DISTRIBUTIONS_HH

#include <vector>

#include "base/rng.hh"

namespace dnasim
{

/**
 * Triangular distribution on [a, b] with mode c.
 *
 * Used for the paper's A-shaped spatial error distribution
 * (a = 0, b = 0.30, mean 0.15, i.e. mode at the midpoint).
 */
class TriangularDist
{
  public:
    TriangularDist(double a, double c, double b);

    double a() const { return a_; }
    double c() const { return c_; }
    double b() const { return b_; }

    /** Probability density at @p x. */
    double pdf(double x) const;

    /** Cumulative distribution function at @p x. */
    double cdf(double x) const;

    /** Draw a sample via inverse-CDF. */
    double sample(Rng &rng) const;

    /** Mean (a + b + c) / 3. */
    double mean() const { return (a_ + b_ + c_) / 3.0; }

  private:
    double a_, c_, b_;
};

/**
 * Precomputed cumulative sampler over fixed non-negative weights.
 *
 * O(log n) sampling; used on hot paths (confusion-matrix rows,
 * long-deletion length draws) where rebuilding a discrete
 * distribution per draw would dominate.
 */
class CumulativeSampler
{
  public:
    CumulativeSampler() = default;

    /** Build from unnormalized non-negative weights (sum must be > 0). */
    explicit CumulativeSampler(std::vector<double> weights);

    /** True once built with valid weights. */
    bool valid() const { return !cumulative_.empty(); }

    /** Number of categories. */
    size_t size() const { return cumulative_.size(); }

    /** Draw a category index. */
    size_t sample(Rng &rng) const;

    /** Normalized probability of category @p i. */
    double probability(size_t i) const;

  private:
    std::vector<double> cumulative_;
};

} // namespace dnasim

#endif // DNASIM_STATS_DISTRIBUTIONS_HH
