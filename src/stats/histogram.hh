/**
 * @file
 * Integer-binned histograms used for positional error profiles and
 * length distributions.
 */

#ifndef DNASIM_STATS_HISTOGRAM_HH
#define DNASIM_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dnasim
{

/**
 * A histogram over non-negative integer bins (e.g. strand positions,
 * deletion lengths). Bins grow on demand.
 */
class Histogram
{
  public:
    Histogram() = default;

    /** Construct with @p bins zero-count bins preallocated. */
    explicit Histogram(size_t bins) : counts_(bins, 0) {}

    /** Add @p weight to bin @p bin (bins grow on demand). */
    void add(size_t bin, uint64_t weight = 1);

    /** Count in bin @p bin (0 for bins never touched). */
    uint64_t count(size_t bin) const;

    /** Number of bins (highest touched bin + 1, or preallocation). */
    size_t numBins() const { return counts_.size(); }

    /** Sum of all counts. */
    uint64_t total() const;

    /** Fraction of total mass in bin @p bin (0 if empty histogram). */
    double fraction(size_t bin) const;

    /** All counts as a vector. */
    const std::vector<uint64_t> &counts() const { return counts_; }

    /** Normalized mass per bin (sums to 1; empty if no mass). */
    std::vector<double> normalized() const;

    /** Mean of the bin-index distribution (0 if empty). */
    double meanBin() const;

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    /** Reset all counts to zero, keeping the bin count. */
    void clear();

    /** Render as "bin:count" pairs, skipping empty bins. */
    std::string str() const;

  private:
    std::vector<uint64_t> counts_;
};

/**
 * Chi-square distance between two discrete distributions:
 * 0.5 * sum_i (p_i - q_i)^2 / (p_i + q_i), over normalized masses.
 *
 * Bins where both masses are zero contribute nothing. The result is
 * in [0, 1]; 0 means identical distributions.
 */
double chiSquareDistance(const Histogram &a, const Histogram &b);

/** Chi-square distance between pre-normalized mass vectors. */
double chiSquareDistance(const std::vector<double> &p,
                         const std::vector<double> &q);

} // namespace dnasim

#endif // DNASIM_STATS_HISTOGRAM_HH
