#include "stats/summary.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "base/logging.hh"

namespace dnasim
{

std::string
Summary::str() const
{
    std::ostringstream os;
    os << "n=" << count << " mean=" << mean << " sd=" << stddev
       << " min=" << min << " med=" << median << " max=" << max;
    return os.str();
}

Summary
summarize(std::span<const double> xs)
{
    Summary s;
    s.count = xs.size();
    if (xs.empty())
        return s;

    double sum = 0.0;
    s.min = xs[0];
    s.max = xs[0];
    for (double x : xs) {
        sum += x;
        s.min = std::min(s.min, x);
        s.max = std::max(s.max, x);
    }
    s.mean = sum / static_cast<double>(xs.size());

    double ss = 0.0;
    for (double x : xs) {
        double d = x - s.mean;
        ss += d * d;
    }
    s.variance = ss / static_cast<double>(xs.size());
    s.stddev = std::sqrt(s.variance);
    s.median = quantile(xs, 0.5);
    return s;
}

double
quantile(std::span<const double> xs, double q)
{
    DNASIM_ASSERT(!xs.empty(), "quantile of empty sample");
    DNASIM_ASSERT(q >= 0.0 && q <= 1.0, "quantile q out of range: ", q);
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted[0];
    double pos = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace dnasim
