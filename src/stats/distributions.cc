#include "stats/distributions.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace dnasim
{

TriangularDist::TriangularDist(double a, double c, double b)
    : a_(a), c_(c), b_(b)
{
    DNASIM_ASSERT(a <= c && c <= b && a < b,
                  "bad triangular params a=", a, " c=", c, " b=", b);
}

double
TriangularDist::pdf(double x) const
{
    if (x < a_ || x > b_)
        return 0.0;
    if (x < c_)
        return 2.0 * (x - a_) / ((b_ - a_) * (c_ - a_));
    if (x > c_)
        return 2.0 * (b_ - x) / ((b_ - a_) * (b_ - c_));
    return 2.0 / (b_ - a_);
}

double
TriangularDist::cdf(double x) const
{
    if (x <= a_)
        return 0.0;
    if (x >= b_)
        return 1.0;
    if (x <= c_)
        return (x - a_) * (x - a_) / ((b_ - a_) * (c_ - a_));
    return 1.0 - (b_ - x) * (b_ - x) / ((b_ - a_) * (b_ - c_));
}

double
TriangularDist::sample(Rng &rng) const
{
    double u = rng.uniform();
    double fc = (c_ - a_) / (b_ - a_);
    if (u < fc)
        return a_ + std::sqrt(u * (b_ - a_) * (c_ - a_));
    return b_ - std::sqrt((1.0 - u) * (b_ - a_) * (b_ - c_));
}

CumulativeSampler::CumulativeSampler(std::vector<double> weights)
{
    double acc = 0.0;
    cumulative_.reserve(weights.size());
    for (double w : weights) {
        DNASIM_ASSERT(w >= 0.0, "negative weight in CumulativeSampler");
        acc += w;
        cumulative_.push_back(acc);
    }
    DNASIM_ASSERT(acc > 0.0, "CumulativeSampler with zero total weight");
    for (double &c : cumulative_)
        c /= acc;
}

size_t
CumulativeSampler::sample(Rng &rng) const
{
    DNASIM_ASSERT(valid(), "sampling from empty CumulativeSampler");
    double u = rng.uniform();
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    if (it == cumulative_.end())
        return cumulative_.size() - 1;
    return static_cast<size_t>(it - cumulative_.begin());
}

double
CumulativeSampler::probability(size_t i) const
{
    DNASIM_ASSERT(i < cumulative_.size(), "category out of range");
    double lo = i == 0 ? 0.0 : cumulative_[i - 1];
    return cumulative_[i] - lo;
}

} // namespace dnasim
