/**
 * @file
 * Summary statistics over samples.
 */

#ifndef DNASIM_STATS_SUMMARY_HH
#define DNASIM_STATS_SUMMARY_HH

#include <span>
#include <string>

namespace dnasim
{

/** Basic descriptive statistics of a sample. */
struct Summary
{
    size_t count = 0;
    double mean = 0.0;
    double variance = 0.0; ///< population variance
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;

    /** One-line human-readable rendering. */
    std::string str() const;
};

/** Compute summary statistics of @p xs (empty input yields zeros). */
Summary summarize(std::span<const double> xs);

/**
 * The @p q quantile (0 <= q <= 1) of @p xs using linear interpolation
 * between order statistics. Asserts on empty input.
 */
double quantile(std::span<const double> xs, double q);

} // namespace dnasim

#endif // DNASIM_STATS_SUMMARY_HH
