/**
 * @file
 * The full parameter set of the dnasim error model.
 *
 * An ErrorProfile holds every statistic the simulator can be
 * conditioned on, layered exactly as the paper introduces them
 * (section 3.3):
 *
 *  1. aggregate insertion / deletion / substitution rates (the naive
 *     model's only inputs);
 *  2. base-conditional rates, a substitution confusion matrix, an
 *     inserted-base distribution, and long-deletion statistics
 *     (section 3.3.1);
 *  3. an aggregate spatial (positional) error distribution
 *     (section 3.3.2);
 *  4. a table of second-order errors — specific (type, base[, repl])
 *     events with their own rates and spatial distributions
 *     (section 3.3.3).
 *
 * Profiles are produced either by hand (synthetic experiments) or by
 * the data-driven ErrorProfiler (core/profiler.hh).
 */

#ifndef DNASIM_CORE_ERROR_PROFILE_HH
#define DNASIM_CORE_ERROR_PROFILE_HH

#include <array>
#include <string>
#include <vector>

#include "align/edit_distance.hh"
#include "base/dna.hh"
#include "stats/position_profile.hh"

namespace dnasim
{

/** Identity of a second-order error. */
struct SecondOrderKey
{
    /// Substitute, Delete, or Insert.
    EditOpType type = EditOpType::Substitute;
    /// Affected reference base for Substitute/Delete; the inserted
    /// base for Insert.
    char base = 'A';
    /// Replacement base for Substitute; '\0' otherwise.
    char repl = '\0';

    bool operator==(const SecondOrderKey &) const = default;

    /** e.g. "sub G->C", "del A", "ins T". */
    std::string str() const;
};

/** A second-order error with its calibrated rate and spatial shape. */
struct SecondOrderSpec
{
    SecondOrderKey key;
    /**
     * Occurrence rate. For Substitute/Delete this is conditional on
     * the affected base occupying the position; for Insert it is per
     * reference position.
     */
    double rate = 0.0;
    /// Spatial distribution of this specific error.
    PositionProfile spatial;
    /// Observed occurrences during calibration (0 for synthetic).
    uint64_t count = 0;
};

/** Complete parameter set for the IDS channel model. */
struct ErrorProfile
{
    /// Design length of the reference strands the profile was
    /// calibrated on (the spatial profiles' natural length).
    size_t design_length = 0;

    /// @{ Aggregate per-reference-base rates. p_del counts every
    /// deleted base, including those inside long-deletion runs.
    double p_sub = 0.0;
    double p_ins = 0.0;
    double p_del = 0.0;
    /// @}

    /// @{ Base-conditional rates, indexed by baseIndex(). The
    /// deletion entry covers single (length-1) deletions only; long
    /// runs are modelled by p_long_del below.
    std::array<double, kNumBases> p_sub_given{};
    std::array<double, kNumBases> p_ins_given{};
    std::array<double, kNumBases> p_del_given{};
    /// @}

    /// confusion[orig][repl] = P(repl | substitution of orig);
    /// each row sums to 1 with a zero diagonal.
    std::array<std::array<double, kNumBases>, kNumBases> confusion{};

    /// Distribution of inserted bases (sums to 1).
    std::array<double, kNumBases> insert_base{};

    /// Per-base probability that a long deletion run (length >= 2)
    /// starts at a position.
    double p_long_del = 0.0;

    /// Unnormalized weights of long-deletion lengths; index 0
    /// corresponds to length 2.
    std::vector<double> long_del_len_weights;

    /// Aggregate spatial distribution of errors.
    PositionProfile spatial;

    /// Context effect: error-rate multiplier for positions inside a
    /// homopolymer run of length >= kHomopolymerRunLength
    /// (sequencing is vulnerable to homopolymers; section 1.2).
    /// Applied mean-preservingly by the engine's context feature.
    double homopolymer_mult = 1.0;

    /// Run length from which the homopolymer multiplier applies.
    static constexpr size_t kHomopolymerRunLength = 3;

    /// Second-order error table (typically the top-10 errors).
    std::vector<SecondOrderSpec> second_order;

    /** Aggregate per-base error rate p_sub + p_ins + p_del. */
    double totalRate() const { return p_sub + p_ins + p_del; }

    /** Mean long-deletion length implied by the weights (>= 2). */
    double meanLongDeletionLength() const;

    /**
     * A synthetic profile with uniform conditional structure:
     * identical per-base rates splitting @p total_rate in the
     * proportions @p sub_frac : @p ins_frac : @p del_frac, uniform
     * confusion and inserted-base distributions, no long deletions,
     * uniform spatial profile, and no second-order table.
     */
    static ErrorProfile uniform(double total_rate, size_t design_length,
                                double sub_frac = 1.0 / 3.0,
                                double ins_frac = 1.0 / 3.0,
                                double del_frac = 1.0 / 3.0);

    /** Copy of this profile with @p spatial replacing the aggregate
     *  spatial distribution. */
    ErrorProfile withSpatial(PositionProfile new_spatial) const;

    /** Multi-line human-readable report. */
    std::string str() const;
};

} // namespace dnasim

#endif // DNASIM_CORE_ERROR_PROFILE_HH
