/**
 * @file
 * A composable multi-stage channel.
 *
 * The paper's section 4.2 identifies the aggregate single-pass model
 * as a key limitation: "an ideal simulator should allow for a
 * multi-stage, composable simulation process". This module provides
 * that: the storage pipeline's noisy steps (synthesis, storage
 * decay, PCR amplification, read sampling, sequencing) are
 * independent stages transforming a pool of physical molecules, each
 * molecule tagged with the reference it descends from so the output
 * regroups into clusters.
 */

#ifndef DNASIM_CORE_STAGES_HH
#define DNASIM_CORE_STAGES_HH

#include <memory>
#include <string>
#include <vector>

#include "core/error_profile.hh"
#include "core/ids_model.hh"
#include "data/dataset.hh"

namespace dnasim
{

/** One physical DNA molecule in the pool. */
struct Molecule
{
    Strand seq;
    uint32_t origin = 0; ///< index of the reference it descends from
};

/** A noisy transformation of the molecule pool. */
class ChannelStage
{
  public:
    virtual ~ChannelStage() = default;

    virtual void apply(std::vector<Molecule> &pool, Rng &rng) const = 0;
    virtual std::string name() const = 0;
};

/**
 * Synthesis: expands each molecule into @p copies physical copies,
 * each independently corrupted by a deletion-dominated low-rate IDS
 * model (synthesis errors are dominated by deletions; Heckel et
 * al.).
 */
class SynthesisStage : public ChannelStage
{
  public:
    SynthesisStage(double error_rate, size_t copies_per_molecule);

    void apply(std::vector<Molecule> &pool, Rng &rng) const override;
    std::string name() const override { return "synthesis"; }

  private:
    IdsChannelModel model_;
    size_t copies_;
};

/**
 * Storage decay: each molecule independently survives with a
 * half-life model; surviving molecules may suffer strand breaks that
 * truncate them.
 */
class DecayStage : public ChannelStage
{
  public:
    /**
     * @param years     storage duration
     * @param half_life molecule half-life in years
     * @param p_break   per-surviving-molecule probability of a
     *                  single random truncating break
     */
    DecayStage(double years, double half_life, double p_break);

    void apply(std::vector<Molecule> &pool, Rng &rng) const override;
    std::string name() const override { return "decay"; }

  private:
    double survival_;
    double p_break_;
};

/**
 * PCR amplification: @p cycles rounds in which each molecule
 * duplicates with probability efficiency * bias(origin), where the
 * per-origin bias is log-normal (PCR prefers some sequences over
 * others; Heckel et al.). Copies may acquire substitutions. The
 * pool is capped by uniform subsampling to bound memory.
 */
class PcrStage : public ChannelStage
{
  public:
    PcrStage(unsigned cycles, double efficiency, double bias_sigma,
             double sub_rate, size_t max_pool = 1 << 20);

    void apply(std::vector<Molecule> &pool, Rng &rng) const override;
    std::string name() const override { return "pcr"; }

  private:
    unsigned cycles_;
    double efficiency_;
    double bias_sigma_;
    double sub_rate_;
    size_t max_pool_;
};

/** Read sampling: draw @p num_reads molecules with replacement. */
class SamplingStage : public ChannelStage
{
  public:
    explicit SamplingStage(size_t num_reads);

    void apply(std::vector<Molecule> &pool, Rng &rng) const override;
    std::string name() const override { return "sampling"; }

  private:
    size_t num_reads_;
};

/** Sequencing: every molecule passes once through an IDS model. */
class SequencingStage : public ChannelStage
{
  public:
    explicit SequencingStage(ErrorProfile profile);

    void apply(std::vector<Molecule> &pool, Rng &rng) const override;
    std::string name() const override { return "sequencing"; }

  private:
    IdsChannelModel model_;
};

/** An ordered composition of channel stages. */
class StagedChannel
{
  public:
    StagedChannel() = default;

    /** Append a stage; stages run in insertion order. */
    StagedChannel &add(std::unique_ptr<ChannelStage> stage);

    size_t numStages() const { return stages_.size(); }

    /** Stage names in execution order. */
    std::vector<std::string> stageNames() const;

    /**
     * Run the pipeline: the pool starts as one pristine molecule per
     * reference; after all stages the pool regroups by origin into a
     * clustered dataset (perfect clustering). References that lost
     * every molecule appear as erasure clusters.
     */
    Dataset run(const std::vector<Strand> &references, Rng &rng) const;

  private:
    std::vector<std::unique_ptr<ChannelStage>> stages_;
};

} // namespace dnasim

#endif // DNASIM_CORE_STAGES_HH
