#include "core/tech_profiles.hh"

#include "base/logging.hh"
#include "core/wetlab.hh"

namespace dnasim
{

const char *
sequencerName(SequencerGeneration gen)
{
    switch (gen) {
      case SequencerGeneration::Sanger: return "sanger";
      case SequencerGeneration::Illumina: return "illumina";
      case SequencerGeneration::Nanopore: return "nanopore";
    }
    return "?";
}

double
sequencerErrorRate(SequencerGeneration gen)
{
    // Table 1.1: Sanger 0.001-0.01%, Illumina 0.1-1%, Nanopore ~10%
    // nominal; the Nanopore dataset the paper analyzes measured
    // 5.9% end to end.
    switch (gen) {
      case SequencerGeneration::Sanger: return 5.0e-5;
      case SequencerGeneration::Illumina: return 5.0e-3;
      case SequencerGeneration::Nanopore: return 5.9e-2;
    }
    DNASIM_PANIC("unknown sequencer generation");
}

ErrorProfile
sequencerProfile(SequencerGeneration gen, size_t strand_length)
{
    switch (gen) {
      case SequencerGeneration::Sanger:
        // Substitution-dominated, essentially uniform.
        return ErrorProfile::uniform(sequencerErrorRate(gen),
                                     strand_length,
                                     /*sub=*/0.85, /*ins=*/0.05,
                                     /*del=*/0.10);
      case SequencerGeneration::Illumina:
        // Substitutions dominate; mild end-of-read degradation.
        return ErrorProfile::uniform(sequencerErrorRate(gen),
                                     strand_length, 0.90, 0.04, 0.06)
            .withSpatial(PositionProfile::terminalSkew(
                strand_length, 1.0, 3.0, 0));
      case SequencerGeneration::Nanopore:
        return NanoporeDatasetGenerator::groundTruthProfile(
            strand_length, sequencerErrorRate(gen));
    }
    DNASIM_PANIC("unknown sequencer generation");
}

StagedChannel
makeArchivalChannel(SequencerGeneration gen, size_t strand_length,
                    size_t num_references, double mean_coverage,
                    double storage_years, double synthesis_error)
{
    DNASIM_ASSERT(mean_coverage > 0.0, "non-positive coverage");
    StagedChannel channel;
    channel.add(std::make_unique<SynthesisStage>(synthesis_error,
                                                 /*copies=*/20));
    if (storage_years > 0.0) {
        // Half-life ~500 years in silica encapsulation; a small
        // per-molecule break probability accumulates with time.
        channel.add(std::make_unique<DecayStage>(
            storage_years, /*half_life=*/500.0,
            std::min(0.2, storage_years / 2000.0)));
    }
    channel.add(std::make_unique<PcrStage>(/*cycles=*/6,
                                           /*efficiency=*/0.85,
                                           /*bias_sigma=*/0.25,
                                           /*sub_rate=*/5.0e-5));
    auto reads = static_cast<size_t>(
        mean_coverage * static_cast<double>(num_references));
    channel.add(std::make_unique<SamplingStage>(std::max<size_t>(
        reads, 1)));
    channel.add(std::make_unique<SequencingStage>(
        sequencerProfile(gen, strand_length)));
    return channel;
}

} // namespace dnasim
