/**
 * @file
 * The synthetic "wetlab" Nanopore channel — this reproduction's
 * substitute for the Microsoft Nanopore dataset used by the paper
 * (10,000 reference strands of length 110; 269,709 noisy reads;
 * average coverage 26.97; 16 empty clusters; aggregate error 5.9%).
 *
 * The generator implements strictly *richer* physics than any of the
 * simulators under test:
 *
 *  - negative-binomial per-cluster coverage with erasures
 *    (Heckel et al. [13]);
 *  - base-conditional IDS errors with an affinity-biased confusion
 *    matrix (T<->C and A<->G preferred);
 *  - long deletions with the paper's calibrated statistics
 *    (p = 0.33%, mean length 2.17, length ratios 84/13/1.8/0.2/0.02%
 *    for lengths 2-6);
 *  - terminal spatial skew (positions 0-1 and the final position
 *    elevated; the strand end about twice the beginning);
 *  - second-order errors with their own end-heavy spatial skews
 *    (Fig. 3.6);
 *  - Nanopore burst errors: runs of >= 5 consecutive deleted or
 *    substituted bases ([17]), which none of the parametric
 *    simulators model — this is part of why real data reconstructs
 *    worse than simulated data.
 *
 * The paper's evaluation calibrates its simulators *from* this data
 * and measures how closely reconstruction accuracy converges to it,
 * exercising exactly the code path the paper exercised with real
 * sequencing data.
 */

#ifndef DNASIM_CORE_WETLAB_HH
#define DNASIM_CORE_WETLAB_HH

#include "core/error_profile.hh"
#include "data/dataset.hh"
#include "data/strand_factory.hh"

namespace dnasim
{

/** Configuration of the synthetic wetlab channel. */
struct WetlabConfig
{
    size_t num_clusters = 10000;
    size_t strand_length = 110;

    /// Coverage distribution (paper: mean 26.97, range 0-164).
    double mean_coverage = 26.97;
    double coverage_dispersion = 2.2;
    size_t max_coverage = 164;
    double p_erasure = 0.0016; ///< 16 empty clusters in 10,000

    /// Aggregate per-base error rate (paper: 5.9%).
    double total_error_rate = 0.059;

    /// Burst errors: fraction of copies carrying one burst, and the
    /// burst-length model (min length + geometric tail).
    double p_burst_per_copy = 0.012;
    size_t burst_min_length = 5;
    double burst_continue = 0.35;

    /// Per-read and per-cluster quality dispersion: every copy's
    /// error rates are scaled by exp(N(0, sigma) - sigma^2 / 2)
    /// (mean 1), drawn once per cluster and once per read. Nanopore
    /// read quality varies widely; a simulator calibrated on
    /// aggregate statistics reproduces the *mean* rate but not this
    /// dispersion — a key reason simulated data reconstructs better
    /// than real data.
    double read_quality_sigma = 0.7;
    double cluster_quality_sigma = 0.25;
    /// Quality multipliers are clamped to this range: Nanopore
    /// basecalls never get arbitrarily clean (error floor), while
    /// the bad tail can be much worse than the mean.
    double quality_min = 0.6;
    double quality_max = 8.0;

    /// End truncation: the fraction of copies missing their final
    /// base(s) (incomplete synthesis and early pore exit both
    /// truncate the 3' end). The number of missing bases is
    /// 1 + Geometric(end_truncate_continue). This concentrates
    /// deletions on the final strand positions across copies — the
    /// paper's observation that the strand end carries about twice
    /// the errors of the beginning (Fig. 3.2b).
    double p_end_truncate = 0.32;
    double end_truncate_continue = 0.40;

    /// Alien reads: fraction of copies that are actually noisy
    /// copies of a *different* reference — the artifact real
    /// clustering algorithms leave behind (section 1.1.2: "a noisy
    /// copy n' of a strand n might be clustered together with copies
    /// of another strand m").
    double p_alien = 0.015;

    /// Truncated reads: Nanopore occasionally reports severely
    /// shortened reads; the fraction and the surviving-length range.
    double p_truncate = 0.02;
    double truncate_min_frac = 0.30;
    double truncate_max_frac = 0.90;

    /// Constraints on the generated reference library.
    StrandConstraints constraints;
};

/** Generates the synthetic Nanopore dataset. */
class NanoporeDatasetGenerator
{
  public:
    explicit NanoporeDatasetGenerator(WetlabConfig config = {});

    const WetlabConfig &config() const { return config_; }

    /**
     * The hand-crafted ground-truth ErrorProfile of the wetlab
     * channel (without bursts, which are outside the parametric
     * model family on purpose).
     */
    static ErrorProfile groundTruthProfile(size_t strand_length,
                                           double total_rate);

    /**
     * Generate a full dataset: the reference library, then noisy
     * clusters. Deterministic in @p rng's seed.
     */
    Dataset generate(Rng &rng) const;

    /**
     * Generate clusters for caller-provided references at the
     * configured coverage distribution.
     */
    Dataset generateFor(const std::vector<Strand> &references,
                        Rng &rng) const;

  private:
    /** Inject one burst (deletion or substitution run) into a copy. */
    void maybeInjectBurst(Strand &copy, Rng &rng) const;

    /** Possibly truncate a copy to a fraction of its length. */
    void maybeTruncate(Strand &copy, Rng &rng) const;

    /** Possibly drop the last base(s) (3'-end truncation). */
    void maybeEndTruncate(Strand &copy, Rng &rng) const;

    WetlabConfig config_;
};

} // namespace dnasim

#endif // DNASIM_CORE_WETLAB_HH
