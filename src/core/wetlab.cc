#include "core/wetlab.hh"

#include <algorithm>

#include "base/logging.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/ids_model.hh"

namespace dnasim
{

NanoporeDatasetGenerator::NanoporeDatasetGenerator(WetlabConfig config)
    : config_(config)
{
    DNASIM_ASSERT(config_.num_clusters > 0, "no clusters requested");
    DNASIM_ASSERT(config_.strand_length > 4, "strand length too small");
    DNASIM_ASSERT(config_.total_error_rate >= 0.0 &&
                      config_.total_error_rate < 0.5,
                  "unreasonable wetlab error rate");
}

ErrorProfile
NanoporeDatasetGenerator::groundTruthProfile(size_t strand_length,
                                             double total_rate)
{
    ErrorProfile p;
    p.design_length = strand_length;

    // Decompose the aggregate rate: substitutions dominate Nanopore
    // miscalls, deletions are the next largest class (and drive the
    // Iterative algorithm's residual errors), insertions trail.
    const double sub_mass = 0.45 * total_rate;
    const double del_mass = 0.35 * total_rate;
    const double ins_mass = 0.20 * total_rate;

    p.p_sub = sub_mass;
    p.p_ins = ins_mass;
    p.p_del = del_mass;

    // Long deletions use the paper's calibrated numbers directly:
    // start probability 0.33%, lengths 2-6 in ratios
    // 84 : 13 : 1.8 : 0.2 : 0.02 (mean length ~2.17). The per-base
    // long-deletion start rate is scaled with the total rate so
    // low-error configurations stay consistent.
    p.p_long_del = 0.0033 * (total_rate / 0.059);
    p.long_del_len_weights = {84.0, 13.0, 1.8, 0.2, 0.02};
    const double mean_ld = p.meanLongDeletionLength();
    const double long_del_bases = p.p_long_del * mean_ld;
    const double single_del_mass =
        std::max(0.0, del_mass - long_del_bases);

    // Mild base-conditional structure: G/C positions err more often
    // (secondary-structure effects), A/T less.
    const std::array<double, kNumBases> base_mult = {0.90, 1.10, 1.15,
                                                     0.85};
    double mult_mean = 0.0;
    for (double m : base_mult)
        mult_mean += m;
    mult_mean /= kNumBases;
    for (size_t b = 0; b < kNumBases; ++b) {
        double m = base_mult[b] / mult_mean;
        p.p_sub_given[b] = sub_mass * m;
        p.p_ins_given[b] = ins_mass * m;
        p.p_del_given[b] = single_del_mass * m;
    }

    // Affinity-biased confusion matrix (Heckel et al.: T->C and
    // A->G are far more likely than other replacements). Rows are
    // indexed A, C, G, T and sum to 1 with zero diagonals.
    p.confusion = {{
        {0.00, 0.20, 0.55, 0.25}, // A -> mostly G
        {0.20, 0.00, 0.30, 0.50}, // C -> mostly T
        {0.50, 0.30, 0.00, 0.20}, // G -> mostly A
        {0.25, 0.55, 0.20, 0.00}, // T -> mostly C
    }};
    p.insert_base = {0.30, 0.20, 0.20, 0.30};

    // Homopolymer runs err about twice as often (section 1.2).
    p.homopolymer_mult = 2.0;

    // Terminal spatial skew (Fig. 3.2b): the first two positions and
    // the final position are elevated, the end roughly twice the
    // beginning.
    p.spatial = PositionProfile::terminalSkew(strand_length,
                                              /*head_mult=*/4.0,
                                              /*tail_mult=*/8.0,
                                              /*n_head=*/2);

    // Second-order errors with their own end-heavy spatial skews
    // (Fig. 3.6). Each rate stays below the corresponding
    // conditional rate so the residual mass is non-negative.
    auto tail_profile = [&](double tail) {
        return PositionProfile::terminalSkew(strand_length, 2.0, tail,
                                             2);
    };
    auto head_profile = [&](double head) {
        return PositionProfile::terminalSkew(strand_length, head, 2.0,
                                             2);
    };
    auto add_so = [&](EditOpType type, char base, char repl,
                      double rate, PositionProfile prof) {
        SecondOrderSpec spec;
        spec.key = {type, base, repl};
        spec.rate = rate;
        spec.spatial = std::move(prof);
        p.second_order.push_back(std::move(spec));
    };
    add_so(EditOpType::Delete, 'A', '\0',
           0.5 * p.p_del_given[baseIndex('A')], tail_profile(14.0));
    add_so(EditOpType::Delete, 'G', '\0',
           0.4 * p.p_del_given[baseIndex('G')], tail_profile(10.0));
    add_so(EditOpType::Substitute, 'T', 'C',
           0.4 * p.p_sub_given[baseIndex('T')], tail_profile(12.0));
    add_so(EditOpType::Substitute, 'A', 'G',
           0.4 * p.p_sub_given[baseIndex('A')], head_profile(9.0));
    add_so(EditOpType::Insert, 'G', '\0', 0.06 * ins_mass,
           tail_profile(11.0));
    add_so(EditOpType::Insert, 'A', '\0', 0.05 * ins_mass,
           head_profile(8.0));

    return p;
}

void
NanoporeDatasetGenerator::maybeInjectBurst(Strand &copy, Rng &rng) const
{
    if (config_.p_burst_per_copy <= 0.0 ||
        !rng.bernoulli(config_.p_burst_per_copy)) {
        return;
    }
    if (copy.size() <= config_.burst_min_length + 1)
        return;

    size_t len = config_.burst_min_length;
    while (rng.bernoulli(config_.burst_continue))
        ++len;
    len = std::min(len, copy.size() - 1);
    size_t pos = rng.index(copy.size() - len);

    if (rng.bernoulli(0.5)) {
        // Burst deletion.
        copy.erase(pos, len);
    } else {
        // Burst substitution with random bases.
        for (size_t i = 0; i < len; ++i)
            copy[pos + i] = kBaseChars[rng.index(kNumBases)];
    }
}

void
NanoporeDatasetGenerator::maybeEndTruncate(Strand &copy,
                                           Rng &rng) const
{
    if (config_.p_end_truncate <= 0.0 ||
        !rng.bernoulli(config_.p_end_truncate)) {
        return;
    }
    size_t cut = 1;
    while (rng.bernoulli(config_.end_truncate_continue))
        ++cut;
    if (cut >= copy.size())
        cut = copy.size() > 1 ? copy.size() - 1 : 0;
    copy.resize(copy.size() - cut);
}

void
NanoporeDatasetGenerator::maybeTruncate(Strand &copy, Rng &rng) const
{
    if (config_.p_truncate <= 0.0 ||
        !rng.bernoulli(config_.p_truncate)) {
        return;
    }
    if (copy.size() < 4)
        return;
    double frac = rng.uniform(config_.truncate_min_frac,
                              config_.truncate_max_frac);
    auto keep = static_cast<size_t>(
        frac * static_cast<double>(copy.size()));
    keep = std::max<size_t>(keep, 2);
    copy.resize(keep);
}

Dataset
NanoporeDatasetGenerator::generate(Rng &rng) const
{
    StrandFactory factory(config_.constraints);
    Rng lib_rng = rng.fork(0x11b);
    auto references = factory.makeMany(config_.num_clusters,
                                       config_.strand_length, lib_rng);
    return generateFor(references, rng);
}

Dataset
NanoporeDatasetGenerator::generateFor(
    const std::vector<Strand> &references, Rng &rng) const
{
    ErrorProfile truth = groundTruthProfile(config_.strand_length,
                                            config_.total_error_rate);
    IdsChannelModel model =
        IdsChannelModel::full(truth, "wetlab-nanopore");
    NegativeBinomialCoverage coverage(config_.mean_coverage,
                                      config_.coverage_dispersion,
                                      config_.max_coverage,
                                      config_.p_erasure);

    // Log-normal quality multiplier (mean 1 before clamping).
    auto quality = [&](double sigma, Rng &r) {
        if (sigma <= 0.0)
            return 1.0;
        double m =
            std::exp(r.gaussian(0.0, sigma) - sigma * sigma / 2.0);
        return std::clamp(m, config_.quality_min, config_.quality_max);
    };

    Dataset dataset;
    dataset.clusters().reserve(references.size());
    for (size_t i = 0; i < references.size(); ++i) {
        Rng cluster_rng = rng.fork(i + 1);
        size_t n = coverage.sample(i, cluster_rng);
        double cluster_quality =
            quality(config_.cluster_quality_sigma, cluster_rng);
        Cluster cluster;
        cluster.reference = references[i];
        cluster.copies.reserve(n);
        for (size_t k = 0; k < n; ++k) {
            // Alien reads: a noisy copy of some *other* reference
            // mis-clustered into this cluster.
            const Strand &source =
                (references.size() > 1 &&
                 cluster_rng.bernoulli(config_.p_alien))
                    ? references[cluster_rng.index(references.size())]
                    : references[i];
            double scale =
                cluster_quality *
                quality(config_.read_quality_sigma, cluster_rng);
            Strand copy =
                model.transmitScaled(source, scale, cluster_rng);
            maybeEndTruncate(copy, cluster_rng);
            maybeInjectBurst(copy, cluster_rng);
            maybeTruncate(copy, cluster_rng);
            cluster.copies.push_back(std::move(copy));
        }
        dataset.add(std::move(cluster));
    }
    return dataset;
}

} // namespace dnasim
