/**
 * @file
 * Text serialization of calibrated ErrorProfiles, so a profile
 * calibrated once (an expensive pass over every read) can be saved
 * and re-used across simulator runs and shared between machines.
 *
 * The format is a line-oriented key/value file:
 *
 * @verbatim
 * dnasim-profile 1
 * design_length 110
 * p_sub 0.026 ...
 * confusion A 0 0.2 0.55 0.25
 * spatial 110 1.2 0.9 ...
 * second_order sub G C 0.013 110 0.8 ...
 * end
 * @endverbatim
 */

#ifndef DNASIM_CORE_PROFILE_IO_HH
#define DNASIM_CORE_PROFILE_IO_HH

#include <iosfwd>
#include <string>

#include "core/error_profile.hh"

namespace dnasim
{

/** Serialize @p profile to @p os. */
void writeProfile(const ErrorProfile &profile, std::ostream &os);

/** Serialize @p profile to the file at @p path (fatal on error). */
void writeProfileFile(const ErrorProfile &profile,
                      const std::string &path);

/** Parse a profile from @p is (fatal on malformed input). */
ErrorProfile readProfile(std::istream &is);

/** Parse a profile from the file at @p path (fatal on error). */
ErrorProfile readProfileFile(const std::string &path);

} // namespace dnasim

#endif // DNASIM_CORE_PROFILE_IO_HH
