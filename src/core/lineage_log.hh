/**
 * @file
 * Ground-truth error lineage: a compact, arena-backed record of the
 * error events a channel model injected into each simulated read.
 *
 * The simulator is the one component that *knows* where every error
 * came from, so it can attribute downstream failures (a wrong
 * consensus base, a misclustered read) to their true cause — the
 * introspection that separates analysis-grade simulators from read
 * generators. Recording is strictly observational: a LineageRecorder
 * never consumes randomness and never alters transmit logic, so the
 * simulated strands are byte-identical whether or not lineage is
 * enabled; a null recorder costs one branch per *event* (events are
 * rare), not per base.
 *
 * Storage is one flat event arena per cluster (ClusterLineage), with
 * reads delimited by a prefix-end offset array — no per-read
 * allocation. ChannelSimulator fills cluster i's arena from the one
 * worker that simulates cluster i, so a parallel run produces the
 * exact log of the serial run without any locking or merge step.
 * The joining of this log against clustering/reconstruction outcomes
 * lives in src/analysis/lineage.hh.
 */

#ifndef DNASIM_CORE_LINEAGE_LOG_HH
#define DNASIM_CORE_LINEAGE_LOG_HH

#include <cstdint>
#include <span>
#include <vector>

namespace dnasim
{

/** The kind of injected channel error a LineageEvent records. */
enum class LineageErrorType : uint8_t
{
    Substitution, ///< ref base replaced (obs_base may equal ref_base
                  ///< for models whose replacement draw is uniform
                  ///< over all four bases — a silent substitution)
    Insertion,    ///< extra base emitted after ref position
                  ///< ref_pos - 1 (editOps convention: the insert
                  ///< appears *before* reference index ref_pos)
    Deletion,     ///< single reference base dropped
    LongDeletion, ///< run of run_length reference bases dropped
};

/** Short stable name ("sub", "ins", "del", "long_del"). */
const char *lineageErrorTypeName(LineageErrorType type);

/** One injected error event, positioned on the reference strand. */
struct LineageEvent
{
    uint32_t ref_pos = 0;   ///< affected reference position (see
                            ///< LineageErrorType for Insertion)
    uint16_t run_length = 1; ///< reference bases covered (>1 only
                             ///< for LongDeletion)
    LineageErrorType type = LineageErrorType::Substitution;
    char ref_base = '\0'; ///< reference base at ref_pos (0 for
                          ///< insertions)
    char obs_base = '\0'; ///< base emitted into the read (0 for
                          ///< deletions)

    /** First reference position *after* the event's span. */
    uint32_t
    refEnd() const
    {
        switch (type) {
          case LineageErrorType::Insertion:
            return ref_pos;
          case LineageErrorType::LongDeletion:
            return ref_pos + run_length;
          default:
            return ref_pos + 1;
        }
    }
};

/**
 * Null-safe per-read event sink handed to ErrorModel::transmit.
 * A default-constructed (or nullptr-backed) recorder records
 * nothing; models call the typed hooks only at event sites, so the
 * disabled path costs one predictable branch per injected error.
 */
class LineageRecorder
{
  public:
    LineageRecorder() = default;

    /** Record into @p sink (nullptr disables recording). */
    explicit LineageRecorder(std::vector<LineageEvent> *sink)
        : sink_(sink)
    {}

    bool enabled() const { return sink_ != nullptr; }

    void
    substitution(size_t ref_pos, char ref_base, char obs_base)
    {
        if (sink_ != nullptr) {
            sink_->push_back(
                {static_cast<uint32_t>(ref_pos), 1,
                 LineageErrorType::Substitution, ref_base, obs_base});
        }
    }

    /**
     * @p ref_pos is the reference index *before which* the inserted
     * base appears in the read (editOps convention) — a channel that
     * emits base i and then an extra base records ref_pos = i + 1.
     */
    void
    insertion(size_t ref_pos, char obs_base)
    {
        if (sink_ != nullptr) {
            sink_->push_back({static_cast<uint32_t>(ref_pos), 1,
                              LineageErrorType::Insertion, '\0',
                              obs_base});
        }
    }

    void
    deletion(size_t ref_pos, char ref_base)
    {
        if (sink_ != nullptr) {
            sink_->push_back({static_cast<uint32_t>(ref_pos), 1,
                              LineageErrorType::Deletion, ref_base,
                              '\0'});
        }
    }

    /** @p run_length reference bases dropped starting at ref_pos. */
    void
    longDeletion(size_t ref_pos, size_t run_length, char first_base)
    {
        if (sink_ != nullptr) {
            sink_->push_back({static_cast<uint32_t>(ref_pos),
                              static_cast<uint16_t>(run_length),
                              LineageErrorType::LongDeletion,
                              first_base, '\0'});
        }
    }

  private:
    std::vector<LineageEvent> *sink_ = nullptr;
};

/**
 * Event arena of one simulated cluster: the events of all its reads
 * concatenated, with read k's slice delimited by the prefix-end
 * array ([read_event_end[k-1], read_event_end[k])).
 */
struct ClusterLineage
{
    std::vector<LineageEvent> events;
    std::vector<uint32_t> read_event_end;

    size_t numReads() const { return read_event_end.size(); }

    std::span<const LineageEvent>
    readEvents(size_t read) const
    {
        const uint32_t begin =
            read == 0 ? 0 : read_event_end[read - 1];
        const uint32_t end = read_event_end[read];
        return std::span<const LineageEvent>(events.data() + begin,
                                             end - begin);
    }
};

/** Aggregate counts over a lineage log, by event type. */
struct LineageCounts
{
    uint64_t substitutions = 0;
    uint64_t insertions = 0;
    uint64_t deletions = 0;      ///< single-base deletion events
    uint64_t long_deletions = 0; ///< long-deletion runs

    uint64_t
    total() const
    {
        return substitutions + insertions + deletions +
               long_deletions;
    }
};

/**
 * The full ground-truth lineage of one simulation run: one
 * ClusterLineage per simulated cluster, indexed like the Dataset the
 * run produced. Passed (as a pointer; nullptr disables recording)
 * through ChannelSimulator::simulate/simulateLike.
 */
class LineageLog
{
  public:
    /** Reset and size for @p num_clusters clusters. */
    void
    beginRun(size_t num_clusters)
    {
        clusters_.assign(num_clusters, {});
    }

    size_t numClusters() const { return clusters_.size(); }

    /**
     * Mutable per-cluster arena. During a parallel simulation only
     * the worker that owns cluster @p i may touch it.
     */
    ClusterLineage &cluster(size_t i) { return clusters_[i]; }
    const ClusterLineage &
    cluster(size_t i) const
    {
        return clusters_[i];
    }

    /** Events of read @p copy of cluster @p cluster. */
    std::span<const LineageEvent>
    readEvents(size_t cluster, size_t copy) const
    {
        return clusters_[cluster].readEvents(copy);
    }

    LineageCounts counts() const;

    uint64_t
    totalEvents() const
    {
        uint64_t n = 0;
        for (const auto &c : clusters_)
            n += c.events.size();
        return n;
    }

  private:
    std::vector<ClusterLineage> clusters_;
};

} // namespace dnasim

#endif // DNASIM_CORE_LINEAGE_LOG_HH
