#include "core/stages.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "base/logging.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace dnasim
{

namespace
{

/** Deletion-dominated profile for synthesis errors. */
ErrorProfile
synthesisProfile(double error_rate)
{
    // Synthesis errors are ~80% deletions, with small substitution
    // and insertion components.
    return ErrorProfile::uniform(error_rate, /*design_length=*/0,
                                 /*sub_frac=*/0.15,
                                 /*ins_frac=*/0.05,
                                 /*del_frac=*/0.80);
}

/** Substitution-only profile for PCR copy errors. */
ErrorProfile
pcrProfile(double sub_rate)
{
    return ErrorProfile::uniform(sub_rate, 0, 1.0, 0.0, 0.0);
}

} // anonymous namespace

SynthesisStage::SynthesisStage(double error_rate,
                               size_t copies_per_molecule)
    : model_(IdsChannelModel::naive(synthesisProfile(error_rate))),
      copies_(copies_per_molecule)
{
    DNASIM_ASSERT(copies_ > 0, "synthesis must produce copies");
}

void
SynthesisStage::apply(std::vector<Molecule> &pool, Rng &rng) const
{
    std::vector<Molecule> out;
    out.reserve(pool.size() * copies_);
    for (const auto &mol : pool) {
        for (size_t k = 0; k < copies_; ++k) {
            out.push_back(
                Molecule{model_.transmit(mol.seq, rng), mol.origin});
        }
    }
    pool = std::move(out);
}

DecayStage::DecayStage(double years, double half_life, double p_break)
    : survival_(std::pow(0.5, years / half_life)), p_break_(p_break)
{
    DNASIM_ASSERT(years >= 0.0 && half_life > 0.0,
                  "bad decay parameters");
    DNASIM_ASSERT(p_break >= 0.0 && p_break <= 1.0,
                  "bad break probability");
}

void
DecayStage::apply(std::vector<Molecule> &pool, Rng &rng) const
{
    std::vector<Molecule> out;
    out.reserve(pool.size());
    for (auto &mol : pool) {
        if (!rng.bernoulli(survival_))
            continue;
        if (p_break_ > 0.0 && rng.bernoulli(p_break_) &&
            mol.seq.size() > 1) {
            // A single nick truncates the molecule; the longer
            // fragment is the one that remains readable.
            size_t cut = 1 + rng.index(mol.seq.size() - 1);
            if (cut >= mol.seq.size() - cut)
                mol.seq.resize(cut);
            else
                mol.seq.erase(0, cut);
        }
        out.push_back(std::move(mol));
    }
    pool = std::move(out);
}

PcrStage::PcrStage(unsigned cycles, double efficiency,
                   double bias_sigma, double sub_rate, size_t max_pool)
    : cycles_(cycles), efficiency_(efficiency),
      bias_sigma_(bias_sigma), sub_rate_(sub_rate),
      max_pool_(max_pool)
{
    DNASIM_ASSERT(efficiency > 0.0 && efficiency <= 1.0,
                  "bad PCR efficiency");
    DNASIM_ASSERT(bias_sigma >= 0.0, "negative PCR bias sigma");
    DNASIM_ASSERT(max_pool > 0, "zero PCR pool cap");
}

void
PcrStage::apply(std::vector<Molecule> &pool, Rng &rng) const
{
    IdsChannelModel copy_model =
        IdsChannelModel::naive(pcrProfile(sub_rate_));

    // Per-origin amplification bias, drawn once per run.
    std::unordered_map<uint32_t, double> bias;
    auto origin_bias = [&](uint32_t origin) {
        auto it = bias.find(origin);
        if (it != bias.end())
            return it->second;
        double b = bias_sigma_ > 0.0
                       ? std::exp(rng.gaussian(0.0, bias_sigma_))
                       : 1.0;
        bias.emplace(origin, b);
        return b;
    };

    for (unsigned cycle = 0; cycle < cycles_; ++cycle) {
        size_t current = pool.size();
        for (size_t i = 0; i < current; ++i) {
            double p = std::min(1.0, efficiency_ *
                                         origin_bias(pool[i].origin));
            if (!rng.bernoulli(p))
                continue;
            Strand copy = sub_rate_ > 0.0
                              ? copy_model.transmit(pool[i].seq, rng)
                              : pool[i].seq;
            pool.push_back(Molecule{std::move(copy), pool[i].origin});
        }
        if (pool.size() > max_pool_) {
            // Uniform subsample back to the cap; preserves relative
            // abundances in expectation.
            rng.shuffle(pool);
            pool.resize(max_pool_);
        }
    }
}

SamplingStage::SamplingStage(size_t num_reads)
    : num_reads_(num_reads)
{
    DNASIM_ASSERT(num_reads_ > 0, "zero reads sampled");
}

void
SamplingStage::apply(std::vector<Molecule> &pool, Rng &rng) const
{
    if (pool.empty())
        return;
    std::vector<Molecule> out;
    out.reserve(num_reads_);
    for (size_t i = 0; i < num_reads_; ++i)
        out.push_back(pool[rng.index(pool.size())]);
    pool = std::move(out);
}

SequencingStage::SequencingStage(ErrorProfile profile)
    : model_(IdsChannelModel::full(std::move(profile), "sequencing"))
{}

void
SequencingStage::apply(std::vector<Molecule> &pool, Rng &rng) const
{
    for (auto &mol : pool)
        mol.seq = model_.transmit(mol.seq, rng);
}

StagedChannel &
StagedChannel::add(std::unique_ptr<ChannelStage> stage)
{
    DNASIM_ASSERT(stage != nullptr, "null channel stage");
    stages_.push_back(std::move(stage));
    return *this;
}

std::vector<std::string>
StagedChannel::stageNames() const
{
    std::vector<std::string> names;
    names.reserve(stages_.size());
    for (const auto &s : stages_)
        names.push_back(s->name());
    return names;
}

Dataset
StagedChannel::run(const std::vector<Strand> &references,
                   Rng &rng) const
{
    DNASIM_ASSERT(references.size() <
                      std::numeric_limits<uint32_t>::max(),
                  "too many references");
    std::vector<Molecule> pool;
    pool.reserve(references.size());
    for (size_t i = 0; i < references.size(); ++i)
        pool.push_back(
            Molecule{references[i], static_cast<uint32_t>(i)});

    auto &reg = obs::Registry::global();
    obs::ScopedTrace run_span("stages.run", "stages");
    for (const auto &stage : stages_) {
        const std::string name = stage->name();
        const std::string prefix = "stage." + name;
        obs::ScopedTimer timer(
            reg.timer(prefix + ".time",
                      "wall time in the " + name + " stage"));
        obs::ScopedTrace span(name.c_str(), "stages");
        stage->apply(pool, rng);
        reg.counter(prefix + ".applications",
                    "times the stage ran")
            .inc();
        uint64_t bases = 0;
        for (const auto &mol : pool)
            bases += mol.seq.size();
        reg.gauge(prefix + ".molecules_out",
                  "pool size after the stage's last run")
            .set(static_cast<int64_t>(pool.size()));
        reg.gauge(prefix + ".bases_out",
                  "pool bases after the stage's last run")
            .set(static_cast<int64_t>(bases));
    }

    Dataset dataset;
    dataset.clusters().reserve(references.size());
    for (const auto &ref : references) {
        Cluster c;
        c.reference = ref;
        dataset.add(std::move(c));
    }
    for (auto &mol : pool)
        dataset[mol.origin].copies.push_back(std::move(mol.seq));
    return dataset;
}

} // namespace dnasim
