/**
 * @file
 * The error-model interface: a stochastic transformation of one
 * reference strand into one noisy copy (one transmission through the
 * IDS channel).
 */

#ifndef DNASIM_CORE_ERROR_MODEL_HH
#define DNASIM_CORE_ERROR_MODEL_HH

#include <string>

#include "base/dna.hh"
#include "base/rng.hh"
#include "core/lineage_log.hh"

namespace dnasim
{

/**
 * A noisy channel acting on single strands.
 *
 * Implementations must be stateless with respect to transmit():
 * all randomness flows through the supplied Rng, so a fixed seed
 * reproduces a dataset exactly.
 */
class ErrorModel
{
  public:
    virtual ~ErrorModel() = default;

    /** Transmit @p ref once, returning a noisy copy. */
    virtual Strand transmit(const Strand &ref, Rng &rng) const = 0;

    /**
     * Transmit @p ref once, recording every injected error event
     * into @p lineage. Recording must be purely observational: the
     * same Rng draws in the same order, so the returned strand is
     * byte-identical to the plain transmit(). The default
     * implementation transmits without recording — models that
     * predate lineage keep working, they just report no events.
     */
    virtual Strand
    transmit(const Strand &ref, Rng &rng, LineageRecorder &lineage) const
    {
        (void)lineage;
        return transmit(ref, rng);
    }

    /** Short model name for reports (e.g. "naive", "skew"). */
    virtual std::string name() const = 0;
};

} // namespace dnasim

#endif // DNASIM_CORE_ERROR_MODEL_HH
