/**
 * @file
 * A faithful port of DNASimulator's error-injection algorithm
 * (Algorithm 1 of the paper; Chaykin et al. [7]), used as the
 * prior-work baseline in Tables 2.1 and 2.2.
 *
 * DNASimulator keeps one dictionary E of per-base probabilities for
 * substitution, insertion, single-base deletion, and long deletion,
 * predetermined per (synthesis, sequencing) technology pair. Errors
 * are injected in a single pass, independent of position and of
 * neighbouring errors, and substitutions draw a replacement
 * uniformly from all four bases — including the original, so a
 * fraction 1/4 of substitution events are silent. All of those
 * modelling choices are deliberate parts of the baseline being
 * critiqued (section 2.2.3).
 */

#ifndef DNASIM_CORE_DNASIMULATOR_MODEL_HH
#define DNASIM_CORE_DNASIMULATOR_MODEL_HH

#include <array>
#include <string>

#include "core/error_model.hh"
#include "core/error_profile.hh"

namespace dnasim
{

/** Per-base entry of DNASimulator's error dictionary E. */
struct DnaSimulatorEntry
{
    double p_sub = 0.0;
    double p_ins = 0.0;
    double p_del = 0.0;
    double p_long_del = 0.0; ///< probability of a long (2-base+) deletion
};

/** Synthesis technologies offered by the original tool. */
enum class SynthesisTech
{
    Twist,
    CustomArray,
    Idt,
};

/** Sequencing technologies offered by the original tool. */
enum class SequencingTech
{
    Illumina,
    Nanopore,
};

/** Algorithm 1: the DNASimulator error model. */
class DnaSimulatorModel : public ErrorModel
{
  public:
    /** Construct from an explicit dictionary. */
    explicit DnaSimulatorModel(
        std::array<DnaSimulatorEntry, kNumBases> dictionary,
        std::string display_name = "dnasimulator");

    /**
     * The dictionary predetermined for a (synthesis, sequencing)
     * pair, mirroring the hard-coded tables of the original tool
     * (representative magnitudes: Illumina ~0.1-0.3% total error,
     * Nanopore ~5-6%).
     */
    static DnaSimulatorModel preset(SynthesisTech synth,
                                    SequencingTech seq);

    /**
     * Build the dictionary from a calibrated ErrorProfile's
     * base-conditional aggregates, discarding everything Algorithm 1
     * cannot express (confusion structure, spatial skew,
     * second-order errors). This matches how the original tool's
     * dictionaries were produced — by summarizing experimental error
     * statistics.
     */
    static DnaSimulatorModel fromProfile(const ErrorProfile &profile);

    Strand transmit(const Strand &ref, Rng &rng) const override;
    Strand transmit(const Strand &ref, Rng &rng,
                    LineageRecorder &lineage) const override;
    std::string name() const override { return name_; }

    const std::array<DnaSimulatorEntry, kNumBases> &
    dictionary() const
    {
        return dictionary_;
    }

  private:
    std::array<DnaSimulatorEntry, kNumBases> dictionary_;
    std::string name_;
};

} // namespace dnasim

#endif // DNASIM_CORE_DNASIMULATOR_MODEL_HH
