/**
 * @file
 * Sequencing-coverage models: how many noisy copies each reference
 * strand receives.
 *
 * DNASimulator assumes a user-fixed uniform coverage; real data shows
 * the per-strand read count is approximately negative-binomially
 * distributed (Heckel et al. [13]). The simulator supports fixed,
 * custom (per-cluster, e.g. copied from a real dataset) and
 * negative-binomial coverage, plus an independent erasure
 * probability for clusters that are lost entirely.
 */

#ifndef DNASIM_CORE_COVERAGE_HH
#define DNASIM_CORE_COVERAGE_HH

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"

namespace dnasim
{

/** Per-cluster coverage sampler. */
class CoverageModel
{
  public:
    virtual ~CoverageModel() = default;

    /** Number of copies for the cluster at @p cluster_idx. */
    virtual size_t sample(size_t cluster_idx, Rng &rng) const = 0;

    /** Short name for reports. */
    virtual std::string name() const = 0;
};

/** Every cluster gets exactly n copies. */
class FixedCoverage : public CoverageModel
{
  public:
    explicit FixedCoverage(size_t n);

    size_t sample(size_t cluster_idx, Rng &rng) const override;
    std::string name() const override;

  private:
    size_t n_;
};

/**
 * Per-cluster coverages copied from another dataset ("custom
 * coverage" in Table 2.1): cluster i gets coverages[i] copies.
 */
class CustomCoverage : public CoverageModel
{
  public:
    explicit CustomCoverage(std::vector<size_t> coverages);

    size_t sample(size_t cluster_idx, Rng &rng) const override;
    std::string name() const override;

    size_t numClusters() const { return coverages_.size(); }

  private:
    std::vector<size_t> coverages_;
};

/**
 * Negative-binomial coverage with a hard cap and an independent
 * erasure probability.
 */
class NegativeBinomialCoverage : public CoverageModel
{
  public:
    /**
     * @param mean       target mean coverage
     * @param dispersion the negative binomial r parameter; smaller
     *                   values give a wider spread
     * @param max_cap    coverages above this are clamped (0 = none)
     * @param p_erasure  probability a cluster gets zero copies
     *                   regardless of the draw
     */
    NegativeBinomialCoverage(double mean, double dispersion,
                             size_t max_cap = 0,
                             double p_erasure = 0.0);

    size_t sample(size_t cluster_idx, Rng &rng) const override;
    std::string name() const override;

  private:
    double mean_;
    double dispersion_;
    size_t max_cap_;
    double p_erasure_;
};

} // namespace dnasim

#endif // DNASIM_CORE_COVERAGE_HH
