#include "core/channel_simulator.hh"

#include "base/logging.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "par/thread_pool.hh"

namespace dnasim
{

ChannelSimulator::ChannelSimulator(const ErrorModel &model)
    : model_(model)
{}

Cluster
ChannelSimulator::simulateCluster(const Strand &reference, size_t n,
                                  Rng &rng,
                                  ClusterLineage *lineage) const
{
    Cluster cluster;
    cluster.reference = reference;
    cluster.copies.reserve(n);
    // Steady-state heap traffic here is the output strands only:
    // per-transmit scratch (e.g. the contextual channel's
    // homopolymer mask) lives in thread_local buffers inside the
    // models, sized once per worker.
    if (lineage == nullptr) {
        for (size_t k = 0; k < n; ++k)
            cluster.copies.push_back(model_.transmit(reference, rng));
        return cluster;
    }
    lineage->read_event_end.reserve(n);
    for (size_t k = 0; k < n; ++k) {
        LineageRecorder recorder(&lineage->events);
        cluster.copies.push_back(
            model_.transmit(reference, rng, recorder));
        lineage->read_event_end.push_back(
            static_cast<uint32_t>(lineage->events.size()));
    }
    return cluster;
}

namespace
{

struct SimStats
{
    obs::Counter &clusters;
    obs::Timer &time;
    obs::Distribution &cluster_size;

    static SimStats &
    get()
    {
        auto &reg = obs::Registry::global();
        static SimStats ss{
            reg.counter("channel.clusters",
                        "clusters simulated by ChannelSimulator"),
            reg.timer("channel.simulate_time",
                      "wall time in ChannelSimulator::simulate*"),
            reg.distribution("channel.cluster_size",
                             "copies per simulated cluster"),
        };
        return ss;
    }
};

} // anonymous namespace

std::vector<Rng>
forkClusterStreams(Rng &rng, size_t n)
{
    std::vector<Rng> streams;
    streams.reserve(n);
    for (size_t i = 0; i < n; ++i)
        streams.push_back(rng.fork(i));
    return streams;
}

Dataset
ChannelSimulator::simulate(const std::vector<Strand> &references,
                           const CoverageModel &coverage, Rng &rng,
                           LineageLog *lineage) const
{
    SimStats &ss = SimStats::get();
    obs::ScopedTimer timer(ss.time);
    obs::ScopedTrace span("channel.simulate", "channel");

    // Pre-forked per-cluster streams: cluster i draws from
    // rng.fork(i) regardless of which thread simulates it, so the
    // output is bit-identical to the serial run for any --threads.
    // Lineage arenas are per cluster too, each touched only by the
    // worker that owns that cluster — the log needs no merge step
    // and no locks to come out identical at any thread count.
    std::vector<Rng> streams =
        forkClusterStreams(rng, references.size());
    std::vector<Cluster> clusters(references.size());
    if (lineage != nullptr)
        lineage->beginRun(references.size());
    obs::ProgressScope progress("simulate", references.size());
    par::parallelFor(0, references.size(), [&](size_t i) {
        size_t n = coverage.sample(i, streams[i]);
        clusters[i] = simulateCluster(
            references[i], n, streams[i],
            lineage != nullptr ? &lineage->cluster(i) : nullptr);
        ss.clusters.inc();
        ss.cluster_size.record(n);
        progress.advance();
    });
    return Dataset(std::move(clusters));
}

Dataset
ChannelSimulator::simulateLike(const Dataset &shape, Rng &rng,
                               LineageLog *lineage) const
{
    SimStats &ss = SimStats::get();
    obs::ScopedTimer timer(ss.time);
    obs::ScopedTrace span("channel.simulateLike", "channel");

    std::vector<Rng> streams = forkClusterStreams(rng, shape.size());
    std::vector<Cluster> clusters(shape.size());
    if (lineage != nullptr)
        lineage->beginRun(shape.size());
    obs::ProgressScope progress("simulate", shape.size());
    par::parallelFor(0, shape.size(), [&](size_t i) {
        clusters[i] = simulateCluster(
            shape[i].reference, shape[i].coverage(), streams[i],
            lineage != nullptr ? &lineage->cluster(i) : nullptr);
        ss.clusters.inc();
        ss.cluster_size.record(shape[i].coverage());
        progress.advance();
    });
    return Dataset(std::move(clusters));
}

} // namespace dnasim
