#include "core/channel_simulator.hh"

#include "base/logging.hh"

namespace dnasim
{

ChannelSimulator::ChannelSimulator(const ErrorModel &model)
    : model_(model)
{}

Cluster
ChannelSimulator::simulateCluster(const Strand &reference, size_t n,
                                  Rng &rng) const
{
    Cluster cluster;
    cluster.reference = reference;
    cluster.copies.reserve(n);
    for (size_t k = 0; k < n; ++k)
        cluster.copies.push_back(model_.transmit(reference, rng));
    return cluster;
}

Dataset
ChannelSimulator::simulate(const std::vector<Strand> &references,
                           const CoverageModel &coverage,
                           Rng &rng) const
{
    Dataset dataset;
    dataset.clusters().reserve(references.size());
    for (size_t i = 0; i < references.size(); ++i) {
        Rng cluster_rng = rng.fork(i);
        size_t n = coverage.sample(i, cluster_rng);
        dataset.add(simulateCluster(references[i], n, cluster_rng));
    }
    return dataset;
}

Dataset
ChannelSimulator::simulateLike(const Dataset &shape, Rng &rng) const
{
    Dataset dataset;
    dataset.clusters().reserve(shape.size());
    for (size_t i = 0; i < shape.size(); ++i) {
        Rng cluster_rng = rng.fork(i);
        dataset.add(simulateCluster(shape[i].reference,
                                    shape[i].coverage(), cluster_rng));
    }
    return dataset;
}

} // namespace dnasim
