#include "core/channel_simulator.hh"

#include "base/logging.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace dnasim
{

ChannelSimulator::ChannelSimulator(const ErrorModel &model)
    : model_(model)
{}

Cluster
ChannelSimulator::simulateCluster(const Strand &reference, size_t n,
                                  Rng &rng) const
{
    Cluster cluster;
    cluster.reference = reference;
    cluster.copies.reserve(n);
    for (size_t k = 0; k < n; ++k)
        cluster.copies.push_back(model_.transmit(reference, rng));
    return cluster;
}

namespace
{

struct SimStats
{
    obs::Counter &clusters;
    obs::Timer &time;
    obs::Distribution &cluster_size;

    static SimStats &
    get()
    {
        auto &reg = obs::Registry::global();
        static SimStats ss{
            reg.counter("channel.clusters",
                        "clusters simulated by ChannelSimulator"),
            reg.timer("channel.simulate_time",
                      "wall time in ChannelSimulator::simulate*"),
            reg.distribution("channel.cluster_size",
                             "copies per simulated cluster"),
        };
        return ss;
    }
};

} // anonymous namespace

Dataset
ChannelSimulator::simulate(const std::vector<Strand> &references,
                           const CoverageModel &coverage,
                           Rng &rng) const
{
    SimStats &ss = SimStats::get();
    obs::ScopedTimer timer(ss.time);
    obs::ScopedTrace span("channel.simulate", "channel");

    Dataset dataset;
    dataset.clusters().reserve(references.size());
    for (size_t i = 0; i < references.size(); ++i) {
        Rng cluster_rng = rng.fork(i);
        size_t n = coverage.sample(i, cluster_rng);
        dataset.add(simulateCluster(references[i], n, cluster_rng));
        ss.clusters.inc();
        ss.cluster_size.record(n);
    }
    return dataset;
}

Dataset
ChannelSimulator::simulateLike(const Dataset &shape, Rng &rng) const
{
    SimStats &ss = SimStats::get();
    obs::ScopedTimer timer(ss.time);
    obs::ScopedTrace span("channel.simulateLike", "channel");

    Dataset dataset;
    dataset.clusters().reserve(shape.size());
    for (size_t i = 0; i < shape.size(); ++i) {
        Rng cluster_rng = rng.fork(i);
        dataset.add(simulateCluster(shape[i].reference,
                                    shape[i].coverage(), cluster_rng));
        ss.clusters.inc();
        ss.cluster_size.record(shape[i].coverage());
    }
    return dataset;
}

} // namespace dnasim
