#include "core/channel_simulator.hh"

#include <ostream>

#include "base/logging.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "par/thread_pool.hh"

namespace dnasim
{

ChannelSimulator::ChannelSimulator(const ErrorModel &model)
    : model_(model)
{}

Cluster
ChannelSimulator::simulateCluster(const Strand &reference, size_t n,
                                  Rng &rng,
                                  ClusterLineage *lineage) const
{
    Cluster cluster;
    cluster.reference = reference;
    cluster.copies.reserve(n);
    // Steady-state heap traffic here is the output strands only:
    // per-transmit scratch (e.g. the contextual channel's
    // homopolymer mask) lives in thread_local buffers inside the
    // models, sized once per worker.
    if (lineage == nullptr) {
        for (size_t k = 0; k < n; ++k)
            cluster.copies.push_back(model_.transmit(reference, rng));
        return cluster;
    }
    lineage->read_event_end.reserve(n);
    for (size_t k = 0; k < n; ++k) {
        LineageRecorder recorder(&lineage->events);
        cluster.copies.push_back(
            model_.transmit(reference, rng, recorder));
        lineage->read_event_end.push_back(
            static_cast<uint32_t>(lineage->events.size()));
    }
    return cluster;
}

namespace
{

struct SimStats
{
    obs::Counter &clusters;
    obs::Timer &time;
    obs::Distribution &cluster_size;

    static SimStats &
    get()
    {
        auto &reg = obs::Registry::global();
        static SimStats ss{
            reg.counter("channel.clusters",
                        "clusters simulated by ChannelSimulator"),
            reg.timer("channel.simulate_time",
                      "wall time in ChannelSimulator::simulate*"),
            reg.distribution("channel.cluster_size",
                             "copies per simulated cluster"),
        };
        return ss;
    }
};

} // anonymous namespace

std::vector<Rng>
forkClusterStreams(Rng &rng, size_t n)
{
    std::vector<Rng> streams;
    streams.reserve(n);
    for (size_t i = 0; i < n; ++i)
        streams.push_back(rng.fork(i));
    return streams;
}

Dataset
ChannelSimulator::simulate(const std::vector<Strand> &references,
                           const CoverageModel &coverage, Rng &rng,
                           LineageLog *lineage) const
{
    SimStats &ss = SimStats::get();
    obs::ScopedTimer timer(ss.time);
    obs::ScopedTrace span("channel.simulate", "channel");

    // Pre-forked per-cluster streams: cluster i draws from
    // rng.fork(i) regardless of which thread simulates it, so the
    // output is bit-identical to the serial run for any --threads.
    // Lineage arenas are per cluster too, each touched only by the
    // worker that owns that cluster — the log needs no merge step
    // and no locks to come out identical at any thread count.
    std::vector<Rng> streams =
        forkClusterStreams(rng, references.size());
    std::vector<Cluster> clusters(references.size());
    if (lineage != nullptr)
        lineage->beginRun(references.size());
    obs::ProgressScope progress("simulate", references.size());
    par::parallelFor(0, references.size(), [&](size_t i) {
        size_t n = coverage.sample(i, streams[i]);
        clusters[i] = simulateCluster(
            references[i], n, streams[i],
            lineage != nullptr ? &lineage->cluster(i) : nullptr);
        ss.clusters.inc();
        ss.cluster_size.record(n);
        progress.advance();
    });
    return Dataset(std::move(clusters));
}

PoolSimulateResult
ChannelSimulator::simulateToPool(const StrandPoolView &references,
                                 const CoverageModel &coverage,
                                 Rng &rng,
                                 PackedStrandPoolBuilder &reads_out,
                                 std::ostream *origins_out,
                                 const PoolSimulateOptions &options) const
{
    SimStats &ss = SimStats::get();
    obs::ScopedTimer timer(ss.time);
    obs::ScopedTrace span("channel.simulateToPool", "channel");
    DNASIM_ASSERT(options.chunk_clusters > 0, "zero chunk size");

    PoolSimulateResult result;
    const size_t n = references.size();
    std::vector<Rng> streams;
    std::vector<Cluster> chunk;
    obs::ProgressScope progress("simulate", n);
    for (size_t lo = 0; lo < n && !result.truncated;
         lo += options.chunk_clusters) {
        const size_t len = std::min(options.chunk_clusters, n - lo);
        // Streams are forked by *global* cluster index, so cluster i
        // draws exactly the numbers simulate() would — chunking is
        // invisible in the output.
        streams.clear();
        streams.reserve(len);
        for (size_t k = 0; k < len; ++k)
            streams.push_back(rng.fork(lo + k));
        chunk.assign(len, Cluster{});
        par::parallelFor(0, len, [&](size_t k) {
            thread_local Strand ref;
            references.materialize(lo + k, ref);
            const size_t copies = coverage.sample(lo + k, streams[k]);
            chunk[k] = simulateCluster(ref, copies, streams[k]);
            ss.clusters.inc();
            ss.cluster_size.record(copies);
            progress.advance();
        });
        // Serial drain keeps builder appends in cluster order.
        for (size_t k = 0; k < len && !result.truncated; ++k) {
            const auto origin = static_cast<uint32_t>(lo + k);
            bool contributed = false;
            for (const Strand &copy : chunk[k].copies) {
                if (options.max_reads != 0 &&
                    result.reads >= options.max_reads) {
                    result.truncated = true;
                    break;
                }
                const bool ok = reads_out.append(copy);
                DNASIM_ASSERT(ok, "channel emitted a non-ACGT read");
                if (origins_out != nullptr) {
                    origins_out->write(
                        reinterpret_cast<const char *>(&origin),
                        sizeof(origin));
                }
                ++result.reads;
                contributed = true;
            }
            if (contributed || chunk[k].copies.empty())
                ++result.clusters;
        }
    }
    return result;
}

Dataset
ChannelSimulator::simulateLike(const Dataset &shape, Rng &rng,
                               LineageLog *lineage) const
{
    SimStats &ss = SimStats::get();
    obs::ScopedTimer timer(ss.time);
    obs::ScopedTrace span("channel.simulateLike", "channel");

    std::vector<Rng> streams = forkClusterStreams(rng, shape.size());
    std::vector<Cluster> clusters(shape.size());
    if (lineage != nullptr)
        lineage->beginRun(shape.size());
    obs::ProgressScope progress("simulate", shape.size());
    par::parallelFor(0, shape.size(), [&](size_t i) {
        clusters[i] = simulateCluster(
            shape[i].reference, shape[i].coverage(), streams[i],
            lineage != nullptr ? &lineage->cluster(i) : nullptr);
        ss.clusters.inc();
        ss.cluster_size.record(shape[i].coverage());
        progress.advance();
    });
    return Dataset(std::move(clusters));
}

} // namespace dnasim
