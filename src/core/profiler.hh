/**
 * @file
 * Data-driven calibration of an ErrorProfile from clustered data.
 *
 * For every (reference, noisy copy) pair the profiler recovers the
 * maximum-likelihood error sequence via minimum edit distance with
 * random tie-breaking (Appendix B) and accumulates:
 *
 *  - base-conditional substitution / insertion / deletion counts;
 *  - the substitution confusion matrix and inserted-base counts;
 *  - long-deletion (run length >= 2) start rate and length histogram
 *    (section 3.3.1);
 *  - the aggregate positional error histogram (section 3.3.2);
 *  - a census of second-order errors with per-error positional
 *    histograms, of which the top K become model parameters
 *    (section 3.3.3).
 *
 * This replaces DNASimulator's hand-maintained dictionaries with the
 * paper's "data-driven approach that does not require manual
 * intervention".
 */

#ifndef DNASIM_CORE_PROFILER_HH
#define DNASIM_CORE_PROFILER_HH

#include <cstdint>

#include "core/error_profile.hh"
#include "data/dataset.hh"

namespace dnasim
{

/** Calibration options. */
struct ProfilerOptions
{
    /// How many second-order errors to keep (paper: top 10).
    size_t top_second_order = 10;
    /// Smoothing floor for the aggregate spatial profile, relative
    /// to the mean positional mass.
    double spatial_floor = 0.05;
    /// Smoothing floor for per-second-order-error spatial profiles
    /// (sparser data, stronger floor).
    double second_order_floor = 0.10;
    /// Tie-breaking seed for the edit-distance backtrace.
    uint64_t seed = 0xca11b8a7e;
    /// If non-zero, use at most this many copies per cluster.
    size_t max_copies_per_cluster = 0;
    /// Copies whose edit distance to their reference exceeds this
    /// fraction of the reference length are treated as clustering
    /// artifacts (alien or truncated reads) and excluded from
    /// calibration. 0 disables the filter.
    double max_copy_error_frac = 0.30;
    /// Derive the aggregate spatial profile from gestalt-aligned
    /// error positions (the paper bases its spatial-skew parameter
    /// on the gestalt-aligned comparison, Fig. 3.2b) instead of the
    /// edit-operation positions. Gestalt attribution concentrates
    /// terminal misalignment on the terminal positions, which is
    /// the source of the skew model's over-correction of the
    /// Iterative algorithm (section 3.3.2).
    bool spatial_from_gestalt = true;
};

/** Calibrates ErrorProfiles from clustered datasets. */
class ErrorProfiler
{
  public:
    explicit ErrorProfiler(ProfilerOptions options = {});

    const ProfilerOptions &options() const { return options_; }

    /**
     * Calibrate a full ErrorProfile from @p data. Clusters with
     * empty references and empty clusters contribute nothing.
     * Fatal if the dataset contains no (reference, copy) pairs.
     */
    ErrorProfile calibrate(const Dataset &data) const;

  private:
    ProfilerOptions options_;
};

} // namespace dnasim

#endif // DNASIM_CORE_PROFILER_HH
