/**
 * @file
 * Ready-made error profiles for the sequencing technologies the
 * paper surveys (Table 1.1), and preset staged channels for
 * archival-storage studies.
 *
 * Magnitudes follow Table 1.1 and the cited characterization
 * studies: Sanger ~0.005% error, Illumina ~0.5%, Nanopore ~5.9%
 * (with the wetlab channel's terminal skew and affinity-biased
 * confusion structure). These are synthetic presets for simulation
 * studies — calibrate from your own data with ErrorProfiler when
 * you have it.
 */

#ifndef DNASIM_CORE_TECH_PROFILES_HH
#define DNASIM_CORE_TECH_PROFILES_HH

#include "core/error_profile.hh"
#include "core/stages.hh"

namespace dnasim
{

/** Sequencing technology generations from Table 1.1. */
enum class SequencerGeneration
{
    Sanger,   ///< 1st gen: ~0.005% error, short runs, expensive
    Illumina, ///< 2nd gen: ~0.5% error, 25-150 bp reads
    Nanopore, ///< 3rd gen: ~5.9% error, very long reads
};

/** Printable name of a generation. */
const char *sequencerName(SequencerGeneration gen);

/** Nominal aggregate per-base error rate of a generation. */
double sequencerErrorRate(SequencerGeneration gen);

/**
 * A full ErrorProfile for @p gen at strand length @p strand_length.
 * Nanopore carries the wetlab channel's structure (terminal skew,
 * biased confusion, long deletions); Sanger and Illumina are
 * substitution-dominated and spatially uniform.
 */
ErrorProfile sequencerProfile(SequencerGeneration gen,
                              size_t strand_length);

/**
 * A composable archival channel preset: synthesis at
 * @p synthesis_error, @p storage_years of decay, PCR amplification
 * for random access, sampling to @p mean_coverage reads per
 * reference, and sequencing with @p gen's profile.
 *
 * @param num_references  library size (used to size the sampling
 *                        stage: reads = mean_coverage * references)
 */
StagedChannel makeArchivalChannel(SequencerGeneration gen,
                                  size_t strand_length,
                                  size_t num_references,
                                  double mean_coverage,
                                  double storage_years = 0.0,
                                  double synthesis_error = 0.002);

} // namespace dnasim

#endif // DNASIM_CORE_TECH_PROFILES_HH
