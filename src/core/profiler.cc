#include "core/profiler.hh"

#include <algorithm>
#include <map>

#include "align/edit_distance.hh"
#include "align/gestalt.hh"
#include "base/logging.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "stats/histogram.hh"

namespace dnasim
{

namespace
{

/** Ordering for use as a map key. */
struct KeyLess
{
    bool
    operator()(const SecondOrderKey &a, const SecondOrderKey &b) const
    {
        if (a.type != b.type)
            return a.type < b.type;
        if (a.base != b.base)
            return a.base < b.base;
        return a.repl < b.repl;
    }
};

struct SecondOrderCount
{
    uint64_t count = 0;
    Histogram positions;
};

} // anonymous namespace

ErrorProfiler::ErrorProfiler(ProfilerOptions options)
    : options_(options)
{
    DNASIM_ASSERT(options_.spatial_floor >= 0.0 &&
                      options_.second_order_floor >= 0.0,
                  "negative smoothing floor");
}

ErrorProfile
ErrorProfiler::calibrate(const Dataset &data) const
{
    auto &reg = obs::Registry::global();
    static obs::Timer &calibrate_time = reg.timer(
        "profiler.calibrate_time", "wall time in calibrate()");
    static obs::Counter &pairs_profiled = reg.counter(
        "profiler.pairs", "(reference, copy) pairs profiled");
    static obs::Counter &pairs_skipped = reg.counter(
        "profiler.pairs_skipped",
        "pairs dropped as clustering artifacts");
    static obs::Counter &cells_computed = reg.counter(
        "profiler.edit_cells",
        "edit-distance DP cells computed during calibration");
    obs::ScopedTimer timer(calibrate_time);
    obs::ScopedTrace span("profiler.calibrate", "profiler");

    Rng rng(options_.seed);

    std::array<uint64_t, kNumBases> base_occurrences{};
    std::array<uint64_t, kNumBases> sub_counts{};
    std::array<uint64_t, kNumBases> ins_counts{};
    std::array<uint64_t, kNumBases> single_del_counts{};
    std::array<std::array<uint64_t, kNumBases>, kNumBases> confusion{};
    std::array<uint64_t, kNumBases> insert_base_counts{};
    uint64_t total_positions = 0;
    uint64_t total_subs = 0, total_ins = 0, total_deleted_bases = 0;
    uint64_t long_del_starts = 0;
    Histogram long_del_lengths;
    Histogram spatial;
    Histogram spatial_gestalt;
    uint64_t positions_in_runs = 0, positions_outside_runs = 0;
    uint64_t errors_in_runs = 0, errors_outside_runs = 0;
    std::map<SecondOrderKey, SecondOrderCount, KeyLess> census;
    size_t design_length = 0;

    for (const auto &cluster : data) {
        const Strand &ref = cluster.reference;
        if (ref.empty() || cluster.copies.empty())
            continue;
        design_length = std::max(design_length, ref.size());

        auto ref_bases = baseCounts(ref);
        auto run_mask = homopolymerRunMask(
            ref, ErrorProfile::kHomopolymerRunLength);
        size_t run_positions = 0;
        for (bool b : run_mask)
            run_positions += b ? 1 : 0;

        size_t n_copies = cluster.copies.size();
        if (options_.max_copies_per_cluster > 0) {
            n_copies = std::min(n_copies,
                                options_.max_copies_per_cluster);
        }
        for (size_t c = 0; c < n_copies; ++c) {
            const Strand &copy = cluster.copies[c];

            auto ops = editOps(ref, copy, &rng);
            cells_computed.add(
                static_cast<uint64_t>(ref.size() + 1) *
                static_cast<uint64_t>(copy.size() + 1));
            if (options_.max_copy_error_frac > 0.0 &&
                static_cast<double>(numErrors(ops)) >
                    options_.max_copy_error_frac *
                        static_cast<double>(ref.size())) {
                // Alien or truncated read — a clustering artifact,
                // not a channel observation.
                pairs_skipped.inc();
                continue;
            }
            pairs_profiled.inc();
            total_positions += ref.size();
            for (size_t b = 0; b < kNumBases; ++b)
                base_occurrences[b] += ref_bases[b];
            positions_in_runs += run_positions;
            positions_outside_runs += ref.size() - run_positions;
            for (const auto &op : ops) {
                if (op.type == EditOpType::Equal)
                    continue;
                size_t pos = std::min(op.ref_pos, ref.size() - 1);
                if (run_mask[pos])
                    ++errors_in_runs;
                else
                    ++errors_outside_runs;
            }

            if (options_.spatial_from_gestalt) {
                for (size_t pos : gestaltErrorPositions(ref, copy))
                    spatial_gestalt.add(pos);
            }

            auto clamp_pos = [&](size_t p) {
                return std::min(p, ref.size() - 1);
            };

            // Non-deletion ops first; deletions handled per run.
            for (const auto &op : ops) {
                switch (op.type) {
                  case EditOpType::Equal:
                  case EditOpType::Delete:
                    break;
                  case EditOpType::Substitute: {
                    size_t b = baseIndex(op.ref_base);
                    size_t r = baseIndex(op.copy_base);
                    ++sub_counts[b];
                    ++confusion[b][r];
                    ++total_subs;
                    spatial.add(op.ref_pos);
                    SecondOrderKey key{EditOpType::Substitute,
                                       op.ref_base, op.copy_base};
                    auto &entry = census[key];
                    ++entry.count;
                    entry.positions.add(op.ref_pos);
                    break;
                  }
                  case EditOpType::Insert: {
                    size_t pos = clamp_pos(op.ref_pos);
                    size_t b = baseIndex(ref[pos]);
                    ++ins_counts[b];
                    ++insert_base_counts[baseIndex(op.copy_base)];
                    ++total_ins;
                    spatial.add(pos);
                    SecondOrderKey key{EditOpType::Insert,
                                       op.copy_base, '\0'};
                    auto &entry = census[key];
                    ++entry.count;
                    entry.positions.add(pos);
                    break;
                  }
                }
            }

            for (const auto &run : deletionRuns(ops)) {
                total_deleted_bases += run.length;
                for (size_t k = 0; k < run.length; ++k)
                    spatial.add(run.ref_pos + k);
                if (run.length == 1) {
                    size_t b = baseIndex(ref[run.ref_pos]);
                    ++single_del_counts[b];
                    SecondOrderKey key{EditOpType::Delete,
                                       ref[run.ref_pos], '\0'};
                    auto &entry = census[key];
                    ++entry.count;
                    entry.positions.add(run.ref_pos);
                } else {
                    ++long_del_starts;
                    long_del_lengths.add(run.length);
                }
            }
        }
    }

    if (total_positions == 0)
        DNASIM_FATAL("cannot calibrate: dataset has no "
                     "(reference, copy) pairs");

    ErrorProfile p;
    p.design_length = design_length;

    auto rate = [](uint64_t num, uint64_t den) {
        return den == 0 ? 0.0
                        : static_cast<double>(num) /
                              static_cast<double>(den);
    };

    p.p_sub = rate(total_subs, total_positions);
    p.p_ins = rate(total_ins, total_positions);
    p.p_del = rate(total_deleted_bases, total_positions);

    for (size_t b = 0; b < kNumBases; ++b) {
        p.p_sub_given[b] = rate(sub_counts[b], base_occurrences[b]);
        p.p_ins_given[b] = rate(ins_counts[b], base_occurrences[b]);
        p.p_del_given[b] =
            rate(single_del_counts[b], base_occurrences[b]);
        for (size_t r = 0; r < kNumBases; ++r)
            p.confusion[b][r] = rate(confusion[b][r], sub_counts[b]);
    }

    uint64_t total_inserted = 0;
    for (uint64_t c : insert_base_counts)
        total_inserted += c;
    for (size_t b = 0; b < kNumBases; ++b)
        p.insert_base[b] = rate(insert_base_counts[b], total_inserted);

    p.p_long_del = rate(long_del_starts, total_positions);
    if (long_del_lengths.numBins() > 2) {
        // Bin i of the histogram is run length i; weights start at 2.
        for (size_t len = 2; len < long_del_lengths.numBins(); ++len) {
            p.long_del_len_weights.push_back(
                static_cast<double>(long_del_lengths.count(len)));
        }
    }

    p.spatial = PositionProfile::fromHistogram(
        options_.spatial_from_gestalt ? spatial_gestalt : spatial,
        design_length, options_.spatial_floor);

    if (positions_in_runs > 0 && positions_outside_runs > 0 &&
        errors_outside_runs > 0) {
        double rate_in = rate(errors_in_runs, positions_in_runs);
        double rate_out =
            rate(errors_outside_runs, positions_outside_runs);
        p.homopolymer_mult = rate_in / rate_out;
    }

    // Top-K second-order errors by count.
    std::vector<std::pair<SecondOrderKey, const SecondOrderCount *>>
        ranked;
    ranked.reserve(census.size());
    for (const auto &[key, entry] : census)
        ranked.emplace_back(key, &entry);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.second->count > b.second->count;
              });
    size_t keep = std::min(options_.top_second_order, ranked.size());
    for (size_t i = 0; i < keep; ++i) {
        const auto &[key, entry] = ranked[i];
        SecondOrderSpec spec;
        spec.key = key;
        spec.count = entry->count;
        if (key.type == EditOpType::Insert) {
            spec.rate = rate(entry->count, total_positions);
        } else {
            spec.rate = rate(entry->count,
                             base_occurrences[baseIndex(key.base)]);
        }
        spec.spatial = PositionProfile::fromHistogram(
            entry->positions, design_length,
            options_.second_order_floor);
        p.second_order.push_back(std::move(spec));
    }

    return p;
}

} // namespace dnasim
