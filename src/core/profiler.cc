#include "core/profiler.hh"

#include <algorithm>
#include <map>

#include "align/edit_distance.hh"
#include "align/gestalt.hh"
#include "base/logging.hh"
#include "core/channel_simulator.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "par/thread_pool.hh"
#include "stats/histogram.hh"

namespace dnasim
{

namespace
{

/** Ordering for use as a map key. */
struct KeyLess
{
    bool
    operator()(const SecondOrderKey &a, const SecondOrderKey &b) const
    {
        if (a.type != b.type)
            return a.type < b.type;
        if (a.base != b.base)
            return a.base < b.base;
        return a.repl < b.repl;
    }
};

struct SecondOrderCount
{
    uint64_t count = 0;
    Histogram positions;
};

struct ProfilerStats
{
    obs::Timer &calibrate_time;
    obs::Counter &pairs_profiled;
    obs::Counter &pairs_skipped;

    static ProfilerStats &
    get()
    {
        auto &reg = obs::Registry::global();
        static ProfilerStats ps{
            reg.timer("profiler.calibrate_time",
                      "wall time in calibrate()"),
            reg.counter("profiler.pairs",
                        "(reference, copy) pairs profiled"),
            reg.counter("profiler.pairs_skipped",
                        "pairs dropped as clustering artifacts"),
        };
        return ps;
    }
};

/**
 * Everything calibrate() counts, gathered per cluster (or per chunk
 * of clusters) and merged in cluster order. Every field is a sum or
 * a max, so merging partial accumulators reproduces the serial
 * totals exactly regardless of how clusters were partitioned across
 * threads.
 */
struct CalibrationAccum
{
    std::array<uint64_t, kNumBases> base_occurrences{};
    std::array<uint64_t, kNumBases> sub_counts{};
    std::array<uint64_t, kNumBases> ins_counts{};
    std::array<uint64_t, kNumBases> single_del_counts{};
    std::array<std::array<uint64_t, kNumBases>, kNumBases> confusion{};
    std::array<uint64_t, kNumBases> insert_base_counts{};
    uint64_t total_positions = 0;
    uint64_t total_subs = 0, total_ins = 0, total_deleted_bases = 0;
    uint64_t long_del_starts = 0;
    Histogram long_del_lengths;
    Histogram spatial;
    Histogram spatial_gestalt;
    uint64_t positions_in_runs = 0, positions_outside_runs = 0;
    uint64_t errors_in_runs = 0, errors_outside_runs = 0;
    std::map<SecondOrderKey, SecondOrderCount, KeyLess> census;
    size_t design_length = 0;

    void absorbCluster(const Cluster &cluster,
                       const ProfilerOptions &options, Rng &rng);
    void merge(CalibrationAccum &&other);
};

void
CalibrationAccum::absorbCluster(const Cluster &cluster,
                                const ProfilerOptions &options,
                                Rng &rng)
{
    ProfilerStats &ps = ProfilerStats::get();

    const Strand &ref = cluster.reference;
    if (ref.empty() || cluster.copies.empty())
        return;
    design_length = std::max(design_length, ref.size());

    auto ref_bases = baseCounts(ref);
    auto run_mask = homopolymerRunMask(
        ref, ErrorProfile::kHomopolymerRunLength);
    size_t run_positions = 0;
    for (bool b : run_mask)
        run_positions += b ? 1 : 0;

    size_t n_copies = cluster.copies.size();
    if (options.max_copies_per_cluster > 0)
        n_copies = std::min(n_copies, options.max_copies_per_cluster);

    // One Peq table build for the cluster reference: the edit-script
    // engine seeds its Tier-B band from pattern.distance(copy), so
    // the tables are hit once per copy.
    thread_local MyersPattern pattern;
    thread_local std::vector<EditOp> ops;
    pattern.assign(ref);
    for (size_t c = 0; c < n_copies; ++c) {
        const Strand &copy = cluster.copies[c];

        editOpsInto(pattern, ref, copy, &rng, ops);
        if (options.max_copy_error_frac > 0.0 &&
            static_cast<double>(numErrors(ops)) >
                options.max_copy_error_frac *
                    static_cast<double>(ref.size())) {
            // Alien or truncated read — a clustering artifact,
            // not a channel observation.
            ps.pairs_skipped.inc();
            continue;
        }
        ps.pairs_profiled.inc();
        total_positions += ref.size();
        for (size_t b = 0; b < kNumBases; ++b)
            base_occurrences[b] += ref_bases[b];
        positions_in_runs += run_positions;
        positions_outside_runs += ref.size() - run_positions;
        for (const auto &op : ops) {
            if (op.type == EditOpType::Equal)
                continue;
            size_t pos = std::min(op.ref_pos, ref.size() - 1);
            if (run_mask[pos])
                ++errors_in_runs;
            else
                ++errors_outside_runs;
        }

        if (options.spatial_from_gestalt) {
            for (size_t pos : gestaltErrorPositions(ref, copy))
                spatial_gestalt.add(pos);
        }

        auto clamp_pos = [&](size_t p) {
            return std::min(p, ref.size() - 1);
        };

        // Non-deletion ops first; deletions handled per run.
        for (const auto &op : ops) {
            switch (op.type) {
              case EditOpType::Equal:
              case EditOpType::Delete:
                break;
              case EditOpType::Substitute: {
                size_t b = baseIndex(op.ref_base);
                size_t r = baseIndex(op.copy_base);
                ++sub_counts[b];
                ++confusion[b][r];
                ++total_subs;
                spatial.add(op.ref_pos);
                SecondOrderKey key{EditOpType::Substitute,
                                   op.ref_base, op.copy_base};
                auto &entry = census[key];
                ++entry.count;
                entry.positions.add(op.ref_pos);
                break;
              }
              case EditOpType::Insert: {
                size_t pos = clamp_pos(op.ref_pos);
                size_t b = baseIndex(ref[pos]);
                ++ins_counts[b];
                ++insert_base_counts[baseIndex(op.copy_base)];
                ++total_ins;
                spatial.add(pos);
                SecondOrderKey key{EditOpType::Insert, op.copy_base,
                                   '\0'};
                auto &entry = census[key];
                ++entry.count;
                entry.positions.add(pos);
                break;
              }
            }
        }

        for (const auto &run : deletionRuns(ops)) {
            total_deleted_bases += run.length;
            for (size_t k = 0; k < run.length; ++k)
                spatial.add(run.ref_pos + k);
            if (run.length == 1) {
                size_t b = baseIndex(ref[run.ref_pos]);
                ++single_del_counts[b];
                SecondOrderKey key{EditOpType::Delete,
                                   ref[run.ref_pos], '\0'};
                auto &entry = census[key];
                ++entry.count;
                entry.positions.add(run.ref_pos);
            } else {
                ++long_del_starts;
                long_del_lengths.add(run.length);
            }
        }
    }
}

void
CalibrationAccum::merge(CalibrationAccum &&other)
{
    for (size_t b = 0; b < kNumBases; ++b) {
        base_occurrences[b] += other.base_occurrences[b];
        sub_counts[b] += other.sub_counts[b];
        ins_counts[b] += other.ins_counts[b];
        single_del_counts[b] += other.single_del_counts[b];
        insert_base_counts[b] += other.insert_base_counts[b];
        for (size_t r = 0; r < kNumBases; ++r)
            confusion[b][r] += other.confusion[b][r];
    }
    total_positions += other.total_positions;
    total_subs += other.total_subs;
    total_ins += other.total_ins;
    total_deleted_bases += other.total_deleted_bases;
    long_del_starts += other.long_del_starts;
    long_del_lengths.merge(other.long_del_lengths);
    spatial.merge(other.spatial);
    spatial_gestalt.merge(other.spatial_gestalt);
    positions_in_runs += other.positions_in_runs;
    positions_outside_runs += other.positions_outside_runs;
    errors_in_runs += other.errors_in_runs;
    errors_outside_runs += other.errors_outside_runs;
    for (auto &[key, entry] : other.census) {
        auto &mine = census[key];
        mine.count += entry.count;
        mine.positions.merge(entry.positions);
    }
    design_length = std::max(design_length, other.design_length);
}

} // anonymous namespace

ErrorProfiler::ErrorProfiler(ProfilerOptions options)
    : options_(options)
{
    DNASIM_ASSERT(options_.spatial_floor >= 0.0 &&
                      options_.second_order_floor >= 0.0,
                  "negative smoothing floor");
}

ErrorProfile
ErrorProfiler::calibrate(const Dataset &data) const
{
    ProfilerStats &ps = ProfilerStats::get();
    obs::ScopedTimer timer(ps.calibrate_time);
    obs::ScopedTrace span("profiler.calibrate", "profiler");

    // One tie-breaking stream per cluster, forked by cluster index,
    // so pair alignment parallelizes without the backtrace draws
    // depending on the processing order.
    Rng root(options_.seed);
    std::vector<Rng> streams = forkClusterStreams(root, data.size());

    // Per-cluster accumulation with an index-ordered tree merge:
    // identical totals for any thread count or chunking.
    std::vector<CalibrationAccum> partials =
        par::parallelTransform(
            data.size(),
            [&](size_t i) {
                CalibrationAccum local;
                local.absorbCluster(data[i], options_, streams[i]);
                return local;
            },
            /*grain=*/4);
    CalibrationAccum acc;
    for (auto &partial : partials)
        acc.merge(std::move(partial));

    if (acc.total_positions == 0)
        DNASIM_FATAL("cannot calibrate: dataset has no "
                     "(reference, copy) pairs");

    ErrorProfile p;
    p.design_length = acc.design_length;

    auto rate = [](uint64_t num, uint64_t den) {
        return den == 0 ? 0.0
                        : static_cast<double>(num) /
                              static_cast<double>(den);
    };

    p.p_sub = rate(acc.total_subs, acc.total_positions);
    p.p_ins = rate(acc.total_ins, acc.total_positions);
    p.p_del = rate(acc.total_deleted_bases, acc.total_positions);

    for (size_t b = 0; b < kNumBases; ++b) {
        p.p_sub_given[b] =
            rate(acc.sub_counts[b], acc.base_occurrences[b]);
        p.p_ins_given[b] =
            rate(acc.ins_counts[b], acc.base_occurrences[b]);
        p.p_del_given[b] =
            rate(acc.single_del_counts[b], acc.base_occurrences[b]);
        for (size_t r = 0; r < kNumBases; ++r)
            p.confusion[b][r] =
                rate(acc.confusion[b][r], acc.sub_counts[b]);
    }

    uint64_t total_inserted = 0;
    for (uint64_t c : acc.insert_base_counts)
        total_inserted += c;
    for (size_t b = 0; b < kNumBases; ++b)
        p.insert_base[b] =
            rate(acc.insert_base_counts[b], total_inserted);

    p.p_long_del = rate(acc.long_del_starts, acc.total_positions);
    if (acc.long_del_lengths.numBins() > 2) {
        // Bin i of the histogram is run length i; weights start at 2.
        for (size_t len = 2; len < acc.long_del_lengths.numBins();
             ++len) {
            p.long_del_len_weights.push_back(static_cast<double>(
                acc.long_del_lengths.count(len)));
        }
    }

    p.spatial = PositionProfile::fromHistogram(
        options_.spatial_from_gestalt ? acc.spatial_gestalt
                                      : acc.spatial,
        acc.design_length, options_.spatial_floor);

    if (acc.positions_in_runs > 0 && acc.positions_outside_runs > 0 &&
        acc.errors_outside_runs > 0) {
        double rate_in =
            rate(acc.errors_in_runs, acc.positions_in_runs);
        double rate_out =
            rate(acc.errors_outside_runs, acc.positions_outside_runs);
        p.homopolymer_mult = rate_in / rate_out;
    }

    // Top-K second-order errors by count. stable_sort keeps the
    // KeyLess order among equal counts, so the selection is
    // deterministic.
    std::vector<std::pair<SecondOrderKey, const SecondOrderCount *>>
        ranked;
    ranked.reserve(acc.census.size());
    for (const auto &[key, entry] : acc.census)
        ranked.emplace_back(key, &entry);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.second->count > b.second->count;
                     });
    size_t keep = std::min(options_.top_second_order, ranked.size());
    for (size_t i = 0; i < keep; ++i) {
        const auto &[key, entry] = ranked[i];
        SecondOrderSpec spec;
        spec.key = key;
        spec.count = entry->count;
        if (key.type == EditOpType::Insert) {
            spec.rate = rate(entry->count, acc.total_positions);
        } else {
            spec.rate =
                rate(entry->count,
                     acc.base_occurrences[baseIndex(key.base)]);
        }
        spec.spatial = PositionProfile::fromHistogram(
            entry->positions, acc.design_length,
            options_.second_order_floor);
        p.second_order.push_back(std::move(spec));
    }

    return p;
}

} // namespace dnasim
