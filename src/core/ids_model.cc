#include "core/ids_model.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/stats.hh"

namespace dnasim
{

namespace
{

/** Process-wide channel instruments, resolved once. */
struct ChannelStats
{
    obs::Counter &strands;
    obs::Counter &bases_in;
    obs::Counter &bases_out;
    obs::Counter &sub;
    obs::Counter &ins;
    obs::Counter &del;
    obs::Counter &long_del;
    obs::Counter &second_order;

    static ChannelStats &
    get()
    {
        auto &reg = obs::Registry::global();
        static ChannelStats cs{
            reg.counter("channel.strands",
                        "strands transmitted through the channel"),
            reg.counter("channel.bases_in",
                        "reference bases entering the channel"),
            reg.counter("channel.bases_out",
                        "noisy bases emitted by the channel"),
            reg.counter("channel.errors.sub",
                        "substitution events injected"),
            reg.counter("channel.errors.ins",
                        "insertion events injected"),
            reg.counter("channel.errors.del",
                        "single-base deletion events injected"),
            reg.counter("channel.errors.long_del",
                        "long-deletion runs injected"),
            reg.counter("channel.errors.second_order",
                        "events drawn from listed second-order "
                        "errors"),
        };
        return cs;
    }
};

} // anonymous namespace

IdsChannelModel::IdsChannelModel(ErrorProfile profile,
                                 ModelFeatures features,
                                 std::string display_name)
    : profile_(std::move(profile)), features_(features),
      name_(std::move(display_name))
{
    if (name_.empty()) {
        if (features_.second_order)
            name_ = "second-order";
        else if (features_.spatial)
            name_ = "skew";
        else if (features_.conditional)
            name_ = "conditional";
        else
            name_ = "naive";
    }

    // Confusion-row samplers (only for rows with mass).
    for (size_t b = 0; b < kNumBases; ++b) {
        std::vector<double> row(profile_.confusion[b].begin(),
                                profile_.confusion[b].end());
        double sum = 0.0;
        for (double w : row)
            sum += w;
        if (sum > 0.0)
            confusion_samplers_[b] = CumulativeSampler(row);
    }

    {
        std::vector<double> w(profile_.insert_base.begin(),
                              profile_.insert_base.end());
        double sum = 0.0;
        for (double x : w)
            sum += x;
        if (sum > 0.0)
            insert_sampler_ = CumulativeSampler(w);
    }

    {
        double sum = 0.0;
        for (double x : profile_.long_del_len_weights)
            sum += x;
        if (sum > 0.0)
            long_del_sampler_ =
                CumulativeSampler(profile_.long_del_len_weights);
    }

    // Bucket second-order entries and compute residual rates.
    std::array<double, kNumBases> so_sub_mass{};
    std::array<double, kNumBases> so_del_mass{};
    double so_ins_mass = 0.0;
    for (size_t i = 0; i < profile_.second_order.size(); ++i) {
        const auto &so = profile_.second_order[i];
        size_t b = baseIndex(so.key.base);
        switch (so.key.type) {
          case EditOpType::Substitute:
            so_sub_[b].push_back(i);
            so_sub_mass[b] += so.rate;
            break;
          case EditOpType::Delete:
            so_del_[b].push_back(i);
            so_del_mass[b] += so.rate;
            break;
          case EditOpType::Insert:
            so_ins_.push_back(i);
            so_ins_mass += so.rate;
            break;
          case EditOpType::Equal:
            DNASIM_PANIC("Equal is not a second-order error type");
        }
    }
    for (size_t b = 0; b < kNumBases; ++b) {
        residual_sub_[b] =
            std::max(0.0, profile_.p_sub_given[b] - so_sub_mass[b]);
        residual_del_[b] =
            std::max(0.0, profile_.p_del_given[b] - so_del_mass[b]);
        residual_ins_[b] =
            std::max(0.0, profile_.p_ins_given[b] - so_ins_mass);
    }
}

IdsChannelModel
IdsChannelModel::naive(const ErrorProfile &profile)
{
    return IdsChannelModel(profile, ModelFeatures{}, "naive");
}

IdsChannelModel
IdsChannelModel::conditional(const ErrorProfile &profile)
{
    ModelFeatures f;
    f.conditional = true;
    f.long_deletions = true;
    return IdsChannelModel(profile, f, "conditional");
}

IdsChannelModel
IdsChannelModel::skew(const ErrorProfile &profile)
{
    ModelFeatures f;
    f.conditional = true;
    f.long_deletions = true;
    f.spatial = true;
    return IdsChannelModel(profile, f, "skew");
}

IdsChannelModel
IdsChannelModel::secondOrder(const ErrorProfile &profile)
{
    ModelFeatures f;
    f.conditional = true;
    f.long_deletions = true;
    f.spatial = true;
    f.second_order = true;
    return IdsChannelModel(profile, f, "second-order");
}

IdsChannelModel
IdsChannelModel::contextual(const ErrorProfile &profile)
{
    ModelFeatures f;
    f.conditional = true;
    f.long_deletions = true;
    f.spatial = true;
    f.second_order = true;
    f.context = true;
    return IdsChannelModel(profile, f, "contextual");
}

IdsChannelModel
IdsChannelModel::full(const ErrorProfile &profile,
                      std::string display_name)
{
    ModelFeatures f;
    f.conditional = true;
    f.long_deletions = true;
    f.spatial = true;
    f.second_order = true;
    f.context = true;
    return IdsChannelModel(profile, f, std::move(display_name));
}

IdsChannelModel::Rates
IdsChannelModel::ratesAt(char base, size_t pos, size_t len) const
{
    const size_t b = baseIndex(base);
    Rates r;
    double agg =
        features_.spatial ? profile_.spatial.multiplier(pos, len) : 1.0;

    if (!features_.conditional) {
        r.sub = profile_.p_sub * agg;
        r.ins = profile_.p_ins * agg;
        r.del = profile_.p_del * agg;
        return r;
    }

    if (features_.long_deletions)
        r.long_del = profile_.p_long_del * agg;

    if (!features_.second_order) {
        r.sub = profile_.p_sub_given[b] * agg;
        r.ins = profile_.p_ins_given[b] * agg;
        r.del = profile_.p_del_given[b] * agg;
        return r;
    }

    r.sub = residual_sub_[b] * agg;
    for (size_t i : so_sub_[b]) {
        const auto &so = profile_.second_order[i];
        r.sub += so.rate * so.spatial.multiplier(pos, len);
    }
    r.del = residual_del_[b] * agg;
    for (size_t i : so_del_[b]) {
        const auto &so = profile_.second_order[i];
        r.del += so.rate * so.spatial.multiplier(pos, len);
    }
    r.ins = residual_ins_[b] * agg;
    for (size_t i : so_ins_) {
        const auto &so = profile_.second_order[i];
        r.ins += so.rate * so.spatial.multiplier(pos, len);
    }
    return r;
}

char
IdsChannelModel::pickSubstitution(char base, size_t pos, size_t len,
                                  Rng &rng, bool *second_order) const
{
    const size_t b = baseIndex(base);

    auto from_confusion = [&]() -> char {
        if (features_.conditional && confusion_samplers_[b].valid())
            return kBaseChars[confusion_samplers_[b].sample(rng)];
        // Uniform over the three other bases.
        size_t k = rng.index(kNumBases - 1);
        if (k >= b)
            ++k;
        return kBaseChars[k];
    };

    if (!features_.second_order || so_sub_[b].empty())
        return from_confusion();

    // Pick the component (residual vs. each listed second-order
    // error) in proportion to its contribution at this position.
    double agg =
        features_.spatial ? profile_.spatial.multiplier(pos, len) : 1.0;
    double residual = residual_sub_[b] * agg;
    double total = residual;
    for (size_t i : so_sub_[b]) {
        const auto &so = profile_.second_order[i];
        total += so.rate * so.spatial.multiplier(pos, len);
    }
    if (total <= 0.0)
        return from_confusion();
    double x = rng.uniform() * total;
    if (x < residual)
        return from_confusion();
    x -= residual;
    for (size_t i : so_sub_[b]) {
        const auto &so = profile_.second_order[i];
        double w = so.rate * so.spatial.multiplier(pos, len);
        if (x < w) {
            *second_order = true;
            return so.key.repl;
        }
        x -= w;
    }
    return from_confusion(); // floating-point slack
}

char
IdsChannelModel::pickInsertion(size_t pos, size_t len, Rng &rng,
                               bool *second_order) const
{
    auto from_distribution = [&]() -> char {
        if (features_.conditional && insert_sampler_.valid())
            return kBaseChars[insert_sampler_.sample(rng)];
        return kBaseChars[rng.index(kNumBases)];
    };

    if (!features_.second_order || so_ins_.empty())
        return from_distribution();

    double agg =
        features_.spatial ? profile_.spatial.multiplier(pos, len) : 1.0;
    // Residual insertion mass is base-independent in expectation;
    // use the mean residual across bases as the component weight.
    double residual = 0.0;
    for (size_t b = 0; b < kNumBases; ++b)
        residual += residual_ins_[b];
    residual = residual / kNumBases * agg;
    double total = residual;
    for (size_t i : so_ins_) {
        const auto &so = profile_.second_order[i];
        total += so.rate * so.spatial.multiplier(pos, len);
    }
    if (total <= 0.0)
        return from_distribution();
    double x = rng.uniform() * total;
    if (x < residual)
        return from_distribution();
    x -= residual;
    for (size_t i : so_ins_) {
        const auto &so = profile_.second_order[i];
        double w = so.rate * so.spatial.multiplier(pos, len);
        if (x < w) {
            *second_order = true;
            return so.key.base;
        }
        x -= w;
    }
    return from_distribution();
}

size_t
IdsChannelModel::drawLongDeletionLength(Rng &rng) const
{
    if (!long_del_sampler_.valid())
        return 2;
    return 2 + long_del_sampler_.sample(rng);
}

Strand
IdsChannelModel::transmit(const Strand &ref, Rng &rng) const
{
    return transmitScaled(ref, 1.0, rng);
}

Strand
IdsChannelModel::transmit(const Strand &ref, Rng &rng,
                          LineageRecorder &lineage) const
{
    return transmitScaled(ref, 1.0, rng, &lineage);
}

Strand
IdsChannelModel::transmitScaled(const Strand &ref, double rate_scale,
                                Rng &rng,
                                LineageRecorder *lineage) const
{
    DNASIM_ASSERT(rate_scale >= 0.0, "negative rate scale");
    const size_t len = ref.size();
    Strand out;
    out.reserve(len + 8);

    uint64_t n_sub = 0, n_ins = 0, n_del = 0, n_long_del = 0;
    uint64_t n_second_order = 0;
    bool second_order = false;

    // Homopolymer context: positions inside runs err more, with the
    // multipliers normalized per strand so the aggregate rate is
    // preserved. The mask lives in per-worker scratch — this runs
    // once per transmitted read, and a fresh vector here was the
    // channel's only per-read allocation besides the emitted strand.
    thread_local std::vector<bool> in_run;
    bool use_ctx = false;
    double ctx_in = 1.0, ctx_out = 1.0;
    const double hp_mult = profile_.homopolymer_mult;
    if (features_.context && hp_mult != 1.0 && len > 0) {
        use_ctx = true;
        homopolymerRunMask(ref, ErrorProfile::kHomopolymerRunLength,
                           in_run);
        size_t run_positions = 0;
        for (bool b : in_run)
            run_positions += b ? 1 : 0;
        double f = static_cast<double>(run_positions) /
                   static_cast<double>(len);
        double norm = 1.0 + f * (hp_mult - 1.0);
        ctx_in = hp_mult / norm;
        ctx_out = 1.0 / norm;
    }

    size_t i = 0;
    while (i < len) {
        const char base = ref[i];
        Rates r = ratesAt(base, i, len);
        if (use_ctx) {
            double ctx = in_run[i] ? ctx_in : ctx_out;
            r.sub *= ctx;
            r.ins *= ctx;
            r.del *= ctx;
            r.long_del *= ctx;
        }
        // Clamp so the per-position total probability stays sane
        // even for strong quality multipliers or extreme calibrated
        // spatial peaks.
        double scale = rate_scale;
        double total = r.total();
        if (total * scale > 0.9)
            scale = 0.9 / total;
        if (scale != 1.0) {
            r.sub *= scale;
            r.ins *= scale;
            r.del *= scale;
            r.long_del *= scale;
        }

        if (r.long_del > 0.0 && rng.bernoulli(r.long_del)) {
            const size_t run = drawLongDeletionLength(rng);
            if (lineage != nullptr)
                lineage->longDeletion(i, std::min(run, len - i),
                                      base);
            i += run;
            ++n_long_del;
            continue;
        }

        double u = rng.uniform();
        if (u < r.sub) {
            const char repl =
                pickSubstitution(base, i, len, rng, &second_order);
            if (lineage != nullptr)
                lineage->substitution(i, base, repl);
            out.push_back(repl);
            ++n_sub;
        } else if (u < r.sub + r.ins) {
            out.push_back(base);
            const char extra =
                pickInsertion(i, len, rng, &second_order);
            if (lineage != nullptr)
                lineage->insertion(i + 1, extra);
            out.push_back(extra);
            ++n_ins;
        } else if (u < r.sub + r.ins + r.del) {
            // single-base deletion: emit nothing
            if (lineage != nullptr)
                lineage->deletion(i, base);
            ++n_del;
        } else {
            out.push_back(base);
        }
        if (second_order) {
            ++n_second_order;
            second_order = false;
        }
        ++i;
    }

    // Batched stats flush: one sharded add per touched counter per
    // strand keeps the hot loop free of bookkeeping.
    ChannelStats &cs = ChannelStats::get();
    cs.strands.inc();
    cs.bases_in.add(len);
    cs.bases_out.add(out.size());
    if (n_sub)
        cs.sub.add(n_sub);
    if (n_ins)
        cs.ins.add(n_ins);
    if (n_del)
        cs.del.add(n_del);
    if (n_long_del)
        cs.long_del.add(n_long_del);
    if (n_second_order)
        cs.second_order.add(n_second_order);
    return out;
}

} // namespace dnasim
