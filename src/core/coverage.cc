#include "core/coverage.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace dnasim
{

FixedCoverage::FixedCoverage(size_t n)
    : n_(n)
{
    DNASIM_ASSERT(n > 0, "fixed coverage must be positive");
}

size_t
FixedCoverage::sample(size_t, Rng &) const
{
    return n_;
}

std::string
FixedCoverage::name() const
{
    std::ostringstream os;
    os << "fixed(" << n_ << ")";
    return os.str();
}

CustomCoverage::CustomCoverage(std::vector<size_t> coverages)
    : coverages_(std::move(coverages))
{
    DNASIM_ASSERT(!coverages_.empty(), "empty custom coverage vector");
}

size_t
CustomCoverage::sample(size_t cluster_idx, Rng &) const
{
    DNASIM_ASSERT(cluster_idx < coverages_.size(),
                  "cluster index ", cluster_idx,
                  " beyond custom coverage table of size ",
                  coverages_.size());
    return coverages_[cluster_idx];
}

std::string
CustomCoverage::name() const
{
    return "custom";
}

NegativeBinomialCoverage::NegativeBinomialCoverage(double mean,
                                                   double dispersion,
                                                   size_t max_cap,
                                                   double p_erasure)
    : mean_(mean), dispersion_(dispersion), max_cap_(max_cap),
      p_erasure_(p_erasure)
{
    DNASIM_ASSERT(mean > 0.0, "non-positive coverage mean");
    DNASIM_ASSERT(dispersion > 0.0, "non-positive dispersion");
    DNASIM_ASSERT(p_erasure >= 0.0 && p_erasure <= 1.0,
                  "bad erasure probability");
}

size_t
NegativeBinomialCoverage::sample(size_t, Rng &rng) const
{
    if (p_erasure_ > 0.0 && rng.bernoulli(p_erasure_))
        return 0;
    // Negative binomial with mean m and size r has
    // p = r / (r + m) for the per-trial success probability.
    double p = dispersion_ / (dispersion_ + mean_);
    auto draw =
        static_cast<size_t>(rng.negativeBinomial(dispersion_, p));
    if (max_cap_ > 0)
        draw = std::min(draw, max_cap_);
    return draw;
}

std::string
NegativeBinomialCoverage::name() const
{
    std::ostringstream os;
    os << "negbin(mean=" << mean_ << ",r=" << dispersion_ << ")";
    return os.str();
}

} // namespace dnasim
