#include "core/lineage_log.hh"

namespace dnasim
{

const char *
lineageErrorTypeName(LineageErrorType type)
{
    switch (type) {
      case LineageErrorType::Substitution: return "sub";
      case LineageErrorType::Insertion: return "ins";
      case LineageErrorType::Deletion: return "del";
      case LineageErrorType::LongDeletion: return "long_del";
    }
    return "?";
}

LineageCounts
LineageLog::counts() const
{
    LineageCounts c;
    for (const auto &cluster : clusters_) {
        for (const auto &e : cluster.events) {
            switch (e.type) {
              case LineageErrorType::Substitution:
                ++c.substitutions;
                break;
              case LineageErrorType::Insertion:
                ++c.insertions;
                break;
              case LineageErrorType::Deletion:
                ++c.deletions;
                break;
              case LineageErrorType::LongDeletion:
                ++c.long_deletions;
                break;
            }
        }
    }
    return c;
}

} // namespace dnasim
