#include "core/profile_io.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace dnasim
{

namespace
{

constexpr const char *kMagic = "dnasim-profile";
constexpr int kVersion = 1;

void
writeVector(std::ostream &os, const std::vector<double> &xs)
{
    os << xs.size();
    for (double x : xs)
        os << ' ' << x;
}

void
writeSpatial(std::ostream &os, const char *key,
             const PositionProfile &spatial)
{
    os << key << ' ';
    writeVector(os, spatial.multipliers());
    os << '\n';
}

std::vector<double>
readVector(std::istringstream &line, const char *what)
{
    size_t n = 0;
    if (!(line >> n))
        DNASIM_FATAL("profile: missing length for ", what);
    std::vector<double> xs(n);
    for (size_t i = 0; i < n; ++i) {
        if (!(line >> xs[i]))
            DNASIM_FATAL("profile: truncated vector for ", what);
    }
    return xs;
}

PositionProfile
profileFromMultipliers(const std::vector<double> &m)
{
    if (m.empty())
        return PositionProfile();
    // Rebuild through the histogram path, which renormalizes.
    Histogram h;
    for (size_t i = 0; i < m.size(); ++i) {
        h.add(i, static_cast<uint64_t>(m[i] * 1e6));
    }
    return PositionProfile::fromHistogram(h, m.size());
}

const char *
opTypeTag(EditOpType t)
{
    switch (t) {
      case EditOpType::Substitute: return "sub";
      case EditOpType::Delete: return "del";
      case EditOpType::Insert: return "ins";
      case EditOpType::Equal: break;
    }
    DNASIM_PANIC("unserializable op type");
}

EditOpType
opTypeFromTag(const std::string &tag)
{
    if (tag == "sub")
        return EditOpType::Substitute;
    if (tag == "del")
        return EditOpType::Delete;
    if (tag == "ins")
        return EditOpType::Insert;
    DNASIM_FATAL("profile: unknown error type '", tag, "'");
}

} // anonymous namespace

void
writeProfile(const ErrorProfile &p, std::ostream &os)
{
    os << std::setprecision(12);
    os << kMagic << ' ' << kVersion << '\n';
    os << "design_length " << p.design_length << '\n';
    os << "aggregate " << p.p_sub << ' ' << p.p_ins << ' ' << p.p_del
       << '\n';
    os << "conditional";
    for (size_t b = 0; b < kNumBases; ++b) {
        os << ' ' << p.p_sub_given[b] << ' ' << p.p_ins_given[b]
           << ' ' << p.p_del_given[b];
    }
    os << '\n';
    for (size_t b = 0; b < kNumBases; ++b) {
        os << "confusion " << kBaseChars[b];
        for (size_t r = 0; r < kNumBases; ++r)
            os << ' ' << p.confusion[b][r];
        os << '\n';
    }
    os << "insert_base";
    for (size_t b = 0; b < kNumBases; ++b)
        os << ' ' << p.insert_base[b];
    os << '\n';
    os << "long_del " << p.p_long_del << ' ';
    writeVector(os, p.long_del_len_weights);
    os << '\n';
    os << "homopolymer_mult " << p.homopolymer_mult << '\n';
    writeSpatial(os, "spatial", p.spatial);
    for (const auto &so : p.second_order) {
        os << "second_order " << opTypeTag(so.key.type) << ' '
           << so.key.base << ' '
           << (so.key.repl == '\0' ? '-' : so.key.repl) << ' '
           << so.rate << ' ' << so.count << ' ';
        writeVector(os, so.spatial.multipliers());
        os << '\n';
    }
    os << "end\n";
}

void
writeProfileFile(const ErrorProfile &profile, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        DNASIM_FATAL("cannot open '", path, "' for writing");
    writeProfile(profile, out);
    if (!out)
        DNASIM_FATAL("I/O error while writing '", path, "'");
}

ErrorProfile
readProfile(std::istream &is)
{
    ErrorProfile p;
    std::string line;
    bool saw_magic = false, saw_end = false;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream in(line);
        std::string key;
        in >> key;
        if (!saw_magic) {
            int version = 0;
            if (key != kMagic || !(in >> version) ||
                version != kVersion) {
                DNASIM_FATAL("not a dnasim profile (expected '",
                             kMagic, ' ', kVersion, "' header)");
            }
            saw_magic = true;
            continue;
        }
        if (key == "design_length") {
            in >> p.design_length;
        } else if (key == "aggregate") {
            in >> p.p_sub >> p.p_ins >> p.p_del;
        } else if (key == "conditional") {
            for (size_t b = 0; b < kNumBases; ++b) {
                in >> p.p_sub_given[b] >> p.p_ins_given[b] >>
                    p.p_del_given[b];
            }
        } else if (key == "confusion") {
            char base = 0;
            in >> base;
            if (!isBaseChar(base))
                DNASIM_FATAL("profile: bad confusion base");
            for (size_t r = 0; r < kNumBases; ++r)
                in >> p.confusion[baseIndex(base)][r];
        } else if (key == "insert_base") {
            for (size_t b = 0; b < kNumBases; ++b)
                in >> p.insert_base[b];
        } else if (key == "long_del") {
            in >> p.p_long_del;
            p.long_del_len_weights = readVector(in, "long_del");
        } else if (key == "homopolymer_mult") {
            in >> p.homopolymer_mult;
        } else if (key == "spatial") {
            p.spatial =
                profileFromMultipliers(readVector(in, "spatial"));
        } else if (key == "second_order") {
            std::string tag;
            char base = 0, repl = 0;
            SecondOrderSpec spec;
            in >> tag >> base >> repl >> spec.rate >> spec.count;
            spec.key.type = opTypeFromTag(tag);
            if (!isBaseChar(base))
                DNASIM_FATAL("profile: bad second-order base");
            spec.key.base = base;
            spec.key.repl = repl == '-' ? '\0' : repl;
            if (spec.key.repl != '\0' && !isBaseChar(spec.key.repl))
                DNASIM_FATAL("profile: bad second-order replacement");
            spec.spatial = profileFromMultipliers(
                readVector(in, "second_order"));
            p.second_order.push_back(std::move(spec));
        } else if (key == "end") {
            saw_end = true;
            break;
        } else {
            DNASIM_FATAL("profile: unknown key '", key, "'");
        }
        if (in.fail())
            DNASIM_FATAL("profile: malformed line '", line, "'");
    }
    if (!saw_magic)
        DNASIM_FATAL("profile: empty input");
    if (!saw_end)
        DNASIM_FATAL("profile: missing 'end' terminator");
    return p;
}

ErrorProfile
readProfileFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        DNASIM_FATAL("cannot open '", path, "' for reading");
    return readProfile(in);
}

} // namespace dnasim
