/**
 * @file
 * The channel simulator: drives an ErrorModel over a library of
 * reference strands under a CoverageModel, producing a clustered
 * dataset — the simulator's counterpart of one sequencing run.
 */

#ifndef DNASIM_CORE_CHANNEL_SIMULATOR_HH
#define DNASIM_CORE_CHANNEL_SIMULATOR_HH

#include <iosfwd>
#include <vector>

#include "base/strand_pool.hh"
#include "core/coverage.hh"
#include "core/error_model.hh"
#include "core/lineage_log.hh"
#include "data/dataset.hh"

namespace dnasim
{

/**
 * Fork @p n independent per-cluster Rng streams from @p rng by
 * index: stream i is rng.fork(i). Forking reads only the parent
 * seed, so the streams are a pure function of (seed, index) — this
 * is the determinism contract that lets parallel loops draw the
 * exact random numbers the serial loop would (DESIGN.md,
 * "Deterministic parallelism").
 */
std::vector<Rng> forkClusterStreams(Rng &rng, size_t n);

/** Options for ChannelSimulator::simulateToPool(). */
struct PoolSimulateOptions
{
    /// Clusters simulated per bounded-memory chunk: one chunk of
    /// clusters (and its forked Rng streams) is the only simulated
    /// data in RAM at a time.
    size_t chunk_clusters = 4096;
    /// Stop after this many reads (0 = unlimited); the last cluster
    /// may be truncated mid-coverage.
    size_t max_reads = 0;
};

struct PoolSimulateResult
{
    size_t clusters = 0; ///< clusters that contributed reads
    size_t reads = 0;
    bool truncated = false; ///< max_reads cut the run short
};

/**
 * Generates clustered noisy datasets from reference strands.
 *
 * The simulator forks one RNG stream per cluster so the data for a
 * given (seed, cluster index) pair is identical regardless of how
 * many clusters are generated — experiments at different scales stay
 * comparable.
 */
class ChannelSimulator
{
  public:
    /** @p model must outlive the simulator. */
    explicit ChannelSimulator(const ErrorModel &model);

    const ErrorModel &model() const { return model_; }

    /**
     * Transmit every strand of @p references through the channel,
     * with per-cluster coverage from @p coverage.
     *
     * A non-null @p lineage captures the ground-truth error events
     * of every read (reset to references.size() clusters first).
     * Cluster i's arena is filled by whichever worker simulates
     * cluster i and by no one else, so the log — like the dataset —
     * is identical at any --threads; the strands themselves are
     * byte-identical with lineage on or off.
     */
    Dataset simulate(const std::vector<Strand> &references,
                     const CoverageModel &coverage, Rng &rng,
                     LineageLog *lineage = nullptr) const;

    /**
     * Simulate with coverage copied cluster-for-cluster from
     * @p shape (Table 2.1's "custom coverage" protocol): cluster i
     * of the result has exactly as many copies as cluster i of
     * @p shape, and re-uses its reference strand.
     */
    Dataset simulateLike(const Dataset &shape, Rng &rng,
                         LineageLog *lineage = nullptr) const;

    /**
     * Transmit every strand of @p references (pool- or vector-
     * backed) straight into a pool builder, in bounded memory:
     * clusters are simulated chunk by chunk (parallel inside a
     * chunk, per-cluster streams forked by global index) and
     * drained serially to @p reads_out in cluster order, so the
     * reads — and their order — are byte-identical to flattening
     * simulate() at any --threads and any chunk size. A non-null
     * @p origins_out receives one little-endian u32 cluster index
     * per read. Lineage capture is not available on this path; use
     * simulate() when forensics are needed.
     */
    PoolSimulateResult
    simulateToPool(const StrandPoolView &references,
                   const CoverageModel &coverage, Rng &rng,
                   PackedStrandPoolBuilder &reads_out,
                   std::ostream *origins_out = nullptr,
                   const PoolSimulateOptions &options = {}) const;

    /**
     * One cluster: @p n transmissions of @p reference, with events
     * appended to @p lineage when non-null.
     */
    Cluster simulateCluster(const Strand &reference, size_t n,
                            Rng &rng,
                            ClusterLineage *lineage = nullptr) const;

  private:
    const ErrorModel &model_;
};

} // namespace dnasim

#endif // DNASIM_CORE_CHANNEL_SIMULATOR_HH
