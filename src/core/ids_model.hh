/**
 * @file
 * The parametric IDS (insertion-deletion-substitution) channel model
 * underlying every simulator variant in the paper.
 *
 * A single engine consumes a full ErrorProfile plus a feature mask;
 * the paper's progressively refined simulators are configurations of
 * the same engine:
 *
 *  - naive():       aggregate rates only (section 3.3's baseline);
 *  - conditional(): + base-conditional rates, confusion matrix,
 *                   inserted-base distribution, long deletions
 *                   (section 3.3.1);
 *  - skew():        + aggregate spatial distribution (section 3.3.2);
 *  - secondOrder(): + per-error spatial distributions for the listed
 *                   second-order errors (section 3.3.3);
 *  - full():        everything (used by the synthetic wetlab channel).
 */

#ifndef DNASIM_CORE_IDS_MODEL_HH
#define DNASIM_CORE_IDS_MODEL_HH

#include <string>
#include <vector>

#include "core/error_model.hh"
#include "core/error_profile.hh"
#include "stats/distributions.hh"

namespace dnasim
{

/** Which layers of the ErrorProfile the engine uses. */
struct ModelFeatures
{
    bool conditional = false;    ///< base-conditional rates/confusion
    bool long_deletions = false; ///< explicit long-deletion runs
    bool spatial = false;        ///< aggregate positional skew
    bool second_order = false;   ///< per-error positional skew
    bool context = false;        ///< homopolymer-run multiplier

    bool operator==(const ModelFeatures &) const = default;
};

/** The configurable IDS channel engine. */
class IdsChannelModel : public ErrorModel
{
  public:
    /**
     * Construct from a profile and feature mask.
     * @p display_name overrides the auto-generated name.
     */
    IdsChannelModel(ErrorProfile profile, ModelFeatures features,
                    std::string display_name = "");

    /** Aggregate rates only — the paper's naive simulator. */
    static IdsChannelModel naive(const ErrorProfile &profile);

    /** Naive + conditional probabilities + long deletions. */
    static IdsChannelModel conditional(const ErrorProfile &profile);

    /** Conditional + aggregate spatial skew. */
    static IdsChannelModel skew(const ErrorProfile &profile);

    /** Skew + second-order errors. */
    static IdsChannelModel secondOrder(const ErrorProfile &profile);

    /**
     * Second-order + homopolymer context — an extension rung beyond
     * the paper's ladder (the paper lists homopolymer sensitivity
     * as a known, unmodelled effect).
     */
    static IdsChannelModel contextual(const ErrorProfile &profile);

    /** All features enabled. */
    static IdsChannelModel full(const ErrorProfile &profile,
                                std::string display_name = "full");

    Strand transmit(const Strand &ref, Rng &rng) const override;

    Strand transmit(const Strand &ref, Rng &rng,
                    LineageRecorder &lineage) const override;

    /**
     * Transmit with every error rate multiplied by @p rate_scale
     * (clamped so the per-position total stays below 0.9). Used by
     * the wetlab channel to model per-read quality dispersion; the
     * parametric simulators always transmit at scale 1.
     *
     * A non-null @p lineage records every injected event; the
     * recording never touches the Rng, so the output is identical
     * either way.
     */
    Strand transmitScaled(const Strand &ref, double rate_scale,
                          Rng &rng,
                          LineageRecorder *lineage = nullptr) const;

    std::string name() const override { return name_; }

    const ErrorProfile &profile() const { return profile_; }
    const ModelFeatures &features() const { return features_; }

    /**
     * Effective per-position rates for base @p base at position
     * @p pos of a strand of length @p len (exposed for tests and for
     * plotting pre-reconstruction spatial distributions).
     */
    struct Rates
    {
        double sub = 0.0;
        double ins = 0.0;
        double del = 0.0;
        double long_del = 0.0;

        double total() const { return sub + ins + del + long_del; }
    };
    Rates ratesAt(char base, size_t pos, size_t len) const;

  private:
    /**
     * Pick a substitution replacement for @p base at @p pos.
     * @p second_order is set when a listed second-order error fired.
     */
    char pickSubstitution(char base, size_t pos, size_t len, Rng &rng,
                          bool *second_order) const;

    /** Pick an inserted base at @p pos (see pickSubstitution). */
    char pickInsertion(size_t pos, size_t len, Rng &rng,
                       bool *second_order) const;

    /** Draw a long-deletion run length (>= 2). */
    size_t drawLongDeletionLength(Rng &rng) const;

    ErrorProfile profile_;
    ModelFeatures features_;
    std::string name_;

    // Precomputed samplers for the hot path.
    std::array<CumulativeSampler, kNumBases> confusion_samplers_;
    CumulativeSampler insert_sampler_;
    CumulativeSampler long_del_sampler_;

    // Second-order entries bucketed by (type, affected base) for
    // O(k) lookup during transmission; indices into
    // profile_.second_order.
    std::array<std::vector<size_t>, kNumBases> so_sub_;
    std::array<std::vector<size_t>, kNumBases> so_del_;
    std::vector<size_t> so_ins_;
    // Residual conditional rates after subtracting listed
    // second-order mass.
    std::array<double, kNumBases> residual_sub_{};
    std::array<double, kNumBases> residual_del_{};
    std::array<double, kNumBases> residual_ins_{};
};

} // namespace dnasim

#endif // DNASIM_CORE_IDS_MODEL_HH
