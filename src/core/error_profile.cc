#include "core/error_profile.hh"

#include <sstream>

#include "base/logging.hh"

namespace dnasim
{

std::string
SecondOrderKey::str() const
{
    std::ostringstream os;
    switch (type) {
      case EditOpType::Substitute:
        os << "sub " << base << "->" << repl;
        break;
      case EditOpType::Delete:
        os << "del " << base;
        break;
      case EditOpType::Insert:
        os << "ins " << base;
        break;
      case EditOpType::Equal:
        os << "equal";
        break;
    }
    return os.str();
}

double
ErrorProfile::meanLongDeletionLength() const
{
    double mass = 0.0, acc = 0.0;
    for (size_t i = 0; i < long_del_len_weights.size(); ++i) {
        mass += long_del_len_weights[i];
        acc += long_del_len_weights[i] * static_cast<double>(i + 2);
    }
    if (mass <= 0.0)
        return 0.0;
    return acc / mass;
}

ErrorProfile
ErrorProfile::uniform(double total_rate, size_t design_length,
                      double sub_frac, double ins_frac, double del_frac)
{
    DNASIM_ASSERT(total_rate >= 0.0 && total_rate < 1.0,
                  "bad total error rate ", total_rate);
    double frac_sum = sub_frac + ins_frac + del_frac;
    DNASIM_ASSERT(frac_sum > 0.0, "zero error-type fractions");

    ErrorProfile p;
    p.design_length = design_length;
    p.p_sub = total_rate * sub_frac / frac_sum;
    p.p_ins = total_rate * ins_frac / frac_sum;
    p.p_del = total_rate * del_frac / frac_sum;
    for (size_t b = 0; b < kNumBases; ++b) {
        p.p_sub_given[b] = p.p_sub;
        p.p_ins_given[b] = p.p_ins;
        p.p_del_given[b] = p.p_del;
        p.insert_base[b] = 1.0 / kNumBases;
        for (size_t r = 0; r < kNumBases; ++r)
            p.confusion[b][r] = (b == r) ? 0.0 : 1.0 / (kNumBases - 1);
    }
    return p;
}

ErrorProfile
ErrorProfile::withSpatial(PositionProfile new_spatial) const
{
    ErrorProfile out = *this;
    out.spatial = std::move(new_spatial);
    return out;
}

std::string
ErrorProfile::str() const
{
    std::ostringstream os;
    os << "ErrorProfile[len=" << design_length
       << " p_sub=" << p_sub << " p_ins=" << p_ins << " p_del=" << p_del
       << " p_long_del=" << p_long_del
       << " mean_ld_len=" << meanLongDeletionLength()
       << " hp_mult=" << homopolymer_mult
       << " spatial=" << spatial.str()
       << " second_order=" << second_order.size() << " entries]";
    for (const auto &so : second_order) {
        os << "\n  " << so.key.str() << " rate=" << so.rate
           << " count=" << so.count;
    }
    return os.str();
}

} // namespace dnasim
