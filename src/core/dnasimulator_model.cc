#include "core/dnasimulator_model.hh"

#include "base/logging.hh"

namespace dnasim
{

DnaSimulatorModel::DnaSimulatorModel(
    std::array<DnaSimulatorEntry, kNumBases> dictionary,
    std::string display_name)
    : dictionary_(dictionary), name_(std::move(display_name))
{
    for (const auto &e : dictionary_) {
        double total = e.p_sub + e.p_ins + e.p_del + e.p_long_del;
        DNASIM_ASSERT(total >= 0.0 && total <= 1.0,
                      "bad DNASimulator dictionary entry");
    }
}

DnaSimulatorModel
DnaSimulatorModel::preset(SynthesisTech synth, SequencingTech seq)
{
    // Representative per-base dictionaries in the spirit of the
    // original tool's hard-coded tables. Synthesis contributes
    // mostly deletions; sequencing dominates the totals (Illumina
    // low-error, Nanopore high-error).
    double synth_del;
    switch (synth) {
      case SynthesisTech::Twist: synth_del = 9.0e-4; break;
      case SynthesisTech::CustomArray: synth_del = 2.0e-3; break;
      case SynthesisTech::Idt: synth_del = 6.0e-4; break;
      default: DNASIM_PANIC("unknown synthesis technology");
    }

    std::array<DnaSimulatorEntry, kNumBases> dict{};
    std::string tag;
    if (seq == SequencingTech::Illumina) {
        tag = "dnasimulator(illumina)";
        for (auto &e : dict) {
            e.p_sub = 1.2e-3;
            e.p_ins = 4.0e-4;
            e.p_del = 6.0e-4 + synth_del;
            e.p_long_del = 5.0e-5;
        }
    } else {
        tag = "dnasimulator(nanopore)";
        for (auto &e : dict) {
            e.p_sub = 2.2e-2;
            e.p_ins = 1.2e-2;
            e.p_del = 2.2e-2 + synth_del;
            e.p_long_del = 3.3e-3;
        }
    }
    return DnaSimulatorModel(dict, tag);
}

DnaSimulatorModel
DnaSimulatorModel::fromProfile(const ErrorProfile &profile)
{
    std::array<DnaSimulatorEntry, kNumBases> dict{};
    for (size_t b = 0; b < kNumBases; ++b) {
        dict[b].p_sub = profile.p_sub_given[b];
        dict[b].p_ins = profile.p_ins_given[b];
        dict[b].p_del = profile.p_del_given[b];
        dict[b].p_long_del = profile.p_long_del;
    }
    return DnaSimulatorModel(dict, "dnasimulator");
}

Strand
DnaSimulatorModel::transmit(const Strand &ref, Rng &rng) const
{
    LineageRecorder none;
    return transmit(ref, rng, none);
}

Strand
DnaSimulatorModel::transmit(const Strand &ref, Rng &rng,
                            LineageRecorder &lineage) const
{
    // The recorder never draws from the Rng, so both overloads emit
    // identical strands for identical Rng state.
    Strand out;
    out.reserve(ref.size() + 8);
    size_t i = 0;
    while (i < ref.size()) {
        const char base = ref[i];
        const auto &e = dictionary_[baseIndex(base)];
        double prob = rng.uniform();
        if (prob <= e.p_sub) {
            // Algorithm 1: replacement uniform over all four bases,
            // including the original — a silent substitution, which
            // the lineage records faithfully (obs == ref).
            const char repl = kBaseChars[rng.index(kNumBases)];
            lineage.substitution(i, base, repl);
            out.push_back(repl);
        } else if (prob <= e.p_sub + e.p_ins) {
            out.push_back(base);
            const char extra = kBaseChars[rng.index(kNumBases)];
            lineage.insertion(i + 1, extra);
            out.push_back(extra);
        } else if (prob <= e.p_sub + e.p_ins + e.p_del) {
            // single-base deletion
            lineage.deletion(i, base);
        } else if (prob <=
                   e.p_sub + e.p_ins + e.p_del + e.p_long_del) {
            // The original tool's "long-deletion" removes a short
            // run; length 2 matches the dominant observed run length.
            lineage.longDeletion(
                i, i + 1 < ref.size() ? size_t{2} : size_t{1}, base);
            ++i; // skip one extra base beyond the loop increment
        } else {
            out.push_back(base);
        }
        ++i;
    }
    return out;
}

} // namespace dnasim
