#include "data/dataset.hh"

#include <algorithm>

#include "align/edit_distance.hh"
#include "base/logging.hh"

namespace dnasim
{

size_t
Dataset::totalCopies() const
{
    size_t n = 0;
    for (const auto &c : clusters_)
        n += c.copies.size();
    return n;
}

std::vector<size_t>
Dataset::coverages() const
{
    std::vector<size_t> out;
    out.reserve(clusters_.size());
    for (const auto &c : clusters_)
        out.push_back(c.coverage());
    return out;
}

DatasetStats
Dataset::stats(bool with_error_rate) const
{
    DatasetStats s;
    s.num_clusters = clusters_.size();
    if (clusters_.empty())
        return s;

    s.min_coverage = clusters_[0].coverage();
    size_t total_len = 0;
    size_t total_edit = 0;
    size_t total_ref_len = 0;
    for (const auto &c : clusters_) {
        s.num_copies += c.coverage();
        s.num_erasures += c.isErasure() ? 1 : 0;
        s.min_coverage = std::min(s.min_coverage, c.coverage());
        s.max_coverage = std::max(s.max_coverage, c.coverage());
        for (const auto &copy : c.copies) {
            total_len += copy.size();
            if (with_error_rate) {
                total_edit += levenshtein(c.reference, copy);
                total_ref_len += c.reference.size();
            }
        }
    }
    s.mean_coverage = static_cast<double>(s.num_copies) /
                      static_cast<double>(s.num_clusters);
    if (s.num_copies > 0)
        s.mean_copy_length = static_cast<double>(total_len) /
                             static_cast<double>(s.num_copies);
    if (with_error_rate && total_ref_len > 0)
        s.aggregate_error_rate = static_cast<double>(total_edit) /
                                 static_cast<double>(total_ref_len);
    return s;
}

Dataset
Dataset::fixedCoverage(size_t n, size_t min_coverage) const
{
    DNASIM_ASSERT(n > 0, "fixedCoverage(0)");
    const size_t required = std::max(n, min_coverage);
    Dataset out;
    for (const auto &c : clusters_) {
        if (c.coverage() < required)
            continue;
        Cluster trimmed;
        trimmed.reference = c.reference;
        trimmed.copies.assign(c.copies.begin(),
                              c.copies.begin() +
                                  static_cast<ptrdiff_t>(n));
        out.add(std::move(trimmed));
    }
    return out;
}

void
Dataset::shuffleWithinClusters(Rng &rng)
{
    for (auto &c : clusters_)
        rng.shuffle(c.copies);
}

std::vector<Strand>
Dataset::pooledReads() const
{
    std::vector<Strand> out;
    out.reserve(totalCopies());
    for (const auto &c : clusters_)
        for (const auto &copy : c.copies)
            out.push_back(copy);
    return out;
}

void
Dataset::truncateReads(size_t max_reads)
{
    if (max_reads == 0)
        return;
    size_t kept = 0;
    for (auto &c : clusters_) {
        const size_t take =
            std::min(c.copies.size(), max_reads - kept);
        if (take < c.copies.size())
            c.copies.resize(take);
        kept += take;
    }
}

} // namespace dnasim
