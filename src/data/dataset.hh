/**
 * @file
 * Clustered-dataset containers.
 *
 * A Dataset is what both a wetlab experiment (after clustering) and
 * the simulator produce: for each synthesized reference strand, a
 * cluster of noisy copies. Empty clusters represent erasures (the
 * reference was never recovered by sequencing).
 */

#ifndef DNASIM_DATA_DATASET_HH
#define DNASIM_DATA_DATASET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/dna.hh"
#include "base/rng.hh"

namespace dnasim
{

/** One reference strand together with its noisy copies. */
struct Cluster
{
    Strand reference;
    std::vector<Strand> copies;

    size_t coverage() const { return copies.size(); }
    bool isErasure() const { return copies.empty(); }
};

/** Aggregate shape statistics of a dataset. */
struct DatasetStats
{
    size_t num_clusters = 0;
    size_t num_copies = 0;
    size_t num_erasures = 0;
    double mean_coverage = 0.0;
    size_t min_coverage = 0;
    size_t max_coverage = 0;
    double mean_copy_length = 0.0;
    /// Mean per-copy edit distance to the reference divided by the
    /// reference length; the dataset's aggregate error rate.
    double aggregate_error_rate = 0.0;
};

/** An ordered collection of clusters. */
class Dataset
{
  public:
    Dataset() = default;
    explicit Dataset(std::vector<Cluster> clusters)
        : clusters_(std::move(clusters))
    {}

    size_t size() const { return clusters_.size(); }
    bool empty() const { return clusters_.empty(); }

    Cluster &operator[](size_t i) { return clusters_[i]; }
    const Cluster &operator[](size_t i) const { return clusters_[i]; }

    std::vector<Cluster> &clusters() { return clusters_; }
    const std::vector<Cluster> &clusters() const { return clusters_; }

    void add(Cluster cluster) { clusters_.push_back(std::move(cluster)); }

    auto begin() { return clusters_.begin(); }
    auto end() { return clusters_.end(); }
    auto begin() const { return clusters_.begin(); }
    auto end() const { return clusters_.end(); }

    /** Total number of noisy copies across all clusters. */
    size_t totalCopies() const;

    /** Per-cluster coverages, in order. */
    std::vector<size_t> coverages() const;

    /**
     * Shape statistics. Computing aggregate_error_rate costs one
     * edit-distance evaluation per copy; pass
     * @p with_error_rate = false to skip it on large datasets.
     */
    DatasetStats stats(bool with_error_rate = true) const;

    /**
     * Dataset restricted to a fixed coverage @p n, following the
     * paper's section 3.2 protocol: clusters with fewer than
     * max(@p n, @p min_coverage) copies are dropped entirely; the
     * remaining clusters keep exactly their first @p n copies.
     * Because copies are kept in order, the dataset at coverage
     * n+1 differs from the one at n only by each cluster's extra
     * copy. The paper filters to clusters with at least 10 copies
     * before sweeping n = 1..10; pass @p min_coverage = 10 for that.
     */
    Dataset fixedCoverage(size_t n, size_t min_coverage = 0) const;

    /**
     * Shuffle the order of copies within every cluster (used once
     * up-front so fixedCoverage() draws unbiased prefixes).
     */
    void shuffleWithinClusters(Rng &rng);

    /** All copies from all clusters, in cluster order (for
     *  imperfect-clustering experiments). */
    std::vector<Strand> pooledReads() const;

    /**
     * Keep only the first @p max_reads copies in cluster order
     * (0 = no-op). Clusters are retained — ones past the cap become
     * erasures — so cluster indices and references stay stable. The
     * prefix-subsample behind --max-reads smoke runs.
     */
    void truncateReads(size_t max_reads);

  private:
    std::vector<Cluster> clusters_;
};

} // namespace dnasim

#endif // DNASIM_DATA_DATASET_HH
