/**
 * @file
 * Clustered-dataset text I/O in the "evyat" format used by the
 * Microsoft Nanopore dataset release and by DNASimulator:
 *
 * @verbatim
 * <reference strand>
 * *****************************
 * <noisy copy 1>
 * <noisy copy 2>
 *
 *
 * <next reference strand>
 * ...
 * @endverbatim
 *
 * Empty clusters (erasures) appear as a reference with no copies.
 */

#ifndef DNASIM_DATA_IO_HH
#define DNASIM_DATA_IO_HH

#include <iosfwd>
#include <string>

#include "data/dataset.hh"

namespace dnasim
{

/** Write @p dataset to @p os in evyat format. */
void writeEvyat(const Dataset &dataset, std::ostream &os);

/** Write @p dataset to the file at @p path (fatal on I/O error). */
void writeEvyatFile(const Dataset &dataset, const std::string &path);

/** Parse an evyat-format stream (fatal on malformed input). */
Dataset readEvyat(std::istream &is);

/** Parse the evyat-format file at @p path (fatal on I/O error). */
Dataset readEvyatFile(const std::string &path);

} // namespace dnasim

#endif // DNASIM_DATA_IO_HH
