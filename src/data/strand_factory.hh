/**
 * @file
 * Generation of synthetic reference strands.
 *
 * Real DNA-storage encoders constrain reference strands to be
 * synthesizable and sequenceable: GC-ratio near 50% and bounded
 * homopolymer runs (section 1.2). The factory produces random
 * strands under configurable versions of those constraints so
 * simulated libraries look like encoded payloads rather than
 * arbitrary noise.
 */

#ifndef DNASIM_DATA_STRAND_FACTORY_HH
#define DNASIM_DATA_STRAND_FACTORY_HH

#include <vector>

#include "base/dna.hh"
#include "base/rng.hh"

namespace dnasim
{

/** Constraints on generated reference strands. */
struct StrandConstraints
{
    /// Inclusive GC-ratio window; the factory retries or repairs
    /// strands outside it. Set min > max to disable the constraint.
    double min_gc = 0.40;
    double max_gc = 0.60;
    /// Longest allowed homopolymer run; 0 disables the constraint.
    size_t max_homopolymer = 3;
};

/** Produces random reference strands meeting StrandConstraints. */
class StrandFactory
{
  public:
    explicit StrandFactory(StrandConstraints constraints = {});

    const StrandConstraints &constraints() const { return constraints_; }

    /** One random strand of length @p len meeting the constraints. */
    Strand make(size_t len, Rng &rng) const;

    /** @p count independent strands of length @p len. */
    std::vector<Strand> makeMany(size_t count, size_t len,
                                 Rng &rng) const;

    /** True iff @p s meets the configured constraints. */
    bool satisfies(const Strand &s) const;

  private:
    /** Draw a base that would not violate the homopolymer limit. */
    char drawBase(const Strand &prefix, Rng &rng) const;

    StrandConstraints constraints_;
};

} // namespace dnasim

#endif // DNASIM_DATA_STRAND_FACTORY_HH
