#include "data/io.hh"

#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "obs/outfile.hh"

namespace dnasim
{

namespace
{

const char *kSeparator = "*****************************";

bool
isSeparatorLine(const std::string &line)
{
    if (line.empty())
        return false;
    for (char c : line)
        if (c != '*')
            return false;
    return true;
}

std::string
stripCr(std::string line)
{
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return line;
}

} // anonymous namespace

void
writeEvyat(const Dataset &dataset, std::ostream &os)
{
    for (const auto &cluster : dataset) {
        os << cluster.reference << "\n" << kSeparator << "\n";
        for (const auto &copy : cluster.copies)
            os << copy << "\n";
        os << "\n\n";
    }
}

void
writeEvyatFile(const Dataset &dataset, const std::string &path)
{
    // Streamed through an atomic temp-and-rename so a killed run
    // never leaves a torn dataset where a reader expects one.
    obs::AtomicFile out;
    std::string error;
    if (!out.open(path, &error))
        DNASIM_FATAL("cannot write dataset: ", error);
    writeEvyat(dataset, out.stream());
    if (!out.commit(&error))
        DNASIM_FATAL("cannot write dataset: ", error);
}

Dataset
readEvyat(std::istream &is)
{
    Dataset dataset;
    std::string line;
    size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        line = stripCr(line);
        if (line.empty())
            continue;

        // A non-empty line starts a cluster: reference, then the
        // separator, then copies until a blank line or EOF.
        Cluster cluster;
        cluster.reference = line;
        if (!isValidStrand(cluster.reference)) {
            DNASIM_FATAL("line ", line_no,
                         ": reference is not a DNA strand: '", line, "'");
        }
        if (!std::getline(is, line)) {
            DNASIM_FATAL("line ", line_no,
                         ": unexpected EOF, separator expected");
        }
        ++line_no;
        line = stripCr(line);
        if (!isSeparatorLine(line)) {
            DNASIM_FATAL("line ", line_no, ": expected separator, got '",
                         line, "'");
        }
        while (std::getline(is, line)) {
            ++line_no;
            line = stripCr(line);
            if (line.empty())
                break;
            if (!isValidStrand(line)) {
                DNASIM_FATAL("line ", line_no,
                             ": copy is not a DNA strand: '", line, "'");
            }
            cluster.copies.push_back(line);
        }
        dataset.add(std::move(cluster));
    }
    return dataset;
}

Dataset
readEvyatFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        DNASIM_FATAL("cannot open '", path, "' for reading");
    return readEvyat(in);
}

} // namespace dnasim
