#include "data/strand_factory.hh"

#include <array>

#include "base/logging.hh"

namespace dnasim
{

StrandFactory::StrandFactory(StrandConstraints constraints)
    : constraints_(constraints)
{}

bool
StrandFactory::satisfies(const Strand &s) const
{
    if (constraints_.min_gc <= constraints_.max_gc) {
        double gc = gcRatio(s);
        if (gc < constraints_.min_gc || gc > constraints_.max_gc)
            return false;
    }
    if (constraints_.max_homopolymer > 0 &&
        maxHomopolymerRun(s) > constraints_.max_homopolymer) {
        return false;
    }
    return true;
}

char
StrandFactory::drawBase(const Strand &prefix, Rng &rng) const
{
    const size_t limit = constraints_.max_homopolymer;
    for (;;) {
        char c = kBaseChars[rng.index(kNumBases)];
        if (limit == 0)
            return c;
        // Reject a base that would extend a maximal run past limit.
        size_t run = 1;
        for (auto it = prefix.rbegin();
             it != prefix.rend() && *it == c; ++it) {
            ++run;
        }
        if (run <= limit)
            return c;
    }
}

Strand
StrandFactory::make(size_t len, Rng &rng) const
{
    DNASIM_ASSERT(len > 0, "strand of zero length");
    // Homopolymer limit is enforced during construction; the GC
    // window by rejection sampling with a bounded retry count and a
    // local repair fallback (swap A/T <-> G/C at random positions).
    constexpr int max_attempts = 64;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        Strand s;
        s.reserve(len);
        for (size_t i = 0; i < len; ++i)
            s.push_back(drawBase(s, rng));
        if (satisfies(s))
            return s;
        // Repair GC-ratio by flipping bases toward the window.
        for (int repair = 0; repair < 256 && !satisfies(s); ++repair) {
            double gc = gcRatio(s);
            bool need_more_gc = gc < constraints_.min_gc;
            size_t pos = rng.index(s.size());
            char c = s[pos];
            char repl;
            if (need_more_gc)
                repl = (c == 'A') ? 'G' : (c == 'T') ? 'C' : c;
            else
                repl = (c == 'G') ? 'A' : (c == 'C') ? 'T' : c;
            if (repl == c)
                continue;
            char saved = s[pos];
            s[pos] = repl;
            if (constraints_.max_homopolymer > 0 &&
                maxHomopolymerRun(s) > constraints_.max_homopolymer) {
                s[pos] = saved;
            }
        }
        if (satisfies(s))
            return s;
    }
    DNASIM_FATAL("could not generate a strand of length ", len,
                 " meeting constraints (gc in [", constraints_.min_gc,
                 ", ", constraints_.max_gc, "], homopolymer <= ",
                 constraints_.max_homopolymer, ")");
}

std::vector<Strand>
StrandFactory::makeMany(size_t count, size_t len, Rng &rng) const
{
    std::vector<Strand> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i)
        out.push_back(make(len, rng));
    return out;
}

} // namespace dnasim
