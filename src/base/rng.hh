/**
 * @file
 * Deterministic random-number generation for the simulator.
 *
 * Every stochastic component in dnasim draws from an explicitly passed
 * Rng so that experiments are reproducible from a single seed. Rng
 * also supports forking independent child streams, which lets
 * parallel or per-cluster generation stay deterministic regardless of
 * evaluation order.
 */

#ifndef DNASIM_BASE_RNG_HH
#define DNASIM_BASE_RNG_HH

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "base/logging.hh"

namespace dnasim
{

/**
 * A seeded pseudo-random source wrapping std::mt19937_64 with the
 * sampling helpers the simulator needs.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(uint64_t seed = 0x5eed'da7a'5eed'da7aULL)
        : engine_(seed), seed_(seed)
    {}

    /** The seed this stream was constructed with. */
    uint64_t seed() const { return seed_; }

    /**
     * Fork an independent child stream.
     *
     * The child seed mixes the parent seed with @p salt via
     * splitmix64 so children with different salts are decorrelated.
     */
    Rng
    fork(uint64_t salt)
    {
        return Rng(mix(seed_, salt));
    }

    /** Uniform real in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        DNASIM_ASSERT(lo <= hi, "bad uniform bounds");
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        DNASIM_ASSERT(lo <= hi, "bad uniformInt bounds");
        return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
    }

    /** Uniform index in [0, n). @p n must be positive. */
    size_t
    index(size_t n)
    {
        DNASIM_ASSERT(n > 0, "index() over empty range");
        return static_cast<size_t>(uniformInt(0, static_cast<int64_t>(n) - 1));
    }

    /** Bernoulli trial with success probability @p p (clamped to [0,1]). */
    bool
    bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Standard normal draw scaled to N(mean, stddev). */
    double
    gaussian(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Poisson draw with rate @p lambda. */
    int64_t
    poisson(double lambda)
    {
        DNASIM_ASSERT(lambda >= 0.0, "negative poisson rate");
        if (lambda == 0.0)
            return 0;
        return std::poisson_distribution<int64_t>(lambda)(engine_);
    }

    /** Binomial draw over @p n trials with success probability @p p. */
    int64_t
    binomial(int64_t n, double p)
    {
        DNASIM_ASSERT(n >= 0 && p >= 0.0 && p <= 1.0, "bad binomial params");
        if (n == 0 || p == 0.0)
            return 0;
        return std::binomial_distribution<int64_t>(n, p)(engine_);
    }

    /**
     * Negative-binomial draw: the number of failures before the r-th
     * success with per-trial success probability @p p.
     */
    int64_t
    negativeBinomial(double r, double p)
    {
        DNASIM_ASSERT(r > 0.0 && p > 0.0 && p <= 1.0,
                      "bad negative binomial params");
        // Gamma-Poisson mixture supports non-integral r.
        std::gamma_distribution<double> gamma(r, (1.0 - p) / p);
        return poisson(gamma(engine_));
    }

    /**
     * Sample an index from an unnormalized weight vector.
     *
     * Weights must be non-negative with a positive sum.
     */
    size_t
    discrete(std::span<const double> weights)
    {
        double total = 0.0;
        for (double w : weights) {
            DNASIM_ASSERT(w >= 0.0, "negative discrete weight");
            total += w;
        }
        DNASIM_ASSERT(total > 0.0, "discrete() with zero total weight");
        double x = uniform() * total;
        double acc = 0.0;
        for (size_t i = 0; i < weights.size(); ++i) {
            acc += weights[i];
            if (x < acc)
                return i;
        }
        return weights.size() - 1; // floating-point slack
    }

    /** Fisher-Yates shuffle of an arbitrary random-access container. */
    template <typename Container>
    void
    shuffle(Container &c)
    {
        std::shuffle(c.begin(), c.end(), engine_);
    }

    /** Pick a uniformly random element from a non-empty container. */
    template <typename Container>
    const typename Container::value_type &
    pick(const Container &c)
    {
        DNASIM_ASSERT(!c.empty(), "pick() from empty container");
        return c[index(c.size())];
    }

    /** Access the raw engine for std distributions not wrapped here. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    /** splitmix64-based seed mixing. */
    static uint64_t
    mix(uint64_t a, uint64_t b)
    {
        uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::mt19937_64 engine_;
    uint64_t seed_;
};

} // namespace dnasim

#endif // DNASIM_BASE_RNG_HH
