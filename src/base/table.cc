#include "base/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/logging.hh"

namespace dnasim
{

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{}

void
TextTable::setHeader(std::vector<std::string> header)
{
    DNASIM_ASSERT(rows_.empty(), "setHeader() after addRow()");
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    DNASIM_ASSERT(header_.empty() || row.size() == header_.size(),
                  "row width ", row.size(), " != header width ",
                  header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(header_.size(), 0);
    auto grow = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream os;
    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << row[i];
            os << (i + 1 == row.size() ? "" : "  ");
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TextTable::csv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char c : s) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            os << quote(row[i]) << (i + 1 == row.size() ? "" : ",");
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    os << str() << "\n";
}

std::string
fmtDouble(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string
fmtPercent(double ratio, int decimals)
{
    return fmtDouble(ratio * 100.0, decimals);
}

} // namespace dnasim
