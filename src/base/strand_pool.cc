#include "base/strand_pool.hh"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "base/logging.hh"

namespace dnasim
{

// The header is serialized field-by-field, but the index and arena
// are written and mapped as raw host words; the format is defined
// little-endian, so builds are pinned to little-endian hosts (every
// supported target — see the SIMD tiers — already is).
static_assert(std::endian::native == std::endian::little,
              "dnapool v1 I/O assumes a little-endian host");

namespace
{

constexpr size_t kCopyBufBytes = 1 << 20;

void
storeU64(char *dst, uint64_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

uint64_t
loadU64(const char *src)
{
    uint64_t v = 0;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

void
setPathError(std::string *error, const std::string &path,
             const std::string &what)
{
    if (error != nullptr)
        *error = path + ": " + what;
}

bool
makeParentDirs(const std::string &path, std::string *error)
{
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (parent.empty())
        return true;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
        setPathError(error, parent.string(),
                     "cannot create directory: " + ec.message());
        return false;
    }
    return true;
}

/** Append the whole contents of @p src to @p out in fixed chunks. */
bool
appendFile(std::ofstream &out, const std::string &src,
           std::string *error)
{
    std::ifstream in(src, std::ios::binary);
    if (!in) {
        setPathError(error, src, "cannot reopen side file");
        return false;
    }
    std::vector<char> buf(kCopyBufBytes);
    while (in) {
        in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
        const std::streamsize got = in.gcount();
        if (got > 0)
            out.write(buf.data(), got);
    }
    if (in.bad() || !out) {
        setPathError(error, src, "I/O error while splicing");
        return false;
    }
    return true;
}

void
removeQuiet(const std::string &path)
{
    std::error_code ec;
    std::filesystem::remove(path, ec);
}

std::string
stripCr(std::string line)
{
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return line;
}

bool
isSeparatorLine(const std::string &line)
{
    if (line.empty())
        return false;
    for (char c : line)
        if (c != '*')
            return false;
    return true;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// PackedStrandPool

bool
PackedStrandPool::open(const std::string &path, std::string *error)
{
    close();
    if (!map_.open(path, error))
        return false;

    const auto bytes = map_.bytes();
    const char *base = reinterpret_cast<const char *>(bytes.data());
    if (bytes.size() < kHeaderBytes) {
        setPathError(error, path,
                     "not a dnapool file (shorter than the header)");
        close();
        return false;
    }
    if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
        setPathError(error, path, "not a dnapool file (bad magic)");
        close();
        return false;
    }
    const uint64_t version = loadU64(base + 8);
    if (version != kVersion) {
        setPathError(error, path,
                     "unsupported dnapool version " +
                         std::to_string(version));
        close();
        return false;
    }
    const uint64_t count = loadU64(base + 16);
    const uint64_t arena_words = loadU64(base + 24);
    const uint64_t index_offset = loadU64(base + 32);
    const uint64_t arena_offset = loadU64(base + 40);
    const uint64_t total_bases = loadU64(base + 48);

    // O(1) bounds validation: the declared index and arena must fit
    // inside the mapping, so a truncated or corrupt file fails here
    // instead of faulting on first access.
    const uint64_t index_bytes = count * kIndexEntryBytes;
    const uint64_t arena_bytes = arena_words * sizeof(uint64_t);
    if (count > bytes.size() / kIndexEntryBytes ||
        index_offset != kHeaderBytes ||
        arena_offset != kHeaderBytes + index_bytes ||
        arena_bytes > bytes.size() ||
        arena_offset > bytes.size() - arena_bytes) {
        setPathError(error, path,
                     "truncated or corrupt dnapool file");
        close();
        return false;
    }

    index_ = reinterpret_cast<const uint64_t *>(base + index_offset);
    arena_ = reinterpret_cast<const uint64_t *>(base + arena_offset);
    count_ = count;
    arena_words_ = arena_words;
    total_bases_ = total_bases;
    return true;
}

void
PackedStrandPool::close()
{
    map_.close();
    index_ = nullptr;
    arena_ = nullptr;
    count_ = 0;
    arena_words_ = 0;
    total_bases_ = 0;
}

size_t
PackedStrandPool::length(size_t i) const
{
    DNASIM_ASSERT(i < count_, "pool strand ", i, " out of range ",
                  count_);
    return static_cast<size_t>(index_[2 * i + 1]);
}

std::span<const uint64_t>
PackedStrandPool::words(size_t i) const
{
    DNASIM_ASSERT(i < count_, "pool strand ", i, " out of range ",
                  count_);
    const uint64_t word_offset = index_[2 * i];
    const size_t len = static_cast<size_t>(index_[2 * i + 1]);
    const size_t num_words = PackedStrand::numWords(len);
    DNASIM_ASSERT(word_offset <= arena_words_ &&
                      num_words <= arena_words_ - word_offset,
                  "pool strand ", i, " overruns the arena");
    return {arena_ + word_offset, num_words};
}

void
PackedStrandPool::unpackInto(size_t i, Strand &out) const
{
    unpackWords(words(i), length(i), out);
}

Strand
PackedStrandPool::strand(size_t i) const
{
    Strand out;
    unpackInto(i, out);
    return out;
}

// ---------------------------------------------------------------------
// PackedStrandPoolBuilder

PackedStrandPoolBuilder::~PackedStrandPoolBuilder()
{
    if (open_)
        abort();
}

bool
PackedStrandPoolBuilder::open(const std::string &path,
                              std::string *error)
{
    DNASIM_ASSERT(!open_, "pool builder already open");
    if (!makeParentDirs(path, error))
        return false;
    path_ = path;
    index_out_.open(path_ + ".tmp.index",
                    std::ios::binary | std::ios::trunc);
    arena_out_.open(path_ + ".tmp.arena",
                    std::ios::binary | std::ios::trunc);
    if (!index_out_ || !arena_out_) {
        setPathError(error, path_, "cannot create pool side files");
        index_out_.close();
        arena_out_.close();
        removeQuiet(path_ + ".tmp.index");
        removeQuiet(path_ + ".tmp.arena");
        return false;
    }
    count_ = 0;
    arena_words_ = 0;
    total_bases_ = 0;
    open_ = true;
    return true;
}

bool
PackedStrandPoolBuilder::append(std::string_view strand)
{
    DNASIM_ASSERT(open_, "append on a closed pool builder");
    size_t len = 0;
    if (!packWordsInto(strand, strand.size(), scratch_, &len))
        return false;

    char entry[PackedStrandPool::kIndexEntryBytes];
    storeU64(entry, arena_words_);
    storeU64(entry + 8, len);
    index_out_.write(entry, sizeof(entry));
    const size_t num_words = PackedStrand::numWords(len);
    if (num_words > 0) {
        arena_out_.write(
            reinterpret_cast<const char *>(scratch_.data()),
            static_cast<std::streamsize>(num_words *
                                         sizeof(uint64_t)));
    }
    ++count_;
    arena_words_ += num_words;
    total_bases_ += len;
    return true;
}

bool
PackedStrandPoolBuilder::finish(std::string *error)
{
    DNASIM_ASSERT(open_, "finish on a closed pool builder");
    index_out_.close();
    arena_out_.close();
    open_ = false;

    const std::string index_path = path_ + ".tmp.index";
    const std::string arena_path = path_ + ".tmp.arena";
    const std::string tmp_path = path_ + ".tmp";
    bool ok = !index_out_.fail() && !arena_out_.fail();
    if (!ok)
        setPathError(error, path_, "I/O error on pool side files");

    if (ok) {
        std::ofstream out(tmp_path,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            setPathError(error, tmp_path, "cannot create pool file");
            ok = false;
        } else {
            char header[PackedStrandPool::kHeaderBytes] = {};
            std::memcpy(header, PackedStrandPool::kMagic,
                        sizeof(PackedStrandPool::kMagic));
            storeU64(header + 8, PackedStrandPool::kVersion);
            storeU64(header + 16, count_);
            storeU64(header + 24, arena_words_);
            storeU64(header + 32, PackedStrandPool::kHeaderBytes);
            storeU64(header + 40,
                     PackedStrandPool::kHeaderBytes +
                         count_ * PackedStrandPool::kIndexEntryBytes);
            storeU64(header + 48, total_bases_);
            out.write(header, sizeof(header));
            ok = appendFile(out, index_path, error) &&
                 appendFile(out, arena_path, error);
            out.close();
            if (ok && out.fail()) {
                setPathError(error, tmp_path,
                             "I/O error while writing pool file");
                ok = false;
            }
        }
    }

    removeQuiet(index_path);
    removeQuiet(arena_path);
    if (ok && std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
        setPathError(error, path_,
                     std::string("rename: ") + std::strerror(errno));
        ok = false;
    }
    if (!ok)
        removeQuiet(tmp_path);
    return ok;
}

void
PackedStrandPoolBuilder::abort()
{
    index_out_.close();
    arena_out_.close();
    open_ = false;
    if (!path_.empty()) {
        removeQuiet(path_ + ".tmp.index");
        removeQuiet(path_ + ".tmp.arena");
        removeQuiet(path_ + ".tmp");
    }
}

// ---------------------------------------------------------------------
// Streaming ingest

namespace
{

/** Shared sink: appends reads, tracks skips, enforces max_reads. */
class IngestSink
{
  public:
    IngestSink(PackedStrandPoolBuilder &builder,
               const IngestOptions &options, IngestResult &result,
               std::ofstream *origins_out)
        : builder_(builder), options_(options), result_(result),
          origins_out_(origins_out)
    {
    }

    /** False once max_reads is reached — the caller stops parsing. */
    bool wantMore() const
    {
        return options_.max_reads == 0 ||
               result_.reads < options_.max_reads;
    }

    void add(std::string_view read, uint32_t origin)
    {
        if (!builder_.append(read)) {
            ++result_.skipped;
            return;
        }
        ++result_.reads;
        result_.total_bases += read.size();
        if (origins_out_ != nullptr) {
            origins_out_->write(
                reinterpret_cast<const char *>(&origin),
                sizeof(origin));
        }
    }

  private:
    PackedStrandPoolBuilder &builder_;
    const IngestOptions &options_;
    IngestResult &result_;
    std::ofstream *origins_out_;
};

bool
ingestLines(std::istream &in, IngestSink &sink)
{
    std::string line;
    while (sink.wantMore() && std::getline(in, line)) {
        line = stripCr(std::move(line));
        if (line.empty())
            continue;
        sink.add(line, 0);
    }
    return !in.bad();
}

bool
ingestFasta(std::istream &in, IngestSink &sink, IngestResult &result)
{
    std::string line;
    std::string seq;
    bool have_record = false;
    auto flush = [&] {
        if (have_record)
            sink.add(seq, 0);
        seq.clear();
        have_record = false;
    };
    while (sink.wantMore() && std::getline(in, line)) {
        line = stripCr(std::move(line));
        if (!line.empty() && line[0] == '>') {
            flush();
            have_record = true;
            continue;
        }
        if (line.empty())
            continue;
        // Tolerate sequence data before the first header.
        have_record = true;
        seq += line;
    }
    if (sink.wantMore())
        flush();
    (void)result;
    return !in.bad();
}

bool
ingestEvyat(std::istream &in, IngestSink &sink, IngestResult &result,
            std::string *error)
{
    std::string line;
    size_t line_no = 0;
    while (sink.wantMore() && std::getline(in, line)) {
        ++line_no;
        line = stripCr(std::move(line));
        if (line.empty())
            continue;

        // Reference line (skipped — pools hold reads), then the
        // separator, then copies until a blank line or EOF.
        if (!std::getline(in, line)) {
            setPathError(error, "line " + std::to_string(line_no),
                         "unexpected EOF, separator expected");
            return false;
        }
        ++line_no;
        line = stripCr(std::move(line));
        if (!isSeparatorLine(line)) {
            setPathError(error, "line " + std::to_string(line_no),
                         "expected evyat separator, got '" + line +
                             "'");
            return false;
        }
        const auto origin = static_cast<uint32_t>(result.clusters);
        ++result.clusters;
        while (std::getline(in, line)) {
            ++line_no;
            line = stripCr(std::move(line));
            if (line.empty())
                break;
            if (!sink.wantMore())
                return true;
            sink.add(line, origin);
        }
    }
    return !in.bad();
}

IngestFormat
sniffFormat(const std::string &path)
{
    std::ifstream in(path);
    std::string first;
    std::string line;
    while (std::getline(in, line)) {
        line = stripCr(std::move(line));
        if (line.empty())
            continue;
        if (first.empty()) {
            first = line;
            if (first[0] == '>')
                return IngestFormat::Fasta;
            continue;
        }
        // The line right after the first strand decides: an all-'*'
        // separator marks the clustered evyat layout.
        return isSeparatorLine(line) ? IngestFormat::Evyat
                                     : IngestFormat::Lines;
    }
    return IngestFormat::Lines;
}

} // anonymous namespace

IngestFormat
sniffIngestFormat(const std::string &path)
{
    return sniffFormat(path);
}

const char *
ingestFormatName(IngestFormat format)
{
    switch (format) {
    case IngestFormat::Auto:
        return "auto";
    case IngestFormat::Lines:
        return "lines";
    case IngestFormat::Fasta:
        return "fasta";
    case IngestFormat::Evyat:
        return "evyat";
    }
    return "?";
}

bool
ingestToPool(const std::string &input_path,
             const std::string &pool_path,
             const IngestOptions &options, IngestResult &result,
             std::string *error)
{
    result = IngestResult{};

    std::ifstream in(input_path);
    if (!in) {
        setPathError(error, input_path, "cannot open for reading");
        return false;
    }

    IngestFormat format = options.format;
    if (format == IngestFormat::Auto)
        format = sniffFormat(input_path);

    PackedStrandPoolBuilder builder;
    if (!builder.open(pool_path, error))
        return false;

    std::ofstream origins_out;
    std::string origins_tmp;
    if (!options.origins_path.empty()) {
        if (format != IngestFormat::Evyat) {
            setPathError(error, options.origins_path,
                         "--origins requires evyat input");
            builder.abort();
            return false;
        }
        if (!makeParentDirs(options.origins_path, error)) {
            builder.abort();
            return false;
        }
        origins_tmp = options.origins_path + ".tmp";
        origins_out.open(origins_tmp,
                         std::ios::binary | std::ios::trunc);
        if (!origins_out) {
            setPathError(error, origins_tmp, "cannot create");
            builder.abort();
            return false;
        }
    }

    IngestSink sink(builder, options, result,
                    origins_out.is_open() ? &origins_out : nullptr);
    bool ok = false;
    switch (format) {
    case IngestFormat::Lines:
        ok = ingestLines(in, sink);
        if (!ok)
            setPathError(error, input_path, "read error");
        break;
    case IngestFormat::Fasta:
        ok = ingestFasta(in, sink, result);
        if (!ok)
            setPathError(error, input_path, "read error");
        break;
    case IngestFormat::Evyat:
        ok = ingestEvyat(in, sink, result, error);
        break;
    case IngestFormat::Auto:
        DNASIM_ASSERT(false, "unreachable: format sniffed above");
        break;
    }

    if (!ok) {
        builder.abort();
        if (origins_out.is_open()) {
            origins_out.close();
            removeQuiet(origins_tmp);
        }
        return false;
    }

    if (origins_out.is_open()) {
        origins_out.close();
        if (origins_out.fail()) {
            setPathError(error, origins_tmp, "I/O error");
            builder.abort();
            removeQuiet(origins_tmp);
            return false;
        }
    }
    if (!builder.finish(error)) {
        if (!origins_tmp.empty())
            removeQuiet(origins_tmp);
        return false;
    }
    if (!origins_tmp.empty() &&
        std::rename(origins_tmp.c_str(),
                    options.origins_path.c_str()) != 0) {
        setPathError(error, options.origins_path,
                     std::string("rename: ") + std::strerror(errno));
        removeQuiet(origins_tmp);
        return false;
    }
    return true;
}

} // namespace dnasim
