/**
 * @file
 * Plain-text table formatting shared by the bench harnesses.
 *
 * Every experiment binary prints the rows of the corresponding paper
 * table/figure through TextTable so that the output is uniform and
 * grep-able, and can optionally emit CSV for plotting.
 */

#ifndef DNASIM_BASE_TABLE_HH
#define DNASIM_BASE_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace dnasim
{

/**
 * A simple column-aligned text table with an optional title.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the header row. Must be called before addRow(). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; its width must match the header's. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows added so far. */
    size_t numRows() const { return rows_.size(); }

    /** Render as an aligned text table. */
    std::string str() const;

    /** Render as CSV (header + rows, comma-separated, quoted). */
    std::string csv() const;

    /** Print str() to @p os followed by a blank line. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals fraction digits. */
std::string fmtDouble(double v, int decimals = 2);

/** Format a ratio in [0,1] as a percentage with @p decimals digits. */
std::string fmtPercent(double ratio, int decimals = 2);

} // namespace dnasim

#endif // DNASIM_BASE_TABLE_HH
