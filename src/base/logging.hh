/**
 * @file
 * Logging and error-reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * Two classes of failure are distinguished:
 *  - panic(): an internal invariant was violated (a dnasim bug);
 *    aborts the process so a debugger or core dump can be used.
 *  - fatal(): the simulation cannot continue because of a user error
 *    (bad configuration, malformed input file); throws FatalError so
 *    callers (and tests) can observe it, and terminates with exit(1)
 *    when it escapes main.
 *
 * Non-terminating status helpers: inform(), warn(), warn_once().
 */

#ifndef DNASIM_BASE_LOGGING_HH
#define DNASIM_BASE_LOGGING_HH

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dnasim
{

/** Severity of a non-terminating log message. */
enum class LogLevel { Info, Warn };

/**
 * Pluggable destination for inform()/warn()/warn_once() messages.
 * The sink is invoked without internal locks held, so it may log or
 * allocate freely; it must be thread-safe itself.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Replace the sink behind inform()/warn()/warn_once(); returns the
 * previous sink. An empty sink restores the default (stderr with an
 * "info:"/"warn:" prefix). warn_once() deduplication happens before
 * the sink, so a sink sees each once-message a single time.
 */
LogSink setLogSink(LogSink sink);

/** Exception thrown by fatal(); carries the formatted message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{

/** Concatenate a pack of streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg, bool once);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort on an internal invariant violation (a dnasim bug). */
#define DNASIM_PANIC(...)                                                  \
    ::dnasim::detail::panicImpl(__FILE__, __LINE__,                        \
                                ::dnasim::detail::concat(__VA_ARGS__))

/** Terminate on an unrecoverable user error (throws FatalError). */
#define DNASIM_FATAL(...)                                                  \
    ::dnasim::detail::fatalImpl(__FILE__, __LINE__,                        \
                                ::dnasim::detail::concat(__VA_ARGS__))

/** Panic if @p cond is false. Active in all build types. */
#define DNASIM_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::dnasim::detail::panicImpl(                                   \
                __FILE__, __LINE__,                                        \
                ::dnasim::detail::concat("assertion '" #cond "' failed: ", \
                                         ##__VA_ARGS__));                  \
        }                                                                  \
    } while (0)

/** Print a warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...), false);
}

/** Print a warning to stderr only the first time this message occurs. */
template <typename... Args>
void
warn_once(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...), true);
}

/** Print an informational message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace dnasim

#endif // DNASIM_BASE_LOGGING_HH
