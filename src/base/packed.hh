/**
 * @file
 * 2-bit packed DNA strands.
 *
 * A PackedStrand stores a strand over {A, C, G, T} at 2 bits per
 * base, 32 bases per 64-bit word, least-significant pair first. The
 * bit codes are the Base enum indices (A=0, C=1, G=2, T=3), so a
 * packed word is directly usable as a vector of probability-table
 * indices. Unused tail bits of the last word are always zero, which
 * makes whole-word equality, XOR-based Hamming comparison, and
 * word-wise vote accumulation valid without per-call masking.
 *
 * The packed layout is a *kernel substrate*, not a replacement for
 * the public Strand API: pipelines still exchange std::string
 * strands, and every packed kernel is required to be bit-identical
 * to its character-path counterpart (see DESIGN.md, "Packed strand
 * core").
 */

#ifndef DNASIM_BASE_PACKED_HH
#define DNASIM_BASE_PACKED_HH

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "base/dna.hh"

namespace dnasim
{

/**
 * Per-character 2-bit codes: kCharToCode[c] is the Base index of c,
 * or kInvalidCode for characters outside {A, C, G, T}. Shared by the
 * packer and by kernels that walk char strands word-wise.
 */
inline constexpr uint8_t kInvalidCode = 0xff;

namespace detail
{
constexpr std::array<uint8_t, 256>
makeCharToCode()
{
    std::array<uint8_t, 256> t{};
    for (auto &e : t)
        e = kInvalidCode;
    t['A'] = 0;
    t['C'] = 1;
    t['G'] = 2;
    t['T'] = 3;
    return t;
}
} // namespace detail

inline constexpr std::array<uint8_t, 256> kCharToCode =
    detail::makeCharToCode();

/** A DNA strand packed at 2 bits per base. */
class PackedStrand
{
  public:
    /** Bases stored per 64-bit word. */
    static constexpr size_t kBasesPerWord = 32;

    /** Words needed for @p len bases. */
    static constexpr size_t
    numWords(size_t len)
    {
        return (len + kBasesPerWord - 1) / kBasesPerWord;
    }

    PackedStrand() = default;

    /**
     * Pack @p s. Every character must be one of A, C, G, T; invalid
     * content is a bug upstream and is checked with an assertion.
     * Use tryPack() for untrusted input.
     */
    explicit PackedStrand(std::string_view s);

    /** Pack @p s, or nullopt if it contains a non-ACGT character. */
    static std::optional<PackedStrand> tryPack(std::string_view s);

    /**
     * Repack @p s into this strand, reusing the existing word
     * storage (no allocation once capacity has grown to the working
     * length). Asserts validity like the constructor.
     */
    void packFrom(std::string_view s);

    /** Number of bases. */
    size_t size() const { return len_; }

    bool empty() const { return len_ == 0; }

    /** Base at position @p i (asserted in range). */
    Base base(size_t i) const;

    /** Character at position @p i. */
    char charAt(size_t i) const
    {
        return baseToChar(base(i));
    }

    /** The packed words; tail bits beyond size() are zero. */
    std::span<const uint64_t> words() const
    {
        return {words_.data(), numWords(len_)};
    }

    /** Word @p w (asserted in range). */
    uint64_t word(size_t w) const;

    /** Unpack back to the public string representation. */
    Strand toStrand() const;

    /** Unpack into @p out (resized; storage reused). */
    void unpackInto(Strand &out) const;

    /**
     * Equality is length + word equality — valid because tail bits
     * are canonically zero.
     */
    bool operator==(const PackedStrand &other) const
    {
        return len_ == other.len_ && words_same(other);
    }

  private:
    bool words_same(const PackedStrand &other) const;

    std::vector<uint64_t> words_;
    size_t len_ = 0;
};

/**
 * Pack the first min(|s|, max_bases) bases of @p s into @p out
 * (resized to the needed word count, tail bits zeroed). Returns
 * false — leaving @p out unspecified — if a non-ACGT character is
 * encountered. This is the allocation-free workhorse behind
 * PackedStrand and the consensus fast path, which packs into a
 * reused arena instead of one PackedStrand per copy.
 */
bool packWordsInto(std::string_view s, size_t max_bases,
                   std::vector<uint64_t> &out, size_t *packed_len);

/**
 * Unpack @p len bases of packed @p words into @p out (resized;
 * storage reused). The inverse of packWordsInto(); also the unpack
 * path for strands read straight out of an mmap-backed pool arena
 * (base/strand_pool.hh), which hands word spans that never lived in
 * a PackedStrand. @p words must hold PackedStrand::numWords(@p len)
 * words.
 */
void unpackWords(std::span<const uint64_t> words, size_t len,
                 Strand &out);

/**
 * Pad/invalid code in lane-major batch code matrices. The batch
 * alignment kernels (align/myers_batch.hh) index a five-row Peq
 * table whose fifth row is all-zero, so this code makes ragged
 * tails and non-ACGT characters gather a zero match mask — exactly
 * the scalar kernel's treatment of an invalid text character.
 */
inline constexpr uint8_t kLaneMajorPadCode = 4;

/**
 * Transpose up to @p lanes texts into a lane-major code matrix for
 * the batch alignment kernels: for t in [0, max_t), out[t * lanes
 * + l] is the 2-bit base code of texts[l][t], or kLaneMajorPadCode
 * for non-ACGT characters, for t >= texts[l].size() (ragged tails)
 * and for lanes beyond texts.size(). Characters past @p max_t are
 * ignored (the kernel never steps that far). @p out is resized to
 * max_t * lanes; storage is reused, so a steady-state caller
 * allocates nothing.
 */
void packLaneMajorCodes(std::span<const std::string_view> texts,
                        size_t lanes, size_t max_t,
                        std::vector<uint8_t> &out);

/**
 * Invoke @p fn(code) for every k-mer of a packed strand, in position
 * order. The code of the k-mer starting at base i packs bases
 * i..i+k-1 at 2 bits each with the first base in the least
 * significant pair — the same layout as the packed words themselves,
 * so a code is directly comparable against a word slice. The walk is
 * word-wise (one word load per 32 bases, two shifts per base); the
 * character representation is never touched, which is what makes
 * per-read MinHash sketching (cluster/sketch_index.hh) cheap enough
 * to run in front of every clustering probe.
 *
 * @p words must hold at least numWords(@p len) packed words (e.g.
 * PackedStrand::words() or a packWordsInto() arena). @p k outside
 * [1, kBasesPerWord] or @p len < @p k yields no invocations.
 */
template <typename Fn>
inline void
forEachPackedKmer(std::span<const uint64_t> words, size_t len, size_t k,
                  Fn &&fn)
{
    if (k == 0 || k > PackedStrand::kBasesPerWord || len < k)
        return;
    const uint64_t top_shift = 2 * (k - 1);
    uint64_t cur = 0;
    uint64_t w = 0;
    for (size_t i = 0; i < len; ++i) {
        if ((i & (PackedStrand::kBasesPerWord - 1)) == 0)
            w = words[i / PackedStrand::kBasesPerWord];
        cur = (cur >> 2) | ((w & 3) << top_shift);
        w >>= 2;
        if (i + 1 >= k)
            fn(cur);
    }
}

} // namespace dnasim

#endif // DNASIM_BASE_PACKED_HH
