/**
 * @file
 * mmap-backed packed strand pools: the out-of-core data plane.
 *
 * A pool file ("dnapool v1") stores millions of strands as an
 * append-only 2-bit packed arena plus an offset/length index, laid
 * out so a read-only mmap *is* the runtime data structure — no parse
 * step, no per-strand heap allocation, O(1) open:
 *
 * @verbatim
 * offset 0    64-byte header
 *             "DNAPOOL1" magic, version, count, arena_words,
 *             index_offset, arena_offset, total_bases, reserved
 * index       count x { u64 word_offset, u64 length }
 * arena       arena_words x u64 of 2-bit packed bases
 * @endverbatim
 *
 * All integers are little-endian u64. Every strand starts on a word
 * boundary, so words(i) is a direct span into the mapping and feeds
 * forEachPackedKmer() and the packed kernels without copying; the
 * cost is at most 31 padding bases per strand. Tail bits beyond a
 * strand's length are zero, matching the PackedStrand canonical-tail
 * contract.
 *
 * PackedStrandPoolBuilder streams strands to side files in bounded
 * memory and commits the assembled pool atomically (write to a temp
 * path, then rename), so a killed ingest never leaves a torn pool.
 * StrandPoolView lets ChannelSimulator, clusterReads and the
 * reconstruction pipeline consume either an in-RAM
 * std::vector<Strand> or an mmap-backed pool through one interface.
 */

#ifndef DNASIM_BASE_STRAND_POOL_HH
#define DNASIM_BASE_STRAND_POOL_HH

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/dna.hh"
#include "base/mapped_file.hh"
#include "base/packed.hh"

namespace dnasim
{

/** A read-only, mmap-backed dnapool v1 file. */
class PackedStrandPool
{
  public:
    /** Magic bytes at offset 0 of every pool file. */
    static constexpr char kMagic[8] = {'D', 'N', 'A', 'P',
                                       'O', 'O', 'L', '1'};
    static constexpr uint64_t kVersion = 1;
    static constexpr size_t kHeaderBytes = 64;
    static constexpr size_t kIndexEntryBytes = 16;

    PackedStrandPool() = default;

    /**
     * Map the pool file at @p path. Returns false (setting @p error
     * when non-null) on I/O failure or when the file is not a valid
     * pool — wrong magic or version, or a size that cannot hold the
     * declared index and arena (a truncated file fails here, before
     * any strand is touched).
     */
    bool open(const std::string &path, std::string *error = nullptr);

    void close();

    bool isOpen() const { return map_.isOpen(); }

    /**
     * Hint the expected access pattern (Sequential for full scans,
     * Random for probe-heavy clustering) to the kernel. Advisory
     * only; data access is identical either way.
     */
    void advise(MapAccess access) const { map_.advise(access); }

    /** Number of strands. */
    size_t size() const { return static_cast<size_t>(count_); }

    bool empty() const { return count_ == 0; }

    /** Sum of strand lengths in bases. */
    uint64_t totalBases() const { return total_bases_; }

    /** Length in bases of strand @p i. */
    size_t length(size_t i) const;

    /**
     * The packed words of strand @p i — a direct span into the
     * mapping, valid while the pool stays open. Tail bits are zero.
     */
    std::span<const uint64_t> words(size_t i) const;

    /** Unpack strand @p i into @p out (resized; storage reused). */
    void unpackInto(size_t i, Strand &out) const;

    /** Unpack strand @p i into a fresh string. */
    Strand strand(size_t i) const;

  private:
    MappedFile map_;
    const uint64_t *index_ = nullptr; // count x {word_offset, length}
    const uint64_t *arena_ = nullptr;
    uint64_t count_ = 0;
    uint64_t arena_words_ = 0;
    uint64_t total_bases_ = 0;
};

/**
 * Streaming writer for dnapool v1 files. Index entries and arena
 * words go to side files through small buffers, so memory use is
 * independent of pool size; finish() splices header + index + arena
 * into "<path>.tmp" and renames it over @p path in one atomic step.
 */
class PackedStrandPoolBuilder
{
  public:
    PackedStrandPoolBuilder() = default;
    ~PackedStrandPoolBuilder();

    PackedStrandPoolBuilder(const PackedStrandPoolBuilder &) = delete;
    PackedStrandPoolBuilder &
    operator=(const PackedStrandPoolBuilder &) = delete;

    /**
     * Start building the pool that finish() will publish at
     * @p path. Creates parent directories. Returns false (setting
     * @p error when non-null) if the side files cannot be created.
     */
    bool open(const std::string &path, std::string *error = nullptr);

    bool isOpen() const { return open_; }

    /**
     * Append one strand. Returns false — appending nothing — when
     * @p strand contains a non-ACGT character; the caller decides
     * whether skipping is acceptable. Empty strands are valid.
     */
    bool append(std::string_view strand);

    /** Strands appended so far. */
    size_t count() const { return static_cast<size_t>(count_); }

    uint64_t totalBases() const { return total_bases_; }

    /**
     * Assemble and atomically publish the pool file. Returns false
     * (setting @p error when non-null) on I/O failure, in which case
     * no file appears at the target path. The builder is closed
     * either way.
     */
    bool finish(std::string *error = nullptr);

    /** Discard everything written so far and remove side files. */
    void abort();

  private:
    std::string path_;
    std::ofstream index_out_;
    std::ofstream arena_out_;
    std::vector<uint64_t> scratch_;
    uint64_t count_ = 0;
    uint64_t arena_words_ = 0;
    uint64_t total_bases_ = 0;
    bool open_ = false;
};

/**
 * A uniform, read-only view over strands held either in RAM
 * (std::vector<Strand>) or in an mmap-backed pool. Pipelines take a
 * view plus per-thread scratch, so the in-RAM path stays zero-copy
 * while the pool path materializes only the strand under the cursor.
 * The view does not own its backing store; keep it alive.
 */
class StrandPoolView
{
  public:
    StrandPoolView() = default;

    explicit StrandPoolView(const std::vector<Strand> &reads)
        : vec_(&reads)
    {
    }

    explicit StrandPoolView(const PackedStrandPool &pool)
        : pool_(&pool)
    {
    }

    size_t size() const
    {
        const size_t n = vec_ != nullptr   ? vec_->size()
                         : pool_ != nullptr ? pool_->size()
                                            : 0;
        return limit_ < n ? limit_ : n;
    }

    bool empty() const { return size() == 0; }

    /**
     * Restrict the view to the first @p max_reads strands (0 = no
     * limit). A cheap prefix subsample — the backing store is
     * untouched; only size() shrinks.
     */
    void truncate(size_t max_reads)
    {
        limit_ = max_reads == 0 ? SIZE_MAX : max_reads;
    }

    /** True when backed by an mmap pool (strands are packed). */
    bool poolBacked() const { return pool_ != nullptr; }

    size_t length(size_t i) const
    {
        return vec_ != nullptr ? (*vec_)[i].size()
                               : pool_->length(i);
    }

    /**
     * The characters of strand @p i. Vector-backed views return a
     * zero-copy string_view; pool-backed views unpack into
     * @p scratch and return a view of it (invalidated by the next
     * pool-backed chars() call on the same scratch).
     */
    std::string_view chars(size_t i, Strand &scratch) const
    {
        if (vec_ != nullptr)
            return (*vec_)[i];
        pool_->unpackInto(i, scratch);
        return scratch;
    }

    /**
     * Copy strand @p i into @p out (resized; storage reused) — for
     * callers that need a real Strand rather than a view.
     */
    void materialize(size_t i, Strand &out) const
    {
        if (vec_ != nullptr)
            out = (*vec_)[i];
        else
            pool_->unpackInto(i, out);
    }

    /**
     * The packed words of strand @p i. Pool-backed views return the
     * arena span directly; vector-backed views pack into @p scratch.
     * Returns false for a vector-backed strand with non-ACGT
     * characters (pool strands are valid by construction).
     */
    bool packed(size_t i, std::vector<uint64_t> &scratch,
                std::span<const uint64_t> &words, size_t &len) const
    {
        if (pool_ != nullptr) {
            words = pool_->words(i);
            len = pool_->length(i);
            return true;
        }
        if (!packWordsInto((*vec_)[i], (*vec_)[i].size(), scratch,
                           &len))
            return false;
        words = {scratch.data(), PackedStrand::numWords(len)};
        return true;
    }

  private:
    const std::vector<Strand> *vec_ = nullptr;
    const PackedStrandPool *pool_ = nullptr;
    size_t limit_ = SIZE_MAX;
};

/** Input formats understood by ingestToPool(). */
enum class IngestFormat
{
    Auto,  ///< sniff: evyat separator > FASTA '>' > plain lines
    Lines, ///< one strand per non-empty line
    Fasta, ///< '>' headers; sequence lines concatenated per record
    Evyat, ///< clustered dataset; copies ingested, references skipped
};

struct IngestOptions
{
    IngestFormat format = IngestFormat::Auto;
    /** Stop after this many ingested reads (0 = unlimited). */
    size_t max_reads = 0;
    /**
     * Evyat input only: write one little-endian u32 per ingested
     * read — the 0-based cluster index it came from — to this path
     * (atomically). Enables ground-truth purity scoring on pools.
     */
    std::string origins_path;
};

struct IngestResult
{
    size_t reads = 0;        ///< strands appended to the pool
    size_t skipped = 0;      ///< dropped: non-ACGT characters
    size_t clusters = 0;     ///< evyat only: clusters seen
    uint64_t total_bases = 0;
};

/**
 * Resolve IngestFormat::Auto for the file at @p path by peeking at
 * its first two non-empty lines ('>' header → Fasta, all-'*' second
 * line → Evyat, otherwise Lines). Never returns Auto.
 */
IngestFormat sniffIngestFormat(const std::string &path);

/** Stable lowercase name of an ingest format. */
const char *ingestFormatName(IngestFormat format);

/**
 * Stream the text input at @p input_path into a pool file at
 * @p pool_path in bounded memory. Returns false (setting @p error
 * when non-null) on I/O failure or malformed input; no pool file is
 * published in that case.
 */
bool ingestToPool(const std::string &input_path,
                  const std::string &pool_path,
                  const IngestOptions &options, IngestResult &result,
                  std::string *error = nullptr);

} // namespace dnasim

#endif // DNASIM_BASE_STRAND_POOL_HH
