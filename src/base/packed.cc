#include "base/packed.hh"

#include <algorithm>

#include "base/logging.hh"

namespace dnasim
{

bool
packWordsInto(std::string_view s, size_t max_bases,
              std::vector<uint64_t> &out, size_t *packed_len)
{
    const size_t len = std::min(s.size(), max_bases);
    out.resize(PackedStrand::numWords(len));
    size_t i = 0;
    for (size_t w = 0; w < out.size(); ++w) {
        uint64_t word = 0;
        const size_t stop =
            std::min(len, (w + 1) * PackedStrand::kBasesPerWord);
        for (size_t shift = 0; i < stop; ++i, shift += 2) {
            const uint8_t code =
                kCharToCode[static_cast<unsigned char>(s[i])];
            if (code == kInvalidCode)
                return false;
            word |= static_cast<uint64_t>(code) << shift;
        }
        out[w] = word;
    }
    if (packed_len != nullptr)
        *packed_len = len;
    return true;
}

void
packLaneMajorCodes(std::span<const std::string_view> texts,
                   size_t lanes, size_t max_t,
                   std::vector<uint8_t> &out)
{
    out.resize(max_t * lanes);
    std::fill(out.begin(), out.end(), kLaneMajorPadCode);
    const size_t live = std::min(lanes, texts.size());
    for (size_t l = 0; l < live; ++l) {
        const std::string_view text = texts[l];
        const size_t n = std::min(text.size(), max_t);
        uint8_t *col = out.data() + l;
        for (size_t t = 0; t < n; ++t) {
            const uint8_t code =
                kCharToCode[static_cast<unsigned char>(text[t])];
            col[t * lanes] =
                code == kInvalidCode ? kLaneMajorPadCode : code;
        }
    }
}

PackedStrand::PackedStrand(std::string_view s)
{
    packFrom(s);
}

std::optional<PackedStrand>
PackedStrand::tryPack(std::string_view s)
{
    PackedStrand p;
    if (!packWordsInto(s, s.size(), p.words_, &p.len_))
        return std::nullopt;
    return p;
}

void
PackedStrand::packFrom(std::string_view s)
{
    const bool ok = packWordsInto(s, s.size(), words_, &len_);
    DNASIM_ASSERT(ok, "non-ACGT character in strand");
}

Base
PackedStrand::base(size_t i) const
{
    DNASIM_ASSERT(i < len_, "packed index ", i, " out of range ", len_);
    const uint64_t w = words_[i / kBasesPerWord];
    return static_cast<Base>((w >> (2 * (i % kBasesPerWord))) & 3u);
}

uint64_t
PackedStrand::word(size_t w) const
{
    DNASIM_ASSERT(w < numWords(len_), "packed word ", w,
                  " out of range");
    return words_[w];
}

Strand
PackedStrand::toStrand() const
{
    Strand out;
    unpackInto(out);
    return out;
}

void
PackedStrand::unpackInto(Strand &out) const
{
    unpackWords(words(), len_, out);
}

void
unpackWords(std::span<const uint64_t> words, size_t len, Strand &out)
{
    out.resize(len);
    size_t i = 0;
    for (size_t w = 0; w < PackedStrand::numWords(len); ++w) {
        uint64_t word = words[w];
        const size_t stop =
            std::min(len, (w + 1) * PackedStrand::kBasesPerWord);
        for (; i < stop; ++i, word >>= 2)
            out[i] = kBaseChars[word & 3u];
    }
}

bool
PackedStrand::words_same(const PackedStrand &other) const
{
    const size_t n = numWords(len_);
    for (size_t w = 0; w < n; ++w)
        if (words_[w] != other.words_[w])
            return false;
    return true;
}

} // namespace dnasim
