#include "base/mapped_file.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace dnasim
{

namespace
{

void
setError(std::string *error, const std::string &path, const char *what)
{
    if (error != nullptr)
        *error = path + ": " + what + ": " + std::strerror(errno);
}

} // anonymous namespace

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_empty_(std::exchange(other.mapped_empty_, false))
{
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        close();
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, 0);
        mapped_empty_ = std::exchange(other.mapped_empty_, false);
    }
    return *this;
}

bool
MappedFile::open(const std::string &path, std::string *error)
{
    close();

    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        setError(error, path, "open");
        return false;
    }

    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        setError(error, path, "fstat");
        ::close(fd);
        return false;
    }
    if (!S_ISREG(st.st_mode)) {
        errno = EINVAL;
        setError(error, path, "not a regular file");
        ::close(fd);
        return false;
    }

    const auto size = static_cast<size_t>(st.st_size);
    if (size == 0) {
        // mmap rejects zero-length maps; model the empty file
        // directly so open() still succeeds.
        ::close(fd);
        mapped_empty_ = true;
        return true;
    }

    void *addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (addr == MAP_FAILED) {
        setError(error, path, "mmap");
        return false;
    }

    data_ = addr;
    size_ = size;
    return true;
}

void
MappedFile::close()
{
    if (data_ != nullptr)
        ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
    mapped_empty_ = false;
}

void
MappedFile::advise(MapAccess access) const
{
    if (data_ == nullptr)
        return;
    int advice = MADV_NORMAL;
    switch (access) {
    case MapAccess::Default:
        advice = MADV_NORMAL;
        break;
    case MapAccess::Sequential:
        advice = MADV_SEQUENTIAL;
        break;
    case MapAccess::Random:
        advice = MADV_RANDOM;
        break;
    }
    ::madvise(data_, size_, advice);
}

} // namespace dnasim
