#include "base/dna.hh"

#include <algorithm>

#include "base/logging.hh"

namespace dnasim
{

Base
charToBase(char c)
{
    switch (c) {
      case 'A': return Base::A;
      case 'C': return Base::C;
      case 'G': return Base::G;
      case 'T': return Base::T;
      default:
        DNASIM_PANIC("invalid base character '", c, "' (", int(c), ")");
    }
}

size_t
baseIndex(char c)
{
    return static_cast<size_t>(charToBase(c));
}

char
complementChar(char c)
{
    return baseToChar(complement(charToBase(c)));
}

bool
isValidStrand(std::string_view s)
{
    return std::all_of(s.begin(), s.end(), isBaseChar);
}

Strand
reverseStrand(std::string_view s)
{
    return Strand(s.rbegin(), s.rend());
}

Strand
reverseComplement(std::string_view s)
{
    Strand out;
    out.reserve(s.size());
    for (auto it = s.rbegin(); it != s.rend(); ++it)
        out.push_back(complementChar(*it));
    return out;
}

double
gcRatio(std::string_view s)
{
    if (s.empty())
        return 0.0;
    size_t gc = 0;
    for (char c : s)
        if (c == 'G' || c == 'C')
            ++gc;
    return static_cast<double>(gc) / static_cast<double>(s.size());
}

size_t
maxHomopolymerRun(std::string_view s)
{
    size_t best = 0, run = 0;
    char prev = '\0';
    for (char c : s) {
        run = (c == prev) ? run + 1 : 1;
        prev = c;
        best = std::max(best, run);
    }
    return best;
}

std::array<size_t, kNumBases>
baseCounts(std::string_view s)
{
    std::array<size_t, kNumBases> counts{};
    for (char c : s)
        ++counts[baseIndex(c)];
    return counts;
}

std::vector<bool>
homopolymerRunMask(std::string_view s, size_t min_run)
{
    std::vector<bool> mask;
    homopolymerRunMask(s, min_run, mask);
    return mask;
}

void
homopolymerRunMask(std::string_view s, size_t min_run,
                   std::vector<bool> &out)
{
    out.assign(s.size(), false);
    if (min_run == 0)
        min_run = 1;
    size_t start = 0;
    for (size_t i = 1; i <= s.size(); ++i) {
        if (i == s.size() || s[i] != s[start]) {
            if (i - start >= min_run)
                for (size_t k = start; k < i; ++k)
                    out[k] = true;
            start = i;
        }
    }
}

} // namespace dnasim
