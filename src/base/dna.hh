/**
 * @file
 * The DNA alphabet and strand utilities.
 *
 * A strand is represented as a std::string over the characters
 * 'A', 'C', 'G', 'T'. The Base enum gives a dense 0..3 index used by
 * probability tables (conditional error rates, confusion matrices).
 */

#ifndef DNASIM_BASE_DNA_HH
#define DNASIM_BASE_DNA_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dnasim
{

/** A DNA strand: a string over {A, C, G, T}. */
using Strand = std::string;

/** The four nucleotide bases, densely indexed for probability tables. */
enum class Base : uint8_t
{
    A = 0,
    C = 1,
    G = 2,
    T = 3,
};

/** Number of bases in the alphabet. */
inline constexpr size_t kNumBases = 4;

/** All bases, in index order. */
inline constexpr std::array<Base, kNumBases> kAllBases = {
    Base::A, Base::C, Base::G, Base::T};

/** The alphabet as characters, in index order. */
inline constexpr std::array<char, kNumBases> kBaseChars = {
    'A', 'C', 'G', 'T'};

/** Convert a base to its character. */
constexpr char
baseToChar(Base b)
{
    return kBaseChars[static_cast<size_t>(b)];
}

/** True iff @p c is one of A, C, G, T. */
constexpr bool
isBaseChar(char c)
{
    return c == 'A' || c == 'C' || c == 'G' || c == 'T';
}

/**
 * Convert a character to its Base.
 *
 * The character must satisfy isBaseChar(); this is checked with an
 * assertion (invalid strand content is a bug upstream of this call).
 */
Base charToBase(char c);

/** Dense 0..3 index of a base character. Asserts isBaseChar(). */
size_t baseIndex(char c);

/** Watson-Crick complement of a single base. */
constexpr Base
complement(Base b)
{
    switch (b) {
      case Base::A: return Base::T;
      case Base::T: return Base::A;
      case Base::C: return Base::G;
      case Base::G: return Base::C;
    }
    return Base::A; // unreachable
}

/** Watson-Crick complement of a single base character. */
char complementChar(char c);

/** True iff every character of @p s is a valid base. */
bool isValidStrand(std::string_view s);

/** Reverse of a strand (no complementing). */
Strand reverseStrand(std::string_view s);

/** Reverse complement of a strand. */
Strand reverseComplement(std::string_view s);

/**
 * GC-ratio of a strand in [0, 1]: (#G + #C) / length.
 * Returns 0 for the empty strand.
 */
double gcRatio(std::string_view s);

/** Length of the longest homopolymer run (e.g. AAAA -> 4). */
size_t maxHomopolymerRun(std::string_view s);

/** Per-base counts, indexed by baseIndex(). */
std::array<size_t, kNumBases> baseCounts(std::string_view s);

/**
 * Mask of positions lying inside a homopolymer run of length at
 * least @p min_run (e.g. for "AAAT" and min_run 3, positions 0-2).
 */
std::vector<bool> homopolymerRunMask(std::string_view s,
                                     size_t min_run);

/**
 * homopolymerRunMask() into a caller-provided buffer (assigned to
 * |s| entries; storage reused). Lets per-read hot paths — the
 * contextual channel computes this mask for every transmission —
 * run without a per-call allocation.
 */
void homopolymerRunMask(std::string_view s, size_t min_run,
                        std::vector<bool> &out);

} // namespace dnasim

#endif // DNASIM_BASE_DNA_HH
