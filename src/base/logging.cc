#include "base/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>

namespace dnasim
{
namespace detail
{

namespace
{

std::mutex log_mutex;
std::set<std::string> seen_warnings;

} // anonymous namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(log_mutex);
        std::cerr << "panic: " << msg << "\n @ " << file << ":" << line
                  << std::endl;
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(log_mutex);
        std::cerr << "fatal: " << msg << "\n @ " << file << ":" << line
                  << std::endl;
    }
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg, bool once)
{
    std::lock_guard<std::mutex> lock(log_mutex);
    if (once && !seen_warnings.insert(msg).second)
        return;
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(log_mutex);
    std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace dnasim
