#include "base/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>
#include <utility>

namespace dnasim
{

namespace
{

// Guards stderr ordering, the warn_once seen-set, and the sink
// pointer. The sink itself is always invoked with the lock released
// so it can log or install sinks without deadlocking.
std::mutex log_mutex;
std::set<std::string> seen_warnings;
LogSink log_sink;

void
dispatch(LogLevel level, const std::string &msg)
{
    LogSink sink;
    {
        std::lock_guard<std::mutex> lock(log_mutex);
        if (!log_sink) {
            std::cerr << (level == LogLevel::Warn ? "warn: " : "info: ")
                      << msg << std::endl;
            return;
        }
        sink = log_sink;
    }
    sink(level, msg);
}

} // anonymous namespace

LogSink
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(log_mutex);
    std::swap(log_sink, sink);
    return sink;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(log_mutex);
        std::cerr << "panic: " << msg << "\n @ " << file << ":" << line
                  << std::endl;
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(log_mutex);
        std::cerr << "fatal: " << msg << "\n @ " << file << ":" << line
                  << std::endl;
    }
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg, bool once)
{
    if (once) {
        std::lock_guard<std::mutex> lock(log_mutex);
        if (!seen_warnings.insert(msg).second)
            return;
    }
    dispatch(LogLevel::Warn, msg);
}

void
informImpl(const std::string &msg)
{
    dispatch(LogLevel::Info, msg);
}

} // namespace detail
} // namespace dnasim
