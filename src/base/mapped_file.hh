/**
 * @file
 * Read-only memory-mapped files.
 *
 * MappedFile is the RAII substrate under the out-of-core data plane
 * (base/strand_pool.hh): it maps a file read-only, exposes the bytes
 * as a span, and forwards access-pattern hints to madvise so the
 * kernel prefetches sequential scans and stops read-ahead thrash on
 * random probes. Mapping failures are reported through an error
 * string, never by aborting — callers surface them with the file
 * name attached.
 */

#ifndef DNASIM_BASE_MAPPED_FILE_HH
#define DNASIM_BASE_MAPPED_FILE_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace dnasim
{

/** Access-pattern hint forwarded to madvise(2). */
enum class MapAccess
{
    Default,    ///< no hint (kernel default read-ahead)
    Sequential, ///< MADV_SEQUENTIAL: aggressive read-ahead
    Random,     ///< MADV_RANDOM: disable read-ahead
};

/** A read-only memory-mapped file. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile() { close(); }

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Map @p path read-only. Returns false (and sets @p error when
     * non-null) if the file cannot be opened, statted or mapped; the
     * object stays unmapped. An empty file maps successfully with
     * size() == 0.
     */
    bool open(const std::string &path, std::string *error = nullptr);

    /** Unmap (no-op when not mapped). */
    void close();

    bool isOpen() const { return data_ != nullptr || mapped_empty_; }

    /** The mapped bytes. */
    std::span<const std::byte> bytes() const
    {
        return {static_cast<const std::byte *>(data_), size_};
    }

    const void *data() const { return data_; }
    size_t size() const { return size_; }

    /**
     * Apply an access-pattern hint to the whole mapping. Advisory:
     * failures (and unmapped files) are silently ignored — the data
     * is identical either way, only paging behavior changes.
     */
    void advise(MapAccess access) const;

  private:
    void *data_ = nullptr;
    size_t size_ = 0;
    bool mapped_empty_ = false;
};

} // namespace dnasim

#endif // DNASIM_BASE_MAPPED_FILE_HH
