#include "analysis/accuracy.hh"

#include <algorithm>

#include "base/logging.hh"
#include "core/channel_simulator.hh"
#include "obs/progress.hh"
#include "par/thread_pool.hh"

namespace dnasim
{

std::vector<Strand>
reconstructAll(const Dataset &data, const Reconstructor &algo,
               Rng &rng)
{
    // Pre-forked per-cluster streams keep the estimates identical to
    // the serial run for any thread count (see forkClusterStreams).
    std::vector<Rng> streams = forkClusterStreams(rng, data.size());
    obs::ProgressScope progress("reconstruct", data.size());
    return par::parallelTransform(data.size(), [&](size_t i) {
        auto estimate = algo.reconstruct(
            data[i].copies, data[i].reference.size(), streams[i]);
        progress.advance();
        return estimate;
    });
}

AccuracyResult
scoreReconstructions(const Dataset &data,
                     const std::vector<Strand> &estimates)
{
    DNASIM_ASSERT(estimates.size() == data.size(),
                  "estimate/cluster count mismatch: ",
                  estimates.size(), " vs ", data.size());
    AccuracyResult result;
    result.num_clusters = data.size();
    for (size_t i = 0; i < data.size(); ++i) {
        const Strand &ref = data[i].reference;
        const Strand &est = estimates[i];
        if (est == ref)
            ++result.num_perfect;
        result.num_chars += ref.size();
        size_t common = std::min(ref.size(), est.size());
        for (size_t p = 0; p < common; ++p)
            if (ref[p] == est[p])
                ++result.num_chars_correct;
    }
    return result;
}

AccuracyResult
evaluateAccuracy(const Dataset &data, const Reconstructor &algo,
                 Rng &rng)
{
    return scoreReconstructions(data,
                                reconstructAll(data, algo, rng));
}

AccuracyResult
evaluatePoolAccuracy(const StrandPoolView &reads,
                     const std::vector<uint32_t> &assignments,
                     const std::vector<uint32_t> &origins,
                     const StrandPoolView &references,
                     const Reconstructor &algo, Rng &rng)
{
    DNASIM_ASSERT(assignments.size() == reads.size(),
                  "assignment/read count mismatch: ",
                  assignments.size(), " vs ", reads.size());
    DNASIM_ASSERT(origins.size() == reads.size(),
                  "origin/read count mismatch: ", origins.size(),
                  " vs ", reads.size());

    uint32_t num_clusters = 0;
    for (uint32_t c : assignments)
        num_clusters = std::max(num_clusters, c + 1);
    std::vector<std::vector<uint32_t>> members(num_clusters);
    for (size_t r = 0; r < assignments.size(); ++r)
        members[assignments[r]].push_back(
            static_cast<uint32_t>(r));

    struct ClusterScore
    {
        uint32_t perfect = 0;
        uint64_t chars = 0;
        uint64_t correct = 0;
    };

    std::vector<Rng> streams = forkClusterStreams(rng, num_clusters);
    obs::ProgressScope progress("reconstruct", num_clusters);
    std::vector<ClusterScore> scores = par::parallelTransform(
        static_cast<size_t>(num_clusters), [&](size_t c) {
            // Materialize just this cluster's copies; the scratch
            // dies with the work item, so peak RSS holds one
            // cluster per worker, not the pool.
            std::vector<Strand> copies;
            copies.reserve(members[c].size());
            std::vector<uint32_t> cluster_origins;
            cluster_origins.reserve(members[c].size());
            Strand scratch;
            for (uint32_t r : members[c]) {
                copies.emplace_back(reads.chars(r, scratch));
                cluster_origins.push_back(origins[r]);
            }
            // Majority origin, ties to the smallest id — the
            // scoreClustering semantics.
            std::sort(cluster_origins.begin(), cluster_origins.end());
            uint32_t majority = 0;
            size_t best = 0;
            for (size_t lo = 0; lo < cluster_origins.size();) {
                size_t hi = lo;
                while (hi < cluster_origins.size() &&
                       cluster_origins[hi] == cluster_origins[lo])
                    ++hi;
                if (hi - lo > best) {
                    best = hi - lo;
                    majority = cluster_origins[lo];
                }
                lo = hi;
            }
            DNASIM_ASSERT(majority < references.size(),
                          "origin ", majority,
                          " out of reference range");
            Strand ref;
            references.materialize(majority, ref);
            const Strand estimate =
                algo.reconstruct(copies, ref.size(), streams[c]);
            ClusterScore score;
            score.perfect = estimate == ref ? 1 : 0;
            score.chars = ref.size();
            const size_t common =
                std::min(ref.size(), estimate.size());
            for (size_t p = 0; p < common; ++p)
                if (ref[p] == estimate[p])
                    ++score.correct;
            progress.advance();
            return score;
        });

    AccuracyResult result;
    result.num_clusters = num_clusters;
    for (const ClusterScore &s : scores) {
        result.num_perfect += s.perfect;
        result.num_chars += s.chars;
        result.num_chars_correct += s.correct;
    }
    return result;
}

} // namespace dnasim
