#include "analysis/accuracy.hh"

#include <algorithm>

#include "base/logging.hh"
#include "core/channel_simulator.hh"
#include "obs/progress.hh"
#include "par/thread_pool.hh"

namespace dnasim
{

std::vector<Strand>
reconstructAll(const Dataset &data, const Reconstructor &algo,
               Rng &rng)
{
    // Pre-forked per-cluster streams keep the estimates identical to
    // the serial run for any thread count (see forkClusterStreams).
    std::vector<Rng> streams = forkClusterStreams(rng, data.size());
    obs::ProgressScope progress("reconstruct", data.size());
    return par::parallelTransform(data.size(), [&](size_t i) {
        auto estimate = algo.reconstruct(
            data[i].copies, data[i].reference.size(), streams[i]);
        progress.advance();
        return estimate;
    });
}

AccuracyResult
scoreReconstructions(const Dataset &data,
                     const std::vector<Strand> &estimates)
{
    DNASIM_ASSERT(estimates.size() == data.size(),
                  "estimate/cluster count mismatch: ",
                  estimates.size(), " vs ", data.size());
    AccuracyResult result;
    result.num_clusters = data.size();
    for (size_t i = 0; i < data.size(); ++i) {
        const Strand &ref = data[i].reference;
        const Strand &est = estimates[i];
        if (est == ref)
            ++result.num_perfect;
        result.num_chars += ref.size();
        size_t common = std::min(ref.size(), est.size());
        for (size_t p = 0; p < common; ++p)
            if (ref[p] == est[p])
                ++result.num_chars_correct;
    }
    return result;
}

AccuracyResult
evaluateAccuracy(const Dataset &data, const Reconstructor &algo,
                 Rng &rng)
{
    return scoreReconstructions(data,
                                reconstructAll(data, algo, rng));
}

} // namespace dnasim
