#include "analysis/accuracy.hh"

#include <algorithm>

#include "base/logging.hh"

namespace dnasim
{

std::vector<Strand>
reconstructAll(const Dataset &data, const Reconstructor &algo,
               Rng &rng)
{
    std::vector<Strand> estimates;
    estimates.reserve(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
        Rng cluster_rng = rng.fork(i);
        estimates.push_back(algo.reconstruct(
            data[i].copies, data[i].reference.size(), cluster_rng));
    }
    return estimates;
}

AccuracyResult
scoreReconstructions(const Dataset &data,
                     const std::vector<Strand> &estimates)
{
    DNASIM_ASSERT(estimates.size() == data.size(),
                  "estimate/cluster count mismatch: ",
                  estimates.size(), " vs ", data.size());
    AccuracyResult result;
    result.num_clusters = data.size();
    for (size_t i = 0; i < data.size(); ++i) {
        const Strand &ref = data[i].reference;
        const Strand &est = estimates[i];
        if (est == ref)
            ++result.num_perfect;
        result.num_chars += ref.size();
        size_t common = std::min(ref.size(), est.size());
        for (size_t p = 0; p < common; ++p)
            if (ref[p] == est[p])
                ++result.num_chars_correct;
    }
    return result;
}

AccuracyResult
evaluateAccuracy(const Dataset &data, const Reconstructor &algo,
                 Rng &rng)
{
    return scoreReconstructions(data,
                                reconstructAll(data, algo, rng));
}

} // namespace dnasim
