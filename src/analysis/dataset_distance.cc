#include "analysis/dataset_distance.hh"

#include <algorithm>
#include <sstream>

#include "align/edit_distance.hh"
#include "align/gestalt.hh"
#include "base/logging.hh"

namespace dnasim
{

DatasetSignature
datasetSignature(const Dataset &data, uint64_t seed)
{
    Rng rng(seed);
    DatasetSignature sig;
    for (const auto &cluster : data) {
        const Strand &ref = cluster.reference;
        if (ref.empty())
            continue;
        for (const auto &copy : cluster.copies) {
            ++sig.copies;
            sig.lengths.add(copy.size());

            double score = gestaltScore(ref, copy);
            sig.gestalt_scores.add(static_cast<size_t>(
                std::min(100.0, score * 100.0)));

            auto ops = editOps(ref, copy, &rng);
            sig.errors_per_copy.add(numErrors(ops));
            for (const auto &op : ops) {
                switch (op.type) {
                  case EditOpType::Equal:
                  case EditOpType::Delete:
                    break;
                  case EditOpType::Substitute:
                    sig.error_types.add(0);
                    break;
                  case EditOpType::Insert:
                    sig.error_types.add(1);
                    break;
                }
            }
            for (const auto &run : deletionRuns(ops))
                sig.error_types.add(run.length == 1 ? 2 : 3);

            for (size_t pos : gestaltErrorPositions(ref, copy))
                sig.positions.add(pos);
        }
    }
    return sig;
}

double
DatasetDistance::mean() const
{
    return (error_types + positions + lengths + gestalt_scores +
            errors_per_copy) /
           5.0;
}

std::string
DatasetDistance::str() const
{
    std::ostringstream os;
    os << "types=" << error_types << " positions=" << positions
       << " lengths=" << lengths << " gestalt=" << gestalt_scores
       << " per-copy=" << errors_per_copy << " mean=" << mean();
    return os.str();
}

DatasetDistance
datasetDistance(const DatasetSignature &a, const DatasetSignature &b)
{
    DatasetDistance d;
    d.error_types = chiSquareDistance(a.error_types, b.error_types);
    d.positions = chiSquareDistance(a.positions, b.positions);
    d.lengths = chiSquareDistance(a.lengths, b.lengths);
    d.gestalt_scores =
        chiSquareDistance(a.gestalt_scores, b.gestalt_scores);
    d.errors_per_copy =
        chiSquareDistance(a.errors_per_copy, b.errors_per_copy);
    return d;
}

DatasetDistance
datasetDistance(const Dataset &a, const Dataset &b, uint64_t seed)
{
    return datasetDistance(datasetSignature(a, seed),
                           datasetSignature(b, seed));
}

} // namespace dnasim
