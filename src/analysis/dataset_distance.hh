/**
 * @file
 * Closed-form distances between a real and a simulated dataset —
 * the paper's alternative evaluation criteria (section 3.1,
 * criteria 1-3): error-statistics distance (chi-square between
 * error-type and positional distributions), copy-length
 * distribution distance, and the gestalt-score distribution
 * distance.
 *
 * The paper ultimately prefers reconstruction accuracy (criterion
 * 4) as the headline metric, but these distances are cheap, need no
 * reconstruction run, and rank the simulator ladder the same way —
 * which bench/ablation_metrics demonstrates.
 */

#ifndef DNASIM_ANALYSIS_DATASET_DISTANCE_HH
#define DNASIM_ANALYSIS_DATASET_DISTANCE_HH

#include <string>

#include "data/dataset.hh"
#include "stats/histogram.hh"

namespace dnasim
{

/** Summary statistics comparable across datasets. */
struct DatasetSignature
{
    /// Counts of substitution / insertion / single-deletion /
    /// long-deletion events (bins 0-3).
    Histogram error_types;
    /// Gestalt-aligned positional error histogram.
    Histogram positions;
    /// Copy-length histogram.
    Histogram lengths;
    /// Gestalt score per copy, bucketed to percent (bins 0-100).
    Histogram gestalt_scores;
    /// Per-copy error-count histogram (copy quality dispersion).
    Histogram errors_per_copy;

    uint64_t copies = 0;
};

/** Compute the signature of @p data (one pass over all copies). */
DatasetSignature datasetSignature(const Dataset &data,
                                  uint64_t seed = 0x51397a7);

/** Chi-square distances between two dataset signatures. */
struct DatasetDistance
{
    double error_types = 0.0;
    double positions = 0.0;
    double lengths = 0.0;
    double gestalt_scores = 0.0;
    double errors_per_copy = 0.0;

    /** Unweighted mean of the component distances, in [0, 1]. */
    double mean() const;

    /** One-line rendering for reports. */
    std::string str() const;
};

/** Distance between two signatures. */
DatasetDistance datasetDistance(const DatasetSignature &a,
                                const DatasetSignature &b);

/** Convenience: signature + distance in one call. */
DatasetDistance datasetDistance(const Dataset &a, const Dataset &b,
                                uint64_t seed = 0x51397a7);

} // namespace dnasim

#endif // DNASIM_ANALYSIS_DATASET_DISTANCE_HH
