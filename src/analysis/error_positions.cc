#include "analysis/error_positions.hh"

#include <algorithm>

#include "align/gestalt.hh"
#include "align/hamming.hh"
#include "base/logging.hh"

namespace dnasim
{

namespace
{

template <typename PairFn>
Histogram
accumulatePre(const Dataset &data, PairFn &&fn)
{
    Histogram h;
    for (const auto &cluster : data)
        for (const auto &copy : cluster.copies)
            fn(cluster.reference, copy, h);
    return h;
}

template <typename PairFn>
Histogram
accumulatePost(const Dataset &data,
               const std::vector<Strand> &estimates, PairFn &&fn)
{
    DNASIM_ASSERT(estimates.size() == data.size(),
                  "estimate/cluster count mismatch");
    Histogram h;
    for (size_t i = 0; i < data.size(); ++i) {
        if (estimates[i].empty())
            continue;
        fn(data[i].reference, estimates[i], h);
    }
    return h;
}

void
addHamming(const Strand &ref, const Strand &other, Histogram &h)
{
    for (size_t pos : hammingErrorPositions(ref, other))
        h.add(pos);
}

void
addGestalt(const Strand &ref, const Strand &other, Histogram &h)
{
    for (size_t pos : gestaltErrorPositions(ref, other))
        h.add(pos);
}

} // anonymous namespace

Histogram
hammingProfilePre(const Dataset &data)
{
    return accumulatePre(data, addHamming);
}

Histogram
gestaltProfilePre(const Dataset &data)
{
    return accumulatePre(data, addGestalt);
}

Histogram
hammingProfilePost(const Dataset &data,
                   const std::vector<Strand> &estimates)
{
    return accumulatePost(data, estimates, addHamming);
}

Histogram
gestaltProfilePost(const Dataset &data,
                   const std::vector<Strand> &estimates)
{
    return accumulatePost(data, estimates, addGestalt);
}

std::vector<ProfileBucket>
bucketProfile(const Histogram &profile, size_t positions,
              size_t num_buckets)
{
    DNASIM_ASSERT(num_buckets > 0, "zero buckets");
    positions = std::max(positions, profile.numBins());
    num_buckets = std::min(num_buckets, std::max<size_t>(positions, 1));

    uint64_t total = profile.total();
    std::vector<ProfileBucket> out;
    out.reserve(num_buckets);
    for (size_t b = 0; b < num_buckets; ++b) {
        ProfileBucket bucket;
        bucket.lo = b * positions / num_buckets;
        bucket.hi = (b + 1) * positions / num_buckets;
        for (size_t pos = bucket.lo; pos < bucket.hi; ++pos)
            bucket.errors += profile.count(pos);
        bucket.share = total == 0
                           ? 0.0
                           : static_cast<double>(bucket.errors) /
                                 static_cast<double>(total);
        out.push_back(bucket);
    }
    return out;
}

const char *
profileShapeName(ProfileShape s)
{
    switch (s) {
      case ProfileShape::Flat: return "flat";
      case ProfileShape::Rising: return "rising";
      case ProfileShape::Falling: return "falling";
      case ProfileShape::AShape: return "A-shape";
      case ProfileShape::VShape: return "V-shape";
    }
    return "?";
}

ProfileShape
classifyShape(const Histogram &profile, size_t positions,
              double tolerance)
{
    auto thirds = bucketProfile(profile, positions, 3);
    DNASIM_ASSERT(thirds.size() == 3, "expected three thirds");
    double a = static_cast<double>(thirds[0].errors);
    double b = static_cast<double>(thirds[1].errors);
    double c = static_cast<double>(thirds[2].errors);
    double mx = std::max({a, b, c, 1.0});

    auto close = [&](double x, double y) {
        return std::abs(x - y) <= tolerance * mx;
    };
    if (close(a, b) && close(b, c) && close(a, c))
        return ProfileShape::Flat;
    if (b >= a && b >= c && !(close(a, b) && close(b, c)))
        return ProfileShape::AShape;
    if (b <= a && b <= c && !(close(a, b) && close(b, c)))
        return ProfileShape::VShape;
    if (a <= b && b <= c)
        return ProfileShape::Rising;
    return ProfileShape::Falling;
}

} // namespace dnasim
