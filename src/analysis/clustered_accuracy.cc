#include "analysis/clustered_accuracy.hh"

#include <unordered_set>

#include "base/logging.hh"

namespace dnasim
{

ClusteredAccuracy
evaluateWithClustering(const Dataset &data,
                       const ClusterOptions &options,
                       const Reconstructor &algo, Rng &rng)
{
    ClusteredAccuracy result;
    result.num_references = data.size();
    if (data.empty())
        return result;

    std::vector<Strand> pool = data.pooledReads();
    rng.shuffle(pool);

    auto clusters = clusterReads(pool, options);
    result.num_clusters = clusters.size();

    size_t design_len = 0;
    for (const auto &c : data)
        design_len = std::max(design_len, c.reference.size());

    std::unordered_set<Strand> estimates;
    estimates.reserve(clusters.size());
    for (size_t i = 0; i < clusters.size(); ++i) {
        std::vector<Strand> copies;
        copies.reserve(clusters[i].members.size());
        for (size_t member : clusters[i].members)
            copies.push_back(pool[member]);
        Rng cluster_rng = rng.fork(i);
        estimates.insert(
            algo.reconstruct(copies, design_len, cluster_rng));
    }

    for (const auto &cluster : data)
        if (estimates.count(cluster.reference) > 0)
            ++result.recovered_exact;
    return result;
}

} // namespace dnasim
