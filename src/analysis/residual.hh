/**
 * @file
 * Residual-error analysis: what kinds of errors remain between the
 * references and the reconstructed estimates. Used for the paper's
 * observation that ~90% of the Iterative algorithm's residual errors
 * are deletions (section 3.4.1).
 */

#ifndef DNASIM_ANALYSIS_RESIDUAL_HH
#define DNASIM_ANALYSIS_RESIDUAL_HH

#include <cstdint>
#include <vector>

#include "data/dataset.hh"

namespace dnasim
{

/** Counts of residual errors by type. */
struct ResidualErrorStats
{
    uint64_t substitutions = 0;
    uint64_t deletions = 0;
    uint64_t insertions = 0;

    uint64_t
    total() const
    {
        return substitutions + deletions + insertions;
    }

    double
    share(uint64_t part) const
    {
        uint64_t t = total();
        return t == 0 ? 0.0
                      : static_cast<double>(part) /
                            static_cast<double>(t);
    }

    double delShare() const { return share(deletions); }
    double subShare() const { return share(substitutions); }
    double insShare() const { return share(insertions); }
};

/**
 * Attribute the differences between each reference and its estimate
 * (minimum edit distance, random tie-breaking seeded by @p seed) and
 * count them by type. Empty estimates are skipped.
 */
ResidualErrorStats residualErrors(const Dataset &data,
                                  const std::vector<Strand> &estimates,
                                  uint64_t seed = 0x8e51d);

} // namespace dnasim

#endif // DNASIM_ANALYSIS_RESIDUAL_HH
