#include "analysis/lineage.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "align/edit_distance.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "obs/json.hh"
#include "obs/outfile.hh"
#include "obs/provenance.hh"
#include "reconstruct/consensus.hh"

namespace dnasim
{

namespace
{

/** Does injected event @p e affect reference position @p p? */
bool
eventTouches(const LineageEvent &e, uint32_t p)
{
    if (e.type == LineageErrorType::Insertion) {
        // The inserted base sits between reference positions
        // ref_pos - 1 and ref_pos; it perturbs alignments on both
        // sides.
        return e.ref_pos == p || e.ref_pos == p + 1;
    }
    return e.ref_pos <= p && p < e.refEnd();
}

bool
anyEventTouches(std::span<const LineageEvent> events, uint32_t p)
{
    for (const auto &e : events)
        if (eventTouches(e, p))
            return true;
    return false;
}

/** One attribution unit resolved from either input mode. */
struct Unit
{
    uint32_t label = 0; ///< true reference index
    std::vector<uint32_t> origins;            ///< per copy
    std::vector<std::span<const LineageEvent>> events; ///< per copy
    /// Pseudo mode borrows the dataset's copies; recluster mode
    /// gathers pool members here.
    std::vector<Strand> gathered;
    const std::vector<Strand> *copies = nullptr;

    std::span<const Strand>
    reads() const
    {
        return std::span<const Strand>(copies->data(),
                                       copies->size());
    }
};

/** Majority origin of a member list; ties take the smallest index. */
uint32_t
majorityOrigin(const std::vector<size_t> &members,
               const std::vector<ReadIdentity> &identity)
{
    std::map<uint32_t, size_t> counts;
    for (size_t m : members)
        ++counts[identity[m].origin_cluster];
    uint32_t label = 0;
    size_t best = 0;
    for (const auto &[origin, n] : counts) {
        if (n > best) { // map order makes ties pick the smallest key
            best = n;
            label = origin;
        }
    }
    return label;
}

void
resolveUnit(const LineageInputs &in, size_t u, Unit &unit)
{
    unit.gathered.clear();
    unit.origins.clear();
    unit.events.clear();
    if (in.clusters != nullptr) {
        const ReadCluster &rc = (*in.clusters)[u];
        unit.label = majorityOrigin(rc.members, *in.identity);
        unit.gathered.reserve(rc.members.size());
        for (size_t m : rc.members) {
            const ReadIdentity &id = (*in.identity)[m];
            unit.gathered.push_back((*in.pool)[m]);
            unit.origins.push_back(id.origin_cluster);
            unit.events.push_back(
                in.lineage != nullptr &&
                        id.origin_cluster < in.lineage->numClusters()
                    ? in.lineage->readEvents(id.origin_cluster,
                                             id.origin_copy)
                    : std::span<const LineageEvent>());
        }
        unit.copies = &unit.gathered;
    } else {
        const Cluster &c = (*in.truth)[u];
        unit.label = static_cast<uint32_t>(u);
        unit.copies = &c.copies;
        unit.origins.assign(c.copies.size(),
                            static_cast<uint32_t>(u));
        for (size_t k = 0; k < c.copies.size(); ++k) {
            unit.events.push_back(
                in.lineage != nullptr
                    ? in.lineage->readEvents(u, k)
                    : std::span<const LineageEvent>());
        }
    }
}

/**
 * Partition the supporters of vote @p want at reference position
 * @p p into foreign / injected / clean and return the cause the
 * partition implies.
 */
FailureCause
partitionSupporters(const Unit &unit,
                    const std::vector<std::string> &per_copy,
                    uint32_t p, char want, FailureRecord &rec)
{
    for (size_t k = 0; k < per_copy.size(); ++k) {
        if (per_copy[k][p] != want)
            continue;
        if (unit.origins[k] != unit.label)
            ++rec.foreign_votes;
        else if (anyEventTouches(unit.events[k], p))
            ++rec.injected_votes;
        else
            ++rec.clean_votes;
    }
    if (rec.foreign_votes >= rec.injected_votes + rec.clean_votes &&
        rec.foreign_votes > 0) {
        return FailureCause::Contamination;
    }
    if (rec.injected_votes >= rec.clean_votes)
        return FailureCause::ChannelNoise;
    return FailureCause::AlignmentArtifact;
}

/** Classify one substitution or deletion residual. */
FailureCause
classifyVoted(const Unit &unit, const PositionVote &v,
              const std::vector<std::string> &per_copy, uint32_t p,
              char want, FailureRecord &rec)
{
    if (v.totalBaseVotes() + v.deletion_votes == 0)
        return FailureCause::CoverageGap;
    if (rec.wrong_votes < rec.correct_votes)
        return FailureCause::Algorithmic;
    // Partition even for ties, so the record shows who fed the tie.
    FailureCause majority =
        partitionSupporters(unit, per_copy, p, want, rec);
    if (rec.wrong_votes == rec.correct_votes)
        return FailureCause::TieBreak;
    return majority;
}

/**
 * Classify an insertion residual (extra base in the estimate before
 * reference position @p r). The reference-anchored vote profile has
 * no insertion channel, so this partitions whole reads instead of
 * per-position votes.
 */
FailureCause
classifyInsertion(const Unit &unit, uint32_t anchor,
                  FailureRecord &rec)
{
    if (unit.copies->empty())
        return FailureCause::CoverageGap;
    for (size_t k = 0; k < unit.origins.size(); ++k) {
        if (unit.origins[k] != unit.label)
            ++rec.foreign_votes;
        else if (anyEventTouches(unit.events[k], anchor))
            ++rec.injected_votes;
        else
            ++rec.clean_votes;
    }
    if (rec.foreign_votes > 0 &&
        rec.foreign_votes >= rec.injected_votes) {
        return FailureCause::Contamination;
    }
    if (rec.injected_votes > 0)
        return FailureCause::ChannelNoise;
    return FailureCause::AlignmentArtifact;
}

std::string
baseStr(char c)
{
    return c == '\0' ? std::string() : std::string(1, c);
}

const char *const kBaseRow[] = {"A", "C", "G", "T"};

void
writeConfusion(obs::JsonWriter &w, const std::string &key,
               const SubConfusion &m)
{
    w.beginObject(key);
    for (size_t r = 0; r < kNumBases; ++r) {
        w.beginArray(kBaseRow[r]);
        for (size_t c = 0; c < kNumBases; ++c)
            w.value("", m[r][c]);
        w.endArray();
    }
    w.endObject();
}

void
writeBuckets(obs::JsonWriter &w, const std::string &key,
             const std::vector<ProfileBucket> &buckets)
{
    w.beginArray(key);
    for (const auto &b : buckets) {
        w.beginObject();
        w.value("lo", static_cast<uint64_t>(b.lo));
        w.value("hi", static_cast<uint64_t>(b.hi));
        w.value("errors", b.errors);
        w.value("share", b.share);
        w.endObject();
    }
    w.endArray();
}

void
writeCauseCounts(obs::JsonWriter &w, const LineageReport &report)
{
    w.beginObject("causes");
    for (size_t i = 0; i < kNumFailureCauses; ++i) {
        w.value(failureCauseName(static_cast<FailureCause>(i)),
                report.cause_counts[i]);
    }
    w.endObject();
}

void
writeSummaryBody(obs::JsonWriter &w, const LineageReport &report)
{
    w.value("reclustered", report.reclustered);
    w.value("units", static_cast<uint64_t>(report.num_units));
    w.value("reads", static_cast<uint64_t>(report.num_reads));
    w.value("erasures", static_cast<uint64_t>(report.erasures));
    w.value("failed_units",
            static_cast<uint64_t>(report.failed_units));
    w.value("exact_units",
            static_cast<uint64_t>(report.exact_units));

    w.beginObject("injected");
    w.value("substitutions", report.injected.substitutions);
    w.value("insertions", report.injected.insertions);
    w.value("deletions", report.injected.deletions);
    w.value("long_deletions", report.injected.long_deletions);
    w.value("total", report.injected.total());
    w.endObject();

    w.beginObject("residual");
    w.value("substitutions", report.residual_substitutions);
    w.value("insertions", report.residual_insertions);
    w.value("deletions", report.residual_deletions);
    w.value("total", report.residualTotal());
    w.endObject();

    writeCauseCounts(w, report);
    writeConfusion(w, "injected_confusion",
                   report.injected_confusion);
    writeConfusion(w, "residual_confusion",
                   report.residual_confusion);
    writeBuckets(w, "injected_heatmap", report.injected_buckets);
    writeBuckets(w, "residual_heatmap", report.residual_buckets);

    w.beginObject("misclustered");
    w.value("total",
            static_cast<uint64_t>(report.misclustered.size()));
    w.beginObject("by_tier");
    for (size_t t = 0; t < report.misclustered_by_tier.size(); ++t) {
        w.value(assignmentTierName(static_cast<AssignmentTier>(t)),
                report.misclustered_by_tier[t]);
    }
    w.endObject();
    w.value("purity", report.purity);
    w.endObject();
}

} // anonymous namespace

const char *
failureCauseName(FailureCause cause)
{
    switch (cause) {
      case FailureCause::CoverageGap: return "coverage-gap";
      case FailureCause::TieBreak: return "tie-break";
      case FailureCause::Contamination: return "contamination";
      case FailureCause::ChannelNoise: return "channel-noise";
      case FailureCause::AlignmentArtifact:
        return "alignment-artifact";
      case FailureCause::Algorithmic: return "algorithmic";
    }
    return "?";
}

LineageReport
attributeLineage(const LineageInputs &in)
{
    DNASIM_ASSERT(in.truth != nullptr,
                  "lineage attribution needs ground truth");
    const bool recluster = in.clusters != nullptr;
    if (recluster) {
        DNASIM_ASSERT(in.pool != nullptr && in.identity != nullptr,
                      "recluster attribution needs the pool and "
                      "per-read identities");
        DNASIM_ASSERT(in.identity->size() == in.pool->size(),
                      "identity/pool size mismatch");
    }

    LineageReport report;
    report.reclustered = recluster;
    report.has_lineage = in.lineage != nullptr;
    report.has_estimates = in.estimates != nullptr;
    report.num_units =
        recluster ? in.clusters->size() : in.truth->size();
    report.num_reads =
        recluster ? in.pool->size() : in.truth->totalCopies();
    for (const Cluster &c : *in.truth) {
        report.ref_length =
            std::max(report.ref_length, c.reference.size());
    }
    if (in.estimates != nullptr) {
        DNASIM_ASSERT(in.estimates->size() == report.num_units,
                      "estimate count (", in.estimates->size(),
                      ") != attribution units (", report.num_units,
                      ")");
    }

    Histogram injected_hist(report.ref_length);
    Histogram residual_hist(report.ref_length);
    const auto clampPos = [&](size_t p) {
        return report.ref_length == 0
                   ? size_t{0}
                   : std::min(p, report.ref_length - 1);
    };

    // Injected ground truth is a property of the simulation run,
    // independent of how the reads were later clustered.
    if (in.lineage != nullptr) {
        report.injected = in.lineage->counts();
        for (size_t c = 0; c < in.lineage->numClusters(); ++c) {
            for (const LineageEvent &e :
                 in.lineage->cluster(c).events) {
                switch (e.type) {
                  case LineageErrorType::Substitution:
                    ++report.injected_confusion[baseIndex(
                        e.ref_base)][baseIndex(e.obs_base)];
                    injected_hist.add(clampPos(e.ref_pos));
                    break;
                  case LineageErrorType::Insertion:
                    injected_hist.add(clampPos(e.ref_pos));
                    break;
                  case LineageErrorType::Deletion:
                    injected_hist.add(clampPos(e.ref_pos));
                    break;
                  case LineageErrorType::LongDeletion:
                    for (uint32_t p = e.ref_pos; p < e.refEnd(); ++p)
                        injected_hist.add(clampPos(p));
                    break;
                }
            }
        }
    }

    // Attribution proper: serial in unit order, so the report is
    // identical at every thread count.
    Unit unit;
    std::vector<EditOp> ops;
    std::vector<std::string> per_copy;
    for (size_t u = 0; u < report.num_units; ++u) {
        resolveUnit(in, u, unit);
        const Strand &ref = (*in.truth)[unit.label].reference;

        if (recluster) {
            const ReadCluster &rc = (*in.clusters)[u];
            for (size_t k = 0; k < rc.members.size(); ++k) {
                if (unit.origins[k] == unit.label)
                    continue;
                MisclusteredRead mis;
                mis.pool_index =
                    static_cast<uint32_t>(rc.members[k]);
                mis.cluster = static_cast<uint32_t>(u);
                mis.cluster_origin = unit.label;
                mis.read_origin = unit.origins[k];
                if (in.assignments != nullptr) {
                    const ReadAssignment &a =
                        (*in.assignments)[rc.members[k]];
                    mis.tier = a.tier;
                    mis.verified_distance = a.verified_distance;
                }
                ++report
                      .misclustered_by_tier[static_cast<size_t>(
                          mis.tier)];
                report.misclustered.push_back(mis);
            }
        }

        if (in.estimates == nullptr)
            continue;
        const Strand &est = (*in.estimates)[u];
        if (est.empty()) {
            ++report.erasures;
            continue;
        }
        editOpsInto(ref, est, nullptr, ops);
        if (numErrors(ops) == 0) {
            ++report.exact_units;
            continue;
        }
        ++report.failed_units;

        // The vote profile is reference-anchored: what the copies
        // actually said at every true position.
        std::vector<PositionVote> votes =
            consensusVoteProfile(ref, unit.reads(), &per_copy);

        for (const EditOp &op : ops) {
            if (op.type == EditOpType::Equal)
                continue;
            FailureRecord rec;
            rec.cluster = static_cast<uint32_t>(u);
            rec.origin = unit.label;
            if (op.type == EditOpType::Substitute) {
                ++report.residual_substitutions;
                ++report.residual_confusion[baseIndex(
                    op.ref_base)][baseIndex(op.copy_base)];
                rec.ref_pos = static_cast<uint32_t>(op.ref_pos);
                rec.expected = op.ref_base;
                rec.got = op.copy_base;
                const PositionVote &v = votes[op.ref_pos];
                rec.correct_votes = v.votes(rec.expected);
                rec.wrong_votes = v.votes(rec.got);
                rec.cause = classifyVoted(unit, v, per_copy,
                                          rec.ref_pos, rec.got, rec);
            } else if (op.type == EditOpType::Delete) {
                ++report.residual_deletions;
                rec.ref_pos = static_cast<uint32_t>(op.ref_pos);
                rec.expected = op.ref_base;
                const PositionVote &v = votes[op.ref_pos];
                rec.correct_votes = v.votes(rec.expected);
                rec.wrong_votes = v.deletion_votes;
                rec.cause = classifyVoted(unit, v, per_copy,
                                          rec.ref_pos, '-', rec);
            } else { // Insert
                ++report.residual_insertions;
                rec.ref_pos = static_cast<uint32_t>(
                    clampPos(op.ref_pos));
                rec.got = op.copy_base;
                rec.cause =
                    classifyInsertion(unit, rec.ref_pos, rec);
            }
            residual_hist.add(clampPos(rec.ref_pos));
            ++report.cause_counts[static_cast<size_t>(rec.cause)];
            report.failures.push_back(rec);
        }
    }

    if (report.num_reads > 0) {
        report.purity =
            1.0 - static_cast<double>(report.misclustered.size()) /
                      static_cast<double>(report.num_reads);
    }
    if (report.ref_length > 0) {
        const size_t buckets =
            std::min(in.heatmap_buckets, report.ref_length);
        report.injected_buckets = bucketProfile(
            injected_hist, report.ref_length, buckets);
        report.residual_buckets = bucketProfile(
            residual_hist, report.ref_length, buckets);
    }
    return report;
}

std::string
lineageReportText(const LineageReport &report)
{
    std::ostringstream os;
    os << "lineage forensics ("
       << (report.reclustered ? "reclustered pool"
                              : "pseudo-clustered")
       << ", " << report.num_units << " clusters, "
       << report.num_reads << " reads)\n";
    if (report.has_estimates) {
        os << "  reconstructions: " << report.exact_units
           << " exact, " << report.failed_units << " with errors, "
           << report.erasures << " erasures\n";
    }
    os << "\n";

    if (report.has_lineage) {
        TextTable inj("injected channel errors");
        inj.setHeader({"type", "count", "share"});
        const auto row = [&](const char *name, uint64_t n) {
            const uint64_t total = report.injected.total();
            inj.addRow({name, std::to_string(n),
                        fmtPercent(total == 0
                                       ? 0.0
                                       : static_cast<double>(n) /
                                             static_cast<double>(
                                                 total))});
        };
        row("sub", report.injected.substitutions);
        row("ins", report.injected.insertions);
        row("del", report.injected.deletions);
        row("long_del", report.injected.long_deletions);
        row("total", report.injected.total());
        inj.print(os);
    }

    if (report.has_estimates) {
        TextTable res("residual errors (reference vs estimate)");
        res.setHeader({"type", "count", "share"});
        const uint64_t total = report.residualTotal();
        const auto row = [&](const char *name, uint64_t n) {
            res.addRow({name, std::to_string(n),
                        fmtPercent(total == 0
                                       ? 0.0
                                       : static_cast<double>(n) /
                                             static_cast<double>(
                                                 total))});
        };
        row("sub", report.residual_substitutions);
        row("ins", report.residual_insertions);
        row("del", report.residual_deletions);
        row("total", total);
        res.print(os);

        TextTable causes("failure causes");
        causes.setHeader({"cause", "count", "share"});
        uint64_t failures = report.failures.size();
        for (size_t i = 0; i < kNumFailureCauses; ++i) {
            causes.addRow(
                {failureCauseName(static_cast<FailureCause>(i)),
                 std::to_string(report.cause_counts[i]),
                 fmtPercent(failures == 0
                                ? 0.0
                                : static_cast<double>(
                                      report.cause_counts[i]) /
                                      static_cast<double>(
                                          failures))});
        }
        causes.print(os);
    }

    if (report.has_lineage) {
        TextTable conf("injected substitution confusion (ref -> read)");
        conf.setHeader({"ref\\read", "A", "C", "G", "T"});
        for (size_t r = 0; r < kNumBases; ++r) {
            std::vector<std::string> row{kBaseRow[r]};
            for (size_t c = 0; c < kNumBases; ++c) {
                row.push_back(std::to_string(
                    report.injected_confusion[r][c]));
            }
            conf.addRow(std::move(row));
        }
        conf.print(os);
    }

    if (report.has_estimates && report.residual_substitutions > 0) {
        TextTable conf(
            "residual substitution confusion (ref -> estimate)");
        conf.setHeader({"ref\\est", "A", "C", "G", "T"});
        for (size_t r = 0; r < kNumBases; ++r) {
            std::vector<std::string> row{kBaseRow[r]};
            for (size_t c = 0; c < kNumBases; ++c) {
                row.push_back(std::to_string(
                    report.residual_confusion[r][c]));
            }
            conf.addRow(std::move(row));
        }
        conf.print(os);
    }

    if (!report.injected_buckets.empty() ||
        !report.residual_buckets.empty()) {
        TextTable heat("positional error heatmap");
        heat.setHeader({"positions", "injected", "inj-share",
                        "residual", "res-share"});
        const size_t rows = std::max(report.injected_buckets.size(),
                                     report.residual_buckets.size());
        for (size_t i = 0; i < rows; ++i) {
            ProfileBucket inj = i < report.injected_buckets.size()
                                    ? report.injected_buckets[i]
                                    : ProfileBucket{};
            ProfileBucket res = i < report.residual_buckets.size()
                                    ? report.residual_buckets[i]
                                    : ProfileBucket{};
            const ProfileBucket &span =
                i < report.injected_buckets.size() ? inj : res;
            heat.addRow({"[" + std::to_string(span.lo) + "," +
                             std::to_string(span.hi) + ")",
                         std::to_string(inj.errors),
                         fmtPercent(inj.share),
                         std::to_string(res.errors),
                         fmtPercent(res.share)});
        }
        heat.print(os);
    }

    if (report.reclustered) {
        os << "clustering: " << report.misclustered.size()
           << " misclustered reads, purity "
           << fmtPercent(report.purity) << "\n";
        if (!report.misclustered.empty()) {
            TextTable mis("misclustered reads (first 20)");
            mis.setHeader({"pool-read", "cluster", "cluster-origin",
                           "read-origin", "tier", "distance"});
            const size_t n =
                std::min<size_t>(20, report.misclustered.size());
            for (size_t i = 0; i < n; ++i) {
                const MisclusteredRead &m = report.misclustered[i];
                mis.addRow({std::to_string(m.pool_index),
                            std::to_string(m.cluster),
                            std::to_string(m.cluster_origin),
                            std::to_string(m.read_origin),
                            assignmentTierName(m.tier),
                            std::to_string(m.verified_distance)});
            }
            mis.print(os);
        }
    }
    return os.str();
}

std::string
lineageReportJson(const LineageReport &report)
{
    std::ostringstream os;
    obs::JsonWriter w(os, 2);
    w.beginObject();
    w.value("schema", "dnasim.lineage.report.v1");
    obs::writeProvenance(w);
    writeSummaryBody(w, report);
    w.beginArray("failures");
    for (const FailureRecord &f : report.failures) {
        w.beginObject();
        w.value("cluster", static_cast<uint64_t>(f.cluster));
        w.value("origin", static_cast<uint64_t>(f.origin));
        w.value("ref_pos", static_cast<uint64_t>(f.ref_pos));
        w.value("expected", baseStr(f.expected));
        w.value("got", baseStr(f.got));
        w.value("cause", failureCauseName(f.cause));
        w.value("correct_votes",
                static_cast<uint64_t>(f.correct_votes));
        w.value("wrong_votes",
                static_cast<uint64_t>(f.wrong_votes));
        w.value("foreign", static_cast<uint64_t>(f.foreign_votes));
        w.value("injected",
                static_cast<uint64_t>(f.injected_votes));
        w.value("clean", static_cast<uint64_t>(f.clean_votes));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
    return os.str();
}

bool
writeLineageJsonl(const std::string &path, const LineageInputs &in,
                  const LineageReport &report, std::string *error)
{
    DNASIM_ASSERT(in.truth != nullptr,
                  "lineage stream needs ground truth");
    // Atomic temp-and-rename: a killed run leaves either the previous
    // stream intact or nothing, never a truncated JSONL tail.
    obs::AtomicFile file;
    if (!file.open(path, error))
        return false;
    std::ostream &os = file.stream();

    {
        obs::JsonWriter w(os, 0);
        w.beginObject();
        w.value("schema", "dnasim.lineage.v1");
        w.value("kind", "meta");
        obs::writeProvenance(w);
        w.value("reclustered", report.reclustered);
        w.value("clusters",
                static_cast<uint64_t>(report.num_units));
        w.value("reads", static_cast<uint64_t>(report.num_reads));
        w.endObject();
        os << '\n';
    }

    const auto writeEvents =
        [&](obs::JsonWriter &w,
            std::span<const LineageEvent> events) {
            w.beginArray("events");
            for (const LineageEvent &e : events) {
                w.beginObject();
                w.value("type", lineageErrorTypeName(e.type));
                w.value("ref_pos",
                        static_cast<uint64_t>(e.ref_pos));
                if (e.run_length != 1) {
                    w.value("run",
                            static_cast<uint64_t>(e.run_length));
                }
                w.value("ref", baseStr(e.ref_base));
                w.value("obs", baseStr(e.obs_base));
                w.endObject();
            }
            w.endArray();
        };

    const auto writeRead =
        [&](size_t cluster, size_t copy, size_t origin,
            std::span<const LineageEvent> events,
            const ReadAssignment *assignment) {
            obs::JsonWriter w(os, 0);
            w.beginObject();
            w.value("schema", "dnasim.lineage.v1");
            w.value("kind", "read");
            w.value("cluster", static_cast<uint64_t>(cluster));
            w.value("copy", static_cast<uint64_t>(copy));
            w.value("origin", static_cast<uint64_t>(origin));
            writeEvents(w, events);
            if (assignment != nullptr) {
                w.value("tier",
                        assignmentTierName(assignment->tier));
                w.value("distance",
                        static_cast<uint64_t>(
                            assignment->verified_distance));
                w.value("probed",
                        static_cast<uint64_t>(
                            assignment->candidates_probed));
            }
            w.endObject();
            os << '\n';
        };

    if (report.reclustered) {
        for (size_t i = 0; i < in.pool->size(); ++i) {
            const ReadIdentity &id = (*in.identity)[i];
            std::span<const LineageEvent> events;
            if (in.lineage != nullptr &&
                id.origin_cluster < in.lineage->numClusters()) {
                events = in.lineage->readEvents(id.origin_cluster,
                                                id.origin_copy);
            }
            const ReadAssignment *a =
                in.assignments != nullptr ? &(*in.assignments)[i]
                                          : nullptr;
            writeRead(a != nullptr ? a->cluster : 0,
                      id.origin_copy, id.origin_cluster, events, a);
        }
    } else {
        for (size_t u = 0; u < in.truth->size(); ++u) {
            const Cluster &c = (*in.truth)[u];
            for (size_t k = 0; k < c.copies.size(); ++k) {
                std::span<const LineageEvent> events;
                if (in.lineage != nullptr &&
                    u < in.lineage->numClusters()) {
                    events = in.lineage->readEvents(u, k);
                }
                writeRead(u, k, u, events, nullptr);
            }
        }
    }

    for (const FailureRecord &f : report.failures) {
        obs::JsonWriter w(os, 0);
        w.beginObject();
        w.value("schema", "dnasim.lineage.v1");
        w.value("kind", "failure");
        w.value("cluster", static_cast<uint64_t>(f.cluster));
        w.value("origin", static_cast<uint64_t>(f.origin));
        w.value("ref_pos", static_cast<uint64_t>(f.ref_pos));
        w.value("expected", baseStr(f.expected));
        w.value("got", baseStr(f.got));
        w.value("cause", failureCauseName(f.cause));
        w.value("correct_votes",
                static_cast<uint64_t>(f.correct_votes));
        w.value("wrong_votes",
                static_cast<uint64_t>(f.wrong_votes));
        w.value("foreign", static_cast<uint64_t>(f.foreign_votes));
        w.value("injected",
                static_cast<uint64_t>(f.injected_votes));
        w.value("clean", static_cast<uint64_t>(f.clean_votes));
        w.endObject();
        os << '\n';
    }

    {
        obs::JsonWriter w(os, 0);
        w.beginObject();
        w.value("schema", "dnasim.lineage.v1");
        w.value("kind", "summary");
        writeSummaryBody(w, report);
        w.endObject();
        os << '\n';
    }

    return file.commit(error);
}

} // namespace dnasim
