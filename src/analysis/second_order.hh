/**
 * @file
 * Second-order error census (section 3.3.3, Fig. 3.6): counts of
 * specific (type, base[, replacement]) error events over a dataset,
 * together with each error's positional distribution and its share
 * of all errors.
 */

#ifndef DNASIM_ANALYSIS_SECOND_ORDER_HH
#define DNASIM_ANALYSIS_SECOND_ORDER_HH

#include <vector>

#include "core/error_profile.hh"
#include "data/dataset.hh"
#include "stats/histogram.hh"

namespace dnasim
{

/** One row of the census. */
struct SecondOrderCensusEntry
{
    SecondOrderKey key;
    uint64_t count = 0;
    double share = 0.0; ///< fraction of all error events
    Histogram positions;
};

/** Full census result. */
struct SecondOrderCensus
{
    uint64_t total_errors = 0;
    std::vector<SecondOrderCensusEntry> entries; ///< sorted by count

    /** Combined share of the top @p k entries. */
    double topShare(size_t k) const;
};

/**
 * Census of second-order errors over every (reference, copy) pair of
 * @p data. Deletion runs of length >= 2 count as a single "long
 * deletion" event attributed to the first deleted base's identity.
 */
SecondOrderCensus secondOrderCensus(const Dataset &data,
                                    uint64_t seed = 0xce4545);

} // namespace dnasim

#endif // DNASIM_ANALYSIS_SECOND_ORDER_HH
