/**
 * @file
 * Reconstruction-accuracy metrics — the paper's key evaluation
 * criteria (section 3.1, criterion 4).
 *
 *  - per-strand accuracy: the percentage of reference strands
 *    reconstructed without any error;
 *  - per-character accuracy: the percentage of reference characters
 *    reconstructed with the correct base at the correct position.
 */

#ifndef DNASIM_ANALYSIS_ACCURACY_HH
#define DNASIM_ANALYSIS_ACCURACY_HH

#include <cstdint>
#include <vector>

#include "base/strand_pool.hh"
#include "data/dataset.hh"
#include "reconstruct/reconstructor.hh"

namespace dnasim
{

/** Accuracy of a set of reconstructions. */
struct AccuracyResult
{
    size_t num_clusters = 0;
    size_t num_perfect = 0;    ///< exactly reconstructed strands
    size_t num_chars = 0;      ///< total reference characters
    size_t num_chars_correct = 0;

    /** Fraction of strands reconstructed exactly, in [0, 1]. */
    double
    perStrand() const
    {
        return num_clusters == 0
                   ? 0.0
                   : static_cast<double>(num_perfect) /
                         static_cast<double>(num_clusters);
    }

    /** Fraction of characters reconstructed correctly, in [0, 1]. */
    double
    perChar() const
    {
        return num_chars == 0
                   ? 0.0
                   : static_cast<double>(num_chars_correct) /
                         static_cast<double>(num_chars);
    }
};

/**
 * Run @p algo over every cluster of @p data. Erasure clusters yield
 * empty estimates. Deterministic in @p rng's seed (one forked
 * stream per cluster).
 */
std::vector<Strand> reconstructAll(const Dataset &data,
                                   const Reconstructor &algo, Rng &rng);

/**
 * Score @p estimates (one per cluster, aligned by index) against the
 * references of @p data. Per-character correctness is positional:
 * estimate[i] must equal reference[i].
 */
AccuracyResult scoreReconstructions(
    const Dataset &data, const std::vector<Strand> &estimates);

/** reconstructAll + scoreReconstructions in one step. */
AccuracyResult evaluateAccuracy(const Dataset &data,
                                const Reconstructor &algo, Rng &rng);

/**
 * The out-of-core counterpart of evaluateAccuracy(), over a
 * checkpointed clustering: cluster c's copies are the reads with
 * @p assignments[r] == c, its ground-truth reference is the
 * majority true origin of those reads (ties to the smallest origin
 * id, like scoreClustering), and the estimate is scored against
 * that reference. Reads and references stream out of pool views;
 * only one cluster's copies are materialized per worker at a time.
 * Deterministic in @p rng's seed (one forked stream per cluster).
 */
AccuracyResult
evaluatePoolAccuracy(const StrandPoolView &reads,
                     const std::vector<uint32_t> &assignments,
                     const std::vector<uint32_t> &origins,
                     const StrandPoolView &references,
                     const Reconstructor &algo, Rng &rng);

} // namespace dnasim

#endif // DNASIM_ANALYSIS_ACCURACY_HH
