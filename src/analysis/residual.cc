#include "analysis/residual.hh"

#include "align/edit_distance.hh"
#include "base/logging.hh"

namespace dnasim
{

ResidualErrorStats
residualErrors(const Dataset &data,
               const std::vector<Strand> &estimates, uint64_t seed)
{
    DNASIM_ASSERT(estimates.size() == data.size(),
                  "estimate/cluster count mismatch");
    Rng rng(seed);
    ResidualErrorStats stats;
    for (size_t i = 0; i < data.size(); ++i) {
        if (estimates[i].empty())
            continue;
        for (const auto &op :
             editOps(data[i].reference, estimates[i], &rng)) {
            switch (op.type) {
              case EditOpType::Equal:
                break;
              case EditOpType::Substitute:
                ++stats.substitutions;
                break;
              case EditOpType::Delete:
                ++stats.deletions;
                break;
              case EditOpType::Insert:
                ++stats.insertions;
                break;
            }
        }
    }
    return stats;
}

} // namespace dnasim
