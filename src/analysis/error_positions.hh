/**
 * @file
 * Positional error profiles — the Hamming and gestalt-aligned
 * comparison curves used throughout the paper's figures (3.2, 3.4,
 * 3.5, 3.7, 3.8, 3.10 and appendix C).
 *
 * Pre-reconstruction profiles compare every noisy copy against its
 * reference; post-reconstruction profiles compare each cluster's
 * reconstructed estimate against the reference. In both views the
 * histogram bin is the strand position carrying the error.
 */

#ifndef DNASIM_ANALYSIS_ERROR_POSITIONS_HH
#define DNASIM_ANALYSIS_ERROR_POSITIONS_HH

#include <string>
#include <vector>

#include "data/dataset.hh"
#include "stats/histogram.hh"

namespace dnasim
{

/** Positional Hamming errors of every copy vs. its reference. */
Histogram hammingProfilePre(const Dataset &data);

/** Positional gestalt-aligned errors of every copy vs. its
 *  reference. */
Histogram gestaltProfilePre(const Dataset &data);

/** Positional Hamming errors of per-cluster estimates. Estimates
 *  are aligned to clusters by index; empty estimates (erasures) are
 *  skipped. */
Histogram hammingProfilePost(const Dataset &data,
                             const std::vector<Strand> &estimates);

/** Positional gestalt-aligned errors of per-cluster estimates. */
Histogram gestaltProfilePost(const Dataset &data,
                             const std::vector<Strand> &estimates);

/**
 * A positional histogram bucketed for printing: @p num_buckets rows
 * of [lo, hi) position ranges with the error count and the share of
 * total errors in each.
 */
struct ProfileBucket
{
    size_t lo = 0;
    size_t hi = 0;
    uint64_t errors = 0;
    double share = 0.0;
};

/** Bucket @p profile (defined over @p positions bins). */
std::vector<ProfileBucket> bucketProfile(const Histogram &profile,
                                         size_t positions,
                                         size_t num_buckets);

/**
 * Classify the shape of a positional profile, for shape assertions
 * in benches and tests: compares the error mass in the first,
 * middle, and last thirds.
 */
enum class ProfileShape
{
    Flat,     ///< all thirds within tolerance of each other
    Rising,   ///< monotone increase toward the end
    Falling,  ///< monotone decrease
    AShape,   ///< middle third heaviest
    VShape,   ///< middle third lightest
};

/** Name of a ProfileShape. */
const char *profileShapeName(ProfileShape s);

/** Classify @p profile over @p positions bins. @p tolerance is the
 *  relative difference below which thirds count as equal. */
ProfileShape classifyShape(const Histogram &profile, size_t positions,
                           double tolerance = 0.15);

} // namespace dnasim

#endif // DNASIM_ANALYSIS_ERROR_POSITIONS_HH
