#include "analysis/second_order.hh"

#include <algorithm>
#include <map>

#include "align/edit_distance.hh"
#include "base/logging.hh"

namespace dnasim
{

namespace
{

struct KeyLess
{
    bool
    operator()(const SecondOrderKey &a, const SecondOrderKey &b) const
    {
        if (a.type != b.type)
            return a.type < b.type;
        if (a.base != b.base)
            return a.base < b.base;
        return a.repl < b.repl;
    }
};

} // anonymous namespace

double
SecondOrderCensus::topShare(size_t k) const
{
    double acc = 0.0;
    for (size_t i = 0; i < std::min(k, entries.size()); ++i)
        acc += entries[i].share;
    return acc;
}

SecondOrderCensus
secondOrderCensus(const Dataset &data, uint64_t seed)
{
    Rng rng(seed);
    std::map<SecondOrderKey, SecondOrderCensusEntry, KeyLess> census;
    uint64_t total = 0;

    auto note = [&](SecondOrderKey key, size_t pos) {
        auto &entry = census[key];
        entry.key = key;
        ++entry.count;
        entry.positions.add(pos);
        ++total;
    };

    for (const auto &cluster : data) {
        const Strand &ref = cluster.reference;
        if (ref.empty())
            continue;
        for (const auto &copy : cluster.copies) {
            auto ops = editOps(ref, copy, &rng);
            for (const auto &op : ops) {
                switch (op.type) {
                  case EditOpType::Equal:
                  case EditOpType::Delete:
                    break;
                  case EditOpType::Substitute:
                    note({EditOpType::Substitute, op.ref_base,
                          op.copy_base},
                         op.ref_pos);
                    break;
                  case EditOpType::Insert:
                    note({EditOpType::Insert, op.copy_base, '\0'},
                         std::min(op.ref_pos, ref.size() - 1));
                    break;
                }
            }
            for (const auto &run : deletionRuns(ops)) {
                if (run.length == 1) {
                    note({EditOpType::Delete, ref[run.ref_pos], '\0'},
                         run.ref_pos);
                } else {
                    // A long deletion is one event, keyed by its
                    // first base but flagged by repl = '+' so it is
                    // distinguishable from single deletions.
                    note({EditOpType::Delete, ref[run.ref_pos], '+'},
                         run.ref_pos);
                }
            }
        }
    }

    SecondOrderCensus result;
    result.total_errors = total;
    result.entries.reserve(census.size());
    for (auto &[key, entry] : census) {
        entry.share = total == 0
                          ? 0.0
                          : static_cast<double>(entry.count) /
                                static_cast<double>(total);
        result.entries.push_back(std::move(entry));
    }
    std::sort(result.entries.begin(), result.entries.end(),
              [](const auto &a, const auto &b) {
                  return a.count > b.count;
              });
    return result;
}

} // namespace dnasim
