/**
 * @file
 * Reconstruction accuracy under *imperfect* clustering
 * (section 3.1): instead of the simulator's pseudo-clustered
 * output, the reads are pooled, re-clustered by similarity, and
 * each recovered cluster reconstructed — the evaluation mode that
 * resembles an actual wetlab read-out.
 */

#ifndef DNASIM_ANALYSIS_CLUSTERED_ACCURACY_HH
#define DNASIM_ANALYSIS_CLUSTERED_ACCURACY_HH

#include <vector>

#include "cluster/greedy_cluster.hh"
#include "data/dataset.hh"
#include "reconstruct/reconstructor.hh"

namespace dnasim
{

/** Outcome of reconstruction over a re-clustered read pool. */
struct ClusteredAccuracy
{
    size_t num_references = 0;
    size_t num_clusters = 0;   ///< clusters the algorithm formed
    size_t recovered_exact = 0; ///< references some cluster
                                ///< reconstructed exactly

    double
    perStrand() const
    {
        return num_references == 0
                   ? 0.0
                   : static_cast<double>(recovered_exact) /
                         static_cast<double>(num_references);
    }
};

/**
 * Pool @p data's reads, shuffle them with @p rng, cluster with
 * @p options, reconstruct every cluster with @p algo, and count how
 * many references were recovered exactly by at least one cluster.
 */
ClusteredAccuracy evaluateWithClustering(const Dataset &data,
                                         const ClusterOptions &options,
                                         const Reconstructor &algo,
                                         Rng &rng);

} // namespace dnasim

#endif // DNASIM_ANALYSIS_CLUSTERED_ACCURACY_HH
