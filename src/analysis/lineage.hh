/**
 * @file
 * Ground-truth failure forensics: joins the channel's injected-error
 * lineage (core/lineage_log.hh), the clusterer's per-read assignment
 * provenance (cluster/greedy_cluster.hh) and the reconstructors'
 * per-position vote profiles (reconstruct/consensus.hh) against the
 * true references, and classifies every residual error into a
 * concrete cause.
 *
 * The taxonomy is exhaustive by construction — every wrong consensus
 * position receives exactly one FailureCause, never "unknown":
 *
 *   coverage-gap        no copy cast any vote at the position
 *   tie-break           the correct base tied the winner and the
 *                       tie resolved the wrong way
 *   contamination       the wrong plurality is carried by reads that
 *                       belong to a different reference (imperfect
 *                       clustering let them in)
 *   channel-noise       the wrong plurality is carried by native
 *                       reads whose own injected errors touch the
 *                       position — the channel simply out-voted the
 *                       truth at this coverage
 *   alignment-artifact  the wrong plurality is carried by clean
 *                       native reads: their minimum-edit alignments
 *                       shifted votes onto the position
 *   algorithmic         the copies' plurality at the position is the
 *                       correct base, yet the reconstructor emitted
 *                       another — its heuristics (iteration order,
 *                       length enforcement, earlier random
 *                       tie-breaks) diverged from the recomputed
 *                       vote
 *
 * Attribution runs serially in cluster order, so the report is
 * byte-identical at any thread count.
 */

#ifndef DNASIM_ANALYSIS_LINEAGE_HH
#define DNASIM_ANALYSIS_LINEAGE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/error_positions.hh"
#include "cluster/greedy_cluster.hh"
#include "core/lineage_log.hh"
#include "data/dataset.hh"

namespace dnasim
{

/** Why a reconstructed position came out wrong. */
enum class FailureCause : uint8_t
{
    CoverageGap,
    TieBreak,
    Contamination,
    ChannelNoise,
    AlignmentArtifact,
    Algorithmic,
};

inline constexpr size_t kNumFailureCauses = 6;

/** Stable kebab-case name ("coverage-gap", "channel-noise", ...). */
const char *failureCauseName(FailureCause cause);

/**
 * True origin of one pooled read: which reference it was simulated
 * from, and which copy of that reference it is (the key into
 * LineageLog::readEvents). Callers that shuffle the pool must
 * permute these alongside the reads.
 */
struct ReadIdentity
{
    uint32_t origin_cluster = 0;
    uint32_t origin_copy = 0;
};

/** One classified wrong position in one cluster's reconstruction. */
struct FailureRecord
{
    uint32_t cluster = 0; ///< attribution unit (recovered cluster
                          ///< index, or truth cluster index)
    uint32_t origin = 0;  ///< true reference the unit reconstructs
    uint32_t ref_pos = 0; ///< reference position of the error
    char expected = '\0'; ///< reference base (0 for insertions)
    char got = '\0';      ///< estimate base (0 for deletions)
    FailureCause cause = FailureCause::Algorithmic;
    uint32_t correct_votes = 0; ///< aligned votes for the truth
    uint32_t wrong_votes = 0;   ///< aligned votes for the error
    /// Partition of the wrong votes by supporter kind.
    uint32_t foreign_votes = 0;  ///< from reads of another reference
    uint32_t injected_votes = 0; ///< from native reads whose injected
                                 ///< events touch the position
    uint32_t clean_votes = 0;    ///< from native reads with no
                                 ///< injected event at the position
};

/** One read that landed in a cluster of the wrong reference. */
struct MisclusteredRead
{
    uint32_t pool_index = 0;
    uint32_t cluster = 0;        ///< recovered cluster it joined
    uint32_t cluster_origin = 0; ///< that cluster's majority origin
    uint32_t read_origin = 0;    ///< the read's true origin
    AssignmentTier tier = AssignmentTier::Fresh;
    uint32_t verified_distance = 0;
};

/** 4x4 base-confusion counts, indexed [baseIndex(ref)][baseIndex(obs)]. */
using SubConfusion =
    std::array<std::array<uint64_t, kNumBases>, kNumBases>;

/** Everything the attribution engine produces. */
struct LineageReport
{
    bool reclustered = false;
    bool has_lineage = false;
    bool has_estimates = false;
    size_t num_units = 0; ///< clusters attributed (recovered or truth)
    size_t num_reads = 0;
    size_t ref_length = 0; ///< longest reference (heatmap domain)
    size_t erasures = 0;   ///< units skipped for an empty estimate
    size_t failed_units = 0;
    size_t exact_units = 0;

    /// Injected channel ground truth (when a LineageLog was given).
    LineageCounts injected;
    SubConfusion injected_confusion{}; ///< silent subs count on the
                                       ///< diagonal
    /// Residual reference-vs-estimate errors.
    uint64_t residual_substitutions = 0;
    uint64_t residual_deletions = 0;
    uint64_t residual_insertions = 0;
    SubConfusion residual_confusion{}; ///< substitutions only

    /// Positional heatmaps, bucketed over [0, ref_length).
    std::vector<ProfileBucket> injected_buckets;
    std::vector<ProfileBucket> residual_buckets;

    /// Every wrong consensus position, classified.
    std::vector<FailureRecord> failures;
    std::array<uint64_t, kNumFailureCauses> cause_counts{};

    /// Clustering forensics (recluster mode only).
    std::vector<MisclusteredRead> misclustered;
    std::array<uint64_t, 4> misclustered_by_tier{}; ///< by
                                                    ///< AssignmentTier
    double purity = 1.0;

    uint64_t
    residualTotal() const
    {
        return residual_substitutions + residual_deletions +
               residual_insertions;
    }
};

/**
 * Inputs to the attribution engine. Only @p truth is mandatory;
 * every other piece degrades the report gracefully when absent
 * (no lineage → injected stats empty and channel-noise
 * classification falls back on foreign/clean partitioning; no
 * estimates → no failure records; no recovered clustering → the
 * simulator's pseudo-clusters are attributed 1:1).
 */
struct LineageInputs
{
    /// Ground truth: references, and (in pseudo-clustered mode) the
    /// per-reference copies.
    const Dataset *truth = nullptr;
    /// Injected-error record of the simulation run, or nullptr.
    const LineageLog *lineage = nullptr;
    /// Per-unit reconstructions (empty strand = erasure), indexed
    /// like the recovered clusters (recluster mode) or like @p truth.
    const std::vector<Strand> *estimates = nullptr;

    /// Recovered clustering of a shuffled read pool. All three of
    /// clusters/pool/identity must be present together; nullptr
    /// selects pseudo-clustered mode.
    const std::vector<ReadCluster> *clusters = nullptr;
    const std::vector<Strand> *pool = nullptr;
    const std::vector<ReadIdentity> *identity = nullptr;
    /// Optional per-pool-read placement provenance from clusterReads.
    const std::vector<ReadAssignment> *assignments = nullptr;

    /// Rows in the positional heatmaps.
    size_t heatmap_buckets = 11;
};

/** Run the attribution engine over @p in. */
LineageReport attributeLineage(const LineageInputs &in);

/** Human-readable forensics report (TextTable sections). */
std::string lineageReportText(const LineageReport &report);

/** Single-document JSON report (schema dnasim.lineage.report.v1). */
std::string lineageReportJson(const LineageReport &report);

/**
 * Write the dnasim.lineage.v1 JSONL stream: a "meta" line (schema +
 * build provenance + run shape), one "read" line per read (injected
 * events, true origin, and — when assignments were given — placement
 * provenance), one "failure" line per classified wrong position, and
 * a closing "summary" line mirroring the report aggregates. Returns
 * false (and sets @p error when non-null) on I/O failure.
 */
bool writeLineageJsonl(const std::string &path,
                       const LineageInputs &in,
                       const LineageReport &report,
                       std::string *error = nullptr);

} // namespace dnasim

#endif // DNASIM_ANALYSIS_LINEAGE_HH
