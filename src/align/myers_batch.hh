/**
 * @file
 * Batched one-pattern-vs-N-texts Myers edit-distance kernels.
 *
 * The scalar MyersPattern answers one text per call: the DP column
 * lives in 64-bit machine words and advances one text character at a
 * time. Profiling after PR 5 shows that call — candidate
 * verification in clusterReads, consensus scoring in the reconstruct
 * refinement loop — is the dominant cost of clustering and
 * reconstruction. Both sites share one shape: a single pattern
 * probed against many texts.
 *
 * The batch kernel exploits that shape by carrying one *text* per
 * SIMD lane: the pattern's Peq match tables are shared across lanes
 * (structure-of-arrays, plus an all-zero pad row so non-ACGT and
 * past-the-end positions gather a zero match mask), the texts are
 * transposed into a lane-major code matrix (base/packed.hh
 * packLaneMajorCodes), and each step advances every lane's column by
 * its own next character. AVX2 runs 4 x 64-bit lanes, AVX-512 runs
 * 8; the portable tier serves each text through the scalar kernel.
 * Tier selection is a runtime decision (align/simd_dispatch.hh).
 *
 * Contract: for every tier and every input,
 *   out[i] == pattern.distanceBounded(texts[i], limit)
 * exactly — including the early-abandon return values, which are
 * re-derived per lane at the same step the scalar kernel would
 * abandon. Batch-vs-scalar is therefore bit-equal, not merely
 * decision-equal, so swapping tiers (or enabling batching at a call
 * site) can never change simulation output. Patterns that required
 * the non-ACGT fallback are served per text by the generic kernel,
 * exactly as the scalar path would.
 *
 * Observability: align.simd.batches / align.simd.lanes_filled /
 * align.simd.scalar_tail count vector invocations, live lanes and
 * scalar-served texts; align.batch.allocs counts scratch (re)growth
 * — zero in steady state, asserted by tests (the lane-major buffers
 * and SoA state are thread_local, per the PR-4 allocation
 * discipline).
 */

#ifndef DNASIM_ALIGN_MYERS_BATCH_HH
#define DNASIM_ALIGN_MYERS_BATCH_HH

#include <cstddef>
#include <span>
#include <string_view>

#include "align/edit_distance.hh"

namespace dnasim
{

/**
 * Thresholded batch query: out[i] equals
 * pattern.distanceBounded(texts[i], limit) for every i, bit-exactly,
 * on every SIMD tier. @p out must be at least texts.size() long.
 */
void myersBatchDistanceBounded(const MyersPattern &pattern,
                               std::span<const std::string_view> texts,
                               size_t limit, std::span<size_t> out);

/**
 * Sum of exact distances between the pattern and every text —
 * equal to summing pattern.distance(texts[i]). The consensus
 * scoring shape (one working estimate vs a cluster's copies).
 */
size_t myersBatchTotalDistance(const MyersPattern &pattern,
                               std::span<const std::string_view> texts);

/** Lane width of @p tier's batch kernel (1 for the scalar tier). */
size_t simdTierLanes();

} // namespace dnasim

#endif // DNASIM_ALIGN_MYERS_BATCH_HH
