/**
 * @file
 * Internal interface between the batch-kernel driver
 * (align/myers_batch.cc) and the per-ISA translation units.
 *
 * The wide kernels live in separate files built with per-file
 * -mavx2 / -mavx512* options (see src/align/CMakeLists.txt); this
 * header carries only the shared state struct and the kernel entry
 * points, so it must stay free of intrinsics. Not part of the public
 * align API.
 */

#ifndef DNASIM_ALIGN_MYERS_BATCH_IMPL_HH
#define DNASIM_ALIGN_MYERS_BATCH_IMPL_HH

#include <cstddef>
#include <cstdint>

namespace dnasim
{
namespace align_detail
{

/**
 * One batch-kernel invocation: a fixed pattern against `lanes` texts
 * advanced in lockstep, one text per 64-bit SIMD lane.
 *
 * Layouts are structure-of-arrays with the lane index innermost:
 * pv/mv hold blocks x lanes words at [b * lanes + l], codes holds
 * max_n x lanes text codes at [t * lanes + l] (base/packed.hh
 * packLaneMajorCodes). peq is a five-row padded copy of the
 * pattern's match table — rows 0..3 at [code * blocks + b], row
 * kLaneMajorPadCode all-zero — so a lane whose text is shorter than
 * max_n (or contains a non-ACGT character) gathers eq = 0, exactly
 * the scalar kernel's treatment.
 *
 * Per-lane protocol, replicating MyersPattern::run() bit-for-bit:
 * a lane's score starts at m; at the top of step t every live lane
 * with n[l] == t records score as its result and sets done[l];
 * after advancing all blocks, every live lane failing the scalar
 * early-abandon test (score > remaining && score - remaining >
 * limit, remaining = n[l] - t - 1) records score - remaining. Lanes
 * still live after max_n steps record their final score. done[l]
 * set on entry marks a lane the driver resolved via the scalar
 * prechecks (empty text, length-difference bound) or an idle lane
 * of a partial batch; the kernel never touches its result.
 *
 * Lengths, limit and scores are signed so the lane-wise compares
 * map onto signed SIMD compares; the driver clamps limit well below
 * the overflow range.
 */
struct BatchState
{
    const uint64_t *peq = nullptr; ///< 5 x blocks padded Peq rows
    size_t blocks = 0;             ///< 64-row column slices
    uint64_t final_row = 0;        ///< out-mask of the last block
    int64_t m = 0;                 ///< pattern length (initial score)
    const uint8_t *codes = nullptr; ///< max_n x lanes lane-major codes
    size_t max_n = 0;              ///< steps = longest live text
    const int64_t *n = nullptr;    ///< per-lane text lengths
    int64_t limit = 0;             ///< clamped early-abandon bound
    uint64_t *result = nullptr;    ///< per-lane distances (out)
    uint8_t *done = nullptr;       ///< per-lane resolved flags (in/out)
    uint64_t *pv = nullptr;        ///< blocks x lanes scratch
    uint64_t *mv = nullptr;        ///< blocks x lanes scratch
};

#ifdef DNASIM_X86_SIMD_KERNELS
/**
 * AVX2 batch kernel: 8 lanes as two interleaved 4-lane halves (the
 * driver always packs with an 8-lane stride). Requires an
 * AVX2-capable CPU.
 */
void runBatchAvx2(const BatchState &st);

/**
 * AVX-512 batch kernel: 8 lanes. Requires AVX-512 F+BW+DQ (the
 * dispatcher probes exactly that set).
 */
void runBatchAvx512(const BatchState &st);
#endif

} // namespace align_detail
} // namespace dnasim

#endif // DNASIM_ALIGN_MYERS_BATCH_IMPL_HH
