#include "align/simd_dispatch.hh"

#include <atomic>
#include <cstdlib>

#include "base/logging.hh"
#include "obs/provenance.hh"
#include "obs/stats.hh"

namespace dnasim
{

namespace
{

#if defined(__x86_64__) || defined(_M_X64)
SimdTier
probeCpu()
{
    __builtin_cpu_init();
    // The AVX-512 kernel is compiled with -mavx512f/-mavx512bw/
    // -mavx512dq; require exactly that set so the dispatcher never
    // selects code the CPU would fault on.
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq")) {
        return SimdTier::Avx512;
    }
    if (__builtin_cpu_supports("avx2"))
        return SimdTier::Avx2;
    return SimdTier::Scalar;
}
#else
SimdTier
probeCpu()
{
    return SimdTier::Scalar;
}
#endif

/// Override slot: -1 = auto (env or detected), else a SimdTier.
std::atomic<int> g_override{-1};

obs::Gauge &
tierGauge()
{
    static obs::Gauge &g = obs::Registry::global().gauge(
        "align.simd.tier",
        "SIMD tier serving the batch alignment kernels "
        "(0=scalar, 1=avx2, 2=avx512)");
    return g;
}

/// DNASIM_SIMD environment selection, parsed once. -1 = auto.
int
envTier()
{
    static const int parsed = [] {
        const char *env = std::getenv("DNASIM_SIMD");
        if (env == nullptr || *env == '\0' ||
            std::string_view(env) == "auto") {
            return -1;
        }
        auto tier = parseSimdTier(env);
        if (!tier) {
            warn("DNASIM_SIMD='", env,
                 "' is not auto/scalar/avx2/avx512; using auto");
            return -1;
        }
        return static_cast<int>(*tier);
    }();
    return parsed;
}

SimdTier
clampToDetected(SimdTier requested)
{
    const SimdTier detected = detectedSimdTier();
    if (static_cast<int>(requested) <= static_cast<int>(detected))
        return requested;
    warn_once("requested SIMD tier ", simdTierName(requested),
              " exceeds this CPU (", simdTierName(detected),
              "); falling back");
    return detected;
}

} // anonymous namespace

const char *
simdTierName(SimdTier tier)
{
    switch (tier) {
      case SimdTier::Scalar: return "scalar";
      case SimdTier::Avx2: return "avx2";
      case SimdTier::Avx512: return "avx512";
    }
    return "?";
}

std::optional<SimdTier>
parseSimdTier(std::string_view name)
{
    if (name == "scalar")
        return SimdTier::Scalar;
    if (name == "avx2")
        return SimdTier::Avx2;
    if (name == "avx512")
        return SimdTier::Avx512;
    return std::nullopt;
}

SimdTier
detectedSimdTier()
{
    static const SimdTier detected = probeCpu();
    return detected;
}

SimdTier
activeSimdTier()
{
    const int forced = g_override.load(std::memory_order_relaxed);
    const int requested = forced >= 0 ? forced : envTier();
    SimdTier tier = requested >= 0
                        ? clampToDetected(static_cast<SimdTier>(requested))
                        : detectedSimdTier();

    // One startup log line + the stats gauge, so bench reports and
    // telemetry always record which code path ran. The log fires
    // once per process; the gauge tracks the current selection (it
    // moves when tests flip the override).
    static std::atomic<bool> logged{false};
    if (!logged.exchange(true, std::memory_order_relaxed)) {
        inform("align: batch kernels using SIMD tier ",
               simdTierName(tier), " (detected ",
               simdTierName(detectedSimdTier()),
               requested >= 0 ? ", overridden" : "", ")");
    }
    tierGauge().set(static_cast<int64_t>(tier));
    obs::setProvenanceSimdTier(simdTierName(tier));
    return tier;
}

void
setSimdTierOverride(std::optional<SimdTier> tier)
{
    g_override.store(tier ? static_cast<int>(*tier) : -1,
                     std::memory_order_relaxed);
}

bool
applySimdOverride(std::string_view name)
{
    if (name == "auto" || name.empty()) {
        setSimdTierOverride(std::nullopt);
        return true;
    }
    auto tier = parseSimdTier(name);
    if (!tier)
        return false;
    setSimdTierOverride(*tier);
    return true;
}

} // namespace dnasim
