/**
 * @file
 * AVX-512 batch Myers kernel: 8 texts per invocation, one per
 * 64-bit lane of a 512-bit vector.
 *
 * Compiled with -mavx512f -mavx512bw -mavx512dq (see
 * src/align/CMakeLists.txt); only entered through the runtime
 * dispatcher, which probes exactly that feature set. The recurrence
 * is the same lane-wise image of the scalar kernel as the AVX2
 * variant (align/myers_batch_avx2.cc) and shares its throughput
 * tricks — register-resident pv/mv for small block counts,
 * shift-derived horizontal deltas, a decrementing `remaining`
 * register doubling as the text-end test, and that test skipped
 * until the shortest live text can end. The differences are purely
 * mechanical: predicate masks (__mmask8) replace the compare/
 * movemask dance, and the 8-lane Peq fetch keeps vpgatherqq (one
 * zmm gather amortizes better than eight scalar loads).
 */

#include "align/myers_batch_impl.hh"

#ifdef DNASIM_X86_SIMD_KERNELS

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>

// GCC's _mm512_andnot_si512 expands through _mm512_undefined_epi32,
// whose deliberate don't-care operand trips -Wmaybe-uninitialized
// (a header artifact, not a real read of uninitialized data).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace dnasim
{
namespace align_detail
{

namespace
{

/**
 * One block advance for all eight lanes: the vector image of the
 * scalar myersAdvanceBlock(). Updates pv/mv in place and chains the
 * horizontal delta through hin_pos/hin_neg. kFinal selects the
 * pattern's last block, whose out bit sits at final_shift instead of
 * bit 63.
 */
template <bool kFinal>
inline void
advanceBlock(__m512i &pv, __m512i &mv, __m512i eq0, __m128i final_shift,
             __m512i one, __m512i &hin_pos, __m512i &hin_neg,
             __m512i all_ones)
{
    const __m512i xv = _mm512_or_si512(eq0, mv);
    const __m512i eq = _mm512_or_si512(eq0, hin_neg);
    const __m512i xh = _mm512_or_si512(
        _mm512_xor_si512(
            _mm512_add_epi64(_mm512_and_si512(eq, pv), pv), pv),
        eq);
    __m512i ph = _mm512_or_si512(
        mv, _mm512_andnot_si512(_mm512_or_si512(xh, pv), all_ones));
    __m512i mh = _mm512_and_si512(pv, xh);

    // ph and mh are disjoint (see the AVX2 kernel), so both
    // horizontal deltas can be extracted independently; the out
    // mask is a single bit, so a right shift of that bit to
    // position 0 IS the 0/1 delta.
    __m512i hout_pos, hout_neg;
    if constexpr (kFinal) {
        hout_pos =
            _mm512_and_si512(_mm512_srl_epi64(ph, final_shift), one);
        hout_neg =
            _mm512_and_si512(_mm512_srl_epi64(mh, final_shift), one);
    } else {
        hout_pos = _mm512_srli_epi64(ph, 63);
        hout_neg = _mm512_srli_epi64(mh, 63);
    }

    ph = _mm512_or_si512(_mm512_slli_epi64(ph, 1), hin_pos);
    mh = _mm512_or_si512(_mm512_slli_epi64(mh, 1), hin_neg);
    pv = _mm512_or_si512(
        mh, _mm512_andnot_si512(_mm512_or_si512(xv, ph), all_ones));
    mv = _mm512_and_si512(ph, xv);
    hin_pos = hout_pos;
    hin_neg = hout_neg;
}

/**
 * The full batch loop. B > 0 is a compile-time block count: pv/mv
 * live in a local array the unrolled loop keeps in registers. B == 0
 * is the dynamic fallback that round-trips pv/mv through the
 * caller's scratch each step.
 */
template <size_t B>
void
runBatch(const BatchState &st)
{
    constexpr size_t W = 8;
    constexpr bool kResident = B != 0;
    constexpr size_t kB = kResident ? B : 1;
    constexpr __mmask8 kAll = 0xff;
    const size_t blocks = kResident ? B : st.blocks;
    const __m512i zero = _mm512_setzero_si512();
    const __m512i all_ones = _mm512_set1_epi64(-1);
    const __m512i one = _mm512_set1_epi64(1);
    const __m512i limit_v = _mm512_set1_epi64(st.limit);
    const __m128i final_shift =
        _mm_cvtsi32_si128(std::countr_zero(st.final_row));
    const __m512i blocks_v =
        _mm512_set1_epi64(static_cast<int64_t>(blocks));
    const __m512i n_v = _mm512_loadu_si512(st.n);
    __m512i score_v = _mm512_set1_epi64(st.m);
    // remaining = n - t - 1, carried across steps; a lane's text
    // ends exactly when it hits -1.
    __m512i remaining_v = _mm512_sub_epi64(n_v, one);

    __m512i pvr[kB];
    __m512i mvr[kB];
    if constexpr (kResident) {
        for (size_t b = 0; b < B; ++b) {
            pvr[b] = all_ones;
            mvr[b] = zero;
        }
    } else {
        for (size_t b = 0; b < blocks; ++b) {
            _mm512_storeu_si512(st.pv + b * W, all_ones);
            _mm512_storeu_si512(st.mv + b * W, zero);
        }
    }

    __mmask8 done_m = 0;
    for (size_t l = 0; l < W; ++l)
        done_m |= st.done[l] ? static_cast<__mmask8>(1u << l) : 0;

    // No lane can reach its text end before the shortest live text
    // does; the end test is dead weight until then.
    size_t min_end = st.max_n;
    for (size_t l = 0; l < W; ++l)
        if (!st.done[l])
            min_end = std::min(
                min_end, static_cast<size_t>(st.n[l]));

    for (size_t t = 0; t < st.max_n && done_m != kAll; ++t) {
        if (t >= min_end) {
            // Lanes whose text ends at this step: the running score
            // is the final distance.
            const __mmask8 end_now = _mm512_mask_cmpeq_epi64_mask(
                static_cast<__mmask8>(~done_m), remaining_v,
                all_ones);
            if (end_now != 0) {
                alignas(64) int64_t sc[W];
                _mm512_store_si512(sc, score_v);
                for (size_t l = 0; l < W; ++l) {
                    if (end_now & (1u << l)) {
                        st.result[l] = static_cast<uint64_t>(sc[l]);
                        st.done[l] = 1;
                    }
                }
                done_m |= end_now;
                if (done_m == kAll)
                    break;
            }
        }

        // eq[l] = peq[codes[l] * blocks + b]; the pad row keeps
        // finished and non-ACGT lanes at eq = 0.
        uint64_t packed_codes;
        std::memcpy(&packed_codes, st.codes + t * W,
                    sizeof(packed_codes));
        const __m512i code_v = _mm512_cvtepu8_epi64(_mm_cvtsi64_si128(
            static_cast<long long>(packed_codes)));
        const __m512i row_v = _mm512_mullo_epi64(code_v, blocks_v);

        __m512i hin_pos = one;
        __m512i hin_neg = zero;
        if constexpr (kResident) {
            for (size_t b = 0; b + 1 < B; ++b) {
                const __m512i eq0 =
                    _mm512_i64gather_epi64(row_v, st.peq + b, 8);
                advanceBlock<false>(pvr[b], mvr[b], eq0, final_shift,
                                    one, hin_pos, hin_neg, all_ones);
            }
            const __m512i eq_last =
                _mm512_i64gather_epi64(row_v, st.peq + (B - 1), 8);
            advanceBlock<true>(pvr[B - 1], mvr[B - 1], eq_last,
                               final_shift, one, hin_pos, hin_neg,
                               all_ones);
        } else {
            for (size_t b = 0; b < blocks; ++b) {
                const __m512i eq0 =
                    _mm512_i64gather_epi64(row_v, st.peq + b, 8);
                __m512i pv = _mm512_loadu_si512(st.pv + b * W);
                __m512i mv = _mm512_loadu_si512(st.mv + b * W);
                if (b + 1 == blocks) {
                    advanceBlock<true>(pv, mv, eq0, final_shift, one,
                                       hin_pos, hin_neg, all_ones);
                } else {
                    advanceBlock<false>(pv, mv, eq0, final_shift, one,
                                        hin_pos, hin_neg, all_ones);
                }
                _mm512_storeu_si512(st.pv + b * W, pv);
                _mm512_storeu_si512(st.mv + b * W, mv);
            }
        }
        score_v = _mm512_add_epi64(
            score_v, _mm512_sub_epi64(hin_pos, hin_neg));

        // Lane-wise early abandon: the scalar kernel's certified
        // bound, evaluated with the same operands in the same step.
        const __m512i over = _mm512_sub_epi64(score_v, remaining_v);
        __mmask8 abandon = _mm512_mask_cmpgt_epi64_mask(
            static_cast<__mmask8>(~done_m), score_v, remaining_v);
        abandon =
            _mm512_mask_cmpgt_epi64_mask(abandon, over, limit_v);
        if (abandon != 0) {
            alignas(64) int64_t ov[W];
            _mm512_store_si512(ov, over);
            for (size_t l = 0; l < W; ++l) {
                if (abandon & (1u << l)) {
                    st.result[l] = static_cast<uint64_t>(ov[l]);
                    st.done[l] = 1;
                }
            }
            done_m |= abandon;
        }
        remaining_v = _mm512_sub_epi64(remaining_v, one);
    }

    // Lanes whose text spans all max_n steps finish here.
    if (done_m != kAll) {
        alignas(64) int64_t sc[W];
        _mm512_store_si512(sc, score_v);
        for (size_t l = 0; l < W; ++l) {
            if (!(done_m & (1u << l))) {
                st.result[l] = static_cast<uint64_t>(sc[l]);
                st.done[l] = 1;
            }
        }
    }
}

} // anonymous namespace

void
runBatchAvx512(const BatchState &st)
{
    switch (st.blocks) {
    case 1: runBatch<1>(st); return;
    case 2: runBatch<2>(st); return;
    case 3: runBatch<3>(st); return;
    case 4: runBatch<4>(st); return;
    case 5: runBatch<5>(st); return;
    case 6: runBatch<6>(st); return;
    case 7: runBatch<7>(st); return;
    case 8: runBatch<8>(st); return;
    default: runBatch<0>(st); return;
    }
}

} // namespace align_detail
} // namespace dnasim

#endif // DNASIM_X86_SIMD_KERNELS
