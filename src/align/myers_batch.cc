#include "align/myers_batch.hh"

#include <algorithm>
#include <cstring>
#include <limits>

#include "align/myers_batch_impl.hh"
#include "align/path_stats.hh"
#include "align/pattern_access.hh"
#include "align/simd_dispatch.hh"
#include "base/logging.hh"
#include "base/packed.hh"
#include "obs/stats.hh"

namespace dnasim
{

namespace
{

using align_detail::BatchState;
using align_detail::PatternAccess;

/// Widest lane count any kernel uses (AVX-512).
constexpr size_t kMaxLanes = 8;

/// Rows of the padded Peq table: the four bases plus the all-zero
/// pad row indexed by kLaneMajorPadCode.
constexpr size_t kPeqRows = kLaneMajorPadCode + 1;

/// Early-abandon bound cap: far above any real distance (score is
/// at most m + n), far below signed-64 overflow.
constexpr int64_t kLimitCap = std::numeric_limits<int64_t>::max() / 4;

struct BatchStats
{
    obs::Counter &batches;
    obs::Counter &lanes_filled;
    obs::Counter &scalar_tail;
    obs::Counter &allocs;

    static BatchStats &
    get()
    {
        auto &reg = obs::Registry::global();
        static BatchStats bs{
            reg.counter("align.simd.batches",
                        "vector batch-kernel invocations"),
            reg.counter("align.simd.lanes_filled",
                        "SIMD lanes carrying a real text across batch "
                        "invocations (occupancy = lanes_filled / "
                        "(batches * lane width))"),
            reg.counter("align.simd.scalar_tail",
                        "batch-API texts served by the scalar kernel "
                        "(scalar tier, non-ACGT fallback, or "
                        "single-text groups)"),
            reg.counter("align.batch.allocs",
                        "batch-scratch (re)allocations; zero in steady "
                        "state once thread-local capacity has grown"),
        };
        return bs;
    }
};

/**
 * Thread-local batch scratch (PR-4 allocation discipline): all
 * buffers grow to the working-set high-water mark and are then
 * reused allocation-free; align.batch.allocs counts every growth.
 */
struct BatchScratch
{
    std::vector<uint64_t> peq;   ///< kPeqRows x blocks padded table
    std::vector<uint8_t> codes;  ///< max_n x lanes lane-major codes
    std::vector<uint64_t> pv;    ///< blocks x lanes kernel scratch
    std::vector<uint64_t> mv;    ///< blocks x lanes kernel scratch
};

template <typename T>
void
ensureSize(std::vector<T> &v, size_t need, obs::Counter &allocs)
{
    if (v.capacity() < need)
        allocs.inc();
    v.resize(need);
}

BatchScratch &
batchScratch()
{
    thread_local BatchScratch scratch;
    return scratch;
}

#ifdef DNASIM_X86_SIMD_KERNELS

using KernelFn = void (*)(const BatchState &);

/// Dispatch table indexed by SimdTier; the scalar tier never
/// reaches the kernels.
constexpr KernelFn kKernels[] = {
    nullptr,
    &align_detail::runBatchAvx2,
    &align_detail::runBatchAvx512,
};

/**
 * Run one lane group (<= W texts) through the vector kernel.
 * Lanes the scalar kernel would resolve before its main loop —
 * empty texts (distance m + n) and length gaps beyond the limit
 * (certified lower bound) — are resolved here with the same values
 * and enter the kernel pre-done, as do idle lanes of a partial
 * group.
 */
void
runGroup(SimdTier tier, size_t lanes, const MyersPattern &pattern,
         std::span<const std::string_view> texts, size_t limit,
         std::span<size_t> out, BatchScratch &scratch)
{
    auto &bs = BatchStats::get();
    const size_t m = pattern.size();

    int64_t n[kMaxLanes];
    uint64_t result[kMaxLanes];
    uint8_t done[kMaxLanes];
    size_t live = 0;
    size_t max_n = 0;
    for (size_t l = 0; l < lanes; ++l) {
        n[l] = 0;
        result[l] = 0;
        done[l] = 1;
        if (l >= texts.size())
            continue;
        const size_t len = texts[l].size();
        const size_t diff = m > len ? m - len : len - m;
        if (len == 0) {
            result[l] = m;
        } else if (diff > limit) {
            result[l] = diff;
        } else {
            n[l] = static_cast<int64_t>(len);
            done[l] = 0;
            ++live;
            max_n = std::max(max_n, len);
        }
    }
    // Trivially-resolved lanes took the same certified shortcuts
    // the scalar fast path counts.
    align_detail::PathStats::get().packed_fastpath.add(texts.size());

    if (live > 0) {
        const size_t blocks = PatternAccess::blocks(pattern);
        const auto peq = PatternAccess::peq(pattern);
        ensureSize(scratch.peq, kPeqRows * blocks, bs.allocs);
        std::copy(peq.begin(), peq.end(), scratch.peq.begin());
        std::fill(scratch.peq.begin() + peq.size(), scratch.peq.end(),
                  0);
        if (scratch.codes.capacity() < max_n * lanes)
            bs.allocs.inc();
        packLaneMajorCodes(texts, lanes, max_n, scratch.codes);
        ensureSize(scratch.pv, blocks * lanes, bs.allocs);
        ensureSize(scratch.mv, blocks * lanes, bs.allocs);

        BatchState st;
        st.peq = scratch.peq.data();
        st.blocks = blocks;
        st.final_row = uint64_t{1} << ((m - 1) % 64);
        st.m = static_cast<int64_t>(m);
        st.codes = scratch.codes.data();
        st.max_n = max_n;
        st.n = n;
        st.limit = limit > static_cast<size_t>(kLimitCap)
                       ? kLimitCap
                       : static_cast<int64_t>(limit);
        st.result = result;
        st.done = done;
        st.pv = scratch.pv.data();
        st.mv = scratch.mv.data();
        kKernels[static_cast<int>(tier)](st);

        bs.batches.inc();
        bs.lanes_filled.add(texts.size());
    }

    for (size_t l = 0; l < texts.size(); ++l)
        out[l] = static_cast<size_t>(result[l]);
}

#endif // DNASIM_X86_SIMD_KERNELS

} // anonymous namespace

size_t
simdTierLanes()
{
    switch (activeSimdTier()) {
      case SimdTier::Avx512: return 8;
      // Two interleaved 4-lane halves per invocation (ILP, not
      // width) — the batch granularity is still 8 texts.
      case SimdTier::Avx2: return 8;
      case SimdTier::Scalar: break;
    }
    return 1;
}

void
myersBatchDistanceBounded(const MyersPattern &pattern,
                          std::span<const std::string_view> texts,
                          size_t limit, std::span<size_t> out)
{
    DNASIM_ASSERT(out.size() >= texts.size(),
                  "batch output span too small: ", out.size(), " < ",
                  texts.size());
    if (texts.empty())
        return;

    SimdTier tier = activeSimdTier();
#ifndef DNASIM_X86_SIMD_KERNELS
    tier = SimdTier::Scalar;
#endif
    if (tier == SimdTier::Scalar || !pattern.packed() ||
        pattern.size() == 0) {
        BatchStats::get().scalar_tail.add(texts.size());
        for (size_t i = 0; i < texts.size(); ++i)
            out[i] = pattern.distanceBounded(texts[i], limit);
        return;
    }

#ifdef DNASIM_X86_SIMD_KERNELS
    // Both kernels take 8 texts per invocation: AVX-512 as one
    // 8-lane vector, AVX2 as two interleaved 4-lane halves whose
    // independent carry chains overlap in the out-of-order core.
    const size_t lanes = 8;
    auto &scratch = batchScratch();
    for (size_t base = 0; base < texts.size(); base += lanes) {
        const size_t group =
            std::min(lanes, texts.size() - base);
        if (group == 1) {
            // A lone text gains nothing from gather-based lanes.
            BatchStats::get().scalar_tail.inc();
            out[base] = pattern.distanceBounded(texts[base], limit);
            continue;
        }
        runGroup(tier, lanes, pattern, texts.subspan(base, group),
                 limit, out.subspan(base, group), scratch);
    }
#endif
}

size_t
myersBatchTotalDistance(const MyersPattern &pattern,
                        std::span<const std::string_view> texts)
{
    if (texts.empty())
        return 0;
    thread_local std::vector<size_t> dists;
    ensureSize(dists, texts.size(), BatchStats::get().allocs);
    myersBatchDistanceBounded(pattern, texts,
                              std::numeric_limits<size_t>::max(),
                              dists);
    size_t total = 0;
    for (size_t i = 0; i < texts.size(); ++i)
        total += dists[i];
    return total;
}

} // namespace dnasim
