/**
 * @file
 * Positional (Hamming-style) comparison of a reference strand and a
 * noisy or reconstructed copy.
 *
 * Unlike the gestalt-aligned view, the Hamming view marks *every*
 * position where the copy disagrees with the reference, so an early
 * indel corrupts all later positions (the paper's example: for
 * r = AGTC, c = ATC, Hamming errors appear at copy positions 1, 2
 * and 3).
 *
 * Two kernels compute the same distance: a SWAR character kernel
 * (eight bases per 64-bit word) for plain strands, and an XOR +
 * popcount kernel (32 bases per word) for 2-bit packed strands.
 * Both are bit-identical to the naive character loop.
 */

#ifndef DNASIM_ALIGN_HAMMING_HH
#define DNASIM_ALIGN_HAMMING_HH

#include <string_view>
#include <vector>

#include "base/packed.hh"

namespace dnasim
{

/**
 * Number of positions where @p a and @p b disagree, counting the
 * length difference as disagreements.
 */
size_t hammingDistance(std::string_view a, std::string_view b);

/**
 * Packed-strand Hamming distance: XOR the 2-bit words, fold each
 * base pair's two difference bits into one, popcount. Equals
 * hammingDistance(a.toStrand(), b.toStrand()) for all inputs.
 */
size_t hammingDistance(const PackedStrand &a, const PackedStrand &b);

/**
 * Positions of Hamming errors in @p copy relative to @p ref: indices
 * i < |copy| with i >= |ref| or copy[i] != ref[i]. Positions beyond
 * the copy's length are not reported (matching the paper's curves,
 * which fall off after the design length because few copies are
 * longer).
 */
std::vector<size_t> hammingErrorPositions(std::string_view ref,
                                          std::string_view copy);

} // namespace dnasim

#endif // DNASIM_ALIGN_HAMMING_HH
