/**
 * @file
 * Positional (Hamming-style) comparison of a reference strand and a
 * noisy or reconstructed copy.
 *
 * Unlike the gestalt-aligned view, the Hamming view marks *every*
 * position where the copy disagrees with the reference, so an early
 * indel corrupts all later positions (the paper's example: for
 * r = AGTC, c = ATC, Hamming errors appear at copy positions 1, 2
 * and 3).
 */

#ifndef DNASIM_ALIGN_HAMMING_HH
#define DNASIM_ALIGN_HAMMING_HH

#include <string_view>
#include <vector>

namespace dnasim
{

/**
 * Number of positions where @p a and @p b disagree, counting the
 * length difference as disagreements.
 */
size_t hammingDistance(std::string_view a, std::string_view b);

/**
 * Positions of Hamming errors in @p copy relative to @p ref: indices
 * i < |copy| with i >= |ref| or copy[i] != ref[i]. Positions beyond
 * the copy's length are not reported (matching the paper's curves,
 * which fall off after the design length because few copies are
 * longer).
 */
std::vector<size_t> hammingErrorPositions(std::string_view ref,
                                          std::string_view copy);

} // namespace dnasim

#endif // DNASIM_ALIGN_HAMMING_HH
