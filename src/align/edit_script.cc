#include "align/edit_script.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>

#include "align/pattern_access.hh"
#include "base/dna.hh"
#include "base/logging.hh"

namespace dnasim
{

namespace align_detail
{

EditOpsStats &
EditOpsStats::get()
{
    auto &reg = obs::Registry::global();
    static EditOpsStats st{
        reg.counter("align.editops.bitvec",
                    "edit scripts served by the deterministic "
                    "bit-vector tier"),
        reg.counter("align.editops.banded",
                    "edit scripts served by the banded "
                    "random-tie-break tier"),
        reg.counter("align.editops.band_retries",
                    "banded edit-script refills after a band escape"),
        reg.counter("align.editops.fallback",
                    "edit scripts served by the reference flat DP"),
        reg.counter("align.editops.cells",
                    "edit-script work units: uint32 cells for the "
                    "scalar tiers, 64-row delta words for the "
                    "bit-vector tier"),
        reg.counter("align.editops.shrinks",
                    "oversized edit-script scratch buffers released "
                    "back to the allocator"),
    };
    return st;
}

namespace
{

/**
 * Per-thread scratch cap: one unusually long pair must not pin large
 * backtrace buffers in every worker thread for the rest of the
 * process. Accounting is in bytes because the tiers use different
 * cell layouts (uint32 DP cells vs uint64 delta words); 16 MiB
 * matches the old flat-DP kKeepCells (2^22 cells * 4 B).
 */
constexpr size_t kKeepScratchBytes = size_t{1} << 24;

/** Release @p buf if this call grew it past the scratch cap. */
template <typename T>
void
shrinkOversized(std::vector<T> &buf, size_t used_elems)
{
    if (used_elems * sizeof(T) > kKeepScratchBytes) {
        buf.clear();
        buf.shrink_to_fit();
        EditOpsStats::get().shrinks.inc();
    }
}

/** Sentinel for never-written banded cells; +1 must not overflow. */
constexpr uint32_t kCellInvalid =
    std::numeric_limits<uint32_t>::max() / 4;

/**
 * Scripts with an empty side are forced: all insertions or all
 * deletions, exactly what the reference backtrace emits (no Rng
 * draw ever happens — every cell has one candidate).
 */
void
trivialScript(std::string_view ref, std::string_view copy,
              std::vector<EditOp> &out)
{
    out.clear();
    if (ref.empty()) {
        out.reserve(copy.size());
        for (size_t j = 0; j < copy.size(); ++j)
            out.push_back({EditOpType::Insert, 0, '\0', copy[j]});
        return;
    }
    out.reserve(ref.size());
    for (size_t i = 0; i < ref.size(); ++i)
        out.push_back({EditOpType::Delete, i, ref[i], '\0'});
}

} // anonymous namespace

void
editOpsReference(std::string_view ref, std::string_view copy,
                 Rng *rng, std::vector<EditOp> &out)
{
    const size_t n = ref.size(), m = copy.size();
    const size_t stride = m + 1;
    const size_t cells = (n + 1) * stride;

    // dist[i * stride + j]: edit distance between ref[:i] and
    // copy[:j]. One flat reused buffer — a row-of-rows layout would
    // allocate n + 2 vectors per call.
    thread_local std::vector<uint32_t> dist;
    dist.resize(cells);
    EditOpsStats::get().cells.add(cells);
    for (size_t i = 0; i <= n; ++i)
        dist[i * stride] = static_cast<uint32_t>(i);
    for (size_t j = 0; j <= m; ++j)
        dist[j] = static_cast<uint32_t>(j);
    for (size_t i = 1; i <= n; ++i) {
        const uint32_t *prev = &dist[(i - 1) * stride];
        uint32_t *cur = &dist[i * stride];
        const char rc = ref[i - 1];
        for (size_t j = 1; j <= m; ++j) {
            uint32_t diag = prev[j - 1] + (rc == copy[j - 1] ? 0 : 1);
            cur[j] = std::min({diag, prev[j] + 1, cur[j - 1] + 1});
        }
    }

    // Backtrace from (n, m), choosing among minimum-cost predecessors
    // either at random (Appendix B's ChooseRandomAndInsertOp) or with
    // a fixed diagonal > delete > insert preference.
    out.clear();
    out.reserve(n + m);
    size_t i = n, j = m;
    while (i > 0 || j > 0) {
        // Candidate moves encoded as 0 = diagonal, 1 = delete (up),
        // 2 = insert (left).
        uint8_t candidates[3];
        size_t num = 0;
        const uint32_t here = dist[i * stride + j];
        if (i > 0 && j > 0) {
            uint32_t cost = ref[i - 1] == copy[j - 1] ? 0 : 1;
            if (here == dist[(i - 1) * stride + j - 1] + cost)
                candidates[num++] = 0;
        }
        if (i > 0 && here == dist[(i - 1) * stride + j] + 1)
            candidates[num++] = 1;
        if (j > 0 && here == dist[i * stride + j - 1] + 1)
            candidates[num++] = 2;
        DNASIM_ASSERT(num > 0, "edit backtrace stuck at (", i, ",", j,
                      ")");

        uint8_t move = candidates[0];
        if (rng && num > 1)
            move = candidates[rng->index(num)];

        switch (move) {
          case 0:
            --i;
            --j;
            out.push_back({ref[i] == copy[j] ? EditOpType::Equal
                                             : EditOpType::Substitute,
                           i, ref[i], copy[j]});
            break;
          case 1:
            --i;
            out.push_back({EditOpType::Delete, i, ref[i], '\0'});
            break;
          default:
            --j;
            out.push_back({EditOpType::Insert, i, '\0', copy[j]});
            break;
        }
    }
    std::reverse(out.begin(), out.end());

    shrinkOversized(dist, cells);
}

void
editOpsBitVector(const MyersPattern &pattern, std::string_view ref,
                 std::string_view copy, std::vector<EditOp> &out)
{
    const size_t n = ref.size(), m = copy.size();
    DNASIM_ASSERT(pattern.packed() && pattern.size() == n,
                  "bit-vector tier needs a packed pattern over ref");
    DNASIM_ASSERT(n > 0 && m > 0, "empty strands are trivial scripts");

    const size_t blocks = PatternAccess::blocks(pattern);
    const auto peq = PatternAccess::peq(pattern);

    // Stored delta words, one group of four bit-vectors per copy
    // position j (1-based): HP/HN are the horizontal deltas
    // D[i][j] - D[i][j-1] of rows 1..n (pre-shift, Hyyro's backtrace
    // form), VP/VN the vertical deltas D[i][j] - D[i-1][j] after the
    // column update. Column j = 0 is implicit: every vertical delta
    // on the left border is +1.
    const size_t stride = 4 * blocks;
    const size_t words = stride * m;
    thread_local std::vector<uint64_t> store;
    store.resize(words);
    EditOpsStats::get().cells.add(blocks * m);

    thread_local std::vector<uint64_t> pv, mv;
    pv.assign(blocks, ~uint64_t{0});
    mv.assign(blocks, 0);

    for (size_t j = 1; j <= m; ++j) {
        const uint8_t code =
            kCharToCode[static_cast<unsigned char>(copy[j - 1])];
        const uint64_t *eq_row =
            code != kInvalidCode ? &peq[code * blocks] : nullptr;
        uint64_t *hp = &store[(j - 1) * stride];
        uint64_t *hn = hp + blocks;
        uint64_t *vp_out = hp + 2 * blocks;
        uint64_t *vn_out = hp + 3 * blocks;
        int hin = 1; // top border: D[0][j] - D[0][j-1] = +1
        for (size_t b = 0; b < blocks; ++b) {
            // One Myers block step (cf. myersAdvanceBlock in
            // edit_distance.cc), keeping the pre-shift horizontal
            // words instead of only the carry bit.
            uint64_t pvb = pv[b], mvb = mv[b];
            uint64_t eq = eq_row != nullptr ? eq_row[b] : 0;
            const uint64_t hin_neg = hin < 0 ? 1u : 0u;
            const uint64_t xv = eq | mvb;
            eq |= hin_neg;
            const uint64_t xh = (((eq & pvb) + pvb) ^ pvb) | eq;
            uint64_t ph = mvb | ~(xh | pvb);
            uint64_t mh = pvb & xh;
            hp[b] = ph;
            hn[b] = mh;
            const int hout =
                (ph >> 63) ? 1 : ((mh >> 63) ? -1 : 0);
            ph = (ph << 1) | (hin > 0 ? 1u : 0u);
            mh = (mh << 1) | hin_neg;
            pv[b] = mh | ~(xv | ph);
            mv[b] = ph & xv;
            vp_out[b] = pv[b];
            vn_out[b] = mv[b];
            hin = hout;
        }
    }

    // Backtrace straight off the stored delta words. All index
    // arithmetic is over 1-based row i / column j; bits above row n
    // in the last block are junk the loop never reads.
    auto bit = [](const uint64_t *vec, size_t i) {
        return (vec[(i - 1) >> 6] >> ((i - 1) & 63)) & 1u;
    };
    // D[i][j] - D[i-1][j]; the j = 0 border is always +1.
    auto vdelta = [&](size_t j, size_t i) -> int {
        if (j == 0)
            return 1;
        const uint64_t *sp = &store[(j - 1) * stride];
        if (bit(sp + 2 * blocks, i))
            return 1;
        if (bit(sp + 3 * blocks, i))
            return -1;
        return 0;
    };
    // D[i][j] - D[i][j-1]; the i = 0 border is always +1.
    auto hdelta = [&](size_t j, size_t i) -> int {
        if (i == 0)
            return 1;
        const uint64_t *sp = &store[(j - 1) * stride];
        if (bit(sp, i))
            return 1;
        if (bit(sp + blocks, i))
            return -1;
        return 0;
    };

    out.clear();
    out.reserve(n + m);
    size_t i = n, j = m;
    while (i > 0 || j > 0) {
        // The reference backtrace's candidate order is diagonal >
        // delete > insert and the deterministic rule takes the first
        // valid one, so testing in that order is equivalent. A move
        // is minimum-cost exactly when the stored deltas say the
        // predecessor's value plus the step cost equals this cell's:
        //   diag: D[i][j] - D[i-1][j-1] = V(j,i) + H(j,i-1) == cost
        //   del:  D[i][j] - D[i-1][j]   = V(j,i)            == +1
        //   ins:  D[i][j] - D[i][j-1]   = H(j,i)            == +1
        if (i > 0 && j > 0) {
            const int cost = ref[i - 1] == copy[j - 1] ? 0 : 1;
            if (vdelta(j, i) + hdelta(j, i - 1) == cost) {
                --i;
                --j;
                out.push_back({cost == 0 ? EditOpType::Equal
                                         : EditOpType::Substitute,
                               i, ref[i], copy[j]});
                continue;
            }
        }
        if (i > 0 && vdelta(j, i) == 1) {
            --i;
            out.push_back({EditOpType::Delete, i, ref[i], '\0'});
            continue;
        }
        DNASIM_ASSERT(j > 0 && hdelta(j, i) == 1,
                      "bit-vector backtrace stuck at (", i, ",", j,
                      ")");
        --j;
        out.push_back({EditOpType::Insert, i, '\0', copy[j]});
    }
    std::reverse(out.begin(), out.end());

    shrinkOversized(store, words);
}

bool
editOpsBandedWithBand(std::string_view ref, std::string_view copy,
                      size_t band, Rng &rng,
                      std::vector<EditOp> &out)
{
    const size_t n = ref.size(), m = copy.size();
    DNASIM_ASSERT(n > 0 && m > 0, "empty strands are trivial scripts");
    const size_t diff = n > m ? n - m : m - n;
    if (band < diff)
        return false; // (n, m) itself lies outside the band

    // Diagonal-banded layout: cell (i, j) lives at row i, offset
    // j - i + band + 1, so the three DP neighbours are (prev row,
    // same offset) = diagonal, (prev row, offset + 1) = up and
    // (same row, offset - 1) = left. Offsets 0 and 2*band + 2 are
    // permanent kCellInvalid sentinels, which lets both the fill and
    // the backtrace read "one past the band" without bounds checks.
    const size_t width = 2 * band + 3;
    const size_t cells = (n + 1) * width;
    thread_local std::vector<uint32_t> buf;
    buf.assign(cells, kCellInvalid);
    EditOpsStats::get().cells.add(cells);
    auto at = [&](size_t i, size_t j) -> uint32_t & {
        return buf[i * width + (j + band + 1 - i)];
    };

    for (size_t j = 0; j <= std::min(m, band); ++j)
        at(0, j) = static_cast<uint32_t>(j);
    for (size_t i = 1; i <= n; ++i) {
        size_t lo = i > band ? i - band : 0;
        const size_t hi = std::min(m, i + band);
        if (lo == 0) {
            at(i, 0) = static_cast<uint32_t>(i);
            lo = 1;
        }
        const char rc = ref[i - 1];
        const uint32_t *prev = &buf[(i - 1) * width];
        uint32_t *cur = &buf[i * width];
        size_t off = lo + band + 1 - i;
        for (size_t j = lo; j <= hi; ++j, ++off) {
            const uint32_t diag =
                prev[off] + (rc == copy[j - 1] ? 0 : 1);
            const uint32_t up = prev[off + 1] + 1;
            const uint32_t left = cur[off - 1] + 1;
            cur[off] = std::min({diag, up, left});
        }
    }

    // A banded value <= band is certified exact, and distance <= band
    // is precisely the premise under which every minimum-cost path —
    // hence every cell the backtrace can visit and every candidate
    // test it performs — stays exact inside the band (DESIGN.md).
    // Escape means the caller seeded the band below the true
    // distance; report it before any Rng draw so the retry replays
    // the same stream.
    if (at(n, m) > band)
        return false;

    // Checked read for the backtrace's candidate probing: cells
    // outside the band (or never filled) read as kCellInvalid, which
    // can never equal a real value plus one.
    auto val = [&](size_t i, size_t j) -> uint32_t {
        if (j + band < i || j > i + band)
            return kCellInvalid;
        return at(i, j);
    };

    out.clear();
    out.reserve(n + m);
    size_t i = n, j = m;
    while (i > 0 || j > 0) {
        // Mirrors editOpsReference() move for move: same candidate
        // encoding, same order, a draw if and only if the full
        // matrix would draw.
        uint8_t candidates[3];
        size_t num = 0;
        const uint32_t here = at(i, j);
        if (i > 0 && j > 0) {
            const uint32_t cost = ref[i - 1] == copy[j - 1] ? 0 : 1;
            if (here == val(i - 1, j - 1) + cost)
                candidates[num++] = 0;
        }
        if (i > 0 && here == val(i - 1, j) + 1)
            candidates[num++] = 1;
        if (j > 0 && here == val(i, j - 1) + 1)
            candidates[num++] = 2;
        DNASIM_ASSERT(num > 0, "banded backtrace stuck at (", i, ",",
                      j, ")");

        uint8_t move = candidates[0];
        if (num > 1)
            move = candidates[rng.index(num)];

        switch (move) {
          case 0:
            --i;
            --j;
            out.push_back({ref[i] == copy[j] ? EditOpType::Equal
                                             : EditOpType::Substitute,
                           i, ref[i], copy[j]});
            break;
          case 1:
            --i;
            out.push_back({EditOpType::Delete, i, ref[i], '\0'});
            break;
          default:
            --j;
            out.push_back({EditOpType::Insert, i, '\0', copy[j]});
            break;
        }
    }
    std::reverse(out.begin(), out.end());

    shrinkOversized(buf, cells);
    return true;
}

} // namespace align_detail

namespace
{

using align_detail::EditOpsStats;

std::atomic<int> g_engine_override{-1};

EditOpsEngine
engineFromEnv()
{
    static const EditOpsEngine cached = [] {
        const char *env = std::getenv("DNASIM_EDITOPS");
        if (env == nullptr || *env == '\0')
            return EditOpsEngine::Auto;
        if (auto parsed = parseEditOpsEngine(env))
            return *parsed;
        warn_once("ignoring unknown DNASIM_EDITOPS value '", env,
                  "' (expected auto or reference)");
        return EditOpsEngine::Auto;
    }();
    return cached;
}

/**
 * Tier selection shared by both editOpsInto() overloads. @p pattern
 * may be null (the one-shot path, which then builds or skips the
 * Peq tables as the tier requires).
 */
void
editOpsDispatch(const MyersPattern *pattern, std::string_view ref,
                std::string_view copy, Rng *rng,
                std::vector<EditOp> &out)
{
    auto &st = EditOpsStats::get();
    if (editOpsEngine() == EditOpsEngine::Reference) {
        st.fallback.inc();
        align_detail::editOpsReference(ref, copy, rng, out);
        return;
    }

    const size_t n = ref.size(), m = copy.size();
    if (n == 0 || m == 0) {
        align_detail::trivialScript(ref, copy, out);
        return;
    }

    if (rng == nullptr) {
        // Tier A. Non-ACGT references cannot feed the 4-row Peq
        // tables; those pairs keep the flat DP.
        if (pattern == nullptr) {
            thread_local MyersPattern local;
            local.assign(ref);
            pattern = &local;
        }
        if (!pattern->packed()) {
            st.fallback.inc();
            align_detail::editOpsReference(ref, copy, nullptr, out);
            return;
        }
        st.bitvec.inc();
        align_detail::editOpsBitVector(*pattern, ref, copy, out);
        return;
    }

    // Tier B: seed the band with the exact distance — reuse the
    // caller's Peq tables when it has them; levenshtein() also
    // serves non-ACGT content, which the banded fill compares
    // bytewise just like the reference DP.
    const size_t d = pattern != nullptr && pattern->packed()
                         ? pattern->distance(copy)
                         : levenshtein(ref, copy);
    size_t band = d;
    for (;;) {
        // Once the band row is as wide as a full row the flat DP is
        // strictly cheaper (no sentinel columns, no escape risk) and
        // identically distributed, so hand distant pairs to it.
        if (2 * band + 3 >= m + 1) {
            st.fallback.inc();
            align_detail::editOpsReference(ref, copy, rng, out);
            return;
        }
        if (align_detail::editOpsBandedWithBand(ref, copy, band,
                                                *rng, out)) {
            st.banded.inc();
            return;
        }
        // Defensive only: band >= exact distance cannot escape. A
        // retry is still byte-safe because a failed fill consumes no
        // Rng draws.
        st.band_retries.inc();
        band = band * 2 + 1;
    }
}

} // anonymous namespace

EditOpsEngine
editOpsEngine()
{
    const int ov = g_engine_override.load(std::memory_order_relaxed);
    if (ov >= 0)
        return static_cast<EditOpsEngine>(ov);
    return engineFromEnv();
}

void
setEditOpsEngineOverride(std::optional<EditOpsEngine> engine)
{
    g_engine_override.store(
        engine ? static_cast<int>(*engine) : -1,
        std::memory_order_relaxed);
}

std::optional<EditOpsEngine>
parseEditOpsEngine(std::string_view name)
{
    if (name == "auto")
        return EditOpsEngine::Auto;
    if (name == "reference")
        return EditOpsEngine::Reference;
    return std::nullopt;
}

void
editOpsInto(std::string_view ref, std::string_view copy, Rng *rng,
            std::vector<EditOp> &out)
{
    editOpsDispatch(nullptr, ref, copy, rng, out);
}

void
editOpsInto(const MyersPattern &pattern, std::string_view ref,
            std::string_view copy, Rng *rng, std::vector<EditOp> &out)
{
    DNASIM_ASSERT(pattern.size() == ref.size(),
                  "pattern/ref length mismatch");
    editOpsDispatch(&pattern, ref, copy, rng, out);
}

std::vector<EditOp>
editOps(std::string_view ref, std::string_view copy, Rng *rng)
{
    std::vector<EditOp> out;
    editOpsInto(ref, copy, rng, out);
    return out;
}

} // namespace dnasim
