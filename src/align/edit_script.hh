/**
 * @file
 * The two-tier edit-script alignment engine behind editOpsInto().
 *
 * Recovering the Appendix-B edit script is the inner loop of both
 * consensus reconstruction (one backtrace per copy per refinement
 * round per cluster) and data-driven profile calibration (one per
 * (reference, copy) pair). The flat O(n*m) scalar DP it shipped with
 * is replaced by two exact-equivalent tiers:
 *
 * - **Tier A (bit-vector, deterministic).** When no Rng is supplied
 *   the backtrace preference is fixed (diagonal > delete > insert),
 *   so no DP cell values are needed — only, at each cell, which
 *   moves are minimum-cost. Those are recovered from the Myers
 *   bit-vector horizontal/vertical delta words (HP/HN/VP/VN), which
 *   the forward pass stores per text position: O(n * ceil(m_ref/64))
 *   words instead of O(n*m) uint32 cells, Hyyro-style. The pattern's
 *   Peq tables come from a MyersPattern, so one estimate's tables
 *   amortize across every copy in a cluster.
 *
 * - **Tier B (banded, random tie-break).** With an Rng, Appendix B
 *   draws uniformly among the minimum-cost predecessors at each
 *   backtrace step, so the full candidate sets must be reproduced
 *   bit-for-bit. A Ukkonen band of half-width d (the exact distance,
 *   precomputed by the Myers kernel) suffices: every cell of every
 *   minimum-cost path satisfies |i - j| <= d, and at such cells the
 *   banded values that decide candidate membership are provably
 *   exact (see DESIGN.md "Edit-script engine"), so the candidate
 *   sets — and therefore the tie-break distribution and the
 *   byte-exact script given the same Rng stream — are identical to
 *   the full matrix, at O((2d+1) * n) cost.
 *
 * The original flat DP survives as the reference implementation: the
 * equivalence suite pins both tiers to it, and DNASIM_EDITOPS=
 * reference (or --editops=reference) forces it at runtime so CI can
 * byte-compare whole-pipeline outputs old-engine vs new.
 */

#ifndef DNASIM_ALIGN_EDIT_SCRIPT_HH
#define DNASIM_ALIGN_EDIT_SCRIPT_HH

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "align/edit_distance.hh"
#include "base/rng.hh"
#include "obs/stats.hh"

namespace dnasim
{

/** Which implementation serves editOpsInto(). */
enum class EditOpsEngine : uint8_t
{
    Auto,      ///< bit-vector / banded tiers with reference fallback
    Reference, ///< flat O(n*m) DP only (the escape hatch)
};

/**
 * The engine in effect: the test override if set, else
 * DNASIM_EDITOPS from the environment (read once), else Auto.
 * Unknown environment values warn once and mean Auto.
 */
EditOpsEngine editOpsEngine();

/**
 * Force an engine (pass std::nullopt to return to the environment
 * selection). For tests and the --editops CLI flag.
 */
void setEditOpsEngineOverride(std::optional<EditOpsEngine> engine);

/** Parse "auto" / "reference"; nullopt on anything else. */
std::optional<EditOpsEngine> parseEditOpsEngine(std::string_view name);

namespace align_detail
{

/** Observability for the edit-script engine (dnasim.stats.v1). */
struct EditOpsStats
{
    obs::Counter &bitvec;       ///< scripts served by Tier A
    obs::Counter &banded;       ///< scripts served by Tier B
    obs::Counter &band_retries; ///< band-escape refills (defensive)
    obs::Counter &fallback;     ///< scripts served by the flat DP
    obs::Counter &cells;        ///< cell-equivalents computed
    obs::Counter &shrinks;      ///< oversized scratch releases

    static EditOpsStats &get();
};

/**
 * The original flat-matrix DP + backtrace — the reference
 * implementation both tiers are pinned to. Exposed for the
 * equivalence tests and the DNASIM_EDITOPS=reference escape hatch.
 */
void editOpsReference(std::string_view ref, std::string_view copy,
                      Rng *rng, std::vector<EditOp> &out);

/**
 * Tier A: deterministic bit-vector edit script. @p pattern must be
 * built from @p ref and be packed() (pure ACGT); both strands must
 * be non-empty. Produces exactly the script editOpsReference()
 * yields with a null Rng.
 */
void editOpsBitVector(const MyersPattern &pattern,
                      std::string_view ref, std::string_view copy,
                      std::vector<EditOp> &out);

/**
 * Tier B: banded edit script with random tie-breaking at the given
 * band half-width. Returns false — leaving @p out unspecified and
 * @p rng UNCONSUMED — when the banded distance escapes the band
 * (band < true distance), in which case the caller must widen and
 * retry. On success the script and the Rng draws are identical to
 * editOpsReference() with the same Rng stream.
 */
bool editOpsBandedWithBand(std::string_view ref,
                           std::string_view copy, size_t band,
                           Rng &rng, std::vector<EditOp> &out);

} // namespace align_detail

} // namespace dnasim

#endif // DNASIM_ALIGN_EDIT_SCRIPT_HH
