#include "align/gestalt.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <vector>

#include "align/path_stats.hh"
#include "base/logging.hh"
#include "base/packed.hh"

namespace dnasim
{

namespace
{

/**
 * Reused buffers for the longest-match recursion. One recursive
 * matchingBlocks() call used to allocate two fresh DP rows per
 * longestMatch() invocation — O(log n) allocations per pair, times
 * millions of pairs in the profiler — so all scratch is hoisted here
 * and kept thread-local by the entry points.
 */
struct GestaltScratch
{
    /// Match masks over the current b-subrange: bit (j - b_lo) of
    /// eq[c] is set iff b[j] has base code c.
    std::array<std::vector<uint64_t>, kNumBases> eq;
    /// Suffix-run lengths for the current and previous row
    /// (bit-parallel path). Stale entries are never read: prev[jj-1]
    /// is consulted only when the previous row matched at jj-1, i.e.
    /// when that cell was freshly written.
    std::vector<uint32_t> prev, cur;
    /// Dense rows for the scalar fallback (non-ACGT content).
    std::vector<size_t> sprev, scur;
};

/**
 * Scalar longest common substring of a[a_lo, a_hi) and b[b_lo, b_hi)
 * — the original character DP, kept as the exact fallback for
 * strings with non-ACGT content. Earliest occurrence on ties
 * (difflib semantics, modulo its junk heuristics, which do not apply
 * to a 4-letter alphabet).
 */
MatchBlock
longestMatchScalar(std::string_view a, std::string_view b, size_t a_lo,
                   size_t a_hi, size_t b_lo, size_t b_hi,
                   GestaltScratch &scratch)
{
    MatchBlock best{a_lo, b_lo, 0};
    if (a_lo >= a_hi || b_lo >= b_hi)
        return best;

    // lengths[j]: length of the common suffix ending at (i, j).
    auto &prev = scratch.sprev;
    auto &cur = scratch.scur;
    prev.assign(b_hi - b_lo + 1, 0);
    cur.assign(b_hi - b_lo + 1, 0);
    for (size_t i = a_lo; i < a_hi; ++i) {
        for (size_t j = b_lo; j < b_hi; ++j) {
            size_t jj = j - b_lo + 1;
            if (a[i] == b[j]) {
                cur[jj] = prev[jj - 1] + 1;
                if (cur[jj] > best.len) {
                    best.len = cur[jj];
                    best.a_pos = i + 1 - cur[jj];
                    best.b_pos = j + 1 - cur[jj];
                }
            } else {
                cur[jj] = 0;
            }
        }
        std::swap(prev, cur);
        std::fill(cur.begin(), cur.end(), 0);
    }
    return best;
}

/**
 * Bit-parallel longest common substring for ACGT content.
 *
 * Per-base match masks over the b-subrange are built once; each row
 * then visits only the positions where a[i] == b[j] (about a quarter
 * of the columns on a 4-letter alphabet) by iterating the set bits
 * of the mask. The diagonal predecessor's validity is itself a mask
 * lookup — prev[jj-1] holds a live value exactly when bit jj-1 of
 * the previous row's mask is set — so neither row is ever cleared.
 *
 * Traversal order (i ascending, j ascending, strictly-greater
 * updates) matches the scalar DP, so tie-breaking is identical.
 */
MatchBlock
longestMatchBits(std::string_view a, std::string_view b, size_t a_lo,
                 size_t a_hi, size_t b_lo, size_t b_hi,
                 GestaltScratch &scratch)
{
    MatchBlock best{a_lo, b_lo, 0};
    if (a_lo >= a_hi || b_lo >= b_hi)
        return best;

    const size_t width = b_hi - b_lo;
    const size_t words = (width + 63) / 64;
    for (auto &mask : scratch.eq)
        mask.assign(words, 0);
    for (size_t j = b_lo; j < b_hi; ++j) {
        const uint8_t code =
            kCharToCode[static_cast<unsigned char>(b[j])];
        const size_t jj = j - b_lo;
        scratch.eq[code][jj / 64] |= uint64_t{1} << (jj % 64);
    }

    auto &prev = scratch.prev;
    auto &cur = scratch.cur;
    if (prev.size() < width) {
        prev.resize(width);
        cur.resize(width);
    }

    uint8_t prev_code = kInvalidCode; // no previous row yet
    for (size_t i = a_lo; i < a_hi; ++i) {
        const uint8_t code =
            kCharToCode[static_cast<unsigned char>(a[i])];
        const auto &row = scratch.eq[code];
        const uint64_t *diag = prev_code != kInvalidCode
                                   ? scratch.eq[prev_code].data()
                                   : nullptr;
        for (size_t w = 0; w < words; ++w) {
            uint64_t bits = row[w];
            while (bits != 0) {
                const size_t jj =
                    w * 64 +
                    static_cast<size_t>(std::countr_zero(bits));
                bits &= bits - 1;
                uint32_t len = 1;
                if (jj > 0 && diag != nullptr &&
                    ((diag[(jj - 1) / 64] >> ((jj - 1) % 64)) & 1u))
                    len = prev[jj - 1] + 1;
                cur[jj] = len;
                if (len > best.len) {
                    best.len = len;
                    best.a_pos = i + 1 - len;
                    best.b_pos = b_lo + jj + 1 - len;
                }
            }
        }
        std::swap(prev, cur);
        prev_code = code;
    }
    return best;
}

void
recurse(std::string_view a, std::string_view b, size_t a_lo, size_t a_hi,
        size_t b_lo, size_t b_hi, std::vector<MatchBlock> &out,
        GestaltScratch &scratch, bool use_bits)
{
    MatchBlock m =
        use_bits
            ? longestMatchBits(a, b, a_lo, a_hi, b_lo, b_hi, scratch)
            : longestMatchScalar(a, b, a_lo, a_hi, b_lo, b_hi,
                                 scratch);
    if (m.len == 0)
        return;
    recurse(a, b, a_lo, m.a_pos, b_lo, m.b_pos, out, scratch,
            use_bits);
    out.push_back(m);
    recurse(a, b, m.a_pos + m.len, a_hi, m.b_pos + m.len, b_hi, out,
            scratch, use_bits);
}

bool
allBases(std::string_view s)
{
    for (char c : s)
        if (kCharToCode[static_cast<unsigned char>(c)] == kInvalidCode)
            return false;
    return true;
}

} // anonymous namespace

std::vector<MatchBlock>
matchingBlocks(std::string_view a, std::string_view b)
{
    thread_local GestaltScratch scratch;
    auto &ps = align_detail::PathStats::get();
    // Non-ACGT characters (e.g. N calls in real FASTQ data) fall
    // back to the scalar DP for the whole pair: a stray character
    // could legitimately match an identical stray character, which
    // the 4-row masks cannot represent.
    const bool use_bits = allBases(a) && allBases(b);
    (use_bits ? ps.packed_fastpath : ps.char_fallback).inc();

    std::vector<MatchBlock> blocks;
    recurse(a, b, 0, a.size(), 0, b.size(), blocks, scratch,
            use_bits);
    blocks.push_back({a.size(), b.size(), 0}); // terminating sentinel
    return blocks;
}

double
gestaltScore(std::string_view a, std::string_view b)
{
    if (a.empty() && b.empty())
        return 1.0;
    size_t matched = 0;
    for (const auto &blk : matchingBlocks(a, b))
        matched += blk.len;
    return 2.0 * static_cast<double>(matched) /
           static_cast<double>(a.size() + b.size());
}

std::vector<AlignedGap>
alignedGaps(std::string_view a, std::string_view b)
{
    std::vector<AlignedGap> gaps;
    size_t a_cur = 0, b_cur = 0;
    for (const auto &blk : matchingBlocks(a, b)) {
        size_t a_len = blk.a_pos - a_cur;
        size_t b_len = blk.b_pos - b_cur;
        if (a_len > 0 || b_len > 0) {
            AlignedGap gap;
            gap.a_pos = a_cur;
            gap.a_len = a_len;
            gap.b_pos = b_cur;
            gap.b_len = b_len;
            if (a_len > 0 && b_len > 0)
                gap.type = GapType::Substitution;
            else if (a_len > 0)
                gap.type = GapType::Deletion;
            else
                gap.type = GapType::Insertion;
            gaps.push_back(gap);
        }
        a_cur = blk.a_pos + blk.len;
        b_cur = blk.b_pos + blk.len;
    }
    return gaps;
}

std::vector<size_t>
gestaltErrorPositions(std::string_view ref, std::string_view copy)
{
    std::vector<size_t> positions;
    for (const auto &gap : alignedGaps(ref, copy)) {
        if (gap.type == GapType::Insertion) {
            size_t pos = gap.a_pos;
            if (!ref.empty())
                pos = std::min(pos, ref.size() - 1);
            positions.push_back(pos);
        } else {
            // Substitution gaps may be unequal in length; attribute
            // every affected reference position plus, if the copy
            // side is longer, the origin position once per extra
            // inserted base would overcount — the paper counts
            // sources of misalignment, so each reference position in
            // the gap counts once.
            for (size_t k = 0; k < gap.a_len; ++k)
                positions.push_back(gap.a_pos + k);
        }
    }
    return positions;
}

} // namespace dnasim
