#include "align/gestalt.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"

namespace dnasim
{

namespace
{

/**
 * Longest common substring of a[a_lo, a_hi) and b[b_lo, b_hi),
 * earliest occurrence on ties (difflib semantics, modulo its junk
 * heuristics, which do not apply to a 4-letter alphabet).
 */
MatchBlock
longestMatch(std::string_view a, std::string_view b, size_t a_lo,
             size_t a_hi, size_t b_lo, size_t b_hi)
{
    MatchBlock best{a_lo, b_lo, 0};
    if (a_lo >= a_hi || b_lo >= b_hi)
        return best;

    // lengths[j]: length of the common suffix ending at (i, j).
    std::vector<size_t> prev(b_hi - b_lo + 1, 0), cur(b_hi - b_lo + 1, 0);
    for (size_t i = a_lo; i < a_hi; ++i) {
        for (size_t j = b_lo; j < b_hi; ++j) {
            size_t jj = j - b_lo + 1;
            if (a[i] == b[j]) {
                cur[jj] = prev[jj - 1] + 1;
                if (cur[jj] > best.len) {
                    best.len = cur[jj];
                    best.a_pos = i + 1 - cur[jj];
                    best.b_pos = j + 1 - cur[jj];
                }
            } else {
                cur[jj] = 0;
            }
        }
        std::swap(prev, cur);
        std::fill(cur.begin(), cur.end(), 0);
    }
    return best;
}

void
recurse(std::string_view a, std::string_view b, size_t a_lo, size_t a_hi,
        size_t b_lo, size_t b_hi, std::vector<MatchBlock> &out)
{
    MatchBlock m = longestMatch(a, b, a_lo, a_hi, b_lo, b_hi);
    if (m.len == 0)
        return;
    recurse(a, b, a_lo, m.a_pos, b_lo, m.b_pos, out);
    out.push_back(m);
    recurse(a, b, m.a_pos + m.len, a_hi, m.b_pos + m.len, b_hi, out);
}

} // anonymous namespace

std::vector<MatchBlock>
matchingBlocks(std::string_view a, std::string_view b)
{
    std::vector<MatchBlock> blocks;
    recurse(a, b, 0, a.size(), 0, b.size(), blocks);
    blocks.push_back({a.size(), b.size(), 0}); // terminating sentinel
    return blocks;
}

double
gestaltScore(std::string_view a, std::string_view b)
{
    if (a.empty() && b.empty())
        return 1.0;
    size_t matched = 0;
    for (const auto &blk : matchingBlocks(a, b))
        matched += blk.len;
    return 2.0 * static_cast<double>(matched) /
           static_cast<double>(a.size() + b.size());
}

std::vector<AlignedGap>
alignedGaps(std::string_view a, std::string_view b)
{
    std::vector<AlignedGap> gaps;
    size_t a_cur = 0, b_cur = 0;
    for (const auto &blk : matchingBlocks(a, b)) {
        size_t a_len = blk.a_pos - a_cur;
        size_t b_len = blk.b_pos - b_cur;
        if (a_len > 0 || b_len > 0) {
            AlignedGap gap;
            gap.a_pos = a_cur;
            gap.a_len = a_len;
            gap.b_pos = b_cur;
            gap.b_len = b_len;
            if (a_len > 0 && b_len > 0)
                gap.type = GapType::Substitution;
            else if (a_len > 0)
                gap.type = GapType::Deletion;
            else
                gap.type = GapType::Insertion;
            gaps.push_back(gap);
        }
        a_cur = blk.a_pos + blk.len;
        b_cur = blk.b_pos + blk.len;
    }
    return gaps;
}

std::vector<size_t>
gestaltErrorPositions(std::string_view ref, std::string_view copy)
{
    std::vector<size_t> positions;
    for (const auto &gap : alignedGaps(ref, copy)) {
        if (gap.type == GapType::Insertion) {
            size_t pos = gap.a_pos;
            if (!ref.empty())
                pos = std::min(pos, ref.size() - 1);
            positions.push_back(pos);
        } else {
            // Substitution gaps may be unequal in length; attribute
            // every affected reference position plus, if the copy
            // side is longer, the origin position once per extra
            // inserted base would overcount — the paper counts
            // sources of misalignment, so each reference position in
            // the gap counts once.
            for (size_t k = 0; k < gap.a_len; ++k)
                positions.push_back(gap.a_pos + k);
        }
    }
    return positions;
}

} // namespace dnasim
