/**
 * @file
 * Levenshtein distance and edit-operation backtraces.
 *
 * The paper's Appendix B algorithm recovers, for a reference strand
 * and one of its noisy copies, the sequence of channel error
 * operations (insertions, deletions, substitutions) with maximum
 * likelihood, using minimum edit distance as the proxy and breaking
 * ties uniformly at random (the paper's ChooseRandomAndInsertOp).
 *
 * The paper presents the recursion directly (exponential); we
 * implement the equivalent O(|a|*|b|) dynamic program with a
 * backtrace. The recovered operations drive the data-driven
 * calibration of every error-model parameter (core/profiler.hh).
 */

#ifndef DNASIM_ALIGN_EDIT_DISTANCE_HH
#define DNASIM_ALIGN_EDIT_DISTANCE_HH

#include <string>
#include <string_view>
#include <vector>

#include "base/dna.hh"
#include "base/packed.hh"
#include "base/rng.hh"

namespace dnasim
{

namespace align_detail
{
struct PatternAccess;
}

/** The kind of a single edit operation transforming reference->copy. */
enum class EditOpType : uint8_t
{
    Equal,      ///< reference base copied through unchanged
    Substitute, ///< reference base replaced by a different base
    Delete,     ///< reference base missing from the copy
    Insert,     ///< extra base present in the copy
};

/** Printable name of an EditOpType. */
const char *editOpTypeName(EditOpType t);

/**
 * One edit operation, anchored to a reference position.
 *
 * For Equal/Substitute/Delete, @c ref_pos is the index of the
 * affected reference base and @c ref_base its value. For Insert,
 * @c ref_pos is the reference index *before which* the extra base
 * appears (== reference length for an append) and @c ref_base is 0.
 * @c copy_base is the base observed in the copy (0 for Delete).
 */
struct EditOp
{
    EditOpType type = EditOpType::Equal;
    size_t ref_pos = 0;
    char ref_base = '\0';
    char copy_base = '\0';

    bool operator==(const EditOp &) const = default;
};

/**
 * Plain Levenshtein distance (unit costs).
 *
 * Dispatches to the Myers bit-parallel kernel (64 DP cells per word)
 * for typical strand lengths, and to the adaptive banded scalar DP
 * for very long inputs where the band (proportional to the true
 * distance) is narrower than the bit-parallel column.
 */
size_t levenshtein(std::string_view a, std::string_view b);

/**
 * Myers (1999) bit-parallel Levenshtein distance: the DP column is
 * packed into ceil(min_len/64) machine words and advanced one text
 * character at a time. Exact for all inputs; fastest when the
 * shorter string fits few words. Exposed for tests and benches —
 * call levenshtein() in normal code.
 */
size_t levenshteinBitParallel(std::string_view a, std::string_view b);

/**
 * Banded scalar Levenshtein: only cells with |i - j| <= band are
 * computed. The result equals the true distance whenever the true
 * distance is at most @p band (any optimal path then stays inside
 * the band); otherwise it is an overestimate the caller must
 * reject. Exposed for tests and benches — call levenshtein() in
 * normal code.
 */
size_t levenshteinBanded(std::string_view a, std::string_view b,
                         size_t band);

/**
 * A Myers bit-parallel pattern with precomputed match tables.
 *
 * The free levenshtein* functions rebuild the per-character match
 * bit-vectors (Peq) on every call. When one string is compared
 * against many others — a cluster representative probed by thousands
 * of reads, a consensus estimate scored against every copy — the
 * tables can be built once and reused. A MyersPattern owns the Peq
 * rows for the four bases (built from a character strand or directly
 * from a PackedStrand's 2-bit words) and answers distance queries
 * against arbitrary texts with zero per-call allocation.
 *
 * Distances are exact and identical to levenshtein() for all
 * inputs. Patterns containing non-ACGT characters fall back to the
 * generic kernel (and are flagged in the align.char_fallback
 * counter); texts may contain arbitrary characters either way.
 */
class MyersPattern
{
  public:
    MyersPattern() = default;

    /** Build the match tables for @p pattern. */
    explicit MyersPattern(std::string_view pattern);

    /** Build the match tables from 2-bit packed words. */
    explicit MyersPattern(const PackedStrand &pattern);

    /**
     * Rebuild the match tables for a new pattern, reusing the Peq
     * storage. The batch call sites probe a different pattern per
     * read; reassigning one thread-local MyersPattern keeps that
     * loop allocation-free once capacity has grown.
     */
    void assign(std::string_view pattern);

    /** Pattern length in bases. */
    size_t size() const { return m_; }

    /** False when the pattern required the non-ACGT fallback. */
    bool packed() const { return fallback_.empty(); }

    /** Exact Levenshtein distance between the pattern and @p text. */
    size_t distance(std::string_view text) const;

    /**
     * Thresholded distance: the exact distance when it is at most
     * @p limit, otherwise some value strictly greater than @p limit
     * (the kernel abandons a column as soon as the running score
     * minus the remaining text length certifies the bound). Callers
     * comparing the result against @p limit get exactly the same
     * accept/reject decisions as with distance().
     */
    size_t distanceBounded(std::string_view text, size_t limit) const;

  private:
    /// The batch kernels (align/myers_batch.cc) share the pattern's
    /// Peq rows across SIMD lanes instead of rebuilding them.
    friend struct align_detail::PatternAccess;

    void build(std::string_view pattern);
    size_t run(std::string_view text, size_t limit) const;

    size_t m_ = 0;
    size_t blocks_ = 0;
    /// Peq rows, kNumBases * blocks_: match bits of pattern slice b
    /// for base code c live at peq_[c * blocks_ + b].
    std::vector<uint64_t> peq_;
    /// Pattern copy, only set for non-ACGT patterns (generic path).
    std::string fallback_;
};

/**
 * Recover a minimum-cost edit script transforming @p ref into
 * @p copy.
 *
 * When multiple scripts achieve the minimum cost, @p rng (if
 * non-null) selects uniformly among the locally optimal predecessors
 * at each backtrace step, matching Appendix B; with a null @p rng the
 * choice is deterministic (diagonal first, then deletion, then
 * insertion — the paper's worked example prefers the deletion
 * explanation for AGCG -> AGG).
 *
 * The returned script lists operations in reference order and always
 * includes Equal ops, so its Equal/Substitute/Delete entries cover
 * every reference position exactly once.
 */
std::vector<EditOp> editOps(std::string_view ref, std::string_view copy,
                            Rng *rng = nullptr);

/**
 * editOps() into a caller-provided buffer (cleared first). The DP
 * matrix lives in reused thread-local scratch, so a steady-state
 * caller (consensus voting iterates this over every copy of every
 * cluster) performs no per-call heap allocation.
 */
void editOpsInto(std::string_view ref, std::string_view copy, Rng *rng,
                 std::vector<EditOp> &out);

/**
 * editOpsInto() reusing a prebuilt MyersPattern over @p ref
 * (pattern.size() must equal ref.size()). Clustered callers that
 * align many copies against one estimate build the pattern's Peq
 * tables once and amortize them across every copy; the engine also
 * uses the pattern to seed the Tier-B band (see align/edit_script.hh).
 */
void editOpsInto(const MyersPattern &pattern, std::string_view ref,
                 std::string_view copy, Rng *rng,
                 std::vector<EditOp> &out);

/** Number of non-Equal operations in a script. */
size_t numErrors(const std::vector<EditOp> &ops);

/** Apply an edit script to @p ref, reproducing the copy. */
Strand applyEditOps(std::string_view ref, const std::vector<EditOp> &ops);

/**
 * A maximal run of consecutive deletions within a script.
 * Long deletions (length >= 2) are a calibrated model parameter.
 */
struct DeletionRun
{
    size_t ref_pos = 0; ///< first deleted reference position
    size_t length = 0;  ///< number of consecutive deleted bases
};

/** Extract maximal runs of consecutive Delete ops from a script. */
std::vector<DeletionRun> deletionRuns(const std::vector<EditOp> &ops);

} // namespace dnasim

#endif // DNASIM_ALIGN_EDIT_DISTANCE_HH
