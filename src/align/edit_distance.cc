#include "align/edit_distance.hh"

#include <algorithm>
#include <array>
#include <limits>

#include "align/path_stats.hh"
#include "base/logging.hh"

namespace dnasim
{

const char *
editOpTypeName(EditOpType t)
{
    switch (t) {
      case EditOpType::Equal: return "equal";
      case EditOpType::Substitute: return "sub";
      case EditOpType::Delete: return "del";
      case EditOpType::Insert: return "ins";
    }
    return "?";
}

namespace
{

constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;

} // anonymous namespace

size_t
levenshteinBanded(std::string_view a, std::string_view b, size_t band)
{
    const size_t n = a.size(), m = b.size();
    // Degenerate and out-of-band shapes first. When either string is
    // empty the distance is known exactly; when the length gap
    // exceeds the band, the final column m lies outside every row's
    // band, so the cell the loop would return was never written —
    // report a certified overestimate instead of stale scratch.
    if (n == 0 || m == 0)
        return n + m;
    if (m > n + band || n > m + band)
        return kInf;
    // Reused scratch rows: this function runs millions of times per
    // experiment, so per-call allocation would dominate. Each row
    // pass writes every cell the next pass reads, so stale contents
    // are harmless once the first row is initialized below.
    thread_local std::vector<size_t> prev, cur;
    prev.resize(m + 1);
    cur.resize(m + 1);
    for (size_t j = 0; j <= std::min(m, band); ++j)
        prev[j] = j;
    if (band + 1 <= m)
        prev[band + 1] = kInf;
    for (size_t i = 1; i <= n; ++i) {
        size_t lo = i > band ? i - band : 1;
        size_t hi = std::min(m, i + band);
        if (lo > hi)
            return kInf;
        // Only the band neighbourhood needs resetting: the next
        // row never reads outside [lo - 1, hi + 1].
        for (size_t j = lo > 0 ? lo - 1 : 0;
             j <= std::min(m, hi + 1); ++j) {
            cur[j] = kInf;
        }
        if (lo == 1 && i <= band)
            cur[0] = i;
        for (size_t j = lo; j <= hi; ++j) {
            size_t diag =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            size_t up = prev[j] < kInf ? prev[j] + 1 : kInf;
            size_t left = cur[j - 1] < kInf ? cur[j - 1] + 1 : kInf;
            cur[j] = std::min({diag, up, left});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

namespace
{

/**
 * One Myers block step: advance a 64-row slice of the DP column by
 * one text character. @p pv / @p mv are the slice's vertical
 * positive/negative delta bit-vectors, @p eq the pattern-match
 * bit-vector for the character, @p hin the horizontal delta entering
 * the slice's top row (-1, 0 or +1). Returns the horizontal delta
 * leaving through the row selected by @p out_mask (the slice's
 * bottom row, or the pattern's final row in the last, partial
 * slice — bits above it carry junk that never propagates downward).
 */
inline int
myersAdvanceBlock(uint64_t &pv, uint64_t &mv, uint64_t eq, int hin,
                  uint64_t out_mask)
{
    const uint64_t hin_neg = hin < 0 ? 1u : 0u;
    const uint64_t xv = eq | mv;
    eq |= hin_neg;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;

    int hout = 0;
    if (ph & out_mask)
        hout = 1;
    else if (mh & out_mask)
        hout = -1;

    ph = (ph << 1) | (hin > 0 ? 1u : 0u);
    mh = (mh << 1) | hin_neg;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
    return hout;
}

/** Single-word Myers kernel for patterns of at most 64 characters. */
size_t
myersDistance64(std::string_view pat, std::string_view txt)
{
    // Pattern-match bit-vectors, kept all-zero between calls: bits
    // are set for the pattern's characters below and cleared again
    // before returning, so only O(|pat|) entries are touched.
    thread_local std::array<uint64_t, 256> peq{};

    const size_t m = pat.size();
    for (size_t i = 0; i < m; ++i)
        peq[static_cast<unsigned char>(pat[i])] |= uint64_t{1} << i;

    uint64_t pv = ~uint64_t{0};
    uint64_t mv = 0;
    size_t score = m;
    const uint64_t last = uint64_t{1} << (m - 1);
    for (char tc : txt) {
        int hout = myersAdvanceBlock(
            pv, mv, peq[static_cast<unsigned char>(tc)], 1, last);
        score = static_cast<size_t>(
            static_cast<int64_t>(score) + hout);
    }

    for (size_t i = 0; i < m; ++i)
        peq[static_cast<unsigned char>(pat[i])] = 0;
    return score;
}

/** Multi-word Myers kernel for patterns longer than 64 characters. */
size_t
myersDistanceBlocked(std::string_view pat, std::string_view txt)
{
    const size_t m = pat.size();
    const size_t blocks = (m + 63) / 64;

    // peq[c * blocks + b]: match bits of pattern slice b for
    // character c. Kept all-zero between calls (see above); resizing
    // value-initializes new entries to zero.
    thread_local std::vector<uint64_t> peq;
    if (peq.size() < 256 * blocks)
        peq.resize(256 * blocks, 0);
    for (size_t i = 0; i < m; ++i) {
        peq[static_cast<unsigned char>(pat[i]) * blocks + i / 64] |=
            uint64_t{1} << (i % 64);
    }

    thread_local std::vector<uint64_t> pv, mv;
    pv.assign(blocks, ~uint64_t{0});
    mv.assign(blocks, 0);

    size_t score = m;
    const uint64_t top = uint64_t{1} << 63;
    const uint64_t final_row = uint64_t{1} << ((m - 1) % 64);
    for (char tc : txt) {
        const uint64_t *eq =
            &peq[static_cast<unsigned char>(tc) * blocks];
        int hin = 1;
        for (size_t b = 0; b + 1 < blocks; ++b)
            hin = myersAdvanceBlock(pv[b], mv[b], eq[b], hin, top);
        int hout = myersAdvanceBlock(pv[blocks - 1], mv[blocks - 1],
                                     eq[blocks - 1], hin, final_row);
        score = static_cast<size_t>(
            static_cast<int64_t>(score) + hout);
    }

    for (size_t i = 0; i < m; ++i)
        peq[static_cast<unsigned char>(pat[i]) * blocks + i / 64] = 0;
    return score;
}

/**
 * Above this pattern length the adaptive banded scalar DP takes
 * over: channel pairs are close, so its O(n * distance) beats the
 * bit-parallel O(n * m / 64) once m / 64 exceeds typical bands.
 */
constexpr size_t kMaxBitParallelPattern = 4096;

} // anonymous namespace

size_t
levenshteinBitParallel(std::string_view a, std::string_view b)
{
    // The shorter string becomes the pattern so the column spans as
    // few words as possible (Levenshtein is symmetric).
    std::string_view pat = a.size() <= b.size() ? a : b;
    std::string_view txt = a.size() <= b.size() ? b : a;
    if (pat.empty())
        return txt.size();
    return pat.size() <= 64 ? myersDistance64(pat, txt)
                            : myersDistanceBlocked(pat, txt);
}

MyersPattern::MyersPattern(std::string_view pattern)
{
    build(pattern);
}

MyersPattern::MyersPattern(const PackedStrand &pattern)
{
    // Peq built straight from the 2-bit words: each word yields 32
    // codes without touching character data.
    m_ = pattern.size();
    blocks_ = m_ == 0 ? 0 : (m_ + 63) / 64;
    peq_.assign(kNumBases * blocks_, 0);
    const auto words = pattern.words();
    size_t i = 0;
    for (size_t w = 0; w < words.size(); ++w) {
        uint64_t word = words[w];
        const size_t stop =
            std::min(m_, (w + 1) * PackedStrand::kBasesPerWord);
        for (; i < stop; ++i, word >>= 2) {
            peq_[(word & 3u) * blocks_ + i / 64] |= uint64_t{1}
                                                    << (i % 64);
        }
    }
}

void
MyersPattern::assign(std::string_view pattern)
{
    fallback_.clear();
    build(pattern);
}

void
MyersPattern::build(std::string_view pattern)
{
    m_ = pattern.size();
    blocks_ = m_ == 0 ? 0 : (m_ + 63) / 64;
    peq_.assign(kNumBases * blocks_, 0);
    for (size_t i = 0; i < m_; ++i) {
        const uint8_t code =
            kCharToCode[static_cast<unsigned char>(pattern[i])];
        if (code == kInvalidCode) {
            // Non-ACGT pattern: remember it and serve queries
            // through the generic kernel.
            peq_.clear();
            fallback_.assign(pattern);
            return;
        }
        peq_[code * blocks_ + i / 64] |= uint64_t{1} << (i % 64);
    }
}

size_t
MyersPattern::run(std::string_view txt, size_t limit) const
{
    const size_t m = m_;
    const size_t n = txt.size();
    if (m == 0 || n == 0)
        return m + n;
    // Certified lower bound: every edit script needs at least the
    // length difference. Only useful for bounded queries; for exact
    // ones limit is saturated and the test never fires.
    const size_t diff = m > n ? m - n : n - m;
    if (diff > limit)
        return diff;

    size_t score = m;
    if (blocks_ == 1) {
        uint64_t pv = ~uint64_t{0};
        uint64_t mv = 0;
        const uint64_t last = uint64_t{1} << (m - 1);
        for (size_t t = 0; t < n; ++t) {
            const uint8_t code =
                kCharToCode[static_cast<unsigned char>(txt[t])];
            const uint64_t eq = code != kInvalidCode ? peq_[code] : 0;
            const int hout = myersAdvanceBlock(pv, mv, eq, 1, last);
            score = static_cast<size_t>(static_cast<int64_t>(score) +
                                        hout);
            // Each remaining text character lowers the score by at
            // most one; abandon once the bound is certified.
            const size_t remaining = n - t - 1;
            if (score > remaining && score - remaining > limit)
                return score - remaining;
        }
        return score;
    }

    thread_local std::vector<uint64_t> pv, mv;
    pv.assign(blocks_, ~uint64_t{0});
    mv.assign(blocks_, 0);
    thread_local std::vector<uint64_t> zeros;
    if (zeros.size() < blocks_)
        zeros.assign(blocks_, 0);

    const uint64_t top = uint64_t{1} << 63;
    const uint64_t final_row = uint64_t{1} << ((m - 1) % 64);
    for (size_t t = 0; t < n; ++t) {
        const uint8_t code =
            kCharToCode[static_cast<unsigned char>(txt[t])];
        const uint64_t *eq = code != kInvalidCode
                                 ? &peq_[code * blocks_]
                                 : zeros.data();
        int hin = 1;
        for (size_t b = 0; b + 1 < blocks_; ++b)
            hin = myersAdvanceBlock(pv[b], mv[b], eq[b], hin, top);
        const int hout =
            myersAdvanceBlock(pv[blocks_ - 1], mv[blocks_ - 1],
                              eq[blocks_ - 1], hin, final_row);
        score =
            static_cast<size_t>(static_cast<int64_t>(score) + hout);
        const size_t remaining = n - t - 1;
        if (score > remaining && score - remaining > limit)
            return score - remaining;
    }
    return score;
}

size_t
MyersPattern::distance(std::string_view text) const
{
    auto &ps = align_detail::PathStats::get();
    if (!fallback_.empty()) {
        ps.char_fallback.inc();
        return levenshtein(fallback_, text);
    }
    ps.packed_fastpath.inc();
    return run(text, std::numeric_limits<size_t>::max());
}

size_t
MyersPattern::distanceBounded(std::string_view text,
                              size_t limit) const
{
    auto &ps = align_detail::PathStats::get();
    if (!fallback_.empty()) {
        ps.char_fallback.inc();
        return levenshtein(fallback_, text);
    }
    ps.packed_fastpath.inc();
    return run(text, limit);
}

size_t
levenshtein(std::string_view a, std::string_view b)
{
    const size_t n = a.size(), m = b.size();
    if (n == 0)
        return m;
    if (m == 0)
        return n;

    if (std::min(n, m) <= kMaxBitParallelPattern)
        return levenshteinBitParallel(a, b);

    // Very long strands: DNA-storage pairs are usually close (a few
    // percent edit distance); try a narrow band first and widen
    // until the result is certified (distance <= band means the
    // optimal path fits).
    size_t diff = n > m ? n - m : m - n;
    size_t band = std::max<size_t>(8, diff + 4);
    const size_t limit = std::max(n, m);
    for (;;) {
        size_t d = levenshteinBanded(a, b, band);
        if (d <= band)
            return d;
        if (band >= limit)
            return d; // full matrix already covered
        band = std::min(limit, band * 2);
    }
}

// editOps()/editOpsInto() live in edit_script.cc: the flat DP this
// file used to host survives there as editOpsReference(), behind the
// two-tier bit-vector/banded engine.

size_t
numErrors(const std::vector<EditOp> &ops)
{
    size_t n = 0;
    for (const auto &op : ops)
        if (op.type != EditOpType::Equal)
            ++n;
    return n;
}

Strand
applyEditOps(std::string_view ref, const std::vector<EditOp> &ops)
{
    Strand out;
    out.reserve(ref.size() + ops.size());
    size_t consumed = 0;
    for (const auto &op : ops) {
        switch (op.type) {
          case EditOpType::Equal:
          case EditOpType::Substitute:
            DNASIM_ASSERT(op.ref_pos == consumed && consumed < ref.size(),
                          "edit script out of order");
            out.push_back(op.copy_base);
            ++consumed;
            break;
          case EditOpType::Delete:
            DNASIM_ASSERT(op.ref_pos == consumed && consumed < ref.size(),
                          "edit script out of order");
            ++consumed;
            break;
          case EditOpType::Insert:
            DNASIM_ASSERT(op.ref_pos == consumed,
                          "edit script out of order");
            out.push_back(op.copy_base);
            break;
        }
    }
    DNASIM_ASSERT(consumed == ref.size(),
                  "edit script did not consume full reference");
    return out;
}

std::vector<DeletionRun>
deletionRuns(const std::vector<EditOp> &ops)
{
    std::vector<DeletionRun> runs;
    for (size_t k = 0; k < ops.size(); ++k) {
        if (ops[k].type != EditOpType::Delete)
            continue;
        DeletionRun run{ops[k].ref_pos, 1};
        while (k + 1 < ops.size() &&
               ops[k + 1].type == EditOpType::Delete) {
            ++k;
            ++run.length;
        }
        runs.push_back(run);
    }
    return runs;
}

} // namespace dnasim
