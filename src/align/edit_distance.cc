#include "align/edit_distance.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"

namespace dnasim
{

const char *
editOpTypeName(EditOpType t)
{
    switch (t) {
      case EditOpType::Equal: return "equal";
      case EditOpType::Substitute: return "sub";
      case EditOpType::Delete: return "del";
      case EditOpType::Insert: return "ins";
    }
    return "?";
}

namespace
{

constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;

/**
 * Banded Levenshtein: only cells with |i - j| <= band are computed.
 * The result equals the true distance whenever the true distance is
 * at most @p band (any optimal alignment path then stays inside the
 * band); otherwise it is an overestimate the caller must reject.
 */
size_t
levenshteinBanded(std::string_view a, std::string_view b, size_t band)
{
    const size_t n = a.size(), m = b.size();
    // Reused scratch rows: this function runs millions of times per
    // experiment, so per-call allocation would dominate. Each row
    // pass writes every cell the next pass reads, so stale contents
    // are harmless once the first row is initialized below.
    thread_local std::vector<size_t> prev, cur;
    prev.resize(m + 1);
    cur.resize(m + 1);
    for (size_t j = 0; j <= std::min(m, band); ++j)
        prev[j] = j;
    if (band + 1 <= m)
        prev[band + 1] = kInf;
    for (size_t i = 1; i <= n; ++i) {
        size_t lo = i > band ? i - band : 1;
        size_t hi = std::min(m, i + band);
        if (lo > hi)
            return kInf;
        // Only the band neighbourhood needs resetting: the next
        // row never reads outside [lo - 1, hi + 1].
        for (size_t j = lo > 0 ? lo - 1 : 0;
             j <= std::min(m, hi + 1); ++j) {
            cur[j] = kInf;
        }
        if (lo == 1 && i <= band)
            cur[0] = i;
        for (size_t j = lo; j <= hi; ++j) {
            size_t diag =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            size_t up = prev[j] < kInf ? prev[j] + 1 : kInf;
            size_t left = cur[j - 1] < kInf ? cur[j - 1] + 1 : kInf;
            cur[j] = std::min({diag, up, left});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

} // anonymous namespace

size_t
levenshtein(std::string_view a, std::string_view b)
{
    const size_t n = a.size(), m = b.size();
    if (n == 0)
        return m;
    if (m == 0)
        return n;

    // DNA-storage pairs are usually close (a few percent edit
    // distance); try a narrow band first and widen until the result
    // is certified (distance <= band means the optimal path fits).
    size_t diff = n > m ? n - m : m - n;
    size_t band = std::max<size_t>(8, diff + 4);
    const size_t limit = std::max(n, m);
    for (;;) {
        size_t d = levenshteinBanded(a, b, band);
        if (d <= band)
            return d;
        if (band >= limit)
            return d; // full matrix already covered
        band = std::min(limit, band * 2);
    }
}

std::vector<EditOp>
editOps(std::string_view ref, std::string_view copy, Rng *rng)
{
    const size_t n = ref.size(), m = copy.size();

    // dist[i][j]: edit distance between ref[:i] and copy[:j].
    std::vector<std::vector<uint32_t>> dist(
        n + 1, std::vector<uint32_t>(m + 1, 0));
    for (size_t i = 0; i <= n; ++i)
        dist[i][0] = static_cast<uint32_t>(i);
    for (size_t j = 0; j <= m; ++j)
        dist[0][j] = static_cast<uint32_t>(j);
    for (size_t i = 1; i <= n; ++i) {
        for (size_t j = 1; j <= m; ++j) {
            uint32_t diag =
                dist[i - 1][j - 1] + (ref[i - 1] == copy[j - 1] ? 0 : 1);
            dist[i][j] = std::min({diag, dist[i - 1][j] + 1,
                                   dist[i][j - 1] + 1});
        }
    }

    // Backtrace from (n, m), choosing among minimum-cost predecessors
    // either at random (Appendix B's ChooseRandomAndInsertOp) or with
    // a fixed diagonal > delete > insert preference.
    std::vector<EditOp> rev;
    rev.reserve(n + m);
    size_t i = n, j = m;
    while (i > 0 || j > 0) {
        // Candidate moves encoded as 0 = diagonal, 1 = delete (up),
        // 2 = insert (left).
        uint8_t candidates[3];
        size_t num = 0;
        if (i > 0 && j > 0) {
            uint32_t cost = ref[i - 1] == copy[j - 1] ? 0 : 1;
            if (dist[i][j] == dist[i - 1][j - 1] + cost)
                candidates[num++] = 0;
        }
        if (i > 0 && dist[i][j] == dist[i - 1][j] + 1)
            candidates[num++] = 1;
        if (j > 0 && dist[i][j] == dist[i][j - 1] + 1)
            candidates[num++] = 2;
        DNASIM_ASSERT(num > 0, "edit backtrace stuck at (", i, ",", j, ")");

        uint8_t move = candidates[0];
        if (rng && num > 1)
            move = candidates[rng->index(num)];

        switch (move) {
          case 0:
            --i;
            --j;
            rev.push_back({ref[i] == copy[j] ? EditOpType::Equal
                                             : EditOpType::Substitute,
                           i, ref[i], copy[j]});
            break;
          case 1:
            --i;
            rev.push_back({EditOpType::Delete, i, ref[i], '\0'});
            break;
          default:
            --j;
            rev.push_back({EditOpType::Insert, i, '\0', copy[j]});
            break;
        }
    }
    std::reverse(rev.begin(), rev.end());
    return rev;
}

size_t
numErrors(const std::vector<EditOp> &ops)
{
    size_t n = 0;
    for (const auto &op : ops)
        if (op.type != EditOpType::Equal)
            ++n;
    return n;
}

Strand
applyEditOps(std::string_view ref, const std::vector<EditOp> &ops)
{
    Strand out;
    out.reserve(ref.size() + ops.size());
    size_t consumed = 0;
    for (const auto &op : ops) {
        switch (op.type) {
          case EditOpType::Equal:
          case EditOpType::Substitute:
            DNASIM_ASSERT(op.ref_pos == consumed && consumed < ref.size(),
                          "edit script out of order");
            out.push_back(op.copy_base);
            ++consumed;
            break;
          case EditOpType::Delete:
            DNASIM_ASSERT(op.ref_pos == consumed && consumed < ref.size(),
                          "edit script out of order");
            ++consumed;
            break;
          case EditOpType::Insert:
            DNASIM_ASSERT(op.ref_pos == consumed,
                          "edit script out of order");
            out.push_back(op.copy_base);
            break;
        }
    }
    DNASIM_ASSERT(consumed == ref.size(),
                  "edit script did not consume full reference");
    return out;
}

std::vector<DeletionRun>
deletionRuns(const std::vector<EditOp> &ops)
{
    std::vector<DeletionRun> runs;
    for (size_t k = 0; k < ops.size(); ++k) {
        if (ops[k].type != EditOpType::Delete)
            continue;
        DeletionRun run{ops[k].ref_pos, 1};
        while (k + 1 < ops.size() &&
               ops[k + 1].type == EditOpType::Delete) {
            ++k;
            ++run.length;
        }
        runs.push_back(run);
    }
    return runs;
}

} // namespace dnasim
