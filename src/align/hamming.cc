#include "align/hamming.hh"

#include <algorithm>
#include <bit>
#include <cstring>

namespace dnasim
{

namespace
{

/** Number of non-zero bytes in @p x (classic SWAR zero-byte test). */
inline size_t
countDifferingBytes(uint64_t x)
{
    constexpr uint64_t k7f = 0x7f7f7f7f7f7f7f7fULL;
    // bit 7 of each byte of z is set iff that byte of x is zero.
    const uint64_t z = ~((((x & k7f) + k7f) | x) | k7f);
    return 8 - static_cast<size_t>(std::popcount(z));
}

} // anonymous namespace

size_t
hammingDistance(std::string_view a, std::string_view b)
{
    const size_t common = std::min(a.size(), b.size());
    size_t errors = std::max(a.size(), b.size()) - common;

    // Eight bases per iteration: XOR the raw characters and count
    // non-zero bytes. Identical to the per-character loop — a byte
    // differs iff the characters differ.
    size_t i = 0;
    for (; i + 8 <= common; i += 8) {
        uint64_t wa, wb;
        std::memcpy(&wa, a.data() + i, 8);
        std::memcpy(&wb, b.data() + i, 8);
        if (const uint64_t x = wa ^ wb)
            errors += countDifferingBytes(x);
    }
    for (; i < common; ++i)
        if (a[i] != b[i])
            ++errors;
    return errors;
}

size_t
hammingDistance(const PackedStrand &a, const PackedStrand &b)
{
    const size_t common = std::min(a.size(), b.size());
    size_t errors = std::max(a.size(), b.size()) - common;

    constexpr uint64_t kOdd = 0x5555555555555555ULL;
    const auto wa = a.words();
    const auto wb = b.words();
    const size_t full = common / PackedStrand::kBasesPerWord;
    for (size_t w = 0; w < full; ++w) {
        const uint64_t x = wa[w] ^ wb[w];
        // Fold each base's two difference bits onto the even bit.
        errors += static_cast<size_t>(std::popcount((x | (x >> 1)) &
                                                    kOdd));
    }
    const size_t tail = common % PackedStrand::kBasesPerWord;
    if (tail > 0) {
        // Mask off bases past the common prefix: the longer strand
        // has real (non-zero) codes there that are already accounted
        // for by the length-difference term.
        const uint64_t mask = (uint64_t{1} << (2 * tail)) - 1;
        const uint64_t x = (wa[full] ^ wb[full]) & mask;
        errors += static_cast<size_t>(std::popcount((x | (x >> 1)) &
                                                    kOdd));
    }
    return errors;
}

std::vector<size_t>
hammingErrorPositions(std::string_view ref, std::string_view copy)
{
    std::vector<size_t> positions;
    for (size_t i = 0; i < copy.size(); ++i)
        if (i >= ref.size() || copy[i] != ref[i])
            positions.push_back(i);
    return positions;
}

} // namespace dnasim
