#include "align/hamming.hh"

#include <algorithm>

namespace dnasim
{

size_t
hammingDistance(std::string_view a, std::string_view b)
{
    size_t common = std::min(a.size(), b.size());
    size_t errors = std::max(a.size(), b.size()) - common;
    for (size_t i = 0; i < common; ++i)
        if (a[i] != b[i])
            ++errors;
    return errors;
}

std::vector<size_t>
hammingErrorPositions(std::string_view ref, std::string_view copy)
{
    std::vector<size_t> positions;
    for (size_t i = 0; i < copy.size(); ++i)
        if (i >= ref.size() || copy[i] != ref[i])
            positions.push_back(i);
    return positions;
}

} // namespace dnasim
