/**
 * @file
 * AVX2 batch Myers kernel: up to 8 texts per invocation, one per
 * 64-bit lane, processed as two independent 4-lane halves.
 *
 * This translation unit is compiled with -mavx2 (see
 * src/align/CMakeLists.txt) and must only be entered through the
 * runtime dispatcher (align/simd_dispatch.hh), which guarantees the
 * CPU supports it. Every vector op below is the lane-wise image of
 * one line of the scalar myersAdvanceBlock()/MyersPattern::run()
 * pair in align/edit_distance.cc — see the lane-determinism argument
 * in DESIGN.md for why this yields bit-identical results.
 *
 * Throughput notes (the recurrence is a serial dependency chain per
 * character, so the kernel is latency- as much as throughput-bound,
 * and every spared op shows up directly):
 *  - two 4-lane halves advance in lock-step per character; their
 *    chains are independent, so the out-of-order core overlaps them
 *    (groups of <= 4 texts dispatch a single-half instantiation);
 *  - the hot loop is instantiated once per small block count (1..8,
 *    patterns up to 512 bp) so the pv/mv carry state is
 *    register-resident across the whole text scan;
 *  - Peq rows are fetched with plain loads + unpacks instead of
 *    vpgatherqq (microcoded on most cores);
 *  - horizontal deltas come from single shifts (the out mask is one
 *    bit, so `srl` yields the 0/1 delta directly);
 *  - `remaining` is carried as a decrementing vector register and
 *    doubles as the text-end test, and that test is skipped entirely
 *    until the shortest live text can end.
 */

#include "align/myers_batch_impl.hh"

#ifdef DNASIM_X86_SIMD_KERNELS

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>

namespace dnasim
{
namespace align_detail
{

namespace
{

/**
 * One block advance for four lanes: the vector image of the scalar
 * myersAdvanceBlock(). Updates pv/mv in place and chains the
 * horizontal delta through hin_pos/hin_neg. kFinal selects the
 * pattern's last block, whose out bit sits at final_shift instead of
 * bit 63.
 */
template <bool kFinal>
inline void
advanceBlock(__m256i &pv, __m256i &mv, __m256i eq0, __m128i final_shift,
             __m256i one, __m256i &hin_pos, __m256i &hin_neg,
             __m256i all_ones)
{
    const __m256i xv = _mm256_or_si256(eq0, mv);
    const __m256i eq = _mm256_or_si256(eq0, hin_neg);
    const __m256i xh = _mm256_or_si256(
        _mm256_xor_si256(
            _mm256_add_epi64(_mm256_and_si256(eq, pv), pv), pv),
        eq);
    __m256i ph = _mm256_or_si256(
        mv, _mm256_andnot_si256(_mm256_or_si256(xh, pv), all_ones));
    __m256i mh = _mm256_and_si256(pv, xh);

    // ph and mh are disjoint (mh ⊆ pv while ph ⊆ ~pv ∪ mv, and
    // mv ∩ pv = ∅), so both horizontal deltas can be extracted
    // independently — no lane needs the scalar kernel's
    // ph-before-mh priority. The out mask is a single bit, so a
    // right shift of that bit to position 0 IS the 0/1 delta.
    __m256i hout_pos, hout_neg;
    if constexpr (kFinal) {
        hout_pos =
            _mm256_and_si256(_mm256_srl_epi64(ph, final_shift), one);
        hout_neg =
            _mm256_and_si256(_mm256_srl_epi64(mh, final_shift), one);
    } else {
        hout_pos = _mm256_srli_epi64(ph, 63);
        hout_neg = _mm256_srli_epi64(mh, 63);
    }

    ph = _mm256_or_si256(_mm256_slli_epi64(ph, 1), hin_pos);
    mh = _mm256_or_si256(_mm256_slli_epi64(mh, 1), hin_neg);
    pv = _mm256_or_si256(
        mh, _mm256_andnot_si256(_mm256_or_si256(xv, ph), all_ones));
    mv = _mm256_and_si256(ph, xv);
    hin_pos = hout_pos;
    hin_neg = hout_neg;
}

/// Build the eq vector for one block from four per-lane row
/// pointers.
inline __m256i
loadEq(const uint64_t *const *row, size_t b)
{
    return _mm256_set_epi64x(static_cast<int64_t>(row[3][b]),
                             static_cast<int64_t>(row[2][b]),
                             static_cast<int64_t>(row[1][b]),
                             static_cast<int64_t>(row[0][b]));
}

/**
 * The full batch loop over G half-groups of four lanes each (G is 1
 * or 2). B > 0 is a compile-time block count: pv/mv live in local
 * arrays the unrolled loops keep in registers. B == 0 is the dynamic
 * fallback that round-trips pv/mv through the caller's scratch each
 * step. Lane layout always uses the 8-wide stride of the driver's
 * packing, G == 1 merely never touches the upper half.
 */
template <size_t B, size_t G>
void
runBatch(const BatchState &st)
{
    constexpr size_t W = 8;       ///< lane stride of codes/pv/mv
    constexpr size_t WH = 4;      ///< lanes per half
    constexpr size_t NL = WH * G; ///< lanes actually processed
    constexpr bool kResident = B != 0;
    constexpr size_t kB = kResident ? B : 1;
    constexpr uint32_t kAll = (1u << NL) - 1;
    const size_t blocks = kResident ? B : st.blocks;
    const __m256i zero = _mm256_setzero_si256();
    const __m256i all_ones = _mm256_set1_epi64x(-1);
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i limit_v = _mm256_set1_epi64x(st.limit);
    const __m128i final_shift =
        _mm_cvtsi32_si128(std::countr_zero(st.final_row));

    __m256i n_v[G], score_v[G], remaining_v[G], done_v[G];
    for (size_t g = 0; g < G; ++g) {
        n_v[g] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(st.n + g * WH));
        score_v[g] = _mm256_set1_epi64x(st.m);
        // remaining = n - t - 1, carried across steps; a lane's
        // text ends exactly when it hits -1.
        remaining_v[g] = _mm256_sub_epi64(n_v[g], one);
        const uint8_t *d = st.done + g * WH;
        done_v[g] =
            _mm256_set_epi64x(d[3] ? -1 : 0, d[2] ? -1 : 0,
                              d[1] ? -1 : 0, d[0] ? -1 : 0);
    }

    __m256i pvr[G][kB];
    __m256i mvr[G][kB];
    if constexpr (kResident) {
        for (size_t g = 0; g < G; ++g) {
            for (size_t b = 0; b < B; ++b) {
                pvr[g][b] = all_ones;
                mvr[g][b] = zero;
            }
        }
    } else {
        for (size_t g = 0; g < G; ++g) {
            for (size_t b = 0; b < blocks; ++b) {
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(st.pv + b * W +
                                                g * WH),
                    all_ones);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(st.mv + b * W +
                                                g * WH),
                    zero);
            }
        }
    }

    uint32_t done_bits = 0;
    for (size_t l = 0; l < NL; ++l)
        done_bits |= st.done[l] ? (1u << l) : 0u;

    // No lane can reach its text end before the shortest live text
    // does; the end test is dead weight until then.
    size_t min_end = st.max_n;
    for (size_t l = 0; l < NL; ++l)
        if (!st.done[l])
            min_end = std::min(
                min_end, static_cast<size_t>(st.n[l]));

    for (size_t t = 0; t < st.max_n && done_bits != kAll; ++t) {
        for (size_t g = 0; g < G; ++g) {
            // A fully-resolved half costs nothing per step; the
            // predicate flips at most twice over a whole scan, so
            // the branch predicts essentially perfectly. The halves
            // are source-ordered sequentially, but their chains are
            // independent — the out-of-order window overlaps them.
            constexpr uint32_t kHalf = 0xf;
            const uint32_t half_done =
                (done_bits >> (g * WH)) & kHalf;
            if (half_done == kHalf)
                continue;

            if (t >= min_end) {
                // Lanes whose text ends at this step: their column
                // has consumed the whole text, so the running score
                // is the final distance.
                const __m256i end_now = _mm256_andnot_si256(
                    done_v[g],
                    _mm256_cmpeq_epi64(remaining_v[g], all_ones));
                const uint32_t end_mask =
                    static_cast<uint32_t>(_mm256_movemask_pd(
                        _mm256_castsi256_pd(end_now)));
                if (end_mask != 0) {
                    alignas(32) int64_t sc[WH];
                    _mm256_store_si256(
                        reinterpret_cast<__m256i *>(sc), score_v[g]);
                    for (size_t l = 0; l < WH; ++l) {
                        if (end_mask & (1u << l)) {
                            st.result[g * WH + l] =
                                static_cast<uint64_t>(sc[l]);
                            st.done[g * WH + l] = 1;
                        }
                    }
                    done_v[g] = _mm256_or_si256(done_v[g], end_now);
                    done_bits |= end_mask << (g * WH);
                    if (((done_bits >> (g * WH)) & kHalf) == kHalf) {
                        remaining_v[g] =
                            _mm256_sub_epi64(remaining_v[g], one);
                        continue;
                    }
                }
            }

            // Per-lane Peq row bases for this character; the pad
            // row keeps finished and non-ACGT lanes at eq = 0.
            uint32_t packed_codes;
            std::memcpy(&packed_codes, st.codes + t * W + g * WH,
                        sizeof(packed_codes));
            const uint64_t *row[WH];
            for (size_t l = 0; l < WH; ++l)
                row[l] = st.peq +
                         ((packed_codes >> (l * 8)) & 0xffu) * blocks;

            __m256i hin_pos = one;
            __m256i hin_neg = zero;
            if constexpr (kResident) {
                // eq[b][l] = row_l[b], fetched two blocks per lane
                // at a time: four 128-bit loads + two unpacks yield
                // both block vectors.
                __m256i eqv[kB];
                size_t b = 0;
                for (; b + 1 < B; b += 2) {
                    const __m256i v02 = _mm256_set_m128i(
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(
                                row[2] + b)),
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(
                                row[0] + b)));
                    const __m256i v13 = _mm256_set_m128i(
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(
                                row[3] + b)),
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(
                                row[1] + b)));
                    eqv[b] = _mm256_unpacklo_epi64(v02, v13);
                    eqv[b + 1] = _mm256_unpackhi_epi64(v02, v13);
                }
                if (b < B)
                    eqv[b] = loadEq(row, b);
                for (size_t i = 0; i + 1 < B; ++i)
                    advanceBlock<false>(pvr[g][i], mvr[g][i], eqv[i],
                                        final_shift, one, hin_pos,
                                        hin_neg, all_ones);
                advanceBlock<true>(pvr[g][B - 1], mvr[g][B - 1],
                                   eqv[B - 1], final_shift, one,
                                   hin_pos, hin_neg, all_ones);
            } else {
                for (size_t b = 0; b < blocks; ++b) {
                    const __m256i eq0 = loadEq(row, b);
                    __m256i pv = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(
                            st.pv + b * W + g * WH));
                    __m256i mv = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(
                            st.mv + b * W + g * WH));
                    if (b + 1 == blocks) {
                        advanceBlock<true>(pv, mv, eq0, final_shift,
                                           one, hin_pos, hin_neg,
                                           all_ones);
                    } else {
                        advanceBlock<false>(pv, mv, eq0, final_shift,
                                            one, hin_pos, hin_neg,
                                            all_ones);
                    }
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(st.pv + b * W +
                                                    g * WH),
                        pv);
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(st.mv + b * W +
                                                    g * WH),
                        mv);
                }
            }
            score_v[g] = _mm256_add_epi64(
                score_v[g], _mm256_sub_epi64(hin_pos, hin_neg));

            // Lane-wise early abandon: the scalar kernel's
            // certified bound, evaluated with the same operands in
            // the same step.
            const __m256i over =
                _mm256_sub_epi64(score_v[g], remaining_v[g]);
            const __m256i abandon = _mm256_andnot_si256(
                done_v[g],
                _mm256_and_si256(
                    _mm256_cmpgt_epi64(score_v[g], remaining_v[g]),
                    _mm256_cmpgt_epi64(over, limit_v)));
            const uint32_t ab_mask =
                static_cast<uint32_t>(_mm256_movemask_pd(
                    _mm256_castsi256_pd(abandon)));
            if (ab_mask != 0) {
                alignas(32) int64_t ov[WH];
                _mm256_store_si256(reinterpret_cast<__m256i *>(ov),
                                   over);
                for (size_t l = 0; l < WH; ++l) {
                    if (ab_mask & (1u << l)) {
                        st.result[g * WH + l] =
                            static_cast<uint64_t>(ov[l]);
                        st.done[g * WH + l] = 1;
                    }
                }
                done_v[g] = _mm256_or_si256(done_v[g], abandon);
                done_bits |= ab_mask << (g * WH);
            }
            remaining_v[g] = _mm256_sub_epi64(remaining_v[g], one);
        }
    }

    // Lanes whose text spans all max_n steps finish here.
    if (done_bits != kAll) {
        alignas(32) int64_t sc[NL];
        for (size_t g = 0; g < G; ++g)
            _mm256_store_si256(
                reinterpret_cast<__m256i *>(sc + g * WH), score_v[g]);
        for (size_t l = 0; l < NL; ++l) {
            if (!(done_bits & (1u << l))) {
                st.result[l] = static_cast<uint64_t>(sc[l]);
                st.done[l] = 1;
            }
        }
    }
}

template <size_t B>
void
dispatchHalves(const BatchState &st)
{
    // The upper half idles whenever the driver filled <= 4 lanes;
    // the single-half instantiation skips its per-step work
    // entirely.
    const bool upper_idle =
        st.done[4] && st.done[5] && st.done[6] && st.done[7];
    if (upper_idle)
        runBatch<B, 1>(st);
    else
        runBatch<B, 2>(st);
}

} // anonymous namespace

void
runBatchAvx2(const BatchState &st)
{
    switch (st.blocks) {
    case 1: dispatchHalves<1>(st); return;
    case 2: dispatchHalves<2>(st); return;
    case 3: dispatchHalves<3>(st); return;
    case 4: dispatchHalves<4>(st); return;
    case 5: dispatchHalves<5>(st); return;
    case 6: dispatchHalves<6>(st); return;
    case 7: dispatchHalves<7>(st); return;
    case 8: dispatchHalves<8>(st); return;
    default: dispatchHalves<0>(st); return;
    }
}

} // namespace align_detail
} // namespace dnasim

#endif // DNASIM_X86_SIMD_KERNELS
