/**
 * @file
 * Shared fast-path/fallback counters for the alignment kernels.
 *
 * Every kernel with both a packed (or bit-parallel) fast path and a
 * generic character path reports which one served each call, so
 * mixed-path usage — e.g. datasets with non-ACGT reads silently
 * degrading to scalar code — is visible in dnasim.stats.v1 as
 * align.packed_fastpath / align.char_fallback.
 */

#ifndef DNASIM_ALIGN_PATH_STATS_HH
#define DNASIM_ALIGN_PATH_STATS_HH

#include "obs/stats.hh"

namespace dnasim
{
namespace align_detail
{

struct PathStats
{
    obs::Counter &packed_fastpath;
    obs::Counter &char_fallback;

    static PathStats &
    get()
    {
        auto &reg = obs::Registry::global();
        static PathStats ps{
            reg.counter("align.packed_fastpath",
                        "alignment/consensus calls served by a packed "
                        "or bit-parallel fast path"),
            reg.counter("align.char_fallback",
                        "alignment/consensus calls that fell back to "
                        "the generic character path"),
        };
        return ps;
    }
};

} // namespace align_detail
} // namespace dnasim

#endif // DNASIM_ALIGN_PATH_STATS_HH
