/**
 * @file
 * Runtime CPU-feature dispatch for the vectorized alignment kernels.
 *
 * The batch Myers kernel (align/myers_batch.hh) has three
 * implementations: a portable scalar-word loop, an AVX2 variant with
 * 4 x 64-bit lanes, and an AVX-512 variant with 8 lanes. Which one
 * runs is a *runtime* decision: the library is compiled once with
 * portable flags, the wide kernels live in translation units built
 * with per-file -mavx2 / -mavx512* options, and the dispatcher
 * probes the CPU (cpuid, once) to pick the widest tier the machine
 * supports.
 *
 * The selection can be narrowed for testing and reproducible
 * benchmarking with the DNASIM_SIMD environment variable or the
 * --simd CLI flag ("auto", "scalar", "avx2", "avx512"); requesting a
 * tier the CPU lacks warns once and falls back to the widest
 * supported one. The resolved tier is logged once through the
 * standard log sink and exported as the align.simd.tier gauge
 * (0 = scalar, 1 = avx2, 2 = avx512) in dnasim.stats.v1, so every
 * bench report and telemetry stream records which code path ran.
 *
 * Every tier is required to return bit-identical results (see the
 * lane-determinism argument in DESIGN.md), so the dispatch choice
 * can never change simulation output — only throughput.
 */

#ifndef DNASIM_ALIGN_SIMD_DISPATCH_HH
#define DNASIM_ALIGN_SIMD_DISPATCH_HH

#include <optional>
#include <string_view>

namespace dnasim
{

/** Available batch-kernel implementations, widest last. */
enum class SimdTier : int
{
    Scalar = 0, ///< portable scalar-word loop (any CPU)
    Avx2 = 1,   ///< 4 x 64-bit lanes (x86-64 with AVX2)
    Avx512 = 2, ///< 8 x 64-bit lanes (x86-64 with AVX-512 F+BW+DQ)
};

/** Canonical spelling of @p tier ("scalar" / "avx2" / "avx512"). */
const char *simdTierName(SimdTier tier);

/** "scalar"/"avx2"/"avx512" -> the tier; nullopt for anything else
 *  (including "auto" — auto is the *absence* of an override). */
std::optional<SimdTier> parseSimdTier(std::string_view name);

/**
 * Widest tier this CPU supports, probed once via cpuid. Scalar on
 * non-x86-64 builds.
 */
SimdTier detectedSimdTier();

/**
 * The tier the batch kernels use right now: the override (CLI flag /
 * setSimdTierOverride) if set, else the DNASIM_SIMD environment
 * variable, else the detected tier — always clamped to
 * detectedSimdTier() with a one-time warning when the request
 * exceeds the hardware. The first resolution logs the selection via
 * inform() and publishes the align.simd.tier gauge.
 */
SimdTier activeSimdTier();

/**
 * Force a tier (tests, --simd flag); nullopt restores auto
 * selection. Takes effect on the next activeSimdTier() call — the
 * batch kernels consult the dispatcher per call, so flipping tiers
 * between calls is safe. Requests above the detected tier clamp.
 */
void setSimdTierOverride(std::optional<SimdTier> tier);

/**
 * Parse + apply a CLI/env override string ("auto" clears it).
 * Returns false (and changes nothing) for an unknown name.
 */
bool applySimdOverride(std::string_view name);

} // namespace dnasim

#endif // DNASIM_ALIGN_SIMD_DISPATCH_HH
