/**
 * @file
 * Friend-of-MyersPattern accessor shared by the kernels that reuse a
 * pattern's precomputed Peq match tables instead of rebuilding them:
 * the batched SIMD drivers (myers_batch) and the bit-vector
 * edit-script tier (edit_script). Internal to src/align.
 */

#ifndef DNASIM_ALIGN_PATTERN_ACCESS_HH
#define DNASIM_ALIGN_PATTERN_ACCESS_HH

#include <cstdint>
#include <span>

#include "align/edit_distance.hh"

namespace dnasim
{
namespace align_detail
{

struct PatternAccess
{
    static std::span<const uint64_t>
    peq(const MyersPattern &p)
    {
        return p.peq_;
    }

    static size_t
    blocks(const MyersPattern &p)
    {
        return p.blocks_;
    }
};

} // namespace align_detail
} // namespace dnasim

#endif // DNASIM_ALIGN_PATTERN_ACCESS_HH
