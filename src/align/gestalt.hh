/**
 * @file
 * Gestalt pattern matching (Ratcliff-Obershelp).
 *
 * Given two strings, the gestalt algorithm finds the longest common
 * substring, then recurses on the unmatched text to its left and
 * right, producing an ordered set of matching blocks. The gestalt
 * score is 2 * Km / (|S1| + |S2|) where Km is the total matched
 * length (section 3.1, criterion 3).
 *
 * The matching blocks double as an alignment: the gaps between
 * consecutive blocks classify as substitution, insertion, or deletion
 * runs, which is how the paper derives its "gestalt-aligned" error
 * curves — errors attributed to the reference position where the
 * misalignment originates rather than every position it corrupts.
 */

#ifndef DNASIM_ALIGN_GESTALT_HH
#define DNASIM_ALIGN_GESTALT_HH

#include <string_view>
#include <vector>

namespace dnasim
{

/** A run of identical characters at a_pos in A and b_pos in B. */
struct MatchBlock
{
    size_t a_pos = 0;
    size_t b_pos = 0;
    size_t len = 0;

    bool operator==(const MatchBlock &) const = default;
};

/**
 * Ordered gestalt matching blocks of @p a and @p b.
 *
 * Blocks are non-overlapping and strictly increasing in both
 * coordinates. A zero-length sentinel block at (|a|, |b|) terminates
 * the list (difflib-compatible), so the gaps after the last real
 * match are representable.
 */
std::vector<MatchBlock> matchingBlocks(std::string_view a,
                                       std::string_view b);

/** Gestalt similarity 2*Km / (|a| + |b|), in [0, 1]; 1 for two
 *  empty strings. */
double gestaltScore(std::string_view a, std::string_view b);

/** The kind of a gap between matching blocks. */
enum class GapType : uint8_t
{
    Substitution, ///< both strings have unmatched text
    Deletion,     ///< only the first string (reference) does
    Insertion,    ///< only the second string (copy) does
};

/** One classified gap between consecutive matching blocks. */
struct AlignedGap
{
    GapType type = GapType::Substitution;
    size_t a_pos = 0; ///< start of the gap in the first string
    size_t a_len = 0; ///< unmatched length in the first string
    size_t b_pos = 0; ///< start of the gap in the second string
    size_t b_len = 0; ///< unmatched length in the second string
};

/** Classify the gaps between the matching blocks of @p a and @p b. */
std::vector<AlignedGap> alignedGaps(std::string_view a,
                                    std::string_view b);

/**
 * Gestalt-aligned error positions in the reference @p ref for one
 * noisy/reconstructed @p copy.
 *
 * Substitution and deletion gaps contribute every affected reference
 * position; insertion gaps contribute the single reference position
 * where the insertion occurs (clamped to |ref| - 1). This mirrors
 * the paper's example: for r = AGTC, c = ATC the only aligned error
 * is at the deleted G.
 */
std::vector<size_t> gestaltErrorPositions(std::string_view ref,
                                          std::string_view copy);

} // namespace dnasim

#endif // DNASIM_ALIGN_GESTALT_HH
