/**
 * @file
 * The hierarchical phase profiler: aggregates the trace layer's
 * complete spans into an inclusive/exclusive call tree at snapshot
 * time, so a run can answer "which phase got slower" instead of only
 * "which spans existed".
 *
 * Nesting is recovered per thread from span intervals (RAII spans
 * are properly nested within a thread by construction); same-named
 * spans under the same parent merge into one node accumulating
 * count, wall (inclusive) time and thread CPU time. Exclusive time
 * is inclusive minus the children's inclusive time, so over a tree
 * the exclusive times sum to at most the synthetic root's inclusive
 * time (strictly less only where clock jitter forces clamping).
 *
 * An optional sampling thread (RssSampler) records resident-set-size
 * samples on a fixed cadence; at build time each sample is
 * attributed to every phase active at its timestamp, giving
 * per-phase RSS high-water marks.
 *
 * The profile is exported three ways: a "profile" section inside
 * dnasim.stats.v1 documents (obs/report.hh), the same section inside
 * BENCH_<name>.json, and a human-readable text tree behind the
 * --profile CLI/bench flag.
 */

#ifndef DNASIM_OBS_PROFILE_HH
#define DNASIM_OBS_PROFILE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hh"

namespace dnasim
{
namespace obs
{

/** One aggregated phase (all spans with the same path). */
struct ProfileNode
{
    std::string name;
    uint64_t count = 0;    ///< span instances merged into this node
    uint64_t incl_ns = 0;  ///< wall time, children included
    uint64_t excl_ns = 0;  ///< wall time minus children (clamped >= 0)
    uint64_t cpu_ns = 0;   ///< thread CPU time inside the spans
    uint64_t rss_hwm_bytes = 0; ///< max sampled RSS while active
    std::vector<ProfileNode> children; ///< sorted by incl_ns desc
};

/** One flattened hot phase, ranked by exclusive time. */
struct ProfileHotspot
{
    std::string path; ///< "/"-joined names from the root
    uint64_t count = 0;
    uint64_t incl_ns = 0;
    uint64_t excl_ns = 0;
    uint64_t cpu_ns = 0;
};

/** An aggregated call tree plus its flattened hotspot ranking. */
struct Profile
{
    /**
     * Synthetic root named "total"; its inclusive time is the sum of
     * all top-level span durations across threads (> wall time when
     * several threads carry top-level spans).
     */
    ProfileNode root;
    std::vector<ProfileHotspot> hotspots; ///< top-N by excl_ns
    uint64_t rss_samples = 0; ///< RSS samples attributed (0 = none)

    bool
    empty() const
    {
        return root.children.empty();
    }
};

/** One resident-set-size sample from the sampling thread. */
struct RssSample
{
    uint64_t ts_ns = 0; ///< trace-relative timestamp
    uint64_t rss_bytes = 0;
};

/**
 * Aggregate @p spans (plus optional RSS @p samples) into a profile.
 * @p top_n bounds the hotspot ranking.
 */
Profile buildProfile(const std::vector<TraceSpan> &spans,
                     const std::vector<RssSample> &samples = {},
                     size_t top_n = 10);

/** Convenience: build from the trace buffer and the global sampler. */
Profile buildProfile(const Trace &trace, size_t top_n = 10);

/** Render the call tree as an indented text table. */
std::string profileToText(const Profile &profile,
                          size_t max_depth = 8);

/** Render as the JSON object embedded under "profile" in stats.v1. */
std::string profileToJson(const Profile &profile);

/**
 * Background thread sampling the process resident set size on a
 * fixed cadence, stamping samples with trace-relative timestamps.
 * Start it together with tracing (the --profile flag does); samples
 * are attributed to phases when the profile is built.
 */
class RssSampler
{
  public:
    static RssSampler &global();

    /** Start sampling every @p interval_ms (no-op when running). */
    void start(uint64_t interval_ms = 25);

    /** Stop and join the sampling thread (no-op when stopped). */
    void stop();

    /**
     * Append one externally measured sample (trace-relative
     * timestamp). The telemetry sampler feeds the profiler through
     * this when both are active, so one background thread serves
     * both consumers instead of two threads polling /proc.
     */
    void record(uint64_t ts_ns, uint64_t rss_bytes);

    bool running() const { return running_.load(); }

    /** Copy of the samples collected since the last start(). */
    std::vector<RssSample> samples() const;

  private:
    RssSampler() = default;

    void loop(uint64_t interval_ms);

    mutable std::mutex mutex_;
    std::vector<RssSample> samples_;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};
};

/**
 * Current resident set size in bytes (VmRSS, falling back to the
 * getrusage high-water mark where /proc is unavailable; 0 when
 * neither source exists).
 */
uint64_t currentRssBytes();

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_PROFILE_HH
